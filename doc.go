// Package netclus is a Go reproduction of "NetClus: A Scalable Framework
// for Locating Top-K Sites for Placement of Trajectory-Aware Services"
// (Mitra, Saraf, Sharma, Bhattacharya, Ranu — ICDE 2017), grown into a
// concurrent query-serving core.
//
// The library answers TOPS queries — given a road network, a set of user
// trajectories and candidate sites, report the k sites maximizing total
// trajectory utility under a distance-decaying preference function — using
// the paper's NETCLUS multi-resolution clustering index, with the exact
// branch-and-bound optimum, the INC-GREEDY baseline and its FM-sketch
// acceleration, the cost/capacity/existing-services variants, and dynamic
// updates.
//
// This package is the public facade (see netclus.go): external users build
// an Index over an Instance, wrap it in an Engine, and serve concurrent
// Query/QueryBatch traffic interleaved with updates — covering structures
// are memoized per (ladder instance, preference) and filled in parallel, so
// repeated and interactive (k, τ)-varying workloads skip the per-query
// RepCover cost the paper's online phase pays.
//
// Index construction parallelizes across BuildOptions.Workers and is
// deterministic for any worker count. Save/Load persist the index as a
// versioned binary snapshot carrying a dataset fingerprint, so services
// warm-start in milliseconds instead of re-clustering, and a snapshot can
// never silently serve a mismatched dataset.
//
// A write-ahead log (OpenWAL, Engine.AttachWAL) turns a served engine into
// a system of record: every acknowledged mutation is an LSN-numbered
// record, snapshots carry the LSN they reflect, recovery is checkpoint +
// tail replay (ReplayWAL), and followers (NewFollower) tail a primary's
// /v1/log into read-replicas that answer bit-identically. Followers
// long-poll the log (FollowerOptions.Wait) so replica lag is ~RTT rather
// than a polling interval; ServeOptions.Quorum holds each update ack until
// N followers are durably past its LSN; and promotion (ServeOptions.
// Promote, DurableEngine.BeginEpoch) opens a new epoch — a logged fencing
// token that makes a deposed primary reject writes (409 fenced). API.md
// documents the complete HTTP surface, including the stable error codes.
//
// Layout:
//
//	internal/roadnet     directed road networks, Dijkstra/A*, SCC
//	internal/trajectory  trajectories and GPS traces
//	internal/spatial     grid spatial index
//	internal/mapmatch    HMM map matcher (raw trace -> node sequence)
//	internal/fm          Flajolet–Martin sketches
//	internal/gen         synthetic cities, trajectories, GPS noise
//	internal/dataset     Table-6-style dataset presets
//	internal/tops        the TOPS problem and all non-indexed algorithms
//	internal/core        the NETCLUS index (paper's contribution) plus
//	                     cached covering structures (CoverPlan / CoverFor)
//	internal/engine      the concurrent serving layer (RWMutex protocol,
//	                     QueryBatch grouping, context deadlines, traffic
//	                     stats)
//	internal/shard       scatter-gather sharding (site partitioners,
//	                     cluster ownership, distributed greedy, manifest
//	                     snapshots) — bit-exact vs the single engine
//	internal/wal         durability: segmented CRC-framed write-ahead log
//	                     (LSN-stamped snapshots, checkpoint + tail-replay
//	                     recovery, compaction, follower record streams)
//	internal/server      the HTTP JSON serving layer (micro-batched
//	                     admission, strict decoding, drain, /statsz,
//	                     /v1/log streaming, follower tailing)
//	internal/bench       one experiment per paper table/figure
//	cmd/...              topsserve, topsbench, topsgen, topsquery, benchjson
//	examples/...         runnable scenario walkthroughs
//
// See README.md for a tour and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure.
package netclus
