package netclus

// This file is the stable public facade of the module. Everything behind it
// lives under internal/ and cannot be imported directly by other modules;
// the aliases and constructors here re-export the supported surface:
//
//	problem types      Instance, Preference, QueryOptions, QueryResult
//	index              Index, BuildOptions, Build
//	serving            Engine, EngineOptions, EngineStats, NewEngine
//	network serving    Server, ServeOptions, ServeLimits, NewServer
//	data               Graph, TrajectoryStore, Dataset presets and loaders
//
// Applications hold one Index per dataset, wrap it in one Engine, and send
// all traffic — queries and §6 updates — through the Engine. See
// examples/quickstart for the end-to-end pattern.

import (
	"fmt"
	"io"
	"os"

	"netclus/internal/core"
	"netclus/internal/dataset"
	"netclus/internal/engine"
	"netclus/internal/gen"
	"netclus/internal/ingest"
	"netclus/internal/mapmatch"
	"netclus/internal/obs"
	"netclus/internal/roadnet"
	"netclus/internal/router"
	"netclus/internal/server"
	"netclus/internal/shard"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
	"netclus/internal/wal"
)

// Problem types.
type (
	// Instance bundles the TOPS inputs: road network, trajectories, sites.
	Instance = tops.Instance
	// Preference is the distance-decaying preference function ψ with its
	// coverage threshold τ.
	Preference = tops.Preference
	// SiteID is a dense candidate-site id within an Instance.
	SiteID = tops.SiteID
	// NodeID is a road-network node id.
	NodeID = roadnet.NodeID
	// Graph is a directed road network.
	Graph = roadnet.Graph
	// TrajectoryStore is an indexed trajectory collection.
	TrajectoryStore = trajectory.Store
	// Trajectory is one map-matched user trajectory.
	Trajectory = trajectory.Trajectory
	// TrajectoryID addresses a trajectory within a store.
	TrajectoryID = trajectory.ID
	// GreedyOptions forwards advanced IncGreedy knobs (existing services,
	// lazy evaluation, TOPS4 target coverage) through QueryOptions.Greedy.
	GreedyOptions = tops.GreedyOptions
)

// InvalidSiteID marks a node that is not (or no longer) a candidate site in
// QueryResult.SiteIDs.
const InvalidSiteID = tops.InvalidSiteID

// NewInstance validates and assembles a TOPS problem instance.
func NewInstance(g *Graph, trajs *TrajectoryStore, sites []NodeID) (*Instance, error) {
	return tops.NewInstance(g, trajs, sites)
}

// NewTrajectory builds a trajectory from a node sequence over g, pricing
// each hop at the edge weight (or shortest-path distance).
func NewTrajectory(g *Graph, nodes []NodeID) (*Trajectory, error) {
	return trajectory.New(g, nodes)
}

// Preference constructors (Definition 2 instances).
var (
	// Binary covers a trajectory iff its detour is within τ (TOPS1).
	Binary = tops.Binary
	// Linear decays linearly from 1 at zero detour to 0 at τ.
	Linear = tops.Linear
	// ConvexQuadratic is the (1-d/τ)² market-share model (TOPS2).
	ConvexQuadratic = tops.ConvexQuadratic
	// ExpDecay is exp(-λ·d) truncated at τ.
	ExpDecay = tops.ExpDecay
	// NegativeDistance is the TOPS3 deviation-minimizing preference.
	NegativeDistance = tops.NegativeDistance
)

// Index types.
type (
	// Index is the multi-resolution NETCLUS index.
	Index = core.Index
	// BuildOptions configures index construction (γ, τ range, clustering).
	BuildOptions = core.Options
	// QueryOptions carries the online TOPS query parameters (k, ψ, FM).
	QueryOptions = core.QueryOptions
	// QueryResult is the NETCLUS answer to a TOPS query.
	QueryResult = core.QueryResult
)

// Build runs the NETCLUS offline phase: the instance ladder over inst.
// Construction parallelizes across BuildOptions.Workers (default all cores)
// and is deterministic: the same instance and options produce an identical
// index — and a byte-identical snapshot — for every worker count.
func Build(inst *Instance, opts BuildOptions) (*Index, error) {
	return core.Build(inst, opts)
}

// Index persistence. Save writes a versioned binary snapshot of the full
// multi-resolution index; Load re-attaches one to the problem instance it
// was built from, verifying a dataset fingerprint so a snapshot can never
// silently serve a different (or differently ordered) dataset. The typical
// lifecycle is: build once, Save, then warm-start every later process with
// Load + NewEngine — dynamic §6 updates keep working on a loaded index.

// Save writes idx as a binary snapshot. For an index currently served by
// an Engine, use Engine.Snapshot instead — it takes the engine's read lock
// so checkpointing cannot race with concurrent updates.
func Save(idx *Index, w io.Writer) (int64, error) { return idx.WriteTo(w) }

// Load reads a snapshot and re-attaches it to inst, which must be the
// dataset the index was built from (enforced via fingerprint).
func Load(r io.Reader, inst *Instance) (*Index, error) { return core.ReadIndex(r, inst) }

// SaveFile writes a snapshot to path atomically (temp file + rename).
func SaveFile(idx *Index, path string) error { return idx.WriteSnapshotFile(path) }

// LoadFile reads a snapshot from path and re-attaches it to inst.
func LoadFile(path string, inst *Instance) (*Index, error) {
	return core.ReadIndexFile(path, inst)
}

// IndexFingerprint returns the dataset fingerprint snapshots of inst carry.
func IndexFingerprint(inst *Instance) uint64 { return core.DatasetFingerprint(inst) }

// Serving layer.
type (
	// Engine serves concurrent queries and updates over one Index.
	Engine = engine.Engine
	// EngineOptions configures an Engine.
	EngineOptions = engine.Options
	// EngineStats snapshots an Engine's traffic and cache counters.
	EngineStats = engine.Stats
	// BatchItem is one QueryBatch outcome.
	BatchItem = engine.BatchItem
)

// NewEngine wraps an Index for concurrent serving. All mutations must go
// through the returned Engine from then on.
func NewEngine(idx *Index, opts EngineOptions) (*Engine, error) {
	return engine.New(idx, opts)
}

// Sharded serving layer: N site-partitioned engine shards answering every
// query by scatter-gather, bit-exact against the single-shard Engine (the
// shard-differential oracle enforces the equality). Site updates route to
// the owning shard — so only ~1/N of the memoized covering structures
// invalidate per mutation — and trajectory updates broadcast. Snapshots
// write one manifest plus one file per shard (SaveShardedDir) or a single
// container stream (ShardedEngine.Snapshot).
type (
	// ShardedEngine is the scatter-gather engine. It serves the same
	// Query/QueryBatch/Stats/Snapshot surface as Engine, so NewServer
	// accepts either.
	ShardedEngine = shard.Sharded
	// ShardedOptions configures shard count, partitioner, and the
	// per-shard build/engine options.
	ShardedOptions = shard.Options
	// ShardStat is one shard's /statsz counter block.
	ShardStat = shard.Stat
)

// Partitioner names for ShardedOptions.Partitioner.
const (
	// ShardByHash partitions sites uniformly by node-id hash (default).
	ShardByHash = shard.HashPartitioner
	// ShardByGrid partitions sites spatially over the graph's bounding box.
	ShardByGrid = shard.GridPartitioner
)

// NewShardedEngine partitions inst's candidate sites and builds one index
// per shard (concurrently, splitting ShardedOptions.Build.Workers).
func NewShardedEngine(inst *Instance, opts ShardedOptions) (*ShardedEngine, error) {
	return shard.Build(inst, opts)
}

// LoadShardedDir warm-starts a sharded engine from a SaveShardedDir layout
// (manifest.json plus per-shard snapshot files); inst must be the dataset
// the engine was built from.
func LoadShardedDir(dir string, inst *Instance, opts ShardedOptions) (*ShardedEngine, error) {
	return shard.LoadDir(dir, inst, opts)
}

// SaveShardedDir writes s as a manifest plus per-shard snapshot files.
func SaveShardedDir(s *ShardedEngine, dir string) error { return s.SaveDir(dir) }

// LoadShardedSnapshot reads the single-stream container format that
// ShardedEngine.Snapshot writes (and /v1/snapshot serves, and topsserve
// -snapshot-on-exit stores for a sharded server) and re-attaches it to
// inst, the full dataset the engine was built from.
func LoadShardedSnapshot(r io.Reader, inst *Instance, opts ShardedOptions) (*ShardedEngine, error) {
	return shard.LoadSharded(r, inst, opts)
}

// ValidateShardCount applies the serving-CLI policy for shard counts:
// reject non-positive, cap at the core count with a warning.
var ValidateShardCount = shard.ValidateShardCount

// Cross-process sharding: each shard of a topology runs as its own
// topsserve process (-shard-index) holding one Engine over its site
// partition, and a stateless router tier (cmd/topsrouter) speaks the
// distributed-greedy round protocol against them over HTTP — answers are
// bit-exact against a single-process engine over the same dataset.
type (
	// ShardMember is one process-local shard: an Engine plus the member
	// side of the round protocol, served under /v1/shard/ by setting
	// ServeOptions.Member.
	ShardMember = shard.Member
	// Router is the scatter-gather front tier over N shard members; it
	// implements http.Handler.
	Router = router.Router
	// RouterOptions configures the shard map and failure policy.
	RouterOptions = router.Options
)

// BuildShardMember builds shard index of an opts.Shards-wide topology
// from the full dataset (the ladder derives from the full site set, so
// every member and the router agree on it).
func BuildShardMember(inst *Instance, index int, opts ShardedOptions) (*ShardMember, error) {
	return shard.BuildMember(inst, index, opts)
}

// NewShardMember wraps a recovered Engine as shard index of a
// shards-wide topology (checkpoint recovery path; the build-time site
// order is no longer known, so the router seeds dense ids per shard).
func NewShardMember(eng *Engine, shards, index int, partitioner string) (*ShardMember, error) {
	return shard.NewMember(eng, shards, index, partitioner, nil)
}

// NewRouter connects to every shard member, validates the topology, and
// returns the serving router.
func NewRouter(opts RouterOptions) (*Router, error) { return router.New(opts) }

// ShardedManifestName is the manifest file inside a SaveShardedDir layout.
const ShardedManifestName = shard.ManifestName

// Network serving layer.
type (
	// Server exposes an Engine over an HTTP JSON API: /v1/query (with
	// micro-batched admission), /v1/query/batch, /v1/update, /v1/snapshot,
	// /healthz and /statsz. It implements http.Handler; mount it on an
	// http.Server and Close it after shutdown. cmd/topsserve is the
	// reference deployment.
	Server = server.Server
	// ServeOptions configures the serving layer: batching window/size,
	// default per-request deadline, and decode limits.
	ServeOptions = server.Options
	// ServeLimits bounds what the server's request decoder accepts.
	ServeLimits = server.Limits
	// ServerEngine is the serving surface NewServer accepts: both Engine
	// and ShardedEngine satisfy it.
	ServerEngine = server.Engine
)

// NewServer wraps an engine — single-index or sharded — in the HTTP
// serving layer. The caller keeps ownership of the engine (e.g. for a
// final snapshot after drain).
func NewServer(eng ServerEngine, opts ServeOptions) (*Server, error) {
	return server.New(eng, opts)
}

// Observability. Both binaries expose GET /metrics (Prometheus text
// format) and accept -log-level/-log-format flags built on these helpers;
// request traces ride the TraceHeader header end to end (client → router →
// shard member → error envelope).
var (
	// NewLogger builds a structured logger writing to w: format is "text"
	// or "json", level from ParseLogLevel.
	NewLogger = obs.NewLogger
	// ParseLogLevel maps debug/info/warn/error (or "") to a slog level.
	ParseLogLevel = obs.ParseLevel
)

// TraceHeader is the end-to-end request-trace header: supplied ids are
// propagated through every tier and echoed on responses and error
// envelopes; absent or malformed ids are replaced at the first edge.
const TraceHeader = obs.TraceHeader

// Durability & replication layer. A write-ahead log turns a served engine
// into a system of record: every acknowledged §6 mutation is an LSN-
// numbered record in an append-only segment log, snapshots carry the LSN
// they reflect, and recovery is checkpoint + tail replay. On top of the
// log, /v1/log streams records to follower read-replicas (topsserve
// -follow) that apply them through the same replay path and serve
// read-only traffic. cmd/topsserve wires the whole lifecycle
// (-wal-dir, -fsync, -checkpoint-every, -follow).
type (
	// WAL is the append-only segmented record log.
	WAL = wal.Log
	// WALOptions configures segment size and fsync policy.
	WALOptions = wal.Options
	// WALRecord is one logged mutation.
	WALRecord = wal.Record
	// WALStats is the log's monitoring block.
	WALStats = wal.Stats
	// SyncPolicy selects when appends reach stable storage.
	SyncPolicy = wal.SyncPolicy
	// ReplicationStatus is a follower's lag report (/healthz, /statsz).
	ReplicationStatus = server.ReplicationStatus
	// Follower tails a primary's /v1/log into a local engine.
	Follower = server.Follower
	// FollowerOptions configures the tailing loop.
	FollowerOptions = server.FollowerOptions
)

// Fsync policies for WALOptions.Policy.
const (
	// FsyncAlways makes every acknowledged update durable (one fsync per
	// record).
	FsyncAlways = wal.SyncAlways
	// FsyncEveryInterval group-commits on a timer: at most one interval of
	// acknowledged updates is lost on a crash.
	FsyncEveryInterval = wal.SyncEveryInterval
	// FsyncNever leaves flushing to the OS.
	FsyncNever = wal.SyncNever
)

// ParseFsyncPolicy validates a CLI fsync-policy name.
var ParseFsyncPolicy = wal.ParsePolicy

// OpenWAL opens (or creates) a log directory, repairing a torn tail.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) { return wal.Open(dir, opts) }

// DurableEngine is the serving surface plus the durability hooks both
// Engine and ShardedEngine implement: replaying logged records, attaching
// a log for new mutations, and reporting the applied LSN.
type DurableEngine interface {
	ServerEngine
	// ApplyRecord applies one logged mutation without re-logging it (crash
	// recovery, follower tailing). Records must arrive in LSN order.
	ApplyRecord(rec WALRecord) error
	// AttachWAL connects the engine to its log; every later mutation is
	// logged before it is acknowledged. Replay the tail first.
	AttachWAL(l *WAL) error
	// LSN reports the last applied log sequence number.
	LSN() uint64
	// Epoch reports the fencing token of the primary term this engine last
	// observed (0 before any term has opened).
	Epoch() uint64
	// BeginEpoch opens a strictly newer primary term, logging the fencing
	// token so followers and recovery observe it; a stale epoch fails with
	// a wal.ErrFenced-wrapped error.
	BeginEpoch(epoch uint64) error
}

// ReplayWAL applies every record after eng.LSN() — the recovery tail after
// a checkpoint load, or the whole log over a freshly built engine.
func ReplayWAL(l *WAL, eng DurableEngine) (int, error) { return wal.Replay(l, eng) }

// SaveCheckpointFile writes eng's recovery bundle — mutated dataset state
// plus the LSN-stamped snapshot — to path atomically (temp + fsync +
// rename). Unlike a plain snapshot, a checkpoint reloads without the §6
// mutation history: LoadCheckpointFile needs only the immutable road
// network.
func SaveCheckpointFile(eng ServerEngine, path string) error {
	return wal.AtomicWriteFile(path, func(w io.Writer) error {
		_, err := eng.Checkpoint(w)
		return err
	})
}

// LoadCheckpoint reads a checkpoint stream (Engine.Checkpoint,
// /v1/checkpoint) over the given road network and returns the recovered
// engine — single-index or sharded, as the checkpoint dictates — at the
// checkpoint's LSN. Replay the log tail with ReplayWAL, then AttachWAL.
func LoadCheckpoint(r io.Reader, g *Graph, eopts EngineOptions) (DurableEngine, error) {
	inst, epoch, br, err := wal.ReadCheckpoint(r, g)
	if err != nil {
		return nil, err
	}
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("netclus: reading checkpoint payload magic: %w", err)
	}
	switch string(magic) {
	case "NCSS":
		idx, err := core.ReadIndex(br, inst)
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(idx, eopts)
		if err != nil {
			return nil, err
		}
		eng.RestoreEpoch(epoch)
		return eng, nil
	case "NCSM":
		eng, err := shard.LoadSharded(br, inst, shard.Options{Engine: eopts})
		if err != nil {
			return nil, err
		}
		eng.RestoreEpoch(epoch)
		return eng, nil
	default:
		return nil, fmt.Errorf("netclus: checkpoint payload has unknown magic %q", magic)
	}
}

// LoadCheckpointFile reads a checkpoint from path (see LoadCheckpoint).
func LoadCheckpointFile(path string, g *Graph, eopts EngineOptions) (DurableEngine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netclus: opening checkpoint: %w", err)
	}
	defer f.Close()
	eng, err := LoadCheckpoint(f, g, eopts)
	if err != nil {
		return nil, fmt.Errorf("netclus: checkpoint %s: %w", path, err)
	}
	return eng, nil
}

// NewFollower prepares a tailing loop applying the primary's /v1/log
// stream into eng (optionally persisting it into local). Serve eng with
// ServeOptions.ReadOnly and Replication: f.Status, and run f.Run.
func NewFollower(primary string, eng DurableEngine, local *WAL, opts FollowerOptions) (*Follower, error) {
	return server.NewFollower(primary, eng, local, opts)
}

// LogAvailableFrom probes whether a primary can stream records starting at
// the given LSN — the follower's bootstrap decision between replaying the
// whole log and fetching a checkpoint.
var LogAvailableFrom = server.LogAvailableFrom

// FetchCheckpoint streams a primary's /v1/checkpoint for LoadCheckpoint.
var FetchCheckpoint = server.FetchCheckpoint

// Datasets and generation.
type (
	// Dataset is a fully assembled TOPS instance plus provenance.
	Dataset = dataset.Dataset
	// DatasetPreset names a Table-6-style dataset preset.
	DatasetPreset = dataset.Preset
	// DatasetConfig scales and seeds dataset synthesis.
	DatasetConfig = dataset.Config
	// City is a synthetic road network with its commuting hotspots.
	City = gen.City
	// CityConfig configures synthetic road-network generation.
	CityConfig = gen.CityConfig
	// Topology selects a synthetic city's road-network shape.
	Topology = gen.Topology
	// TrajConfig configures synthetic trajectory generation.
	TrajConfig = gen.TrajConfig
	// SiteConfig configures candidate-site sampling.
	SiteConfig = gen.SiteConfig
)

// City topologies.
const (
	GridMesh    = gen.GridMesh
	Star        = gen.Star
	Polycentric = gen.Polycentric
	RingMesh    = gen.RingMesh
)

// Synthetic data generators, so external users can assemble instances
// without dataset presets.
var (
	// GenerateCity synthesizes a road network.
	GenerateCity = gen.GenerateCity
	// GenerateTrajectories synthesizes commuter trajectories over a city.
	GenerateTrajectories = gen.GenerateTrajectories
	// SampleSites samples candidate sites from a graph (empty config means
	// every node, the paper's default).
	SampleSites = gen.SampleSites
)

// Live ingestion and map-matching: the paper's Fig. 2 front end. Raw GPS
// traces (trajectory.GPSTrace, or NDJSON over POST /v1/ingest) are HMM
// map-matched onto the road network and applied as §6 mutations.
type (
	// GPSTrace is a raw GPS trace (timestamped planar points).
	GPSTrace = trajectory.GPSTrace
	// GPSPoint is one raw GPS sample.
	GPSPoint = trajectory.GPSPoint
	// GPSConfig configures synthetic GPS emission (sampling + noise).
	GPSConfig = gen.GPSConfig
	// Matcher map-matches GPS traces onto a fixed road network (Lou et
	// al.'s low-sampling-rate HMM matcher). Not safe for concurrent use —
	// pool one per worker.
	Matcher = mapmatch.Matcher
	// MatchConfig tunes the HMM matcher.
	MatchConfig = mapmatch.Config
	// IngestOptions configures the streaming ingestion pipeline behind
	// POST /v1/ingest (set ServeOptions.Ingest to enable the endpoint).
	IngestOptions = ingest.Options
	// IngestVerdict is the per-line outcome streamed back by /v1/ingest.
	IngestVerdict = ingest.Verdict
	// IngestStats is the /statsz ingest counter block.
	IngestStats = ingest.Stats
	// Ingestor runs the decode → match → apply pipeline over any Sink.
	Ingestor = ingest.Ingestor
	// IngestSink receives matched trajectory batches (usually the
	// engine's AddTrajectories write path).
	IngestSink = ingest.Sink
)

var (
	// EmitGPS degrades a trajectory into a noisy GPS trace.
	EmitGPS = gen.EmitGPS
	// NewMatcher builds an HMM matcher over a graph.
	NewMatcher = mapmatch.NewMatcher
	// NewIngestor builds a standalone ingestion pipeline over a graph
	// (the server builds its own when ServeOptions.Ingest is set).
	NewIngestor = ingest.New
)

// Dataset presets mirroring Table 6 of the paper.
const (
	PresetBeijingSmall = dataset.BeijingSmall
	PresetBeijing      = dataset.Beijing
	PresetBangalore    = dataset.Bangalore
	PresetNewYork      = dataset.NewYork
	PresetAtlanta      = dataset.Atlanta
)

// LoadDataset synthesizes (or retrieves) a named dataset preset.
func LoadDataset(name DatasetPreset, cfg DatasetConfig) (*Dataset, error) {
	return dataset.Load(name, cfg)
}

// IndexedDataset couples a dataset preset with its NETCLUS index and the
// index's provenance (cold build vs snapshot warm load).
type IndexedDataset = dataset.IndexedDataset

// LoadIndexedDataset materializes a preset and its index in one call. With
// cfg.CacheDir set, the index warm-starts from the on-disk snapshot cache
// when a valid entry exists and is cached after a cold build otherwise
// (best-effort: an unwritable cache never fails the load).
func LoadIndexedDataset(name DatasetPreset, cfg DatasetConfig, opts BuildOptions) (*IndexedDataset, error) {
	return dataset.LoadIndexed(name, cfg, opts)
}

// DatasetPresets lists all known presets.
func DatasetPresets() []DatasetPreset { return dataset.Presets() }
