package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Stable machine-readable error codes: the "code" field of every error
// envelope (see errorResponse). Clients branch on these, never on the
// human-readable message. API.md documents where each one appears.
const (
	CodeBadRequest       = "bad_request"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTooLarge         = "too_large"
	CodeTimeout          = "timeout"
	CodeCanceled         = "canceled"
	CodeConflict         = "conflict"
	CodeReadOnly         = "read_only"
	CodeFenced           = "fenced"
	CodeDraining         = "draining"
	CodeLogCompacted     = "log_compacted"
	CodeNeedBootstrap    = "need_bootstrap"
	CodeQuorumTimeout    = "quorum_timeout"
	CodeTailStalled      = "tail_stalled"
	CodeLogFailed        = "log_failed"
	CodeInternal         = "internal"
)

// retryAfterSeconds is the Retry-After hint attached to every 503: the
// conditions behind them (drain, quorum wait, replica catch-up) resolve on
// the order of a second, not minutes.
const retryAfterSeconds = "1"

// ackTracker records each follower's durable replication position —
// reported as id=/acked= query params piggybacked on /v1/log tail
// requests — and wakes quorum waiters whenever a position advances.
type ackTracker struct {
	mu   sync.Mutex
	acks map[string]followerAck
	// wake is closed and replaced on every recorded ack, the same
	// level-triggered broadcast shape as wal.Log's commit signal.
	wake chan struct{}
}

type followerAck struct {
	lsn  uint64
	seen time.Time
}

func newAckTracker() *ackTracker {
	return &ackTracker{acks: make(map[string]followerAck), wake: make(chan struct{})}
}

func (a *ackTracker) record(id string, lsn uint64) {
	a.mu.Lock()
	prev := a.acks[id]
	if lsn < prev.lsn {
		lsn = prev.lsn // a durable position never moves backwards
	}
	a.acks[id] = followerAck{lsn: lsn, seen: time.Now()}
	close(a.wake)
	a.wake = make(chan struct{})
	a.mu.Unlock()
}

// quorumLSN returns the LSN the n-th most advanced follower has durably
// acknowledged — the highest LSN known replicated to at least n machines —
// or 0 when fewer than n followers have ever reported.
func (a *ackTracker) quorumLSN(n int) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.quorumLSNLocked(n)
}

func (a *ackTracker) quorumLSNLocked(n int) uint64 {
	if n <= 0 || len(a.acks) < n {
		return 0
	}
	lsns := make([]uint64, 0, len(a.acks))
	for _, ack := range a.acks {
		lsns = append(lsns, ack.lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	return lsns[n-1]
}

// await blocks until n followers have durably acknowledged lsn, reporting
// success; the timeout, the request context, or a server drain ends the
// wait early.
func (a *ackTracker) await(ctx context.Context, n int, lsn uint64, timeout time.Duration, drain <-chan struct{}) bool {
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		a.mu.Lock()
		ok := a.quorumLSNLocked(n) >= lsn
		wake := a.wake
		a.mu.Unlock()
		if ok {
			return true
		}
		select {
		case <-wake:
		case <-t.C:
			return false
		case <-ctx.Done():
			return false
		case <-drain:
			return false
		}
	}
}

// snapshot returns the per-follower ack table for /v1/replication, sorted
// by follower id for stable output.
func (a *ackTracker) snapshot(head uint64) []FollowerAckStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FollowerAckStatus, 0, len(a.acks))
	for id, ack := range a.acks {
		var lag uint64
		if head > ack.lsn {
			lag = head - ack.lsn
		}
		out = append(out, FollowerAckStatus{
			ID:               id,
			AckedLSN:         ack.lsn,
			Lag:              lag,
			SecondsSinceSeen: time.Since(ack.seen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FollowerAckStatus is one follower's row in GET /v1/replication.
type FollowerAckStatus struct {
	ID       string `json:"id"`
	AckedLSN uint64 `json:"acked_lsn"`
	// Lag is the primary head minus the follower's durable position.
	Lag              uint64  `json:"lag_records"`
	SecondsSinceSeen float64 `json:"seconds_since_seen"`
}

// QuorumConfig mirrors the server's semi-sync replication settings.
type QuorumConfig struct {
	Required       int     `json:"required"`
	TimeoutSeconds float64 `json:"timeout_seconds"`
}

// replicationResponse is GET /v1/replication: the first-class replication
// control surface. It supersedes the X-Netclus-*-LSN headers on /v1/log,
// which remain for existing clients but are deprecated.
type replicationResponse struct {
	// Role is "primary" or "follower" (a promoted follower reports
	// primary).
	Role     string `json:"role"`
	ReadOnly bool   `json:"read_only"`
	// Epoch is the fencing token of the primary term this node last
	// observed.
	Epoch uint64 `json:"epoch"`
	// FencedBy reports the highest epoch a peer has presented when it
	// exceeds ours: this node is deposed and rejects writes.
	FencedBy uint64 `json:"fenced_by,omitempty"`
	FirstLSN uint64 `json:"first_lsn"`
	HeadLSN  uint64 `json:"head_lsn"`
	// CommittedLSN is the highest LSN the configured quorum has durably
	// acknowledged; equal to HeadLSN when no quorum is configured.
	CommittedLSN uint64              `json:"committed_lsn"`
	Quorum       *QuorumConfig       `json:"quorum,omitempty"`
	Followers    []FollowerAckStatus `json:"followers,omitempty"`
	// Follower is this node's own tailing status when it is (or was) a
	// replica.
	Follower *ReplicationStatus `json:"follower,omitempty"`
}

func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	resp := replicationResponse{
		Role:     "primary",
		ReadOnly: s.readOnly.Load(),
		Epoch:    s.engineEpoch(),
	}
	if resp.ReadOnly {
		resp.Role = "follower"
	}
	if peer := s.fencedBy.Load(); peer > resp.Epoch {
		resp.FencedBy = peer
	}
	if s.opts.Log != nil {
		resp.FirstLSN = s.opts.Log.FirstLSN()
		resp.HeadLSN = s.opts.Log.HeadLSN()
	}
	resp.CommittedLSN = resp.HeadLSN
	if s.opts.Quorum > 0 {
		resp.Quorum = &QuorumConfig{
			Required:       s.opts.Quorum,
			TimeoutSeconds: s.opts.QuorumTimeout.Seconds(),
		}
		resp.CommittedLSN = s.acks.quorumLSN(s.opts.Quorum)
	}
	resp.Followers = s.acks.snapshot(resp.HeadLSN)
	if s.opts.Replication != nil {
		st := s.opts.Replication()
		resp.Follower = &st
		// A log-less follower still has a replication position: the LSN it
		// has applied from the stream.
		if resp.ReadOnly && resp.HeadLSN == 0 {
			resp.HeadLSN = st.LSN
			resp.CommittedLSN = st.LSN
		}
	}
	writeJSON(w, resp)
}

// promoteResponse acknowledges POST /v1/promote.
type promoteResponse struct {
	OK    bool   `json:"ok"`
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	LSN   uint64 `json:"lsn,omitempty"`
}

// handlePromote turns this read-only follower into the primary: the
// Options.Promote callback stops tailing, replays any local tail, and
// opens a new epoch; on success the server leaves read-only mode. The
// promoteMu serializes concurrent promote requests (the second sees
// read_only already cleared and answers 409).
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if !s.readOnly.Load() {
		writeError(w, http.StatusConflict, CodeConflict, errors.New("already primary"))
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	epoch, err := s.opts.Promote(ctx)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, fmt.Errorf("promotion failed: %w", err))
		return
	}
	s.readOnly.Store(false)
	resp := promoteResponse{OK: true, Role: "primary", Epoch: epoch}
	if s.opts.Log != nil {
		resp.LSN = s.opts.Log.HeadLSN()
	}
	writeJSON(w, resp)
}

// followRequest is POST /v1/follow: re-point this follower at a new
// primary without a restart.
type followRequest struct {
	Primary string `json:"primary"`
}

// followResponse acknowledges POST /v1/follow.
type followResponse struct {
	OK      bool   `json:"ok"`
	Primary string `json:"primary"`
}

// handleFollow re-points a running follower's tail loop at a new primary
// (Options.Retarget, typically Follower.Retarget) — the failover path
// after a peer's promotion: the surviving followers re-point at the
// promoted node instead of restarting with a new -follow. Only a node
// still in the follower role re-points; a promoted primary answers 409.
func (s *Server) handleFollow(w http.ResponseWriter, r *http.Request) {
	if !s.readOnly.Load() {
		writeError(w, http.StatusConflict, CodeConflict, errors.New("not a follower: this node is the primary"))
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req followRequest
	err := strictUnmarshal(body.Bytes(), &req)
	putBuf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if err := s.opts.Retarget(req.Primary); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	writeJSON(w, followResponse{OK: true, Primary: req.Primary})
}

// noteFencing latches the highest epoch any peer has presented on the
// replication surface. Once it exceeds the engine's own epoch this node
// has been deposed: /v1/update answers 409 fenced until (and unless) its
// own epoch overtakes again via promotion.
func (s *Server) noteFencing(peer uint64) {
	for {
		cur := s.fencedBy.Load()
		if peer <= cur || s.fencedBy.CompareAndSwap(cur, peer) {
			return
		}
	}
}

// engineEpoch reads the served engine's fencing token when it exposes one
// (both engine.Engine and shard.Sharded do).
func (s *Server) engineEpoch() uint64 {
	if ep, ok := s.eng.(interface{ Epoch() uint64 }); ok {
		return ep.Epoch()
	}
	return 0
}
