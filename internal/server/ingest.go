package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"netclus/internal/ingest"
	"netclus/internal/trajectory"
	"netclus/internal/wal"
)

// errQuorumLost marks a batch that applied (and logged) locally but did
// not gather its follower quorum in time.
var errQuorumLost = errors.New("quorum not reached")

// handleIngest is POST /v1/ingest: an NDJSON stream of raw GPS traces in,
// an NDJSON stream of per-line verdicts out ({"line":N,"trajectory_id":I}
// or {"line":N,"code":C,"error":…}). The body is consumed incrementally —
// chunked transfer works — and verdicts flush as each batch commits, so a
// client sees acknowledgements while still sending.
//
// Role checks mirror /v1/update: followers answer 403 read_only, a fenced
// ex-primary answers 409 fenced. After the first verdict is on the wire
// the status is fixed at 200; a mid-stream failure is reported as a final
// error-envelope line ({"error":…,"code":…}, no "line" field) and the
// stream ends early.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.readOnly.Load() {
		writeError(w, http.StatusForbidden, CodeReadOnly, errors.New("read-only replica: stream traces to the primary (or promote this replica)"))
		return
	}
	if own := s.engineEpoch(); s.fencedBy.Load() > own {
		writeError(w, http.StatusConflict, CodeFenced, fmt.Errorf("primary fenced: a peer opened epoch %d past ours (%d); this deposed node rejects writes", s.fencedBy.Load(), own))
		return
	}

	sink := ingest.SinkFunc(func(ctx context.Context, trs []*trajectory.Trajectory) ([]trajectory.ID, error) {
		ids, err := s.eng.AddTrajectories(trs)
		if err != nil {
			return nil, err
		}
		// Semi-sync quorum, batch-grained: the whole window's verdicts
		// wait on one LSN, amortising the round trip over MaxBatch lines.
		if s.opts.Quorum > 0 && s.opts.Log != nil {
			lsn := s.opts.Log.HeadLSN()
			if !s.acks.await(ctx, s.opts.Quorum, lsn, s.opts.QuorumTimeout, s.drainSignal()) {
				return nil, fmt.Errorf("batch applied locally at LSN %d but %d follower ack(s) did not arrive within %v: %w",
					lsn, s.opts.Quorum, s.opts.QuorumTimeout, errQuorumLost)
			}
		}
		return ids, nil
	})

	rc := http.NewResponseController(w)
	// Verdicts stream back while the client is still sending the body.
	// Without full-duplex mode the HTTP/1.x server closes the request
	// body at the first response flush ("invalid Read on closed Body"
	// mid-feed); HTTP/2 is always full-duplex and returns nil here.
	if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor == 1 {
		writeError(w, http.StatusInternalServerError, CodeInternal,
			fmt.Errorf("streaming ingest needs a full-duplex connection: %w", err))
		return
	}
	enc := json.NewEncoder(w)
	emitted := false
	emit := func(v ingest.Verdict) error {
		if !emitted {
			w.Header().Set("Content-Type", "application/x-ndjson")
			emitted = true
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
		return rc.Flush()
	}

	err := s.ing.Run(r.Context(), r.Body, sink, emit)
	if err == nil {
		if !emitted {
			// Empty feed: answer with an empty NDJSON body, not a hang.
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		return
	}
	if r.Context().Err() != nil {
		return // client gone; nobody is reading
	}
	status, code := classifyIngestErr(err)
	if !emitted {
		writeError(w, status, code, err)
		return
	}
	// Headers are on the wire: report the abort as a trailing error
	// envelope (distinguishable from verdicts by the missing "line").
	_ = enc.Encode(errorResponse{Error: err.Error(), Code: code})
	_ = rc.Flush()
}

func classifyIngestErr(err error) (int, string) {
	switch {
	case errors.Is(err, wal.ErrLogFailed):
		return http.StatusInternalServerError, CodeLogFailed
	case errors.Is(err, errQuorumLost):
		return http.StatusServiceUnavailable, CodeQuorumTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusBadRequest, CodeCanceled
	default:
		// Read failures and engine conflicts: the stream is the client's.
		return http.StatusBadRequest, CodeBadRequest
	}
}
