package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
)

// buildFixture generates a small deterministic dataset and a NETCLUS index
// over it (same shape as the engine package's fixture; duplicated because
// test helpers do not cross packages).
func buildFixture(t testing.TB, seed int64) (*core.Index, *tops.Instance) {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 500, SpanKm: 10, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 60, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 120, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.Build(inst, core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	return idx, inst
}

// newTestServer boots an in-process serving stack over a fresh fixture.
func newTestServer(t testing.TB, seed int64, opts Options) (*httptest.Server, *Server, *engine.Engine, *core.Index) {
	t.Helper()
	idx, _ := buildFixture(t, seed)
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv, eng, idx
}

func postJSON(t testing.TB, client *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, data
}

func TestQueryEndpointMatchesEngine(t *testing.T) {
	ts, _, eng, _ := newTestServer(t, 311, Options{})
	code, data := postJSON(t, ts.Client(), ts.URL+"/v1/query", `{"k":5,"tau":0.8}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var got queryResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(context.Background(), core.QueryOptions{K: 5, Pref: tops.Binary(0.8)})
	if err != nil {
		t.Fatal(err)
	}
	if got.EstimatedUtility != want.EstimatedUtility || len(got.Sites) != len(want.Sites) {
		t.Fatalf("HTTP answer %+v does not match engine %+v", got, want)
	}
	for i := range want.Sites {
		if got.Sites[i] != int64(want.Sites[i]) || got.SiteIDs[i] != int32(want.SiteIDs[i]) {
			t.Fatalf("site %d differs: %v/%v vs %v/%v", i, got.Sites[i], got.SiteIDs[i], want.Sites[i], want.SiteIDs[i])
		}
	}
	if !got.Batched {
		t.Error("default server should answer via the micro-batcher")
	}
}

func TestQueryValidationErrors(t *testing.T) {
	ts, _, _, _ := newTestServer(t, 313, Options{})
	cases := []string{
		``,
		`{`,
		`not json`,
		`{"k":0,"tau":0.8}`,
		`{"k":-3,"tau":0.8}`,
		`{"k":5}`,
		`{"k":5,"tau":-1}`,
		`{"k":5,"tau":0}`,
		`{"k":5,"tau":1e999}`,
		`{"k":1000000000,"tau":0.8}`,
		`{"k":5,"tau":0.8,"pref":"cubic"}`,
		`{"k":5,"tau":0.8,"lambda":2}`,
		`{"k":5,"tau":0.8,"pref":"linear","fm":true}`,
		`{"k":5,"tau":0.8,"timeout_ms":-4}`,
		`{"k":5,"tau":0.8,"bogus":1}`,
		`{"k":5,"tau":0.8}{"k":1,"tau":1}`,
	}
	for _, body := range cases {
		code, data := postJSON(t, ts.Client(), ts.URL+"/v1/query", body)
		if code != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, code, data)
		}
	}
	// Method filtering.
	resp, err := ts.Client().Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query: %d, want 405", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, _, _, _ := newTestServer(t, 317, Options{})
	code, data := postJSON(t, ts.Client(), ts.URL+"/v1/query/batch",
		`{"queries":[{"k":1,"tau":0.8},{"k":5,"tau":0.8},{"k":0,"tau":0.8}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	var out batchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[1].Error != "" {
		t.Fatalf("valid items errored: %+v", out.Results)
	}
	if out.Results[2].Error == "" {
		t.Fatal("k=0 item did not error")
	}
	if out.Results[0].Result.EstimatedUtility > out.Results[1].Result.EstimatedUtility {
		t.Fatal("k=1 beats k=5: submodularity violated over the wire")
	}
	// Whole-batch validation errors.
	for _, body := range []string{`{"queries":[]}`, `{}`, `{"queries":[{"k":1,"tau":0.8}],"timeout_ms":-1}`} {
		if code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query/batch", body); code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, code)
		}
	}
	// Per-item timeout_ms degrades only its own slot.
	code, data = postJSON(t, ts.Client(), ts.URL+"/v1/query/batch",
		`{"queries":[{"k":1,"tau":0.8,"timeout_ms":5},{"k":2,"tau":0.8}]}`)
	if code != http.StatusOK {
		t.Fatalf("mixed batch: %d %s", code, data)
	}
	out = batchResponse{}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Error == "" || out.Results[1].Error != "" {
		t.Fatalf("per-item timeout handling wrong: %+v", out.Results)
	}
}

func TestUpdateEndpoints(t *testing.T) {
	ts, _, _, idx := newTestServer(t, 331, Options{})
	inst := idx.TopsInstance()
	// Find a non-site node.
	var free int64 = -1
	for v := 0; v < inst.G.NumNodes(); v++ {
		if _, ok := inst.SiteIDOf(roadnet.NodeID(v)); !ok {
			free = int64(v)
			break
		}
	}
	if free < 0 {
		t.Skip("all nodes are sites")
	}
	code, data := postJSON(t, ts.Client(), ts.URL+"/v1/update", fmt.Sprintf(`{"op":"add_site","node":%d}`, free))
	if code != http.StatusOK {
		t.Fatalf("add_site: %d %s", code, data)
	}
	// Duplicate add conflicts.
	if code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/update", fmt.Sprintf(`{"op":"add_site","node":%d}`, free)); code != http.StatusConflict {
		t.Fatalf("duplicate add_site: %d, want 409", code)
	}
	if code, data = postJSON(t, ts.Client(), ts.URL+"/v1/update", fmt.Sprintf(`{"op":"delete_site","node":%d}`, free)); code != http.StatusOK {
		t.Fatalf("delete_site: %d %s", code, data)
	}
	// Trajectory round trip: clone an existing trajectory's node sequence.
	nodes := inst.Trajs.Get(0).Nodes
	payload, _ := json.Marshal(map[string]any{"op": "add_trajectory", "nodes": nodes})
	code, data = postJSON(t, ts.Client(), ts.URL+"/v1/update", string(payload))
	if code != http.StatusOK {
		t.Fatalf("add_trajectory: %d %s", code, data)
	}
	var ur updateResponse
	if err := json.Unmarshal(data, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.TrajectoryID == nil {
		t.Fatal("add_trajectory returned no id")
	}
	if code, data = postJSON(t, ts.Client(), ts.URL+"/v1/update", fmt.Sprintf(`{"op":"delete_trajectory","id":%d}`, *ur.TrajectoryID)); code != http.StatusOK {
		t.Fatalf("delete_trajectory: %d %s", code, data)
	}
	if code, _ = postJSON(t, ts.Client(), ts.URL+"/v1/update", fmt.Sprintf(`{"op":"delete_trajectory","id":%d}`, *ur.TrajectoryID)); code != http.StatusConflict {
		t.Fatalf("double delete_trajectory: %d, want 409", code)
	}
	// Structural validation.
	for _, body := range []string{`{}`, `{"op":"nuke"}`, `{"op":"add_site","node":-1}`, `{"op":"add_trajectory"}`, `{"op":"add_site","node":1,"id":2}`} {
		if code, _ := postJSON(t, ts.Client(), ts.URL+"/v1/update", body); code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, code)
		}
	}
}

func TestSnapshotEndpointRoundTrip(t *testing.T) {
	ts, _, eng, idx := newTestServer(t, 337, Options{})
	resp, err := ts.Client().Post(ts.URL+"/v1/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty snapshot")
	}
	loaded, err := core.ReadIndex(bytes.NewReader(data), idx.TopsInstance())
	if err != nil {
		t.Fatalf("downloaded snapshot does not load: %v", err)
	}
	q := core.QueryOptions{K: 5, Pref: tops.Binary(0.8)}
	a, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.EstimatedUtility != b.EstimatedUtility {
		t.Fatalf("snapshot answers differently: %v vs %v", a.EstimatedUtility, b.EstimatedUtility)
	}
}

func TestHealthzDraining(t *testing.T) {
	ts, srv, _, _ := newTestServer(t, 347, Options{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}
	srv.SetDraining(true)
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining healthz: %d %q", resp.StatusCode, h.Status)
	}
}

func TestBatcherCoalesces(t *testing.T) {
	ts, srv, _, _ := newTestServer(t, 349, Options{BatchWindow: 40 * time.Millisecond, BatchMaxSize: 64})
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, data := postJSON(t, ts.Client(), ts.URL+"/v1/query", `{"k":5,"tau":0.8}`)
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, data)
			}
		}()
	}
	wg.Wait()
	st := srv.Stats()
	if st.Batching == nil {
		t.Fatal("batching stats missing")
	}
	if st.Batching.Coalesced != n {
		t.Fatalf("coalesced %d queries, want %d", st.Batching.Coalesced, n)
	}
	if st.Batching.Flushes >= n {
		t.Fatalf("%d flushes for %d queries: no coalescing happened", st.Batching.Flushes, n)
	}
	if st.Engine.BatchQueries != n || st.Engine.Queries != 0 {
		t.Fatalf("engine saw %d batch / %d single queries, want %d/0", st.Engine.BatchQueries, st.Engine.Queries, n)
	}
}

// TestServeEndToEndRace is the whole-stack adversarial test: concurrent
// queries (single and batch), §6 updates, live snapshots and stats polls
// hammer one in-process server while the race detector watches, and every
// stats sample must be monotone against the previous one.
func TestServeEndToEndRace(t *testing.T) {
	ts, srv, _, idx := newTestServer(t, 353, Options{BatchWindow: time.Millisecond, BatchMaxSize: 32})
	client := ts.Client()
	client.Timeout = 30 * time.Second
	iters := 60
	if testing.Short() {
		iters = 25
	}

	var wg sync.WaitGroup
	// Single-query workers (some deliberately invalid → 400).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + w)))
			for i := 0; i < iters; i++ {
				k := 1 + rng.Intn(8)
				tau := 0.4 + rng.Float64()*3
				body := fmt.Sprintf(`{"k":%d,"tau":%.3f}`, k, tau)
				wantOK := true
				if i%7 == 3 { // malformed draw
					body = fmt.Sprintf(`{"k":%d,"tau":-1}`, k)
					wantOK = false
				}
				code, data := postJSON(t, client, ts.URL+"/v1/query", body)
				if wantOK && code != http.StatusOK {
					t.Errorf("query %q: %d %s", body, code, data)
				}
				if !wantOK && code != http.StatusBadRequest {
					t.Errorf("bad query %q: %d, want 400", body, code)
				}
			}
		}(w)
	}
	// Batch worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			code, data := postJSON(t, client, ts.URL+"/v1/query/batch",
				`{"queries":[{"k":2,"tau":0.8},{"k":4,"tau":1.6},{"k":6,"tau":0.8}]}`)
			if code != http.StatusOK {
				t.Errorf("batch: %d %s", code, data)
			}
		}
	}()
	// Update worker: flip one site on and off, stream trajectories in.
	wg.Add(1)
	go func() {
		defer wg.Done()
		inst := idx.TopsInstance()
		var free int64 = -1
		for v := 0; v < inst.G.NumNodes(); v++ {
			if _, ok := inst.SiteIDOf(roadnet.NodeID(v)); !ok {
				free = int64(v)
				break
			}
		}
		nodes := inst.Trajs.Get(1).Nodes
		payload, _ := json.Marshal(map[string]any{"op": "add_trajectory", "nodes": nodes})
		for i := 0; i < iters/2; i++ {
			if free >= 0 {
				if code, data := postJSON(t, client, ts.URL+"/v1/update", fmt.Sprintf(`{"op":"add_site","node":%d}`, free)); code != http.StatusOK {
					t.Errorf("add_site: %d %s", code, data)
				}
				if code, data := postJSON(t, client, ts.URL+"/v1/update", fmt.Sprintf(`{"op":"delete_site","node":%d}`, free)); code != http.StatusOK {
					t.Errorf("delete_site: %d %s", code, data)
				}
			}
			if i%5 == 0 {
				if code, data := postJSON(t, client, ts.URL+"/v1/update", string(payload)); code != http.StatusOK {
					t.Errorf("add_trajectory: %d %s", code, data)
				}
			}
		}
	}()
	// Snapshot worker: live checkpoints must stream while traffic runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			resp, err := client.Post(ts.URL+"/v1/snapshot", "", nil)
			if err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			n, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil || n == 0 {
				t.Errorf("snapshot stream: %d bytes, %v", n, err)
			}
		}
	}()
	// Stats poller: every counter must be monotone non-decreasing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev statszResponse
		for i := 0; i < iters; i++ {
			resp, err := client.Get(ts.URL + "/statsz")
			if err != nil {
				t.Errorf("statsz: %v", err)
				return
			}
			var cur statszResponse
			err = json.NewDecoder(resp.Body).Decode(&cur)
			resp.Body.Close()
			if err != nil {
				t.Errorf("statsz decode: %v", err)
				return
			}
			checkMonotone(t, prev, cur)
			prev = cur
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	st := srv.Stats()
	if st.Engine.Queries+st.Engine.BatchQueries == 0 {
		t.Fatal("engine served no queries")
	}
	if st.Routes["/v1/query"].Requests == 0 || st.Routes["/v1/update"].Requests == 0 {
		t.Fatalf("route counters empty: %+v", st.Routes)
	}
	if st.Routes["/v1/query"].Errors4xx == 0 {
		t.Error("deliberately malformed queries were never counted as 4xx")
	}
	if st.Batching == nil || st.Batching.Coalesced == 0 {
		t.Error("no queries went through the micro-batcher")
	}
}

// checkMonotone asserts no counter in cur regressed against prev (torn
// reads across the atomic blocks would show up as regressions under load).
func checkMonotone(t *testing.T, prev, cur statszResponse) {
	t.Helper()
	type pair struct {
		name     string
		old, new uint64
	}
	pairs := []pair{
		{"engine.queries", prev.Engine.Queries, cur.Engine.Queries},
		{"engine.batch_queries", prev.Engine.BatchQueries, cur.Engine.BatchQueries},
		{"engine.batches", prev.Engine.Batches, cur.Engine.Batches},
		{"engine.updates", prev.Engine.Updates, cur.Engine.Updates},
		{"engine.errors", prev.Engine.Errors, cur.Engine.Errors},
		{"engine.cover_hits", prev.Engine.CoverHits, cur.Engine.CoverHits},
		{"engine.cover_misses", prev.Engine.CoverMisses, cur.Engine.CoverMisses},
	}
	for route, rp := range prev.Routes {
		rc, ok := cur.Routes[route]
		if !ok {
			t.Errorf("route %s vanished from statsz", route)
			continue
		}
		pairs = append(pairs,
			pair{route + ".requests", rp.Requests, rc.Requests},
			pair{route + ".errors_4xx", rp.Errors4xx, rc.Errors4xx},
			pair{route + ".errors_5xx", rp.Errors5xx, rc.Errors5xx},
		)
	}
	if prev.Batching != nil && cur.Batching != nil {
		pairs = append(pairs,
			pair{"batching.flushes", prev.Batching.Flushes, cur.Batching.Flushes},
			pair{"batching.coalesced", prev.Batching.Coalesced, cur.Batching.Coalesced},
			pair{"batching.max_flush", prev.Batching.MaxFlush, cur.Batching.MaxFlush},
		)
	}
	for _, p := range pairs {
		if p.new < p.old {
			t.Errorf("counter %s regressed: %d -> %d", p.name, p.old, p.new)
		}
	}
}

// TestDrainRefusesNewBatchedQueries pins the shutdown contract of the
// admission layer: after Close, Do returns ErrDraining instead of hanging.
func TestDrainRefusesNewBatchedQueries(t *testing.T) {
	idx, _ := buildFixture(t, 359)
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := newBatcher(eng, time.Millisecond, 8)
	if _, err := b.Do(context.Background(), core.QueryOptions{K: 3, Pref: tops.Binary(0.8)}); err != nil {
		t.Fatalf("pre-drain query: %v", err)
	}
	b.Close()
	if _, err := b.Do(context.Background(), core.QueryOptions{K: 3, Pref: tops.Binary(0.8)}); err != ErrDraining {
		t.Fatalf("post-drain query: %v, want ErrDraining", err)
	}
}
