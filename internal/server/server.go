// Package server is the network serving layer over the NETCLUS engine: an
// HTTP JSON API with a micro-batching admission path, per-request
// deadlines, graceful drain, and an atomic metrics block.
//
// Endpoints:
//
//	POST /v1/query        one TOPS query (coalesced into engine batches)
//	POST /v1/query/batch  many queries in one engine call
//	POST /v1/update       §6 dynamic updates (site/trajectory add/delete)
//	POST /v1/snapshot     stream a consistent checkpoint of the live index
//	POST /v1/checkpoint   stream the recovery bundle (dataset + snapshot)
//	GET  /v1/log          stream WAL records from ?from=<lsn>; ?wait=<dur>
//	                      long-polls until new records arrive
//	GET  /v1/replication  replication status resource (role, epoch, LSNs,
//	                      per-follower acks, quorum config)
//	POST /v1/promote      promote a read-only follower to primary
//	GET  /healthz         liveness; 503 once draining or stale
//	GET  /statsz          engine + server counters
//
// Every error answers the uniform envelope {"error": …, "code": …} where
// code is a stable machine-readable class (see API.md); all 503 responses
// carry a Retry-After header.
//
// The layering mirrors the rest of the module: core stays synchronous,
// engine owns the reader/writer protocol, and this package owns transport
// concerns only — decoding, limits, deadlines, admission batching, drain.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/ingest"
	"netclus/internal/obs"
	"netclus/internal/roadnet"
	"netclus/internal/shard"
	"netclus/internal/trajectory"
	"netclus/internal/wal"
)

// Engine is the serving surface the HTTP layer drives: queries, batches,
// §6 updates, live checkpoints, and counters. Both the single-index engine
// (engine.Engine) and the scatter-gather sharded engine (shard.Sharded)
// satisfy it, so one server binary fronts either topology.
type Engine interface {
	Query(ctx context.Context, opts core.QueryOptions) (*core.QueryResult, error)
	QueryBatch(ctx context.Context, qs []core.QueryOptions) []engine.BatchItem
	Stats() engine.Stats
	Snapshot(w io.Writer) (int64, error)
	// Checkpoint streams the recovery bundle: the mutated dataset state
	// plus the LSN-stamped snapshot (see wal.WriteCheckpoint). A follower
	// bootstraps from it when the primary's log no longer reaches LSN 1.
	Checkpoint(w io.Writer) (int64, error)
	Graph() *roadnet.Graph
	AddSite(v roadnet.NodeID) error
	DeleteSite(v roadnet.NodeID) error
	AddTrajectory(tr *trajectory.Trajectory) (trajectory.ID, error)
	// AddTrajectories applies a batch atomically under one WAL record —
	// the ingest pipeline's write path.
	AddTrajectories(trs []*trajectory.Trajectory) ([]trajectory.ID, error)
	DeleteTrajectory(tid trajectory.ID) error
}

// shardStatser is the optional per-shard metrics surface: when the served
// engine is sharded, /statsz additionally exposes the per-shard counters
// (sites, scatter calls, queue depths, cover-cache effectiveness).
type shardStatser interface {
	ShardStats() []shard.Stat
}

// Options configures a Server.
type Options struct {
	// BatchWindow is how long /v1/query waits to coalesce concurrent
	// queries into one engine batch. Zero selects the default (2ms);
	// negative disables micro-batching entirely (every query goes to
	// Engine.Query directly).
	BatchWindow time.Duration
	// BatchMaxSize flushes a micro-batch early once this many queries
	// have gathered. Zero selects the default (64).
	BatchMaxSize int
	// DefaultTimeout is the per-request deadline applied when the client
	// does not send timeout_ms. Zero selects the default (10s).
	DefaultTimeout time.Duration
	// Limits bound request decoding; zero fields take their defaults.
	Limits Limits
	// Log, when non-nil, is the primary's write-ahead log: GET /v1/log
	// streams its records to followers and /statsz reports its counters.
	Log *wal.Log
	// ReadOnly starts the server in the follower role: /v1/update answers
	// 403 read_only, because replicas apply mutations only from the
	// primary's log stream. A successful POST /v1/promote clears it.
	ReadOnly bool
	// Replication, when non-nil, reports the follower's tailing status;
	// it is embedded in /healthz, /statsz, and /v1/replication.
	Replication func() ReplicationStatus
	// Quorum, when > 0 on a log-serving primary, makes replication
	// semi-synchronous: a mutation's HTTP ack additionally waits until
	// Quorum followers have durably acknowledged its LSN (acks piggyback
	// on /v1/log tail requests as id=/acked= params). A mutation that
	// cannot gather the quorum within QuorumTimeout has still applied
	// locally but answers 503 quorum_timeout.
	Quorum int
	// QuorumTimeout bounds the quorum wait (default 5s).
	QuorumTimeout time.Duration
	// MaxLogWait caps the ?wait= long-poll park of GET /v1/log
	// (default 60s).
	MaxLogWait time.Duration
	// Promote, when non-nil, enables POST /v1/promote on a read-only
	// server. The callback must stop tailing the old primary, replay any
	// local log tail, attach the local log, and open a new epoch,
	// returning it; the server then leaves read-only mode.
	Promote func(ctx context.Context) (uint64, error)
	// Retarget, when non-nil, enables POST /v1/follow on a read-only
	// server: re-point this follower's tail loop at a new primary URL
	// without a restart (typically Follower.Retarget). The failover path
	// after a promotion: surviving followers re-point at the promoted
	// node instead of being rebuilt.
	Retarget func(primary string) error
	// Member, when non-nil, serves the per-shard distributed-greedy round
	// protocol under /v1/shard/ — this process is one shard of a
	// router-fronted topology (see internal/router).
	Member MemberEngine
	// Ingest, when non-nil, enables POST /v1/ingest: raw GPS traces are
	// decoded from NDJSON, map-matched onto the engine's graph across a
	// worker pool, and applied as AddTrajectories mutations — WAL-logged,
	// quorum-ackable, and replicated like hand-posted updates. See
	// internal/ingest for the pipeline and wire format.
	Ingest *ingest.Options
	// Logger receives the server's structured records (slow queries, shard
	// round traces). Nil discards them.
	Logger *slog.Logger
	// SlowQuery, when > 0, emits one structured log record for every
	// /v1/query whose end-to-end handling exceeds it: trace id, k, ψ
	// fingerprint, τ, cache hit/miss, batching, elapsed. Zero disables.
	SlowQuery time.Duration
}

func (o Options) withDefaults() Options {
	if o.BatchWindow == 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.BatchMaxSize <= 0 {
		o.BatchMaxSize = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 10 * time.Second
	}
	if o.QuorumTimeout <= 0 {
		o.QuorumTimeout = 5 * time.Second
	}
	if o.MaxLogWait <= 0 {
		o.MaxLogWait = 60 * time.Second
	}
	o.Limits = o.Limits.withDefaults()
	return o
}

// routeMetrics is one endpoint's atomic counter block.
type routeMetrics struct {
	requests  atomic.Uint64
	errors4xx atomic.Uint64
	errors5xx atomic.Uint64
	totalNs   atomic.Int64
	maxNs     atomic.Int64
}

func (m *routeMetrics) observe(status int, d time.Duration) {
	m.requests.Add(1)
	switch {
	case status >= 500:
		m.errors5xx.Add(1)
	case status >= 400:
		m.errors4xx.Add(1)
	}
	ns := d.Nanoseconds()
	m.totalNs.Add(ns)
	for {
		cur := m.maxNs.Load()
		if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// routeStats is the JSON form of a routeMetrics block.
type routeStats struct {
	Requests  uint64  `json:"requests"`
	Errors4xx uint64  `json:"errors_4xx"`
	Errors5xx uint64  `json:"errors_5xx"`
	TotalMs   float64 `json:"total_ms"`
	MaxMs     float64 `json:"max_ms"`
}

func (m *routeMetrics) stats() routeStats {
	return routeStats{
		Requests:  m.requests.Load(),
		Errors4xx: m.errors4xx.Load(),
		Errors5xx: m.errors5xx.Load(),
		TotalMs:   float64(m.totalNs.Load()) / 1e6,
		MaxMs:     float64(m.maxNs.Load()) / 1e6,
	}
}

// Server serves one Engine over HTTP. Create it with New, mount it as an
// http.Handler, and Close it after the http.Server has drained.
type Server struct {
	eng  Engine
	opts Options
	bat  *batcher // nil when micro-batching is disabled
	mux  *http.ServeMux
	log  *slog.Logger

	start    time.Time
	draining atomic.Bool
	// drainCh is closed when draining flips on, waking parked long-poll
	// waiters and quorum waits so shutdown is not held up by them.
	drainMu sync.Mutex
	drainCh chan struct{}

	// readOnly is the live role (seeded from Options.ReadOnly, cleared by
	// a successful promotion); fencedBy latches the highest epoch any peer
	// presented on the replication surface (see noteFencing); promoteMu
	// serializes /v1/promote.
	readOnly  atomic.Bool
	fencedBy  atomic.Uint64
	promoteMu sync.Mutex
	acks      *ackTracker

	// ing is the ingestion pipeline behind POST /v1/ingest (nil when
	// Options.Ingest is nil).
	ing *ingest.Ingestor

	mQuery       routeMetrics
	mBatch       routeMetrics
	mUpdate      routeMetrics
	mIngest      routeMetrics
	mSnapshot    routeMetrics
	mCheckpoint  routeMetrics
	mLog         routeMetrics
	mReplication routeMetrics
	mPromote     routeMetrics
	mFollow      routeMetrics
	mShard       routeMetrics
	mHealth      routeMetrics
	mStats       routeMetrics
	mMetrics     routeMetrics

	snapshotBytes atomic.Int64
	logRecords    atomic.Uint64
}

// New wraps eng in a serving layer. The caller keeps ownership of the
// engine (e.g. for a final snapshot after drain).
func New(eng Engine, opts Options) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	batching := opts.BatchWindow >= 0
	opts = opts.withDefaults()
	s := &Server{eng: eng, opts: opts, start: time.Now(), drainCh: make(chan struct{}), acks: newAckTracker()}
	s.log = opts.Logger
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	s.log = s.log.With("component", "server")
	s.readOnly.Store(opts.ReadOnly)
	if batching {
		s.bat = newBatcher(eng, opts.BatchWindow, opts.BatchMaxSize)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.instrument(&s.mQuery, http.MethodPost, s.handleQuery))
	mux.HandleFunc("/v1/query/batch", s.instrument(&s.mBatch, http.MethodPost, s.handleBatch))
	mux.HandleFunc("/v1/update", s.instrument(&s.mUpdate, http.MethodPost, s.handleUpdate))
	if opts.Ingest != nil {
		s.ing = ingest.New(eng.Graph(), *opts.Ingest)
		// Streams get their own (much larger) body cap: the pipeline
		// consumes the NDJSON incrementally, never buffering it whole.
		mux.HandleFunc("/v1/ingest", s.instrumentBody(&s.mIngest, http.MethodPost, opts.Limits.MaxIngestBytes, s.handleIngest))
	}
	mux.HandleFunc("/v1/snapshot", s.instrument(&s.mSnapshot, http.MethodPost, s.handleSnapshot))
	mux.HandleFunc("/v1/checkpoint", s.instrument(&s.mCheckpoint, http.MethodPost, s.handleCheckpoint))
	if opts.Log != nil {
		mux.HandleFunc("/v1/log", s.instrument(&s.mLog, http.MethodGet, s.handleLog))
	}
	mux.HandleFunc("/v1/replication", s.instrument(&s.mReplication, http.MethodGet, s.handleReplication))
	if opts.Promote != nil {
		mux.HandleFunc("/v1/promote", s.instrument(&s.mPromote, http.MethodPost, s.handlePromote))
	}
	if opts.Retarget != nil {
		mux.HandleFunc("/v1/follow", s.instrument(&s.mFollow, http.MethodPost, s.handleFollow))
	}
	if opts.Member != nil {
		mux.HandleFunc("/v1/shard/meta", s.instrument(&s.mShard, http.MethodGet, s.handleShardMeta))
		mux.HandleFunc("/v1/shard/reps", s.instrument(&s.mShard, http.MethodGet, s.handleShardReps))
		mux.HandleFunc("/v1/shard/owner", s.instrument(&s.mShard, http.MethodGet, s.handleShardOwner))
		mux.HandleFunc("/v1/shard/query/start", s.instrument(&s.mShard, http.MethodPost, s.handleShardStart))
		mux.HandleFunc("/v1/shard/query/step", s.instrument(&s.mShard, http.MethodPost, s.handleShardStep))
		mux.HandleFunc("/v1/shard/query/end", s.instrument(&s.mShard, http.MethodPost, s.handleShardEnd))
	}
	mux.HandleFunc("/healthz", s.instrument(&s.mHealth, http.MethodGet, s.handleHealth))
	mux.HandleFunc("/statsz", s.instrument(&s.mStats, http.MethodGet, s.handleStats))
	mux.HandleFunc("/metrics", s.instrument(&s.mMetrics, http.MethodGet, s.handleMetrics))
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the health signal: load balancers polling /healthz see
// 503 and stop routing new traffic while in-flight requests finish. It
// also wakes parked /v1/log long-polls and quorum waits, so shutdown does
// not have to ride out their timeouts.
func (s *Server) SetDraining(v bool) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	was := s.draining.Load()
	if v && !was {
		close(s.drainCh)
	} else if !v && was {
		s.drainCh = make(chan struct{})
	}
	s.draining.Store(v)
}

// drainSignal returns the channel closed when draining begins.
func (s *Server) drainSignal() <-chan struct{} {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.drainCh
}

// Close stops the micro-batcher after the HTTP server has drained. Safe to
// call once, after http.Server.Shutdown has returned.
func (s *Server) Close() {
	if s.bat != nil {
		s.bat.Close()
	}
}

// statusWriter captures the response code for metrics and carries the
// request's trace id so writeError can stamp it into error envelopes.
type statusWriter struct {
	http.ResponseWriter
	status int
	trace  string
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush — the ingest stream flushes verdicts as they are produced.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with method filtering, body limiting and the
// endpoint's metrics block.
func (s *Server) instrument(m *routeMetrics, method string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrumentBody(m, method, s.opts.Limits.MaxBodyBytes, h)
}

// instrumentBody is instrument with an explicit body cap, for routes
// (the ingest stream) whose bodies legitimately exceed MaxBodyBytes.
func (s *Server) instrumentBody(m *routeMetrics, method string, maxBody int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// Deferred so a handler that aborts the connection (snapshot
		// stream failure panics with http.ErrAbortHandler) is still
		// counted; the panic continues unwinding afterwards.
		defer func() { m.observe(sw.status, time.Since(t0)) }()
		// Trace id: accept the client's (router, upstream service) when it
		// is well-formed, mint one otherwise. It is echoed on the response,
		// stamped into error envelopes, carried down the request context to
		// shard/follower calls, and keyed on by the slow-query log.
		trace := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(trace) {
			trace = obs.NewTraceID()
		}
		sw.trace = trace
		sw.Header().Set(obs.TraceHeader, trace)
		r = r.WithContext(obs.WithTrace(r.Context(), trace))
		if r.Method != method {
			writeError(sw, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("%s requires %s", r.URL.Path, method))
			return
		}
		r.Body = http.MaxBytesReader(sw, r.Body, maxBody)
		h(sw, r)
	}
}

// errorResponse is the uniform error body. Error is the human-readable
// message (kept for backward compatibility); Code is the stable
// machine-readable class clients should branch on (see the Code*
// constants and API.md).
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// TraceID echoes the request's trace id (client-supplied or minted at
	// the edge) so a failed call can be joined against server logs.
	TraceID string `json:"trace_id,omitempty"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	resp := errorResponse{Error: err.Error(), Code: code}
	if sw, ok := w.(*statusWriter); ok {
		resp.TraceID = sw.trace
	}
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// bufPool recycles the request-body and response-encode buffers across
// requests: the serving hot path reads and writes through preallocated
// memory instead of allocating a fresh byte slice per request.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	b.Reset()
	bufPool.Put(b)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	buf := getBuf()
	if err := json.NewEncoder(buf).Encode(v); err == nil {
		_, _ = w.Write(buf.Bytes())
	}
	putBuf(buf)
}

// queryStatus maps an engine-side query failure to an HTTP status and
// error code.
func queryStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeTimeout
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, CodeCanceled
	default:
		// Structurally valid requests that the engine still rejects (an
		// instance left without representatives, FM over a non-binary ψ
		// that slipped the decoder) are client-resolvable.
		return http.StatusBadRequest, CodeBadRequest
	}
}

// queryResponse is the wire form of one answer.
type queryResponse struct {
	Sites              []int64 `json:"sites"`
	SiteIDs            []int32 `json:"site_ids"`
	EstimatedUtility   float64 `json:"estimated_utility"`
	EstimatedCovered   int     `json:"estimated_covered"`
	InstanceUsed       int     `json:"instance_used"`
	NumRepresentatives int     `json:"num_representatives"`
	Batched            bool    `json:"batched,omitempty"`
	ElapsedMs          float64 `json:"elapsed_ms"`
}

func toQueryResponse(res *core.QueryResult, batched bool, elapsed time.Duration) queryResponse {
	out := queryResponse{
		Sites:              make([]int64, len(res.Sites)),
		SiteIDs:            make([]int32, len(res.SiteIDs)),
		EstimatedUtility:   res.EstimatedUtility,
		EstimatedCovered:   res.EstimatedCovered,
		InstanceUsed:       res.InstanceUsed,
		NumRepresentatives: res.NumRepresentatives,
		Batched:            batched,
		ElapsedMs:          float64(elapsed.Nanoseconds()) / 1e6,
	}
	for i, v := range res.Sites {
		out.Sites[i] = int64(v)
	}
	for i, v := range res.SiteIDs {
		out.SiteIDs[i] = int32(v)
	}
	return out
}

// requestCtx derives the per-request context: the client's timeout (or the
// server default) on top of the connection context, so a disconnecting
// client cancels its own query at the next engine checkpoint.
func (s *Server) requestCtx(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	return context.WithTimeout(r.Context(), timeout)
}

// readBody drains the request body into a pooled buffer. The caller owns
// the buffer on success and must putBuf it when done with the bytes.
func readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, bool) {
	buf := getBuf()
	if _, err := io.Copy(buf, r.Body); err != nil {
		putBuf(buf)
		// Only genuine MaxBytesReader overruns are 413; a client that
		// resets mid-upload is a plain bad request.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		}
		return nil, false
	}
	return buf, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	opts, timeout, err := decodeQueryRequest(body.Bytes(), s.opts.Limits)
	putBuf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, timeout)
	defer cancel()
	t0 := time.Now()
	var res *core.QueryResult
	batched := s.bat != nil
	if batched {
		res, err = s.bat.Do(ctx, opts)
	} else {
		res, err = s.eng.Query(ctx, opts)
	}
	if err != nil {
		status, code := queryStatus(err)
		writeError(w, status, code, err)
		return
	}
	elapsed := time.Since(t0)
	resp := toQueryResponse(res, batched, elapsed)
	coverHit := res.CoverHit
	res.Release()
	if s.opts.SlowQuery > 0 && elapsed >= s.opts.SlowQuery {
		s.log.Warn("slow query",
			"trace_id", obs.TraceID(ctx),
			"k", opts.K,
			"psi", opts.Pref.Name,
			"psi_fp", core.PrefFingerprint(opts.Pref),
			"tau_km", opts.Pref.Tau,
			"fm", opts.UseFM,
			"cover_hit", coverHit,
			"batched", batched,
			"elapsed_ms", float64(elapsed.Nanoseconds())/1e6,
		)
	}
	writeJSON(w, resp)
}

// batchResponse is the wire form of /v1/query/batch: results and errors
// are index-aligned with the request's queries.
type batchResponse struct {
	Results []batchItemResponse `json:"results"`
}

type batchItemResponse struct {
	Result *queryResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	qs, itemErrs, timeout, err := decodeBatchRequest(body.Bytes(), s.opts.Limits)
	putBuf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	// Only structurally valid items reach the engine; invalid ones keep
	// their decode error in the index-aligned response.
	valid := make([]core.QueryOptions, 0, len(qs))
	slot := make([]int, 0, len(qs))
	for i := range qs {
		if itemErrs[i] == nil {
			valid = append(valid, qs[i])
			slot = append(slot, i)
		}
	}
	ctx, cancel := s.requestCtx(r, timeout)
	defer cancel()
	t0 := time.Now()
	items := s.eng.QueryBatch(ctx, valid)
	elapsed := time.Since(t0)
	out := batchResponse{Results: make([]batchItemResponse, len(qs))}
	for i, err := range itemErrs {
		if err != nil {
			out.Results[i].Error = err.Error()
		}
	}
	for j, it := range items {
		i := slot[j]
		if it.Err != nil {
			out.Results[i].Error = it.Err.Error()
			continue
		}
		qr := toQueryResponse(it.Result, true, elapsed)
		it.Result.Release()
		out.Results[i].Result = &qr
	}
	writeJSON(w, out)
}

// updateResponse acknowledges one mutation.
type updateResponse struct {
	OK bool `json:"ok"`
	// TrajectoryID reports the id assigned by add_trajectory.
	TrajectoryID *int32 `json:"trajectory_id,omitempty"`
	// LSN is the write-ahead-log head right after this mutation committed
	// (0 when the server has no log).
	LSN uint64 `json:"lsn,omitempty"`
	// Quorum reports that the configured follower quorum durably
	// acknowledged LSN before this response.
	Quorum bool `json:"quorum,omitempty"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.readOnly.Load() {
		writeError(w, http.StatusForbidden, CodeReadOnly, errors.New("read-only replica: send updates to the primary (or promote this replica)"))
		return
	}
	if own := s.engineEpoch(); s.fencedBy.Load() > own {
		writeError(w, http.StatusConflict, CodeFenced, fmt.Errorf("primary fenced: a peer opened epoch %d past ours (%d); this deposed node rejects writes", s.fencedBy.Load(), own))
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	u, err := decodeUpdateRequest(body.Bytes())
	putBuf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	var resp updateResponse
	tApply := time.Now()
	switch u.Op {
	case "add_site":
		err = s.eng.AddSite(roadnet.NodeID(u.Node))
	case "delete_site":
		err = s.eng.DeleteSite(roadnet.NodeID(u.Node))
	case "add_trajectory":
		nodes := make([]roadnet.NodeID, len(u.Nodes))
		for i, v := range u.Nodes {
			nodes[i] = roadnet.NodeID(v)
		}
		var tr *trajectory.Trajectory
		tr, err = trajectory.New(s.eng.Graph(), nodes)
		if err == nil {
			var tid trajectory.ID
			tid, err = s.eng.AddTrajectory(tr)
			if err == nil {
				id := int32(tid)
				resp.TrajectoryID = &id
			}
		}
	case "delete_trajectory":
		err = s.eng.DeleteTrajectory(trajectory.ID(u.ID))
	}
	obs.UpdateApply.RecordSince(tApply)
	if err != nil {
		// A failed log append is the server's problem — the mutation
		// applied but its durability did not — everything else is a state
		// conflict (node already a site, id already deleted, node outside
		// graph): the client's fault.
		if errors.Is(err, wal.ErrLogFailed) {
			writeError(w, http.StatusInternalServerError, CodeLogFailed, err)
		} else {
			writeError(w, http.StatusConflict, CodeConflict, err)
		}
		return
	}
	resp.OK = true
	if s.opts.Log != nil {
		resp.LSN = s.opts.Log.HeadLSN()
	}
	// Semi-sync quorum: hold the ack until Quorum followers have durably
	// persisted past this mutation's LSN. On timeout the mutation has
	// still applied (and logged) locally — the envelope says so and the
	// client retries its read of the replicas, not the write.
	if s.opts.Quorum > 0 && s.opts.Log != nil {
		if !s.acks.await(r.Context(), s.opts.Quorum, resp.LSN, s.opts.QuorumTimeout, s.drainSignal()) {
			writeError(w, http.StatusServiceUnavailable, CodeQuorumTimeout,
				fmt.Errorf("update applied locally at LSN %d but %d follower ack(s) did not arrive within %v", resp.LSN, s.opts.Quorum, s.opts.QuorumTimeout))
			return
		}
		resp.Quorum = true
	}
	writeJSON(w, resp)
}

// handleSnapshot streams a consistent checkpoint of the live index. The
// engine takes its read lock for the duration, so concurrent queries
// proceed and updates wait — the §6 lifecycle's live-checkpoint story over
// HTTP.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="index.ncss"`)
	n, err := s.eng.Snapshot(w)
	s.snapshotBytes.Add(n)
	if err != nil {
		// Headers are already on the wire; aborting the connection is the
		// only honest failure signal left. Mark the metrics status first so
		// the abort shows up as a 5xx on /statsz.
		if sw, ok := w.(*statusWriter); ok {
			sw.status = http.StatusInternalServerError
		}
		panic(http.ErrAbortHandler)
	}
}

// handleCheckpoint streams the recovery bundle — the mutated dataset plus
// the LSN-stamped snapshot — under the engine read lock. Followers
// bootstrap from it when the primary's log has been compacted past LSN 1;
// operators can also curl it as an off-host backup that restores without
// the original preset's site/trajectory state.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="checkpoint.ncck"`)
	n, err := s.eng.Checkpoint(w)
	s.snapshotBytes.Add(n)
	if err != nil {
		if sw, ok := w.(*statusWriter); ok {
			sw.status = http.StatusInternalServerError
		}
		panic(http.ErrAbortHandler)
	}
}

// handleLog streams WAL records from ?from=<lsn> in the on-disk frame
// format. With ?wait=<dur> the request long-polls: a caught-up follower
// parks until the WAL's commit notification reports new records (or the
// wait lapses, the client disconnects, or the server drains), cutting
// replica lag from poll-interval to ~RTT. Followers piggyback their
// identity, durable ack position, and fencing token on the same request
// (?id=, ?acked=, ?peer_epoch=), feeding the quorum tracker and the
// deposed-primary latch.
//
// The response carries the log's first retained and head LSNs plus the
// primary's epoch in headers (deprecated in favor of GET /v1/replication;
// kept for existing clients). A from below the first retained LSN is 410
// Gone: those records were compacted away and the follower must bootstrap
// from /v1/checkpoint.
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("from must be a positive LSN"))
		return
	}
	maxN := 8192
	if raw := q.Get("max"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 || v > 1<<16 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("max must be in 1..%d", 1<<16))
			return
		}
		maxN = v
	}
	var wait time.Duration
	if raw := q.Get("wait"); raw != "" {
		wait, err = time.ParseDuration(raw)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("wait must be a non-negative Go duration"))
			return
		}
		if wait > s.opts.MaxLogWait {
			wait = s.opts.MaxLogWait
		}
	}
	if id := q.Get("id"); id != "" {
		var acked uint64
		if raw := q.Get("acked"); raw != "" {
			acked, _ = strconv.ParseUint(raw, 10, 64)
		}
		s.acks.record(id, acked)
	}
	if raw := q.Get("peer_epoch"); raw != "" {
		if peer, perr := strconv.ParseUint(raw, 10, 64); perr == nil {
			s.noteFencing(peer)
		}
	}

	var expire <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		expire = t.C
	}
	var recs []wal.Record
	var head uint64
	for {
		recs, head, err = s.opts.Log.ReadFrom(from, maxN)
		if err != nil || len(recs) > 0 || wait <= 0 || s.draining.Load() || r.Context().Err() != nil {
			break
		}
		// Grab the commit signal, then re-check the head: an append landing
		// between ReadFrom and CommitSignal would otherwise be missed.
		commit := s.opts.Log.CommitSignal()
		if s.opts.Log.HeadLSN() >= from {
			continue
		}
		stop := false
		select {
		case <-commit:
		case <-expire:
			stop = true
		case <-r.Context().Done():
			stop = true
		case <-s.drainSignal():
			stop = true
		}
		if stop {
			recs, head, err = s.opts.Log.ReadFrom(from, maxN)
			break
		}
	}
	w.Header().Set("X-Netclus-First-LSN", strconv.FormatUint(s.opts.Log.FirstLSN(), 10))
	w.Header().Set("X-Netclus-Head-LSN", strconv.FormatUint(head, 10))
	w.Header().Set("X-Netclus-Epoch", strconv.FormatUint(s.engineEpoch(), 10))
	if err != nil {
		if errors.Is(err, wal.ErrCompacted) {
			writeError(w, http.StatusGone, CodeLogCompacted, err)
		} else {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	for _, rec := range recs {
		if err := wal.WriteFrame(w, rec); err != nil {
			return // client went away; nothing to salvage mid-stream
		}
		s.logRecords.Add(1)
	}
}

// ReplicationStatus is a follower's tailing report, embedded in /healthz
// and /statsz.
type ReplicationStatus struct {
	// Role is "follower" (primaries report their log under "wal" instead).
	Role string `json:"role"`
	// Primary is the URL the follower tails.
	Primary string `json:"primary"`
	// LSN is the last record applied locally; PrimaryLSN is the primary's
	// head at the last poll, and Lag their difference.
	LSN        uint64 `json:"lsn"`
	PrimaryLSN uint64 `json:"primary_lsn"`
	Lag        uint64 `json:"lag_records"`
	// LastPollSeconds is how long ago the last successful poll finished
	// (-1 before the first one).
	LastPollSeconds float64 `json:"last_poll_seconds"`
	// Polls and PollErrors count tailing rounds; LastError keeps the most
	// recent failure for /statsz visibility.
	Polls      uint64 `json:"polls"`
	PollErrors uint64 `json:"poll_errors"`
	LastError  string `json:"last_error,omitempty"`
	// Epoch is the fencing token this replica has applied from the
	// stream; PrimaryEpoch is the one the primary last reported.
	Epoch        uint64 `json:"epoch,omitempty"`
	PrimaryEpoch uint64 `json:"primary_epoch,omitempty"`
	// AckedLSN is the durable position last reported to the primary (the
	// quorum-ack channel piggybacked on tail requests).
	AckedLSN uint64 `json:"acked_lsn,omitempty"`
	// ConsecutiveFailures counts polls failed since the last success;
	// Unhealthy latches once the follower's threshold is crossed, and
	// /healthz answers 503 tail_stalled so a silently-stalled replica
	// leaves rotation instead of serving ever-staler reads.
	ConsecutiveFailures uint64 `json:"consecutive_failures,omitempty"`
	Unhealthy           bool   `json:"unhealthy,omitempty"`
	// NeedsBootstrap reports that the primary compacted past this replica's
	// position: polling can never catch up again and the replica serves
	// ever-staler reads until it is re-bootstrapped. /healthz answers 503
	// while this is set, so load balancers stop routing here.
	NeedsBootstrap bool `json:"needs_bootstrap,omitempty"`
	// Diverged reports that this replica's LSN is ahead of the primary's
	// reported head: the primary lost acknowledged history (or this
	// follower tails a fresh/behind primary after a re-point). Lag is
	// meaningless in that state and reads 0.
	Diverged bool `json:"diverged,omitempty"`
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status string `json:"status"`
	// Code is the machine-readable reason when unhealthy (draining,
	// need_bootstrap, tail_stalled); empty while healthy.
	Code          string  `json:"code,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Replication reports follower lag when this server is a read-replica.
	Replication *ReplicationStatus `json:"replication,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := healthResponse{Status: "ok", UptimeSeconds: time.Since(s.start).Seconds()}
	if s.opts.Replication != nil {
		st := s.opts.Replication()
		h.Replication = &st
		// Tailing health gates serving only while this node is still a
		// follower; a promoted primary's stale tail status is history.
		if s.readOnly.Load() {
			switch {
			case st.NeedsBootstrap:
				// The replica can never catch up by polling; take it out of
				// rotation rather than serving unboundedly stale reads as
				// healthy.
				h.Status, h.Code = "stale-replica", CodeNeedBootstrap
			case st.Unhealthy:
				// The tail loop has failed repeatedly: the replica is
				// silently falling behind.
				h.Status, h.Code = "tail-stalled", CodeTailStalled
			}
		}
	}
	if h.Code == "" && s.draining.Load() {
		h.Status, h.Code = "draining", CodeDraining
	}
	if h.Code != "" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", retryAfterSeconds)
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(h)
		return
	}
	writeJSON(w, h)
}

// statszResponse is the /statsz body: transport-level counters plus the
// engine's own Stats block.
type statszResponse struct {
	UptimeSeconds float64       `json:"uptime_seconds"`
	Draining      bool          `json:"draining"`
	Build         obs.BuildInfo `json:"build_info"`
	Engine        engine.Stats  `json:"engine"`
	// Shards carries the per-shard counter blocks (scatter calls, queue
	// depths, cover-cache effectiveness) when the served engine is sharded.
	Shards   []shard.Stat          `json:"shards,omitempty"`
	Routes   map[string]routeStats `json:"routes"`
	Batching *batcherStats         `json:"batching,omitempty"`
	// Ingest reports the live-ingestion pipeline (traces in, matched,
	// rejected, raw points, batches, match vs apply time) when POST
	// /v1/ingest is enabled.
	Ingest        *ingest.Stats `json:"ingest,omitempty"`
	SnapshotBytes int64         `json:"snapshot_bytes"`
	// WAL reports the primary's log (head/first LSN, segments, fsync
	// policy); Replication reports follower lag. LogRecordsServed counts
	// records streamed to followers over /v1/log.
	WAL              *wal.Stats         `json:"wal,omitempty"`
	Replication      *ReplicationStatus `json:"replication,omitempty"`
	LogRecordsServed uint64             `json:"log_records_served,omitempty"`
	// Memory reports the process allocation and GC counters, the
	// observability handle for the zero-allocation serving path: under a
	// steady cached-query load Mallocs should grow with the request
	// constant-rate, not with k or the dataset.
	Memory memStats `json:"memory"`
}

// memStats is the /statsz allocation block, a small projection of
// runtime.MemStats.
type memStats struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalMs  float64 `json:"gc_pause_total_ms"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

func readMemStats() memStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memStats{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
		GCPauseTotalMs:  float64(ms.PauseTotalNs) / 1e6,
		GCCPUFraction:   ms.GCCPUFraction,
	}
}

// Stats assembles the full metrics block (also used by tests directly).
func (s *Server) Stats() statszResponse {
	resp := statszResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		Build:         obs.ReadBuildInfo(),
		Engine:        s.eng.Stats(),
		Routes: map[string]routeStats{
			"/v1/query":       s.mQuery.stats(),
			"/v1/query/batch": s.mBatch.stats(),
			"/v1/update":      s.mUpdate.stats(),
			"/v1/snapshot":    s.mSnapshot.stats(),
			"/v1/checkpoint":  s.mCheckpoint.stats(),
			"/v1/replication": s.mReplication.stats(),
			"/healthz":        s.mHealth.stats(),
			"/statsz":         s.mStats.stats(),
			"/metrics":        s.mMetrics.stats(),
		},
		SnapshotBytes: s.snapshotBytes.Load(),
		Memory:        readMemStats(),
	}
	if ss, ok := s.eng.(shardStatser); ok {
		resp.Shards = ss.ShardStats()
	}
	if s.bat != nil {
		st := s.bat.stats()
		resp.Batching = &st
	}
	if s.ing != nil {
		st := s.ing.Stats()
		resp.Ingest = &st
		resp.Routes["/v1/ingest"] = s.mIngest.stats()
	}
	if s.opts.Log != nil {
		st := s.opts.Log.Stats()
		resp.WAL = &st
		resp.Routes["/v1/log"] = s.mLog.stats()
		resp.LogRecordsServed = s.logRecords.Load()
	}
	if s.opts.Promote != nil {
		resp.Routes["/v1/promote"] = s.mPromote.stats()
	}
	if s.opts.Retarget != nil {
		resp.Routes["/v1/follow"] = s.mFollow.stats()
	}
	if s.opts.Member != nil {
		resp.Routes["/v1/shard/"] = s.mShard.stats()
	}
	if s.opts.Replication != nil {
		st := s.opts.Replication()
		resp.Replication = &st
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}
