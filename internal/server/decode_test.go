package server

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestDecodeQueryRequestValid(t *testing.T) {
	opts, timeout, err := decodeQueryRequest([]byte(`{"k":5,"tau":0.8,"pref":"exp","lambda":2,"timeout_ms":250}`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.K != 5 || opts.Pref.Tau != 0.8 || opts.Pref.Name != "exp-decay" {
		t.Fatalf("decoded %+v", opts)
	}
	if timeout != 250*time.Millisecond {
		t.Fatalf("timeout %v", timeout)
	}
	// Default preference is binary; zero timeout means "server default".
	opts, timeout, err = decodeQueryRequest([]byte(`{"k":1,"tau":2}`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Pref.Name != "binary" || timeout != 0 {
		t.Fatalf("defaults: %+v timeout %v", opts, timeout)
	}
	// Client timeouts clamp to the limit instead of erroring.
	_, timeout, err = decodeQueryRequest([]byte(`{"k":1,"tau":2,"timeout_ms":999999999}`), Limits{MaxTimeout: time.Second})
	if err != nil || timeout != time.Second {
		t.Fatalf("clamp: %v %v", timeout, err)
	}
}

func TestDecodeUpdateRequestValid(t *testing.T) {
	u, err := decodeUpdateRequest([]byte(`{"op":"add_trajectory","nodes":[1,2,3]}`))
	if err != nil || len(u.Nodes) != 3 {
		t.Fatalf("%+v %v", u, err)
	}
	if _, err := decodeUpdateRequest([]byte(`{"op":"delete_site","node":7}`)); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeQueryRequest is the serving layer's input-hardening gate,
// mirroring PR-2's FuzzLoadSnapshot discipline for the snapshot codec: for
// arbitrary request bytes the decoder must either reject (the handler
// answers 4xx) or produce options that are in-range and engine-safe. It
// must never panic, and NaN/Inf floats, huge k, negative τ or trailing
// garbage must never survive into accepted options.
func FuzzDecodeQueryRequest(f *testing.F) {
	seeds := []string{
		`{"k":5,"tau":0.8}`,
		`{"k":1,"tau":6.4,"pref":"linear"}`,
		`{"k":3,"tau":0.5,"pref":"exp","lambda":0.7,"timeout_ms":100}`,
		`{"k":2,"tau":0.8,"fm":true,"f":32,"seed":9}`,
		`{"k":-1,"tau":0.8}`,
		`{"k":5,"tau":-3}`,
		`{"k":5,"tau":1e999}`,
		`{"k":99999999999999999999,"tau":0.8}`,
		`{"k":5,"tau":NaN}`,
		`{"k":5,"tau":Infinity}`,
		`{"k":5,"tau":0.8,"unknown":true}`,
		`{"k":5,"tau":0.8}trailing`,
		`[{"k":5}]`,
		`"string"`,
		`null`,
		``,
		`{`,
		strings.Repeat(`{"a":`, 64) + "1" + strings.Repeat(`}`, 64),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := Limits{}.withDefaults()
	f.Fuzz(func(t *testing.T, data []byte) {
		opts, timeout, err := decodeQueryRequest(data, lim)
		if err == nil {
			if opts.K <= 0 || opts.K > lim.MaxK {
				t.Fatalf("accepted k = %d outside (0, %d]", opts.K, lim.MaxK)
			}
			if math.IsNaN(opts.Pref.Tau) || math.IsInf(opts.Pref.Tau, 0) || opts.Pref.Tau <= 0 || opts.Pref.Tau > lim.MaxTau {
				t.Fatalf("accepted tau = %v outside (0, %v]", opts.Pref.Tau, lim.MaxTau)
			}
			if verr := opts.Pref.Validate(); verr != nil {
				t.Fatalf("accepted preference fails engine validation: %v", verr)
			}
			if opts.UseFM && opts.Pref.Name != "binary" {
				t.Fatalf("accepted FM over %s", opts.Pref.Name)
			}
			if timeout < 0 || timeout > lim.MaxTimeout {
				t.Fatalf("accepted timeout %v outside [0, %v]", timeout, lim.MaxTimeout)
			}
		}
		// The sibling decoders share strictUnmarshal and the same
		// validators; drive them over the same corpus for free coverage.
		if opts2, itemErrs, _, err := decodeBatchRequest(data, lim); err == nil {
			for i := range opts2 {
				if itemErrs[i] == nil && (opts2[i].K <= 0 || opts2[i].K > lim.MaxK) {
					t.Fatalf("batch accepted k = %d", opts2[i].K)
				}
			}
		}
		if u, err := decodeUpdateRequest(data); err == nil {
			switch u.Op {
			case "add_site", "delete_site", "add_trajectory", "delete_trajectory":
			default:
				t.Fatalf("accepted op %q", u.Op)
			}
			if u.Node < 0 || u.ID < 0 {
				t.Fatalf("accepted negative identifier: %+v", u)
			}
		}
	})
}
