package server

import (
	"testing"
)

// Decode-side allocation gates: the request decoders run on every HTTP
// query, so their allocation counts are pinned to small constants. The
// bounds are deliberately loose absolute ceilings — the point is to catch a
// regression that makes decoding allocate per-site or per-trajectory (or
// quadratically in the batch), not to chase every encoding/json internal.

func TestDecodeQueryAllocConstant(t *testing.T) {
	body := []byte(`{"k":5,"tau":0.8,"timeout_ms":60000}`)
	lim := Limits{}.withDefaults()
	// Warm-up + correctness check outside the measured loop.
	if _, _, err := decodeQueryRequest(body, lim); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, _, err := decodeQueryRequest(body, lim); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 24
	if avg > maxAllocs {
		t.Fatalf("decodeQueryRequest allocates %.1f objects per call, want <= %d", avg, maxAllocs)
	}
}

func TestDecodeBatchAllocConstant(t *testing.T) {
	// Eight homogeneous queries: the batched admission path's steady-state
	// shape. The per-item cost must stay a small constant, so the whole
	// batch decode is bounded by base + items*perItem.
	body := []byte(`{"queries":[
		{"k":5,"tau":0.8},{"k":3,"tau":0.4},{"k":7,"tau":1.6},{"k":5,"tau":0.8},
		{"k":2,"tau":3.2},{"k":5,"tau":0.8},{"k":4,"tau":0.4},{"k":6,"tau":1.6}
	],"timeout_ms":60000}`)
	lim := Limits{}.withDefaults()
	opts, itemErrs, _, err := decodeBatchRequest(body, lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 8 {
		t.Fatalf("decoded %d queries, want 8", len(opts))
	}
	for i, e := range itemErrs {
		if e != nil {
			t.Fatalf("item %d: %v", i, e)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, _, _, err := decodeBatchRequest(body, lim); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 120 // base + 8 items * small per-item constant
	if avg > maxAllocs {
		t.Fatalf("decodeBatchRequest allocates %.1f objects per call for 8 items, want <= %d", avg, maxAllocs)
	}
}
