package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"netclus/internal/obs"
	"netclus/internal/wal"
)

// Follower tails a primary's /v1/log and applies every record through the
// engine's replay path — the same path crash recovery uses, so a replica
// converges to results bit-identical with the primary's. A follower server
// runs with Options.ReadOnly (writes 403) and Options.Replication set to
// Follower.Status, which surfaces lag in /healthz and /statsz.
//
// Consistency model: asynchronous replication by default — the replica
// serves reads at its own LSN and Status reports the exact record lag.
// With long-polling (FollowerOptions.Wait, the default) that lag is ~RTT
// plus apply time rather than a poll interval; with a primary quorum
// (-quorum) the primary additionally withholds mutation acks until enough
// replicas durably acknowledged them. Each tail request piggybacks the
// follower's identity, durable ack position, and fencing epoch, so the
// primary's /v1/replication shows this replica and a promoted follower's
// higher epoch fences a deposed primary.
type Follower struct {
	eng wal.Applier
	// local, when non-nil, persists the primary's stream so a follower
	// restart resumes from disk instead of re-tailing from scratch.
	local *wal.Log
	opts  FollowerOptions

	mu      sync.Mutex
	primary string // guarded by mu: Retarget swaps it mid-run
	status  ReplicationStatus
	lastOK  time.Time
	// retargetCh is closed (and replaced) by Retarget, waking a Run loop
	// parked on an error that only a re-point can fix.
	retargetCh chan struct{}
}

// FollowerOptions configures the tailing loop.
type FollowerOptions struct {
	// Poll is the fallback tailing period: the retry delay after a failed
	// round, and the full cadence when long-polling is disabled. Zero
	// selects 500ms.
	Poll time.Duration
	// Wait is the long-poll duration sent as /v1/log?wait=: a caught-up
	// tail request parks on the primary until new records arrive, cutting
	// replica lag from the poll period to ~RTT. Zero selects 10s;
	// negative disables long-polling (classic periodic polls).
	Wait time.Duration
	// MaxBatch bounds records fetched per poll. Zero selects 8192.
	MaxBatch int
	// ID identifies this follower in the primary's ack table (quorum
	// tracking, /v1/replication). Zero selects "<hostname>-<pid>".
	ID string
	// UnhealthyAfter is how many consecutive poll failures latch the
	// replica's /healthz to 503 tail_stalled (a silently-stalled replica
	// leaves rotation instead of serving ever-staler reads). Zero selects
	// 5; negative disables the latch.
	UnhealthyAfter int
	// MaxBackoff caps the exponential retry backoff Run applies after
	// consecutive poll failures (first retry after Poll, then doubling).
	// Zero selects 30s.
	MaxBackoff time.Duration
	// Client issues the HTTP requests. Nil selects a client whose timeout
	// covers a full long-poll park (Wait plus tailTimeoutHeadroom). A
	// caller-supplied client whose Timeout is shorter than Wait would make
	// every parked tail request die on the client side before the primary
	// answers, so Wait is clamped below that timeout instead.
	Client *http.Client
}

// tailTimeoutHeadroom is how much longer than the long-poll window the
// default HTTP client waits before giving up on a parked /v1/log request:
// the primary holds the request for up to Wait, and the response still
// needs to stream back and apply.
const tailTimeoutHeadroom = 10 * time.Second

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.Wait == 0 {
		o.Wait = 10 * time.Second
	}
	if o.Wait < 0 {
		o.Wait = 0
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8192
	}
	if o.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "follower"
		}
		o.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.UnhealthyAfter == 0 {
		o.UnhealthyAfter = 5
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 30 * time.Second
	}
	if o.Client == nil {
		// The client timeout must outlast a full long-poll park: a fixed
		// timeout below Wait would kill every parked request, count it as
		// a poll failure, and latch a healthy replica into tail_stalled.
		t := 30 * time.Second
		if o.Wait > 0 && o.Wait+tailTimeoutHeadroom > t {
			t = o.Wait + tailTimeoutHeadroom
		}
		o.Client = &http.Client{Timeout: t}
	} else if ct := o.Client.Timeout; ct > 0 && o.Wait > 0 && ct <= o.Wait {
		// The caller's client cannot ride out the requested park; clamp the
		// park below the client timeout rather than guaranteeing failures.
		w := ct - tailTimeoutHeadroom
		if w <= 0 {
			w = ct / 2
		}
		o.Wait = w
	}
	return o
}

// NewFollower prepares a tailing loop against primary (base URL, e.g.
// "http://10.0.0.1:8080") applying into eng, optionally persisting the
// stream into local. Call Run to start tailing.
func NewFollower(primary string, eng wal.Applier, local *wal.Log, opts FollowerOptions) (*Follower, error) {
	if primary == "" {
		return nil, fmt.Errorf("server: follower needs a primary URL")
	}
	if eng == nil {
		return nil, fmt.Errorf("server: follower needs an engine")
	}
	f := &Follower{primary: primary, eng: eng, local: local, opts: opts.withDefaults(), retargetCh: make(chan struct{})}
	f.status = ReplicationStatus{
		Role:            "follower",
		Primary:         primary,
		LSN:             eng.LSN(),
		LastPollSeconds: -1,
	}
	return f, nil
}

// Status snapshots the tailing report.
func (f *Follower) Status() ReplicationStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.status
	st.Primary = f.primary
	st.LSN = f.eng.LSN()
	st.Epoch = f.epoch()
	switch {
	case st.PrimaryLSN >= st.LSN:
		st.Lag = st.PrimaryLSN - st.LSN
	case st.PrimaryLSN > 0:
		// The replica is ahead of the reported primary head — the
		// lost-acknowledged-history case fetchOnce detects. There is no
		// meaningful lag to report (the stale last-computed value would
		// masquerade as catch-up work); flag the divergence instead. The
		// PrimaryLSN > 0 guard keeps a recovered follower that has not yet
		// completed a poll from reporting divergence against nothing.
		st.Lag = 0
		st.Diverged = true
	}
	if !f.lastOK.IsZero() {
		st.LastPollSeconds = time.Since(f.lastOK).Seconds()
	}
	return st
}

// Retarget re-points the follower at a new primary URL without a restart —
// the failover path after POST /v1/promote on a surviving replica: the
// router (or an operator, via POST /v1/follow) re-points the remaining
// followers at the promoted node. The next poll round tails the new
// primary; transient failure counters reset so the replica does not carry
// the dead primary's unhealthy latch, and a Run loop parked on an
// unrecoverable error (fenced, needs-bootstrap) wakes immediately.
func (f *Follower) Retarget(primary string) error {
	if primary == "" {
		return fmt.Errorf("server: retarget needs a primary URL")
	}
	u, err := url.Parse(primary)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("server: retarget needs an absolute primary URL (http://host:port), got %q", primary)
	}
	f.mu.Lock()
	f.primary = primary
	f.status.Primary = primary
	// The new primary's head is unknown until the first poll against it.
	f.status.PrimaryLSN = 0
	f.status.PrimaryEpoch = 0
	f.status.ConsecutiveFailures = 0
	f.status.Unhealthy = false
	f.status.NeedsBootstrap = false
	f.status.Diverged = false
	f.status.LastError = ""
	close(f.retargetCh)
	f.retargetCh = make(chan struct{})
	f.mu.Unlock()
	return nil
}

// primaryURL reads the tail target under the lock (Retarget swaps it).
func (f *Follower) primaryURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary
}

// retargetSignal returns the channel closed by the next Retarget call.
func (f *Follower) retargetSignal() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retargetCh
}

// epoch reads the replay engine's fencing token when it exposes one.
func (f *Follower) epoch() uint64 {
	if ep, ok := f.eng.(interface{ Epoch() uint64 }); ok {
		return ep.Epoch()
	}
	return 0
}

// Run tails the primary until ctx is done. Transient poll failures are
// recorded in Status and retried with exponential backoff (Poll doubling
// up to MaxBackoff) — a follower outlives primary restarts and network
// trouble without hammering a struggling primary at full cadence.
// Errors re-polling can never fix (the primary compacted past us, or
// reports an epoch below ours) park the loop entirely: it wakes only on
// Retarget or ctx cancellation. With long-polling enabled a successful
// round loops immediately: the primary parks the caught-up request
// server-side, so the loop adds no lag of its own.
func (f *Follower) Run(ctx context.Context) {
	consecutive := 0
	for {
		retarget := f.retargetSignal()
		t0 := time.Now()
		n, err := f.Poll(ctx) // failures are recorded in Status and retried
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			consecutive = 0
			// Loop immediately after a productive long-poll round; fall back
			// to the poll period when a primary that ignores ?wait= answers a
			// caught-up request instantly (otherwise this loop would spin hot
			// against it).
			if f.opts.Wait > 0 && (n > 0 || time.Since(t0) >= f.opts.Wait/2) {
				continue
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(f.opts.Poll):
			}
			continue
		}
		if unrecoverablePollError(err) {
			// Re-polling cannot succeed: only a re-point (or operator
			// rebuild) changes the outcome, so park instead of spinning.
			select {
			case <-ctx.Done():
				return
			case <-retarget:
				consecutive = 0
			}
			continue
		}
		consecutive++
		select {
		case <-ctx.Done():
			return
		case <-retarget:
			consecutive = 0
		case <-time.After(backoffDelay(f.opts.Poll, consecutive, f.opts.MaxBackoff)):
		}
	}
}

// unrecoverablePollError reports whether a poll failure can never succeed
// by re-polling the same primary: the primary compacted past this
// replica's position, or runs an epoch below ours.
func unrecoverablePollError(err error) bool {
	return errors.Is(err, ErrNeedBootstrap) || errors.Is(err, wal.ErrFenced)
}

// backoffDelay returns the retry delay after n consecutive failures
// (n ≥ 1): poll, 2·poll, 4·poll, ... capped at max.
func backoffDelay(poll time.Duration, n int, max time.Duration) time.Duration {
	d := poll
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// ErrNeedBootstrap reports that the primary's log no longer reaches the
// follower's LSN: the records in between were compacted away, so the
// follower must restart from the primary's /v1/checkpoint.
var ErrNeedBootstrap = errors.New("server: follower behind the primary's compacted log; bootstrap from /v1/checkpoint")

// Poll fetches and applies one batch of records (looping while the
// primary has more), returning how many were applied. Failures are also
// recorded in Status; ErrNeedBootstrap latches NeedsBootstrap, flipping
// the replica's /healthz to 503, because polling can never recover from a
// primary that compacted past this replica's position.
func (f *Follower) Poll(ctx context.Context) (int, error) {
	n, err := f.poll(ctx)
	if err != nil && ctx.Err() == nil {
		f.mu.Lock()
		f.status.PollErrors++
		f.status.ConsecutiveFailures++
		if f.opts.UnhealthyAfter > 0 && f.status.ConsecutiveFailures >= uint64(f.opts.UnhealthyAfter) {
			f.status.Unhealthy = true
		}
		f.status.LastError = err.Error()
		if errors.Is(err, ErrNeedBootstrap) {
			f.status.NeedsBootstrap = true
		}
		f.mu.Unlock()
	}
	return n, err
}

func (f *Follower) poll(ctx context.Context) (int, error) {
	applied := 0
	for {
		n, head, err := f.fetchOnce(ctx)
		applied += n
		if err != nil {
			return applied, err
		}
		f.mu.Lock()
		f.status.PrimaryLSN = head
		f.status.Polls++
		f.status.LastError = ""
		f.status.NeedsBootstrap = false
		f.status.ConsecutiveFailures = 0
		f.status.Unhealthy = false
		f.lastOK = time.Now()
		f.mu.Unlock()
		if f.eng.LSN() >= head || n == 0 {
			return applied, nil
		}
	}
}

// fetchOnce issues one GET /v1/log round and applies its records. The
// request carries the follower's identity, last durable ack, and fencing
// epoch; with long-polling it also carries ?wait=, making a caught-up
// round park on the primary until records arrive.
func (f *Follower) fetchOnce(ctx context.Context) (int, uint64, error) {
	tRound := time.Now()
	defer obs.FollowerTail.RecordSince(tRound)
	from := f.eng.LSN() + 1
	own := f.epoch()
	f.mu.Lock()
	acked := f.status.AckedLSN
	primary := f.primary
	f.mu.Unlock()
	u := fmt.Sprintf("%s/v1/log?from=%d&max=%d&id=%s&acked=%d&peer_epoch=%d",
		primary, from, f.opts.MaxBatch, url.QueryEscape(f.opts.ID), acked, own)
	if f.opts.Wait > 0 {
		u += "&wait=" + url.QueryEscape(f.opts.Wait.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, 0, err
	}
	// Propagate (or mint) a trace id so one tail round is joinable across
	// the follower's and the primary's structured logs.
	trace := obs.TraceID(ctx)
	if trace == "" {
		trace = obs.NewTraceID()
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	head, _ := strconv.ParseUint(resp.Header.Get("X-Netclus-Head-LSN"), 10, 64)
	if raw := resp.Header.Get("X-Netclus-Epoch"); raw != "" {
		if pe, perr := strconv.ParseUint(raw, 10, 64); perr == nil {
			f.mu.Lock()
			f.status.PrimaryEpoch = pe
			f.mu.Unlock()
			if own > 0 && pe < own {
				// The "primary" is running a term we have already moved past
				// (this replica was promoted, or follows a newer primary):
				// applying its stream would corrupt the replica.
				return 0, head, fmt.Errorf("%w: primary %s reports epoch %d below ours (%d); refusing its stream", wal.ErrFenced, primary, pe, own)
			}
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return 0, head, ErrNeedBootstrap
	default:
		if head > 0 && from > head+1 {
			// The replica holds records the primary no longer does — the
			// primary lost acknowledged history (e.g. a group-commit crash
			// window). Applied state cannot be rolled back; only a rebuild
			// resynchronizes. Name the condition rather than surfacing the
			// generic status code.
			return 0, head, fmt.Errorf("follower at LSN %d is ahead of the primary's head %d: the primary lost acknowledged history; rebuild this replica", from-1, head)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, head, fmt.Errorf("primary answered %d: %s", resp.StatusCode, body)
	}
	br := bufio.NewReader(resp.Body)
	applied := 0
	for {
		rec, err := wal.ReadFrame(br)
		if err == io.EOF {
			f.noteDurable(applied)
			return applied, head, nil
		}
		if err != nil {
			return applied, head, fmt.Errorf("decoding log stream: %w", err)
		}
		// Persist before applying: a crash between the two replays the
		// record from the local log; the reverse order would lose it. A
		// record the local log already holds (an earlier round persisted
		// it but the apply failed) is not re-appended, so the retry
		// surfaces the apply error instead of wedging on the log.
		if f.local != nil && rec.LSN > f.local.HeadLSN() {
			if err := f.local.AppendRecord(rec); err != nil {
				return applied, head, fmt.Errorf("persisting record %d: %w", rec.LSN, err)
			}
		}
		if err := f.eng.ApplyRecord(rec); err != nil {
			return applied, head, fmt.Errorf("applying record %d: %w", rec.LSN, err)
		}
		applied++
	}
}

// noteDurable advances the durable replication position reported to the
// primary on the next tail request (the quorum-ack channel). With a local
// log the batch is fsynced first, so an ack never claims durability the
// disk does not have; a log-less follower acks its applied LSN, which is
// only as durable as the primary's own log.
func (f *Follower) noteDurable(applied int) {
	if applied == 0 {
		return
	}
	ack := f.eng.LSN()
	if f.local != nil {
		if err := f.local.Sync(); err != nil {
			return // unsynced tail: keep the previous ack
		}
		ack = f.local.HeadLSN()
	}
	f.mu.Lock()
	if ack > f.status.AckedLSN {
		f.status.AckedLSN = ack
	}
	f.mu.Unlock()
}

// LogAvailableFrom reports whether the primary can stream records starting
// at LSN from — the bootstrap decision: when the primary's log no longer
// reaches the follower's state, the follower loads /v1/checkpoint instead.
func LogAvailableFrom(ctx context.Context, client *http.Client, primary string, from uint64) (bool, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := fmt.Sprintf("%s/v1/log?from=%d&max=1", primary, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusGone:
		return false, nil
	case http.StatusNotFound:
		return false, fmt.Errorf("primary %s serves no /v1/log (is it running with -wal-dir?)", primary)
	default:
		return false, fmt.Errorf("primary answered %d probing /v1/log", resp.StatusCode)
	}
}

// FetchCheckpoint streams the primary's recovery bundle; the caller loads
// it with netclus.LoadCheckpoint and closes the reader.
func FetchCheckpoint(ctx context.Context, client *http.Client, primary string) (io.ReadCloser, error) {
	if client == nil {
		// No overall timeout: a checkpoint is arbitrarily large.
		client = &http.Client{}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, primary+"/v1/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("primary answered %d fetching checkpoint: %s", resp.StatusCode, body)
	}
	return resp.Body, nil
}
