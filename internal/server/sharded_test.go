package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"netclus/internal/gen"
	"netclus/internal/shard"
	"netclus/internal/tops"
)

// TestServeShardedEngine boots the HTTP layer over a scatter-gather sharded
// engine and drives every endpoint: the server must be engine-agnostic, and
// /statsz must expose the per-shard counter blocks (sites, scatter calls,
// queue depths) the sharded engine adds.
func TestServeShardedEngine(t *testing.T) {
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 500, SpanKm: 10, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 60, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 120, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shard.Build(inst, shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	client := ts.Client()

	// Query (through the micro-batcher).
	status, body := postJSON(t, client, ts.URL+"/v1/query", `{"k":5,"tau":0.8}`)
	if status != http.StatusOK {
		t.Fatalf("/v1/query status %d: %s", status, body)
	}
	var qr struct {
		Sites []int64 `json:"sites"`
	}
	if err := json.Unmarshal(body, &qr); err != nil || len(qr.Sites) == 0 {
		t.Fatalf("query body %s (err %v)", body, err)
	}

	// Update: delete one served site, then the same query must still work.
	status, body = postJSON(t, client, ts.URL+"/v1/update",
		fmt.Sprintf(`{"op":"delete_site","node":%d}`, qr.Sites[0]))
	if status != http.StatusOK {
		t.Fatalf("/v1/update status %d: %s", status, body)
	}
	if status, body = postJSON(t, client, ts.URL+"/v1/query", `{"k":5,"tau":0.8}`); status != http.StatusOK {
		t.Fatalf("post-update query status %d: %s", status, body)
	}

	// Snapshot: the sharded container streams over HTTP.
	resp, err := client.Post(ts.URL+"/v1/snapshot", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := readAll(resp)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/snapshot status %d err %v", resp.StatusCode, err)
	}
	if len(snap) < 16 || string(snap[0:2]) != "NC" {
		t.Fatalf("snapshot container header missing (%d bytes)", len(snap))
	}

	// Stats: per-shard blocks present and coherent.
	resp, err = client.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Shards []shard.Stat `json:"shards"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("statsz decode: %v (%s)", err, raw)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("statsz lists %d shards, want 3: %s", len(st.Shards), raw)
	}
	totalSites, totalScatters := 0, uint64(0)
	for _, ss := range st.Shards {
		totalSites += ss.Sites
		totalScatters += ss.Scatters
		if ss.QueueDepth != 0 {
			t.Fatalf("shard %d reports queue depth %d at rest", ss.Shard, ss.QueueDepth)
		}
	}
	if totalSites != 119 { // 120 minus the deleted one
		t.Fatalf("per-shard site counts sum to %d, want 119", totalSites)
	}
	if totalScatters == 0 {
		t.Fatal("no scatter calls recorded in statsz")
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
