package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/roadnet"
	"netclus/internal/wal"
)

// newPrimary boots a WAL-served primary over a fresh fixture and returns
// the HTTP server, its engine, and the log.
func newPrimary(t *testing.T, seed int64, walOpts wal.Options) (*httptest.Server, *engine.Engine, *wal.Log) {
	t.Helper()
	idx, _ := buildFixture(t, seed)
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	walOpts.Policy = wal.SyncNever
	log, err := wal.Open(t.TempDir(), walOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Options{BatchWindow: -1, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		log.Close()
	})
	return ts, eng, log
}

// driveUpdates posts n site/trajectory updates through the primary's HTTP
// surface, so the log carries exactly what clients were acknowledged.
func driveUpdates(t *testing.T, ts *httptest.Server, eng *engine.Engine, n int) {
	t.Helper()
	inst := eng.Index().TopsInstance()
	added := 0
	for v := 0; v < inst.G.NumNodes() && added < n; v++ {
		if _, ok := inst.SiteIDOf(roadnet.NodeID(v)); ok {
			continue
		}
		status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update",
			fmt.Sprintf(`{"op":"add_site","node":%d}`, v))
		if status != http.StatusOK {
			t.Fatalf("update %d: %d %s", v, status, body)
		}
		added++
	}
	if added < n {
		t.Fatalf("only %d free nodes for %d updates", added, n)
	}
}

func TestFollowerConvergesAndServesIdenticalAnswers(t *testing.T) {
	const seed = 811
	ts, primaryEng, log := newPrimary(t, seed, wal.Options{})
	driveUpdates(t, ts, primaryEng, 15)

	// The follower starts from an identical preset build (LSN 0) and tails
	// the whole log over HTTP.
	fidx, _ := buildFixture(t, seed)
	feng, err := engine.New(fidx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flog, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer flog.Close()
	fol, err := NewFollower(ts.URL, feng, flog, FollowerOptions{Poll: 10 * time.Millisecond, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if feng.LSN() != primaryEng.LSN() {
		t.Fatalf("follower LSN %d, primary %d", feng.LSN(), primaryEng.LSN())
	}
	st := fol.Status()
	if st.Lag != 0 || st.Role != "follower" || st.PrimaryLSN != primaryEng.LSN() {
		t.Fatalf("status after convergence: %+v", st)
	}
	// The follower's local log mirrors the primary's stream.
	if flog.HeadLSN() != log.HeadLSN() {
		t.Fatalf("local log head %d, primary log head %d", flog.HeadLSN(), log.HeadLSN())
	}

	// Query both engines over the serving surface: answers must be
	// bit-identical.
	fsrv, err := New(feng, Options{BatchWindow: -1, ReadOnly: true, Replication: fol.Status})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fsrv)
	defer func() {
		fts.Close()
		fsrv.Close()
	}()
	for _, q := range []string{
		`{"k":4,"tau":0.9}`,
		`{"k":7,"tau":2.5,"pref":"linear"}`,
		`{"k":2,"tau":1.4,"pref":"convex"}`,
	} {
		stP, bodyP := postJSON(t, ts.Client(), ts.URL+"/v1/query", q)
		stF, bodyF := postJSON(t, fts.Client(), fts.URL+"/v1/query", q)
		if stP != http.StatusOK || stF != http.StatusOK {
			t.Fatalf("query %s: primary %d, follower %d", q, stP, stF)
		}
		var rp, rf map[string]any
		if err := json.Unmarshal(bodyP, &rp); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bodyF, &rf); err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"sites", "site_ids", "estimated_utility", "estimated_covered"} {
			jp, _ := json.Marshal(rp[field])
			jf, _ := json.Marshal(rf[field])
			if !bytes.Equal(jp, jf) {
				t.Fatalf("query %s: %s differs: %s vs %s", q, field, jp, jf)
			}
		}
	}

	// Writes must bounce off the replica with 403.
	status, _ := postJSON(t, fts.Client(), fts.URL+"/v1/update", `{"op":"add_site","node":1}`)
	if status != http.StatusForbidden {
		t.Fatalf("replica update status %d, want 403", status)
	}

	// /healthz and /statsz surface the replication block.
	resp, err := fts.Client().Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Replication *ReplicationStatus `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Replication == nil || health.Replication.Role != "follower" {
		t.Fatalf("healthz replication block: %+v", health.Replication)
	}
	var stats statszResponse
	resp, err = fts.Client().Get(fts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Replication == nil || stats.Replication.LSN != primaryEng.LSN() {
		t.Fatalf("statsz replication block: %+v", stats.Replication)
	}
	if stats.Engine.LSN != primaryEng.LSN() {
		t.Fatalf("statsz engine LSN %d, want %d", stats.Engine.LSN, primaryEng.LSN())
	}

	// New updates on the primary flow through the next poll — and a
	// follower restart resumes from its local log, not from scratch.
	driveUpdates(t, ts, primaryEng, 3)
	if _, err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if feng.LSN() != primaryEng.LSN() {
		t.Fatalf("follower LSN %d after second poll, primary %d", feng.LSN(), primaryEng.LSN())
	}
}

func TestFollowerBootstrapFromCheckpointAfterCompaction(t *testing.T) {
	const seed = 823
	// Tiny segments so compaction genuinely deletes early history.
	ts, primaryEng, log := newPrimary(t, seed, wal.Options{SegmentBytes: 64})
	driveUpdates(t, ts, primaryEng, 10)

	ok, err := LogAvailableFrom(context.Background(), ts.Client(), ts.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("uncompacted log should stream from 1")
	}

	// Checkpoint + compact: a from-scratch follower can no longer replay
	// the full history — /v1/log?from=1 answers 410 Gone and the probe
	// helper says "bootstrap".
	if removed, err := log.Compact(primaryEng.LSN() - 1); err != nil || removed == 0 {
		t.Fatalf("Compact removed %d segments, %v", removed, err)
	}
	ok, err = LogAvailableFrom(context.Background(), ts.Client(), ts.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("compacted log claims to stream from 1")
	}
	resp410, err := ts.Client().Get(ts.URL + "/v1/log?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp410.Body.Close()
	if resp410.StatusCode != http.StatusGone {
		t.Fatalf("compacted /v1/log status %d, want 410", resp410.StatusCode)
	}

	// A replica stranded behind the compaction floor latches
	// needs_bootstrap and its /healthz flips to 503, so load balancers
	// stop routing to a replica that can only grow staler.
	sidx, _ := buildFixture(t, seed)
	seng, err := engine.New(sidx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stranded, err := NewFollower(ts.URL, seng, nil, FollowerOptions{Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stranded.Poll(context.Background()); !errors.Is(err, ErrNeedBootstrap) {
		t.Fatalf("stranded poll error = %v, want ErrNeedBootstrap", err)
	}
	if st := stranded.Status(); !st.NeedsBootstrap {
		t.Fatalf("stranded status: %+v", st)
	}
	ssrv, err := New(seng, Options{BatchWindow: -1, ReadOnly: true, Replication: stranded.Status})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(ssrv)
	defer func() {
		sts.Close()
		ssrv.Close()
	}()
	hresp, err := sts.Client().Get(sts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stranded replica /healthz status %d, want 503", hresp.StatusCode)
	}

	// Fetch the checkpoint and recover an engine from it: the bundled
	// dataset makes it load against the graph alone.
	body, err := FetchCheckpoint(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	idx, _ := buildFixture(t, seed) // only the graph is reused
	g := idx.TopsInstance().G
	inst, _, br, err := wal.ReadCheckpoint(body, g)
	if err != nil {
		t.Fatal(err)
	}
	cidx, err := core.ReadIndex(br, inst)
	if err != nil {
		t.Fatal(err)
	}
	if cidx.WalLSN() != primaryEng.LSN() {
		t.Fatalf("checkpoint LSN %d, primary at %d", cidx.WalLSN(), primaryEng.LSN())
	}
	ceng, err := engine.New(cidx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower(ts.URL, ceng, nil, FollowerOptions{Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	driveUpdates(t, ts, primaryEng, 2)
	if _, err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ceng.LSN() != primaryEng.LSN() {
		t.Fatalf("bootstrapped follower LSN %d, primary %d", ceng.LSN(), primaryEng.LSN())
	}
	_ = log
}
