package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/core"
	"netclus/internal/obs"
)

// ErrDraining is returned to queries admitted after the server began
// shutting down.
var ErrDraining = errors.New("server: draining")

// batcher is the micro-batching admission layer: concurrent single queries
// rendezvous here and are coalesced into one Engine.QueryBatch call per
// window. Coalescing pays off because QueryBatch groups its items by
// (ladder instance, ψ fingerprint) and fetches each group's covering
// structure exactly once — under update-heavy traffic (which continually
// invalidates the cover cache) or with the cache disabled, a flush of b
// look-alike queries does one cover sweep instead of b.
//
// A flush is cut when either maxSize queries have gathered or window has
// elapsed since the first query of the batch arrived, whichever comes
// first; an idle batcher sleeps in a channel receive and adds no latency
// to the first query beyond one goroutine handoff.
type batcher struct {
	eng     Engine
	window  time.Duration
	maxSize int

	// in is deliberately unbuffered: a send succeeds only by rendezvous
	// with the collect loop, so once the loop has observed stop and
	// returned, no query can be stranded half-admitted — late senders fall
	// through to the stop case of their select.
	in   chan *pendingQuery
	stop chan struct{}
	wg   sync.WaitGroup

	flushes    atomic.Uint64
	coalesced  atomic.Uint64
	maxFlush   atomic.Uint64
	flushInUse atomic.Int64
}

// pendingQuery is one admitted query waiting for its flush.
type pendingQuery struct {
	opts core.QueryOptions
	// done is buffered so the flush can deliver without caring whether
	// the submitter is still listening (it may have timed out).
	done chan batchOutcome
}

type batchOutcome struct {
	res *core.QueryResult
	err error
}

// flushBufs bundles the two slices a flush needs — the gathered queries and
// their lowered engine options — recycled across flushes so steady-state
// admission allocates nothing per window.
type flushBufs struct {
	pend []*pendingQuery
	qs   []core.QueryOptions
}

var flushBufPool = sync.Pool{New: func() any { return new(flushBufs) }}

func newBatcher(eng Engine, window time.Duration, maxSize int) *batcher {
	b := &batcher{
		eng:     eng,
		window:  window,
		maxSize: maxSize,
		in:      make(chan *pendingQuery),
		stop:    make(chan struct{}),
	}
	b.wg.Add(1)
	go b.collect()
	return b
}

// Do admits one query into the current micro-batch and waits for its
// answer. The context governs only the wait: a query whose deadline lapses
// mid-flush is abandoned by its submitter (the flush still completes and
// the delivery lands in the buffered channel).
func (b *batcher) Do(ctx context.Context, opts core.QueryOptions) (*core.QueryResult, error) {
	p := &pendingQuery{opts: opts, done: make(chan batchOutcome, 1)}
	select {
	case b.in <- p:
	case <-b.stop:
		return nil, ErrDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case out := <-p.done:
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// collect is the admission loop: wait for the first query, then gather
// until the window closes or the batch is full, then hand the batch to a
// flush goroutine and start over. Flushing concurrently keeps admission
// open while the engine computes, so a slow flush pipelines with the next
// window instead of blocking it.
func (b *batcher) collect() {
	defer b.wg.Done()
	timer := time.NewTimer(b.window)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *pendingQuery
		select {
		case first = <-b.in:
		case <-b.stop:
			return
		}
		fb := flushBufPool.Get().(*flushBufs)
		fb.pend = append(fb.pend[:0], first)
		timer.Reset(b.window)
	gather:
		for len(fb.pend) < b.maxSize {
			select {
			case p := <-b.in:
				fb.pend = append(fb.pend, p)
			case <-timer.C:
				break gather
			case <-b.stop:
				break gather
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.wg.Add(1)
		go b.flush(fb)
	}
}

// flush answers one coalesced batch. It runs under a background context:
// per-query deadlines only abandon the wait in Do, they do not abort a
// flush that other queries in the batch still depend on.
func (b *batcher) flush(fb *flushBufs) {
	defer b.wg.Done()
	b.flushInUse.Add(1)
	defer b.flushInUse.Add(-1)
	n := len(fb.pend)
	fb.qs = fb.qs[:0]
	for _, p := range fb.pend {
		fb.qs = append(fb.qs, p.opts)
	}
	tFlush := time.Now()
	items := b.eng.QueryBatch(context.Background(), fb.qs)
	obs.BatchFlush.RecordSince(tFlush)
	for i, p := range fb.pend {
		p.done <- batchOutcome{res: items[i].Result, err: items[i].Err}
	}
	// Drop the query references before recycling so the pool does not pin
	// delivered pendingQuery structs (or their option payloads) alive.
	clear(fb.pend)
	clear(fb.qs)
	flushBufPool.Put(fb)
	b.flushes.Add(1)
	b.coalesced.Add(uint64(n))
	for {
		cur := b.maxFlush.Load()
		if uint64(n) <= cur || b.maxFlush.CompareAndSwap(cur, uint64(n)) {
			break
		}
	}
}

// Close stops admission (in-flight Do calls get ErrDraining or their
// flushed answers) and waits for running flushes to deliver.
func (b *batcher) Close() {
	close(b.stop)
	b.wg.Wait()
}

// batcherStats is the /statsz slice of the admission layer.
type batcherStats struct {
	Flushes   uint64  `json:"flushes"`
	Coalesced uint64  `json:"coalesced_queries"`
	MaxFlush  uint64  `json:"max_flush_size"`
	AvgFlush  float64 `json:"avg_flush_size"`
	InFlight  int64   `json:"in_flight_flushes"`
	WindowMs  float64 `json:"window_ms"`
	MaxSize   int     `json:"max_size"`
}

func (b *batcher) stats() batcherStats {
	fl := b.flushes.Load()
	co := b.coalesced.Load()
	st := batcherStats{
		Flushes:   fl,
		Coalesced: co,
		MaxFlush:  b.maxFlush.Load(),
		InFlight:  b.flushInUse.Load(),
		WindowMs:  float64(b.window) / float64(time.Millisecond),
		MaxSize:   b.maxSize,
	}
	if fl > 0 {
		st.AvgFlush = float64(co) / float64(fl)
	}
	return st
}
