// /metrics: the Prometheus text-format projection of everything /statsz
// reports, plus the obs latency histograms. The exposition is hand-rolled
// through obs.ExpoWriter (no client library dependency) and every series
// carries the serving identity as base labels: role="primary"|"follower",
// and shard="<index>" when this process is a shard member.
//
// Family naming follows Prometheus conventions: *_total for monotonic
// counters, *_seconds for time, bare gauges for levels. Histograms expose
// the cumulative le= ladder of the obs log-spaced buckets, so p50/p99 are
// derivable with histogram_quantile() exactly as for a client_golang
// histogram.

package server

import (
	"net/http"
	"sort"
	"strconv"

	"netclus/internal/obs"
)

// metricsBase renders the label set merged into every exposed series. Role
// is live (a promotion flips follower → primary without restart).
func (s *Server) metricsBase() string {
	role := "primary"
	if s.readOnly.Load() {
		role = "follower"
	}
	base := `role="` + role + `"`
	if s.opts.Member != nil {
		base += `,shard="` + strconv.Itoa(s.opts.Member.Meta().Index) + `"`
	}
	return base
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := s.Stats()
	ew := obs.NewExpoWriter(w, s.metricsBase())

	bi := st.Build
	ew.Family("netclus_build_info", "Build identity; value is always 1.", "gauge")
	ew.Sample("netclus_build_info",
		`go_version="`+obs.EscapeLabel(bi.GoVersion)+`",version="`+obs.EscapeLabel(bi.Version)+`",revision="`+obs.EscapeLabel(bi.Revision)+`"`, 1)
	ew.Family("netclus_uptime_seconds", "Seconds since process start.", "gauge")
	ew.Sample("netclus_uptime_seconds", "", obs.Uptime().Seconds())
	ew.Family("netclus_draining", "1 while the server is draining.", "gauge")
	ew.Sample("netclus_draining", "", boolGauge(st.Draining))

	ew.Family("netclus_http_requests_total", "Requests per route.", "counter")
	ew.Family("netclus_http_errors_total", "Error responses per route and class.", "counter")
	for _, route := range sortedRoutes(st.Routes) {
		rs := st.Routes[route]
		lbl := `route="` + obs.EscapeLabel(route) + `"`
		ew.Uint("netclus_http_requests_total", lbl, rs.Requests)
		ew.Uint("netclus_http_errors_total", lbl+`,class="4xx"`, rs.Errors4xx)
		ew.Uint("netclus_http_errors_total", lbl+`,class="5xx"`, rs.Errors5xx)
	}

	eng := st.Engine
	ew.Family("netclus_engine_queries_total", "Queries served, by path.", "counter")
	ew.Uint("netclus_engine_queries_total", `path="single"`, eng.Queries)
	ew.Uint("netclus_engine_queries_total", `path="batch"`, eng.BatchQueries)
	ew.Family("netclus_engine_batches_total", "Engine QueryBatch calls.", "counter")
	ew.Uint("netclus_engine_batches_total", "", eng.Batches)
	ew.Family("netclus_engine_updates_total", "Mutation calls applied.", "counter")
	ew.Uint("netclus_engine_updates_total", "", eng.Updates)
	ew.Family("netclus_engine_mutations_total", "Mutation items by kind.", "counter")
	ew.Uint("netclus_engine_mutations_total", `kind="site_add"`, eng.SiteAdds)
	ew.Uint("netclus_engine_mutations_total", `kind="site_delete"`, eng.SiteDeletes)
	ew.Uint("netclus_engine_mutations_total", `kind="traj_add"`, eng.TrajAdds)
	ew.Uint("netclus_engine_mutations_total", `kind="traj_delete"`, eng.TrajDeletes)
	ew.Family("netclus_engine_errors_total", "Failed queries (single or batch items).", "counter")
	ew.Uint("netclus_engine_errors_total", "", eng.Errors)
	ew.Family("netclus_engine_canceled_total", "Queries aborted by cancellation or deadline.", "counter")
	ew.Uint("netclus_engine_canceled_total", "", eng.Canceled)
	ew.Family("netclus_cover_cache_hits_total", "Cover-cache hits.", "counter")
	ew.Uint("netclus_cover_cache_hits_total", "", eng.CoverHits)
	ew.Family("netclus_cover_cache_misses_total", "Cover-cache misses (fresh builds).", "counter")
	ew.Uint("netclus_cover_cache_misses_total", "", eng.CoverMisses)
	ew.Family("netclus_cover_cache_entries", "Covers currently memoized.", "gauge")
	ew.Sample("netclus_cover_cache_entries", "", float64(eng.CoverEntries))
	ew.Family("netclus_engine_lsn", "Last WAL LSN applied by the engine.", "gauge")
	ew.Uint("netclus_engine_lsn", "", eng.LSN)
	ew.Family("netclus_engine_epoch", "Replication fencing epoch last observed.", "gauge")
	ew.Uint("netclus_engine_epoch", "", eng.Epoch)

	if len(st.Shards) > 0 {
		ew.Family("netclus_shard_sites", "Live sites per in-process shard.", "gauge")
		ew.Family("netclus_shard_scatter_calls_total", "Scatter rounds served per in-process shard.", "counter")
		for _, sh := range st.Shards {
			lbl := `idx="` + strconv.Itoa(sh.Shard) + `"`
			ew.Sample("netclus_shard_sites", lbl, float64(sh.Sites))
			ew.Uint("netclus_shard_scatter_calls_total", lbl, sh.Scatters)
		}
	}

	if st.Batching != nil {
		b := st.Batching
		ew.Family("netclus_batch_flushes_total", "Micro-batch flushes cut.", "counter")
		ew.Uint("netclus_batch_flushes_total", "", b.Flushes)
		ew.Family("netclus_batch_coalesced_total", "Queries coalesced into flushes.", "counter")
		ew.Uint("netclus_batch_coalesced_total", "", b.Coalesced)
		ew.Family("netclus_batch_in_flight", "Flushes currently executing.", "gauge")
		ew.Sample("netclus_batch_in_flight", "", float64(b.InFlight))
	}

	if st.Ingest != nil {
		in := st.Ingest
		ew.Family("netclus_ingest_traces_total", "Ingested GPS trace lines by outcome.", "counter")
		ew.Uint("netclus_ingest_traces_total", `outcome="matched"`, in.Matched)
		ew.Uint("netclus_ingest_traces_total", `outcome="rejected"`, in.Rejected)
		ew.Family("netclus_ingest_points_total", "Raw GPS points decoded.", "counter")
		ew.Uint("netclus_ingest_points_total", "", in.Points)
		ew.Family("netclus_ingest_batches_total", "AddTrajectories mutations applied by ingest.", "counter")
		ew.Uint("netclus_ingest_batches_total", "", in.Batches)
	}

	if st.WAL != nil {
		wl := st.WAL
		ew.Family("netclus_wal_head_lsn", "WAL head (last committed) LSN.", "gauge")
		ew.Uint("netclus_wal_head_lsn", "", wl.HeadLSN)
		ew.Family("netclus_wal_first_lsn", "First retained WAL LSN (compaction floor).", "gauge")
		ew.Uint("netclus_wal_first_lsn", "", wl.FirstLSN)
		ew.Family("netclus_wal_segments", "Live WAL segment files.", "gauge")
		ew.Sample("netclus_wal_segments", "", float64(wl.Segments))
		ew.Family("netclus_wal_size_bytes", "WAL on-disk size.", "gauge")
		ew.Sample("netclus_wal_size_bytes", "", float64(wl.SizeBytes))
		ew.Family("netclus_wal_appends_total", "WAL records appended.", "counter")
		ew.Uint("netclus_wal_appends_total", "", wl.Appends)
		ew.Family("netclus_wal_syncs_total", "WAL fsync calls.", "counter")
		ew.Uint("netclus_wal_syncs_total", "", wl.Syncs)
		ew.Family("netclus_log_records_served_total", "WAL records streamed to followers.", "counter")
		ew.Uint("netclus_log_records_served_total", "", st.LogRecordsServed)

		head := wl.HeadLSN
		acks := s.acks.snapshot(head)
		if len(acks) > 0 {
			ew.Family("netclus_follower_acked_lsn", "Durable LSN last acked, per follower.", "gauge")
			ew.Family("netclus_follower_lag_records", "Primary head minus follower durable LSN.", "gauge")
			ew.Family("netclus_follower_seconds_since_seen", "Seconds since the follower's last tail request.", "gauge")
			for _, a := range acks {
				lbl := `follower="` + obs.EscapeLabel(a.ID) + `"`
				ew.Uint("netclus_follower_acked_lsn", lbl, a.AckedLSN)
				ew.Uint("netclus_follower_lag_records", lbl, a.Lag)
				ew.Sample("netclus_follower_seconds_since_seen", lbl, a.SecondsSinceSeen)
			}
		}
	}

	if st.Replication != nil {
		rs := st.Replication
		ew.Family("netclus_replication_lag_records", "Records behind the tailed primary.", "gauge")
		ew.Uint("netclus_replication_lag_records", "", rs.Lag)
		ew.Family("netclus_replication_polls_total", "Tail rounds against the primary.", "counter")
		ew.Uint("netclus_replication_polls_total", "", rs.Polls)
		ew.Family("netclus_replication_poll_errors_total", "Failed tail rounds.", "counter")
		ew.Uint("netclus_replication_poll_errors_total", "", rs.PollErrors)
		ew.Family("netclus_replication_unhealthy", "1 while the tail loop is stalled or needs bootstrap.", "gauge")
		ew.Sample("netclus_replication_unhealthy", "", boolGauge(rs.Unhealthy || rs.NeedsBootstrap))
	}

	mem := st.Memory
	ew.Family("netclus_go_heap_alloc_bytes", "Live heap bytes.", "gauge")
	ew.Uint("netclus_go_heap_alloc_bytes", "", mem.HeapAllocBytes)
	ew.Family("netclus_go_mallocs_total", "Cumulative heap allocations.", "counter")
	ew.Uint("netclus_go_mallocs_total", "", mem.Mallocs)
	ew.Family("netclus_go_gc_cycles_total", "Completed GC cycles.", "counter")
	ew.Uint("netclus_go_gc_cycles_total", "", uint64(mem.NumGC))
	ew.Family("netclus_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", "counter")
	ew.Sample("netclus_go_gc_pause_seconds_total", "", mem.GCPauseTotalMs/1e3)

	obs.WriteLatencyHistograms(ew)
	_ = ew.Err()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sortedRoutes orders the route map for a deterministic exposition (scrape
// diffing and the golden test both want stable output).
func sortedRoutes(m map[string]routeStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
