package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/gen"
	"netclus/internal/tops"
)

// The ServeQPS benchmarks measure what the micro-batching admission layer
// buys end-to-end: many concurrent HTTP clients issue the same class of
// query, and the batched arm coalesces them into shared engine batches
// while the unbatched arm sends each straight to Engine.Query.
//
// Both primary arms run with the cover cache disabled — the configuration
// where every uncoalesced query pays a full §5.1 sweep, which is also what
// serving looks like under update-heavy traffic (every §6 mutation
// invalidates the cache, so back-to-back queries rebuild constantly). The
// cached arm is included as the homogeneous-traffic reference point where
// memoization already collapses the sweep and batching adds only window
// latency.

var (
	benchOnce sync.Once
	benchIdx  *core.Index
)

// benchFixture is larger than the test fixture so one cover sweep is
// substantial enough for coalescing to matter.
func benchFixture(b *testing.B) *core.Index {
	b.Helper()
	benchOnce.Do(func() {
		city, err := gen.GenerateCity(gen.CityConfig{
			Topology: gen.GridMesh, Nodes: 1200, SpanKm: 14, Jitter: 0.2,
			OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: 971,
		})
		if err != nil {
			b.Fatal(err)
		}
		store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 400, Seed: 972})
		if err != nil {
			b.Fatal(err)
		}
		sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 400, Seed: 973})
		if err != nil {
			b.Fatal(err)
		}
		inst, err := tops.NewInstance(city.Graph, store, sites)
		if err != nil {
			b.Fatal(err)
		}
		benchIdx, err = core.Build(inst, core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4})
		if err != nil {
			b.Fatal(err)
		}
	})
	return benchIdx
}

func benchServeQPS(b *testing.B, engOpts engine.Options, srvOpts Options) {
	idx := benchFixture(b)
	eng, err := engine.New(idx, engOpts)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(eng, srvOpts)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512}}
	defer client.CloseIdleConnections()

	body := []byte(`{"k":5,"tau":0.8,"timeout_ms":60000}`)
	// Many closed-loop clients: enough that a full micro-batch gathers
	// before the window lapses, so the batched arm is measured on batch
	// cutting, not on idle window waits.
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
	b.StopTimer()
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "qps")
	if st := srv.Stats(); st.Batching != nil {
		b.ReportMetric(st.Batching.AvgFlush, "avg-flush")
	}
}

// BenchmarkServeQPS/unbatched vs /batched is the recorded micro-batching
// comparison (EXPERIMENTS.md); /batched_cached is the reference point with
// memoization on.
func BenchmarkServeQPS(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) {
		benchServeQPS(b, engine.Options{DisableCoverCache: true}, Options{BatchWindow: -1})
	})
	b.Run("batched", func(b *testing.B) {
		benchServeQPS(b, engine.Options{DisableCoverCache: true},
			Options{BatchWindow: time.Millisecond, BatchMaxSize: 64})
	})
	b.Run("batched_cached", func(b *testing.B) {
		benchServeQPS(b, engine.Options{},
			Options{BatchWindow: time.Millisecond, BatchMaxSize: 64})
	})
}
