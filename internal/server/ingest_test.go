package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"netclus/internal/gen"
	"netclus/internal/ingest"
	"netclus/internal/trajectory"
)

// ingestFixtureCity regenerates the same city buildFixture(seed) built,
// so emitted traces lie on the served graph.
func ingestFixtureCity(t testing.TB, seed int64) *gen.City {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 500, SpanKm: 10, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func ingestFeed(t testing.TB, city *gen.City, n int, seed int64) string {
	t.Helper()
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < store.Len(); i++ {
		trace := gen.EmitGPS(city.Graph, store.Get(trajectory.ID(i)),
			gen.GPSConfig{SampleEveryKm: 0.15, NoiseSigmaKm: 0.01, Seed: seed + int64(i)})
		sb.WriteString(fmt.Sprintf(`{"id":"t%d","points":[`, i))
		for j, p := range trace.Points {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(fmt.Sprintf(`{"x":%g,"y":%g,"t":%g}`, p.Pos.X, p.Pos.Y, p.Time))
		}
		sb.WriteString("]}\n")
	}
	return sb.String()
}

func postNDJSON(t testing.TB, url, body string) (*http.Response, []ingest.Verdict) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var verdicts []ingest.Verdict
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var v ingest.Verdict
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", sc.Text(), err)
		}
		verdicts = append(verdicts, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, verdicts
}

// TestIngestHTTP streams a feed end to end: verdicts come back per line
// with engine-assigned IDs, the engine's trajectory count grows, the
// ingested trajectories are queryable state, and /statsz gains the ingest
// block plus the route counters.
func TestIngestHTTP(t *testing.T) {
	const seed = 311
	ts, srv, eng, idx := newTestServer(t, seed, Options{Ingest: &ingest.Options{Workers: 2, MaxBatch: 4}})
	city := ingestFixtureCity(t, seed)
	before := eng.Stats().TrajAdds

	resp, verdicts := postNDJSON(t, ts.URL, ingestFeed(t, city, 6, seed+100))
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(verdicts) != 6 {
		t.Fatalf("got %d verdicts, want 6: %+v", len(verdicts), verdicts)
	}
	matched := 0
	for _, v := range verdicts {
		if v.Code == "" {
			matched++
			if v.TrajectoryID == nil {
				t.Fatalf("verdict without id or code: %+v", v)
			}
			if got := idx.TopsInstance().Trajs.Get(*v.TrajectoryID); got == nil {
				t.Errorf("trajectory %d not in served store after ingest", *v.TrajectoryID)
			}
		}
	}
	if matched == 0 {
		t.Fatal("no traces matched")
	}
	if after := eng.Stats().TrajAdds; after != before+uint64(matched) {
		t.Errorf("TrajAdds %d -> %d, want +%d", before, after, matched)
	}

	st := srv.Stats()
	if st.Ingest == nil {
		t.Fatal("/statsz missing ingest block")
	}
	if st.Ingest.TracesIn != 6 || st.Ingest.Matched != uint64(matched) {
		t.Errorf("ingest stats = %+v", st.Ingest)
	}
	if _, ok := st.Routes["/v1/ingest"]; !ok {
		t.Error("/statsz missing /v1/ingest route counters")
	}
}

// TestIngestHTTPVerdictCodes checks per-line rejection codes ride back on
// the same stream as successes.
func TestIngestHTTPVerdictCodes(t *testing.T) {
	const seed = 313
	ts, _, _, _ := newTestServer(t, seed, Options{Ingest: &ingest.Options{Workers: 1}})
	city := ingestFixtureCity(t, seed)
	feed := ingestFeed(t, city, 1, seed+7) +
		"garbage\n" +
		`{"points":[]}` + "\n" +
		`{"points":[{"x":1}]}` + "\n"
	_, verdicts := postNDJSON(t, ts.URL, feed)
	if len(verdicts) != 4 {
		t.Fatalf("got %d verdicts: %+v", len(verdicts), verdicts)
	}
	wantCodes := []string{"", ingest.CodeBadJSON, ingest.CodeEmptyTrace, ingest.CodeBadPoint}
	for i, v := range verdicts {
		if v.Code != wantCodes[i] {
			t.Errorf("line %d: code %q, want %q", v.Line, v.Code, wantCodes[i])
		}
	}
}

// TestIngestReadOnlyAndMethod checks role and method gating.
func TestIngestReadOnlyAndMethod(t *testing.T) {
	ts, _, _, _ := newTestServer(t, 317, Options{ReadOnly: true, Ingest: &ingest.Options{Workers: 1}})
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || e.Code != CodeReadOnly {
		t.Fatalf("read-only ingest: status %d code %q", resp.StatusCode, e.Code)
	}

	get, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ingest: status %d", get.StatusCode)
	}
}

// TestIngestDisabled checks the route 404s when Options.Ingest is nil.
func TestIngestDisabled(t *testing.T) {
	ts, _, _, _ := newTestServer(t, 331, Options{})
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestIngestEmptyFeed checks an empty body answers 200 with no verdicts.
func TestIngestEmptyFeed(t *testing.T) {
	ts, _, _, _ := newTestServer(t, 337, Options{Ingest: &ingest.Options{Workers: 1}})
	resp, verdicts := postNDJSON(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK || len(verdicts) != 0 {
		t.Fatalf("empty feed: status %d, %d verdicts", resp.StatusCode, len(verdicts))
	}
}

// TestIngestFullDuplexStreaming is the regression test for the
// closed-body bug: verdicts flush per window while the client is still
// sending, which on an HTTP/1.x server requires full-duplex mode —
// without EnableFullDuplex the first flush closes the unread request
// body and every later window dies with "invalid Read on closed Body".
// The client here forces the interleaving: it sends window 1, waits for
// its verdicts, and only then sends window 2.
func TestIngestFullDuplexStreaming(t *testing.T) {
	const seed = 317
	ts, _, _, _ := newTestServer(t, seed, Options{Ingest: &ingest.Options{Workers: 1, MaxBatch: 2}})
	city := ingestFixtureCity(t, seed)
	lines := strings.SplitAfter(strings.TrimSuffix(ingestFeed(t, city, 4, seed+100), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("feed has %d lines, want 4", len(lines))
	}

	pr, pw := io.Pipe()
	gate := make(chan struct{})
	go func() {
		defer pw.Close()
		io.WriteString(pw, lines[0]+lines[1])
		<-gate
		io.WriteString(pw, lines[2]+lines[3])
	}()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	readVerdict := func(wantLine int) {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("verdict stream ended before line %d: %v", wantLine, sc.Err())
		}
		var v ingest.Verdict
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict %q: %v", sc.Text(), err)
		}
		if v.Line != wantLine || v.Code != "" || v.TrajectoryID == nil {
			t.Fatalf("verdict %+v, want matched line %d (code %q)", v, wantLine, v.Code)
		}
	}
	// Window 1's verdicts must arrive while window 2 is still unsent.
	readVerdict(1)
	readVerdict(2)
	close(gate)
	readVerdict(3)
	readVerdict(4)
	if sc.Scan() {
		t.Fatalf("unexpected trailing line %q", sc.Text())
	}
}
