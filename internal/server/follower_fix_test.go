package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"netclus/internal/engine"
	"netclus/internal/roadnet"
	"netclus/internal/wal"
)

// TestFollowerClientTimeoutOutlastsLongPoll pins the client-timeout/Wait
// contract: the default client must ride out a full long-poll park (Wait
// plus headroom), and a caller-supplied client too short for the requested
// park clamps Wait instead of guaranteeing that every parked /v1/log
// request dies client-side and latches a healthy replica unhealthy.
func TestFollowerClientTimeoutOutlastsLongPoll(t *testing.T) {
	cases := []struct {
		name        string
		opts        FollowerOptions
		wantTimeout time.Duration // resulting o.Client.Timeout
		wantWait    time.Duration // resulting o.Wait
	}{
		{
			name:        "default wait gets default client",
			opts:        FollowerOptions{},
			wantTimeout: 30 * time.Second, // 10s wait + 10s headroom < 30s floor
			wantWait:    10 * time.Second,
		},
		{
			name:        "long wait stretches the default client",
			opts:        FollowerOptions{Wait: 60 * time.Second},
			wantTimeout: 70 * time.Second,
			wantWait:    60 * time.Second,
		},
		{
			name:        "wait just over the floor stretches it",
			opts:        FollowerOptions{Wait: 25 * time.Second},
			wantTimeout: 35 * time.Second,
			wantWait:    25 * time.Second,
		},
		{
			name:        "polling mode keeps the 30s default",
			opts:        FollowerOptions{Wait: -1},
			wantTimeout: 30 * time.Second,
			wantWait:    0,
		},
		{
			name:        "short caller client clamps wait under it",
			opts:        FollowerOptions{Wait: 60 * time.Second, Client: &http.Client{Timeout: 30 * time.Second}},
			wantTimeout: 30 * time.Second,
			wantWait:    20 * time.Second,
		},
		{
			name:        "tiny caller client still long-polls below it",
			opts:        FollowerOptions{Wait: 60 * time.Second, Client: &http.Client{Timeout: 5 * time.Second}},
			wantTimeout: 5 * time.Second,
			wantWait:    2500 * time.Millisecond,
		},
		{
			name:        "caller client without timeout is left alone",
			opts:        FollowerOptions{Wait: 60 * time.Second, Client: &http.Client{}},
			wantTimeout: 0,
			wantWait:    60 * time.Second,
		},
		{
			name:        "ample caller client is left alone",
			opts:        FollowerOptions{Wait: 10 * time.Second, Client: &http.Client{Timeout: time.Minute}},
			wantTimeout: time.Minute,
			wantWait:    10 * time.Second,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.opts.withDefaults()
			if got.Client.Timeout != tc.wantTimeout {
				t.Errorf("client timeout %v, want %v", got.Client.Timeout, tc.wantTimeout)
			}
			if got.Wait != tc.wantWait {
				t.Errorf("wait %v, want %v", got.Wait, tc.wantWait)
			}
			if got.Wait > 0 && got.Client.Timeout > 0 && got.Client.Timeout <= got.Wait {
				t.Errorf("invariant broken: client timeout %v does not outlast wait %v", got.Client.Timeout, got.Wait)
			}
		})
	}
}

// TestFollowerBackoffSchedule pins the retry schedule Run applies after
// consecutive poll failures: poll, 2·poll, 4·poll, … capped at max —
// instead of hammering a struggling primary at full cadence forever.
func TestFollowerBackoffSchedule(t *testing.T) {
	cases := []struct {
		poll time.Duration
		n    int
		max  time.Duration
		want time.Duration
	}{
		{500 * time.Millisecond, 1, 30 * time.Second, 500 * time.Millisecond},
		{500 * time.Millisecond, 2, 30 * time.Second, time.Second},
		{500 * time.Millisecond, 3, 30 * time.Second, 2 * time.Second},
		{500 * time.Millisecond, 6, 30 * time.Second, 16 * time.Second},
		{500 * time.Millisecond, 7, 30 * time.Second, 30 * time.Second},
		{500 * time.Millisecond, 100, 30 * time.Second, 30 * time.Second},
		{time.Minute, 1, 30 * time.Second, 30 * time.Second},
		{10 * time.Millisecond, 4, 25 * time.Millisecond, 25 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := backoffDelay(tc.poll, tc.n, tc.max); got != tc.want {
			t.Errorf("backoffDelay(%v, %d, %v) = %v, want %v", tc.poll, tc.n, tc.max, got, tc.want)
		}
	}
}

// TestFollowerStatusDivergedNotStaleLag pins the ahead-of-primary report:
// when the primary's head is behind the replica's LSN (lost acknowledged
// history), Status must report zero lag and the diverged flag — not a
// stale or underflowed lag that masquerades as catch-up work.
func TestFollowerStatusDivergedNotStaleLag(t *testing.T) {
	idx, _ := buildFixture(t, 907)
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	driveEngineUpdates(t, eng, 3) // replica state at LSN 3

	// A "primary" whose head is behind the replica: answers an empty 200
	// stream with a low head header (what a primary that lost its
	// acknowledged tail looks like to a tail request beyond its head).
	lost := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Netclus-Head-LSN", "1")
		w.WriteHeader(http.StatusOK)
	}))
	defer lost.Close()

	fol, err := NewFollower(lost.URL, eng, nil, FollowerOptions{Wait: -1, Client: lost.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := fol.Status()
	if st.LSN != 3 || st.PrimaryLSN != 1 {
		t.Fatalf("fixture drifted: LSN %d (want 3), PrimaryLSN %d (want 1)", st.LSN, st.PrimaryLSN)
	}
	if st.Lag != 0 {
		t.Fatalf("ahead-of-primary lag = %d, want 0", st.Lag)
	}
	if !st.Diverged {
		t.Fatal("ahead-of-primary status must set diverged")
	}
	// The flag must survive the JSON surface.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	if wire["diverged"] != true {
		t.Fatalf("diverged missing from wire form: %s", raw)
	}
}

// driveEngineUpdates applies n site additions directly through the engine
// (logging them when a WAL is attached).
func driveEngineUpdates(t *testing.T, eng *engine.Engine, n int) {
	t.Helper()
	inst := eng.Index().TopsInstance()
	added := 0
	for v := 0; v < inst.G.NumNodes() && added < n; v++ {
		if _, ok := inst.SiteIDOf(roadnet.NodeID(v)); ok {
			continue
		}
		if err := eng.AddSite(roadnet.NodeID(v)); err != nil {
			t.Fatal(err)
		}
		added++
	}
	if added < n {
		t.Fatalf("only %d free nodes for %d updates", added, n)
	}
}

// TestFollowerParksOnUnrecoverableAndWakesOnRetarget pins two fixes at
// once: Run must park (not spin at poll cadence) on an error re-polling
// can never fix, and Retarget must wake it against the new primary
// without a process restart.
func TestFollowerParksOnUnrecoverableAndWakesOnRetarget(t *testing.T) {
	const seed = 911
	ts, primaryEng, _ := newPrimary(t, seed, wal.Options{})
	driveUpdates(t, ts, primaryEng, 5)

	// A primary that compacted past everyone: every tail request answers
	// 410 Gone — ErrNeedBootstrap, unrecoverable by re-polling.
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Netclus-Head-LSN", "100")
		w.WriteHeader(http.StatusGone)
	}))
	defer gone.Close()

	fidx, _ := buildFixture(t, seed)
	feng, err := engine.New(fidx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower(gone.URL, feng, nil, FollowerOptions{Poll: time.Millisecond, Wait: -1, Client: &http.Client{Timeout: 5 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fol.Run(ctx)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for fol.Status().NeedsBootstrap == false {
		if time.Now().After(deadline) {
			t.Fatal("follower never latched needs_bootstrap")
		}
		time.Sleep(time.Millisecond)
	}
	// Parked: at 1ms poll cadence a spinning loop would add hundreds of
	// poll errors over 150ms; a parked one adds none.
	base := fol.Status().PollErrors
	time.Sleep(150 * time.Millisecond)
	if grew := fol.Status().PollErrors - base; grew > 2 {
		t.Fatalf("parked follower issued %d more polls against an unrecoverable primary", grew)
	}

	// Re-point at the live primary: the loop must wake, clear the latch,
	// and converge — no restart.
	if err := fol.Retarget(ts.URL); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for feng.LSN() != primaryEng.LSN() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at LSN %d after retarget, primary at %d (status %+v)",
				feng.LSN(), primaryEng.LSN(), fol.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := fol.Status()
	if st.Primary != ts.URL {
		t.Fatalf("status primary %q, want %q", st.Primary, ts.URL)
	}
	if st.NeedsBootstrap || st.Unhealthy {
		t.Fatalf("latches survived retarget: %+v", st)
	}
	cancel()
	<-done

	// Retarget validation: relative or empty URLs are rejected.
	for _, bad := range []string{"", "not-a-url", "/just/a/path"} {
		if err := fol.Retarget(bad); err == nil {
			t.Errorf("Retarget(%q) accepted", bad)
		}
	}
}

// TestFollowEndpoint pins POST /v1/follow: wired to Follower.Retarget on
// replicas, rejected with 409 on a node serving as primary, strict about
// bodies.
func TestFollowEndpoint(t *testing.T) {
	idx, _ := buildFixture(t, 919)
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower("http://old-primary:8080", eng, nil, FollowerOptions{Wait: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Options{BatchWindow: -1, ReadOnly: true, Replication: fol.Status, Retarget: fol.Retarget})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	status, body := postJSON(t, ts.Client(), ts.URL+"/v1/follow", `{"primary":"http://new-primary:9090"}`)
	if status != http.StatusOK {
		t.Fatalf("/v1/follow status %d: %s", status, body)
	}
	if got := fol.Status().Primary; got != "http://new-primary:9090" {
		t.Fatalf("follower primary %q after /v1/follow", got)
	}
	status, _ = postJSON(t, ts.Client(), ts.URL+"/v1/follow", `{"primary":"nope"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad retarget URL status %d, want 400", status)
	}
	status, _ = postJSON(t, ts.Client(), ts.URL+"/v1/follow", `{"primary":"http://x:1","extra":true}`)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown field status %d, want 400", status)
	}

	// On a node currently serving as primary the endpoint is a conflict:
	// re-pointing the tail loop of a non-follower makes no sense.
	psrv, err := New(eng, Options{BatchWindow: -1, Retarget: fol.Retarget})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(psrv)
	defer func() {
		pts.Close()
		psrv.Close()
	}()
	status, body = postJSON(t, pts.Client(), pts.URL+"/v1/follow", `{"primary":"http://new-primary:9090"}`)
	if status != http.StatusConflict {
		t.Fatalf("primary /v1/follow status %d (%s), want 409", status, body)
	}
}
