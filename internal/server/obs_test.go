// Observability surface tests: /metrics exposition validity, trace-id
// round-tripping through headers and error envelopes, and the slow-query
// structured record.

package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"netclus/internal/obs"
)

// lockedBuffer makes a bytes.Buffer safe to read from the test goroutine
// while handler goroutines log into it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMetricsExposition exercises the serving path and then asserts the
// /metrics answer parses under the strict text-format grammar and carries
// the families a dashboard needs (including a derivable latency histogram).
func TestMetricsExposition(t *testing.T) {
	ts, _, _, _ := newTestServer(t, 331, Options{})
	client := ts.Client()

	// Populate counters and the query histograms: two identical queries
	// (miss then cover-cache hit), one mutation, one client error.
	for i := 0; i < 2; i++ {
		if code, data := postJSON(t, client, ts.URL+"/v1/query", `{"k":3,"tau":0.8}`); code != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, code, data)
		}
	}
	postJSON(t, client, ts.URL+"/v1/query", `{"k":0}`)

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(string(body)); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}

	text := string(body)
	for _, want := range []string{
		`netclus_build_info{`,
		`netclus_uptime_seconds{`,
		`netclus_http_requests_total{`,
		`netclus_engine_queries_total{`,
		`netclus_query_seconds_bucket{`,
		`netclus_query_seconds_count{`,
		`netclus_query_seconds_sum{`,
		`role="primary"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
	// The histogram must have observed the queries above, so p50/p99 are
	// derivable: its cumulative +Inf bucket carries a positive count.
	if !strings.Contains(text, `le="+Inf"`) {
		t.Error("histogram exposition has no +Inf bucket")
	}
	var sawCount bool
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "netclus_query_seconds_count{") && !strings.HasSuffix(line, " 0") {
			sawCount = true
		}
	}
	if !sawCount {
		t.Error("query latency histogram recorded no samples")
	}
}

// TestTraceIDRoundTrip asserts the edge contract: a valid client-supplied
// X-Netclus-Trace-Id is echoed on the response and stamped into error
// envelopes; a missing or malformed one is replaced by a freshly minted id.
func TestTraceIDRoundTrip(t *testing.T) {
	ts, _, _, _ := newTestServer(t, 337, Options{})
	client := ts.Client()
	supplied := obs.NewTraceID()

	// Success path: header echoed verbatim.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(`{"k":3,"tau":0.8}`))
	req.Header.Set(obs.TraceHeader, supplied)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != supplied {
		t.Fatalf("trace header = %q, want the supplied %q", got, supplied)
	}

	// Error path: same id in the header and the envelope's trace_id field.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(`{"k":0}`))
	req.Header.Set(obs.TraceHeader, supplied)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != supplied {
		t.Fatalf("error trace header = %q, want %q", got, supplied)
	}
	var env struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error envelope is not JSON: %v\n%s", err, body)
	}
	if env.TraceID != supplied {
		t.Fatalf("envelope trace_id = %q, want %q", env.TraceID, supplied)
	}

	// Malformed ids never propagate: the edge mints a fresh valid one.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(`{"k":3,"tau":0.8}`))
	req.Header.Set(obs.TraceHeader, "not a trace id")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get(obs.TraceHeader)
	if got == "not a trace id" || !obs.ValidTraceID(got) {
		t.Fatalf("malformed supplied id produced trace %q, want a minted valid id", got)
	}
}

// TestSlowQueryLog wires a 1ns threshold so every query is over budget and
// asserts the structured record carries the trace id and query shape.
func TestSlowQueryLog(t *testing.T) {
	var buf lockedBuffer
	logger, err := obs.NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	ts, _, _, _ := newTestServer(t, 341, Options{Logger: logger, SlowQuery: time.Nanosecond})
	supplied := obs.NewTraceID()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(`{"k":3,"tau":0.8}`))
	req.Header.Set(obs.TraceHeader, supplied)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	out := buf.String()
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "slow query") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no slow-query record emitted; log output:\n%s", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query record is not JSON: %v\n%s", err, line)
	}
	if rec["trace_id"] != supplied {
		t.Errorf("record trace_id = %v, want %q", rec["trace_id"], supplied)
	}
	if rec["k"] != float64(3) {
		t.Errorf("record k = %v, want 3", rec["k"])
	}
	if rec["component"] != "server" {
		t.Errorf("record component = %v, want server", rec["component"])
	}
	if _, ok := rec["elapsed_ms"]; !ok {
		t.Error("record has no elapsed_ms")
	}
}
