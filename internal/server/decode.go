package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"netclus/internal/core"
	"netclus/internal/tops"
)

// Limits bound what the request decoder accepts. Every bound exists to
// keep a hostile or buggy client from turning one request into unbounded
// work: k caps the greedy, τ caps the ladder walk, the batch cap bounds
// one coalesced engine call, and the body cap bounds the JSON parser.
type Limits struct {
	// MaxK rejects queries asking for more sites than any deployment
	// plausibly serves.
	MaxK int
	// MaxTau rejects coverage thresholds beyond the index's design range
	// (queries clamp to the ladder anyway; the bound exists to fail loudly
	// instead of silently serving the coarsest instance).
	MaxTau float64
	// MaxBatch bounds the number of queries in one /v1/query/batch body.
	MaxBatch int
	// MaxBodyBytes bounds any request body.
	MaxBodyBytes int64
	// MaxIngestBytes bounds one /v1/ingest request body. Streams are
	// consumed incrementally (never buffered whole), so the cap is a
	// defence against runaway connections, not a memory bound.
	MaxIngestBytes int64
	// MaxTimeout caps the per-request deadline a client may ask for.
	MaxTimeout time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxK <= 0 {
		l.MaxK = 10_000
	}
	if l.MaxTau <= 0 {
		l.MaxTau = 1e4
	}
	if l.MaxBatch <= 0 {
		l.MaxBatch = 1024
	}
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = 1 << 20
	}
	if l.MaxIngestBytes <= 0 {
		l.MaxIngestBytes = 1 << 30
	}
	if l.MaxTimeout <= 0 {
		l.MaxTimeout = time.Minute
	}
	return l
}

// queryRequest is the wire form of one TOPS query.
type queryRequest struct {
	K    int     `json:"k"`
	Tau  float64 `json:"tau"`
	Pref string  `json:"pref"`
	// Lambda is the decay rate of the exp preference; ignored otherwise.
	Lambda float64 `json:"lambda,omitempty"`
	FM     bool    `json:"fm,omitempty"`
	F      int     `json:"f,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	// TimeoutMs is the per-request deadline; 0 means the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// batchRequest is the wire form of /v1/query/batch.
type batchRequest struct {
	Queries   []queryRequest `json:"queries"`
	TimeoutMs int64          `json:"timeout_ms,omitempty"`
}

// updateRequest is the wire form of /v1/update.
type updateRequest struct {
	// Op is one of add_site, delete_site, add_trajectory,
	// delete_trajectory.
	Op string `json:"op"`
	// Node addresses add_site / delete_site.
	Node int64 `json:"node,omitempty"`
	// Nodes is the node sequence of add_trajectory.
	Nodes []int64 `json:"nodes,omitempty"`
	// ID addresses delete_trajectory.
	ID int64 `json:"id,omitempty"`
}

// strictUnmarshal decodes exactly one JSON value into v, rejecting unknown
// fields and trailing garbage. encoding/json already rejects NaN/Inf
// literals (they are not JSON) and out-of-range numbers like 1e999; the
// validators behind this still guard the finite-range invariants so no
// parser quirk can smuggle a non-finite float into the engine.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// toOptions validates one wire query against the limits and lowers it to
// engine options plus its effective deadline.
func (q queryRequest) toOptions(lim Limits) (core.QueryOptions, time.Duration, error) {
	var zero core.QueryOptions
	if q.K <= 0 {
		return zero, 0, fmt.Errorf("k = %d must be positive", q.K)
	}
	if q.K > lim.MaxK {
		return zero, 0, fmt.Errorf("k = %d exceeds limit %d", q.K, lim.MaxK)
	}
	if !finite(q.Tau) || q.Tau <= 0 {
		return zero, 0, fmt.Errorf("tau = %v must be a positive finite number", q.Tau)
	}
	if q.Tau > lim.MaxTau {
		return zero, 0, fmt.Errorf("tau = %v exceeds limit %v", q.Tau, lim.MaxTau)
	}
	var pref tops.Preference
	switch q.Pref {
	case "", "binary":
		pref = tops.Binary(q.Tau)
	case "linear":
		pref = tops.Linear(q.Tau)
	case "convex":
		pref = tops.ConvexQuadratic(q.Tau)
	case "exp":
		lambda := q.Lambda
		if lambda == 0 {
			lambda = 1
		}
		if !finite(lambda) || lambda <= 0 {
			return zero, 0, fmt.Errorf("lambda = %v must be a positive finite number", q.Lambda)
		}
		pref = tops.ExpDecay(q.Tau, lambda)
	default:
		return zero, 0, fmt.Errorf("unknown preference %q (want binary, linear, convex or exp)", q.Pref)
	}
	if q.Lambda != 0 && q.Pref != "exp" {
		return zero, 0, fmt.Errorf("lambda applies only to the exp preference")
	}
	if q.FM {
		if q.Pref != "" && q.Pref != "binary" {
			return zero, 0, fmt.Errorf("fm requires the binary preference")
		}
		if q.F < 0 || q.F > 1024 {
			return zero, 0, fmt.Errorf("f = %d outside [0, 1024]", q.F)
		}
	} else if q.F != 0 {
		return zero, 0, fmt.Errorf("f applies only to fm queries")
	}
	if q.TimeoutMs < 0 {
		return zero, 0, fmt.Errorf("timeout_ms = %d must be non-negative", q.TimeoutMs)
	}
	timeout := time.Duration(q.TimeoutMs) * time.Millisecond
	if timeout > lim.MaxTimeout {
		timeout = lim.MaxTimeout
	}
	return core.QueryOptions{
		K:     q.K,
		Pref:  pref,
		UseFM: q.FM,
		F:     q.F,
		Seed:  q.Seed,
	}, timeout, nil
}

// decodeQueryRequest parses and validates one /v1/query body. It is the
// fuzz surface of the serving layer: for arbitrary bytes it must either
// return an error (the request is answered 4xx) or produce options that
// the engine accepts without panicking.
func decodeQueryRequest(data []byte, lim Limits) (core.QueryOptions, time.Duration, error) {
	lim = lim.withDefaults()
	var q queryRequest
	if err := strictUnmarshal(data, &q); err != nil {
		return core.QueryOptions{}, 0, err
	}
	return q.toOptions(lim)
}

// decodeBatchRequest parses one /v1/query/batch body. Structural problems
// (bad JSON, empty or oversized batch, bad batch timeout) fail the whole
// request; per-item validation failures come back in itemErrs — index-
// aligned with opts — so one bad query degrades only its own slot,
// mirroring Engine.QueryBatch semantics.
func decodeBatchRequest(data []byte, lim Limits) (opts []core.QueryOptions, itemErrs []error, timeout time.Duration, err error) {
	lim = lim.withDefaults()
	var b batchRequest
	if err := strictUnmarshal(data, &b); err != nil {
		return nil, nil, 0, err
	}
	if len(b.Queries) == 0 {
		return nil, nil, 0, fmt.Errorf("empty batch")
	}
	if len(b.Queries) > lim.MaxBatch {
		return nil, nil, 0, fmt.Errorf("batch of %d exceeds limit %d", len(b.Queries), lim.MaxBatch)
	}
	if b.TimeoutMs < 0 {
		return nil, nil, 0, fmt.Errorf("timeout_ms = %d must be non-negative", b.TimeoutMs)
	}
	timeout = time.Duration(b.TimeoutMs) * time.Millisecond
	if timeout > lim.MaxTimeout {
		timeout = lim.MaxTimeout
	}
	opts = make([]core.QueryOptions, len(b.Queries))
	itemErrs = make([]error, len(b.Queries))
	for i, q := range b.Queries {
		if q.TimeoutMs != 0 {
			itemErrs[i] = fmt.Errorf("set timeout_ms on the batch, not its items")
			continue
		}
		opts[i], _, itemErrs[i] = q.toOptions(lim)
	}
	return opts, itemErrs, timeout, nil
}

// decodeUpdateRequest parses and validates one /v1/update body. Range
// checks against the live graph happen in the engine; here only structural
// sanity is enforced.
func decodeUpdateRequest(data []byte) (updateRequest, error) {
	var u updateRequest
	if err := strictUnmarshal(data, &u); err != nil {
		return u, err
	}
	switch u.Op {
	case "add_site", "delete_site":
		if u.Node < 0 || u.Node > math.MaxInt32 {
			return u, fmt.Errorf("node %d outside int32 range", u.Node)
		}
		if len(u.Nodes) != 0 || u.ID != 0 {
			return u, fmt.Errorf("%s takes only the node field", u.Op)
		}
	case "add_trajectory":
		if len(u.Nodes) == 0 {
			return u, fmt.Errorf("add_trajectory needs a non-empty nodes sequence")
		}
		if len(u.Nodes) > 1<<16 {
			return u, fmt.Errorf("trajectory of %d nodes exceeds limit %d", len(u.Nodes), 1<<16)
		}
		for i, v := range u.Nodes {
			if v < 0 || v > math.MaxInt32 {
				return u, fmt.Errorf("nodes[%d] = %d outside int32 range", i, v)
			}
		}
		if u.Node != 0 || u.ID != 0 {
			return u, fmt.Errorf("add_trajectory takes only the nodes field")
		}
	case "delete_trajectory":
		if u.ID < 0 || u.ID > math.MaxInt32 {
			return u, fmt.Errorf("trajectory id %d outside int32 range", u.ID)
		}
		if u.Node != 0 || len(u.Nodes) != 0 {
			return u, fmt.Errorf("delete_trajectory takes only the id field")
		}
	case "":
		return u, fmt.Errorf("missing op")
	default:
		return u, fmt.Errorf("unknown op %q (want add_site, delete_site, add_trajectory or delete_trajectory)", u.Op)
	}
	return u, nil
}
