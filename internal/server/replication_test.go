package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netclus/internal/engine"
	"netclus/internal/roadnet"
	"netclus/internal/wal"
)

// newReplServer boots a WAL-attached primary with customizable serving
// options (the replication-v2 test fixture).
func newReplServer(t *testing.T, seed int64, mutate func(*Options)) (*httptest.Server, *Server, *engine.Engine, *wal.Log) {
	t.Helper()
	idx, _ := buildFixture(t, seed)
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	opts := Options{BatchWindow: -1, Log: log}
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := New(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		log.Close()
	})
	return ts, srv, eng, log
}

// doReq issues one request and returns status, decoded error envelope (zero
// when the body is not one), and the raw response.
func doReq(t *testing.T, client *http.Client, method, url, body string) (int, errorResponse, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var env errorResponse
	_ = json.Unmarshal(data, &env)
	return resp.StatusCode, env, resp
}

// TestErrorEnvelopeCodes pins the machine-readable code of every handler
// error class the API can answer, table-driven per API.md.
func TestErrorEnvelopeCodes(t *testing.T) {
	ts, srv, _, log := newReplServer(t, 331, func(o *Options) {
		o.Limits = Limits{MaxBodyBytes: 1 << 10}
	})
	head := log.HeadLSN()
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"query malformed json", http.MethodPost, "/v1/query", "{", http.StatusBadRequest, CodeBadRequest},
		{"query wrong method", http.MethodGet, "/v1/query", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"batch wrong method", http.MethodGet, "/v1/query/batch", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"update malformed json", http.MethodPost, "/v1/update", "{", http.StatusBadRequest, CodeBadRequest},
		{"update unknown op", http.MethodPost, "/v1/update", `{"op":"frobnicate"}`, http.StatusBadRequest, CodeBadRequest},
		{"update conflicting state", http.MethodPost, "/v1/update", `{"op":"delete_trajectory","id":99999}`, http.StatusConflict, CodeConflict},
		{"update too large", http.MethodPost, "/v1/update", `{"op":"add_site","node":1,"pad":"` + strings.Repeat("x", 4096) + `"}`, http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"log wrong method", http.MethodPost, "/v1/log", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"log missing from", http.MethodGet, "/v1/log", "", http.StatusBadRequest, CodeBadRequest},
		{"log zero from", http.MethodGet, "/v1/log?from=0", "", http.StatusBadRequest, CodeBadRequest},
		{"log bad max", http.MethodGet, "/v1/log?from=1&max=-3", "", http.StatusBadRequest, CodeBadRequest},
		{"log bad wait", http.MethodGet, "/v1/log?from=1&wait=banana", "", http.StatusBadRequest, CodeBadRequest},
		{"log beyond head", http.MethodGet, fmt.Sprintf("/v1/log?from=%d", head+2), "", http.StatusBadRequest, CodeBadRequest},
		{"replication wrong method", http.MethodPost, "/v1/replication", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"snapshot wrong method", http.MethodGet, "/v1/snapshot", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"health wrong method", http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, env, resp := doReq(t, ts.Client(), tc.method, ts.URL+tc.path, tc.body)
			if status != tc.wantStatus || env.Code != tc.wantCode {
				t.Fatalf("got %d code %q, want %d code %q (error: %s)", status, env.Code, tc.wantStatus, tc.wantCode, env.Error)
			}
			if env.Error == "" {
				t.Fatal("error envelope kept no human-readable message")
			}
			if status == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
		})
	}

	t.Run("read_only", func(t *testing.T) {
		rts, _, _, _ := newTestServer(t, 333, Options{ReadOnly: true, BatchWindow: -1})
		status, env, _ := doReq(t, rts.Client(), http.MethodPost, rts.URL+"/v1/update", `{"op":"add_site","node":1}`)
		if status != http.StatusForbidden || env.Code != CodeReadOnly {
			t.Fatalf("read-only update: %d %q", status, env.Code)
		}
	})

	t.Run("draining", func(t *testing.T) {
		srv.SetDraining(true)
		defer srv.SetDraining(false)
		status, env, resp := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/healthz", "")
		if status != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("draining healthz: %d, Retry-After %q", status, resp.Header.Get("Retry-After"))
		}
		var h healthResponse
		_, body := postJSONGet(t, ts.Client(), ts.URL+"/healthz")
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		if h.Code != CodeDraining {
			t.Fatalf("draining healthz code %q", h.Code)
		}
		_ = env
	})

	t.Run("log_compacted", func(t *testing.T) {
		// Tiny segments so compaction genuinely deletes early history.
		cts, ceng, clog := newPrimary(t, 337, wal.Options{SegmentBytes: 64})
		driveUpdates(t, cts, ceng, 6)
		if _, err := clog.Compact(ceng.LSN() - 1); err != nil {
			t.Fatal(err)
		}
		status, env, _ := doReq(t, cts.Client(), http.MethodGet, cts.URL+"/v1/log?from=1", "")
		if status != http.StatusGone || env.Code != CodeLogCompacted {
			t.Fatalf("compacted log read: %d %q", status, env.Code)
		}
	})

	t.Run("quorum_timeout", func(t *testing.T) {
		qts, _, qeng, _ := newReplServer(t, 339, func(o *Options) {
			o.Quorum = 1
			o.QuorumTimeout = 100 * time.Millisecond
		})
		node := freeNode(t, qeng)
		status, env, resp := doReq(t, qts.Client(), http.MethodPost, qts.URL+"/v1/update",
			fmt.Sprintf(`{"op":"add_site","node":%d}`, node))
		if status != http.StatusServiceUnavailable || env.Code != CodeQuorumTimeout {
			t.Fatalf("quorum timeout: %d %q (%s)", status, env.Code, env.Error)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("quorum timeout 503 without Retry-After")
		}
		// The mutation applied locally despite the failed ack.
		if qeng.LSN() == 0 {
			t.Fatal("quorum-timeout update did not apply locally")
		}
	})

	t.Run("fenced", func(t *testing.T) {
		fts, _, feng, flog := newReplServer(t, 341, nil)
		if err := feng.BeginEpoch(1); err != nil {
			t.Fatal(err)
		}
		// A peer presenting a higher epoch on the tail surface deposes us.
		status, _, _ := doReq(t, fts.Client(), http.MethodGet,
			fmt.Sprintf("%s/v1/log?from=%d&peer_epoch=5", fts.URL, flog.HeadLSN()+1), "")
		if status != http.StatusOK {
			t.Fatalf("tail with peer_epoch: %d", status)
		}
		node := freeNode(t, feng)
		status, env, _ := doReq(t, fts.Client(), http.MethodPost, fts.URL+"/v1/update",
			fmt.Sprintf(`{"op":"add_site","node":%d}`, node))
		if status != http.StatusConflict || env.Code != CodeFenced {
			t.Fatalf("fenced update: %d %q (%s)", status, env.Code, env.Error)
		}
	})
}

// postJSONGet is a tiny GET helper mirroring postJSON's return shape.
func postJSONGet(t testing.TB, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// freeNode finds a graph node that is not currently a candidate site.
func freeNode(t testing.TB, eng *engine.Engine) int {
	t.Helper()
	inst := eng.Index().TopsInstance()
	for v := 0; v < inst.G.NumNodes(); v++ {
		if _, ok := inst.SiteIDOf(roadnet.NodeID(v)); !ok {
			return v
		}
	}
	t.Fatal("no free node")
	return -1
}

// TestLongPollLogTailing pins the /v1/log?wait= semantics: park until a
// commit, return at the wait deadline, and wake on drain.
func TestLongPollLogTailing(t *testing.T) {
	ts, srv, eng, log := newReplServer(t, 347, nil)
	driveUpdates(t, ts, eng, 1)
	head := log.HeadLSN()

	t.Run("early return on append", func(t *testing.T) {
		type result struct {
			status  int
			n       int
			head    string
			elapsed time.Duration
		}
		done := make(chan result, 1)
		go func() {
			t0 := time.Now()
			resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/log?from=%d&wait=30s", ts.URL, head+1))
			if err != nil {
				done <- result{status: -1}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			done <- result{resp.StatusCode, len(body), resp.Header.Get("X-Netclus-Head-LSN"), time.Since(t0)}
		}()
		time.Sleep(100 * time.Millisecond) // let the request park
		driveUpdates(t, ts, eng, 1)
		select {
		case r := <-done:
			if r.status != http.StatusOK || r.n == 0 {
				t.Fatalf("parked read returned %d with %d bytes", r.status, r.n)
			}
			if r.head != strconv.FormatUint(head+1, 10) {
				t.Fatalf("head header %s, want %d", r.head, head+1)
			}
			if r.elapsed > 10*time.Second {
				t.Fatalf("append did not cut the park short (%v)", r.elapsed)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("parked long-poll never returned after an append")
		}
		head = log.HeadLSN()
	})

	t.Run("honors wait timeout", func(t *testing.T) {
		t0 := time.Now()
		status, body := postJSONGet(t, ts.Client(), fmt.Sprintf("%s/v1/log?from=%d&wait=150ms", ts.URL, head+1))
		elapsed := time.Since(t0)
		if status != http.StatusOK || len(body) != 0 {
			t.Fatalf("timed-out long-poll: %d, %d bytes", status, len(body))
		}
		if elapsed < 100*time.Millisecond {
			t.Fatalf("caught-up read returned in %v; the wait was not honored", elapsed)
		}
	})

	t.Run("drain wakes parked waiters", func(t *testing.T) {
		done := make(chan time.Duration, 1)
		go func() {
			t0 := time.Now()
			resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/log?from=%d&wait=30s", ts.URL, head+1))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- time.Since(t0)
		}()
		time.Sleep(100 * time.Millisecond)
		srv.SetDraining(true)
		defer srv.SetDraining(false)
		select {
		case elapsed := <-done:
			if elapsed > 10*time.Second {
				t.Fatalf("drain did not wake the parked waiter (%v)", elapsed)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("parked long-poll survived the drain")
		}
	})
}

// TestQuorumAckRoundTrip runs a real follower against a quorum-1 primary:
// updates block until the follower's durable ack arrives, and the
// replication resource shows the whole topology.
func TestQuorumAckRoundTrip(t *testing.T) {
	const seed = 353
	ts, _, eng, log := newReplServer(t, seed, func(o *Options) {
		o.Quorum = 1
		o.QuorumTimeout = 30 * time.Second
	})

	fidx, _ := buildFixture(t, seed)
	feng, err := engine.New(fidx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flog, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer flog.Close()
	fol, err := NewFollower(ts.URL, feng, flog, FollowerOptions{
		Poll: 10 * time.Millisecond, Wait: 2 * time.Second, ID: "quorum-f1", Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	folDone := make(chan struct{})
	go func() {
		defer close(folDone)
		fol.Run(ctx)
	}()

	node := freeNode(t, eng)
	status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update", fmt.Sprintf(`{"op":"add_site","node":%d}`, node))
	if status != http.StatusOK {
		t.Fatalf("quorum update: %d %s", status, body)
	}
	var upd updateResponse
	if err := json.Unmarshal(body, &upd); err != nil {
		t.Fatal(err)
	}
	if !upd.OK || !upd.Quorum || upd.LSN != log.HeadLSN() {
		t.Fatalf("quorum ack envelope: %+v (head %d)", upd, log.HeadLSN())
	}

	// The replication resource reports the follower's durable position.
	var repl replicationResponse
	_, rbody := postJSONGet(t, ts.Client(), ts.URL+"/v1/replication")
	if err := json.Unmarshal(rbody, &repl); err != nil {
		t.Fatal(err)
	}
	if repl.Role != "primary" || repl.ReadOnly {
		t.Fatalf("primary replication resource: %+v", repl)
	}
	if repl.Quorum == nil || repl.Quorum.Required != 1 {
		t.Fatalf("quorum config missing: %+v", repl.Quorum)
	}
	if len(repl.Followers) != 1 || repl.Followers[0].ID != "quorum-f1" {
		t.Fatalf("followers table: %+v", repl.Followers)
	}
	if repl.Followers[0].AckedLSN != log.HeadLSN() || repl.CommittedLSN != log.HeadLSN() {
		t.Fatalf("acked %d / committed %d, head %d", repl.Followers[0].AckedLSN, repl.CommittedLSN, log.HeadLSN())
	}
	// The follower's ack position was fsynced into its local log first.
	if flog.HeadLSN() != log.HeadLSN() {
		t.Fatalf("follower log head %d, primary %d", flog.HeadLSN(), log.HeadLSN())
	}

	cancel()
	<-folDone
}

// TestPromoteAndFencing drives the whole failover protocol in-process:
// a converged follower promotes, opens epoch+1, starts accepting writes,
// and the deposed primary is fenced the moment it hears the new epoch.
func TestPromoteAndFencing(t *testing.T) {
	const seed = 359
	ts, _, eng, _ := newReplServer(t, seed, nil)
	if err := eng.BeginEpoch(1); err != nil {
		t.Fatal(err)
	}
	driveUpdates(t, ts, eng, 5)

	fidx, _ := buildFixture(t, seed)
	feng, err := engine.New(fidx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flog, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer flog.Close()
	fol, err := NewFollower(ts.URL, feng, flog, FollowerOptions{Wait: -1, ID: "promote-f1", Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if feng.LSN() != eng.LSN() || feng.Epoch() != 1 {
		t.Fatalf("follower at LSN %d epoch %d, primary LSN %d", feng.LSN(), feng.Epoch(), eng.LSN())
	}

	promote := func(ctx context.Context) (uint64, error) {
		if err := feng.AttachWAL(flog); err != nil {
			return 0, err
		}
		epoch := feng.Epoch() + 1
		if err := feng.BeginEpoch(epoch); err != nil {
			return 0, err
		}
		return epoch, nil
	}
	fsrv, err := New(feng, Options{BatchWindow: -1, ReadOnly: true, Replication: fol.Status, Log: flog, Promote: promote})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fsrv)
	defer func() {
		fts.Close()
		fsrv.Close()
	}()

	// Promote: 200, primary role, epoch 2; writes open up.
	status, body := postJSON(t, fts.Client(), fts.URL+"/v1/promote", "")
	if status != http.StatusOK {
		t.Fatalf("promote: %d %s", status, body)
	}
	var pr promoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.OK || pr.Role != "primary" || pr.Epoch != 2 {
		t.Fatalf("promote response: %+v", pr)
	}
	node := freeNode(t, feng)
	status, body = postJSON(t, fts.Client(), fts.URL+"/v1/update", fmt.Sprintf(`{"op":"add_site","node":%d}`, node))
	if status != http.StatusOK {
		t.Fatalf("promoted update: %d %s", status, body)
	}
	// A second promote answers conflict: this node is already primary.
	status, body = postJSON(t, fts.Client(), fts.URL+"/v1/promote", "")
	var env errorResponse
	_ = json.Unmarshal(body, &env)
	if status != http.StatusConflict || env.Code != CodeConflict {
		t.Fatalf("double promote: %d %q", status, env.Code)
	}
	var repl replicationResponse
	_, rbody := postJSONGet(t, fts.Client(), fts.URL+"/v1/replication")
	if err := json.Unmarshal(rbody, &repl); err != nil {
		t.Fatal(err)
	}
	if repl.Role != "primary" || repl.Epoch != 2 {
		t.Fatalf("promoted replication resource: %+v", repl)
	}

	// The promoted node refuses the deposed primary's stream outright.
	if _, err := fol.Poll(context.Background()); !errors.Is(err, wal.ErrFenced) {
		t.Fatalf("promoted follower tailing the old primary = %v, want ErrFenced", err)
	}

	// And the deposed primary is fenced as soon as any peer presents the
	// new epoch on its replication surface.
	status, _, _ = doReq(t, ts.Client(), http.MethodGet, fmt.Sprintf("%s/v1/log?from=%d&peer_epoch=2", ts.URL, eng.LSN()+1), "")
	if status != http.StatusOK {
		t.Fatalf("fencing tail request: %d", status)
	}
	node = freeNode(t, eng)
	status, body = postJSON(t, ts.Client(), ts.URL+"/v1/update", fmt.Sprintf(`{"op":"add_site","node":%d}`, node))
	_ = json.Unmarshal(body, &env)
	if status != http.StatusConflict || env.Code != CodeFenced {
		t.Fatalf("deposed primary update: %d %q (%s)", status, env.Code, env.Error)
	}
	_, rbody = postJSONGet(t, ts.Client(), ts.URL+"/v1/replication")
	if err := json.Unmarshal(rbody, &repl); err != nil {
		t.Fatal(err)
	}
	if repl.FencedBy != 2 || repl.Epoch != 1 {
		t.Fatalf("deposed replication resource: %+v", repl)
	}
}

// stubApplier is a minimal wal.Applier for follower-health tests that do
// not need a real engine.
type stubApplier struct{ lsn atomic.Uint64 }

func (s *stubApplier) ApplyRecord(rec wal.Record) error { s.lsn.Store(rec.LSN); return nil }
func (s *stubApplier) LSN() uint64                      { return s.lsn.Load() }

// TestFollowerUnhealthyLatchesHealthz: consecutive tail failures flip the
// replica's /healthz to 503 tail_stalled, and one successful round clears
// the latch.
func TestFollowerUnhealthyLatchesHealthz(t *testing.T) {
	var broken atomic.Bool
	broken.Store(true)
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Netclus-Head-LSN", "0")
		w.WriteHeader(http.StatusOK)
	}))
	defer primary.Close()

	app := &stubApplier{}
	fol, err := NewFollower(primary.URL, app, nil, FollowerOptions{
		Wait: -1, UnhealthyAfter: 2, ID: "sick-f1", Client: primary.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := fol.Poll(ctx); err == nil {
		t.Fatal("poll against a broken primary succeeded")
	}
	if st := fol.Status(); st.Unhealthy || st.ConsecutiveFailures != 1 {
		t.Fatalf("status after one failure: %+v", st)
	}
	if _, err := fol.Poll(ctx); err == nil {
		t.Fatal("second poll succeeded")
	}
	st := fol.Status()
	if !st.Unhealthy || st.ConsecutiveFailures != 2 {
		t.Fatalf("status after two failures: %+v", st)
	}

	// The latched status flips the serving replica's /healthz.
	idx, _ := buildFixture(t, 367)
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, Options{BatchWindow: -1, ReadOnly: true, Replication: fol.Status})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv)
	defer func() {
		hts.Close()
		srv.Close()
	}()
	status, body := postJSONGet(t, hts.Client(), hts.URL+"/healthz")
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || h.Code != CodeTailStalled {
		t.Fatalf("stalled replica healthz: %d %q", status, h.Code)
	}

	// One good round heals the replica.
	broken.Store(false)
	if _, err := fol.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	if st := fol.Status(); st.Unhealthy || st.ConsecutiveFailures != 0 {
		t.Fatalf("status after recovery: %+v", st)
	}
	status, _ = postJSONGet(t, hts.Client(), hts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("recovered replica healthz: %d", status)
	}
}
