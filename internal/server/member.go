package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"netclus/internal/obs"
	"netclus/internal/shard"
)

// MemberEngine is the per-shard round-protocol surface the serving layer
// exposes under /v1/shard/ when Options.Member is set (implemented by
// shard.Member). The endpoints are read-only over index state — a
// follower member serves them too, which is what lets the router retry a
// query against a shard's replica before any promotion happens.
type MemberEngine interface {
	Meta() shard.MemberMeta
	Reps(p int) ([]shard.WireRep, error)
	Owner(v int64) int
	Start(ctx context.Context, req *shard.StartRequest) (*shard.RoundReply, error)
	Step(req *shard.StepRequest) (*shard.RoundReply, error)
	End(qid string)
	Sessions() int
}

// handleShardMeta serves GET /v1/shard/meta.
func (s *Server) handleShardMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.opts.Member.Meta())
}

// repsResponse is GET /v1/shard/reps?p=.
type repsResponse struct {
	P    int             `json:"p"`
	Reps []shard.WireRep `json:"reps"`
}

func (s *Server) handleShardReps(w http.ResponseWriter, r *http.Request) {
	p, err := strconv.Atoi(r.URL.Query().Get("p"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("p must be a ladder instance index"))
		return
	}
	reps, err := s.opts.Member.Reps(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	writeJSON(w, repsResponse{P: p, Reps: reps})
}

// ownerResponse is GET /v1/shard/owner?node=.
type ownerResponse struct {
	Node  int64 `json:"node"`
	Shard int   `json:"shard"`
}

func (s *Server) handleShardOwner(w http.ResponseWriter, r *http.Request) {
	node, err := strconv.ParseInt(r.URL.Query().Get("node"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("node must be an integer node id"))
		return
	}
	writeJSON(w, ownerResponse{Node: node, Shard: s.opts.Member.Owner(node)})
}

func (s *Server) handleShardStart(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req shard.StartRequest
	err := strictUnmarshal(body.Bytes(), &req)
	putBuf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	// The trace id minted (or forwarded) at the router edge arrives here on
	// the scatter request: logging it is what makes one distributed query
	// joinable across the router's and every member's logs.
	s.log.Debug("shard query start",
		"trace_id", obs.TraceID(ctx), "qid", req.QID, "p", req.P, "shard", s.opts.Member.Meta().Index)
	reply, err := s.opts.Member.Start(ctx, &req)
	if err != nil {
		status, code := queryStatus(err)
		writeError(w, status, code, err)
		return
	}
	writeJSON(w, reply)
}

func (s *Server) handleShardStep(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req shard.StepRequest
	err := strictUnmarshal(body.Bytes(), &req)
	putBuf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	reply, err := s.opts.Member.Step(&req)
	if err != nil {
		// An unknown session is a state conflict (expired, or this process
		// is not the one the query started on — a failover happened); the
		// gather restarts the query from scratch.
		if errors.Is(err, shard.ErrUnknownSession) {
			writeError(w, http.StatusConflict, CodeConflict, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	writeJSON(w, reply)
}

func (s *Server) handleShardEnd(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req shard.EndRequest
	err := strictUnmarshal(body.Bytes(), &req)
	putBuf(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	s.opts.Member.End(req.QID)
	writeJSON(w, struct {
		OK bool `json:"ok"`
	}{OK: true})
}
