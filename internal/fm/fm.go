// Package fm implements Flajolet–Martin probabilistic distinct-count
// sketches (Flajolet & Martin, JCSS 1985), the accelerator the paper uses in
// two places: speeding up the update stage of INC-GREEDY for the binary
// preference function (§3.5) and choosing the vertex with the largest
// incremental dominating set in Greedy-GDSP (§4.1.2).
//
// A sketch holds f independent 32-bit words, matching the paper's choice of
// 32-bit words so that "the bitwise OR operation of two such regular-sized
// words is extremely fast". An element hashes into bit i of a word with
// probability 2^-(i+1) (the position is the number of trailing zeros of a
// seeded 64-bit mix). The distinct count of a set is estimated from the mean
// position of the lowest unset bit across the f words:
//
//	estimate = 2^R̄ / φ, φ ≈ 0.77351
//
// Unions are word-wise ORs, which is what makes marginal-gain computation
// over set unions cheap inside the greedy loops.
package fm

import (
	"fmt"
	"math"
	"math/bits"
)

// phi is the Flajolet–Martin correction factor.
const phi = 0.77351

// wordBits is the sketch word width. The paper fixes 32 bits, enough for
// about 4 billion distinct elements.
const wordBits = 32

// Sketch is a Flajolet–Martin distinct-count sketch with f independent
// words. The zero value is unusable; use NewSketch. Sketches with different
// f or different seeds are incompatible and must not be unioned.
type Sketch struct {
	words []uint32
	seed  uint64
}

// NewSketch returns an empty sketch with f independent words. f must be
// positive; larger f lowers the estimation error at linear cost in time and
// space (the paper sweeps f in Table 8 and settles on f = 30).
func NewSketch(f int) *Sketch {
	if f <= 0 {
		panic(fmt.Sprintf("fm: invalid sketch count %d", f))
	}
	return &Sketch{words: make([]uint32, f), seed: 0x9e3779b97f4a7c15}
}

// NewSketchSeeded returns an empty sketch whose hash family is derived from
// the given seed. Sketches participating in the same union structure must
// share a seed.
func NewSketchSeeded(f int, seed uint64) *Sketch {
	s := NewSketch(f)
	s.seed = seed
	return s
}

// F returns the number of independent words.
func (s *Sketch) F() int { return len(s.words) }

// splitmix64 is a fast, well-mixed 64-bit hash step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts element id into the sketch.
func (s *Sketch) Add(id uint64) {
	for w := range s.words {
		h := splitmix64(id ^ splitmix64(s.seed+uint64(w)*0x2545f4914f6cdd1d))
		pos := bits.TrailingZeros64(h)
		if pos >= wordBits {
			pos = wordBits - 1
		}
		s.words[w] |= 1 << uint(pos)
	}
}

// UnionWith ORs other into s in place. Both sketches must have the same f
// and seed; mixing incompatible sketches is a programming error and panics.
func (s *Sketch) UnionWith(other *Sketch) {
	if len(s.words) != len(other.words) || s.seed != other.seed {
		panic("fm: union of incompatible sketches")
	}
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// Union returns a new sketch holding the union of a and b.
func Union(a, b *Sketch) *Sketch {
	out := a.Clone()
	out.UnionWith(b)
	return out
}

// UnionEstimate estimates |A ∪ B| without materializing the union sketch.
// It is the hot operation of the FM-accelerated greedy loops.
func UnionEstimate(a, b *Sketch) float64 {
	if len(a.words) != len(b.words) || a.seed != b.seed {
		panic("fm: union estimate of incompatible sketches")
	}
	var sum int
	for i := range a.words {
		sum += lowestUnset(a.words[i] | b.words[i])
	}
	return estimateFromRankSum(sum, len(a.words))
}

// Clone returns a deep copy of s.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{words: append([]uint32(nil), s.words...), seed: s.seed}
}

// Reset clears the sketch to empty.
func (s *Sketch) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// lowestUnset returns the index of the lowest zero bit of w (the FM rank R).
func lowestUnset(w uint32) int {
	return bits.TrailingZeros32(^w)
}

func estimateFromRankSum(sum, f int) float64 {
	rBar := float64(sum) / float64(f)
	return math.Exp2(rBar) / phi
}

// Estimate returns the estimated number of distinct elements added.
func (s *Sketch) Estimate() float64 {
	var sum int
	for _, w := range s.words {
		sum += lowestUnset(w)
	}
	return estimateFromRankSum(sum, len(s.words))
}

// Empty reports whether no element has ever been added.
func (s *Sketch) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// RelativeErrorBound returns the expected relative standard error of the
// estimate for f words, ≈ 0.78/√f (Flajolet & Martin). It is advisory and
// used by tests and by the NETCLUS quality-bound reporting (Theorem 8).
func RelativeErrorBound(f int) float64 { return 0.78 / math.Sqrt(float64(f)) }
