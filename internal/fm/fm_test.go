package fm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptySketch(t *testing.T) {
	s := NewSketch(8)
	if !s.Empty() {
		t.Error("fresh sketch not empty")
	}
	if est := s.Estimate(); est > 1.5 {
		t.Errorf("empty estimate = %v, want ~1/phi", est)
	}
	s.Add(42)
	if s.Empty() {
		t.Error("sketch empty after Add")
	}
	s.Reset()
	if !s.Empty() {
		t.Error("sketch not empty after Reset")
	}
}

func TestNewSketchPanicsOnBadF(t *testing.T) {
	for _, f := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSketch(%d) did not panic", f)
				}
			}()
			NewSketch(f)
		}()
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// With f=64 the relative standard error is about 10%; allow 3 sigma.
	for _, n := range []int{100, 1000, 10000} {
		s := NewSketch(64)
		for i := 0; i < n; i++ {
			s.Add(uint64(i) * 2654435761)
		}
		est := s.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		bound := 3 * RelativeErrorBound(64)
		if relErr > bound {
			t.Errorf("n=%d: estimate %v, relative error %.3f > %.3f", n, est, relErr, bound)
		}
	}
}

func TestEstimateIgnoresDuplicates(t *testing.T) {
	a := NewSketch(32)
	b := NewSketch(32)
	for i := 0; i < 500; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i))
		b.Add(uint64(i)) // duplicates
		b.Add(uint64(i))
	}
	if a.Estimate() != b.Estimate() {
		t.Errorf("duplicates changed estimate: %v vs %v", a.Estimate(), b.Estimate())
	}
}

func TestUnionMatchesCombinedSet(t *testing.T) {
	a := NewSketch(32)
	b := NewSketch(32)
	c := NewSketch(32)
	for i := 0; i < 400; i++ {
		a.Add(uint64(i))
		c.Add(uint64(i))
	}
	for i := 200; i < 600; i++ {
		b.Add(uint64(i))
		c.Add(uint64(i))
	}
	u := Union(a, b)
	if u.Estimate() != c.Estimate() {
		t.Errorf("union estimate %v != direct estimate %v", u.Estimate(), c.Estimate())
	}
	if got := UnionEstimate(a, b); got != c.Estimate() {
		t.Errorf("UnionEstimate %v != %v", got, c.Estimate())
	}
	// In-place variant.
	a2 := a.Clone()
	a2.UnionWith(b)
	if a2.Estimate() != c.Estimate() {
		t.Error("UnionWith mismatch")
	}
}

func TestUnionMonotoneProperty(t *testing.T) {
	// est(A ∪ B) >= max(est(A), est(B)) holds exactly for FM sketches
	// because OR can only set more bits.
	f := func(xs []uint64, ys []uint64) bool {
		a, b := NewSketch(16), NewSketch(16)
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		u := UnionEstimate(a, b)
		return u >= a.Estimate() && u >= b.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnionCommutativeIdempotentProperty(t *testing.T) {
	f := func(xs []uint64, ys []uint64) bool {
		a, b := NewSketch(8), NewSketch(8)
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		ab, ba := Union(a, b), Union(b, a)
		if ab.Estimate() != ba.Estimate() {
			return false
		}
		// Idempotence: A ∪ A = A.
		return Union(a, a).Estimate() == a.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIncompatibleSketchesPanic(t *testing.T) {
	a := NewSketch(8)
	b := NewSketch(16)
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("UnionWith f mismatch", func() { a.UnionWith(b) })
	assertPanics("UnionEstimate f mismatch", func() { UnionEstimate(a, b) })
	c := NewSketchSeeded(8, 1)
	d := NewSketchSeeded(8, 2)
	assertPanics("UnionWith seed mismatch", func() { c.UnionWith(d) })
}

func TestCloneIsolation(t *testing.T) {
	a := NewSketch(8)
	a.Add(1)
	b := a.Clone()
	b.Add(999999)
	if a.Estimate() == b.Estimate() && b.Estimate() != a.Estimate() {
		t.Error("unexpected")
	}
	// Mutating the clone must not affect the original's words.
	aBefore := a.Estimate()
	for i := 0; i < 1000; i++ {
		b.Add(uint64(i))
	}
	if a.Estimate() != aBefore {
		t.Error("clone mutation leaked into original")
	}
}

func TestSeededDeterminism(t *testing.T) {
	a := NewSketchSeeded(16, 7)
	b := NewSketchSeeded(16, 7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		v := rng.Uint64()
		a.Add(v)
		b.Add(v)
	}
	if a.Estimate() != b.Estimate() {
		t.Error("same seed, same inputs produced different sketches")
	}
}

func TestErrorDecreasesWithF(t *testing.T) {
	// Average relative error over several runs should drop as f grows.
	n := 2000
	meanErr := func(f int) float64 {
		var total float64
		const runs = 8
		for run := 0; run < runs; run++ {
			s := NewSketchSeeded(f, uint64(run+1))
			for i := 0; i < n; i++ {
				s.Add(uint64(i) + uint64(run)*1e6)
			}
			total += math.Abs(s.Estimate()-float64(n)) / float64(n)
		}
		return total / runs
	}
	e1, e64 := meanErr(1), meanErr(64)
	if e64 >= e1 {
		t.Errorf("error did not decrease with f: f=1 -> %.3f, f=64 -> %.3f", e1, e64)
	}
}

func TestRelativeErrorBound(t *testing.T) {
	if RelativeErrorBound(1) <= RelativeErrorBound(4) {
		t.Error("bound should shrink with f")
	}
	if math.Abs(RelativeErrorBound(4)-0.39) > 1e-9 {
		t.Errorf("bound(4) = %v", RelativeErrorBound(4))
	}
}
