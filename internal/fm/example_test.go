package fm_test

import (
	"fmt"

	"netclus/internal/fm"
)

// ExampleSketch demonstrates distinct counting with union: the estimate of
// a 2000-element set lands within the expected error band, and unioning a
// sketch with itself changes nothing (idempotence).
func ExampleSketch() {
	s := fm.NewSketch(64)
	for i := 0; i < 2000; i++ {
		s.Add(uint64(i))
		s.Add(uint64(i)) // duplicates are free
	}
	est := s.Estimate()
	fmt.Println("within 30%:", est > 1400 && est < 2600)
	fmt.Println("idempotent:", fm.Union(s, s).Estimate() == est)
	// Output:
	// within 30%: true
	// idempotent: true
}
