package fm

import "testing"

func BenchmarkAdd(b *testing.B) {
	s := NewSketch(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}

func BenchmarkUnionEstimate(b *testing.B) {
	x := NewSketch(30)
	y := NewSketch(30)
	for i := 0; i < 10000; i++ {
		x.Add(uint64(i))
		y.Add(uint64(i + 5000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionEstimate(x, y)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := NewSketch(30)
	for i := 0; i < 10000; i++ {
		s.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Estimate()
	}
}
