// Package trajectory defines user trajectories over a road network and the
// raw GPS traces they are map-matched from.
//
// A trajectory T_j = (v_1, …, v_l) is the sequence of road intersections a
// user passed through (§2 of the paper). Alongside the node sequence the
// package maintains cumulative along-path distances, which the TOPS detour
// computation dr(T_j, s) uses as the distance d(v_k, v_l) between trajectory
// nodes: the paper precomputes only site→node distances, so the skipped
// segment is priced at what the user would actually have driven — the
// trajectory itself.
package trajectory

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
)

// ID identifies a trajectory within a Store.
type ID int32

// Trajectory is a map-matched user trajectory: an ordered sequence of road
// network nodes plus cumulative along-path distances in kilometres.
// CumDist[i] is the distance travelled from Nodes[0] to Nodes[i]; it has the
// same length as Nodes with CumDist[0] == 0.
type Trajectory struct {
	Nodes   []roadnet.NodeID
	CumDist []float64
}

// Len returns the number of recorded nodes.
func (t *Trajectory) Len() int { return len(t.Nodes) }

// Length returns the total travelled distance in kilometres.
func (t *Trajectory) Length() float64 {
	if len(t.CumDist) == 0 {
		return 0
	}
	return t.CumDist[len(t.CumDist)-1]
}

// New builds a trajectory from a node sequence, pricing each hop at the
// network edge weight when a direct edge exists and at the shortest-path
// distance otherwise. Consecutive duplicate nodes are collapsed. It returns
// an error if the sequence is empty, references invalid nodes, or contains a
// hop with no connecting path.
func New(g *roadnet.Graph, nodes []roadnet.NodeID) (*Trajectory, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("trajectory: empty node sequence")
	}
	t := &Trajectory{}
	for i, v := range nodes {
		if v < 0 || int(v) >= g.NumNodes() {
			return nil, fmt.Errorf("trajectory: node %d at position %d outside graph", v, i)
		}
		if len(t.Nodes) > 0 && t.Nodes[len(t.Nodes)-1] == v {
			continue // collapse duplicates
		}
		if len(t.Nodes) == 0 {
			t.Nodes = append(t.Nodes, v)
			t.CumDist = append(t.CumDist, 0)
			continue
		}
		prev := t.Nodes[len(t.Nodes)-1]
		w := g.EdgeWeight(prev, v)
		if math.IsInf(w, 1) {
			_, w = roadnet.ShortestPath(g, prev, v)
			if math.IsInf(w, 1) {
				return nil, fmt.Errorf("trajectory: no path %d -> %d at position %d", prev, v, i)
			}
		}
		t.Nodes = append(t.Nodes, v)
		t.CumDist = append(t.CumDist, t.CumDist[len(t.CumDist)-1]+w)
	}
	return t, nil
}

// FromPath builds a trajectory from a node path that is known to follow
// graph edges (e.g. output of ShortestPath). It panics on broken paths in
// order to surface generator bugs immediately.
func FromPath(g *roadnet.Graph, path []roadnet.NodeID) *Trajectory {
	t, err := New(g, path)
	if err != nil {
		panic(err)
	}
	return t
}

// SubDist returns the along-trajectory distance from node index i to node
// index j (i <= j).
func (t *Trajectory) SubDist(i, j int) float64 {
	return t.CumDist[j] - t.CumDist[i]
}

// Validate checks internal invariants: matching lengths, monotone cumulative
// distances, no consecutive duplicates.
func (t *Trajectory) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("trajectory: empty")
	}
	if len(t.Nodes) != len(t.CumDist) {
		return fmt.Errorf("trajectory: nodes/cumdist length mismatch %d vs %d", len(t.Nodes), len(t.CumDist))
	}
	if t.CumDist[0] != 0 {
		return fmt.Errorf("trajectory: CumDist[0] = %v", t.CumDist[0])
	}
	for i := 1; i < len(t.CumDist); i++ {
		if t.CumDist[i] < t.CumDist[i-1] {
			return fmt.Errorf("trajectory: CumDist decreases at %d", i)
		}
		if t.Nodes[i] == t.Nodes[i-1] {
			return fmt.Errorf("trajectory: duplicate node at %d", i)
		}
	}
	return nil
}

// GPSPoint is a single raw observation of a moving user.
type GPSPoint struct {
	Pos  geo.Point
	Time float64 // seconds since trace start
}

// GPSTrace is a raw (pre-map-matching) GPS trace.
type GPSTrace struct {
	Points []GPSPoint
}

// Store is an indexed collection of trajectories, the T of the paper.
type Store struct {
	trajs []*Trajectory
}

// NewStore returns an empty store with capacity hint n.
func NewStore(n int) *Store { return &Store{trajs: make([]*Trajectory, 0, n)} }

// Add appends t and returns its id.
func (s *Store) Add(t *Trajectory) ID {
	s.trajs = append(s.trajs, t)
	return ID(len(s.trajs) - 1)
}

// Len returns m = |T|.
func (s *Store) Len() int { return len(s.trajs) }

// Get returns the trajectory with the given id.
func (s *Store) Get(id ID) *Trajectory { return s.trajs[id] }

// ForEach invokes fn for every trajectory in id order.
func (s *Store) ForEach(fn func(id ID, t *Trajectory)) {
	for i, t := range s.trajs {
		fn(ID(i), t)
	}
}

// Stats summarizes a store for experiment reporting.
type Stats struct {
	Count       int
	TotalNodes  int
	MeanNodes   float64
	MeanLength  float64 // km
	MaxLength   float64
	MinLength   float64
	MedianNodes int
}

// ComputeStats scans the store once and returns summary statistics.
func (s *Store) ComputeStats() Stats {
	st := Stats{Count: len(s.trajs), MinLength: math.Inf(1)}
	if st.Count == 0 {
		st.MinLength = 0
		return st
	}
	nodeCounts := make([]int, 0, len(s.trajs))
	var totalLen float64
	for _, t := range s.trajs {
		st.TotalNodes += t.Len()
		nodeCounts = append(nodeCounts, t.Len())
		l := t.Length()
		totalLen += l
		if l > st.MaxLength {
			st.MaxLength = l
		}
		if l < st.MinLength {
			st.MinLength = l
		}
	}
	st.MeanNodes = float64(st.TotalNodes) / float64(st.Count)
	st.MeanLength = totalLen / float64(st.Count)
	sort.Ints(nodeCounts)
	st.MedianNodes = nodeCounts[len(nodeCounts)/2]
	return st
}

// LengthClass partitions trajectories by travelled length, mirroring the
// length-class experiment (Fig. 12 of the paper).
type LengthClass struct {
	MinKm, MaxKm float64
	IDs          []ID
}

// ClassifyByLength buckets trajectory ids into the given [min,max) km
// classes. Trajectories outside every class are dropped.
func (s *Store) ClassifyByLength(bounds [][2]float64) []LengthClass {
	classes := make([]LengthClass, len(bounds))
	for i, b := range bounds {
		classes[i] = LengthClass{MinKm: b[0], MaxKm: b[1]}
	}
	for i, t := range s.trajs {
		l := t.Length()
		for ci := range classes {
			if l >= classes[ci].MinKm && l < classes[ci].MaxKm {
				classes[ci].IDs = append(classes[ci].IDs, ID(i))
				break
			}
		}
	}
	return classes
}

// Clone returns an independent store holding the same trajectories in the
// same id order. The *Trajectory values are shared (they are immutable once
// built); only the index is copied, so later Adds to either store do not
// affect the other. The sharded engine clones the store per shard so every
// shard assigns identical ids to dynamically added trajectories.
func (s *Store) Clone() *Store {
	out := NewStore(len(s.trajs))
	out.trajs = append(out.trajs, s.trajs...)
	return out
}

// Sample returns a new store holding the trajectories with the given ids.
func (s *Store) Sample(ids []ID) *Store {
	out := NewStore(len(ids))
	for _, id := range ids {
		out.Add(s.trajs[id])
	}
	return out
}

// Binary serialization: magic, count, then per trajectory node count and
// node ids; cumulative distances are rebuilt at load time from the graph.

const storeMagic uint32 = 0x4e435431 // "NCT1"

// WriteTo serializes the store.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := put(storeMagic); err != nil {
		return n, err
	}
	if err := put(uint32(len(s.trajs))); err != nil {
		return n, err
	}
	for _, t := range s.trajs {
		if err := put(uint32(len(t.Nodes))); err != nil {
			return n, err
		}
		for i, v := range t.Nodes {
			if err := put(uint32(v)); err != nil {
				return n, err
			}
			if err := put(t.CumDist[i]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadStore deserializes a store written by WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var magic, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("trajectory: reading magic: %w", err)
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("trajectory: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trajectory: reading count: %w", err)
	}
	const maxReasonable = 1 << 28
	if count > maxReasonable {
		return nil, fmt.Errorf("trajectory: implausible count %d", count)
	}
	s := NewStore(int(count))
	for i := uint32(0); i < count; i++ {
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("trajectory %d: %w", i, err)
		}
		if l == 0 || l > maxReasonable {
			return nil, fmt.Errorf("trajectory %d: implausible length %d", i, l)
		}
		t := &Trajectory{
			Nodes:   make([]roadnet.NodeID, l),
			CumDist: make([]float64, l),
		}
		for j := uint32(0); j < l; j++ {
			var v uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, fmt.Errorf("trajectory %d node %d: %w", i, j, err)
			}
			t.Nodes[j] = roadnet.NodeID(v)
			if err := binary.Read(br, binary.LittleEndian, &t.CumDist[j]); err != nil {
				return nil, fmt.Errorf("trajectory %d node %d: %w", i, j, err)
			}
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("trajectory %d: %w", i, err)
		}
		s.Add(t)
	}
	return s, nil
}
