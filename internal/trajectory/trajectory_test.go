package trajectory

import (
	"bytes"
	"math"
	"testing"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
)

// lineGraph builds 0 -1- 1 -1- 2 -1- 3 -1- 4 (bidirectional unit edges).
func lineGraph(t *testing.T, n int) *roadnet.Graph {
	t.Helper()
	g := roadnet.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: float64(i)})
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddBidirectional(roadnet.NodeID(i), roadnet.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewBasic(t *testing.T) {
	g := lineGraph(t, 5)
	tr, err := New(g, []roadnet.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Length() != 3 {
		t.Errorf("Length = %v", tr.Length())
	}
	if tr.SubDist(1, 3) != 2 {
		t.Errorf("SubDist(1,3) = %v", tr.SubDist(1, 3))
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewCollapsesDuplicates(t *testing.T) {
	g := lineGraph(t, 4)
	tr, err := New(g, []roadnet.NodeID{0, 0, 1, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if tr.Length() != 2 {
		t.Errorf("Length = %v, want 2", tr.Length())
	}
}

func TestNewGapFilledByShortestPath(t *testing.T) {
	g := lineGraph(t, 6)
	// Hop 0 -> 3 has no direct edge; distance must be shortest path = 3.
	tr, err := New(g, []roadnet.NodeID{0, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Length() != 5 {
		t.Errorf("Length = %v, want 5", tr.Length())
	}
}

func TestNewErrors(t *testing.T) {
	g := lineGraph(t, 3)
	if _, err := New(g, nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := New(g, []roadnet.NodeID{0, 99}); err == nil {
		t.Error("invalid node accepted")
	}
	// Disconnected hop.
	g2 := roadnet.New(2)
	g2.AddNode(geo.Point{})
	g2.AddNode(geo.Point{X: 1})
	if _, err := New(g2, []roadnet.NodeID{0, 1}); err == nil {
		t.Error("disconnected hop accepted")
	}
}

func TestSingleNodeTrajectory(t *testing.T) {
	// Static users are trajectories with a single location (§1 of paper).
	g := lineGraph(t, 3)
	tr, err := New(g, []roadnet.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Length() != 0 {
		t.Errorf("single node: len=%d length=%v", tr.Len(), tr.Length())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := lineGraph(t, 4)
	tr, _ := New(g, []roadnet.NodeID{0, 1, 2})
	tr.CumDist[2] = 0.1 // decreasing
	if err := tr.Validate(); err == nil {
		t.Error("decreasing CumDist accepted")
	}
	tr2, _ := New(g, []roadnet.NodeID{0, 1})
	tr2.Nodes = tr2.Nodes[:1]
	if err := tr2.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	tr3 := &Trajectory{}
	if err := tr3.Validate(); err == nil {
		t.Error("empty trajectory accepted")
	}
}

func TestStoreBasics(t *testing.T) {
	g := lineGraph(t, 5)
	s := NewStore(2)
	t1, _ := New(g, []roadnet.NodeID{0, 1, 2})
	t2, _ := New(g, []roadnet.NodeID{2, 3, 4})
	id1 := s.Add(t1)
	id2 := s.Add(t2)
	if s.Len() != 2 || id1 == id2 {
		t.Fatalf("store len=%d ids=%d,%d", s.Len(), id1, id2)
	}
	if s.Get(id1) != t1 || s.Get(id2) != t2 {
		t.Error("Get returned wrong trajectory")
	}
	var visited int
	s.ForEach(func(id ID, tr *Trajectory) { visited++ })
	if visited != 2 {
		t.Errorf("ForEach visited %d", visited)
	}
}

func TestComputeStats(t *testing.T) {
	g := lineGraph(t, 10)
	s := NewStore(3)
	for _, nodes := range [][]roadnet.NodeID{{0, 1}, {0, 1, 2, 3}, {0, 1, 2, 3, 4, 5}} {
		tr, err := New(g, nodes)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(tr)
	}
	st := s.ComputeStats()
	if st.Count != 3 || st.TotalNodes != 12 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanNodes != 4 || st.MedianNodes != 4 {
		t.Errorf("node stats = %+v", st)
	}
	if st.MinLength != 1 || st.MaxLength != 5 || math.Abs(st.MeanLength-3) > 1e-12 {
		t.Errorf("length stats = %+v", st)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := NewStore(0).ComputeStats()
	if st.Count != 0 || st.MinLength != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestClassifyByLength(t *testing.T) {
	g := lineGraph(t, 10)
	s := NewStore(4)
	for _, nodes := range [][]roadnet.NodeID{
		{0, 1},             // 1 km
		{0, 1, 2, 3},       // 3 km
		{0, 1, 2, 3, 4, 5}, // 5 km
		{0, 1, 2},          // 2 km
	} {
		tr, _ := New(g, nodes)
		s.Add(tr)
	}
	classes := s.ClassifyByLength([][2]float64{{0, 2}, {2, 4}, {4, 10}})
	if len(classes[0].IDs) != 1 || len(classes[1].IDs) != 2 || len(classes[2].IDs) != 1 {
		t.Errorf("classes = %+v", classes)
	}
	sampled := s.Sample(classes[1].IDs)
	if sampled.Len() != 2 {
		t.Errorf("sampled len = %d", sampled.Len())
	}
}

func TestStoreSerializationRoundTrip(t *testing.T) {
	g := lineGraph(t, 8)
	s := NewStore(3)
	for _, nodes := range [][]roadnet.NodeID{{0, 1, 2}, {5, 6, 7}, {3}} {
		tr, err := New(g, nodes)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(tr)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", s2.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		a, b := s.Get(ID(i)), s2.Get(ID(i))
		if a.Len() != b.Len() || a.Length() != b.Length() {
			t.Fatalf("trajectory %d mismatch", i)
		}
		for j := range a.Nodes {
			if a.Nodes[j] != b.Nodes[j] || a.CumDist[j] != b.CumDist[j] {
				t.Fatalf("trajectory %d node %d mismatch", i, j)
			}
		}
	}
}

func TestReadStoreRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": {9, 9, 9, 9, 0, 0, 0, 0},
		"truncated": {0x31, 0x54, 0x43, 0x4e, 2, 0, 0, 0},
	} {
		if _, err := ReadStore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
