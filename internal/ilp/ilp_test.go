package ilp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveLPBasic(t *testing.T) {
	// max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4,0) = 12.
	p := &LP{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {1, 3}},
		B: []float64{4, 6},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-12) > 1e-6 {
		t.Fatalf("sol = %+v, want objective 12", sol)
	}
}

func TestSolveLPInteriorOptimum(t *testing.T) {
	// max x + y  s.t. x <= 2, y <= 3 -> (2,3) = 5.
	p := &LP{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}},
		B: []float64{2, 3},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-5) > 1e-6 || math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-3) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	// max x with only y constrained.
	p := &LP{
		C: []float64{1, 0},
		A: [][]float64{{0, 1}},
		B: []float64{1},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 (as -x <= -2).
	p := &LP{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -2},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// max -x s.t. x >= 2 (i.e. -x <= -2), x <= 5 -> x=2, obj=-2.
	p := &LP{
		C: []float64{-1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-2, 5},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective+2) > 1e-6 {
		t.Fatalf("sol = %+v, want x=2 obj=-2", sol)
	}
}

func TestSolveLPValidation(t *testing.T) {
	if _, err := SolveLP(&LP{}); err == nil {
		t.Error("empty LP accepted")
	}
	if _, err := SolveLP(&LP{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := SolveLP(&LP{C: []float64{1}, A: [][]float64{{1}}, B: []float64{math.NaN()}}); err == nil {
		t.Error("NaN rhs accepted")
	}
}

// lpBruteForce approximates the optimum of a 2-3 variable LP over a fine
// grid, as an independent oracle. Only for small bounded instances.
func lpBruteForce(p *LP, hi float64, steps int) float64 {
	n := len(p.C)
	best := math.Inf(-1)
	var rec func(idx int, x []float64)
	rec = func(idx int, x []float64) {
		if idx == n {
			for i, row := range p.A {
				dot := 0.0
				for j := range row {
					dot += row[j] * x[j]
				}
				if dot > p.B[i]+1e-9 {
					return
				}
			}
			obj := 0.0
			for j := range x {
				obj += p.C[j] * x[j]
			}
			if obj > best {
				best = obj
			}
			return
		}
		for s := 0; s <= steps; s++ {
			x[idx] = hi * float64(s) / float64(steps)
			rec(idx+1, x)
		}
	}
	rec(0, make([]float64, n))
	return best
}

func TestSolveLPAgainstGridOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(2)
		m := 2 + rng.Intn(3)
		p := &LP{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := 0; j < n; j++ {
			p.C[j] = rng.Float64() * 3
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				p.A[i][j] = rng.Float64() * 2 // non-negative rows: bounded, feasible at 0
			}
			p.B[i] = 1 + rng.Float64()*3
		}
		// Bound the box so the grid oracle terminates.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 4)
		}
		sol, err := SolveLP(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		oracle := lpBruteForce(p, 4, 40)
		// Grid oracle under-estimates; simplex must be >= oracle and close.
		if sol.Objective < oracle-1e-6 {
			t.Fatalf("trial %d: simplex %v below grid oracle %v", trial, sol.Objective, oracle)
		}
		if sol.Objective > oracle+0.5 {
			t.Fatalf("trial %d: simplex %v far above oracle %v (likely wrong)", trial, sol.Objective, oracle)
		}
	}
}

func TestSolveIPKnapsack(t *testing.T) {
	// 0/1 knapsack: values {6,10,12}, weights {1,2,3}, cap 5 -> take 2+3 = 22.
	p := &IP{
		LP: LP{
			C: []float64{6, 10, 12},
			A: [][]float64{{1, 2, 3}},
			B: []float64{5},
		},
		Binary: []bool{true, true, true},
	}
	sol, exact, err := SolveIP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exact || sol.Status != Optimal {
		t.Fatalf("exact=%v status=%v", exact, sol.Status)
	}
	if math.Abs(sol.Objective-22) > 1e-6 {
		t.Fatalf("objective = %v, want 22", sol.Objective)
	}
	if math.Round(sol.X[0]) != 0 || math.Round(sol.X[1]) != 1 || math.Round(sol.X[2]) != 1 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestSolveIPAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		m := 1 + rng.Intn(3)
		p := &IP{
			LP: LP{
				C: make([]float64, n),
				A: make([][]float64, m),
				B: make([]float64, m),
			},
			Binary: make([]bool, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = rng.Float64() * 5
			p.Binary[j] = true
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				p.A[i][j] = rng.Float64() * 2
			}
			p.B[i] = 1 + rng.Float64()*float64(n)
		}
		sol, exact, err := SolveIP(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !exact {
			t.Fatal("uncapped solve not exact")
		}
		// Enumerate all 2^n assignments.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			feasible := true
			for i := 0; i < m && feasible; i++ {
				dot := 0.0
				for j := 0; j < n; j++ {
					if mask&(1<<j) != 0 {
						dot += p.A[i][j]
					}
				}
				if dot > p.B[i]+1e-9 {
					feasible = false
				}
			}
			if !feasible {
				continue
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					obj += p.C[j]
				}
			}
			if obj > best {
				best = obj
			}
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: ILP %v != enumeration %v", trial, sol.Objective, best)
		}
	}
}

func TestSolveIPNodeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 14
	p := &IP{
		LP:     LP{C: make([]float64, n), A: make([][]float64, 1), B: []float64{4}},
		Binary: make([]bool, n),
	}
	p.A[0] = make([]float64, n)
	for j := 0; j < n; j++ {
		p.C[j] = rng.Float64()
		p.A[0][j] = 0.5 + rng.Float64()
		p.Binary[j] = true
	}
	_, exact, err := SolveIP(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Error("capped solve claimed exactness")
	}
}

func TestSolveIPMixed(t *testing.T) {
	// Mixed IP: binary x0, continuous x1 in [0,1].
	// max 2*x0 + x1 s.t. x0 + x1 <= 1.5 -> x0=1, x1=0.5 -> 2.5.
	p := &IP{
		LP: LP{
			C: []float64{2, 1},
			A: [][]float64{{1, 1}},
			B: []float64{1.5},
		},
		Binary: []bool{true, false},
	}
	sol, exact, err := SolveIP(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exact || math.Abs(sol.Objective-2.5) > 1e-6 {
		t.Fatalf("sol = %+v exact=%v, want 2.5", sol, exact)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
}
