package ilp

import (
	"fmt"
	"math"
)

// IP is a 0/1 integer program: maximize Cᵀx subject to A·x <= B with each
// x_j ∈ {0,1} for j in Binary, and 0 <= x_j <= 1 otherwise (continuous
// variables appear in the TOPS formulation as the utility terms U_j).
type IP struct {
	LP
	// Binary marks the variables constrained to {0,1}.
	Binary []bool
}

// SolveIP solves the 0/1 program with LP-relaxation branch and bound:
// depth-first, branching on the most fractional binary variable, pruning
// nodes whose relaxation bound cannot beat the incumbent. maxNodes <= 0
// means unlimited; when the cap triggers the best incumbent is returned
// with Exact=false semantics signalled through the returned bool.
func SolveIP(p *IP, maxNodes int) (Solution, bool, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, false, err
	}
	n := len(p.C)
	if len(p.Binary) != n {
		return Solution{}, false, fmt.Errorf("ilp: %d binary flags for %d variables", len(p.Binary), n)
	}

	// Upper bounds x_j <= 1 as extra rows (for all variables: binaries
	// need it for the relaxation, continuous TOPS utilities are <= 1 by
	// their own constraints but an explicit bound keeps the LP bounded in
	// general use).
	base := LP{
		C: p.C,
		A: append([][]float64{}, p.A...),
		B: append([]float64{}, p.B...),
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		base.A = append(base.A, row)
		base.B = append(base.B, 1)
	}

	type fix struct {
		variable int
		value    float64
	}
	var (
		best      Solution
		haveBest  bool
		nodes     int
		capped    bool
		integral  = func(v float64) bool { return math.Abs(v-math.Round(v)) < 1e-6 }
		solveNode func(fixes []fix)
	)
	best.Status = Infeasible

	solveNode = func(fixes []fix) {
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			capped = true
			return
		}
		lp := LP{C: base.C, A: base.A, B: base.B}
		// Apply fixes as equality via paired inequalities.
		for _, f := range fixes {
			row := make([]float64, n)
			row[f.variable] = 1
			lp.A = append(lp.A, row)
			lp.B = append(lp.B, f.value) // x <= v
			neg := make([]float64, n)
			neg[f.variable] = -1
			lp.A = append(lp.A, neg)
			lp.B = append(lp.B, -f.value) // x >= v
		}
		sol, err := SolveLP(&lp)
		if err != nil || sol.Status != Optimal {
			return // infeasible or degenerate: prune
		}
		if haveBest && sol.Objective <= best.Objective+1e-9 {
			return // bound prune
		}
		// Most fractional binary variable.
		branch, bestFrac := -1, 0.0
		for j := 0; j < n; j++ {
			if !p.Binary[j] {
				continue
			}
			frac := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if frac > 1e-6 && frac > bestFrac {
				branch, bestFrac = j, frac
			}
		}
		if branch < 0 {
			// All binaries integral: candidate incumbent. Round binaries
			// exactly to kill epsilon noise.
			for j := 0; j < n; j++ {
				if p.Binary[j] && integral(sol.X[j]) {
					sol.X[j] = math.Round(sol.X[j])
				}
			}
			if !haveBest || sol.Objective > best.Objective {
				best = sol
				haveBest = true
			}
			return
		}
		// Branch: try x=1 first (facility-location intuition: the LP wants
		// the site at least fractionally open).
		solveNode(append(fixes, fix{branch, 1}))
		if capped {
			return
		}
		solveNode(append(fixes, fix{branch, 0}))
	}
	solveNode(nil)
	if !haveBest {
		return Solution{Status: Infeasible}, !capped, nil
	}
	return best, !capped, nil
}
