// Package ilp is a small exact solver for linear and integer-linear
// programs, standing in for the commercial ILP solver the paper uses for
// the optimal TOPS algorithm (§3.1, Appendix A.1). It provides a dense
// two-phase primal simplex for LPs and LP-relaxation branch-and-bound for
// 0/1 integer programs.
//
// The implementation targets the sizes the paper actually solves exactly —
// Beijing-Small-scale instances — not industrial LPs: tableaus are dense,
// pivoting uses Bland's rule (guaranteeing termination at some speed cost),
// and all variables are non-negative with explicit upper bounds expressed
// as constraints.
package ilp

import (
	"fmt"
	"math"
)

// LP is the problem: maximize Cᵀx subject to A·x <= B, x >= 0.
type LP struct {
	// C is the objective vector (length = number of variables).
	C []float64
	// A is the constraint matrix, one row per constraint.
	A [][]float64
	// B is the right-hand side (one entry per row; must be finite).
	B []float64
}

// Validate checks dimensions.
func (p *LP) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("ilp: no variables")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("ilp: %d rows vs %d rhs entries", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("ilp: row %d has %d coefficients, want %d", i, len(row), n)
		}
		if math.IsNaN(p.B[i]) || math.IsInf(p.B[i], 0) {
			return fmt.Errorf("ilp: row %d has invalid rhs %v", i, p.B[i])
		}
	}
	return nil
}

// Status reports the outcome of an LP solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective is unbounded above.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is an LP/ILP result.
type Solution struct {
	Status Status
	// X is the variable assignment (valid when Status == Optimal).
	X []float64
	// Objective is Cᵀ·X.
	Objective float64
}

const simplexEps = 1e-9

// SolveLP solves the LP with a two-phase dense simplex.
func SolveLP(p *LP) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.C)
	m := len(p.A)

	// Standard form with slack variables: rows with negative rhs are
	// negated... negating a <= row yields a >= row, which needs a phase-1
	// artificial. We handle both by adding slacks for every row and
	// artificials for rows whose slack basis would be infeasible (b < 0).
	//
	// Tableau layout: columns [x (n)] [slack (m)] [artificial (na)] | rhs.
	negative := 0
	for i := 0; i < m; i++ {
		if p.B[i] < -simplexEps {
			negative++
		}
	}
	na := negative
	cols := n + m + na
	tab := make([][]float64, m+1) // last row = objective
	for i := range tab {
		tab[i] = make([]float64, cols+1)
	}
	basis := make([]int, m)
	artIdx := 0
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.B[i] < -simplexEps {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			tab[i][j] = sign * p.A[i][j]
		}
		tab[i][n+i] = sign // slack
		tab[i][cols] = sign * p.B[i]
		if sign < 0 {
			a := n + m + artIdx
			artIdx++
			tab[i][a] = 1
			basis[i] = a
		} else {
			basis[i] = n + i
		}
	}

	pivot := func(row, col int) {
		pv := tab[row][col]
		for j := 0; j <= cols; j++ {
			tab[row][j] /= pv
		}
		for i := 0; i <= m; i++ {
			if i == row {
				continue
			}
			f := tab[i][col]
			if f == 0 {
				continue
			}
			for j := 0; j <= cols; j++ {
				tab[i][j] -= f * tab[row][j]
			}
		}
		basis[row] = col
	}

	// runSimplex optimizes the current objective row (maximization with
	// reduced costs in tab[m]; entering column has positive coefficient in
	// the cost row written as c_j - z_j). We store the negated objective
	// so the textbook min-ratio rule applies; Bland's rule prevents
	// cycling.
	runSimplex := func(restrict int) Status {
		for iter := 0; iter < 50000; iter++ {
			col := -1
			for j := 0; j < restrict; j++ {
				if tab[m][j] < -simplexEps { // improving column
					col = j
					break // Bland: smallest index
				}
			}
			if col < 0 {
				return Optimal
			}
			row := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if tab[i][col] > simplexEps {
					ratio := tab[i][cols] / tab[i][col]
					if ratio < best-simplexEps || (math.Abs(ratio-best) <= simplexEps && (row < 0 || basis[i] < basis[row])) {
						best = ratio
						row = i
					}
				}
			}
			if row < 0 {
				return Unbounded
			}
			pivot(row, col)
		}
		return Optimal // iteration safety valve; eps-degenerate cycling
	}

	if na > 0 {
		// Phase 1: minimize sum of artificials == maximize -(sum).
		for j := 0; j <= cols; j++ {
			tab[m][j] = 0
		}
		for j := n + m; j < cols; j++ {
			tab[m][j] = 1
		}
		// Price out basic artificials.
		for i := 0; i < m; i++ {
			if basis[i] >= n+m {
				for j := 0; j <= cols; j++ {
					tab[m][j] -= tab[i][j]
				}
			}
		}
		if st := runSimplex(cols); st == Unbounded {
			return Solution{Status: Infeasible}, nil
		}
		if -tab[m][cols] > 1e-7 { // artificial sum positive: infeasible
			return Solution{Status: Infeasible}, nil
		}
		// Drive any remaining basic artificials out of the basis.
		for i := 0; i < m; i++ {
			if basis[i] >= n+m && tab[i][cols] < simplexEps {
				for j := 0; j < n+m; j++ {
					if math.Abs(tab[i][j]) > simplexEps {
						pivot(i, j)
						break
					}
				}
			}
		}
	}

	// Phase 2 objective: maximize C·x → cost row = -C priced out over the
	// current basis.
	for j := 0; j <= cols; j++ {
		tab[m][j] = 0
	}
	for j := 0; j < n; j++ {
		tab[m][j] = -p.C[j]
	}
	// Price out the basic columns so their reduced costs are zero.
	for i := 0; i < m; i++ {
		if b := basis[i]; b < n && p.C[b] != 0 {
			coef := tab[m][b]
			if coef != 0 {
				for j := 0; j <= cols; j++ {
					tab[m][j] -= coef * tab[i][j]
				}
			}
		}
	}
	// Artificials must not re-enter.
	if st := runSimplex(n + m); st == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = tab[i][cols]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		if x[j] < 0 && x[j] > -1e-7 {
			x[j] = 0
		}
		obj += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}
