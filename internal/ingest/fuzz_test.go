package ingest

import (
	"testing"
)

// FuzzIngestDecode hammers the per-line decoder with adversarial NDJSON.
// The property is total safety: decodeLine never panics, and every
// accepted line yields finite, non-empty points within the cap.
func FuzzIngestDecode(f *testing.F) {
	f.Add([]byte(`{"id":"a","points":[{"x":1,"y":2,"t":3}]}`))
	f.Add([]byte(`{"points":[{"lat":39.9,"lon":116.4}]}`))
	f.Add([]byte(`{"points":[]}`))
	f.Add([]byte(`{"points":[{"x":1}]}`))
	f.Add([]byte(`{"points":[{"x":1,"y":2,"lat":3,"lon":4}]}`))
	f.Add([]byte(`{"points":[{"x":1e999,"y":0}]}`))
	f.Add([]byte(`{"points":[{"lat":91,"lon":0}]}`))
	f.Add([]byte(`{"points":[{"x":1,"y":2}]}{"points":[]}`)) // trailing garbage
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"unknown":true,"points":[{"x":1,"y":2}]}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"points":null}`))
	f.Add([]byte(`{"points":[{"t":5}]}`))

	opts := Options{MaxPointsPerTrace: 32}.withDefaults()
	f.Fuzz(func(t *testing.T, line []byte) {
		dec := decodeLine(line, opts)
		if dec.code != "" {
			if dec.err == "" {
				t.Fatalf("rejection %q without detail", dec.code)
			}
			return
		}
		if len(dec.trace.Points) == 0 {
			t.Fatal("accepted line decoded to zero points")
		}
		if len(dec.trace.Points) > opts.MaxPointsPerTrace {
			t.Fatalf("accepted line exceeds point cap: %d", len(dec.trace.Points))
		}
		if dec.points != len(dec.trace.Points) {
			t.Fatalf("point accounting mismatch: %d vs %d", dec.points, len(dec.trace.Points))
		}
		for i, p := range dec.trace.Points {
			if !finite(p.Pos.X) || !finite(p.Pos.Y) || !finite(p.Time) {
				t.Fatalf("accepted line has non-finite point %d: %+v", i, p)
			}
		}
	})
}
