package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/gen"
	"netclus/internal/mapmatch"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

func testCity(t testing.TB) *gen.City {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 500, SpanKm: 10, Jitter: 0.2, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func buildEngine(t testing.TB, city *gen.City) *engine.Engine {
	t.Helper()
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 20, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 60, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.Build(inst, core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// genTraces emits n GPS traces from fresh trajectories over the city.
func genTraces(t testing.TB, city *gen.City, n int, seed int64) []trajectory.GPSTrace {
	t.Helper()
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]trajectory.GPSTrace, 0, n)
	for i := 0; i < store.Len(); i++ {
		traces = append(traces, gen.EmitGPS(city.Graph, store.Get(trajectory.ID(i)),
			gen.GPSConfig{SampleEveryKm: 0.15, NoiseSigmaKm: 0.01, Seed: seed + int64(i)}))
	}
	return traces
}

// ndjsonPlanar renders traces in the planar x/y wire form.
func ndjsonPlanar(traces []trajectory.GPSTrace) string {
	var sb strings.Builder
	for i, tr := range traces {
		sb.WriteString(fmt.Sprintf(`{"id":"t%d","points":[`, i))
		for j, p := range tr.Points {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(fmt.Sprintf(`{"x":%g,"y":%g,"t":%g}`, p.Pos.X, p.Pos.Y, p.Time))
		}
		sb.WriteString("]}\n")
	}
	return sb.String()
}

// memSink records batches and assigns sequential IDs.
type memSink struct {
	batches [][]*trajectory.Trajectory
	next    trajectory.ID
	fail    error
}

func (s *memSink) AddTrajectories(_ context.Context, trs []*trajectory.Trajectory) ([]trajectory.ID, error) {
	if s.fail != nil {
		return nil, s.fail
	}
	ids := make([]trajectory.ID, len(trs))
	for i := range trs {
		ids[i] = s.next
		s.next++
	}
	s.batches = append(s.batches, trs)
	return ids, nil
}

func runIngest(t *testing.T, in *Ingestor, sink Sink, feed string) []Verdict {
	t.Helper()
	var got []Verdict
	err := in.Run(context.Background(), strings.NewReader(feed), sink, func(v Verdict) error {
		got = append(got, v)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return got
}

// TestIngestVerdictsInOrder streams a mixed feed — valid traces
// interleaved with every rejection class — and checks verdict order,
// codes, echoes, and counters.
func TestIngestVerdictsInOrder(t *testing.T) {
	city := testCity(t)
	in := New(city.Graph, Options{Workers: 4, MaxBatch: 3})
	traces := genTraces(t, city, 2, 77)

	var feed strings.Builder
	feed.WriteString(ndjsonPlanar(traces[:1]))                                                // line 1: ok
	feed.WriteString("{not json}\n")                                                          // line 2: bad_json
	feed.WriteString(`{"id":"e","points":[]}` + "\n")                                         // line 3: empty_trace
	feed.WriteString("\n")                                                                    // blank: skipped, no verdict
	feed.WriteString(`{"points":[{"x":1}]}` + "\n")                                           // line 5: bad_point (missing y)
	feed.WriteString(`{"points":[{"x":1,"y":2,"lat":3,"lon":4}]}` + "\n")                     // line 6: bad_point (mixed)
	feed.WriteString(strings.Replace(ndjsonPlanar(traces[1:2]), `"id":"t0"`, `"id":"t1"`, 1)) // line 7: ok

	sink := &memSink{}
	got := runIngest(t, in, sink, feed.String())

	wantCodes := map[int]string{1: "", 2: CodeBadJSON, 3: CodeEmptyTrace, 5: CodeBadPoint, 6: CodeBadPoint, 7: ""}
	if len(got) != len(wantCodes) {
		t.Fatalf("got %d verdicts, want %d: %+v", len(got), len(wantCodes), got)
	}
	prevLine := 0
	for _, v := range got {
		if v.Line <= prevLine {
			t.Fatalf("verdicts out of order: %+v", got)
		}
		prevLine = v.Line
		want, okLine := wantCodes[v.Line]
		if !okLine {
			t.Fatalf("unexpected verdict line %d", v.Line)
		}
		if v.Code != want {
			t.Errorf("line %d: code %q, want %q (%s)", v.Line, v.Code, want, v.Err)
		}
		if want == "" && v.TrajectoryID == nil {
			t.Errorf("line %d: matched line missing trajectory_id", v.Line)
		}
		if want != "" && v.TrajectoryID != nil {
			t.Errorf("line %d: rejected line carries trajectory_id", v.Line)
		}
	}
	if got[0].ID != "t0" || got[len(got)-1].ID != "t1" {
		t.Errorf("client id echo lost: %+v", got)
	}

	st := in.Stats()
	if st.TracesIn != 6 || st.Matched != 2 || st.Rejected != 4 {
		t.Errorf("stats = %+v, want 6 in / 2 matched / 4 rejected", st)
	}
	if st.Points == 0 || st.Batches == 0 {
		t.Errorf("stats missing point/batch accounting: %+v", st)
	}
}

// TestIngestBatchBoundaries pins the deterministic windowing: MaxBatch
// lines per AddTrajectories mutation, remainder flushed at EOF.
func TestIngestBatchBoundaries(t *testing.T) {
	city := testCity(t)
	in := New(city.Graph, Options{Workers: 2, MaxBatch: 2})
	traces := genTraces(t, city, 5, 91)
	sink := &memSink{}
	runIngest(t, in, sink, ndjsonPlanar(traces))
	var sizes []int
	for _, b := range sink.batches {
		sizes = append(sizes, len(b))
	}
	if want := []int{2, 2, 1}; !reflect.DeepEqual(sizes, want) {
		t.Fatalf("batch sizes = %v, want %v", sizes, want)
	}
	if st := in.Stats(); st.Batches != 3 {
		t.Fatalf("batches counter = %d, want 3", st.Batches)
	}
}

// TestIngestLatLonProjection checks the geodetic wire form: the same
// trace sent as lat/lon (inverse-projected around the origin) must match
// to the identical node walk as its planar twin.
func TestIngestLatLonProjection(t *testing.T) {
	city := testCity(t)
	const oLat, oLon = 39.9, 116.4
	in := New(city.Graph, Options{Workers: 2, OriginLat: oLat, OriginLon: oLon})
	traces := genTraces(t, city, 3, 55)

	// Inverse of geo.ProjectLatLon's equirectangular projection.
	const deg = math.Pi / 180
	const earthRadiusKm = 6371.0088
	var feed strings.Builder
	for i, tr := range traces {
		feed.WriteString(fmt.Sprintf(`{"id":"g%d","points":[`, i))
		for j, p := range tr.Points {
			if j > 0 {
				feed.WriteByte(',')
			}
			latDeg := oLat + p.Pos.Y/(earthRadiusKm*deg)
			lonDeg := oLon + p.Pos.X/(earthRadiusKm*deg*math.Cos(oLat*deg))
			feed.WriteString(fmt.Sprintf(`{"lat":%.12f,"lon":%.12f,"t":%g}`, latDeg, lonDeg, p.Time))
		}
		feed.WriteString("]}\n")
	}

	geoSink := &memSink{}
	runIngest(t, in, geoSink, feed.String())
	planarSink := &memSink{}
	in2 := New(city.Graph, Options{Workers: 2})
	runIngest(t, in2, planarSink, ndjsonPlanar(traces))

	if len(geoSink.batches) != len(planarSink.batches) {
		t.Fatalf("batch count differs: %d vs %d", len(geoSink.batches), len(planarSink.batches))
	}
	for bi := range geoSink.batches {
		if len(geoSink.batches[bi]) != len(planarSink.batches[bi]) {
			t.Fatalf("batch %d size differs", bi)
		}
		for ti := range geoSink.batches[bi] {
			g, p := geoSink.batches[bi][ti], planarSink.batches[bi][ti]
			if !reflect.DeepEqual(g.Nodes, p.Nodes) {
				t.Errorf("batch %d trace %d: lat/lon walk %v != planar walk %v", bi, ti, g.Nodes, p.Nodes)
			}
		}
	}
}

// TestIngestApplyFailure checks that an engine rejection turns the
// window's matched lines into apply_failed verdicts and stops the stream.
func TestIngestApplyFailure(t *testing.T) {
	city := testCity(t)
	in := New(city.Graph, Options{Workers: 2})
	traces := genTraces(t, city, 2, 13)
	sink := &memSink{fail: fmt.Errorf("log wedged")}
	var got []Verdict
	err := in.Run(context.Background(), strings.NewReader(ndjsonPlanar(traces)), sink, func(v Verdict) error {
		got = append(got, v)
		return nil
	})
	if err == nil {
		t.Fatal("Run must surface the apply failure")
	}
	if len(got) != 2 {
		t.Fatalf("got %d verdicts, want 2 (affected lines still reported)", len(got))
	}
	for _, v := range got {
		if v.Code != CodeApplyFailed {
			t.Errorf("line %d: code %q, want %q", v.Line, v.Code, CodeApplyFailed)
		}
	}
}

// TestIngestCancelled checks that a cancelled context stops the stream.
func TestIngestCancelled(t *testing.T) {
	city := testCity(t)
	in := New(city.Graph, Options{Workers: 2})
	traces := genTraces(t, city, 2, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := in.Run(ctx, strings.NewReader(ndjsonPlanar(traces)), &memSink{}, func(Verdict) error { return nil })
	if err != context.Canceled {
		t.Fatalf("Run on cancelled context: got %v, want context.Canceled", err)
	}
}

// TestIngestLineTooLong checks the oversized-line verdict and stream stop.
func TestIngestLineTooLong(t *testing.T) {
	city := testCity(t)
	in := New(city.Graph, Options{Workers: 1, MaxLineBytes: 256})
	big := `{"points":[` + strings.Repeat(`{"x":1,"y":1},`, 100) + `{"x":1,"y":1}]}` + "\n"
	var got []Verdict
	err := in.Run(context.Background(), strings.NewReader(big), &memSink{}, func(v Verdict) error {
		got = append(got, v)
		return nil
	})
	if err == nil {
		t.Fatal("Run must fail on an oversized line")
	}
	if len(got) != 1 || got[0].Code != CodeLineTooLong {
		t.Fatalf("verdicts = %+v, want one %s", got, CodeLineTooLong)
	}
}

// TestIngestDifferential is the core bit-identical check: streaming a
// generated feed through Run with an engine-backed sink must leave the
// engine in exactly the state produced by matching the same traces
// directly and applying them with the same window grouping — identical
// Stats (LSN accounting included) and identical index snapshot bytes.
func TestIngestDifferential(t *testing.T) {
	city := testCity(t)
	const maxBatch = 4
	traces := genTraces(t, city, 10, 201)
	feed := ndjsonPlanar(traces)

	// Streamed side.
	streamed := buildEngine(t, city)
	in := New(city.Graph, Options{Workers: 4, MaxBatch: maxBatch})
	sink := SinkFunc(func(_ context.Context, trs []*trajectory.Trajectory) ([]trajectory.ID, error) {
		return streamed.AddTrajectories(trs)
	})
	runIngest(t, in, sink, feed)

	// Direct side: same matcher config, same windows, direct applies.
	direct := buildEngine(t, city)
	m := mapmatch.NewMatcher(city.Graph, mapmatch.Config{})
	var window []*trajectory.Trajectory
	applied := 0
	flush := func() {
		if len(window) == 0 {
			return
		}
		if _, err := direct.AddTrajectories(window); err != nil {
			t.Fatal(err)
		}
		window = nil
	}
	for i, trc := range traces {
		tr, err := m.Match(trc)
		if err != nil {
			t.Fatalf("direct match %d: %v", i, err)
		}
		window = append(window, tr)
		applied++
		if applied%maxBatch == 0 {
			flush()
		}
	}
	flush()

	if a, b := streamed.LSN(), direct.LSN(); a != b {
		t.Fatalf("LSN diverged: streamed %d vs direct %d", a, b)
	}
	sa, _ := json.Marshal(streamed.Stats())
	sb, _ := json.Marshal(direct.Stats())
	// Query counters are zero on both sides; mutation counters must agree.
	if !bytes.Equal(sa, sb) {
		t.Fatalf("Stats diverged:\nstreamed %s\ndirect   %s", sa, sb)
	}
	var snapA, snapB bytes.Buffer
	if _, err := streamed.Snapshot(&snapA); err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Snapshot(&snapB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA.Bytes(), snapB.Bytes()) {
		t.Fatalf("index snapshots diverged: %d vs %d bytes", snapA.Len(), snapB.Len())
	}
}
