package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"netclus/internal/geo"
	"netclus/internal/trajectory"
)

// Wire format: one JSON object per NDJSON line.
//
//	{"id":"veh-17","points":[{"x":1.2,"y":3.4,"t":10.0}, …]}
//	{"points":[{"lat":39.91,"lon":116.40,"t":5}, …]}
//
// Each point carries either planar x/y (kilometres, the dataset's native
// frame) or lat/lon degrees projected through geo.ProjectLatLon with the
// configured origin — never both. t (seconds, optional) defaults to the
// point's index. id is an opaque client tag echoed in the verdict.
type wirePoint struct {
	X   *float64 `json:"x,omitempty"`
	Y   *float64 `json:"y,omitempty"`
	Lat *float64 `json:"lat,omitempty"`
	Lon *float64 `json:"lon,omitempty"`
	T   *float64 `json:"t,omitempty"`
}

type wireTrace struct {
	ID     string      `json:"id,omitempty"`
	Points []wirePoint `json:"points"`
}

// decoded is the outcome of decoding one line: either a trace (code
// empty) or a rejection code with detail.
type decoded struct {
	id     string
	trace  trajectory.GPSTrace
	points int
	code   string
	err    string
}

func reject(id, code, format string, args ...any) decoded {
	return decoded{id: id, code: code, err: fmt.Sprintf(format, args...)}
}

// decodeLine parses and validates one NDJSON line. It never returns a
// partially valid trace: one bad point rejects the whole line, keeping
// the accepted/rejected accounting unambiguous.
func decodeLine(raw []byte, opts Options) decoded {
	var wt wireTrace
	if err := strictUnmarshal(raw, &wt); err != nil {
		return reject("", CodeBadJSON, "%v", err)
	}
	if len(wt.Points) == 0 {
		return reject(wt.ID, CodeEmptyTrace, "trace has no points")
	}
	if len(wt.Points) > opts.MaxPointsPerTrace {
		return reject(wt.ID, CodeTooManyPoints, "%d points exceeds cap %d", len(wt.Points), opts.MaxPointsPerTrace)
	}
	pts := make([]trajectory.GPSPoint, 0, len(wt.Points))
	for i, wp := range wt.Points {
		planar := wp.X != nil || wp.Y != nil
		geodetic := wp.Lat != nil || wp.Lon != nil
		var pos geo.Point
		switch {
		case planar && geodetic:
			return reject(wt.ID, CodeBadPoint, "point %d mixes x/y and lat/lon", i)
		case planar:
			if wp.X == nil || wp.Y == nil {
				return reject(wt.ID, CodeBadPoint, "point %d needs both x and y", i)
			}
			if !finite(*wp.X) || !finite(*wp.Y) {
				return reject(wt.ID, CodeBadPoint, "point %d has non-finite x/y", i)
			}
			pos = geo.Point{X: *wp.X, Y: *wp.Y}
		case geodetic:
			if wp.Lat == nil || wp.Lon == nil {
				return reject(wt.ID, CodeBadPoint, "point %d needs both lat and lon", i)
			}
			if !finite(*wp.Lat) || !finite(*wp.Lon) {
				return reject(wt.ID, CodeBadPoint, "point %d has non-finite lat/lon", i)
			}
			if *wp.Lat < -90 || *wp.Lat > 90 || *wp.Lon < -180 || *wp.Lon > 180 {
				return reject(wt.ID, CodeBadPoint, "point %d lat/lon out of range", i)
			}
			pos = geo.ProjectLatLon(*wp.Lat, *wp.Lon, opts.OriginLat, opts.OriginLon)
		default:
			return reject(wt.ID, CodeBadPoint, "point %d has no coordinates", i)
		}
		t := float64(i)
		if wp.T != nil {
			if !finite(*wp.T) {
				return reject(wt.ID, CodeBadPoint, "point %d has non-finite t", i)
			}
			t = *wp.T
		}
		pts = append(pts, trajectory.GPSPoint{Pos: pos, Time: t})
	}
	return decoded{id: wt.ID, trace: trajectory.GPSTrace{Points: pts}, points: len(pts)}
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
