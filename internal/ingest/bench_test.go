package ingest

import (
	"context"
	"strings"
	"testing"

	"netclus/internal/trajectory"
)

// BenchmarkIngest streams a pre-rendered NDJSON feed through the full
// pipeline — decode, pooled map-matching, windowed AddTrajectories — into
// a live engine, and reports traces/s and points/s plus the match/apply
// split (the EXPERIMENTS.md ingest throughput row).
func BenchmarkIngest(b *testing.B) {
	city := testCity(b)
	traces := genTraces(b, city, 64, 407)
	feed := ndjsonPlanar(traces)
	nPoints := 0
	for _, tr := range traces {
		nPoints += len(tr.Points)
	}
	eng := buildEngine(b, city)
	in := New(city.Graph, Options{Workers: 4, MaxBatch: 64})
	sink := SinkFunc(func(_ context.Context, trs []*trajectory.Trajectory) ([]trajectory.ID, error) {
		return eng.AddTrajectories(trs)
	})
	drop := func(Verdict) error { return nil }

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := in.Run(context.Background(), strings.NewReader(feed), sink, drop); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(len(traces)*b.N)/elapsed, "traces/s")
		b.ReportMetric(float64(nPoints*b.N)/elapsed, "points/s")
	}
	st := in.Stats()
	if st.Matched == 0 {
		b.Fatal("benchmark matched zero traces")
	}
	total := float64(st.MatchMillis + st.ApplyMillis)
	if total > 0 {
		b.ReportMetric(float64(st.MatchMillis)/total, "match-frac")
	}
}
