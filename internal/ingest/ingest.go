// Package ingest turns raw GPS streams into §6 trajectory mutations.
//
// The paper's pipeline (Fig. 2) begins with raw traces map-matched onto
// the road network before any TOPS processing. This package is the live
// version of that stage: it decodes an NDJSON stream (one trace or
// trace-fragment per line), fans the CPU-bound map-matching across a
// small worker pool, assembles the matched walks with trajectory.New,
// and applies them in batches through a Sink — the engine's
// AddTrajectories write path, so every ingested trajectory is WAL-logged,
// quorum-ackable, and replicated exactly like a hand-posted update.
//
// Verdicts stream back one per input line, in input order. Batch
// boundaries are deterministic: a window flushes when MaxBatch lines have
// accumulated or the stream ends, never on a timer, so the same feed
// always produces the same sequence of AddTrajectories mutations (the
// ingest differential test depends on this).
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/mapmatch"
	"netclus/internal/obs"
	"netclus/internal/roadnet"
	"netclus/internal/spatial"
	"netclus/internal/trajectory"
)

// Verdict codes, one per way a line can fail. A line with an empty code
// was matched and applied.
const (
	CodeBadJSON       = "bad_json"        // malformed JSON, unknown fields, trailing garbage
	CodeBadPoint      = "bad_point"       // non-finite or incomplete coordinates
	CodeEmptyTrace    = "empty_trace"     // no points
	CodeTooManyPoints = "too_many_points" // over MaxPointsPerTrace
	CodeLineTooLong   = "line_too_long"   // over MaxLineBytes
	CodeNoMatch       = "no_match"        // matcher found no feasible walk
	CodeApplyFailed   = "apply_failed"    // engine rejected the batch
)

// Options tunes the ingestion pipeline.
type Options struct {
	// Workers bounds the matching fan-out. Matching is CPU-bound and
	// embarrassingly parallel per trace; defaults to GOMAXPROCS capped
	// at 8 (the apply path serialises on the engine write lock anyway).
	Workers int
	// MaxBatch is the window size: matched trajectories per
	// AddTrajectories mutation. Smaller windows ack sooner, larger ones
	// amortise the WAL commit. Default 64.
	MaxBatch int
	// MaxPointsPerTrace rejects absurd lines early. Default 16384.
	MaxPointsPerTrace int
	// MaxLineBytes bounds one NDJSON line. Default 1 MiB.
	MaxLineBytes int
	// Match configures the per-worker HMM matchers.
	Match mapmatch.Config
	// OriginLat/OriginLon anchor geo.ProjectLatLon for lines that carry
	// lat/lon instead of planar x/y coordinates.
	OriginLat, OriginLon float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxPointsPerTrace <= 0 {
		o.MaxPointsPerTrace = 1 << 14
	}
	if o.MaxLineBytes <= 0 {
		o.MaxLineBytes = 1 << 20
	}
	return o
}

// Sink receives batches of matched trajectories. Implementations apply
// them through the engine write path (and may hold the ack for quorum).
type Sink interface {
	AddTrajectories(ctx context.Context, trs []*trajectory.Trajectory) ([]trajectory.ID, error)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ctx context.Context, trs []*trajectory.Trajectory) ([]trajectory.ID, error)

// AddTrajectories calls f.
func (f SinkFunc) AddTrajectories(ctx context.Context, trs []*trajectory.Trajectory) ([]trajectory.ID, error) {
	return f(ctx, trs)
}

// Verdict is the per-line outcome streamed back to the client. Exactly
// one of TrajectoryID (success) or Code (failure) is set.
type Verdict struct {
	Line         int            `json:"line"`
	ID           string         `json:"id,omitempty"` // echo of the client's trace tag
	TrajectoryID *trajectory.ID `json:"trajectory_id,omitempty"`
	Code         string         `json:"code,omitempty"`
	Err          string         `json:"error,omitempty"`
}

// Stats is a point-in-time snapshot of the pipeline counters.
type Stats struct {
	TracesIn uint64 `json:"traces_in"`
	Matched  uint64 `json:"matched"`
	Rejected uint64 `json:"rejected"`
	Points   uint64 `json:"points"`
	Batches  uint64 `json:"batches"`
	// MatchMillis is CPU time summed across workers, not wall clock.
	MatchMillis uint64 `json:"match_ms"`
	ApplyMillis uint64 `json:"apply_ms"`
}

// Ingestor owns the matcher pool and counters for one serving process.
// It is safe for concurrent Run calls: matchers are checked in and out of
// the pool, and counters are atomic.
type Ingestor struct {
	opts Options
	g    *roadnet.Graph
	pool chan *mapmatch.Matcher

	tracesIn, matched, rejected atomic.Uint64
	points, batches             atomic.Uint64
	matchNanos, applyNanos      atomic.Uint64
}

// New builds an ingestor over g. The spatial grid is built once and
// shared read-only by all workers; each worker owns a matcher (mutable
// Dijkstra scratch).
func New(g *roadnet.Graph, opts Options) *Ingestor {
	opts = opts.withDefaults()
	grid := spatial.NewGrid(g, 0)
	pool := make(chan *mapmatch.Matcher, opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		pool <- mapmatch.NewMatcherWithIndex(g, grid, opts.Match)
	}
	return &Ingestor{opts: opts, g: g, pool: pool}
}

// Options reports the resolved (defaulted) options.
func (in *Ingestor) Options() Options { return in.opts }

// Stats snapshots the counters.
func (in *Ingestor) Stats() Stats {
	return Stats{
		TracesIn:    in.tracesIn.Load(),
		Matched:     in.matched.Load(),
		Rejected:    in.rejected.Load(),
		Points:      in.points.Load(),
		Batches:     in.batches.Load(),
		MatchMillis: in.matchNanos.Load() / 1e6,
		ApplyMillis: in.applyNanos.Load() / 1e6,
	}
}

// item carries one input line through the window.
type item struct {
	line  int
	id    string
	trace trajectory.GPSTrace
	tr    *trajectory.Trajectory
	tid   trajectory.ID
	ok    bool
	code  string
	err   string
}

// Run decodes the NDJSON stream from r, matches and applies it through
// sink, and calls emit once per non-blank input line, in input order.
// It returns a non-nil error only for stream-level failures (unreadable
// body, cancelled context, emit failure, or an engine apply error after
// the affected lines were reported); per-line problems become verdicts.
func (in *Ingestor) Run(ctx context.Context, r io.Reader, sink Sink, emit func(Verdict) error) error {
	sc := bufio.NewScanner(r)
	initial := 64 * 1024
	if initial > in.opts.MaxLineBytes {
		initial = in.opts.MaxLineBytes
	}
	sc.Buffer(make([]byte, initial), in.opts.MaxLineBytes)
	window := make([]item, 0, in.opts.MaxBatch)
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		line++
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		in.tracesIn.Add(1)
		it := item{line: line}
		tDec := time.Now()
		dec := decodeLine(raw, in.opts)
		obs.IngestDecode.RecordSince(tDec)
		it.id, it.trace, it.code, it.err = dec.id, dec.trace, dec.code, dec.err
		in.points.Add(uint64(dec.points))
		window = append(window, it)
		if len(window) >= in.opts.MaxBatch {
			if err := in.flush(ctx, window, sink, emit); err != nil {
				return err
			}
			window = window[:0]
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The oversized line is unrecoverable mid-stream (the scanner
			// cannot resync), so report it and stop.
			in.tracesIn.Add(1)
			in.rejected.Add(1)
			_ = emit(Verdict{Line: line + 1, Code: CodeLineTooLong,
				Err: fmt.Sprintf("line exceeds %d bytes", in.opts.MaxLineBytes)})
		}
		return fmt.Errorf("ingest: read stream: %w", err)
	}
	if len(window) > 0 {
		return in.flush(ctx, window, sink, emit)
	}
	return nil
}

// flush matches the window across the worker pool, applies the matched
// trajectories as one AddTrajectories mutation, and emits verdicts in
// line order.
func (in *Ingestor) flush(ctx context.Context, window []item, sink Sink, emit func(Verdict) error) error {
	// Fan the decodable lines across the pool. Workers claim indices via
	// the shared cursor; items that already failed decode pass through.
	var cursor atomic.Int64
	workers := in.opts.Workers
	if workers > len(window) {
		workers = len(window)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := <-in.pool
			defer func() { in.pool <- m }()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(window) {
					return
				}
				it := &window[i]
				if it.code != "" {
					continue
				}
				t0 := time.Now()
				tr, err := m.MatchCtx(ctx, it.trace)
				in.matchNanos.Add(uint64(time.Since(t0)))
				obs.IngestMatch.RecordSince(t0)
				if err != nil {
					it.code, it.err = CodeNoMatch, err.Error()
					continue
				}
				it.tr = tr
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	var trs []*trajectory.Trajectory
	var matchedIdx []int
	for i := range window {
		if window[i].tr != nil {
			trs = append(trs, window[i].tr)
			matchedIdx = append(matchedIdx, i)
		}
	}
	var applyErr error
	if len(trs) > 0 {
		t0 := time.Now()
		ids, err := sink.AddTrajectories(ctx, trs)
		in.applyNanos.Add(uint64(time.Since(t0)))
		obs.IngestApply.RecordSince(t0)
		if err != nil {
			applyErr = err
			for _, i := range matchedIdx {
				window[i].code, window[i].err = CodeApplyFailed, err.Error()
			}
		} else {
			in.batches.Add(1)
			for k, i := range matchedIdx {
				window[i].ok, window[i].tid = true, ids[k]
			}
		}
	}

	for i := range window {
		it := &window[i]
		v := Verdict{Line: it.line, ID: it.id}
		if it.ok {
			in.matched.Add(1)
			tid := it.tid
			v.TrajectoryID = &tid
		} else {
			in.rejected.Add(1)
			v.Code, v.Err = it.code, it.err
		}
		if err := emit(v); err != nil {
			return fmt.Errorf("ingest: emit verdict: %w", err)
		}
	}
	if applyErr != nil {
		// The engine refused the mutation (read-only flip, log failure…):
		// later windows would fail identically, so stop the stream.
		return fmt.Errorf("ingest: apply batch: %w", applyErr)
	}
	return nil
}
