package roadnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"netclus/internal/geo"
)

// Binary serialization of road networks.
//
// Format (little endian):
//
//	magic   uint32  'N''C''G''1'
//	nodes   uint32
//	edges   uint32
//	nodes × { x float64, y float64 }
//	edges × { from uint32, to uint32, w float64 }
//
// The format is deliberately simple and versioned through the magic so that
// datasets written by cmd/topsgen remain loadable.

const graphMagic uint32 = 0x4e434731 // "NCG1"

// WriteTo serializes g. It returns the byte count written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := put(graphMagic); err != nil {
		return n, err
	}
	if err := put(uint32(g.NumNodes())); err != nil {
		return n, err
	}
	if err := put(uint32(g.NumEdges())); err != nil {
		return n, err
	}
	for _, p := range g.pts {
		if err := put(p.X); err != nil {
			return n, err
		}
		if err := put(p.Y); err != nil {
			return n, err
		}
	}
	for from := range g.out {
		for _, e := range g.out[from] {
			if err := put(uint32(from)); err != nil {
				return n, err
			}
			if err := put(uint32(e.to)); err != nil {
				return n, err
			}
			if err := put(e.w); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadGraph deserializes a graph written by WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, nNodes, nEdges uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("roadnet: reading magic: %w", err)
	}
	if magic != graphMagic {
		return nil, fmt.Errorf("roadnet: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &nNodes); err != nil {
		return nil, fmt.Errorf("roadnet: reading node count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &nEdges); err != nil {
		return nil, fmt.Errorf("roadnet: reading edge count: %w", err)
	}
	const maxReasonable = 1 << 28
	if nNodes > maxReasonable || nEdges > maxReasonable {
		return nil, fmt.Errorf("roadnet: implausible sizes nodes=%d edges=%d", nNodes, nEdges)
	}
	g := New(int(nNodes))
	for i := uint32(0); i < nNodes; i++ {
		var x, y float64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, fmt.Errorf("roadnet: node %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &y); err != nil {
			return nil, fmt.Errorf("roadnet: node %d: %w", i, err)
		}
		if math.IsNaN(x) || math.IsNaN(y) {
			return nil, fmt.Errorf("roadnet: node %d has NaN coordinate", i)
		}
		g.AddNode(geo.Point{X: x, Y: y})
	}
	for i := uint32(0); i < nEdges; i++ {
		var from, to uint32
		var w float64
		if err := binary.Read(br, binary.LittleEndian, &from); err != nil {
			return nil, fmt.Errorf("roadnet: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &to); err != nil {
			return nil, fmt.Errorf("roadnet: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &w); err != nil {
			return nil, fmt.Errorf("roadnet: edge %d: %w", i, err)
		}
		if err := g.AddEdge(NodeID(from), NodeID(to), w); err != nil {
			return nil, fmt.Errorf("roadnet: edge %d: %w", i, err)
		}
	}
	return g, nil
}
