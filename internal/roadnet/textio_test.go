package roadnet

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestReadTextBasic(t *testing.T) {
	input := `
# a tiny network
N 0 0.0 0.0
N 1 1.0 0.0
N 2 1.0 1.0
E 0 1 1.2
B 1 2 1.0
`
	g, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if w := g.EdgeWeight(0, 1); w != 1.2 {
		t.Errorf("w(0,1) = %v", w)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("B record did not create both directions")
	}
	if g.HasEdge(1, 0) {
		t.Error("E record created reverse direction")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"sparse ids":      "N 5 0 0\n",
		"unknown record":  "X 1 2 3\n",
		"short N":         "N 0 1\n",
		"bad coordinate":  "N 0 zero 0\n",
		"edge before":     "E 0 1 1\n",
		"bad weight":      "N 0 0 0\nN 1 1 0\nE 0 1 heavy\n",
		"negative weight": "N 0 0 0\nN 1 1 0\nE 0 1 -2\n",
		"self loop":       "N 0 0 0\nE 0 0 1\n",
	}
	for name, input := range cases {
		if _, err := ReadText(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 60, 150)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch after round trip")
	}
	for src := NodeID(0); src < 10; src++ {
		a := Dijkstra(g, src, Forward)
		b := Dijkstra(h, src, Forward)
		for v := range a {
			if math.Abs(a[v]-b[v]) > 1e-9 && !(math.IsInf(a[v], 1) && math.IsInf(b[v], 1)) {
				t.Fatalf("distance mismatch src=%d v=%d: %v vs %v", src, v, a[v], b[v])
			}
		}
	}
}
