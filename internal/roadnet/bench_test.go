package roadnet

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return euclidGraph(rng, n)
}

func BenchmarkDijkstraFull(b *testing.B) {
	g := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, NodeID(i%g.NumNodes()), Forward)
	}
}

func BenchmarkDijkstraBounded(b *testing.B) {
	g := benchGraph(b, 5000)
	s := NewScratch(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Bounded(g, NodeID(i%g.NumNodes()), Forward, 2.0)
	}
}

func BenchmarkBoundedRoundTrips(b *testing.B) {
	g := benchGraph(b, 5000)
	s := NewScratch(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BoundedRoundTripsFrom(g, s, NodeID(i%g.NumNodes()), 2.0)
	}
}

func BenchmarkAStar(b *testing.B) {
	g := benchGraph(b, 5000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		dst := NodeID(rng.Intn(g.NumNodes()))
		AStar(g, src, dst)
	}
}

func BenchmarkSCC(b *testing.B) {
	g := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StronglyConnectedComponents(g)
	}
}
