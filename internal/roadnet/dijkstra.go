package roadnet

import "math"

// Direction selects which adjacency a shortest-path search follows.
type Direction int

const (
	// Forward computes d(src, v) for all v.
	Forward Direction = iota
	// Reverse computes d(v, src) for all v by following in-edges.
	Reverse
)

// Unreachable is the distance reported for nodes a search did not reach.
func Unreachable() float64 { return math.Inf(1) }

// pqItem is an entry of the binary heap used by Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

// distHeap is a minimal binary min-heap over pqItem specialized to avoid
// the interface indirection of container/heap in the hottest loop of the
// system (millions of Dijkstra runs during index construction).
type distHeap struct {
	items []pqItem
}

func (h *distHeap) push(it pqItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *distHeap) pop() pqItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].dist < h.items[small].dist {
			small = l
		}
		if r < last && h.items[r].dist < h.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

func (h *distHeap) empty() bool { return len(h.items) == 0 }

// SearchResult holds the outcome of a (possibly bounded) Dijkstra run in a
// sparse form: only reached nodes appear.
type SearchResult struct {
	// Nodes lists the settled nodes in non-decreasing distance order.
	Nodes []NodeID
	// Dist maps each settled node to its distance from (or to) the source.
	Dist map[NodeID]float64
}

// Get returns the distance of v, or +Inf when v was not reached.
func (r *SearchResult) Get(v NodeID) float64 {
	if d, ok := r.Dist[v]; ok {
		return d
	}
	return math.Inf(1)
}

// DijkstraScratch is reusable working memory for repeated full searches over
// the same graph, eliminating allocation in index-construction loops.
type DijkstraScratch struct {
	dist    []float64
	visited []bool
	touched []NodeID
	heap    distHeap
}

// NewScratch sizes scratch space for graph g.
func NewScratch(g *Graph) *DijkstraScratch {
	n := g.NumNodes()
	s := &DijkstraScratch{
		dist:    make([]float64, n),
		visited: make([]bool, n),
	}
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
	}
	return s
}

// grow adapts scratch arrays after graph mutation (e.g. SplitEdge).
func (s *DijkstraScratch) grow(n int) {
	for len(s.dist) < n {
		s.dist = append(s.dist, math.Inf(1))
		s.visited = append(s.visited, false)
	}
}

// reset clears only the entries touched by the previous run.
func (s *DijkstraScratch) reset() {
	for _, v := range s.touched {
		s.dist[v] = math.Inf(1)
		s.visited[v] = false
	}
	s.touched = s.touched[:0]
	s.heap.items = s.heap.items[:0]
}

// Bounded runs Dijkstra from src following dir, stopping once every node
// within radius has been settled. Nodes strictly farther than radius are not
// reported. A negative radius means unbounded. The result shares no state
// with the scratch and remains valid after further searches.
func (s *DijkstraScratch) Bounded(g *Graph, src NodeID, dir Direction, radius float64) SearchResult {
	s.grow(g.NumNodes())
	s.reset()
	res := SearchResult{Dist: make(map[NodeID]float64)}
	if !g.valid(src) {
		return res
	}
	s.dist[src] = 0
	s.touched = append(s.touched, src)
	s.heap.push(pqItem{node: src, dist: 0})
	for !s.heap.empty() {
		it := s.heap.pop()
		v := it.node
		if s.visited[v] {
			continue
		}
		s.visited[v] = true
		res.Nodes = append(res.Nodes, v)
		res.Dist[v] = it.dist
		relax := func(to NodeID, w float64) bool {
			nd := it.dist + w
			if radius >= 0 && nd > radius {
				return true
			}
			if nd < s.dist[to] {
				if math.IsInf(s.dist[to], 1) {
					s.touched = append(s.touched, to)
				}
				s.dist[to] = nd
				s.heap.push(pqItem{node: to, dist: nd})
			}
			return true
		}
		if dir == Forward {
			g.Neighbors(v, relax)
		} else {
			g.InNeighbors(v, relax)
		}
	}
	return res
}

// BoundedDijkstra is a convenience wrapper allocating fresh scratch.
func BoundedDijkstra(g *Graph, src NodeID, dir Direction, radius float64) SearchResult {
	return NewScratch(g).Bounded(g, src, dir, radius)
}

// Dijkstra computes exact distances from src to every reachable node
// (Forward) or from every node to src (Reverse). The returned slice is
// indexed by NodeID with +Inf marking unreachable nodes.
func Dijkstra(g *Graph, src NodeID, dir Direction) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if !g.valid(src) {
		return dist
	}
	visited := make([]bool, n)
	var h distHeap
	dist[src] = 0
	h.push(pqItem{node: src, dist: 0})
	for !h.empty() {
		it := h.pop()
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		relax := func(to NodeID, w float64) bool {
			nd := it.dist + w
			if nd < dist[to] {
				dist[to] = nd
				h.push(pqItem{node: to, dist: nd})
			}
			return true
		}
		if dir == Forward {
			g.Neighbors(it.node, relax)
		} else {
			g.InNeighbors(it.node, relax)
		}
	}
	return dist
}

// ShortestPath returns the node sequence of a shortest path src -> dst and
// its length, or (nil, +Inf) when dst is unreachable.
func ShortestPath(g *Graph, src, dst NodeID) ([]NodeID, float64) {
	n := g.NumNodes()
	if !g.valid(src) || !g.valid(dst) {
		return nil, math.Inf(1)
	}
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	visited := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = InvalidNode
	}
	var h distHeap
	dist[src] = 0
	h.push(pqItem{node: src, dist: 0})
	for !h.empty() {
		it := h.pop()
		if visited[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		visited[it.node] = true
		g.Neighbors(it.node, func(to NodeID, w float64) bool {
			nd := it.dist + w
			if nd < dist[to] {
				dist[to] = nd
				prev[to] = it.node
				h.push(pqItem{node: to, dist: nd})
			}
			return true
		})
	}
	if math.IsInf(dist[dst], 1) {
		return nil, math.Inf(1)
	}
	var rev []NodeID
	for v := dst; v != InvalidNode; v = prev[v] {
		rev = append(rev, v)
	}
	path := make([]NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, dist[dst]
}

// RoundTrip returns dr(u,v) = d(u,v) + d(v,u). It is symmetric by
// construction and +Inf when either direction is disconnected.
func RoundTrip(g *Graph, u, v NodeID) float64 {
	fwd := Dijkstra(g, u, Forward)
	if math.IsInf(fwd[v], 1) {
		return math.Inf(1)
	}
	back := Dijkstra(g, v, Forward)
	return fwd[v] + back[u]
}

// RoundTripsFrom returns dr(src, v) for every v, computed with one forward
// and one reverse search from src.
func RoundTripsFrom(g *Graph, src NodeID) []float64 {
	fwd := Dijkstra(g, src, Forward)
	rev := Dijkstra(g, src, Reverse)
	out := make([]float64, len(fwd))
	for i := range fwd {
		out[i] = fwd[i] + rev[i]
	}
	return out
}

// BoundedRoundTripsFrom returns the set of nodes v with dr(src,v) <= 2R in
// sparse form, using two bounded searches of radius 2R. This is the
// dominance relation of the GDSP clustering (Problem 2 in the paper).
func BoundedRoundTripsFrom(g *Graph, scratch *DijkstraScratch, src NodeID, twoR float64) map[NodeID]float64 {
	fwd := scratch.Bounded(g, src, Forward, twoR)
	rev := scratch.Bounded(g, src, Reverse, twoR)
	out := make(map[NodeID]float64, len(fwd.Nodes)/2+1)
	for v, df := range fwd.Dist {
		if db, ok := rev.Dist[v]; ok {
			if rt := df + db; rt <= twoR {
				out[v] = rt
			}
		}
	}
	return out
}
