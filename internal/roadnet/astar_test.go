package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"netclus/internal/geo"
)

// euclidGraph builds a random planar-ish graph whose edge weights are the
// Euclidean distance times a factor >= 1, so the A* heuristic is admissible.
func euclidGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10})
	}
	for i := 0; i < n; i++ {
		u := NodeID(i)
		v := NodeID((i + 1) % n)
		_ = g.AddEdgeEuclid(u, v, 1.0+rng.Float64())
		_ = g.AddEdgeEuclid(v, u, 1.0+rng.Float64())
	}
	for i := 0; i < n*3; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u != v {
			_ = g.AddEdgeEuclid(u, v, 1.0+rng.Float64())
		}
	}
	return g
}

func TestAStarMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := euclidGraph(rng, 30+rng.Intn(50))
		for q := 0; q < 20; q++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			dst := NodeID(rng.Intn(g.NumNodes()))
			_, want := ShortestPath(g, src, dst)
			path, got := AStar(g, src, dst)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: AStar(%d,%d) = %v, Dijkstra %v", trial, src, dst, got, want)
			}
			// Path must be a valid edge walk whose weights sum to got.
			if len(path) > 0 {
				var sum float64
				for i := 0; i+1 < len(path); i++ {
					w := g.EdgeWeight(path[i], path[i+1])
					if math.IsInf(w, 1) {
						t.Fatalf("path uses missing edge %d->%d", path[i], path[i+1])
					}
					sum += w
				}
				if math.Abs(sum-got) > 1e-9 {
					t.Fatalf("path length %v != reported %v", sum, got)
				}
			}
		}
	}
}

func TestAStarTrivialAndUnreachable(t *testing.T) {
	g := New(3)
	a := g.AddNode(geo.Point{})
	b := g.AddNode(geo.Point{X: 1})
	c := g.AddNode(geo.Point{X: 2})
	_ = g.AddEdge(a, b, 1)
	if p, d := AStar(g, a, a); d != 0 || len(p) != 1 {
		t.Errorf("self path = %v, %v", p, d)
	}
	if p, d := AStar(g, a, c); p != nil || !math.IsInf(d, 1) {
		t.Errorf("unreachable = %v, %v", p, d)
	}
	if _, d := AStar(g, -1, b); !math.IsInf(d, 1) {
		t.Error("invalid src accepted")
	}
}
