package roadnet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"netclus/internal/geo"
)

func TestGraphSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 50, 120)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", h.NumNodes(), h.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Point(NodeID(v)) != h.Point(NodeID(v)) {
			t.Fatalf("node %d point mismatch", v)
		}
	}
	// Distances must be identical (edge multiset preserved up to order).
	for src := NodeID(0); src < 10; src++ {
		a := Dijkstra(g, src, Forward)
		b := Dijkstra(h, src, Forward)
		for v := range a {
			if math.Abs(a[v]-b[v]) > 1e-12 {
				t.Fatalf("distance mismatch after round trip: src=%d v=%d", src, v)
			}
		}
	}
}

func TestReadGraphRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated": {0x31, 0x47, 0x43, 0x4e, 5, 0, 0, 0, 9, 0, 0, 0},
	}
	for name, data := range cases {
		if _, err := ReadGraph(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadGraphRejectsImplausibleSizes(t *testing.T) {
	var buf bytes.Buffer
	g := New(1)
	g.AddNode(geo.Point{})
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the node count to an absurd value.
	data[4], data[5], data[6], data[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadGraph(bytes.NewReader(data)); err == nil {
		t.Error("implausible node count accepted")
	}
}
