package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netclus/internal/geo"
)

// Plain-text road-network ingestion. Real deployments start from exported
// OpenStreetMap extracts; this loader accepts the common minimal edge-list
// shape those exports reduce to:
//
//	# comment lines and blank lines are ignored
//	N <id> <x-km> <y-km>          node declaration (ids dense from 0)
//	E <from> <to> <weight-km>     directed edge
//	B <a> <b> <weight-km>         two-way street (both directions)
//
// Nodes must be declared before edges reference them. The companion
// WriteText emits the same format, so networks round-trip through version
// control and external tooling.

// ReadText parses the text edge-list format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	g := New(0)
	nextNode := NodeID(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "N":
			if len(fields) != 4 {
				return nil, fmt.Errorf("roadnet: line %d: N wants 3 arguments", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || NodeID(id) != nextNode {
				return nil, fmt.Errorf("roadnet: line %d: node ids must be dense from 0 (got %q, want %d)", lineNo, fields[1], nextNode)
			}
			x, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad x: %v", lineNo, err)
			}
			y, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad y: %v", lineNo, err)
			}
			g.AddNode(geo.Point{X: x, Y: y})
			nextNode++
		case "E", "B":
			if len(fields) != 4 {
				return nil, fmt.Errorf("roadnet: line %d: %s wants 3 arguments", lineNo, fields[0])
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad from: %v", lineNo, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad to: %v", lineNo, err)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad weight: %v", lineNo, err)
			}
			if fields[0] == "E" {
				err = g.AddEdge(NodeID(u), NodeID(v), w)
			} else {
				err = g.AddBidirectional(NodeID(u), NodeID(v), w)
			}
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("roadnet: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("roadnet: %w", err)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("roadnet: no nodes in input")
	}
	return g, nil
}

// WriteText emits the text edge-list format. Two-way streets are written
// as two E records (the loader's B form is an input convenience only).
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# netclus road network: %d nodes, %d directed edges\n", g.NumNodes(), g.NumEdges())
	for v := 0; v < g.NumNodes(); v++ {
		p := g.Point(NodeID(v))
		fmt.Fprintf(bw, "N %d %g %g\n", v, p.X, p.Y)
	}
	for v := 0; v < g.NumNodes(); v++ {
		g.Neighbors(NodeID(v), func(to NodeID, weight float64) bool {
			fmt.Fprintf(bw, "E %d %d %g\n", v, to, weight)
			return true
		})
	}
	return bw.Flush()
}
