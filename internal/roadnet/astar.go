package roadnet

import "math"

// AStar returns a shortest path src -> dst using the Euclidean straight-line
// distance to dst as the heuristic. The heuristic is admissible whenever
// every edge weight is at least the Euclidean distance between its endpoints
// — which holds for all networks produced by internal/gen (edge weights are
// Euclidean length times a curvature factor >= 1) — so the result is exact
// on those graphs. On graphs violating the assumption the path remains
// valid but may be suboptimal; callers that need exactness on arbitrary
// weights should use ShortestPath.
//
// AStar exists because trajectory generation runs one point-to-point query
// per synthetic trajectory; goal-directed search visits a small corridor of
// the network instead of a full Dijkstra ball.
func AStar(g *Graph, src, dst NodeID) ([]NodeID, float64) {
	if !g.valid(src) || !g.valid(dst) {
		return nil, math.Inf(1)
	}
	if src == dst {
		return []NodeID{src}, 0
	}
	n := g.NumNodes()
	gScore := make(map[NodeID]float64, 256)
	prev := make(map[NodeID]NodeID, 256)
	closed := make(map[NodeID]bool, 256)
	target := g.Point(dst)
	h := func(v NodeID) float64 { return g.Point(v).Dist(target) }

	var open distHeap
	gScore[src] = 0
	open.push(pqItem{node: src, dist: h(src)})
	for !open.empty() {
		it := open.pop()
		v := it.node
		if closed[v] {
			continue
		}
		if v == dst {
			break
		}
		closed[v] = true
		gv := gScore[v]
		g.Neighbors(v, func(to NodeID, w float64) bool {
			if closed[to] {
				return true
			}
			ng := gv + w
			if old, ok := gScore[to]; !ok || ng < old {
				gScore[to] = ng
				prev[to] = v
				open.push(pqItem{node: to, dist: ng + h(to)})
			}
			return true
		})
	}
	d, ok := gScore[dst]
	if !ok {
		return nil, math.Inf(1)
	}
	var rev []NodeID
	for v := dst; ; {
		rev = append(rev, v)
		if v == src {
			break
		}
		p, ok := prev[v]
		if !ok || len(rev) > n {
			return nil, math.Inf(1) // defensive: broken predecessor chain
		}
		v = p
	}
	path := make([]NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, d
}
