// Package roadnet implements the directed, weighted road-network substrate
// on which the TOPS problem and the NETCLUS index are defined.
//
// The network G = (V, E) models road intersections as nodes and road
// segments as directed edges (one-way streets are single edges, two-way
// streets are edge pairs). Every node carries a planar coordinate in
// kilometres and every edge a positive length in kilometres, so all network
// distances are directly comparable with the coverage threshold τ and the
// cluster radii R used by the index.
//
// The package provides:
//
//   - adjacency-list graph construction and mutation, including the site
//     augmentation of the paper (§2): splitting an edge to host a candidate
//     site located mid-segment so that S ⊆ V always holds;
//   - forward and reverse Dijkstra, both unbounded and bounded by a radius
//     (the workhorse of covering-set computation and GDSP clustering);
//   - round-trip distances dr(u,v) = d(u,v) + d(v,u);
//   - Tarjan strongly-connected components, used to restrict synthetic
//     networks to their largest strongly connected core so that round trips
//     are well defined;
//   - a compact binary serialization.
package roadnet

import (
	"fmt"
	"math"

	"netclus/internal/geo"
)

// NodeID identifies a node (road intersection) within a Graph. IDs are dense
// indices in [0, NumNodes).
type NodeID int32

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// halfEdge is one directed adjacency entry.
type halfEdge struct {
	to NodeID
	w  float64 // length in km, > 0
}

// Graph is a directed weighted road network. The zero value is an empty
// graph ready for use. Graph is not safe for concurrent mutation; concurrent
// reads are safe.
type Graph struct {
	pts  []geo.Point
	out  [][]halfEdge
	in   [][]halfEdge
	nEdg int
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		pts: make([]geo.Point, 0, n),
		out: make([][]halfEdge, 0, n),
		in:  make([][]halfEdge, 0, n),
	}
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.pts) }

// NumEdges returns |E| (directed edges).
func (g *Graph) NumEdges() int { return g.nEdg }

// AddNode appends a node at point p and returns its id.
func (g *Graph) AddNode(p geo.Point) NodeID {
	id := NodeID(len(g.pts))
	g.pts = append(g.pts, p)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// Point returns the planar coordinate of node v.
func (g *Graph) Point(v NodeID) geo.Point { return g.pts[v] }

// valid reports whether v is a node of g.
func (g *Graph) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.pts) }

// AddEdge inserts the directed edge u -> v with weight w kilometres.
// It returns an error for invalid endpoints, self loops, or non-positive
// weights; parallel edges are permitted (the shorter one dominates in
// shortest-path computations).
func (g *Graph) AddEdge(u, v NodeID, w float64) error {
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("roadnet: edge (%d,%d) has endpoint outside [0,%d)", u, v, len(g.pts))
	}
	if u == v {
		return fmt.Errorf("roadnet: self loop on node %d", u)
	}
	if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("roadnet: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	g.out[u] = append(g.out[u], halfEdge{to: v, w: w})
	g.in[v] = append(g.in[v], halfEdge{to: u, w: w})
	g.nEdg++
	return nil
}

// AddBidirectional inserts u -> v and v -> u, both with weight w.
func (g *Graph) AddBidirectional(u, v NodeID, w float64) error {
	if err := g.AddEdge(u, v, w); err != nil {
		return err
	}
	return g.AddEdge(v, u, w)
}

// AddEdgeEuclid inserts a directed edge whose weight is the Euclidean
// distance between the endpoints scaled by factor (>= 1 models curvature of
// the actual road relative to the straight line).
func (g *Graph) AddEdgeEuclid(u, v NodeID, factor float64) error {
	w := g.pts[u].Dist(g.pts[v]) * factor
	if w == 0 {
		w = 1e-6 // coincident nodes: keep a tiny positive weight
	}
	return g.AddEdge(u, v, w)
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Neighbors invokes fn for every outgoing edge (v -> to, w). Iteration stops
// if fn returns false.
func (g *Graph) Neighbors(v NodeID, fn func(to NodeID, w float64) bool) {
	for _, e := range g.out[v] {
		if !fn(e.to, e.w) {
			return
		}
	}
}

// InNeighbors invokes fn for every incoming edge (from -> v, w).
func (g *Graph) InNeighbors(v NodeID, fn func(from NodeID, w float64) bool) {
	for _, e := range g.in[v] {
		if !fn(e.to, e.w) {
			return
		}
	}
}

// EdgeWeight returns the weight of the lightest directed edge u -> v, or
// +Inf when no such edge exists.
func (g *Graph) EdgeWeight(u, v NodeID) float64 {
	best := math.Inf(1)
	for _, e := range g.out[u] {
		if e.to == v && e.w < best {
			best = e.w
		}
	}
	return best
}

// HasEdge reports whether a directed edge u -> v exists.
func (g *Graph) HasEdge(u, v NodeID) bool { return !math.IsInf(g.EdgeWeight(u, v), 1) }

// removeEdge deletes one directed edge u -> v (the lightest if parallel
// edges exist). It reports whether an edge was removed.
func (g *Graph) removeEdge(u, v NodeID) bool {
	idx, best := -1, math.Inf(1)
	for i, e := range g.out[u] {
		if e.to == v && e.w < best {
			idx, best = i, e.w
		}
	}
	if idx < 0 {
		return false
	}
	g.out[u] = append(g.out[u][:idx], g.out[u][idx+1:]...)
	for i, e := range g.in[v] {
		if e.to == u && e.w == best {
			g.in[v] = append(g.in[v][:i], g.in[v][i+1:]...)
			break
		}
	}
	g.nEdg--
	return true
}

// SplitEdge implements the site augmentation of §2 of the paper: a candidate
// site located in the middle of road segment (u,v) becomes a new vertex w.
// The edge u -> v is removed and replaced by u -> w and w -> v with weights
// proportional to t ∈ (0,1); if the reverse edge v -> u also exists it is
// split symmetrically (two-way street). The new node is placed on the
// straight segment between the endpoints.
func (g *Graph) SplitEdge(u, v NodeID, t float64) (NodeID, error) {
	if !g.valid(u) || !g.valid(v) {
		return InvalidNode, fmt.Errorf("roadnet: split (%d,%d): invalid endpoint", u, v)
	}
	if t <= 0 || t >= 1 {
		return InvalidNode, fmt.Errorf("roadnet: split parameter %v outside (0,1)", t)
	}
	w := g.EdgeWeight(u, v)
	if math.IsInf(w, 1) {
		return InvalidNode, fmt.Errorf("roadnet: split (%d,%d): edge not found", u, v)
	}
	mid := g.AddNode(geo.Lerp(g.pts[u], g.pts[v], t))
	g.removeEdge(u, v)
	if err := g.AddEdge(u, mid, w*t); err != nil {
		return InvalidNode, err
	}
	if err := g.AddEdge(mid, v, w*(1-t)); err != nil {
		return InvalidNode, err
	}
	if rw := g.EdgeWeight(v, u); !math.IsInf(rw, 1) {
		g.removeEdge(v, u)
		if err := g.AddEdge(v, mid, rw*(1-t)); err != nil {
			return InvalidNode, err
		}
		if err := g.AddEdge(mid, u, rw*t); err != nil {
			return InvalidNode, err
		}
	}
	return mid, nil
}

// Bounds returns the bounding box of all node coordinates.
func (g *Graph) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for _, p := range g.pts {
		r = r.Extend(p)
	}
	return r
}

// Validate checks structural invariants (mirror consistency of in/out lists
// and the edge count). It is intended for tests and data ingestion, not hot
// paths.
func (g *Graph) Validate() error {
	outCount, inCount := 0, 0
	for v := range g.out {
		outCount += len(g.out[v])
		inCount += len(g.in[v])
		for _, e := range g.out[v] {
			if !g.valid(e.to) {
				return fmt.Errorf("roadnet: node %d has out-edge to invalid node %d", v, e.to)
			}
		}
		for _, e := range g.in[v] {
			if !g.valid(e.to) {
				return fmt.Errorf("roadnet: node %d has in-edge from invalid node %d", v, e.to)
			}
		}
	}
	if outCount != inCount || outCount != g.nEdg {
		return fmt.Errorf("roadnet: edge count mismatch out=%d in=%d counter=%d", outCount, inCount, g.nEdg)
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		pts:  append([]geo.Point(nil), g.pts...),
		out:  make([][]halfEdge, len(g.out)),
		in:   make([][]halfEdge, len(g.in)),
		nEdg: g.nEdg,
	}
	for i := range g.out {
		c.out[i] = append([]halfEdge(nil), g.out[i]...)
		c.in[i] = append([]halfEdge(nil), g.in[i]...)
	}
	return c
}
