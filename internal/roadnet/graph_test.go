package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"netclus/internal/geo"
)

// buildDiamond returns a small directed graph used by several tests:
//
//	0 -> 1 (1)   0 -> 2 (4)
//	1 -> 2 (2)   1 -> 3 (6)
//	2 -> 3 (3)   3 -> 0 (1)
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(geo.Point{X: float64(i), Y: 0})
	}
	edges := []struct {
		u, v NodeID
		w    float64
	}{
		{0, 1, 1}, {0, 2, 4}, {1, 2, 2}, {1, 3, 6}, {2, 3, 3}, {3, 0, 1},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	a := g.AddNode(geo.Point{})
	b := g.AddNode(geo.Point{X: 1})
	if err := g.AddEdge(a, a, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(a, 99, 1); err == nil {
		t.Error("invalid endpoint accepted")
	}
	if err := g.AddEdge(a, b, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := g.AddEdge(a, b, -2); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.AddEdge(a, b, math.NaN()); err == nil {
		t.Error("NaN weight accepted")
	}
	if err := g.AddEdge(a, b, math.Inf(1)); err == nil {
		t.Error("Inf weight accepted")
	}
	if err := g.AddEdge(a, b, 1.5); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := buildDiamond(t)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Errorf("node 0 degrees out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if g.OutDegree(3) != 1 || g.InDegree(3) != 2 {
		t.Errorf("node 3 degrees out=%d in=%d", g.OutDegree(3), g.InDegree(3))
	}
	var seen []NodeID
	g.Neighbors(0, func(to NodeID, w float64) bool {
		seen = append(seen, to)
		return true
	})
	if len(seen) != 2 {
		t.Errorf("Neighbors(0) visited %v", seen)
	}
	// Early stop.
	count := 0
	g.Neighbors(0, func(NodeID, float64) bool { count++; return false })
	if count != 1 {
		t.Errorf("early-stop iteration visited %d", count)
	}
}

func TestEdgeWeightAndHasEdge(t *testing.T) {
	g := buildDiamond(t)
	if w := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("EdgeWeight(0,1) = %v", w)
	}
	if !math.IsInf(g.EdgeWeight(1, 0), 1) {
		t.Error("EdgeWeight for missing edge should be +Inf")
	}
	if !g.HasEdge(2, 3) || g.HasEdge(3, 2) {
		t.Error("HasEdge direction confusion")
	}
	// Parallel edges: lightest wins.
	if err := g.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if w := g.EdgeWeight(0, 1); w != 0.5 {
		t.Errorf("parallel EdgeWeight = %v, want 0.5", w)
	}
}

func TestValidate(t *testing.T) {
	g := buildDiamond(t)
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSplitEdgeDirected(t *testing.T) {
	g := buildDiamond(t)
	nBefore, eBefore := g.NumNodes(), g.NumEdges()
	mid, err := g.SplitEdge(1, 3, 0.25)
	if err != nil {
		t.Fatalf("SplitEdge: %v", err)
	}
	if g.NumNodes() != nBefore+1 {
		t.Errorf("node count %d, want %d", g.NumNodes(), nBefore+1)
	}
	if g.NumEdges() != eBefore+1 { // one edge removed, two added
		t.Errorf("edge count %d, want %d", g.NumEdges(), eBefore+1)
	}
	if g.HasEdge(1, 3) {
		t.Error("split edge should be removed")
	}
	if w := g.EdgeWeight(1, mid); math.Abs(w-1.5) > 1e-12 {
		t.Errorf("w(1,mid) = %v, want 1.5", w)
	}
	if w := g.EdgeWeight(mid, 3); math.Abs(w-4.5) > 1e-12 {
		t.Errorf("w(mid,3) = %v, want 4.5", w)
	}
	// Shortest path length 1->3 must be preserved through the split node.
	d := Dijkstra(g, 1, Forward)
	if math.Abs(d[3]-5) > 1e-12 { // 1->2->3 = 5 still shortest
		t.Errorf("d(1,3) = %v, want 5", d[3])
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate after split: %v", err)
	}
}

func TestSplitEdgeBidirectional(t *testing.T) {
	g := New(2)
	a := g.AddNode(geo.Point{X: 0})
	b := g.AddNode(geo.Point{X: 10})
	if err := g.AddBidirectional(a, b, 10); err != nil {
		t.Fatal(err)
	}
	mid, err := g.SplitEdge(a, b, 0.3)
	if err != nil {
		t.Fatalf("SplitEdge: %v", err)
	}
	for _, c := range []struct {
		u, v NodeID
		w    float64
	}{{a, mid, 3}, {mid, b, 7}, {b, mid, 7}, {mid, a, 3}} {
		if got := g.EdgeWeight(c.u, c.v); math.Abs(got-c.w) > 1e-9 {
			t.Errorf("w(%d,%d) = %v, want %v", c.u, c.v, got, c.w)
		}
	}
	if g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Error("original two-way edge should be gone")
	}
	// Coordinates interpolated.
	if p := g.Point(mid); math.Abs(p.X-3) > 1e-9 {
		t.Errorf("mid point = %v", p)
	}
}

func TestSplitEdgeErrors(t *testing.T) {
	g := buildDiamond(t)
	if _, err := g.SplitEdge(0, 3, 0.5); err == nil {
		t.Error("split of missing edge accepted")
	}
	if _, err := g.SplitEdge(0, 1, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := g.SplitEdge(0, 1, 1); err == nil {
		t.Error("t=1 accepted")
	}
	if _, err := g.SplitEdge(42, 1, 0.5); err == nil {
		t.Error("invalid endpoint accepted")
	}
}

func TestCloneIsolation(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	if err := c.AddEdge(3, 1, 9); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(3, 1) {
		t.Error("mutation of clone leaked into original")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Error("clone edge count wrong")
	}
}

func TestBounds(t *testing.T) {
	g := buildDiamond(t)
	b := g.Bounds()
	if b.Min != (geo.Point{X: 0, Y: 0}) || b.Max != (geo.Point{X: 3, Y: 0}) {
		t.Errorf("Bounds = %+v", b)
	}
}

// randomGraph builds a random strongly-ish connected graph for oracle tests.
func randomGraph(rng *rand.Rand, n int, extraEdges int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10})
	}
	// Ring for strong connectivity.
	for i := 0; i < n; i++ {
		_ = g.AddEdge(NodeID(i), NodeID((i+1)%n), 0.5+rng.Float64()*3)
	}
	for i := 0; i < extraEdges; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u != v {
			_ = g.AddEdge(u, v, 0.5+rng.Float64()*3)
		}
	}
	return g
}

// floydWarshall is the exact all-pairs oracle.
func floydWarshall(g *Graph) [][]float64 {
	n := g.NumNodes()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for u := 0; u < n; u++ {
		g.Neighbors(NodeID(u), func(to NodeID, w float64) bool {
			if w < d[u][to] {
				d[u][to] = w
			}
			return true
		})
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if math.IsInf(d[i][k], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func TestDijkstraAgainstFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		g := randomGraph(rng, n, n*2)
		oracle := floydWarshall(g)
		for src := 0; src < n; src++ {
			fwd := Dijkstra(g, NodeID(src), Forward)
			rev := Dijkstra(g, NodeID(src), Reverse)
			for v := 0; v < n; v++ {
				if math.Abs(fwd[v]-oracle[src][v]) > 1e-9 {
					t.Fatalf("trial %d: d(%d,%d) = %v, oracle %v", trial, src, v, fwd[v], oracle[src][v])
				}
				if math.Abs(rev[v]-oracle[v][src]) > 1e-9 {
					t.Fatalf("trial %d: reverse d(%d,%d) = %v, oracle %v", trial, v, src, rev[v], oracle[v][src])
				}
			}
		}
	}
}

func TestBoundedDijkstraMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(30)
		g := randomGraph(rng, n, n*2)
		full := Dijkstra(g, 0, Forward)
		radius := 1.0 + rng.Float64()*4
		res := BoundedDijkstra(g, 0, Forward, radius)
		for v := 0; v < n; v++ {
			d, ok := res.Dist[NodeID(v)]
			if full[v] <= radius {
				if !ok || math.Abs(d-full[v]) > 1e-9 {
					t.Fatalf("node %d within radius %v missing or wrong: got %v ok=%v want %v", v, radius, d, ok, full[v])
				}
			} else if ok {
				t.Fatalf("node %d beyond radius reported with %v (full %v)", v, d, full[v])
			}
		}
		// Settled order must be non-decreasing.
		for i := 1; i < len(res.Nodes); i++ {
			if res.Dist[res.Nodes[i]] < res.Dist[res.Nodes[i-1]]-1e-12 {
				t.Fatal("settled nodes out of order")
			}
		}
	}
}

func TestScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 80)
	s := NewScratch(g)
	for src := NodeID(0); src < 40; src += 5 {
		want := Dijkstra(g, src, Forward)
		got := s.Bounded(g, src, Forward, -1)
		for v := 0; v < 40; v++ {
			gd := got.Get(NodeID(v))
			if math.IsInf(want[v], 1) != math.IsInf(gd, 1) || (!math.IsInf(gd, 1) && math.Abs(gd-want[v]) > 1e-9) {
				t.Fatalf("scratch reuse src=%d node=%d got %v want %v", src, v, gd, want[v])
			}
		}
	}
}

func TestScratchGrowsAfterSplit(t *testing.T) {
	g := buildDiamond(t)
	s := NewScratch(g)
	_ = s.Bounded(g, 0, Forward, -1)
	if _, err := g.SplitEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	res := s.Bounded(g, 0, Forward, -1)
	if len(res.Dist) != g.NumNodes() {
		t.Errorf("after split reached %d nodes, want %d", len(res.Dist), g.NumNodes())
	}
}

func TestShortestPath(t *testing.T) {
	g := buildDiamond(t)
	path, d := ShortestPath(g, 0, 3)
	if math.Abs(d-6) > 1e-12 {
		t.Errorf("d = %v, want 6", d)
	}
	want := []NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Unreachable destination.
	g2 := New(2)
	a := g2.AddNode(geo.Point{})
	b := g2.AddNode(geo.Point{X: 1})
	if p, d := ShortestPath(g2, a, b); p != nil || !math.IsInf(d, 1) {
		t.Errorf("unreachable: path=%v d=%v", p, d)
	}
	// Trivial path.
	if p, d := ShortestPath(g, 2, 2); d != 0 || len(p) != 1 || p[0] != 2 {
		t.Errorf("self path = %v, %v", p, d)
	}
}

func TestRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	// d(0,3) = 6 via 0-1-2-3; d(3,0) = 1.
	if rt := RoundTrip(g, 0, 3); math.Abs(rt-7) > 1e-12 {
		t.Errorf("RoundTrip(0,3) = %v, want 7", rt)
	}
	if rt := RoundTrip(g, 3, 0); math.Abs(rt-7) > 1e-12 {
		t.Errorf("RoundTrip symmetric = %v, want 7", rt)
	}
	rts := RoundTripsFrom(g, 0)
	if math.Abs(rts[3]-7) > 1e-12 || rts[0] != 0 {
		t.Errorf("RoundTripsFrom = %v", rts)
	}
}

func TestRoundTripSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 15+rng.Intn(15), 30)
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		a, b := RoundTrip(g, u, v), RoundTrip(g, v, u)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("dr(%d,%d)=%v != dr(%d,%d)=%v", u, v, a, v, u, b)
		}
	}
}

func TestBoundedRoundTripsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 30, 60)
	s := NewScratch(g)
	src := NodeID(4)
	twoR := 3.5
	got := BoundedRoundTripsFrom(g, s, src, twoR)
	oracle := RoundTripsFrom(g, src)
	for v := 0; v < g.NumNodes(); v++ {
		rt, ok := got[NodeID(v)]
		if oracle[v] <= twoR {
			if !ok || math.Abs(rt-oracle[v]) > 1e-9 {
				t.Fatalf("node %d: got %v ok=%v want %v", v, rt, ok, oracle[v])
			}
		} else if ok {
			t.Fatalf("node %d beyond 2R included (rt=%v oracle=%v)", v, rt, oracle[v])
		}
	}
}

func TestSCCDiamond(t *testing.T) {
	g := buildDiamond(t) // has cycle 0-1-2-3-0 so fully strongly connected
	comps := StronglyConnectedComponents(g)
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Errorf("comps = %v", comps)
	}
}

func TestSCCTwoComponents(t *testing.T) {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(geo.Point{X: float64(i)})
	}
	// Cycle {0,1,2}; path 2->3->4 (3, 4 are singleton SCCs).
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(2, 0, 1)
	_ = g.AddEdge(2, 3, 1)
	_ = g.AddEdge(3, 4, 1)
	comps := StronglyConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("want 3 SCCs, got %d: %v", len(comps), comps)
	}
	if got := LargestSCC(g); len(got) != 3 {
		t.Errorf("LargestSCC size = %d", len(got))
	}
}

func TestSCCMatchesReachabilityOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(12)
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode(geo.Point{X: rng.Float64()})
		}
		for i := 0; i < n*2; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v {
				_ = g.AddEdge(u, v, 1)
			}
		}
		d := floydWarshall(g)
		same := func(u, v int) bool {
			return !math.IsInf(d[u][v], 1) && !math.IsInf(d[v][u], 1)
		}
		comp := make([]int, n)
		for i := range comp {
			comp[i] = -1
		}
		for ci, c := range StronglyConnectedComponents(g) {
			for _, v := range c {
				comp[v] = ci
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if (comp[u] == comp[v]) != same(u, v) {
					t.Fatalf("trial %d: SCC disagreement at (%d,%d)", trial, u, v)
				}
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildDiamond(t)
	sub, mapping := InducedSubgraph(g, []NodeID{0, 1, 2})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	if mapping[3] != InvalidNode {
		t.Error("dropped node should map to InvalidNode")
	}
	// Edges among {0,1,2}: 0->1, 0->2, 1->2.
	if sub.NumEdges() != 3 {
		t.Errorf("sub edges = %d, want 3", sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRestrictToLargestSCCAllRoundTripsFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := New(30)
	for i := 0; i < 30; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5})
	}
	for i := 0; i < 60; i++ {
		u, v := NodeID(rng.Intn(30)), NodeID(rng.Intn(30))
		if u != v {
			_ = g.AddEdge(u, v, 0.5+rng.Float64())
		}
	}
	core, _ := RestrictToLargestSCC(g)
	if core.NumNodes() == 0 {
		t.Skip("degenerate random graph")
	}
	rts := RoundTripsFrom(core, 0)
	for v, rt := range rts {
		if math.IsInf(rt, 1) {
			t.Fatalf("node %d unreachable in SCC core", v)
		}
	}
}
