package roadnet

// StronglyConnectedComponents returns the SCCs of g as slices of node ids,
// using an iterative Tarjan algorithm (the recursion is made explicit so
// urban-scale graphs cannot overflow the goroutine stack). Components are
// emitted in reverse topological order, which callers are free to ignore.
func StronglyConnectedComponents(g *Graph) [][]NodeID {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int32
		stack   []NodeID // Tarjan stack
		comps   [][]NodeID
	)

	type frame struct {
		v    NodeID
		edge int // next out-edge index to explore
	}
	var call []frame

	for start := NodeID(0); int(start) < n; start++ {
		if index[start] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: start})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.edge < len(g.out[v]) {
				to := g.out[v][f.edge].to
				f.edge++
				if index[to] == unvisited {
					index[to] = counter
					low[to] = counter
					counter++
					stack = append(stack, to)
					onStack[to] = true
					call = append(call, frame{v: to})
				} else if onStack[to] && index[to] < low[v] {
					low[v] = index[to]
				}
				continue
			}
			// All edges of v explored: close the frame.
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// LargestSCC returns the node set of the largest strongly connected
// component of g.
func LargestSCC(g *Graph) []NodeID {
	var best []NodeID
	for _, c := range StronglyConnectedComponents(g) {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}

// InducedSubgraph builds a new graph over the given node subset, keeping
// every edge whose endpoints both survive. It returns the new graph and the
// mapping old id -> new id (InvalidNode for dropped nodes).
func InducedSubgraph(g *Graph, keep []NodeID) (*Graph, []NodeID) {
	mapping := make([]NodeID, g.NumNodes())
	for i := range mapping {
		mapping[i] = InvalidNode
	}
	sub := New(len(keep))
	for _, v := range keep {
		mapping[v] = sub.AddNode(g.Point(v))
	}
	for _, v := range keep {
		g.Neighbors(v, func(to NodeID, w float64) bool {
			if mapping[to] != InvalidNode {
				// Both endpoints kept: re-add edge. Errors are impossible
				// here because the source edge was valid.
				_ = sub.AddEdge(mapping[v], mapping[to], w)
			}
			return true
		})
	}
	return sub, mapping
}

// RestrictToLargestSCC returns the subgraph induced by the largest strongly
// connected component and the old->new node mapping. Synthetic generators
// call this so that round-trip distances are finite everywhere, matching the
// map-matched real networks of the paper.
func RestrictToLargestSCC(g *Graph) (*Graph, []NodeID) {
	return InducedSubgraph(g, LargestSCC(g))
}
