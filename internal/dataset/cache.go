package dataset

import (
	"fmt"
	"os"
	"path/filepath"

	"netclus/internal/core"
	"netclus/internal/tops"
)

// Snapshot caching. Dataset presets are synthesized deterministically from
// (name, scale, seed), so the NETCLUS index over a preset is a pure function
// of the preset config and the build options — exactly the situation where
// a disk cache of binary snapshots turns every process start after the
// first into a warm start. The snapshot's dataset fingerprint protects the
// cache: a stale or foreign file fails verification and is silently rebuilt.

// SnapshotExt is the file extension of cached index snapshots.
const SnapshotExt = ".ncss"

// IndexedDataset couples a dataset preset with its NETCLUS index and the
// provenance of the index (cold build vs warm load).
type IndexedDataset struct {
	*Dataset
	Index *core.Index
	// WarmLoaded reports whether the index came from a snapshot instead of
	// being clustered from scratch.
	WarmLoaded bool
	// SnapshotPath is the cache file consulted (empty when caching is off).
	SnapshotPath string
}

// SnapshotKey names the cache file for one (preset, config, build options)
// combination. Every parameter that changes the built index MUST appear
// here: the load-time fingerprint only covers the dataset (graph, sites,
// trajectories), so for build options this key is the sole guard — a new
// build-affecting option added to core.Options without extending this key
// would silently share cache entries across configs.
func SnapshotKey(name Preset, cfg Config, opts core.Options) string {
	// Options.Workers is deliberately absent: worker count never changes
	// the built index, so all worker settings share one cache entry.
	return fmt.Sprintf("%s-s%g-seed%d-g%g-t%g-%g-fm%v-f%d-fs%d%s",
		name, cfg.Scale, cfg.Seed, opts.Gamma, opts.TauMin, opts.TauMax,
		opts.GDSP.UseFM, opts.GDSP.F, opts.GDSP.Seed, SnapshotExt)
}

// LoadOrBuild is the single load-or-build-and-save primitive behind every
// snapshot cache (CachedBuild, the bench harness's -save/-load flags).
// With read set it first tries the snapshot at path — a missing, corrupt,
// stale, or mismatched file simply falls through to a fresh build. With
// write set the built index is snapshotted back (atomic rename, so
// concurrent processes at worst rebuild redundantly, never read torn
// files). The boolean reports a warm load. On a snapshot-write failure the
// freshly built index is returned TOGETHER WITH the error: callers choose
// whether an unwritable cache is fatal (explicit -save) or not (implicit
// caching).
func LoadOrBuild(path string, inst *tops.Instance, opts core.Options, read, write bool) (*core.Index, bool, error) {
	if read {
		if idx, err := core.ReadIndexFile(path, inst); err == nil {
			return idx, true, nil
		}
	}
	idx, err := core.Build(inst, opts)
	if err != nil {
		return nil, false, err
	}
	if write {
		if err := idx.WriteSnapshotFile(path); err != nil {
			return idx, false, fmt.Errorf("dataset: caching snapshot: %w", err)
		}
	}
	return idx, false, nil
}

// CachedBuild returns the index for inst, serving it from dir's snapshot
// cache when possible and writing the entry back after cold builds. The
// cache is best-effort both ways: a read-only or full volume must not stop
// a process that already holds a perfectly good index, it just stays cold
// next time.
func CachedBuild(dir, key string, inst *tops.Instance, opts core.Options) (*core.Index, bool, error) {
	idx, warm, err := LoadOrBuild(filepath.Join(dir, key), inst, opts, true, true)
	if idx != nil {
		if err != nil {
			// Advisory cache: the build succeeded, so the write error must
			// not fail the caller — but stay diagnosable, or an unwritable
			// CacheDir silently costs a full cold build on every start.
			fmt.Fprintf(os.Stderr, "dataset: snapshot cache disabled this run: %v\n", err)
		}
		return idx, warm, nil
	}
	return nil, false, err
}

// LoadIndexed materializes the preset and its NETCLUS index in one call.
// With cfg.CacheDir set, the index is served from the snapshot cache when a
// valid entry exists and cached after a cold build otherwise; with it empty
// the index is always built fresh.
func LoadIndexed(name Preset, cfg Config, opts core.Options) (*IndexedDataset, error) {
	d, err := Load(name, cfg)
	if err != nil {
		return nil, err
	}
	out := &IndexedDataset{Dataset: d}
	if cfg.CacheDir == "" {
		idx, err := core.Build(d.Instance, opts)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: building index: %w", name, err)
		}
		out.Index = idx
		return out, nil
	}
	key := SnapshotKey(name, cfg, opts)
	out.SnapshotPath = filepath.Join(cfg.CacheDir, key)
	idx, warm, err := CachedBuild(cfg.CacheDir, key, d.Instance, opts)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	out.Index = idx
	out.WarmLoaded = warm
	return out, nil
}
