package dataset

import (
	"testing"

	"netclus/internal/roadnet"
)

func TestLoadAllPresets(t *testing.T) {
	for _, name := range Presets() {
		t.Run(string(name), func(t *testing.T) {
			d, err := Load(name, Config{Scale: 0.01, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if d.Instance.M() == 0 || d.Instance.N() == 0 {
				t.Fatalf("empty dataset: %s", d.Summary())
			}
			if err := d.Instance.G.Validate(); err != nil {
				t.Fatal(err)
			}
			// Strong connectivity inherited from the generator.
			rts := roadnet.RoundTripsFrom(d.Instance.G, 0)
			for v, rt := range rts[:min(50, len(rts))] {
				if rt < 0 {
					t.Fatalf("negative round trip at %d", v)
				}
			}
		})
	}
}

func TestLoadUnknownPreset(t *testing.T) {
	if _, err := Load("nope", Config{}); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestBeijingSmallShape(t *testing.T) {
	d, err := Load(BeijingSmall, Config{Scale: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed 50 candidate sites regardless of scale (Fig. 4 setup).
	if d.Instance.N() != 50 {
		t.Errorf("beijing-small has %d sites, want 50", d.Instance.N())
	}
	if d.Instance.M() != 1000 {
		t.Errorf("beijing-small has %d trajectories, want 1000", d.Instance.M())
	}
}

func TestScaleMonotone(t *testing.T) {
	small, err := Load(Beijing, Config{Scale: 0.005, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Load(Beijing, Config{Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if big.Instance.G.NumNodes() <= small.Instance.G.NumNodes() {
		t.Errorf("nodes did not grow with scale: %d vs %d",
			small.Instance.G.NumNodes(), big.Instance.G.NumNodes())
	}
	if big.Instance.M() <= small.Instance.M() {
		t.Errorf("trajectories did not grow with scale")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := Load(Atlanta, Config{Scale: 0.008, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(Atlanta, Config{Scale: 0.008, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Instance.G.NumNodes() != b.Instance.G.NumNodes() ||
		a.Instance.M() != b.Instance.M() || a.Instance.N() != b.Instance.N() {
		t.Error("same seed produced different datasets")
	}
}

func TestSampleTrajectoryIDs(t *testing.T) {
	d, err := Load(BeijingSmall, Config{Scale: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ids := d.SampleTrajectoryIDs(50)
	if len(ids) != 50 {
		t.Fatalf("sampled %d ids", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ids not strictly increasing")
		}
	}
	// Oversampling returns everything.
	all := d.SampleTrajectoryIDs(d.Instance.M() * 2)
	if len(all) != d.Instance.M() {
		t.Errorf("oversample returned %d ids", len(all))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
