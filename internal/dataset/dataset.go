// Package dataset provides named dataset presets mirroring Table 6 of the
// paper at a configurable scale.
//
// The paper's datasets are the T-Drive Beijing taxi traces (real) and
// MNTG-generated traffic for New York, Atlanta and Bangalore (synthetic).
// Neither is available offline, so every preset here is synthesized by
// internal/gen with the topology class and relative size of its namesake
// (see DESIGN.md §2 for the substitution argument). Scale 1.0 approximates
// the paper's row; the default experiment scale is far smaller so that the
// full suite runs on a laptop.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"netclus/internal/gen"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// Preset names a dataset of Table 6.
type Preset string

const (
	// BeijingSmall is the 1 000-trajectory / 50-site sample used for the
	// comparison against the exact optimum (Fig. 4).
	BeijingSmall Preset = "beijing-small"
	// Beijing is the main dataset: ring-mesh topology, sites = all nodes.
	Beijing Preset = "beijing"
	// Bangalore is the polycentric synthetic city.
	Bangalore Preset = "bangalore"
	// NewYork is the star-topology synthetic city.
	NewYork Preset = "newyork"
	// Atlanta is the grid-mesh synthetic city.
	Atlanta Preset = "atlanta"
)

// Presets lists all known presets.
func Presets() []Preset {
	return []Preset{BeijingSmall, Beijing, Bangalore, NewYork, Atlanta}
}

// Dataset is a fully assembled TOPS problem instance plus its provenance.
type Dataset struct {
	Name     Preset
	City     *gen.City
	Instance *tops.Instance
	// Scale is the fraction of the paper's size this dataset was built at.
	Scale float64
}

// spec captures the paper-scale parameters of one preset.
type spec struct {
	topology  gen.Topology
	nodes     int // paper-scale node count
	trajs     int // paper-scale trajectory count
	sites     int // paper-scale candidate sites; 0 = all nodes
	spanKm    float64
	minNodes  int
	minTrajs  int
	siteFixed bool // sites do not scale (Beijing-Small's fixed 50)
}

var specs = map[Preset]spec{
	BeijingSmall: {topology: gen.RingMesh, nodes: 8000, trajs: 1000, sites: 50, spanKm: 10, minNodes: 400, minTrajs: 120, siteFixed: true},
	Beijing:      {topology: gen.RingMesh, nodes: 269686, trajs: 123179, sites: 0, spanKm: 41, minNodes: 2500, minTrajs: 800},
	Bangalore:    {topology: gen.Polycentric, nodes: 61563, trajs: 9950, sites: 0, spanKm: 28, minNodes: 2000, minTrajs: 500},
	NewYork:      {topology: gen.Star, nodes: 355930, trajs: 9950, sites: 0, spanKm: 40, minNodes: 2000, minTrajs: 500},
	Atlanta:      {topology: gen.GridMesh, nodes: 389680, trajs: 9950, sites: 0, spanKm: 45, minNodes: 2000, minTrajs: 500},
}

// Config controls dataset materialization.
type Config struct {
	// Scale multiplies the paper-scale node and trajectory counts. The
	// geographic span shrinks with sqrt(Scale) so road density stays
	// city-like.
	Scale float64
	// Seed drives all generation.
	Seed int64
	// CacheDir, when non-empty, is where LoadIndexed caches index
	// snapshots so later loads of the same preset warm-start instead of
	// re-clustering. Empty disables caching.
	CacheDir string
}

// Load builds the named preset at the requested scale. Counts are floored
// at small per-preset minima so that tiny scales still produce meaningful
// instances.
func Load(name Preset, cfg Config) (*Dataset, error) {
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown preset %q (have %v)", name, Presets())
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.04
	}
	nodes := maxInt(sp.minNodes, int(float64(sp.nodes)*cfg.Scale))
	trajs := maxInt(sp.minTrajs, int(float64(sp.trajs)*cfg.Scale))
	span := sp.spanKm * math.Sqrt(math.Max(cfg.Scale, float64(nodes)/float64(sp.nodes)))
	if span < 6 {
		span = 6
	}
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: sp.topology, Nodes: nodes, SpanKm: span, Jitter: 0.25,
		OneWayFrac: 0.12, RemoveFrac: 0.05, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: trajs, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	siteCount := 0 // all nodes
	if sp.sites > 0 {
		if sp.siteFixed {
			siteCount = sp.sites
		} else {
			siteCount = maxInt(20, int(float64(sp.sites)*cfg.Scale))
		}
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: siteCount, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	return &Dataset{Name: name, City: city, Instance: inst, Scale: cfg.Scale}, nil
}

// Summary describes the dataset in Table 6 form.
func (d *Dataset) Summary() string {
	return fmt.Sprintf("%s: %d nodes, %d edges, %d trajectories, %d sites (scale %.3f)",
		d.Name, d.Instance.G.NumNodes(), d.Instance.G.NumEdges(),
		d.Instance.M(), d.Instance.N(), d.Scale)
}

// SampleTrajectoryIDs returns n deterministic trajectory ids (evenly
// spaced) for sub-sampling experiments.
func (d *Dataset) SampleTrajectoryIDs(n int) []trajectory.ID {
	m := d.Instance.M()
	if n >= m {
		ids := make([]trajectory.ID, m)
		for i := range ids {
			ids[i] = trajectory.ID(i)
		}
		return ids
	}
	ids := make([]trajectory.ID, 0, n)
	step := float64(m) / float64(n)
	seen := map[trajectory.ID]bool{}
	for i := 0; i < n; i++ {
		id := trajectory.ID(math.Min(float64(m-1), float64(i)*step))
		for seen[id] {
			id = (id + 1) % trajectory.ID(m)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
