package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"netclus/internal/core"
	"netclus/internal/tops"
)

func TestLoadIndexedCachesSnapshots(t *testing.T) {
	cfg := Config{Scale: 0.01, Seed: 7, CacheDir: t.TempDir()}
	opts := core.Options{Gamma: 0.75, TauMin: 0.3, TauMax: 4.8}

	cold, err := LoadIndexed(BeijingSmall, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmLoaded {
		t.Fatal("first load reported warm")
	}
	if _, err := os.Stat(cold.SnapshotPath); err != nil {
		t.Fatalf("cold build did not cache a snapshot: %v", err)
	}

	warm, err := LoadIndexed(BeijingSmall, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmLoaded {
		t.Fatal("second load did not hit the snapshot cache")
	}

	// Warm and cold indices must answer identically.
	pref := tops.Binary(0.8)
	a, err := cold.Index.Query(core.QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.Index.Query(core.QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	if a.EstimatedUtility != b.EstimatedUtility || len(a.Sites) != len(b.Sites) {
		t.Fatalf("warm load answers differently: %v vs %v", a, b)
	}
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("site %d differs between cold and warm index", i)
		}
	}

	// A corrupted cache entry must fall back to a cold rebuild, not fail.
	if err := os.WriteFile(warm.SnapshotPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := LoadIndexed(BeijingSmall, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.WarmLoaded {
		t.Fatal("corrupted snapshot served as warm load")
	}
}

func TestLoadIndexedToleratesUnwritableCache(t *testing.T) {
	// The cache is best-effort: a read-only cache volume must not stop a
	// process that has already built a perfectly good index.
	dir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	if os.Getuid() == 0 {
		t.Skip("root ignores directory write bits; cannot simulate a read-only cache")
	}
	cfg := Config{Scale: 0.01, Seed: 7, CacheDir: dir}
	got, err := LoadIndexed(BeijingSmall, cfg, core.Options{Gamma: 0.75, TauMin: 0.3, TauMax: 4.8})
	if err != nil {
		t.Fatalf("read-only cache dir failed the load: %v", err)
	}
	if got.WarmLoaded || got.Index == nil {
		t.Fatalf("unexpected result from cold build on read-only cache: %+v", got)
	}
}

func TestLoadIndexedCacheKeySeparatesConfigs(t *testing.T) {
	dir := t.TempDir()
	base := Config{Scale: 0.01, Seed: 7, CacheDir: dir}
	if _, err := LoadIndexed(BeijingSmall, base, core.Options{Gamma: 0.75, TauMin: 0.3, TauMax: 4.8}); err != nil {
		t.Fatal(err)
	}
	// A different γ must not collide with the cached entry.
	other, err := LoadIndexed(BeijingSmall, base, core.Options{Gamma: 1.0, TauMin: 0.3, TauMax: 4.8})
	if err != nil {
		t.Fatal(err)
	}
	if other.WarmLoaded {
		t.Fatal("different build options hit the same cache entry")
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*"+SnapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected 2 cache entries, found %d: %v", len(entries), entries)
	}
}
