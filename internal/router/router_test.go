package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/server"
	"netclus/internal/shard"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// buildFixture mirrors the shard package's differential fixture: two calls
// with the same seed yield independent but identical instances — one feeds
// the in-process sharded twin, the others the HTTP members.
func buildFixture(t testing.TB, seed int64) (*tops.Instance, *gen.City) {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 500, SpanKm: 10, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 60, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 120, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	return inst, city
}

var fixtureBuild = core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4}

// memberServer builds shard j of an n-shard topology over inst and serves
// it (round protocol mounted) from an httptest server.
func memberServer(t testing.TB, inst *tops.Instance, j, n int) (*httptest.Server, *shard.Member) {
	t.Helper()
	m, err := shard.BuildMember(inst, j, shard.Options{Shards: n, Partitioner: shard.HashPartitioner, Build: fixtureBuild})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(m, server.Options{BatchWindow: -1, Member: m})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, m
}

func postJSON(t testing.TB, client *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// wireAnswer is the /v1/query response shape under test.
type wireAnswer struct {
	Sites              []int64 `json:"sites"`
	SiteIDs            []int32 `json:"site_ids"`
	EstimatedUtility   float64 `json:"estimated_utility"`
	EstimatedCovered   int     `json:"estimated_covered"`
	InstanceUsed       int     `json:"instance_used"`
	NumRepresentatives int     `json:"num_representatives"`
}

// sameAnswer asserts BIT-exact equality between a router HTTP answer and
// the in-process twin's — Go's JSON float64 encoding round-trips exactly,
// so equality here is equality of the underlying float bits.
func sameAnswer(t *testing.T, label string, got wireAnswer, want *core.QueryResult) {
	t.Helper()
	if got.EstimatedUtility != want.EstimatedUtility {
		t.Fatalf("%s: utility %v != %v (diff %g)", label, got.EstimatedUtility, want.EstimatedUtility, got.EstimatedUtility-want.EstimatedUtility)
	}
	if got.EstimatedCovered != want.EstimatedCovered {
		t.Fatalf("%s: covered %d != %d", label, got.EstimatedCovered, want.EstimatedCovered)
	}
	if got.InstanceUsed != want.InstanceUsed {
		t.Fatalf("%s: instance %d != %d", label, got.InstanceUsed, want.InstanceUsed)
	}
	if got.NumRepresentatives != want.NumRepresentatives {
		t.Fatalf("%s: representatives %d != %d", label, got.NumRepresentatives, want.NumRepresentatives)
	}
	if len(got.Sites) != len(want.Sites) {
		t.Fatalf("%s: %d sites != %d", label, len(got.Sites), len(want.Sites))
	}
	for i := range got.Sites {
		if got.Sites[i] != int64(want.Sites[i]) {
			t.Fatalf("%s: site %d: node %d != %d", label, i, got.Sites[i], want.Sites[i])
		}
		if got.SiteIDs[i] != int32(want.SiteIDs[i]) {
			t.Fatalf("%s: site %d: dense id %d != %d", label, i, got.SiteIDs[i], want.SiteIDs[i])
		}
	}
}

// drawQuery picks a random preference and its wire form plus the
// in-process options for the twin.
func drawQuery(rng *rand.Rand) (string, core.QueryOptions) {
	k := 1 + rng.Intn(12)
	tau := 0.3 + rng.Float64()*6.0
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf(`{"k":%d,"tau":%v}`, k, tau),
			core.QueryOptions{K: k, Pref: tops.Binary(tau)}
	case 1:
		return fmt.Sprintf(`{"k":%d,"tau":%v,"pref":"linear"}`, k, tau),
			core.QueryOptions{K: k, Pref: tops.Linear(tau)}
	case 2:
		return fmt.Sprintf(`{"k":%d,"tau":%v,"pref":"convex"}`, k, tau),
			core.QueryOptions{K: k, Pref: tops.ConvexQuadratic(tau)}
	default:
		lambda := 0.5 + rng.Float64()*1.5
		return fmt.Sprintf(`{"k":%d,"tau":%v,"pref":"exp","lambda":%v}`, k, tau, lambda),
			core.QueryOptions{K: k, Pref: tops.ExpDecay(tau, lambda)}
	}
}

// TestRouterDifferentialOracle is the cross-process gate run in-process:
// an interleaved random workload of queries and §6 mutations through the
// router tier (real HTTP members speaking the round protocol) must answer
// bit-exactly what the in-process sharded engine answers over the same
// history.
func TestRouterDifferentialOracle(t *testing.T) {
	const seed, n = 1201, 3
	twinInst, city := buildFixture(t, seed)
	twin, err := shard.Build(twinInst, shard.Options{Shards: n, Partitioner: shard.HashPartitioner, Build: fixtureBuild})
	if err != nil {
		t.Fatal(err)
	}

	shards := make([][]string, n)
	for j := 0; j < n; j++ {
		memInst, _ := buildFixture(t, seed)
		ts, _ := memberServer(t, memInst, j, n)
		shards[j] = []string{ts.URL}
	}
	r, err := New(Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r)
	defer rts.Close()
	client := rts.Client()

	// Live bookkeeping for drawing valid mutations.
	g := city.Graph
	siteSet := make(map[int64]bool)
	var siteList []int64
	for _, v := range twinInst.Sites {
		siteSet[int64(v)] = true
		siteList = append(siteList, int64(v))
	}
	liveTrajs := make([]int32, twinInst.M())
	for i := range liveTrajs {
		liveTrajs[i] = int32(i)
	}
	extraStore, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 20, Seed: seed + 99})
	if err != nil {
		t.Fatal(err)
	}
	var extras []*trajectory.Trajectory
	extraStore.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) { extras = append(extras, tr) })

	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	mutations, queries := 0, 0
	for round := 0; round < 60; round++ {
		if round > 4 && rng.Float64() < 0.35 {
			mutations++
			switch op := rng.Intn(4); {
			case op == 0: // add_site
				v := int64(rng.Intn(g.NumNodes()))
				for siteSet[v] {
					v = (v + 1) % int64(g.NumNodes())
				}
				status, body := postJSON(t, client, rts.URL+"/v1/update", fmt.Sprintf(`{"op":"add_site","node":%d}`, v))
				if status != http.StatusOK {
					t.Fatalf("round %d add_site(%d): %d %s", round, v, status, body)
				}
				if err := twin.AddSite(roadnet.NodeID(v)); err != nil {
					t.Fatal(err)
				}
				siteSet[v] = true
				siteList = append(siteList, v)
			case op == 1 && len(siteList) > 10: // delete_site
				i := rng.Intn(len(siteList))
				v := siteList[i]
				status, body := postJSON(t, client, rts.URL+"/v1/update", fmt.Sprintf(`{"op":"delete_site","node":%d}`, v))
				if status != http.StatusOK {
					t.Fatalf("round %d delete_site(%d): %d %s", round, v, status, body)
				}
				if err := twin.DeleteSite(roadnet.NodeID(v)); err != nil {
					t.Fatal(err)
				}
				delete(siteSet, v)
				siteList[i] = siteList[len(siteList)-1]
				siteList = siteList[:len(siteList)-1]
			case op == 2 && len(extras) > 0: // add_trajectory
				tr := extras[len(extras)-1]
				extras = extras[:len(extras)-1]
				nodes, _ := json.Marshal(tr.Nodes)
				status, body := postJSON(t, client, rts.URL+"/v1/update", fmt.Sprintf(`{"op":"add_trajectory","nodes":%s}`, nodes))
				if status != http.StatusOK {
					t.Fatalf("round %d add_trajectory: %d %s", round, status, body)
				}
				var ack struct {
					TrajectoryID *int32 `json:"trajectory_id"`
				}
				if err := json.Unmarshal(body, &ack); err != nil || ack.TrajectoryID == nil {
					t.Fatalf("round %d add_trajectory ack: %s (%v)", round, body, err)
				}
				ttr, err := trajectory.New(twin.Graph(), tr.Nodes)
				if err != nil {
					t.Fatal(err)
				}
				tid, err := twin.AddTrajectory(ttr)
				if err != nil {
					t.Fatal(err)
				}
				if int32(tid) != *ack.TrajectoryID {
					t.Fatalf("round %d: router assigned trajectory id %d, twin %d", round, *ack.TrajectoryID, tid)
				}
				liveTrajs = append(liveTrajs, int32(tid))
			case len(liveTrajs) > 5: // delete_trajectory
				i := rng.Intn(len(liveTrajs))
				tid := liveTrajs[i]
				status, body := postJSON(t, client, rts.URL+"/v1/update", fmt.Sprintf(`{"op":"delete_trajectory","id":%d}`, tid))
				if status != http.StatusOK {
					t.Fatalf("round %d delete_trajectory(%d): %d %s", round, tid, status, body)
				}
				if err := twin.DeleteTrajectory(trajectory.ID(tid)); err != nil {
					t.Fatal(err)
				}
				liveTrajs[i] = liveTrajs[len(liveTrajs)-1]
				liveTrajs = liveTrajs[:len(liveTrajs)-1]
			}
			continue
		}
		queries++
		wire, opts := drawQuery(rng)
		status, body := postJSON(t, client, rts.URL+"/v1/query", wire)
		if status != http.StatusOK {
			t.Fatalf("round %d query %s: %d %s", round, wire, status, body)
		}
		var got wireAnswer
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		want, err := twin.Query(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, fmt.Sprintf("round %d (%s)", round, wire), got, want)
		want.Release()
	}
	if mutations < 5 || queries < 20 {
		t.Fatalf("workload drift: %d mutations, %d queries", mutations, queries)
	}
}

// TestRouterFailoverToReplicaMidWorkload pins the read-path failover: a
// shard's primary dies, and the router retries the query against that
// shard's next URL (a replica member) with answers still bit-exact.
func TestRouterFailoverToReplicaMidWorkload(t *testing.T) {
	const seed, n = 1301, 2
	twinInst, _ := buildFixture(t, seed)
	twin, err := shard.Build(twinInst, shard.Options{Shards: n, Partitioner: shard.HashPartitioner, Build: fixtureBuild})
	if err != nil {
		t.Fatal(err)
	}

	shards := make([][]string, n)
	var shard1Primary *httptest.Server
	for j := 0; j < n; j++ {
		memInst, _ := buildFixture(t, seed)
		ts, _ := memberServer(t, memInst, j, n)
		shards[j] = []string{ts.URL}
		if j == 1 {
			shard1Primary = ts
			repInst, _ := buildFixture(t, seed)
			rts, _ := memberServer(t, repInst, j, n)
			shards[j] = append(shards[j], rts.URL)
		}
	}
	r, err := New(Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r)
	defer rts.Close()

	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	check := func(label string) {
		t.Helper()
		wire, opts := drawQuery(rng)
		status, body := postJSON(t, rts.Client(), rts.URL+"/v1/query", wire)
		if status != http.StatusOK {
			t.Fatalf("%s query %s: %d %s", label, wire, status, body)
		}
		var got wireAnswer
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		want, err := twin.Query(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, label+" "+wire, got, want)
		want.Release()
	}
	for i := 0; i < 5; i++ {
		check(fmt.Sprintf("pre-failover %d", i))
	}
	shard1Primary.Close() // shard 1's primary dies mid-workload
	for i := 0; i < 5; i++ {
		check(fmt.Sprintf("post-failover %d", i))
	}

	var stats struct {
		Failovers uint64 `json:"failovers"`
	}
	resp, err := rts.Client().Get(rts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Failovers == 0 {
		t.Fatal("router reported no failovers after its shard-1 primary died")
	}
}

// TestRouterValidation pins the boot and request validation: mixed-up
// shard maps are rejected, fm queries are refused, topology re-points are
// verified against the member's own metadata.
func TestRouterValidation(t *testing.T) {
	const seed, n = 1401, 2
	var urls []string
	for j := 0; j < n; j++ {
		memInst, _ := buildFixture(t, seed)
		ts, _ := memberServer(t, memInst, j, n)
		urls = append(urls, ts.URL)
	}

	// Swapped shard map: member metadata exposes the mismatch at boot.
	if _, err := New(Options{Shards: [][]string{{urls[1]}, {urls[0]}}}); err == nil {
		t.Fatal("router accepted a shard map pointing position 0 at shard 1")
	}
	// Truncated topology: a 2-shard member behind a 1-shard map.
	if _, err := New(Options{Shards: [][]string{{urls[0]}}}); err == nil {
		t.Fatal("router accepted a 1-entry map over a 2-shard topology")
	}

	r, err := New(Options{Shards: [][]string{{urls[0]}, {urls[1]}}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r)
	defer rts.Close()

	status, body := postJSON(t, rts.Client(), rts.URL+"/v1/query", `{"k":3,"tau":1.0,"fm":true}`)
	if status != http.StatusBadRequest {
		t.Fatalf("fm query status %d (%s), want 400", status, body)
	}
	status, _ = postJSON(t, rts.Client(), rts.URL+"/v1/query", `{"k":0,"tau":1.0}`)
	if status != http.StatusBadRequest {
		t.Fatalf("k=0 status %d, want 400", status)
	}
	status, _ = postJSON(t, rts.Client(), rts.URL+"/v1/query", `{"k":3,"tau":1.0,"bogus":1}`)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown field status %d, want 400", status)
	}

	// Re-point validation: shard 0 cannot be re-pointed at a member that
	// serves shard 1.
	status, _ = postJSON(t, rts.Client(), rts.URL+"/v1/topology", fmt.Sprintf(`{"shard":0,"primary":%q}`, urls[1]))
	if status != http.StatusBadRequest {
		t.Fatalf("mismatched re-point status %d, want 400", status)
	}
	// A correct re-point is accepted and reflected in GET /v1/topology.
	status, body = postJSON(t, rts.Client(), rts.URL+"/v1/topology", fmt.Sprintf(`{"shard":1,"primary":%q}`, urls[1]))
	if status != http.StatusOK {
		t.Fatalf("valid re-point status %d: %s", status, body)
	}
	resp, err := rts.Client().Get(rts.URL + "/v1/topology")
	if err != nil {
		t.Fatal(err)
	}
	var topo struct {
		Shards []struct {
			Shard     int    `json:"shard"`
			ActiveURL string `json:"active_url"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(topo.Shards) != 2 || topo.Shards[1].ActiveURL != urls[1] {
		t.Fatalf("topology after re-point: %+v", topo)
	}

	// /v1/ingest is a documented non-feature of the router tier: the
	// stateless router cannot map-match, so it answers 501 with a stable
	// code instead of silently ingesting into one shard.
	status, body = postJSON(t, rts.Client(), rts.URL+"/v1/ingest", `{"points":[{"x":1,"y":2}]}`)
	if status != http.StatusNotImplemented {
		t.Fatalf("router ingest status %d (%s), want 501", status, body)
	}
	var e struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Code != "not_implemented" {
		t.Fatalf("router ingest error body %s (err %v), want code not_implemented", body, err)
	}
}

// TestRouterBatch pins /v1/query/batch: per-item isolation and the same
// bit-exact answers as the in-process twin.
func TestRouterBatch(t *testing.T) {
	const seed, n = 1501, 2
	twinInst, _ := buildFixture(t, seed)
	twin, err := shard.Build(twinInst, shard.Options{Shards: n, Partitioner: shard.HashPartitioner, Build: fixtureBuild})
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]string, n)
	for j := 0; j < n; j++ {
		memInst, _ := buildFixture(t, seed)
		ts, _ := memberServer(t, memInst, j, n)
		shards[j] = []string{ts.URL}
	}
	r, err := New(Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r)
	defer rts.Close()

	status, body := postJSON(t, rts.Client(), rts.URL+"/v1/query/batch",
		`{"queries":[{"k":4,"tau":0.9},{"k":0,"tau":1.0},{"k":6,"tau":2.5,"pref":"linear"}]}`)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var out struct {
		Results []struct {
			Result *wireAnswer `json:"result"`
			Error  string      `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d batch results, want 3", len(out.Results))
	}
	if out.Results[1].Error == "" || out.Results[1].Result != nil {
		t.Fatalf("bad item not isolated: %+v", out.Results[1])
	}
	ctx := context.Background()
	for i, opts := range []core.QueryOptions{
		{K: 4, Pref: tops.Binary(0.9)},
		{},
		{K: 6, Pref: tops.Linear(2.5)},
	} {
		if i == 1 {
			continue
		}
		if out.Results[i].Result == nil {
			t.Fatalf("batch item %d failed: %s", i, out.Results[i].Error)
		}
		want, err := twin.Query(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, fmt.Sprintf("batch item %d", i), *out.Results[i].Result, want)
		want.Release()
	}
}
