package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"netclus/internal/obs"
)

// Error codes mirror the serving tier's envelope so clients see one
// vocabulary regardless of tier; the last two are router-specific.
const (
	codeBadRequest = "bad_request"
	// codeShardUnavailable: a shard had no reachable member within the
	// attempt budget; retryable after failover/promotion.
	codeShardUnavailable = "shard_unavailable"
	// codeNotImplemented: the endpoint exists in the single-process
	// topologies but not behind the router.
	codeNotImplemented = "not_implemented"
	// codeTopologyDiverged: a broadcast mutation applied on some shards
	// and failed on another — the topology needs repair (replay from the
	// failed shard's WAL position) before it is trustworthy.
	codeTopologyDiverged = "topology_diverged"
)

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// TraceID echoes the request's trace id (client-supplied or minted at
	// the router edge) so a failed call joins with router and member logs.
	TraceID string `json:"trace_id,omitempty"`
}

// traceWriter carries the request's trace id to writeError.
type traceWriter struct {
	http.ResponseWriter
	trace string
}

func (w *traceWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func writeError(w http.ResponseWriter, status int, code string, err error) {
	resp := errorResponse{Error: err.Error(), Code: code}
	if tw, ok := w.(*traceWriter); ok {
		resp.TraceID = tw.trace
	}
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// strictUnmarshal matches the serving tier's decode discipline: exactly
// one JSON value, unknown fields rejected.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// routes mounts the router's HTTP surface.
func (r *Router) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", r.methodGate(http.MethodPost, r.handleQuery))
	mux.HandleFunc("/v1/query/batch", r.methodGate(http.MethodPost, r.handleBatch))
	mux.HandleFunc("/v1/update", r.methodGate(http.MethodPost, r.handleUpdate))
	mux.HandleFunc("/v1/ingest", r.methodGate(http.MethodPost, r.handleIngest))
	mux.HandleFunc("/v1/topology", r.handleTopology)
	mux.HandleFunc("/healthz", r.methodGate(http.MethodGet, r.handleHealth))
	mux.HandleFunc("/statsz", r.methodGate(http.MethodGet, r.handleStats))
	mux.HandleFunc("/metrics", r.methodGate(http.MethodGet, r.handleMetrics))
	r.mux = mux
}

// ServeHTTP makes the Router an http.Handler. Every request enters with a
// trace id — the client's when well-formed, a fresh one otherwise — echoed
// on the response, stamped into error envelopes, and forwarded on every
// member call the request fans out to.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	trace := req.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	tw := &traceWriter{ResponseWriter: w, trace: trace}
	tw.Header().Set(obs.TraceHeader, trace)
	req = req.WithContext(obs.WithTrace(req.Context(), trace))
	r.mux.ServeHTTP(tw, req)
}

func (r *Router) methodGate(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, codeBadRequest, fmt.Errorf("%s requires %s", req.URL.Path, method))
			return
		}
		h(w, req)
	}
}

// requestCtx bounds one request end-to-end: the client's timeout_ms when
// given, else one minute (each member call is separately bounded by
// ShardTimeout).
func requestCtx(req *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	t := time.Minute
	if timeoutMs > 0 {
		t = time.Duration(timeoutMs) * time.Millisecond
	}
	return context.WithTimeout(req.Context(), t)
}

// queryError maps a query failure to the wire: terminal member answers
// relay their status and code; an exhausted attempt budget is 503.
func (r *Router) queryError(w http.ResponseWriter, err error) {
	r.errs.Add(1)
	var me *memberError
	if errors.As(err, &me) {
		writeError(w, http.StatusServiceUnavailable, codeShardUnavailable, err)
		return
	}
	var he *httpError
	if errors.As(err, &he) {
		code := he.code
		if code == "" {
			code = codeBadRequest
		}
		writeError(w, he.status, code, err)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "timeout", err)
		return
	}
	writeError(w, http.StatusBadRequest, codeBadRequest, err)
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var q wireQuery
	if err := strictUnmarshal(raw, &q); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	pref, err := q.validate(r.opts.MaxK)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	ctx, cancel := requestCtx(req, q.TimeoutMs)
	defer cancel()
	r.queries.Add(1)
	res, err := r.query(ctx, q, pref)
	if err != nil {
		r.queryError(w, err)
		return
	}
	writeJSON(w, res)
}

// wireBatch mirrors the serving tier's /v1/query/batch body.
type wireBatch struct {
	Queries   []wireQuery `json:"queries"`
	TimeoutMs int64       `json:"timeout_ms,omitempty"`
}

type batchItem struct {
	Result *queryResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// handleBatch answers each query in order (sessions serialize per query;
// the round protocol gains nothing from interleaving whole queries). One
// bad item degrades only its own slot, as in the serving tier.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(req.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var b wireBatch
	if err := strictUnmarshal(raw, &b); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(b.Queries) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(b.Queries) > r.opts.MaxBatch {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(b.Queries), r.opts.MaxBatch))
		return
	}
	if b.TimeoutMs < 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("timeout_ms = %d must be non-negative", b.TimeoutMs))
		return
	}
	ctx, cancel := requestCtx(req, b.TimeoutMs)
	defer cancel()
	r.batches.Add(1)
	out := make([]batchItem, len(b.Queries))
	for i, q := range b.Queries {
		if q.TimeoutMs != 0 {
			out[i].Error = "set timeout_ms on the batch, not its items"
			continue
		}
		pref, err := q.validate(r.opts.MaxK)
		if err != nil {
			out[i].Error = err.Error()
			continue
		}
		res, err := r.query(ctx, q, pref)
		if err != nil {
			out[i].Error = err.Error()
			continue
		}
		out[i].Result = res
	}
	writeJSON(w, struct {
		Results []batchItem `json:"results"`
	}{Results: out})
}

// wireUpdate mirrors the serving tier's /v1/update body; the router
// decodes it only to route, then forwards the re-encoded form.
type wireUpdate struct {
	Op    string  `json:"op"`
	Node  int64   `json:"node,omitempty"`
	Nodes []int64 `json:"nodes,omitempty"`
	ID    int64   `json:"id,omitempty"`
}

// handleUpdate routes one mutation: site ops to the owning shard's
// primary, trajectory ops broadcast to every shard (member 0 first — it
// validates the request before the others commit). The write lock
// serializes against in-flight queries, so a router-routed history has the
// in-process engine's sequential semantics.
// handleIngest: the router deliberately does not serve live GPS
// ingestion. Map-matching needs the road network and its spatial index,
// which the stateless router tier does not load — and shipping raw traces
// to one shard would ingest into that shard only, diverging the
// replicated trajectory store. The supported story is single-process:
// stream to a topsserve primary (engine or in-process sharded topology),
// whose /v1/ingest matches locally and broadcasts the resulting
// AddTrajectories mutations through the usual write path. Behind a
// router, run the matcher client-side (netclus.Matcher) and POST the
// matched walks as add_trajectory updates, which the router broadcasts.
func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	writeError(w, http.StatusNotImplemented, codeNotImplemented,
		fmt.Errorf("the router tier does not map-match: stream raw traces to a single-process topsserve /v1/ingest, or match client-side and broadcast add_trajectory updates via /v1/update"))
}

func (r *Router) handleUpdate(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(req.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var u wireUpdate
	if err := strictUnmarshal(raw, &u); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	ctx, cancel := requestCtx(req, 0)
	defer cancel()
	r.updates.Add(1)

	r.mu.Lock()
	defer r.mu.Unlock()
	switch u.Op {
	case "add_site", "delete_site":
		if u.Node < 0 || u.Node > math.MaxInt32 {
			writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("node %d outside int32 range", u.Node))
			return
		}
		j, err := r.ownerOf(ctx, u.Node)
		if err != nil {
			r.errs.Add(1)
			writeError(w, http.StatusServiceUnavailable, codeShardUnavailable, err)
			return
		}
		status, body, err := r.relay(ctx, j, raw)
		if err != nil {
			r.errs.Add(1)
			writeError(w, http.StatusServiceUnavailable, codeShardUnavailable, &memberError{shard: j, err: err})
			return
		}
		if status/100 == 2 {
			if u.Op == "add_site" {
				r.mirrorAdd(u.Node)
			} else {
				r.mirrorDelete(u.Node)
			}
			r.dropOwnership()
		}
		relayResponse(w, status, body)
	case "add_trajectory", "delete_trajectory":
		var status int
		var body []byte
		for j := 0; j < r.n; j++ {
			st, b, err := r.relay(ctx, j, raw)
			if err != nil || st/100 != 2 {
				if err == nil {
					err = decodeEnvelope(st, b)
				}
				r.errs.Add(1)
				if j == 0 {
					// Nothing committed anywhere yet: relay the first member's
					// verdict (or report it unreachable) and stay consistent.
					if b != nil {
						relayResponse(w, st, b)
					} else {
						writeError(w, http.StatusServiceUnavailable, codeShardUnavailable, &memberError{shard: j, err: err})
					}
					return
				}
				writeError(w, http.StatusBadGateway, codeTopologyDiverged,
					fmt.Errorf("%s committed on shards [0,%d) but failed on shard %d: %v; repair the shard from its peers' WALs before trusting answers", u.Op, j, j, err))
				return
			}
			if j == 0 {
				status, body = st, b
			}
		}
		relayResponse(w, status, body)
	case "":
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("missing op"))
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("unknown op %q (want add_site, delete_site, add_trajectory or delete_trajectory)", u.Op))
	}
}

// relay forwards the raw update body to shard j's active member.
func (r *Router) relay(ctx context.Context, j int, body []byte) (int, []byte, error) {
	cctx, cancel := context.WithTimeout(ctx, r.opts.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, r.activeURL(j)+"/v1/update", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr := obs.TraceID(ctx); tr != "" {
		req.Header.Set(obs.TraceHeader, tr)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

func relayResponse(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// decodeEnvelope turns a member's error envelope into an error.
func decodeEnvelope(status int, body []byte) error {
	var env errorResponse
	_ = json.Unmarshal(body, &env)
	if env.Error == "" {
		env.Error = string(body)
	}
	return &httpError{status: status, code: env.Code, msg: env.Error}
}

// mirrorAdd appends a node to the dense-id mirror (the in-process index
// assigns dense ids by append order).
func (r *Router) mirrorAdd(v int64) {
	if _, ok := r.siteID[v]; ok {
		return
	}
	r.siteID[v] = int32(len(r.sites))
	r.sites = append(r.sites, v)
}

// mirrorDelete swap-removes a node, moving the last dense id into the
// vacated slot — the in-process index's delete discipline, so dense ids
// keep matching.
func (r *Router) mirrorDelete(v int64) {
	i, ok := r.siteID[v]
	if !ok {
		return
	}
	last := len(r.sites) - 1
	moved := r.sites[last]
	r.sites[i] = moved
	r.siteID[moved] = i
	r.sites = r.sites[:last]
	delete(r.siteID, v)
}

// topologyRequest is POST /v1/topology: make primary shard j's active
// target (the re-point step after promoting a follower).
type topologyRequest struct {
	Shard   int    `json:"shard"`
	Primary string `json:"primary"`
}

func (r *Router) handleTopology(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		writeJSON(w, struct {
			Shards      []topologyShard `json:"shards"`
			Partitioner string          `json:"partitioner"`
		}{Shards: r.topology(), Partitioner: r.partName})
	case http.MethodPost:
		raw, err := io.ReadAll(io.LimitReader(req.Body, 1<<16))
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		var t topologyRequest
		if err := strictUnmarshal(raw, &t); err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		if err := r.Repoint(t.Shard, t.Primary); err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		writeJSON(w, struct {
			OK      bool   `json:"ok"`
			Shard   int    `json:"shard"`
			Primary string `json:"primary"`
		}{OK: true, Shard: t.Shard, Primary: t.Primary})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, codeBadRequest, fmt.Errorf("/v1/topology requires GET or POST"))
	}
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, struct {
		Status        string  `json:"status"`
		Shards        int     `json:"shards"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{Status: "ok", Shards: r.n, UptimeSeconds: time.Since(r.start).Seconds()})
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	r.mu.RLock()
	sites := len(r.sites)
	warn := r.siteWarn
	r.mu.RUnlock()
	writeJSON(w, struct {
		Shards             int             `json:"shards"`
		Partitioner        string          `json:"partitioner"`
		UptimeSeconds      float64         `json:"uptime_seconds"`
		Queries            uint64          `json:"queries"`
		Batches            uint64          `json:"batches"`
		Updates            uint64          `json:"updates"`
		Retries            uint64          `json:"retries"`
		Failovers          uint64          `json:"failovers"`
		Errors             uint64          `json:"errors"`
		Sites              int             `json:"sites"`
		SiteIDWarning      string          `json:"site_id_warning,omitempty"`
		OwnershipInstances []int           `json:"ownership_instances"`
		Topology           []topologyShard `json:"topology"`
	}{
		Shards:             r.n,
		Partitioner:        r.partName,
		UptimeSeconds:      time.Since(r.start).Seconds(),
		Queries:            r.queries.Load(),
		Batches:            r.batches.Load(),
		Updates:            r.updates.Load(),
		Retries:            r.retries.Load(),
		Failovers:          r.failovers.Load(),
		Errors:             r.errs.Load(),
		Sites:              sites,
		SiteIDWarning:      warn,
		OwnershipInstances: r.sortedInstances(),
		Topology:           r.topology(),
	})
}
