// Router observability tests: /metrics exposition validity and end-to-end
// trace propagation — a trace id supplied at the router edge must reach the
// shard member's structured log.

package router

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"netclus/internal/obs"
	"netclus/internal/server"
	"netclus/internal/shard"
)

// lockedBuffer makes a bytes.Buffer safe to read from the test goroutine
// while handler goroutines log into it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRouterMetricsExposition(t *testing.T) {
	const seed, n = 1601, 2
	var urls []string
	for j := 0; j < n; j++ {
		memInst, _ := buildFixture(t, seed)
		ts, _ := memberServer(t, memInst, j, n)
		urls = append(urls, ts.URL)
	}
	r, err := New(Options{Shards: [][]string{{urls[0]}, {urls[1]}}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r)
	defer rts.Close()

	if code, body := postJSON(t, rts.Client(), rts.URL+"/v1/query", `{"k":3,"tau":1.0}`); code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, body)
	}

	resp, err := rts.Client().Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(string(body)); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		`netclus_build_info{`,
		`netclus_router_shards{role="router"} 2`,
		`netclus_router_queries_total{`,
		`netclus_router_shard_members{`,
		`netclus_router_scatter_seconds_bucket{`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
}

// TestRouterTracePropagation supplies a trace id at the router edge and
// follows it down the stack: echoed on the router's response and error
// envelope, and visible in the shard member's structured debug log for the
// scatter round the router fanned out.
func TestRouterTracePropagation(t *testing.T) {
	const seed, n = 1607, 2
	var memberLogs lockedBuffer
	logger, err := obs.NewLogger(&memberLogs, slog.LevelDebug, "json")
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	for j := 0; j < n; j++ {
		memInst, _ := buildFixture(t, seed)
		m, err := shard.BuildMember(memInst, j, shard.Options{Shards: n, Partitioner: shard.HashPartitioner, Build: fixtureBuild})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(m, server.Options{BatchWindow: -1, Member: m, Logger: logger})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		urls = append(urls, ts.URL)
	}
	r, err := New(Options{Shards: [][]string{{urls[0]}, {urls[1]}}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(r)
	defer rts.Close()

	supplied := obs.NewTraceID()
	req, _ := http.NewRequest(http.MethodPost, rts.URL+"/v1/query", strings.NewReader(`{"k":3,"tau":1.0}`))
	req.Header.Set(obs.TraceHeader, supplied)
	resp, err := rts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != supplied {
		t.Fatalf("router trace header = %q, want the supplied %q", got, supplied)
	}

	// The member's "shard query start" debug record must carry the same id.
	found := false
	for _, line := range strings.Split(memberLogs.String(), "\n") {
		if !strings.Contains(line, "shard query start") {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("member log record is not JSON: %v\n%s", err, line)
		}
		if rec["trace_id"] == supplied {
			found = true
		}
	}
	if !found {
		t.Fatalf("supplied trace id %q never reached a member's structured log:\n%s", supplied, memberLogs.String())
	}

	// Error envelopes carry the id too.
	req, _ = http.NewRequest(http.MethodPost, rts.URL+"/v1/query", strings.NewReader(`{"k":0,"tau":1.0}`))
	req.Header.Set(obs.TraceHeader, supplied)
	resp, err = rts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status %d, want 400", resp.StatusCode)
	}
	var env struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error envelope is not JSON: %v\n%s", err, body)
	}
	if env.TraceID != supplied {
		t.Fatalf("envelope trace_id = %q, want %q", env.TraceID, supplied)
	}
}
