// /metrics: the router tier's Prometheus exposition. Everything /statsz
// reports — topology, route counters, failover/retry counters — plus the
// shared obs latency histograms (of which only the scatter-round family is
// populated on a router; the serving families stay empty).

package router

import (
	"net/http"
	"strconv"

	"netclus/internal/obs"
)

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ew := obs.NewExpoWriter(w, `role="router"`)

	bi := obs.ReadBuildInfo()
	ew.Family("netclus_build_info", "Build identity; value is always 1.", "gauge")
	ew.Sample("netclus_build_info",
		`go_version="`+obs.EscapeLabel(bi.GoVersion)+`",version="`+obs.EscapeLabel(bi.Version)+`",revision="`+obs.EscapeLabel(bi.Revision)+`"`, 1)
	ew.Family("netclus_uptime_seconds", "Seconds since process start.", "gauge")
	ew.Sample("netclus_uptime_seconds", "", obs.Uptime().Seconds())

	ew.Family("netclus_router_shards", "Shards in the routed topology.", "gauge")
	ew.Sample("netclus_router_shards", "", float64(r.n))
	ew.Family("netclus_router_queries_total", "Queries accepted (batch items counted via batches).", "counter")
	ew.Uint("netclus_router_queries_total", "", r.queries.Load())
	ew.Family("netclus_router_batches_total", "Batch requests accepted.", "counter")
	ew.Uint("netclus_router_batches_total", "", r.batches.Load())
	ew.Family("netclus_router_updates_total", "Mutations routed.", "counter")
	ew.Uint("netclus_router_updates_total", "", r.updates.Load())
	ew.Family("netclus_router_retries_total", "Query restarts after a member failure.", "counter")
	ew.Uint("netclus_router_retries_total", "", r.retries.Load())
	ew.Family("netclus_router_failovers_total", "Shard cursor advances past a failed member.", "counter")
	ew.Uint("netclus_router_failovers_total", "", r.failovers.Load())
	ew.Family("netclus_router_errors_total", "Requests answered with an error envelope.", "counter")
	ew.Uint("netclus_router_errors_total", "", r.errs.Load())

	r.mu.RLock()
	sites := len(r.sites)
	type shardRow struct {
		j      int
		active int
		urls   int
		failed bool
	}
	rows := make([]shardRow, r.n)
	for j, s := range r.slots {
		rows[j] = shardRow{j: j, active: s.active, urls: len(s.urls), failed: s.lastErr != ""}
	}
	r.mu.RUnlock()
	ew.Family("netclus_router_sites", "Sites in the dense-id mirror.", "gauge")
	ew.Sample("netclus_router_sites", "", float64(sites))
	ew.Family("netclus_router_shard_members", "Member URLs known per shard.", "gauge")
	ew.Family("netclus_router_shard_active_cursor", "Index of the shard's active member URL.", "gauge")
	ew.Family("netclus_router_shard_last_error", "1 when the shard's last member call failed.", "gauge")
	for _, row := range rows {
		lbl := `idx="` + strconv.Itoa(row.j) + `"`
		ew.Sample("netclus_router_shard_members", lbl, float64(row.urls))
		ew.Sample("netclus_router_shard_active_cursor", lbl, float64(row.active))
		v := 0.0
		if row.failed {
			v = 1
		}
		ew.Sample("netclus_router_shard_last_error", lbl, v)
	}

	obs.WriteLatencyHistograms(ew)
	_ = ew.Err()
}
