package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"netclus/internal/core"
	"netclus/internal/obs"
	"netclus/internal/shard"
	"netclus/internal/tops"
)

// wireQuery mirrors the serving tier's /v1/query body. The router accepts
// the same shape so clients are oblivious to which tier they talk to;
// sketch-mode (fm) queries are rejected — the router speaks only the
// exact distributed-greedy protocol.
type wireQuery struct {
	K         int     `json:"k"`
	Tau       float64 `json:"tau"`
	Pref      string  `json:"pref"`
	Lambda    float64 `json:"lambda,omitempty"`
	FM        bool    `json:"fm,omitempty"`
	F         int     `json:"f,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	TimeoutMs int64   `json:"timeout_ms,omitempty"`
}

// validate applies the serving tier's structural checks plus the router's
// own restrictions, and lowers the preference once to fail fast (members
// re-derive it from the wire form).
func (q wireQuery) validate(maxK int) (shard.WirePref, error) {
	var zero shard.WirePref
	if q.K <= 0 {
		return zero, fmt.Errorf("k = %d must be positive", q.K)
	}
	if q.K > maxK {
		return zero, fmt.Errorf("k = %d exceeds limit %d", q.K, maxK)
	}
	if q.FM || q.F != 0 || q.Seed != 0 {
		return zero, fmt.Errorf("fm queries are not supported by the router tier (exact greedy only)")
	}
	if q.Lambda != 0 && q.Pref != "exp" {
		return zero, fmt.Errorf("lambda applies only to the exp preference")
	}
	if q.TimeoutMs < 0 {
		return zero, fmt.Errorf("timeout_ms = %d must be non-negative", q.TimeoutMs)
	}
	wp := shard.WirePref{Name: q.Pref, Tau: q.Tau, Lambda: q.Lambda}
	pref, err := wp.Preference()
	if err != nil {
		return zero, err
	}
	if err := pref.Validate(); err != nil {
		return zero, err
	}
	return wp, nil
}

// retryable reports whether a member failure is worth failing over and
// restarting the query: transport errors, 5xx, timeouts, and session
// conflicts (409: the member restarted, or a failover moved the session's
// shard to a process that never saw the start) are; other 4xx answers are
// the member telling us the request itself is bad — relayed, not retried.
func retryable(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.status >= 500 ||
			he.status == http.StatusRequestTimeout ||
			he.status == http.StatusConflict ||
			he.status == http.StatusTooManyRequests
	}
	return true
}

// shardConn is one active shard's per-query state: its index, the last
// round's reply, and its accumulated member-call time (written only by
// this shard's round goroutine, rounds are sequential — no atomics
// needed; read after the final round for the slow-query record).
type shardConn struct {
	j     int
	reply *shard.RoundReply
	nanos int64
}

// runQuery executes one query against the topology: derive the ladder
// instance and cluster ownership, open a session on every shard that owns
// clusters, then run synchronized rounds — reduce the per-shard argmax
// candidates under tops.GreaterSite in ascending shard order (the exact
// in-process reduce), absorb the winner's TC list into the global utility
// vector via shard.ApplyWinner (the exact in-process float ops), and
// broadcast the deltas. Holds the read lock so router-routed updates
// serialize against it.
func (r *Router) runQuery(ctx context.Context, q wireQuery, pref shard.WirePref) (*queryResult, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()

	p := core.InstanceForTau(r.tauMin, r.gamma, r.rungs, q.Tau)
	own, err := r.ownership(ctx, p)
	if err != nil {
		return nil, err
	}
	res := &queryResult{InstanceUsed: p, NumRepresentatives: len(own.winners), Sites: []int64{}, SiteIDs: []int32{}}
	if len(own.winners) == 0 {
		return res, nil
	}
	k := q.K
	if k > len(own.winners) {
		k = len(own.winners)
	}

	qid := fmt.Sprintf("q%d-%d", os.Getpid(), r.qidSeq.Add(1))
	var conns []*shardConn
	for j := 0; j < r.n; j++ {
		if len(own.masks[j]) > 0 {
			conns = append(conns, &shardConn{j: j})
		}
	}

	// Scatter the session starts; on any failure, close what opened and
	// report the first failed shard for failover.
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	tRound := time.Now()
	for i, sc := range conns {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			t0 := time.Now()
			defer func() { sc.nanos += int64(time.Since(t0)) }()
			req := &shard.StartRequest{QID: qid, P: p, Pref: pref, Mask: own.masks[sc.j], MaskGlobal: own.masksGI[sc.j]}
			var reply shard.RoundReply
			if err := r.call(ctx, http.MethodPost, r.activeURL(sc.j)+"/v1/shard/query/start", req, &reply); err != nil {
				errs[i] = err
				return
			}
			sc.reply = &reply
		}(i, sc)
	}
	wg.Wait()
	obs.RouterScatter.RecordSince(tRound)
	res.rounds++
	defer r.endSessions(qid, conns)
	defer func() {
		for _, sc := range conns {
			res.shardMs = append(res.shardMs, shardTiming{Shard: sc.j, Ms: float64(sc.nanos) / 1e6})
		}
	}()
	for i, err := range errs {
		if err != nil {
			return nil, r.classify(conns[i].j, err)
		}
	}

	// The global utility vector spans the widest trajectory id any shard
	// covers — identical to the in-process gather's m = max over shards.
	m := 0
	for _, sc := range conns {
		if sc.reply.M > m {
			m = sc.reply.M
		}
	}
	util := make([]float64, m)
	var deltas []shard.UtilDelta

	for len(res.Sites) < k {
		// Reduce this round's candidates in ascending shard order.
		var wc *shard.WireCand
		for _, sc := range conns {
			c := sc.reply.Cand
			if c == nil {
				continue
			}
			if wc == nil || tops.GreaterSite(c.Marg, c.Weight, int(c.GI), wc.Marg, wc.Weight, int(wc.GI)) {
				wc = c
			}
		}
		if wc == nil {
			break // every representative selected
		}
		w := own.winners[wc.GI]
		res.Sites = append(res.Sites, w.node)
		if id, ok := r.siteID[w.node]; ok {
			res.SiteIDs = append(res.SiteIDs, id)
		} else {
			res.SiteIDs = append(res.SiteIDs, int32(tops.InvalidSiteID))
		}
		res.EstimatedUtility += wc.Marg
		var nc int
		deltas, nc = shard.ApplyWinner(util, wc.Trajs, wc.Scores, deltas[:0])
		res.EstimatedCovered += nc
		if len(res.Sites) == k {
			break // the in-process greedy also skips the final round's bookkeeping
		}

		// Broadcast the winner and gather next-round candidates. The winner
		// shard recognizes its own candidate by global index and marks it
		// selected; global indices partition across shards, so nobody else
		// matches.
		step := &shard.StepRequest{QID: qid, WinnerGI: wc.GI, Deltas: deltas}
		for i := range errs {
			errs[i] = nil
		}
		tRound = time.Now()
		for i, sc := range conns {
			wg.Add(1)
			go func(i int, sc *shardConn) {
				defer wg.Done()
				t0 := time.Now()
				defer func() { sc.nanos += int64(time.Since(t0)) }()
				var reply shard.RoundReply
				if err := r.call(ctx, http.MethodPost, r.activeURL(sc.j)+"/v1/shard/query/step", step, &reply); err != nil {
					errs[i] = err
					return
				}
				sc.reply = &reply
			}(i, sc)
		}
		wg.Wait()
		obs.RouterScatter.RecordSince(tRound)
		res.rounds++
		for i, err := range errs {
			if err != nil {
				return nil, r.classify(conns[i].j, err)
			}
		}
	}
	return res, nil
}

// classify wraps a member failure for the retry loop when failing over
// could help, and passes terminal (client-resolvable) answers through.
func (r *Router) classify(j int, err error) error {
	if retryable(err) {
		return &memberError{shard: j, err: err}
	}
	return err
}

// endSessions releases the query's sessions best-effort: sessions also
// expire by TTL, so a lost End costs memory only briefly.
func (r *Router) endSessions(qid string, conns []*shardConn) {
	for _, sc := range conns {
		// Resolve the URL while the caller still holds the read lock; the
		// goroutine outlives it and must not race a failover's cursor write.
		u := r.activeURL(sc.j)
		go func(u string) {
			_ = r.call(context.Background(), http.MethodPost, u+"/v1/shard/query/end", &shard.EndRequest{QID: qid}, nil)
		}(u)
	}
}

// queryResult accumulates one answer in the serving tier's wire shape.
// rounds and shardMs stay off the wire (unexported): they feed only the
// slow-query log record.
type queryResult struct {
	Sites              []int64 `json:"sites"`
	SiteIDs            []int32 `json:"site_ids"`
	EstimatedUtility   float64 `json:"estimated_utility"`
	EstimatedCovered   int     `json:"estimated_covered"`
	InstanceUsed       int     `json:"instance_used"`
	NumRepresentatives int     `json:"num_representatives"`
	ElapsedMs          float64 `json:"elapsed_ms"`

	rounds  int
	shardMs []shardTiming
}

// shardTiming is one shard's accumulated member-call time for one query,
// as logged on the slow-query record.
type shardTiming struct {
	Shard int     `json:"shard"`
	Ms    float64 `json:"ms"`
}

// query runs the attempt loop: a retryable member failure advances that
// shard's cursor (a follower can serve the read-only round protocol) and
// restarts the query from scratch with a fresh session id.
func (r *Router) query(ctx context.Context, q wireQuery, pref shard.WirePref) (*queryResult, error) {
	t0 := time.Now()
	var res *queryResult
	var err error
	for attempt := 0; attempt < r.opts.QueryAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
		}
		res, err = r.runQuery(ctx, q, pref)
		var me *memberError
		if err != nil && errors.As(err, &me) && ctx.Err() == nil {
			r.failover(me.shard, me.err)
			continue
		}
		break
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(t0)
	res.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	if r.opts.SlowQuery > 0 && elapsed >= r.opts.SlowQuery {
		r.log.Warn("slow query",
			"trace_id", obs.TraceID(ctx),
			"k", q.K,
			"pref", q.Pref,
			"tau_km", q.Tau,
			"rounds", res.rounds,
			"shard_ms", slog.AnyValue(res.shardMs),
			"elapsed_ms", res.ElapsedMs,
		)
	}
	return res, nil
}
