// Package router is the stateless front tier of a shard-per-process
// NETCLUS topology: each shard runs as its own topsserve process (with its
// own WAL, snapshots, and followers), and the router speaks the
// distributed-greedy round protocol of internal/shard against them over
// HTTP — per round, each member's local argmax is reduced under
// tops.GreaterSite and the winner's trajectory-score deltas broadcast
// back, the same float ops as the in-process gather, so answers stay
// float-op-for-float-op identical to a single-process engine over the
// same dataset (the cross-process differential oracle enforces it).
//
// The router owns the shard map: per shard an ordered list of member URLs
// (primary first, then followers) with an active cursor. The round
// protocol is read-only, so when a member fails mid-query the router
// advances that shard's cursor to the next URL — a follower serves the
// retry without any promotion — and restarts the query from scratch.
// Updates require the shard's primary: site mutations route to the owning
// shard (the partitioner evaluated locally when it is graph-free, or via
// the members' /v1/shard/owner otherwise), trajectory mutations broadcast
// to every shard. POST /v1/topology re-points a shard at a promoted
// follower after a primary failure.
//
// Consistency: the router serializes its own queries against its own
// updates (queries share a read lock, updates take the write lock —
// the same discipline as shard.Sharded), but it cannot serialize against
// mutations sent directly to a member. Each query's per-shard cover
// snapshots are taken at round 0, so even then a query sees a consistent
// per-shard view; route all updates through the router to get the
// in-process engine's sequential semantics.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/obs"
	"netclus/internal/roadnet"
	"netclus/internal/shard"
)

// Options configures a Router.
type Options struct {
	// Shards is the shard map: per shard, its member URLs in preference
	// order (primary first, then followers). Every shard needs at least
	// one URL.
	Shards [][]string
	// Client issues member requests. Nil selects a default client; the
	// per-call timeout comes from ShardTimeout either way.
	Client *http.Client
	// ShardTimeout bounds each member call (default 10s).
	ShardTimeout time.Duration
	// QueryAttempts is how many times a query restarts after a member
	// failure (advancing the failed shard's cursor between attempts)
	// before giving up. Zero selects 3.
	QueryAttempts int
	// MaxK rejects queries asking for more sites than any deployment
	// plausibly serves (default 10000, the serving-tier default).
	MaxK int
	// MaxBatch bounds /v1/query/batch (default 1024).
	MaxBatch int
	// Logger receives topology events (boot, failover, re-point) and
	// slow-query records as structured logs. Nil discards them.
	Logger *slog.Logger
	// SlowQuery, when > 0, emits one structured record for every query
	// whose end-to-end handling (attempts included) exceeds it: trace id,
	// k, τ, rounds, per-shard round time. Zero disables.
	SlowQuery time.Duration
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 10 * time.Second
	}
	if o.QueryAttempts <= 0 {
		o.QueryAttempts = 3
	}
	if o.MaxK <= 0 {
		o.MaxK = 10_000
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// slot is one shard's routing state: its candidate URLs and the cursor.
type slot struct {
	urls    []string
	active  int
	lastErr string
}

// ownTable caches one ladder instance's cluster ownership: the winners in
// ascending cluster order (position i is global dense representative
// index i) and, per shard, the owned clusters and their global indices —
// the mask a StartRequest ships.
type ownTable struct {
	winners []ownWinner
	masks   [][]int64
	masksGI [][]int32
}

type ownWinner struct {
	cluster int64
	shard   int
	node    int64
}

// Router fronts N shard-member processes. Create with New, mount as an
// http.Handler.
type Router struct {
	opts   Options
	client *http.Client

	// mu serializes updates (write) against queries (read), covering the
	// topology slots, the dense-id mirror, and — via ownMu under it — the
	// ownership caches. The same discipline as shard.Sharded.
	mu    sync.RWMutex
	slots []*slot

	n        int
	partName string
	// part evaluates the partitioner locally when it is graph-free (hash);
	// nil means owner lookups go to the members (grid needs the graph).
	part                  shard.Partitioner
	tauMin, tauMax, gamma float64
	rungs                 int

	// Global dense site-id mirror, replicating the single-process index's
	// bookkeeping (append on add, swap-remove on delete) so SiteIDs match.
	sites    []int64
	siteID   map[int64]int32
	siteWarn string // non-empty when the mirror was seeded from concatenation

	ownMu      sync.Mutex
	own        map[int]*ownTable
	ownerCache map[int64]int

	qidSeq    atomic.Uint64
	queries   atomic.Uint64
	batches   atomic.Uint64
	updates   atomic.Uint64
	retries   atomic.Uint64
	failovers atomic.Uint64
	errs      atomic.Uint64

	start time.Time
	mux   *http.ServeMux
	log   *slog.Logger
}

// New validates the shard map against the members' own metadata (every
// member must agree on shard count, index, partitioner, and ladder
// parameters — a mixed topology would silently produce wrong answers),
// seeds the dense-id mirror, and returns a serving router.
func New(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("router: empty shard map")
	}
	opts = opts.withDefaults()
	r := &Router{
		opts:       opts,
		client:     opts.Client,
		n:          len(opts.Shards),
		own:        make(map[int]*ownTable),
		ownerCache: make(map[int64]int),
		siteID:     make(map[int64]int32),
		start:      time.Now(),
		log:        opts.Logger.With("component", "router"),
	}
	for j, urls := range opts.Shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no member URLs", j)
		}
		for _, u := range urls {
			p, err := url.Parse(u)
			if err != nil || p.Scheme == "" || p.Host == "" {
				return nil, fmt.Errorf("router: shard %d: %q is not an absolute URL", j, u)
			}
		}
		r.slots = append(r.slots, &slot{urls: append([]string(nil), urls...)})
	}

	metas := make([]shard.MemberMeta, r.n)
	for j := range r.slots {
		meta, err := r.fetchMeta(j)
		if err != nil {
			return nil, err
		}
		metas[j] = meta
	}
	m0 := metas[0]
	for j, m := range metas {
		if m.Shards != r.n {
			return nil, fmt.Errorf("router: shard %d reports a %d-shard topology, shard map has %d", j, m.Shards, r.n)
		}
		if m.Index != j {
			return nil, fmt.Errorf("router: shard map position %d points at a member that is shard %d", j, m.Index)
		}
		if m.Partitioner != m0.Partitioner {
			return nil, fmt.Errorf("router: shard %d partitioner %q differs from shard 0's %q", j, m.Partitioner, m0.Partitioner)
		}
		if m.TauMin != m0.TauMin || m.TauMax != m0.TauMax || m.Gamma != m0.Gamma || m.Rungs != m0.Rungs {
			return nil, fmt.Errorf("router: shard %d ladder (γ=%v τ=[%v,%v) rungs=%d) differs from shard 0 (γ=%v τ=[%v,%v) rungs=%d)",
				j, m.Gamma, m.TauMin, m.TauMax, m.Rungs, m0.Gamma, m0.TauMin, m0.TauMax, m0.Rungs)
		}
	}
	r.partName = m0.Partitioner
	r.tauMin, r.tauMax, r.gamma, r.rungs = m0.TauMin, m0.TauMax, m0.Gamma, m0.Rungs
	if r.partName == shard.HashPartitioner {
		part, err := shard.NewPartitioner(r.partName, r.n, nil)
		if err != nil {
			return nil, err
		}
		r.part = part
	}
	r.seedMirror(metas)
	r.routes()
	return r, nil
}

// seedMirror builds the global dense site-id mirror. When every member
// still knows the full build-time site order and the live site sets have
// not drifted from it, that order is exact — SiteIDs match a
// single-process engine with the same history. Otherwise (members
// recovered from checkpoints, or mutations applied before this router
// booted) the mirror concatenates the live per-shard lists: the nodes are
// right, but dense ids may differ from a single-process history, which is
// recorded in siteWarn and surfaced on /statsz.
func (r *Router) seedMirror(metas []shard.MemberMeta) {
	liveCount := 0
	liveSet := make(map[int64]bool)
	for _, m := range metas {
		liveCount += len(m.Sites)
		for _, v := range m.Sites {
			liveSet[v] = true
		}
	}
	exact := len(metas[0].InitialSites) > 0
	for _, m := range metas {
		if len(m.InitialSites) != len(metas[0].InitialSites) {
			exact = false
			break
		}
	}
	if exact && len(metas[0].InitialSites) == liveCount && len(liveSet) == liveCount {
		for _, v := range metas[0].InitialSites {
			if !liveSet[v] {
				exact = false
				break
			}
		}
	} else {
		exact = false
	}
	if exact {
		r.sites = append([]int64(nil), metas[0].InitialSites...)
	} else {
		for _, m := range metas {
			r.sites = append(r.sites, m.Sites...)
		}
		r.siteWarn = "dense site ids seeded from per-shard concatenation (members past their build-time site set); ids may differ from a single-process history"
		r.log.Warn("site-id mirror inexact", "detail", r.siteWarn)
	}
	for i, v := range r.sites {
		r.siteID[v] = int32(i)
	}
}

// activeURL returns shard j's current target.
func (r *Router) activeURL(j int) string {
	s := r.slots[j]
	return s.urls[s.active]
}

// failover advances shard j's cursor past a failed member. Caller may
// hold only the read lock during queries, so the cursor moves under the
// slot-independent write lock; a single-URL shard just retries the same
// target.
func (r *Router) failover(j int, cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.slots[j]
	s.lastErr = cause.Error()
	if len(s.urls) == 1 {
		return
	}
	was := s.urls[s.active]
	s.active = (s.active + 1) % len(s.urls)
	r.failovers.Add(1)
	r.log.Warn("shard failover", "shard", j, "failed_url", was, "error", cause.Error(), "next_url", s.urls[s.active])
}

// Repoint makes u shard j's active target (appending it to the shard's
// URL list if new), after verifying the member there really serves shard
// j of this topology. The failover path after POST /v1/promote on a
// surviving follower.
func (r *Router) Repoint(j int, u string) error {
	if j < 0 || j >= r.n {
		return fmt.Errorf("router: shard %d outside [0, %d)", j, r.n)
	}
	p, err := url.Parse(u)
	if err != nil || p.Scheme == "" || p.Host == "" {
		return fmt.Errorf("router: %q is not an absolute URL", u)
	}
	var meta shard.MemberMeta
	if err := r.call(context.Background(), http.MethodGet, u+"/v1/shard/meta", nil, &meta); err != nil {
		return fmt.Errorf("router: probing %s: %w", u, err)
	}
	if meta.Shards != r.n || meta.Index != j {
		return fmt.Errorf("router: %s serves shard %d of %d, not shard %d of %d", u, meta.Index, meta.Shards, j, r.n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.slots[j]
	found := -1
	for i, cand := range s.urls {
		if cand == u {
			found = i
			break
		}
	}
	if found < 0 {
		s.urls = append(s.urls, u)
		found = len(s.urls) - 1
	}
	s.active = found
	s.lastErr = ""
	r.log.Info("shard re-pointed", "shard", j, "primary", u)
	return nil
}

// fetchMeta loads shard j's metadata, failing over through its URL list.
func (r *Router) fetchMeta(j int) (shard.MemberMeta, error) {
	s := r.slots[j]
	var lastErr error
	for range s.urls {
		var meta shard.MemberMeta
		err := r.call(context.Background(), http.MethodGet, r.activeURL(j)+"/v1/shard/meta", nil, &meta)
		if err == nil {
			return meta, nil
		}
		lastErr = err
		s.active = (s.active + 1) % len(s.urls)
	}
	return shard.MemberMeta{}, fmt.Errorf("router: no reachable member for shard %d: %w", j, lastErr)
}

// ownership derives (or returns the cached) cluster ownership of ladder
// instance p: every shard's representatives are fetched and reduced per
// cluster to the shard with minimal (dr, node) — the exact single-shard
// representative tie-break, the same reduce shard.Sharded runs in
// process. Dropped whole on any site mutation.
func (r *Router) ownership(ctx context.Context, p int) (*ownTable, error) {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	if t := r.own[p]; t != nil {
		return t, nil
	}
	type fetch struct {
		reps []shard.WireRep
		err  error
	}
	fetches := make([]fetch, r.n)
	var wg sync.WaitGroup
	for j := 0; j < r.n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			var resp struct {
				P    int             `json:"p"`
				Reps []shard.WireRep `json:"reps"`
			}
			fetches[j].err = r.call(ctx, http.MethodGet, fmt.Sprintf("%s/v1/shard/reps?p=%d", r.activeURL(j), p), nil, &resp)
			fetches[j].reps = resp.Reps
		}(j)
	}
	wg.Wait()
	maxCi := int64(-1)
	for j, f := range fetches {
		if f.err != nil {
			return nil, &memberError{shard: j, err: f.err}
		}
		for _, ri := range f.reps {
			if int64(ri.Cluster) > maxCi {
				maxCi = int64(ri.Cluster)
			}
		}
	}
	n := int(maxCi) + 1
	bestShard := make([]int32, n)
	bestNode := make([]int64, n)
	bestDr := make([]float64, n)
	for i := range bestShard {
		bestShard[i] = -1
	}
	for j, f := range fetches {
		for _, ri := range f.reps {
			c := ri.Cluster
			if bestShard[c] < 0 || ri.Dr < bestDr[c] || (ri.Dr == bestDr[c] && ri.Node < bestNode[c]) {
				bestShard[c], bestNode[c], bestDr[c] = int32(j), ri.Node, ri.Dr
			}
		}
	}
	t := &ownTable{masks: make([][]int64, r.n), masksGI: make([][]int32, r.n)}
	for c := 0; c < n; c++ {
		if bestShard[c] < 0 {
			continue
		}
		gi := int32(len(t.winners))
		j := int(bestShard[c])
		t.winners = append(t.winners, ownWinner{cluster: int64(c), shard: j, node: bestNode[c]})
		t.masks[j] = append(t.masks[j], int64(c))
		t.masksGI[j] = append(t.masksGI[j], gi)
	}
	r.own[p] = t
	return t, nil
}

// dropOwnership invalidates the ownership and owner caches after a site
// mutation (a site add/delete can move cluster representatives, and for
// grid topologies the mutation may even have created the node's first
// routing decision).
func (r *Router) dropOwnership() {
	r.ownMu.Lock()
	r.own = make(map[int]*ownTable)
	r.ownMu.Unlock()
}

// ownerOf resolves which shard owns node v: locally when the partitioner
// is graph-free, otherwise via a (cached) member lookup.
func (r *Router) ownerOf(ctx context.Context, v int64) (int, error) {
	if r.part != nil {
		return r.part.Shard(roadnet.NodeID(v)), nil
	}
	r.ownMu.Lock()
	j, ok := r.ownerCache[v]
	r.ownMu.Unlock()
	if ok {
		return j, nil
	}
	var resp struct {
		Node  int64 `json:"node"`
		Shard int   `json:"shard"`
	}
	if err := r.call(ctx, http.MethodGet, fmt.Sprintf("%s/v1/shard/owner?node=%d", r.activeURL(0), v), nil, &resp); err != nil {
		return 0, &memberError{shard: 0, err: err}
	}
	if resp.Shard < 0 || resp.Shard >= r.n {
		return 0, fmt.Errorf("router: member reports shard %d for node %d, outside [0, %d)", resp.Shard, v, r.n)
	}
	r.ownMu.Lock()
	r.ownerCache[v] = resp.Shard
	r.ownMu.Unlock()
	return resp.Shard, nil
}

// memberError marks a failure attributable to one shard's current target;
// the query path fails that shard over and retries.
type memberError struct {
	shard int
	err   error
}

func (e *memberError) Error() string { return fmt.Sprintf("shard %d: %v", e.shard, e.err) }
func (e *memberError) Unwrap() error { return e.err }

// httpError carries a member's error envelope (status + code) upstream.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("member answered %d (%s): %s", e.status, e.code, e.msg)
}

// call issues one member request with the per-call timeout: JSON in (when
// in is non-nil), JSON out (when out is non-nil). Non-2xx answers decode
// the serving tier's error envelope into an httpError.
func (r *Router) call(ctx context.Context, method, u string, in, out any) error {
	ctx, cancel := context.WithTimeout(ctx, r.opts.ShardTimeout)
	defer cancel()
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Forward the request's trace id so the member's logs and error
	// envelopes join with the router's.
	if tr := obs.TraceID(ctx); tr != "" {
		req.Header.Set(obs.TraceHeader, tr)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.Unmarshal(raw, &env)
		if env.Error == "" {
			env.Error = string(raw)
		}
		return &httpError{status: resp.StatusCode, code: env.Code, msg: env.Error}
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// topologyShard is one row of GET /v1/topology.
type topologyShard struct {
	Shard     int      `json:"shard"`
	URLs      []string `json:"urls"`
	Active    int      `json:"active"`
	ActiveURL string   `json:"active_url"`
	LastError string   `json:"last_error,omitempty"`
}

// topology snapshots the shard map.
func (r *Router) topology() []topologyShard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]topologyShard, r.n)
	for j, s := range r.slots {
		out[j] = topologyShard{
			Shard:     j,
			URLs:      append([]string(nil), s.urls...),
			Active:    s.active,
			ActiveURL: s.urls[s.active],
			LastError: s.lastErr,
		}
	}
	return out
}

// sortedInstances lists the cached ownership instances (statsz).
func (r *Router) sortedInstances() []int {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	out := make([]int, 0, len(r.own))
	for p := range r.own {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
