package tops

import (
	"math"
	"math/rand"
	"testing"
)

func TestOptimalILPPaperExample1(t *testing.T) {
	cs := paperExample1()
	res, err := OptimalILP(cs, OptimalOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || math.Abs(res.Utility-1.0) > 1e-9 {
		t.Fatalf("ILP utility = %v exact=%v, want 1.0", res.Utility, res.Exact)
	}
}

func TestOptimalILPMatchesCombinatorial(t *testing.T) {
	// Both exact solvers must agree on random instances — a strong
	// cross-check of the simplex, the branch and bound, and the ILP
	// formulation all at once.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 12; trial++ {
		cs := randomCoverSets(rng, 5+rng.Intn(4), 8+rng.Intn(8), 0.35, trial%2 == 0)
		k := 1 + rng.Intn(3)
		bb, err := Optimal(cs, OptimalOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		lp, err := OptimalILP(cs, OptimalOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if !bb.Exact || !lp.Exact {
			t.Fatalf("trial %d: not exact (bb=%v lp=%v)", trial, bb.Exact, lp.Exact)
		}
		if math.Abs(bb.Utility-lp.Utility) > 1e-6 {
			t.Fatalf("trial %d: branch-and-bound %v != ILP %v", trial, bb.Utility, lp.Utility)
		}
	}
}

func TestOptimalILPRespectsK(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	cs := randomCoverSets(rng, 8, 15, 0.4, true)
	for k := 1; k <= 3; k++ {
		res, err := OptimalILP(cs, OptimalOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Selected) > k {
			t.Fatalf("k=%d: selected %d sites", k, len(res.Selected))
		}
	}
}

func TestOptimalILPValidation(t *testing.T) {
	cs := paperExample1()
	if _, err := OptimalILP(cs, OptimalOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := OptimalILP(cs, OptimalOptions{K: 9}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestOptimalILPMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	cs := randomCoverSets(rng, 7, 20, 0.35, false)
	prev := -1.0
	for k := 1; k <= 4; k++ {
		res, err := OptimalILP(cs, OptimalOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Utility < prev-1e-9 {
			t.Fatalf("optimal utility decreased with k: %v after %v", res.Utility, prev)
		}
		prev = res.Utility
	}
}
