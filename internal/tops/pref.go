// Package tops implements the TOPS (Trajectory-aware Optimal Placement of
// Services) problem of the paper: preference functions, the site↔trajectory
// round-trip distance index, covering sets, the exact branch-and-bound
// optimizer, the INC-GREEDY heuristic with its FM-sketch acceleration, and
// the problem variants of §7 (cost budget, capacity, existing services,
// β-coverage).
package tops

import (
	"fmt"
	"math"
)

// Preference is the user-specified preference function ψ of Definition 2:
// ψ(T_j, s_i) = F(dr(T_j, s_i)) when dr <= Tau and 0 otherwise, where F is
// non-increasing. Scores are normalized to [0,1] except for the TOPS3
// deviation-minimizing variant, which uses negative distances by design.
type Preference struct {
	// Tau is the coverage threshold τ in kilometres; beyond it the score
	// is exactly zero.
	Tau float64
	// F maps a round-trip detour (<= Tau) to a score. Must be
	// non-increasing. F == nil means the binary function (score 1).
	F func(dr float64) float64
	// Name tags the function in experiment output.
	Name string
}

// Score evaluates ψ for a detour distance.
func (p Preference) Score(dr float64) float64 {
	if dr > p.Tau || math.IsInf(dr, 1) || math.IsNaN(dr) {
		return 0
	}
	if p.F == nil {
		return 1
	}
	return p.F(dr)
}

// Validate performs a sampled monotonicity check of F over [0, Tau]. It
// exists so query entry points can reject increasing preference functions,
// which would break the submodularity guarantees.
func (p Preference) Validate() error {
	if p.Tau < 0 || math.IsNaN(p.Tau) {
		return fmt.Errorf("tops: negative coverage threshold %v", p.Tau)
	}
	if p.F == nil || p.Tau == 0 {
		return nil
	}
	// An unbounded threshold (TOPS3) is sampled over a representative
	// finite range instead; Inf·0 would otherwise produce NaN probes.
	span := p.Tau
	if math.IsInf(span, 1) {
		span = 1e4
	}
	const samples = 64
	prev := math.Inf(1)
	for i := 0; i <= samples; i++ {
		v := p.F(span * float64(i) / samples)
		if math.IsNaN(v) {
			return fmt.Errorf("tops: preference function returns NaN")
		}
		if v > prev+1e-12 {
			return fmt.Errorf("tops: preference function increases near dr=%v", p.Tau*float64(i)/samples)
		}
		prev = v
	}
	return nil
}

// Binary is the binary instance of Definition 3 (TOPS1): a trajectory is
// covered or it is not. This is the variant the paper benchmarks most.
func Binary(tau float64) Preference {
	return Preference{Tau: tau, F: nil, Name: "binary"}
}

// Linear decays linearly from 1 at zero detour to 0 at τ.
func Linear(tau float64) Preference {
	return Preference{
		Tau:  tau,
		F:    func(d float64) float64 { return 1 - d/tau },
		Name: "linear",
	}
}

// ConvexQuadratic is (1 - d/τ)², a convex decreasing probability model of
// the kind used by the market-size variant TOPS2 [Berman et al.].
func ConvexQuadratic(tau float64) Preference {
	return Preference{
		Tau: tau,
		F: func(d float64) float64 {
			v := 1 - d/tau
			return v * v
		},
		Name: "convex-quadratic",
	}
}

// ExpDecay is exp(-λ·d) truncated at τ.
func ExpDecay(tau, lambda float64) Preference {
	return Preference{
		Tau:  tau,
		F:    func(d float64) float64 { return math.Exp(-lambda * d) },
		Name: "exp-decay",
	}
}

// NegativeDistance is the TOPS3 deviation-minimizing preference: the score
// is -dr with an unbounded threshold, so maximizing total utility minimizes
// total user deviation (§7.4). Scores are not in [0,1] by design.
func NegativeDistance() Preference {
	return Preference{
		Tau:  math.Inf(1),
		F:    func(d float64) float64 { return -d },
		Name: "negative-distance",
	}
}
