package tops_test

import (
	"fmt"

	"netclus/internal/tops"
)

// ExampleIncGreedy reproduces Example 1 / Table 3 of the paper: two
// trajectories, three sites; the greedy picks {s2, s1} for utility 0.9
// while the optimum {s1, s3} reaches 1.0.
func ExampleIncGreedy() {
	cs := tops.NewCoverSets(3, 2)
	cs.AddPair(0, 0, 0.4)  // ψ(T1, s1)
	cs.AddPair(1, 0, 0.11) // ψ(T1, s2)
	cs.AddPair(1, 1, 0.5)  // ψ(T2, s2)
	cs.AddPair(2, 1, 0.6)  // ψ(T2, s3)

	greedy, _ := tops.IncGreedy(cs, tops.GreedyOptions{K: 2})
	opt, _ := tops.Optimal(cs, tops.OptimalOptions{K: 2})
	fmt.Printf("greedy: sites %v utility %.1f\n", greedy.Selected, greedy.Utility)
	fmt.Printf("optimal: utility %.1f exact=%v\n", opt.Utility, opt.Exact)
	// Output:
	// greedy: sites [1 0] utility 0.9
	// optimal: utility 1.0 exact=true
}

// ExampleBinary shows the binary preference of Definition 3: a site either
// covers a trajectory (detour within τ) or contributes nothing.
func ExampleBinary() {
	pref := tops.Binary(0.8)
	fmt.Println(pref.Score(0.5), pref.Score(0.8), pref.Score(0.81))
	// Output: 1 1 0
}

// ExampleCostGreedy solves a budgeted placement (TOPS-COST, §7.1): the
// classic trap where the best ratio site exhausts nothing of the budget
// but the single-site augmentation rescues the solution.
func ExampleCostGreedy() {
	cs := tops.NewCoverSets(2, 4)
	cs.AddPair(0, 0, 1)
	for t := int32(1); t < 4; t++ {
		cs.AddPair(1, t, 1)
	}
	res, _ := tops.CostGreedy(cs, tops.CostOptions{
		Costs:  []float64{1, 4},
		Budget: 4,
	})
	fmt.Printf("selected %v covering %d trajectories\n", res.Selected, res.Covered)
	// Output: selected [1] covering 3 trajectories
}
