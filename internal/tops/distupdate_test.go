package tops

import (
	"math"
	"testing"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

func TestDistIndexAddTrajectoryMatchesRebuild(t *testing.T) {
	inst, _ := gridInstance(t, 400, 30, 40, 91)
	const dmax = 3.0
	idx, err := BuildDistanceIndex(inst, dmax)
	if err != nil {
		t.Fatal(err)
	}
	// Add clones of the first five trajectories through the update path.
	var clones []*trajectory.Trajectory
	for i := 0; i < 5; i++ {
		tr, err := trajectory.New(inst.G, inst.Trajs.Get(trajectory.ID(i)).Nodes)
		if err != nil {
			t.Fatal(err)
		}
		clones = append(clones, tr)
	}
	for _, tr := range clones {
		tid := inst.Trajs.Add(tr)
		if err := idx.AddTrajectory(tid, tr); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild from scratch over the extended store; the incremental index
	// must match pair for pair.
	fresh, err := BuildDistanceIndex(inst, dmax)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Pairs() != idx.Pairs() {
		t.Fatalf("pair counts differ: incremental %d vs rebuild %d", idx.Pairs(), fresh.Pairs())
	}
	for tid := 0; tid < inst.M(); tid++ {
		a := idx.TrajPairs(trajectory.ID(tid))
		b := fresh.TrajPairs(trajectory.ID(tid))
		if len(a) != len(b) {
			t.Fatalf("trajectory %d: %d vs %d pairs", tid, len(a), len(b))
		}
		for i := range a {
			if a[i].Site != b[i].Site || math.Abs(a[i].Dr-b[i].Dr) > 1e-9 {
				t.Fatalf("trajectory %d pair %d differs: %+v vs %+v", tid, i, a[i], b[i])
			}
		}
	}
	// Site-side lists stay sorted.
	for s := 0; s < inst.N(); s++ {
		pairs := idx.SitePairs(SiteID(s))
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Dr < pairs[i-1].Dr {
				t.Fatal("site pairs unsorted after incremental add")
			}
		}
	}
}

func TestDistIndexAddRemoveRoundTrip(t *testing.T) {
	inst, _ := gridInstance(t, 300, 20, 30, 93)
	idx, err := BuildDistanceIndex(inst, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	before := idx.Pairs()
	tr, err := trajectory.New(inst.G, inst.Trajs.Get(0).Nodes)
	if err != nil {
		t.Fatal(err)
	}
	tid := inst.Trajs.Add(tr)
	if err := idx.AddTrajectory(tid, tr); err != nil {
		t.Fatal(err)
	}
	if idx.Pairs() <= before {
		t.Fatal("add did not grow the index")
	}
	if err := idx.RemoveTrajectory(tid); err != nil {
		t.Fatal(err)
	}
	if idx.Pairs() != before {
		t.Fatalf("pairs after round trip: %d, want %d", idx.Pairs(), before)
	}
	if len(idx.TrajPairs(tid)) != 0 {
		t.Error("removed trajectory still has pairs")
	}
}

func TestDistIndexAddTrajectoryValidation(t *testing.T) {
	inst, _ := gridInstance(t, 200, 10, 10, 95)
	idx, err := BuildDistanceIndex(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.AddTrajectory(trajectory.ID(inst.M()), nil); err == nil {
		t.Error("nil trajectory accepted")
	}
	tr, _ := trajectory.New(inst.G, inst.Trajs.Get(0).Nodes)
	if err := idx.AddTrajectory(trajectory.ID(inst.M()+5), tr); err == nil {
		t.Error("out-of-sequence id accepted")
	}
	bad := &trajectory.Trajectory{Nodes: []roadnet.NodeID{99999}, CumDist: []float64{0}}
	if err := idx.AddTrajectory(trajectory.ID(inst.M()), bad); err == nil {
		t.Error("out-of-graph trajectory accepted")
	}
	if err := idx.RemoveTrajectory(trajectory.ID(9999)); err == nil {
		t.Error("out-of-range removal accepted")
	}
}
