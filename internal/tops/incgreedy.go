package tops

import (
	"container/heap"
	"fmt"
	"math"
)

// GreedyOptions configures IncGreedy.
type GreedyOptions struct {
	// K is the number of sites to select.
	K int
	// Lazy switches to lazy (CELF-style) marginal re-evaluation instead of
	// the paper's incremental α-update scheme. Both return a greedy
	// maximizer; Lazy trades the SC-side bookkeeping for on-demand TC
	// scans and is benchmarked as an ablation.
	Lazy bool
	// InitialSites seeds the selection with existing service locations
	// (§7.3). They contribute baseline utility but do not count towards K
	// and are not reported in Selected.
	InitialSites []SiteID
	// TargetCoverage, when positive, turns the query into TOPS4 (§7.4):
	// selection continues until at least this fraction of the trajectory
	// universe is covered (positive utility), ignoring K, or until no site
	// adds coverage. Typically combined with the binary preference.
	TargetCoverage float64
}

// GreedyScratch holds every buffer plainGreedy needs, so a caller serving
// repeated queries can run the whole selection without allocating: after
// the buffers have grown to the instance size once, subsequent runs reuse
// them. A scratch must not be used by two greedy runs concurrently. The
// Result returned from a scratch-backed run aliases the scratch's Selected
// and UtilityPerIter buffers — valid until the scratch's next use.
type GreedyScratch struct {
	util     []float64
	marg     []float64
	selected []bool
	sel      []SiteID
	perIter  []float64
}

// prepare sizes the buffers for n sites over m trajectories and clears the
// state the greedy reads before writing (util and selected; marg is fully
// overwritten by the seeding pass).
func (g *GreedyScratch) prepare(n, m int) {
	if cap(g.util) < m {
		g.util = make([]float64, m)
	} else {
		g.util = g.util[:m]
		clear(g.util)
	}
	if cap(g.marg) < n {
		g.marg = make([]float64, n)
	} else {
		g.marg = g.marg[:n]
	}
	if cap(g.selected) < n {
		g.selected = make([]bool, n)
	} else {
		g.selected = g.selected[:n]
		clear(g.selected)
	}
}

// IncGreedy is the (1-1/e)-approximate greedy of §3.3 (Algorithm 1). It
// runs on pre-built cover sets, so it serves both the exact algorithm
// (cover sets from the full distance index) and NETCLUS (cover sets over
// cluster representatives).
func IncGreedy(cs *CoverSets, opts GreedyOptions) (Result, error) {
	return IncGreedyScratch(cs, opts, nil)
}

// IncGreedyScratch is IncGreedy running in caller-supplied scratch buffers:
// with a non-nil scratch the plain (non-lazy) greedy performs no heap
// allocation once the buffers have warmed to the instance size, and the
// returned Result's Selected and UtilityPerIter alias the scratch. A nil
// scratch behaves exactly like IncGreedy. The lazy variant ignores the
// scratch (it is an ablation arm, not a hot path).
func IncGreedyScratch(cs *CoverSets, opts GreedyOptions, scratch *GreedyScratch) (Result, error) {
	n := cs.N()
	if opts.TargetCoverage > 0 {
		if opts.TargetCoverage > 1 {
			return Result{}, fmt.Errorf("tops: target coverage %v > 1", opts.TargetCoverage)
		}
		opts.K = n
	}
	if opts.K <= 0 || opts.K > n {
		return Result{}, fmt.Errorf("tops: invalid k = %d for %d sites", opts.K, n)
	}
	for _, s := range opts.InitialSites {
		if int(s) < 0 || int(s) >= n {
			return Result{}, fmt.Errorf("tops: initial site %d out of range", s)
		}
	}
	if opts.Lazy {
		return lazyGreedy(cs, opts), nil
	}
	return plainGreedy(cs, opts, scratch), nil
}

// seedUtilities applies existing services and returns the per-trajectory
// utility baseline plus its sum (lazyGreedy's seeding; plainGreedy inlines
// the same loop over its scratch to stay allocation-free).
func seedUtilities(cs *CoverSets, initial []SiteID) ([]float64, float64, map[SiteID]bool) {
	cs.ensure()
	util := make([]float64, cs.M)
	existing := make(map[SiteID]bool, len(initial))
	for _, s := range initial {
		existing[s] = true
		trajs, scores := cs.TC(int32(s))
		for i, t := range trajs {
			if scores[i] > util[t] {
				util[t] = scores[i]
			}
		}
	}
	var base float64
	for _, u := range util {
		base += u
	}
	return util, base, existing
}

// plainGreedy is the paper's Algorithm 1: incremental marginal maintenance
// through the α_{ji} identities (α_{ji} = max(0, ψ_{ji} − U_j), kept
// implicit as the paper's update rule only needs the delta). The inner
// loops run over the CSR arrays directly: contiguous scans, no interface
// or bounds-escaping indirection.
func plainGreedy(cs *CoverSets, opts GreedyOptions, g *GreedyScratch) Result {
	cs.ensure()
	n := cs.N()
	if g == nil {
		g = &GreedyScratch{}
	}
	g.prepare(n, cs.M)
	util, marg, selected := g.util, g.marg, g.selected
	tcOff, tcTraj, tcScore := cs.tcOff, cs.tcTraj, cs.tcScore
	scOff, scSite, scScore := cs.scOff, cs.scSite, cs.scScore
	weights := cs.Weights

	// Seed the baseline from existing services (§7.3) and count coverage.
	// The float-op order matches the former seedUtilities exactly: apply
	// sites in the caller's order, then sum util left to right.
	var base float64
	covered := 0
	for _, s := range opts.InitialSites {
		selected[s] = true
		for i := tcOff[s]; i < tcOff[int(s)+1]; i++ {
			if t := tcTraj[i]; tcScore[i] > util[t] {
				util[t] = tcScore[i]
			}
		}
	}
	if len(opts.InitialSites) > 0 {
		for _, u := range util {
			base += u
		}
		covered = countCovered(util)
	}

	// marg[s] = Σ_{T ∈ TC(s)} max(0, ψ − U_T); with no existing services
	// this equals the site weight w_s — bit-exactly when every score is
	// positive, because both are the same left-to-right sum — so the
	// common case seeds with one copy instead of scanning every pair.
	if len(opts.InitialSites) == 0 && cs.allPositive {
		copy(marg, weights)
	} else {
		for s := 0; s < n; s++ {
			var m float64
			for i := tcOff[s]; i < tcOff[s+1]; i++ {
				if d := tcScore[i] - util[tcTraj[i]]; d > 0 {
					m += d
				}
			}
			marg[s] = m
		}
	}

	res := Result{Utility: base, Selected: g.sel[:0], UtilityPerIter: g.perIter[:0]}
	for len(res.Selected) < opts.K {
		if opts.TargetCoverage > 0 && float64(covered) >= opts.TargetCoverage*float64(cs.M) {
			break
		}
		// Argmax under the exact (marginal, weight, index) tie-break. The
		// incumbent's key stays in locals; with an ascending scan s > best
		// always holds, so greaterSite's final higher-index tie-break
		// always prefers s and the test reduces to m > bm || (m == bm &&
		// w >= bw) — equivalent to greaterSite for every float (including
		// NaN, where both keep the incumbent).
		best := -1
		var bestMarg, bestWeight float64
		for s := 0; s < n; s++ {
			if selected[s] {
				continue
			}
			m := marg[s]
			if best >= 0 && !(m > bestMarg || (m == bestMarg && weights[s] >= bestWeight)) {
				continue
			}
			best, bestMarg, bestWeight = s, m, weights[s]
		}
		if best < 0 {
			break // everything selected
		}
		if opts.TargetCoverage > 0 && marg[best] <= 0 {
			break // no site adds coverage; target unreachable
		}
		selected[best] = true
		res.Selected = append(res.Selected, SiteID(best))
		res.Utility += marg[best]
		// Update trajectory utilities and propagate marginal deltas to the
		// other covering sites (lines 11–17 of Algorithm 1). The scatter
		// deliberately writes stale deltas into already-selected sites'
		// marg slots too: those slots are dead (the argmax skips selected
		// sites and marg[best] is read before selection), and dropping the
		// selected[ss] load removes a random byte access per covering
		// pair from the hottest loop in the query path. The re-sliced
		// segments let the compiler drop the per-element bounds checks.
		trajs := tcTraj[tcOff[best]:tcOff[best+1]]
		tscores := tcScore[tcOff[best] : tcOff[best]+int32(len(trajs))]
		for i, t := range trajs {
			oldU := util[t]
			if tscores[i] <= oldU {
				continue
			}
			newU := tscores[i]
			util[t] = newU
			if oldU == 0 {
				covered++
			}
			sites := scSite[scOff[t]:scOff[t+1]]
			scores := scScore[scOff[t] : scOff[t]+int32(len(sites))]
			for j, ss := range sites {
				oldGain := scores[j] - oldU
				if oldGain <= 0 {
					continue
				}
				newGain := scores[j] - newU
				if newGain < 0 {
					newGain = 0
				}
				marg[ss] -= oldGain - newGain
			}
		}
		marg[best] = 0
		res.UtilityPerIter = append(res.UtilityPerIter, res.Utility)
	}
	res.Covered = covered
	// Keep any growth the appends produced for the scratch's next run.
	g.sel, g.perIter = res.Selected, res.UtilityPerIter
	return res
}

// siteHeap is a max-heap of (marginal, weight, site) used by lazyGreedy.
type siteHeapItem struct {
	site  int32
	marg  float64
	stamp int32 // iteration at which marg was computed
}

type siteHeap []siteHeapItem

func (h siteHeap) Len() int { return len(h) }
func (h siteHeap) Less(i, j int) bool {
	if h[i].marg != h[j].marg {
		return h[i].marg > h[j].marg
	}
	return h[i].site > h[j].site
}
func (h siteHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *siteHeap) Push(x any)       { *h = append(*h, x.(siteHeapItem)) }
func (h *siteHeap) Pop() any         { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h siteHeap) peekMarg() float64 { return h[0].marg }

// lazyGreedy exploits submodularity: marginals only shrink, so a stale
// heap value is an upper bound and a popped site whose value is fresh for
// the current iteration is the true argmax (CELF).
func lazyGreedy(cs *CoverSets, opts GreedyOptions) Result {
	cs.ensure()
	n := cs.N()
	util, base, existing := seedUtilities(cs, opts.InitialSites)
	tcOff, tcTraj, tcScore := cs.tcOff, cs.tcTraj, cs.tcScore

	evalMarg := func(s int32) float64 {
		var m float64
		for i := tcOff[s]; i < tcOff[s+1]; i++ {
			if g := tcScore[i] - util[tcTraj[i]]; g > 0 {
				m += g
			}
		}
		return m
	}
	h := make(siteHeap, 0, n)
	for s := 0; s < n; s++ {
		if existing[SiteID(s)] {
			continue
		}
		h = append(h, siteHeapItem{site: int32(s), marg: evalMarg(int32(s)), stamp: 0})
	}
	heap.Init(&h)

	res := Result{Utility: base}
	covered := countCovered(util)
	for iter := int32(1); len(res.Selected) < opts.K && h.Len() > 0; {
		if opts.TargetCoverage > 0 && float64(covered) >= opts.TargetCoverage*float64(cs.M) {
			break
		}
		top := heap.Pop(&h).(siteHeapItem)
		if top.stamp != iter {
			top.marg = evalMarg(top.site)
			top.stamp = iter
			if h.Len() > 0 && top.marg < h.peekMarg() {
				heap.Push(&h, top)
				continue
			}
		}
		if opts.TargetCoverage > 0 && top.marg <= 0 {
			break
		}
		res.Selected = append(res.Selected, SiteID(top.site))
		res.Utility += top.marg
		for i := tcOff[top.site]; i < tcOff[top.site+1]; i++ {
			t := tcTraj[i]
			if tcScore[i] > util[t] {
				if util[t] == 0 {
					covered++
				}
				util[t] = tcScore[i]
			}
		}
		res.UtilityPerIter = append(res.UtilityPerIter, res.Utility)
		iter++
	}
	res.Covered = covered
	return res
}

// GreaterSite exposes the greedy's site total order for distributed
// implementations (internal/shard's gather reduces per-shard argmax
// candidates under exactly this comparator, which is what makes the
// scatter-gather selection identical to plainGreedy's scan).
func GreaterSite(m1, w1 float64, s1 int, m2, w2 float64, s2 int) bool {
	return greaterSite(m1, w1, s1, m2, w2, s2)
}

// greaterSite implements the paper's tie-breaking: larger marginal first,
// then larger weight, then higher index.
func greaterSite(m1, w1 float64, s1 int, m2, w2 float64, s2 int) bool {
	if m1 != m2 {
		return m1 > m2
	}
	if w1 != w2 {
		return w1 > w2
	}
	return s1 > s2
}

func countCovered(util []float64) int {
	c := 0
	for _, u := range util {
		if u > 0 {
			c++
		}
	}
	return c
}

// GreedyUpperBoundGap returns the worst-case optimality gap of a greedy
// result given Theorem 3: U(greedy) >= max{1-1/e, k/n}·OPT.
func GreedyUpperBoundGap(k, n int) float64 {
	bound := 1 - 1/math.E
	if kn := float64(k) / float64(n); kn > bound {
		bound = kn
	}
	return bound
}
