package tops

import (
	"container/heap"
	"fmt"
	"math"
)

// GreedyOptions configures IncGreedy.
type GreedyOptions struct {
	// K is the number of sites to select.
	K int
	// Lazy switches to lazy (CELF-style) marginal re-evaluation instead of
	// the paper's incremental α-update scheme. Both return a greedy
	// maximizer; Lazy trades the SC-side bookkeeping for on-demand TC
	// scans and is benchmarked as an ablation.
	Lazy bool
	// InitialSites seeds the selection with existing service locations
	// (§7.3). They contribute baseline utility but do not count towards K
	// and are not reported in Selected.
	InitialSites []SiteID
	// TargetCoverage, when positive, turns the query into TOPS4 (§7.4):
	// selection continues until at least this fraction of the trajectory
	// universe is covered (positive utility), ignoring K, or until no site
	// adds coverage. Typically combined with the binary preference.
	TargetCoverage float64
}

// IncGreedy is the (1-1/e)-approximate greedy of §3.3 (Algorithm 1). It
// runs on pre-built cover sets, so it serves both the exact algorithm
// (cover sets from the full distance index) and NETCLUS (cover sets over
// cluster representatives).
func IncGreedy(cs *CoverSets, opts GreedyOptions) (Result, error) {
	n := cs.N()
	if opts.TargetCoverage > 0 {
		if opts.TargetCoverage > 1 {
			return Result{}, fmt.Errorf("tops: target coverage %v > 1", opts.TargetCoverage)
		}
		opts.K = n
	}
	if opts.K <= 0 || opts.K > n {
		return Result{}, fmt.Errorf("tops: invalid k = %d for %d sites", opts.K, n)
	}
	for _, s := range opts.InitialSites {
		if int(s) < 0 || int(s) >= n {
			return Result{}, fmt.Errorf("tops: initial site %d out of range", s)
		}
	}
	if opts.Lazy {
		return lazyGreedy(cs, opts), nil
	}
	return plainGreedy(cs, opts), nil
}

// seedUtilities applies existing services and returns the per-trajectory
// utility baseline plus its sum.
func seedUtilities(cs *CoverSets, initial []SiteID) ([]float64, float64, map[SiteID]bool) {
	util := make([]float64, cs.M)
	existing := make(map[SiteID]bool, len(initial))
	for _, s := range initial {
		existing[s] = true
		for _, st := range cs.TC[s] {
			if st.Score > util[st.Traj] {
				util[st.Traj] = st.Score
			}
		}
	}
	var base float64
	for _, u := range util {
		base += u
	}
	return util, base, existing
}

// plainGreedy is the paper's Algorithm 1: incremental marginal maintenance
// through the α_{ji} identities (α_{ji} = max(0, ψ_{ji} − U_j), kept
// implicit as the paper's update rule only needs the delta).
func plainGreedy(cs *CoverSets, opts GreedyOptions) Result {
	n := cs.N()
	util, base, existing := seedUtilities(cs, opts.InitialSites)

	// marg[s] = Σ_{T ∈ TC(s)} max(0, ψ − U_T); with no existing services
	// this equals the site weight w_s.
	marg := make([]float64, n)
	for s := 0; s < n; s++ {
		var m float64
		for _, st := range cs.TC[s] {
			if g := st.Score - util[st.Traj]; g > 0 {
				m += g
			}
		}
		marg[s] = m
	}
	selected := make([]bool, n)
	for s := range existing {
		selected[s] = true
	}

	res := Result{Utility: base}
	covered := countCovered(util)
	for len(res.Selected) < opts.K {
		if opts.TargetCoverage > 0 && float64(covered) >= opts.TargetCoverage*float64(cs.M) {
			break
		}
		best := -1
		for s := 0; s < n; s++ {
			if selected[s] {
				continue
			}
			if best < 0 || greaterSite(marg[s], cs.Weights[s], s, marg[best], cs.Weights[best], best) {
				best = s
			}
		}
		if best < 0 {
			break // everything selected
		}
		if opts.TargetCoverage > 0 && marg[best] <= 0 {
			break // no site adds coverage; target unreachable
		}
		selected[best] = true
		res.Selected = append(res.Selected, SiteID(best))
		res.Utility += marg[best]
		// Update trajectory utilities and propagate marginal deltas to the
		// other covering sites (lines 11–17 of Algorithm 1).
		for _, st := range cs.TC[best] {
			oldU := util[st.Traj]
			if st.Score <= oldU {
				continue
			}
			newU := st.Score
			util[st.Traj] = newU
			if oldU == 0 {
				covered++
			}
			for _, ss := range cs.SC[st.Traj] {
				if selected[ss.Site] {
					continue
				}
				oldGain := ss.Score - oldU
				if oldGain <= 0 {
					continue
				}
				newGain := ss.Score - newU
				if newGain < 0 {
					newGain = 0
				}
				marg[ss.Site] -= oldGain - newGain
			}
		}
		marg[best] = 0
		res.UtilityPerIter = append(res.UtilityPerIter, res.Utility)
	}
	res.Covered = covered
	return res
}

// siteHeap is a max-heap of (marginal, weight, site) used by lazyGreedy.
type siteHeapItem struct {
	site  int32
	marg  float64
	stamp int32 // iteration at which marg was computed
}

type siteHeap []siteHeapItem

func (h siteHeap) Len() int { return len(h) }
func (h siteHeap) Less(i, j int) bool {
	if h[i].marg != h[j].marg {
		return h[i].marg > h[j].marg
	}
	return h[i].site > h[j].site
}
func (h siteHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *siteHeap) Push(x any)       { *h = append(*h, x.(siteHeapItem)) }
func (h *siteHeap) Pop() any         { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h siteHeap) peekMarg() float64 { return h[0].marg }

// lazyGreedy exploits submodularity: marginals only shrink, so a stale
// heap value is an upper bound and a popped site whose value is fresh for
// the current iteration is the true argmax (CELF).
func lazyGreedy(cs *CoverSets, opts GreedyOptions) Result {
	n := cs.N()
	util, base, existing := seedUtilities(cs, opts.InitialSites)

	evalMarg := func(s int32) float64 {
		var m float64
		for _, st := range cs.TC[s] {
			if g := st.Score - util[st.Traj]; g > 0 {
				m += g
			}
		}
		return m
	}
	h := make(siteHeap, 0, n)
	for s := 0; s < n; s++ {
		if existing[SiteID(s)] {
			continue
		}
		h = append(h, siteHeapItem{site: int32(s), marg: evalMarg(int32(s)), stamp: 0})
	}
	heap.Init(&h)

	res := Result{Utility: base}
	covered := countCovered(util)
	for iter := int32(1); len(res.Selected) < opts.K && h.Len() > 0; {
		if opts.TargetCoverage > 0 && float64(covered) >= opts.TargetCoverage*float64(cs.M) {
			break
		}
		top := heap.Pop(&h).(siteHeapItem)
		if top.stamp != iter {
			top.marg = evalMarg(top.site)
			top.stamp = iter
			if h.Len() > 0 && top.marg < h.peekMarg() {
				heap.Push(&h, top)
				continue
			}
		}
		if opts.TargetCoverage > 0 && top.marg <= 0 {
			break
		}
		res.Selected = append(res.Selected, SiteID(top.site))
		res.Utility += top.marg
		for _, st := range cs.TC[top.site] {
			if st.Score > util[st.Traj] {
				if util[st.Traj] == 0 {
					covered++
				}
				util[st.Traj] = st.Score
			}
		}
		res.UtilityPerIter = append(res.UtilityPerIter, res.Utility)
		iter++
	}
	res.Covered = covered
	return res
}

// GreaterSite exposes the greedy's site total order for distributed
// implementations (internal/shard's gather reduces per-shard argmax
// candidates under exactly this comparator, which is what makes the
// scatter-gather selection identical to plainGreedy's scan).
func GreaterSite(m1, w1 float64, s1 int, m2, w2 float64, s2 int) bool {
	return greaterSite(m1, w1, s1, m2, w2, s2)
}

// greaterSite implements the paper's tie-breaking: larger marginal first,
// then larger weight, then higher index.
func greaterSite(m1, w1 float64, s1 int, m2, w2 float64, s2 int) bool {
	if m1 != m2 {
		return m1 > m2
	}
	if w1 != w2 {
		return w1 > w2
	}
	return s1 > s2
}

func countCovered(util []float64) int {
	c := 0
	for _, u := range util {
		if u > 0 {
			c++
		}
	}
	return c
}

// GreedyUpperBoundGap returns the worst-case optimality gap of a greedy
// result given Theorem 3: U(greedy) >= max{1-1/e, k/n}·OPT.
func GreedyUpperBoundGap(k, n int) float64 {
	bound := 1 - 1/math.E
	if kn := float64(k) / float64(n); kn > bound {
		bound = kn
	}
	return bound
}
