package tops

import (
	"fmt"
	"math"
	"sort"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// Incremental distance-index maintenance. §3.4 of the paper argues that
// INC-GREEDY "is not amenable to updates in trajectories and sites": adding
// a trajectory means computing and sorting its distance to every site.
// This file implements exactly that update so the claim is measurable (see
// the ablation-updatecost experiment) and so deployments that insist on
// the exact baseline can still absorb new trajectories without a rebuild.
//
// The cost asymmetry versus NETCLUS is structural: here an added
// trajectory runs two bounded searches per *trajectory node* to recover
// its distance to every site within the horizon, while NETCLUS only walks
// the trajectory through the precomputed clustering.

// AddTrajectory ingests a new trajectory into the index: its detour to
// every site within the horizon is computed and merged into both pair
// lists. Returns the id assigned by the store.
//
// The trajectory must already be in the instance's store (call
// inst.Trajs.Add first, or pass the result of that call). This mirrors how
// the NETCLUS update path shares the store.
func (idx *DistanceIndex) AddTrajectory(tid trajectory.ID, tr *trajectory.Trajectory) error {
	if tr == nil {
		return fmt.Errorf("tops: AddTrajectory: nil trajectory")
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("tops: AddTrajectory: %w", err)
	}
	if int(tid) != len(idx.trajPairs) {
		return fmt.Errorf("tops: AddTrajectory: id %d out of sequence (have %d)", tid, len(idx.trajPairs))
	}
	g := idx.inst.G
	for _, v := range tr.Nodes {
		if v < 0 || int(v) >= g.NumNodes() {
			return fmt.Errorf("tops: AddTrajectory: node %d outside graph", v)
		}
	}
	scratch := roadnet.NewScratch(g)

	// entry[x] = min over k of d(v_k, x) + cum_k  (prefix leg, via forward
	// searches from each trajectory node);
	// exit[x]  = min over l of d(x, v_l) − cum_l  (suffix leg, via reverse
	// searches). Detour(x) = entry[x] + exit[x] is a lower bound of the
	// true ordered detour; the exact ordered value is recovered per
	// candidate site with the O(l) scan, so we only use entry/exit to
	// prune the candidate site set.
	candidates := map[roadnet.NodeID]struct{}{}
	fwdByNode := make([]map[roadnet.NodeID]float64, tr.Len())
	revByNode := make([]map[roadnet.NodeID]float64, tr.Len())
	for i, v := range tr.Nodes {
		fwd := scratch.Bounded(g, v, roadnet.Forward, idx.MaxDetourKm)
		fwdByNode[i] = fwd.Dist
		rev := scratch.Bounded(g, v, roadnet.Reverse, idx.MaxDetourKm)
		revByNode[i] = rev.Dist
		for x := range fwd.Dist {
			candidates[x] = struct{}{}
		}
		for x := range rev.Dist {
			candidates[x] = struct{}{}
		}
	}
	// For each candidate site, assemble the per-node legs and run the
	// ordered detour scan. d(v_k, site) comes from the forward search of
	// v_k; d(site, v_l) from the reverse search of v_l.
	var added []SiteDist
	for si, node := range idx.inst.Sites {
		if _, ok := candidates[node]; !ok {
			continue
		}
		best := math.Inf(1)
		bestEntry := math.Inf(1)
		for l := range tr.Nodes {
			if dIn, ok := fwdByNode[l][node]; ok { // d(v_l, site)
				if e := dIn + tr.CumDist[l]; e < bestEntry {
					bestEntry = e
				}
			}
			if math.IsInf(bestEntry, 1) {
				continue
			}
			if dOut, ok := revByNode[l][node]; ok { // d(site, v_l)
				if d := bestEntry + dOut - tr.CumDist[l]; d < best {
					best = d
				}
			}
		}
		if best < 0 {
			best = 0
		}
		if best <= idx.MaxDetourKm {
			added = append(added, SiteDist{Site: SiteID(si), Dr: best})
		}
	}
	sort.Slice(added, func(a, b int) bool {
		if added[a].Dr != added[b].Dr {
			return added[a].Dr < added[b].Dr
		}
		return added[a].Site < added[b].Site
	})
	idx.trajPairs = append(idx.trajPairs, added)
	for _, sd := range added {
		insertTrajDist(&idx.sitePairs[sd.Site], TrajDist{Traj: tid, Dr: sd.Dr})
		idx.pairs++
	}
	return nil
}

// insertTrajDist inserts into a detour-sorted list, preserving order.
func insertTrajDist(list *[]TrajDist, td TrajDist) {
	l := *list
	pos := sort.Search(len(l), func(i int) bool {
		if l[i].Dr != td.Dr {
			return l[i].Dr > td.Dr
		}
		return l[i].Traj > td.Traj
	})
	l = append(l, TrajDist{})
	copy(l[pos+1:], l[pos:])
	l[pos] = td
	*list = l
}

// RemoveTrajectory deletes every pair of the given trajectory from the
// index. The id keeps its slot (empty) so later ids stay stable.
func (idx *DistanceIndex) RemoveTrajectory(tid trajectory.ID) error {
	if int(tid) < 0 || int(tid) >= len(idx.trajPairs) {
		return fmt.Errorf("tops: RemoveTrajectory: id %d out of range", tid)
	}
	for _, sd := range idx.trajPairs[tid] {
		list := idx.sitePairs[sd.Site]
		for i := range list {
			if list[i].Traj == tid {
				idx.sitePairs[sd.Site] = append(list[:i], list[i+1:]...)
				idx.pairs--
				break
			}
		}
	}
	idx.trajPairs[tid] = nil
	return nil
}
