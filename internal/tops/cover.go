package tops

import (
	"fmt"
	"math"
)

// ScoredTraj is one member of a trajectory-cover set TC(s): a trajectory
// covered by the site together with its preference score ψ(T, s). The query
// hot path stores cover sets in flat parallel arrays (see CoverSets); this
// struct survives as the exchange type for algorithms that materialize
// per-trajectory gain lists (TOPS-CAPACITY's top-α selection).
type ScoredTraj struct {
	Traj  int32
	Score float64
}

// CoverSets holds the query-time covering structures of §3.2: for every
// site the trajectories it covers (TC) and for every trajectory the sites
// covering it (SC), with preference scores already evaluated, plus the site
// weights w_i = Σ ψ(T_j, s_i). The structure is deliberately decoupled from
// Instance so that NETCLUS can instantiate it over cluster representatives
// with estimated distances (§5.1) and reuse the same greedy machinery.
//
// Layout: the lists live in struct-of-arrays (CSR) form — one flat int32
// id array and one flat float64 score array per direction, indexed by
// offset tables — so a greedy sweep over every TC entry is a contiguous
// scan instead of a pointer chase through per-site slices. Construction
// goes through a staging phase (AddPair / SetTCArrays) and is sealed by
// Finalize, which flattens the staged lists and derives the SC side; the
// read accessors finalize lazily on first use. A finalized CoverSets is
// immutable and safe for concurrent readers; Finalize itself must not race
// with readers (parallel builders call it before sharing, as fillCover
// does).
type CoverSets struct {
	// M is the size of the trajectory universe; trajectory ids in TC are
	// indices in [0, M).
	M int
	// Weights[s] is the site weight w_s.
	Weights []float64

	// Finalized CSR arrays: site s's TC list is tcTraj/tcScore[tcOff[s] :
	// tcOff[s+1]], trajectory t's SC list is scSite/scScore[scOff[t] :
	// scOff[t+1]]. SC lists are ordered by ascending site id — the order
	// the former RebuildSC derivation produced, which the greedy's
	// bit-exactness contract relies on only insofar as every SC-driven
	// marginal update touches a distinct site slot (order-independent).
	tcOff   []int32
	tcTraj  []int32
	tcScore []float64
	scOff   []int32
	scSite  []int32
	scScore []float64
	// allPositive records that every stored score is > 0. Algorithm 1's
	// initial marginal of site s is then bit-identical to Weights[s]
	// (both are the same left-to-right sum over the same values), letting
	// the greedy seed its marginals with one O(n) copy instead of an
	// O(pairs) scan.
	allPositive bool
	final       bool

	// Staging: per-site id/score lists before Finalize.
	stTraj  [][]int32
	stScore [][]float64
}

// N returns the number of sites.
func (cs *CoverSets) N() int { return len(cs.Weights) }

// NewCoverSets allocates empty cover sets for n sites over m trajectories.
func NewCoverSets(n, m int) *CoverSets {
	return &CoverSets{
		M:       m,
		Weights: make([]float64, n),
		stTraj:  make([][]int32, n),
		stScore: make([][]float64, n),
	}
}

// AddPair registers that site s covers trajectory t with the given score.
// Callers are responsible for not adding duplicates. Panics after Finalize.
func (cs *CoverSets) AddPair(s, t int32, score float64) {
	cs.mutable()
	cs.stTraj[s] = append(cs.stTraj[s], t)
	cs.stScore[s] = append(cs.stScore[s], score)
	cs.Weights[s] += score
}

// SetTCArrays installs site s's complete trajectory list wholesale,
// replacing any previous entries and recomputing the site weight. It exists
// for parallel cover builders: workers fill disjoint sites concurrently
// (the slices are borrowed, not copied, until Finalize copies them into the
// flat arrays), then a single Finalize pass seals the structure and derives
// the trajectory-side lists. The caller must not mutate the slices before
// Finalize. Panics after Finalize.
func (cs *CoverSets) SetTCArrays(s int32, trajs []int32, scores []float64) {
	cs.mutable()
	cs.stTraj[s] = trajs[:len(trajs):len(trajs)]
	cs.stScore[s] = scores[:len(scores):len(scores)]
	var w float64
	for _, sc := range scores {
		w += sc
	}
	cs.Weights[s] = w
}

func (cs *CoverSets) mutable() {
	if cs.final {
		panic("tops: CoverSets mutated after Finalize")
	}
}

// Finalize flattens the staged lists into the CSR arrays and derives every
// SC list from TC, releasing the staging storage. It is idempotent; the
// read accessors call it lazily, so explicit calls only matter before
// sharing the structure across goroutines.
func (cs *CoverSets) Finalize() {
	if cs.final {
		return
	}
	n := len(cs.Weights)
	total := 0
	for s := range cs.stTraj {
		total += len(cs.stTraj[s])
	}
	if total > math.MaxInt32 {
		panic(fmt.Sprintf("tops: %d covering pairs overflow the int32 offset table", total))
	}
	cs.tcOff = make([]int32, n+1)
	cs.tcTraj = make([]int32, total)
	cs.tcScore = make([]float64, total)
	counts := make([]int32, cs.M)
	allPos := true
	off := int32(0)
	for s := 0; s < n; s++ {
		cs.tcOff[s] = off
		tr, sv := cs.stTraj[s], cs.stScore[s]
		copy(cs.tcTraj[off:], tr)
		copy(cs.tcScore[off:], sv)
		for i, t := range tr {
			counts[t]++
			if sv[i] <= 0 {
				allPos = false
			}
		}
		off += int32(len(tr))
	}
	cs.tcOff[n] = off
	cs.allPositive = allPos

	// SC side: prefix sums over per-trajectory counts, then a fill in
	// ascending site order (identical to the former RebuildSC order).
	cs.scOff = make([]int32, cs.M+1)
	var acc int32
	for t := 0; t < cs.M; t++ {
		cs.scOff[t] = acc
		acc += counts[t]
	}
	cs.scOff[cs.M] = acc
	cs.scSite = make([]int32, acc)
	cs.scScore = make([]float64, acc)
	next := counts // reuse as write cursors
	for t := 0; t < cs.M; t++ {
		next[t] = cs.scOff[t]
	}
	for s := 0; s < n; s++ {
		for i := cs.tcOff[s]; i < cs.tcOff[s+1]; i++ {
			t := cs.tcTraj[i]
			j := next[t]
			next[t]++
			cs.scSite[j] = int32(s)
			cs.scScore[j] = cs.tcScore[i]
		}
	}
	cs.stTraj, cs.stScore = nil, nil
	cs.final = true
}

func (cs *CoverSets) ensure() {
	if !cs.final {
		cs.Finalize()
	}
}

// TC returns site s's trajectory list as parallel id/score slices. The
// slices are views into the flat arrays: zero-copy, read-only.
func (cs *CoverSets) TC(s int32) ([]int32, []float64) {
	cs.ensure()
	lo, hi := cs.tcOff[s], cs.tcOff[s+1]
	return cs.tcTraj[lo:hi], cs.tcScore[lo:hi]
}

// SC returns trajectory t's covering-site list as parallel id/score slices
// (ascending site id). The slices are views into the flat arrays.
func (cs *CoverSets) SC(t int32) ([]int32, []float64) {
	cs.ensure()
	lo, hi := cs.scOff[t], cs.scOff[t+1]
	return cs.scSite[lo:hi], cs.scScore[lo:hi]
}

// TCLen returns |TC(s)| without materializing the lists.
func (cs *CoverSets) TCLen(s int32) int {
	if cs.final {
		return int(cs.tcOff[s+1] - cs.tcOff[s])
	}
	return len(cs.stTraj[s])
}

// SCLen returns |SC(t)|.
func (cs *CoverSets) SCLen(t int32) int {
	cs.ensure()
	return int(cs.scOff[t+1] - cs.scOff[t])
}

// AllPositiveScores reports whether every stored score is > 0 — the
// precondition for seeding Algorithm 1's marginals straight from Weights.
func (cs *CoverSets) AllPositiveScores() bool {
	cs.ensure()
	return cs.allPositive
}

// Pairs returns the total number of (site, trajectory) covering pairs.
func (cs *CoverSets) Pairs() int {
	if cs.final {
		return len(cs.tcTraj)
	}
	total := 0
	for s := range cs.stTraj {
		total += len(cs.stTraj[s])
	}
	return total
}

// MemoryBytes estimates the resident size of the covering sets. Table 9 of
// the paper tracks exactly this growth with τ. A CSR entry is 12 bytes
// (int32 id + float64 score) per direction, plus the offset tables and
// weights.
func (cs *CoverSets) MemoryBytes() int64 {
	const entryBytes = 12
	pairs := int64(cs.Pairs())
	offsets := int64(len(cs.Weights)+1+cs.M+1) * 4
	return pairs*2*entryBytes + offsets + int64(len(cs.Weights))*8
}

// BuildCoverSets evaluates the preference function against the distance
// index and materializes TC, SC and the site weights for a query. It
// requires τ <= MaxDetourKm of the index: beyond that the index has no
// information, mirroring the paper's pre-computation horizon.
func BuildCoverSets(idx *DistanceIndex, pref Preference) (*CoverSets, error) {
	if err := pref.Validate(); err != nil {
		return nil, err
	}
	tau := pref.Tau
	if !math.IsInf(tau, 1) && tau > idx.MaxDetourKm {
		return nil, fmt.Errorf("tops: τ = %v exceeds index horizon %v km", tau, idx.MaxDetourKm)
	}
	cs := NewCoverSets(idx.inst.N(), idx.inst.M())
	for s := range idx.sitePairs {
		for _, p := range idx.sitePairs[s] {
			if p.Dr > tau {
				break // lists are sorted by detour: prefix scan
			}
			score := pref.Score(p.Dr)
			if score == 0 && pref.F == nil {
				continue
			}
			cs.AddPair(int32(s), int32(p.Traj), score)
		}
	}
	cs.Finalize()
	return cs, nil
}

// EvaluateSelection computes the exact utility and covered-trajectory count
// of an arbitrary site selection against the cover sets.
func EvaluateSelection(cs *CoverSets, selected []SiteID) (float64, int) {
	util := make(map[int32]float64, 256)
	for _, s := range selected {
		trajs, scores := cs.TC(int32(s))
		for i, t := range trajs {
			if scores[i] > util[t] {
				util[t] = scores[i]
			}
		}
	}
	var total float64
	covered := 0
	for _, u := range util {
		total += u
		if u > 0 {
			covered++
		}
	}
	return total, covered
}
