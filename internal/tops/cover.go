package tops

import (
	"fmt"
	"math"
)

// ScoredTraj is one member of a trajectory-cover set TC(s): a trajectory
// covered by the site together with its preference score ψ(T, s).
type ScoredTraj struct {
	Traj  int32
	Score float64
}

// ScoredSite is one member of a site-cover set SC(T).
type ScoredSite struct {
	Site  int32
	Score float64
}

// CoverSets holds the query-time covering structures of §3.2: for every
// site the trajectories it covers (TC) and for every trajectory the sites
// covering it (SC), with preference scores already evaluated, plus the site
// weights w_i = Σ ψ(T_j, s_i). The structure is deliberately decoupled from
// Instance so that NETCLUS can instantiate it over cluster representatives
// with estimated distances (§5.1) and reuse the same greedy machinery.
type CoverSets struct {
	// M is the size of the trajectory universe; trajectory ids in TC are
	// indices in [0, M).
	M int
	// TC[s] lists covered trajectories of site s.
	TC [][]ScoredTraj
	// SC[t] lists covering sites of trajectory t.
	SC [][]ScoredSite
	// Weights[s] is the site weight w_s.
	Weights []float64
}

// N returns the number of sites.
func (cs *CoverSets) N() int { return len(cs.TC) }

// NewCoverSets allocates empty cover sets for n sites over m trajectories.
func NewCoverSets(n, m int) *CoverSets {
	return &CoverSets{
		M:       m,
		TC:      make([][]ScoredTraj, n),
		SC:      make([][]ScoredSite, m),
		Weights: make([]float64, n),
	}
}

// AddPair registers that site s covers trajectory t with the given score.
// Callers are responsible for not adding duplicates.
func (cs *CoverSets) AddPair(s, t int32, score float64) {
	cs.TC[s] = append(cs.TC[s], ScoredTraj{Traj: t, Score: score})
	cs.SC[t] = append(cs.SC[t], ScoredSite{Site: s, Score: score})
	cs.Weights[s] += score
}

// SetTC installs site s's complete trajectory list wholesale, replacing any
// previous entries and recomputing the site weight. It exists for parallel
// cover builders: workers fill disjoint TC slots concurrently, then a single
// RebuildSC pass derives the trajectory-side lists. SC is NOT updated here.
func (cs *CoverSets) SetTC(s int32, tc []ScoredTraj) {
	cs.TC[s] = tc
	var w float64
	for _, st := range tc {
		w += st.Score
	}
	cs.Weights[s] = w
}

// RebuildSC recomputes every SC list from TC. Call once after a sequence of
// SetTC installs; AddPair-built cover sets never need it.
func (cs *CoverSets) RebuildSC() {
	counts := make([]int32, len(cs.SC))
	for _, tc := range cs.TC {
		for _, st := range tc {
			counts[st.Traj]++
		}
	}
	for t := range cs.SC {
		if counts[t] == 0 {
			cs.SC[t] = nil
			continue
		}
		cs.SC[t] = make([]ScoredSite, 0, counts[t])
	}
	for s, tc := range cs.TC {
		for _, st := range tc {
			cs.SC[st.Traj] = append(cs.SC[st.Traj], ScoredSite{Site: int32(s), Score: st.Score})
		}
	}
}

// Pairs returns the total number of (site, trajectory) covering pairs.
func (cs *CoverSets) Pairs() int {
	total := 0
	for _, tc := range cs.TC {
		total += len(tc)
	}
	return total
}

// MemoryBytes estimates the resident size of the covering sets. Table 9 of
// the paper tracks exactly this growth with τ.
func (cs *CoverSets) MemoryBytes() int64 {
	const entryBytes = 16
	return int64(cs.Pairs())*2*entryBytes + int64(len(cs.Weights))*8
}

// BuildCoverSets evaluates the preference function against the distance
// index and materializes TC, SC and the site weights for a query. It
// requires τ <= MaxDetourKm of the index: beyond that the index has no
// information, mirroring the paper's pre-computation horizon.
func BuildCoverSets(idx *DistanceIndex, pref Preference) (*CoverSets, error) {
	if err := pref.Validate(); err != nil {
		return nil, err
	}
	tau := pref.Tau
	if !math.IsInf(tau, 1) && tau > idx.MaxDetourKm {
		return nil, fmt.Errorf("tops: τ = %v exceeds index horizon %v km", tau, idx.MaxDetourKm)
	}
	cs := NewCoverSets(idx.inst.N(), idx.inst.M())
	for s := range idx.sitePairs {
		for _, p := range idx.sitePairs[s] {
			if p.Dr > tau {
				break // lists are sorted by detour: prefix scan
			}
			score := pref.Score(p.Dr)
			if score == 0 && pref.F == nil {
				continue
			}
			cs.AddPair(int32(s), int32(p.Traj), score)
		}
	}
	return cs, nil
}

// EvaluateSelection computes the exact utility and covered-trajectory count
// of an arbitrary site selection against the cover sets.
func EvaluateSelection(cs *CoverSets, selected []SiteID) (float64, int) {
	util := make(map[int32]float64, 256)
	for _, s := range selected {
		for _, st := range cs.TC[s] {
			if st.Score > util[st.Traj] {
				util[st.Traj] = st.Score
			}
		}
	}
	var total float64
	covered := 0
	for _, u := range util {
		total += u
		if u > 0 {
			covered++
		}
	}
	return total, covered
}
