package tops

import (
	"fmt"
	"sort"
)

// OptimalOptions configures the exact solver.
type OptimalOptions struct {
	// K is the number of sites to select.
	K int
	// MaxNodes caps the number of branch-and-bound nodes explored; 0 means
	// unlimited. When the cap triggers, the best solution found so far is
	// returned with Exact = false.
	MaxNodes int64
}

// Optimal solves TOPS exactly by branch and bound. The paper formulates the
// exact algorithm as an ILP solved by an external solver; this reproduction
// substitutes an equivalent exact maximizer: depth-first search over site
// subsets with a submodular upper bound. For any partial selection Q the
// best reachable utility is bounded by
//
//	U(Q) + Σ of the (k − |Q|) largest marginal gains of the remaining sites
//
// which is valid because marginal gains only shrink as Q grows
// (Theorem 2). Like the paper's ILP (Fig. 4), it is practical only on
// Beijing-Small-sized inputs.
func Optimal(cs *CoverSets, opts OptimalOptions) (Result, error) {
	n := cs.N()
	if opts.K <= 0 || opts.K > n {
		return Result{}, fmt.Errorf("tops: invalid k = %d for %d sites", opts.K, n)
	}
	k := opts.K

	util := make([]float64, cs.M)
	// Seed the incumbent with the greedy solution: a strong lower bound
	// prunes most of the tree immediately.
	greedy, err := IncGreedy(cs, GreedyOptions{K: k})
	if err != nil {
		return Result{}, err
	}
	best := append([]SiteID(nil), greedy.Selected...)
	bestU := greedy.Utility

	marg := func(s int) float64 {
		var m float64
		trajs, scores := cs.TC(int32(s))
		for i, t := range trajs {
			if g := scores[i] - util[t]; g > 0 {
				m += g
			}
		}
		return m
	}

	// Static site order by weight descending: strong candidates first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cs.Weights[order[a]] > cs.Weights[order[b]] })

	var (
		nodes    int64
		capped   bool
		current  []SiteID
		currentU float64
		gains    []float64 // scratch for the bound
	)

	// apply selects site s, returning an undo log of utility changes.
	type undo struct {
		traj int32
		old  float64
	}
	apply := func(s int) (float64, []undo) {
		var gained float64
		var log []undo
		trajs, scores := cs.TC(int32(s))
		for i, t := range trajs {
			if scores[i] > util[t] {
				log = append(log, undo{traj: t, old: util[t]})
				gained += scores[i] - util[t]
				util[t] = scores[i]
			}
		}
		return gained, log
	}
	revert := func(log []undo) {
		for i := len(log) - 1; i >= 0; i-- {
			util[log[i].traj] = log[i].old
		}
	}

	var dfs func(pos int)
	dfs = func(pos int) {
		nodes++
		if opts.MaxNodes > 0 && nodes > opts.MaxNodes {
			capped = true
			return
		}
		if len(current) == k {
			if currentU > bestU {
				bestU = currentU
				best = append(best[:0], current...)
			}
			return
		}
		remainingSlots := k - len(current)
		if n-pos < remainingSlots {
			return // not enough sites left
		}
		// Upper bound: current utility plus the top remaining marginals.
		gains = gains[:0]
		for i := pos; i < n; i++ {
			gains = append(gains, marg(order[i]))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(gains)))
		bound := currentU
		for i := 0; i < remainingSlots && i < len(gains); i++ {
			bound += gains[i]
		}
		if bound <= bestU+1e-12 {
			return
		}
		// Branch: include order[pos], then exclude it.
		s := order[pos]
		gained, log := apply(s)
		current = append(current, SiteID(s))
		currentU += gained
		if currentU > bestU { // partial selections are feasible too (|Q| <= k)
			bestU = currentU
			best = append(best[:0], current...)
		}
		dfs(pos + 1)
		current = current[:len(current)-1]
		currentU -= gained
		revert(log)
		if capped {
			return
		}
		dfs(pos + 1)
	}
	dfs(0)

	u, covered := EvaluateSelection(cs, best)
	return Result{
		Selected: append([]SiteID(nil), best...),
		Utility:  u,
		Covered:  covered,
		Exact:    !capped,
	}, nil
}
