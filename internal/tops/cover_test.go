package tops

import (
	"math"
	"math/rand"
	"testing"

	"netclus/internal/trajectory"
)

func TestBuildCoverSetsPrefix(t *testing.T) {
	inst, _ := gridInstance(t, 400, 40, 40, 61)
	idx, err := BuildDistanceIndex(inst, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.4, 0.8, 1.6, 3.2} {
		cs, err := BuildCoverSets(idx, Binary(tau))
		if err != nil {
			t.Fatal(err)
		}
		// Every TC member must have detour <= tau, and the counts must
		// match a direct scan of the index.
		for s := 0; s < inst.N(); s++ {
			want := 0
			for _, p := range idx.SitePairs(SiteID(s)) {
				if p.Dr <= tau {
					want++
				}
			}
			if cs.TCLen(int32(s)) != want {
				t.Fatalf("tau=%v site %d: TC size %d, want %d", tau, s, cs.TCLen(int32(s)), want)
			}
			if math.Abs(cs.Weights[s]-float64(want)) > 1e-9 {
				t.Fatalf("binary weight != TC size")
			}
		}
		// SC mirrors TC.
		scSum := 0
		for tr := 0; tr < inst.M(); tr++ {
			scSum += cs.SCLen(int32(tr))
		}
		if scSum != cs.Pairs() {
			t.Fatalf("SC total %d != pairs %d", scSum, cs.Pairs())
		}
	}
}

func TestCoverSetsGrowWithTau(t *testing.T) {
	// Table 9's driver: covering sets grow sharply with τ.
	inst, _ := gridInstance(t, 400, 40, 40, 62)
	idx, err := BuildDistanceIndex(inst, 6)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, tau := range []float64{0.1, 0.4, 0.8, 1.6, 3.0} {
		cs, err := BuildCoverSets(idx, Binary(tau))
		if err != nil {
			t.Fatal(err)
		}
		if cs.Pairs() < prev {
			t.Fatalf("pairs shrank as tau grew")
		}
		prev = cs.Pairs()
	}
}

func TestBuildCoverSetsRejectsTauBeyondHorizon(t *testing.T) {
	inst, _ := gridInstance(t, 200, 10, 10, 63)
	idx, err := BuildDistanceIndex(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildCoverSets(idx, Binary(3)); err == nil {
		t.Error("tau beyond horizon accepted")
	}
}

func TestBuildCoverSetsNonBinaryScores(t *testing.T) {
	inst, _ := gridInstance(t, 300, 30, 30, 64)
	idx, err := BuildDistanceIndex(inst, 4)
	if err != nil {
		t.Fatal(err)
	}
	pref := Linear(2)
	cs, err := BuildCoverSets(idx, pref)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < inst.N(); s++ {
		_, scores := cs.TC(int32(s))
		for i, sc := range scores {
			dr := idx.SitePairs(SiteID(s))[i].Dr
			if math.Abs(sc-pref.Score(dr)) > 1e-12 {
				t.Fatalf("score mismatch at site %d", s)
			}
			if sc < 0 || sc > 1 {
				t.Fatalf("score %v outside [0,1]", sc)
			}
		}
	}
}

func TestEvaluateSelectionAgainstManual(t *testing.T) {
	cs := paperExample1()
	u, covered := EvaluateSelection(cs, []SiteID{0, 2})
	if math.Abs(u-1.0) > 1e-12 || covered != 2 {
		t.Errorf("OPT selection: u=%v covered=%d", u, covered)
	}
	u, covered = EvaluateSelection(cs, []SiteID{1})
	if math.Abs(u-0.61) > 1e-12 || covered != 2 {
		t.Errorf("s2 selection: u=%v covered=%d", u, covered)
	}
	u, covered = EvaluateSelection(cs, nil)
	if u != 0 || covered != 0 {
		t.Errorf("empty selection: u=%v covered=%d", u, covered)
	}
}

func TestEndToEndGreedyOnRealInstance(t *testing.T) {
	// Full pipeline: city -> trajectories -> distance index -> cover sets
	// -> greedy. The selected sites must cover a meaningful share.
	inst, _ := gridInstance(t, 600, 80, 150, 65)
	idx, err := BuildDistanceIndex(inst, 6)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := BuildCoverSets(idx, Binary(1.0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := IncGreedy(cs, GreedyOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered == 0 {
		t.Fatal("greedy covered nothing on a dense instance")
	}
	// Coverage fraction should be substantial with 5 sites at τ=1km on a
	// 10km city with hotspot-skewed demand.
	frac := float64(res.Covered) / float64(inst.M())
	if frac < 0.2 {
		t.Errorf("coverage fraction %.2f suspiciously low", frac)
	}
	// Selected sites must be distinct.
	seen := map[SiteID]bool{}
	for _, s := range res.Selected {
		if seen[s] {
			t.Fatal("duplicate site selected")
		}
		seen[s] = true
	}
}

func TestGreedyUtilityIndependentOfSiteOrderProperty(t *testing.T) {
	// Permuting site ids must not change the greedy utility (modulo exact
	// ties, which random float scores avoid).
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 10; trial++ {
		n, m := 15, 40
		type pair struct {
			s, tr int32
			score float64
		}
		var pairs []pair
		for s := int32(0); s < int32(n); s++ {
			for tr := int32(0); tr < int32(m); tr++ {
				if rng.Float64() < 0.25 {
					pairs = append(pairs, pair{s, tr, rng.Float64()*0.99 + 0.01})
				}
			}
		}
		build := func(perm []int) *CoverSets {
			cs := NewCoverSets(n, m)
			for _, p := range pairs {
				cs.AddPair(int32(perm[p.s]), p.tr, p.score)
			}
			return cs
		}
		id := make([]int, n)
		shuffled := make([]int, n)
		for i := range id {
			id[i] = i
			shuffled[i] = i
		}
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r1, err := IncGreedy(build(id), GreedyOptions{K: 4})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := IncGreedy(build(shuffled), GreedyOptions{K: 4})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r1.Utility-r2.Utility) > 1e-9 {
			t.Fatalf("trial %d: utility depends on site order: %v vs %v", trial, r1.Utility, r2.Utility)
		}
	}
}

func TestCoverSetsMemoryBytesMonotone(t *testing.T) {
	inst, _ := gridInstance(t, 300, 30, 30, 67)
	idx, err := BuildDistanceIndex(inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := BuildCoverSets(idx, Binary(0.5))
	b, _ := BuildCoverSets(idx, Binary(2.5))
	if b.MemoryBytes() < a.MemoryBytes() {
		t.Error("memory estimate not monotone in tau")
	}
}

var _ = trajectory.ID(0) // keep import for helper signatures
