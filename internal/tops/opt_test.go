package tops

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceOpt enumerates all k-subsets — the oracle for Optimal.
func bruteForceOpt(cs *CoverSets, k int) float64 {
	n := cs.N()
	best := 0.0
	var sel []SiteID
	var rec func(start int)
	rec = func(start int) {
		if len(sel) == k {
			if u, _ := EvaluateSelection(cs, sel); u > best {
				best = u
			}
			return
		}
		for s := start; s < n; s++ {
			sel = append(sel, SiteID(s))
			rec(s + 1)
			sel = sel[:len(sel)-1]
		}
	}
	rec(0)
	return best
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(5)
		cs := randomCoverSets(rng, n, 20, 0.3, trial%2 == 0)
		k := 1 + rng.Intn(3)
		res, err := Optimal(cs, OptimalOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceOpt(cs, k)
		if !res.Exact {
			t.Fatalf("trial %d: not exact", trial)
		}
		if math.Abs(res.Utility-want) > 1e-9 {
			t.Fatalf("trial %d: Optimal %v != brute force %v", trial, res.Utility, want)
		}
		if len(res.Selected) > k {
			t.Fatalf("trial %d: selected %d > k", trial, len(res.Selected))
		}
	}
}

func TestOptimalNodeCap(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	cs := randomCoverSets(rng, 25, 80, 0.3, false)
	res, err := Optimal(cs, OptimalOptions{K: 6, MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("capped run reported exact")
	}
	// Must still return at least the greedy seed quality.
	greedy, _ := IncGreedy(cs, GreedyOptions{K: 6})
	if res.Utility < greedy.Utility-1e-9 {
		t.Errorf("capped optimal %v below greedy %v", res.Utility, greedy.Utility)
	}
}

func TestOptimalValidation(t *testing.T) {
	cs := paperExample1()
	if _, err := Optimal(cs, OptimalOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Optimal(cs, OptimalOptions{K: 5}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestOptimalAtLeastGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		cs := randomCoverSets(rng, 14, 40, 0.25, false)
		k := 2 + rng.Intn(4)
		opt, err := Optimal(cs, OptimalOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		greedy, _ := IncGreedy(cs, GreedyOptions{K: k})
		if opt.Utility < greedy.Utility-1e-9 {
			t.Fatalf("trial %d: OPT %v < greedy %v", trial, opt.Utility, greedy.Utility)
		}
	}
}
