package tops

import (
	"fmt"

	"netclus/internal/ilp"
)

// OptimalILP solves TOPS exactly through the integer-programming route of
// §3.1. The paper's formulation has the non-linear constraints
//
//	U_j <= max_i { ψ(T_j, s_i) · x_i }
//
// which Appendix A.1 linearizes with a recursive big-M construction. This
// implementation uses the standard assignment linearization of the maximal
// covering location problem, which is exactly equivalent (both produce the
// same integral optima) and better conditioned for an LP-relaxation
// branch-and-bound:
//
//	maximize   Σ_j Σ_i ψ_ji · z_ji
//	subject to Σ_i x_i <= k
//	           z_ji <= x_i                  (serve only from open sites)
//	           Σ_i z_ji <= 1                (each trajectory served once)
//	           x_i ∈ {0,1},  0 <= z_ji <= 1
//
// With x fixed, the optimal z picks the best open site per trajectory, so
// the objective equals U(Q). The variable count is 1 per site plus 1 per
// covering pair, so — exactly like the paper's CPLEX route — this is
// practical only for Beijing-Small-sized instances; Optimal (combinatorial
// branch and bound) dominates it at every size and exists for cross-
// checking and for faithfulness to the paper's method.
func OptimalILP(cs *CoverSets, opts OptimalOptions) (Result, error) {
	n := cs.N()
	if opts.K <= 0 || opts.K > n {
		return Result{}, fmt.Errorf("tops: invalid k = %d for %d sites", opts.K, n)
	}
	// Variable layout: [x_0 … x_{n-1}] then one z per (site, traj) pair.
	type pairVar struct {
		site int32
		traj int32
	}
	var pairs []pairVar
	var scores []float64
	pairIdx := map[[2]int32]int{}
	for s := 0; s < n; s++ {
		trajs, tscores := cs.TC(int32(s))
		for i, t := range trajs {
			pairIdx[[2]int32{int32(s), t}] = n + len(pairs)
			pairs = append(pairs, pairVar{site: int32(s), traj: t})
			scores = append(scores, tscores[i])
		}
	}
	nv := n + len(pairs)
	prob := &ilp.IP{
		LP:     ilp.LP{C: make([]float64, nv)},
		Binary: make([]bool, nv),
	}
	for s := 0; s < n; s++ {
		prob.Binary[s] = true
	}
	for i, sc := range scores {
		prob.C[n+i] = sc
	}
	addRow := func(coef map[int]float64, rhs float64) {
		row := make([]float64, nv)
		for j, c := range coef {
			row[j] = c
		}
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, rhs)
	}
	// Σ x_i <= k.
	card := map[int]float64{}
	for s := 0; s < n; s++ {
		card[s] = 1
	}
	addRow(card, float64(opts.K))
	// z_ji <= x_i.
	for i, pv := range pairs {
		addRow(map[int]float64{n + i: 1, int(pv.site): -1}, 0)
	}
	// Σ_i z_ji <= 1 per trajectory.
	perTraj := map[int32]map[int]float64{}
	for i, pv := range pairs {
		if perTraj[pv.traj] == nil {
			perTraj[pv.traj] = map[int]float64{}
		}
		perTraj[pv.traj][n+i] = 1
	}
	for _, coef := range perTraj {
		addRow(coef, 1)
	}

	sol, exact, err := ilp.SolveIP(prob, int(opts.MaxNodes))
	if err != nil {
		return Result{}, err
	}
	if sol.Status != ilp.Optimal {
		return Result{}, fmt.Errorf("tops: ILP solve ended %v", sol.Status)
	}
	var res Result
	for s := 0; s < n; s++ {
		if sol.X[s] > 0.5 {
			res.Selected = append(res.Selected, SiteID(s))
		}
	}
	res.Utility, res.Covered = EvaluateSelection(cs, res.Selected)
	res.Exact = exact
	return res, nil
}
