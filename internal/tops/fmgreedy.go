package tops

import (
	"fmt"
	"sort"

	"netclus/internal/fm"
)

// FMGreedyOptions configures the FM-sketch-accelerated greedy of §3.5.
type FMGreedyOptions struct {
	// K is the number of sites to select.
	K int
	// F is the number of FM sketch copies (Table 8 sweeps this; the paper
	// settles on 30).
	F int
	// Seed derives the sketch hash family.
	Seed uint64
}

// FMGreedy runs the FM-sketch variant of IncGreedy for the *binary*
// preference function: selecting the site with the largest marginal utility
// is then exactly selecting the site covering the most distinct not-yet-
// covered trajectories, which FM sketches estimate with cheap word ORs.
//
// Non-binary scores in the cover sets are rejected: the distinct-count
// reduction only holds in the binary world (the paper applies FM sketches
// only there).
//
// The reported Utility and Covered are computed exactly from the final
// selection; the sketches only steer the search, as in the paper where
// quality is measured against the true coverage.
func FMGreedy(cs *CoverSets, opts FMGreedyOptions) (Result, error) {
	n := cs.N()
	if opts.K <= 0 || opts.K > n {
		return Result{}, fmt.Errorf("tops: invalid k = %d for %d sites", opts.K, n)
	}
	if opts.F <= 0 {
		opts.F = 30
	}
	for s := 0; s < n; s++ {
		_, scores := cs.TC(int32(s))
		for _, sc := range scores {
			if sc != 1 {
				return Result{}, fmt.Errorf("tops: FMGreedy requires binary scores, site %d has %v", s, sc)
			}
		}
	}

	// One sketch per site over its covered trajectory ids.
	sketches := make([]*fm.Sketch, n)
	for s := 0; s < n; s++ {
		sk := fm.NewSketchSeeded(opts.F, opts.Seed+1)
		trajs, _ := cs.TC(int32(s))
		for _, t := range trajs {
			sk.Add(uint64(t))
		}
		sketches[s] = sk
	}
	// Sites sorted by their own estimated coverage, descending: the own
	// estimate upper-bounds any marginal, enabling the paper's early-exit
	// scan ("the scan can stop as soon as the first such site is
	// encountered").
	own := make([]float64, n)
	order := make([]int, n)
	for s := 0; s < n; s++ {
		own[s] = sketches[s].Estimate()
		order[s] = s
	}
	sort.Slice(order, func(a, b int) bool {
		if own[order[a]] != own[order[b]] {
			return own[order[a]] > own[order[b]]
		}
		return order[a] > order[b]
	})

	covered := fm.NewSketchSeeded(opts.F, opts.Seed+1)
	coveredEst := 0.0
	selected := make([]bool, n)
	var res Result
	for iter := 0; iter < opts.K; iter++ {
		best := -1
		bestMarg := -1.0
		for _, s := range order {
			if selected[s] {
				continue
			}
			if own[s] <= bestMarg {
				break // all remaining sites are bounded below the current best
			}
			if marg := fm.UnionEstimate(covered, sketches[s]) - coveredEst; marg > bestMarg {
				best, bestMarg = s, marg
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		res.Selected = append(res.Selected, SiteID(best))
		covered.UnionWith(sketches[best])
		coveredEst = covered.Estimate()
		res.UtilityPerIter = append(res.UtilityPerIter, coveredEst)
	}
	res.Utility, res.Covered = EvaluateSelection(cs, res.Selected)
	return res, nil
}
