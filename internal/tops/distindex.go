package tops

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// DistanceIndex is the precomputed site↔trajectory round-trip distance
// matrix of §3.2, stored sparsely: only pairs with detour at most
// MaxDetourKm are kept, matching the paper's practice of precomputing
// distances "up to 10 Km". Both directions of the matrix are materialized —
// per site sorted by detour (the TC side) and per trajectory sorted by
// detour (the SC side) — so covering sets for any τ <= MaxDetourKm are a
// prefix scan.
//
// The detour of trajectory T at site s is
//
//	dr(T, s) = min over k <= l of  d(v_k, s) + d(s, v_l) − dist_T(v_k, v_l)
//
// where dist_T is the along-trajectory distance (see the trajectory package
// for why). With prefix minima the inner scan is O(l) per (site, covered
// trajectory) pair.
type DistanceIndex struct {
	inst        *Instance
	MaxDetourKm float64

	// sitePairs[s] lists (trajectory, detour) sorted ascending by detour.
	sitePairs [][]TrajDist
	// trajPairs[t] lists (site, detour) sorted ascending by detour.
	trajPairs [][]SiteDist
	pairs     int
}

// TrajDist is one entry of a site's trajectory list.
type TrajDist struct {
	Traj trajectory.ID
	Dr   float64
}

// SiteDist is one entry of a trajectory's site list.
type SiteDist struct {
	Site SiteID
	Dr   float64
}

// BuildDistanceIndex computes the sparse distance matrix with two bounded
// Dijkstra runs per candidate site. maxDetourKm caps the stored detours;
// it must cover the largest τ the application will query, and it also
// bounds each search radius: a node v can contribute a detour <= dmax only
// if d(v,s) <= dmax or d(s,v) <= dmax on the relevant leg... more precisely
// each leg of a detour within dmax is itself within dmax plus the
// along-path correction, so searching to dmax + maxTrajLen would be exact.
// Like the paper we trade exactness at the fringe for memory and search to
// dmax only; trajectories whose entry/exit legs both exceed dmax are
// treated as uncovered. Experiments use τ well below dmax.
func BuildDistanceIndex(inst *Instance, maxDetourKm float64) (*DistanceIndex, error) {
	if maxDetourKm <= 0 {
		return nil, fmt.Errorf("tops: non-positive max detour %v", maxDetourKm)
	}
	idx := &DistanceIndex{
		inst:        inst,
		MaxDetourKm: maxDetourKm,
		sitePairs:   make([][]TrajDist, inst.N()),
		trajPairs:   make([][]SiteDist, inst.M()),
	}

	// Inverted index: node -> postings of (trajectory, position).
	type posting struct {
		traj trajectory.ID
		pos  int32
	}
	postings := make([][]posting, inst.G.NumNodes())
	inst.Trajs.ForEach(func(id trajectory.ID, tr *trajectory.Trajectory) {
		for i, v := range tr.Nodes {
			postings[v] = append(postings[v], posting{traj: id, pos: int32(i)})
		}
	})

	// Per-site work is independent, so sites are sharded across a worker
	// pool; each worker owns its Dijkstra scratch. Workers fill only the
	// site-side lists; the trajectory-side lists are derived afterwards so
	// no cross-worker synchronization is needed. The result is bit-for-bit
	// deterministic regardless of worker count because each site's list is
	// computed in isolation and sorted.
	workers := runtime.NumCPU()
	if workers > inst.N() {
		workers = inst.N()
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := roadnet.NewScratch(inst.G)
			seen := make(map[trajectory.ID]struct{}, 256)
			for si := range next {
				node := inst.Sites[si]
				fwd := scratch.Bounded(inst.G, node, roadnet.Forward, maxDetourKm)
				fwdDist := fwd.Dist
				rev := scratch.Bounded(inst.G, node, roadnet.Reverse, maxDetourKm)
				revDist := rev.Dist

				// Candidate trajectories: any trajectory touching a node
				// reached by either search (both legs are needed; the
				// union is a safe superset).
				clear(seen)
				for _, v := range fwd.Nodes {
					for _, p := range postings[v] {
						seen[p.traj] = struct{}{}
					}
				}
				for _, v := range rev.Nodes {
					for _, p := range postings[v] {
						seen[p.traj] = struct{}{}
					}
				}
				for tid := range seen {
					tr := inst.Trajs.Get(tid)
					dr := detour(tr, fwdDist, revDist)
					if dr <= maxDetourKm {
						idx.sitePairs[si] = append(idx.sitePairs[si], TrajDist{Traj: tid, Dr: dr})
					}
				}
			}
		}()
	}
	for si := 0; si < inst.N(); si++ {
		next <- si
	}
	close(next)
	wg.Wait()
	// Derive the trajectory-side lists and the pair count.
	for si := range idx.sitePairs {
		for _, p := range idx.sitePairs[si] {
			idx.trajPairs[p.Traj] = append(idx.trajPairs[p.Traj], SiteDist{Site: SiteID(si), Dr: p.Dr})
			idx.pairs++
		}
	}
	for si := range idx.sitePairs {
		sort.Slice(idx.sitePairs[si], func(a, b int) bool {
			pa, pb := idx.sitePairs[si][a], idx.sitePairs[si][b]
			if pa.Dr != pb.Dr {
				return pa.Dr < pb.Dr
			}
			return pa.Traj < pb.Traj
		})
	}
	for ti := range idx.trajPairs {
		sort.Slice(idx.trajPairs[ti], func(a, b int) bool {
			pa, pb := idx.trajPairs[ti][a], idx.trajPairs[ti][b]
			if pa.Dr != pb.Dr {
				return pa.Dr < pb.Dr
			}
			return pa.Site < pb.Site
		})
	}
	return idx, nil
}

// detour computes dr(T, s) given the bounded distance maps of site s.
// revDist[v] = d(v, s) (reverse search), fwdDist[v] = d(s, v). The detour
// decomposes as min_l [ minprefix_k (d(v_k,s) + cum_k) + d(s,v_l) − cum_l ],
// giving a single O(l) pass. Nodes outside a map contribute +Inf.
//
// The result is clamped at zero: because the skipped segment is priced at
// the along-trajectory distance (which may exceed the shortest path), the
// raw expression can go negative when deviating via the site is actually a
// shortcut — visiting a service never costs the user negative distance.
func detour(tr *trajectory.Trajectory, fwdDist, revDist map[roadnet.NodeID]float64) float64 {
	best := math.Inf(1)
	bestEntry := math.Inf(1) // min over k<=l of d(v_k,s)+cum_k
	for l, v := range tr.Nodes {
		if dIn, ok := revDist[v]; ok {
			if e := dIn + tr.CumDist[l]; e < bestEntry {
				bestEntry = e
			}
		}
		if math.IsInf(bestEntry, 1) {
			continue
		}
		if dOut, ok := fwdDist[v]; ok {
			if d := bestEntry + dOut - tr.CumDist[l]; d < best {
				best = d
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// Detour returns dr(T_j, s_i) from the index, or +Inf when the pair exceeds
// MaxDetourKm. O(log) in the trajectory's list length.
func (idx *DistanceIndex) Detour(tid trajectory.ID, sid SiteID) float64 {
	// The trajectory list is sorted by Dr, not site, so scan; lists are
	// short in practice. Callers needing bulk access use the pair lists.
	for _, p := range idx.trajPairs[tid] {
		if p.Site == sid {
			return p.Dr
		}
	}
	return math.Inf(1)
}

// SitePairs returns the (trajectory, detour) list of site s, ascending by
// detour. Callers must not mutate it.
func (idx *DistanceIndex) SitePairs(s SiteID) []TrajDist { return idx.sitePairs[s] }

// TrajPairs returns the (site, detour) list of trajectory t, ascending by
// detour. Callers must not mutate it.
func (idx *DistanceIndex) TrajPairs(t trajectory.ID) []SiteDist { return idx.trajPairs[t] }

// Pairs returns the number of stored (site, trajectory) pairs — the memory
// footprint driver the paper's Table 9 tracks.
func (idx *DistanceIndex) Pairs() int { return idx.pairs }

// NumTrajs returns the size of the trajectory universe the index was built
// over. Trajectories added to the instance after construction are unknown
// to the index.
func (idx *DistanceIndex) NumTrajs() int { return len(idx.trajPairs) }

// Instance returns the underlying TOPS instance.
func (idx *DistanceIndex) Instance() *Instance { return idx.inst }

// MemoryBytes estimates the resident size of the index (both pair lists),
// used by the memory-footprint experiment.
func (idx *DistanceIndex) MemoryBytes() int64 {
	const pairBytes = 16 // id + float64 with padding
	return int64(idx.pairs) * 2 * pairBytes
}

// ExactDetour computes dr(T, s) without the index by running two full
// Dijkstras from the site node. It is the oracle used by tests and by the
// dynamic-update path for single pairs.
func ExactDetour(g *roadnet.Graph, tr *trajectory.Trajectory, siteNode roadnet.NodeID) float64 {
	fwd := roadnet.Dijkstra(g, siteNode, roadnet.Forward)
	rev := roadnet.Dijkstra(g, siteNode, roadnet.Reverse)
	best := math.Inf(1)
	bestEntry := math.Inf(1)
	for l, v := range tr.Nodes {
		if e := rev[v] + tr.CumDist[l]; e < bestEntry {
			bestEntry = e
		}
		if d := bestEntry + fwd[v] - tr.CumDist[l]; d < best {
			best = d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
