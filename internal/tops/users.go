package tops

import "fmt"

// Multi-trajectory users. §2 of the paper: "We assume that each trajectory
// belongs to a separate user. However, the framework can easily generalize
// to multiple trajectories belonging to a single user by taking union of
// each of these trajectories." Taking the union means a user's utility is
// the best score any of her trajectories achieves, and the TOPS objective
// sums per-user (not per-trajectory) utilities.
//
// CollapseToUsers rewrites cover sets over the user universe so that every
// TOPS algorithm in this package (greedy, FM, exact, cost, capacity) runs
// unchanged on user-level utilities.

// CollapseToUsers maps a trajectory-level CoverSets to a user-level one.
// userOf[t] is the user id of trajectory t, with ids dense in [0, numUsers).
// For each (site, user) the best trajectory score survives — exactly the
// union-of-trajectories semantics.
func CollapseToUsers(cs *CoverSets, userOf []int32, numUsers int) (*CoverSets, error) {
	if len(userOf) != cs.M {
		return nil, fmt.Errorf("tops: %d user assignments for %d trajectories", len(userOf), cs.M)
	}
	if numUsers <= 0 {
		return nil, fmt.Errorf("tops: non-positive user count %d", numUsers)
	}
	for t, u := range userOf {
		if u < 0 || int(u) >= numUsers {
			return nil, fmt.Errorf("tops: trajectory %d assigned to user %d outside [0,%d)", t, u, numUsers)
		}
	}
	out := NewCoverSets(cs.N(), numUsers)
	best := make(map[int32]float64, 64)
	for s := 0; s < cs.N(); s++ {
		clear(best)
		trajs, scores := cs.TC(int32(s))
		for i, t := range trajs {
			u := userOf[t]
			if scores[i] > best[u] {
				best[u] = scores[i]
			}
		}
		for u, score := range best {
			out.AddPair(int32(s), u, score)
		}
	}
	return out, nil
}
