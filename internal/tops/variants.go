package tops

import (
	"fmt"
	"sort"
)

// CostOptions configures the budgeted TOPS-COST variant (§7.1).
type CostOptions struct {
	// Costs[s] is the installation cost of site s; must be positive.
	Costs []float64
	// Budget is the total budget B.
	Budget float64
}

// CostGreedy solves TOPS-COST with the budgeted-maximum-coverage greedy of
// Khuller, Moss & Naor adapted in §7.1: repeatedly take the affordable site
// maximizing marginal-utility-per-cost, pruning unaffordable sites, then
// return the better of that solution and the single best affordable site
// (the augmentation that restores the (1−1/e)/2 bound).
func CostGreedy(cs *CoverSets, opts CostOptions) (Result, error) {
	n := cs.N()
	if len(opts.Costs) != n {
		return Result{}, fmt.Errorf("tops: %d costs for %d sites", len(opts.Costs), n)
	}
	for s, c := range opts.Costs {
		if c <= 0 {
			return Result{}, fmt.Errorf("tops: non-positive cost %v for site %d", c, s)
		}
	}
	if opts.Budget <= 0 {
		return Result{}, fmt.Errorf("tops: non-positive budget %v", opts.Budget)
	}

	util := make([]float64, cs.M)
	marg := func(s int) float64 {
		var m float64
		trajs, scores := cs.TC(int32(s))
		for i, t := range trajs {
			if g := scores[i] - util[t]; g > 0 {
				m += g
			}
		}
		return m
	}

	remaining := opts.Budget
	alive := make([]bool, n)
	aliveCount := 0
	for s := 0; s < n; s++ {
		if opts.Costs[s] <= opts.Budget {
			alive[s] = true
			aliveCount++
		}
	}
	var res Result
	for aliveCount > 0 {
		// Prune everything the remaining budget can no longer afford in one
		// pass — equivalent to the paper's prune-on-encounter rule (an
		// unaffordable site stays unaffordable: the budget only shrinks)
		// but avoids a quadratic tail of single-site prune iterations.
		for s := 0; s < n; s++ {
			if alive[s] && opts.Costs[s] > remaining {
				alive[s] = false
				aliveCount--
			}
		}
		if aliveCount == 0 {
			break
		}
		best, bestRatio := -1, -1.0
		for s := 0; s < n; s++ {
			if !alive[s] {
				continue
			}
			if ratio := marg(s) / opts.Costs[s]; ratio > bestRatio {
				best, bestRatio = s, ratio
			}
		}
		if best < 0 {
			break
		}
		gain := marg(best)
		if gain <= 0 {
			break // nothing left to gain; stop early
		}
		alive[best] = false
		aliveCount--
		remaining -= opts.Costs[best]
		res.Selected = append(res.Selected, SiteID(best))
		res.Utility += gain
		trajs, scores := cs.TC(int32(best))
		for i, t := range trajs {
			if scores[i] > util[t] {
				util[t] = scores[i]
			}
		}
		res.UtilityPerIter = append(res.UtilityPerIter, res.Utility)
	}

	// Augmentation: the single best affordable site.
	singleBest, singleU := -1, -1.0
	for s := 0; s < n; s++ {
		if opts.Costs[s] > opts.Budget {
			continue
		}
		if w := cs.Weights[s]; w > singleU {
			singleBest, singleU = s, w
		}
	}
	if singleBest >= 0 && singleU > res.Utility {
		res = Result{Selected: []SiteID{SiteID(singleBest)}, Utility: singleU,
			UtilityPerIter: []float64{singleU}}
	}
	res.Utility, res.Covered = EvaluateSelection(cs, res.Selected)
	return res, nil
}

// CapacityOptions configures the TOPS-CAPACITY variant (§7.2).
type CapacityOptions struct {
	// K is the number of sites to select.
	K int
	// Caps[s] is the maximum number of trajectories site s can serve.
	Caps []int
}

// CapacityGreedy solves TOPS-CAPACITY: the marginal utility of a site is
// the sum of its α_i = min(|TC|, cap) largest per-trajectory marginal
// gains, and a selected site serves exactly those trajectories (§7.2).
func CapacityGreedy(cs *CoverSets, opts CapacityOptions) (Result, error) {
	n := cs.N()
	if opts.K <= 0 || opts.K > n {
		return Result{}, fmt.Errorf("tops: invalid k = %d for %d sites", opts.K, n)
	}
	if len(opts.Caps) != n {
		return Result{}, fmt.Errorf("tops: %d capacities for %d sites", len(opts.Caps), n)
	}
	for s, c := range opts.Caps {
		if c < 0 {
			return Result{}, fmt.Errorf("tops: negative capacity %d for site %d", c, s)
		}
	}

	util := make([]float64, cs.M)
	selected := make([]bool, n)
	var res Result

	// topGains returns the sum of the cap largest positive marginal gains
	// of site s and the trajectories providing them.
	gainsBuf := make([]ScoredTraj, 0, 256)
	topGains := func(s int) (float64, []ScoredTraj) {
		cap := opts.Caps[s]
		if cap == 0 {
			return 0, nil
		}
		gainsBuf = gainsBuf[:0]
		trajs, scores := cs.TC(int32(s))
		for i, t := range trajs {
			if g := scores[i] - util[t]; g > 0 {
				gainsBuf = append(gainsBuf, ScoredTraj{Traj: t, Score: g})
			}
		}
		if len(gainsBuf) > cap {
			sort.Slice(gainsBuf, func(a, b int) bool { return gainsBuf[a].Score > gainsBuf[b].Score })
			gainsBuf = gainsBuf[:cap]
		}
		var sum float64
		for _, g := range gainsBuf {
			sum += g.Score
		}
		return sum, gainsBuf
	}

	for iter := 0; iter < opts.K; iter++ {
		best, bestGain := -1, 0.0
		for s := 0; s < n; s++ {
			if selected[s] {
				continue
			}
			if g, _ := topGains(s); g > bestGain || (best < 0 && g >= bestGain) {
				best, bestGain = s, g
			}
		}
		if best < 0 {
			break
		}
		gain, served := topGains(best)
		selected[best] = true
		res.Selected = append(res.Selected, SiteID(best))
		res.Utility += gain
		// Serve only the chosen trajectories: the site's capacity binds.
		for _, g := range served {
			// g.Score is the gain; the new utility is old + gain.
			util[g.Traj] += g.Score
		}
		res.UtilityPerIter = append(res.UtilityPerIter, res.Utility)
	}
	covered := 0
	var total float64
	for _, u := range util {
		total += u
		if u > 0 {
			covered++
		}
	}
	res.Utility = total
	res.Covered = covered
	return res, nil
}
