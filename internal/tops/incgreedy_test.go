package tops

import (
	"math"
	"math/rand"
	"testing"
)

// paperExample1 reproduces Table 2 of the paper: two trajectories, three
// sites, with the exact preference scores listed there.
func paperExample1() *CoverSets {
	cs := NewCoverSets(3, 2)
	// T1: s1=0.4, s2=0.11, s3=0 (no pair); T2: s1=0, s2=0.5, s3=0.6.
	cs.AddPair(0, 0, 0.4)
	cs.AddPair(1, 0, 0.11)
	cs.AddPair(1, 1, 0.5)
	cs.AddPair(2, 1, 0.6)
	return cs
}

func TestIncGreedyPaperExample1(t *testing.T) {
	// Table 3: INC-GREEDY picks {s2, s1} for U = 0.9; the optimum is
	// {s1, s3} with U = 1.0.
	cs := paperExample1()
	res, err := IncGreedy(cs, GreedyOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utility-0.9) > 1e-12 {
		t.Errorf("greedy utility = %v, want 0.9", res.Utility)
	}
	if len(res.Selected) != 2 || res.Selected[0] != 1 || res.Selected[1] != 0 {
		t.Errorf("greedy selected %v, want [s2 s1] = [1 0]", res.Selected)
	}
	// First iteration gain is w(s2) = 0.11 + 0.5 = 0.61 as in §3.3.
	if math.Abs(res.UtilityPerIter[0]-0.61) > 1e-12 {
		t.Errorf("first-iteration utility = %v, want 0.61", res.UtilityPerIter[0])
	}
	if res.Covered != 2 {
		t.Errorf("covered = %d", res.Covered)
	}

	opt, err := Optimal(cs, OptimalOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.Utility-1.0) > 1e-12 || !opt.Exact {
		t.Errorf("optimal utility = %v exact=%v, want 1.0 true", opt.Utility, opt.Exact)
	}
}

func TestIncGreedyLazyMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		cs := randomCoverSets(rng, 30, 80, 0.2, false)
		k := 1 + rng.Intn(8)
		plain, err := IncGreedy(cs, GreedyOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := IncGreedy(cs, GreedyOptions{K: k, Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain.Utility-lazy.Utility) > 1e-9 {
			t.Fatalf("trial %d: plain %v != lazy %v", trial, plain.Utility, lazy.Utility)
		}
	}
}

func TestIncGreedyUtilityMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		cs := randomCoverSets(rng, 25, 60, 0.25, trial%2 == 0)
		res, err := IncGreedy(cs, GreedyOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		u, covered := EvaluateSelection(cs, res.Selected)
		if math.Abs(u-res.Utility) > 1e-9 {
			t.Fatalf("trial %d: incremental utility %v != evaluated %v", trial, res.Utility, u)
		}
		if covered != res.Covered {
			t.Fatalf("trial %d: covered %d != evaluated %d", trial, res.Covered, covered)
		}
	}
}

func TestIncGreedyMonotonePerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cs := randomCoverSets(rng, 40, 100, 0.15, false)
	res, err := IncGreedy(cs, GreedyOptions{K: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.UtilityPerIter); i++ {
		if res.UtilityPerIter[i] < res.UtilityPerIter[i-1]-1e-12 {
			t.Fatal("utility decreased across iterations")
		}
	}
	// Marginal gains must be non-increasing (submodularity surface check).
	prevGain := math.Inf(1)
	last := 0.0
	for _, u := range res.UtilityPerIter {
		gain := u - last
		if gain > prevGain+1e-9 {
			t.Fatalf("marginal gain increased: %v after %v", gain, prevGain)
		}
		prevGain = gain
		last = u
	}
}

func TestIncGreedyApproximationBound(t *testing.T) {
	// U(greedy) >= (1-1/e) * OPT on random small instances (Lemma 1).
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 15; trial++ {
		cs := randomCoverSets(rng, 12, 30, 0.3, trial%2 == 0)
		k := 2 + rng.Intn(3)
		res, err := IncGreedy(cs, GreedyOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimal(cs, OptimalOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Exact {
			t.Fatal("small instance should solve exactly")
		}
		bound := GreedyUpperBoundGap(k, cs.N())
		if res.Utility < bound*opt.Utility-1e-9 {
			t.Fatalf("trial %d: greedy %v below %v * OPT %v", trial, res.Utility, bound, opt.Utility)
		}
		if res.Utility > opt.Utility+1e-9 {
			t.Fatalf("trial %d: greedy %v exceeds OPT %v", trial, res.Utility, opt.Utility)
		}
	}
}

func TestIncGreedyExistingServices(t *testing.T) {
	cs := paperExample1()
	// With s2 already existing, greedy with k=1 should pick s1
	// (marginal 0.29) over s3 (marginal 0.1).
	res, err := IncGreedy(cs, GreedyOptions{K: 1, InitialSites: []SiteID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 || res.Selected[0] != 0 {
		t.Fatalf("selected %v, want [0]", res.Selected)
	}
	// Total utility includes the existing service's baseline.
	if math.Abs(res.Utility-0.9) > 1e-12 {
		t.Errorf("utility = %v, want 0.9", res.Utility)
	}
	// Lazy path must agree.
	lazy, err := IncGreedy(cs, GreedyOptions{K: 1, InitialSites: []SiteID{1}, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lazy.Utility-res.Utility) > 1e-12 {
		t.Errorf("lazy existing-services utility = %v", lazy.Utility)
	}
}

func TestIncGreedyExistingServicesNeverHurt(t *testing.T) {
	// Adding existing services can only increase total utility (§7.3).
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 10; trial++ {
		cs := randomCoverSets(rng, 20, 50, 0.25, false)
		plain, _ := IncGreedy(cs, GreedyOptions{K: 3})
		withES, err := IncGreedy(cs, GreedyOptions{K: 3, InitialSites: []SiteID{0, 1}})
		if err != nil {
			t.Fatal(err)
		}
		if withES.Utility < plain.Utility-1e-9 {
			t.Fatalf("existing services reduced utility: %v < %v", withES.Utility, plain.Utility)
		}
	}
}

func TestIncGreedyTargetCoverage(t *testing.T) {
	// TOPS4: select the smallest prefix reaching β coverage.
	rng := rand.New(rand.NewSource(26))
	cs := randomCoverSets(rng, 30, 100, 0.2, true)
	res, err := IncGreedy(cs, GreedyOptions{TargetCoverage: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Covered) < 0.5*float64(cs.M) {
		// Only acceptable if no more coverage was available at all.
		full, _ := IncGreedy(cs, GreedyOptions{K: cs.N()})
		if full.Covered > res.Covered {
			t.Fatalf("stopped at %d covered with more available (%d)", res.Covered, full.Covered)
		}
	}
	// Removing the last selected site must drop coverage below target
	// (minimality of the greedy prefix).
	if len(res.Selected) > 1 {
		u, covered := EvaluateSelection(cs, res.Selected[:len(res.Selected)-1])
		_ = u
		if float64(covered) >= 0.5*float64(cs.M) {
			t.Error("greedy selected more sites than needed for target")
		}
	}
}

func TestIncGreedyTargetCoverageImpossible(t *testing.T) {
	if _, err := IncGreedy(NewCoverSets(3, 5), GreedyOptions{TargetCoverage: 1.5}); err == nil {
		t.Error("coverage > 1 accepted")
	}
	// Empty cover sets: no site adds coverage; selection must stop early.
	cs := NewCoverSets(3, 5)
	res, err := IncGreedy(cs, GreedyOptions{TargetCoverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Errorf("selected %v from empty cover sets", res.Selected)
	}
}

func TestIncGreedyValidation(t *testing.T) {
	cs := paperExample1()
	if _, err := IncGreedy(cs, GreedyOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := IncGreedy(cs, GreedyOptions{K: 4}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := IncGreedy(cs, GreedyOptions{K: 1, InitialSites: []SiteID{9}}); err == nil {
		t.Error("out-of-range initial site accepted")
	}
}

func TestIncGreedyKEqualsN(t *testing.T) {
	cs := paperExample1()
	res, err := IncGreedy(cs, GreedyOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 3 {
		t.Errorf("selected %d sites", len(res.Selected))
	}
	// Selecting everything yields U(S) = 0.4 + 0.6 = 1.0.
	if math.Abs(res.Utility-1.0) > 1e-12 {
		t.Errorf("U(S) = %v", res.Utility)
	}
}

// randomCoverSets builds a random instance: n sites, m trajectories, each
// (site, trajectory) pair covered with probability p; binary scores when
// binary is true, else uniform (0,1].
func randomCoverSets(rng *rand.Rand, n, m int, p float64, binary bool) *CoverSets {
	cs := NewCoverSets(n, m)
	for s := 0; s < n; s++ {
		for tr := 0; tr < m; tr++ {
			if rng.Float64() < p {
				score := 1.0
				if !binary {
					score = rng.Float64()*0.999 + 0.001
				}
				cs.AddPair(int32(s), int32(tr), score)
			}
		}
	}
	return cs
}

func TestSubmodularityProperty(t *testing.T) {
	// U(Q ∪ {s}) − U(Q) >= U(R ∪ {s}) − U(R) for Q ⊆ R (Theorem 2).
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 50; trial++ {
		cs := randomCoverSets(rng, 12, 30, 0.3, trial%2 == 0)
		// Random nested Q ⊆ R and site s outside R.
		var q, r []SiteID
		for s := 0; s < cs.N()-1; s++ {
			if rng.Float64() < 0.3 {
				r = append(r, SiteID(s))
				if rng.Float64() < 0.5 {
					q = append(q, SiteID(s))
				}
			}
		}
		s := SiteID(cs.N() - 1)
		uQ, _ := EvaluateSelection(cs, q)
		uQs, _ := EvaluateSelection(cs, append(append([]SiteID(nil), q...), s))
		uR, _ := EvaluateSelection(cs, r)
		uRs, _ := EvaluateSelection(cs, append(append([]SiteID(nil), r...), s))
		if (uQs-uQ)-(uRs-uR) < -1e-9 {
			t.Fatalf("trial %d: submodularity violated", trial)
		}
		// Monotonicity: U(R) >= U(Q).
		if uR < uQ-1e-9 {
			t.Fatalf("trial %d: monotonicity violated", trial)
		}
	}
}
