package tops

import (
	"fmt"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// SiteID indexes into Instance.Sites. It is distinct from roadnet.NodeID:
// sites are a subset of nodes, and every TOPS data structure is dense in
// site index space.
type SiteID int32

// InvalidSiteID is the sentinel dense id for a node that is not (or no
// longer) a candidate site, e.g. a NETCLUS representative whose site was
// deleted between cover construction and answer assembly.
const InvalidSiteID SiteID = -1

// Instance bundles the three inputs of the TOPS problem: the road network
// G, the trajectory set T, and the candidate sites S ⊆ V.
type Instance struct {
	G     *roadnet.Graph
	Trajs *trajectory.Store
	Sites []roadnet.NodeID
}

// NewInstance validates and assembles a TOPS instance. Site node ids must
// be valid, and trajectories must reference valid nodes (checked at
// trajectory construction).
func NewInstance(g *roadnet.Graph, trajs *trajectory.Store, sites []roadnet.NodeID) (*Instance, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("tops: empty road network")
	}
	if trajs == nil || trajs.Len() == 0 {
		return nil, fmt.Errorf("tops: empty trajectory set")
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("tops: empty candidate site set")
	}
	for i, s := range sites {
		if s < 0 || int(s) >= g.NumNodes() {
			return nil, fmt.Errorf("tops: site %d references invalid node %d", i, s)
		}
	}
	return &Instance{G: g, Trajs: trajs, Sites: sites}, nil
}

// M returns the number of trajectories m.
func (in *Instance) M() int { return in.Trajs.Len() }

// N returns the number of candidate sites n.
func (in *Instance) N() int { return len(in.Sites) }

// SiteNode returns the road-network node hosting site s.
func (in *Instance) SiteNode(s SiteID) roadnet.NodeID { return in.Sites[s] }

// SiteIDOf returns the dense site id of the given node, or (-1, false) if
// the node is not a candidate site. Linear scan: the site list may be
// mutated by dynamic updates, so no sorted-order assumption is made.
func (in *Instance) SiteIDOf(node roadnet.NodeID) (SiteID, bool) {
	for i, s := range in.Sites {
		if s == node {
			return SiteID(i), true
		}
	}
	return -1, false
}

// Query carries the online parameters of a TOPS query (k, τ, ψ); τ lives
// inside Pref.
type Query struct {
	K    int
	Pref Preference
}

// Validate rejects malformed queries.
func (q Query) Validate(n int) error {
	if q.K <= 0 {
		return fmt.Errorf("tops: k = %d must be positive", q.K)
	}
	if q.K > n {
		return fmt.Errorf("tops: k = %d exceeds number of candidate sites %d", q.K, n)
	}
	return q.Pref.Validate()
}

// Result is the answer to a TOPS query.
type Result struct {
	// Selected lists the chosen sites in selection order (greedy) or
	// arbitrary order (exact solver).
	Selected []SiteID
	// Utility is U(Q) = Σ_j max_{s∈Q} ψ(T_j, s).
	Utility float64
	// UtilityPerIter records U(Q_θ) after each greedy iteration; nil for
	// non-iterative algorithms.
	UtilityPerIter []float64
	// Covered counts trajectories with positive utility.
	Covered int
	// Exact is true when the result is provably optimal.
	Exact bool
}

// SelectedNodes maps the selected site ids back to road-network nodes.
func (r Result) SelectedNodes(in *Instance) []roadnet.NodeID {
	out := make([]roadnet.NodeID, len(r.Selected))
	for i, s := range r.Selected {
		out[i] = in.SiteNode(s)
	}
	return out
}
