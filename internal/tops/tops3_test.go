package tops

import (
	"math"
	"math/rand"
	"testing"

	"netclus/internal/trajectory"
)

// TOPS3 (minimize user inconvenience, §7.4): assuming every user avails the
// service, minimize the expected deviation. Maximizing ψ = −dr with τ = ∞
// is equivalent — within a distance horizon dmax — to maximizing the affine
// transform ψ' = 1 − dr/dmax, i.e. the Linear preference at τ = dmax, since
// both orderings of selections coincide once every trajectory is covered.
// These tests exercise that route end to end.

func TestTOPS3LinearTransformMinimizesDeviation(t *testing.T) {
	inst, _ := gridInstance(t, 400, 40, 60, 81)
	const dmax = 6.0
	idx, err := BuildDistanceIndex(inst, dmax)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := BuildCoverSets(idx, Linear(dmax))
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	res, err := IncGreedy(cs, GreedyOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}

	// Total deviation of a selection: Σ_j min over selected of dr, with
	// uncovered trajectories priced at the horizon.
	deviation := func(sel []SiteID) float64 {
		var total float64
		for tid := 0; tid < inst.M(); tid++ {
			best := dmax
			for _, s := range sel {
				if d := idx.Detour(trajectory.ID(tid), s); d < best {
					best = d
				}
			}
			total += best
		}
		return total
	}
	greedyDev := deviation(res.Selected)

	// The greedy deviation must beat random selections of the same size.
	rng := rand.New(rand.NewSource(82))
	beaten := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(inst.N())
		sel := make([]SiteID, k)
		for i := 0; i < k; i++ {
			sel[i] = SiteID(perm[i])
		}
		if greedyDev <= deviation(sel)+1e-9 {
			beaten++
		}
	}
	if beaten < trials*9/10 {
		t.Errorf("greedy deviation %v beat only %d/%d random selections", greedyDev, beaten, trials)
	}
}

func TestTOPS3DeviationDecreasesWithK(t *testing.T) {
	inst, _ := gridInstance(t, 400, 30, 50, 83)
	const dmax = 6.0
	idx, err := BuildDistanceIndex(inst, dmax)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := BuildCoverSets(idx, Linear(dmax))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := IncGreedy(cs, GreedyOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		var dev float64
		for tid := 0; tid < inst.M(); tid++ {
			best := dmax
			for _, s := range res.Selected {
				if d := idx.Detour(trajectory.ID(tid), s); d < best {
					best = d
				}
			}
			dev += best
		}
		if dev > prev+1e-9 {
			t.Fatalf("k=%d: deviation grew: %v after %v", k, dev, prev)
		}
		prev = dev
	}
}

func TestNegativeDistancePreferenceDirectUse(t *testing.T) {
	// The raw TOPS3 preference is usable with EvaluateSelection semantics:
	// scores are negative, higher (closer) is better.
	p := NegativeDistance()
	if p.Score(1) <= p.Score(2) {
		t.Error("closer site should score higher")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}
