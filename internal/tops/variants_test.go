package tops

import (
	"math"
	"math/rand"
	"testing"
)

func TestCostGreedyReducesToTOPSWithUnitCosts(t *testing.T) {
	// §7.1: TOPS reduces to TOPS-COST with unit costs and B = k.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		cs := randomCoverSets(rng, 20, 60, 0.2, false)
		costs := make([]float64, cs.N())
		for i := range costs {
			costs[i] = 1
		}
		k := 4
		cost, err := CostGreedy(cs, CostOptions{Costs: costs, Budget: float64(k)})
		if err != nil {
			t.Fatal(err)
		}
		if len(cost.Selected) > k {
			t.Fatalf("selected %d sites with budget %d", len(cost.Selected), k)
		}
		// The ratio rule with equal costs is the plain greedy, so the
		// utilities should match (up to the single-site augmentation which
		// can only help).
		plain, _ := IncGreedy(cs, GreedyOptions{K: k})
		if cost.Utility < plain.Utility-1e-9 {
			t.Fatalf("trial %d: unit-cost TOPS-COST %v below TOPS %v", trial, cost.Utility, plain.Utility)
		}
	}
}

func TestCostGreedyRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 15; trial++ {
		cs := randomCoverSets(rng, 25, 70, 0.2, false)
		costs := make([]float64, cs.N())
		for i := range costs {
			costs[i] = 0.1 + rng.Float64()*2
		}
		budget := 3.0
		res, err := CostGreedy(cs, CostOptions{Costs: costs, Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		var spent float64
		seen := map[SiteID]bool{}
		for _, s := range res.Selected {
			if seen[s] {
				t.Fatal("site selected twice")
			}
			seen[s] = true
			spent += costs[s]
		}
		if spent > budget+1e-9 {
			t.Fatalf("trial %d: spent %v > budget %v", trial, spent, budget)
		}
	}
}

func TestCostGreedySingleSiteAugmentation(t *testing.T) {
	// Classic worst case for the ratio rule: a cheap low-value site and an
	// expensive high-value site. Ratio picks the cheap one and cannot
	// afford the big one afterwards; the augmentation must recover it.
	cs := NewCoverSets(2, 101)
	cs.AddPair(0, 0, 1) // site 0: covers 1 trajectory, cost 1 -> ratio 1.0
	for tr := int32(1); tr <= 100; tr++ {
		cs.AddPair(1, tr, 1) // site 1: covers 100, cost 101 -> ratio ~0.99
	}
	costs := []float64{1, 101}
	res, err := CostGreedy(cs, CostOptions{Costs: costs, Budget: 101})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility < 100 {
		t.Errorf("augmentation failed: utility %v, want >= 100", res.Utility)
	}
}

func TestCostGreedyMoreVarianceMoreUtility(t *testing.T) {
	// Fig. 7a of the paper: with mean cost 1 and budget fixed, higher cost
	// std-dev lets the greedy buy more cheap sites, increasing utility.
	rng := rand.New(rand.NewSource(53))
	cs := randomCoverSets(rng, 60, 400, 0.08, true)
	utilAt := func(sigma float64) float64 {
		costs := make([]float64, cs.N())
		crng := rand.New(rand.NewSource(99))
		for i := range costs {
			c := 1.0 + crng.NormFloat64()*sigma
			if c < 0.1 {
				c = 0.1
			}
			costs[i] = c
		}
		res, err := CostGreedy(cs, CostOptions{Costs: costs, Budget: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Utility
	}
	u0 := utilAt(0)
	u1 := utilAt(1.0)
	if u1 < u0 {
		t.Errorf("utility did not grow with cost variance: σ=0 %v, σ=1 %v", u0, u1)
	}
}

func TestCostGreedyValidation(t *testing.T) {
	cs := paperExample1()
	if _, err := CostGreedy(cs, CostOptions{Costs: []float64{1}, Budget: 1}); err == nil {
		t.Error("wrong cost count accepted")
	}
	if _, err := CostGreedy(cs, CostOptions{Costs: []float64{1, 1, 0}, Budget: 1}); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := CostGreedy(cs, CostOptions{Costs: []float64{1, 1, 1}, Budget: 0}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestCapacityGreedyReducesToTOPSWithInfiniteCaps(t *testing.T) {
	// §7.2: TOPS reduces to TOPS-CAPACITY with caps >= m.
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 10; trial++ {
		cs := randomCoverSets(rng, 20, 60, 0.2, false)
		caps := make([]int, cs.N())
		for i := range caps {
			caps[i] = cs.M
		}
		k := 4
		capRes, err := CapacityGreedy(cs, CapacityOptions{K: k, Caps: caps})
		if err != nil {
			t.Fatal(err)
		}
		plain, _ := IncGreedy(cs, GreedyOptions{K: k})
		if math.Abs(capRes.Utility-plain.Utility) > 1e-9 {
			t.Fatalf("trial %d: uncapped TOPS-CAPACITY %v != TOPS %v", trial, capRes.Utility, plain.Utility)
		}
	}
}

func TestCapacityGreedyZeroCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cs := randomCoverSets(rng, 10, 30, 0.3, true)
	caps := make([]int, cs.N())
	res, err := CapacityGreedy(cs, CapacityOptions{K: 3, Caps: caps})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility != 0 || res.Covered != 0 {
		t.Errorf("zero caps produced utility %v covered %d", res.Utility, res.Covered)
	}
}

func TestCapacityGreedyCapsBindServedCount(t *testing.T) {
	// One site covering 10 trajectories with cap 3 can serve only 3.
	cs := NewCoverSets(1, 10)
	for tr := int32(0); tr < 10; tr++ {
		cs.AddPair(0, tr, 1)
	}
	res, err := CapacityGreedy(cs, CapacityOptions{K: 1, Caps: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility != 3 || res.Covered != 3 {
		t.Errorf("cap 3: utility %v covered %d", res.Utility, res.Covered)
	}
}

func TestCapacityGreedyMonotoneInCapacity(t *testing.T) {
	// Fig. 7b: utility grows with mean capacity.
	rng := rand.New(rand.NewSource(56))
	cs := randomCoverSets(rng, 30, 200, 0.15, true)
	utilAt := func(cap int) float64 {
		caps := make([]int, cs.N())
		for i := range caps {
			caps[i] = cap
		}
		res, err := CapacityGreedy(cs, CapacityOptions{K: 5, Caps: caps})
		if err != nil {
			t.Fatal(err)
		}
		return res.Utility
	}
	last := -1.0
	for _, cap := range []int{1, 5, 20, 100, 200} {
		u := utilAt(cap)
		if u < last-1e-9 {
			t.Fatalf("utility decreased at cap %d: %v after %v", cap, u, last)
		}
		last = u
	}
}

func TestCapacityGreedyServesTopGains(t *testing.T) {
	// Two sites, shared trajectory; capacity forces serving the best.
	cs := NewCoverSets(2, 3)
	cs.AddPair(0, 0, 0.9)
	cs.AddPair(0, 1, 0.5)
	cs.AddPair(0, 2, 0.2)
	res, err := CapacityGreedy(cs, CapacityOptions{K: 1, Caps: []int{2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Serves the 0.9 and 0.5 trajectories.
	if math.Abs(res.Utility-1.4) > 1e-12 {
		t.Errorf("utility = %v, want 1.4", res.Utility)
	}
}

func TestCapacityGreedyValidation(t *testing.T) {
	cs := paperExample1()
	if _, err := CapacityGreedy(cs, CapacityOptions{K: 0, Caps: []int{1, 1, 1}}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := CapacityGreedy(cs, CapacityOptions{K: 1, Caps: []int{1}}); err == nil {
		t.Error("wrong cap count accepted")
	}
	if _, err := CapacityGreedy(cs, CapacityOptions{K: 1, Caps: []int{1, -1, 1}}); err == nil {
		t.Error("negative cap accepted")
	}
}
