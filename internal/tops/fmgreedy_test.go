package tops

import (
	"math"
	"math/rand"
	"testing"
)

func TestFMGreedyRejectsNonBinary(t *testing.T) {
	cs := paperExample1() // non-binary scores
	if _, err := FMGreedy(cs, FMGreedyOptions{K: 2, F: 8}); err == nil {
		t.Error("non-binary cover sets accepted")
	}
}

func TestFMGreedyValidation(t *testing.T) {
	cs := NewCoverSets(3, 5)
	if _, err := FMGreedy(cs, FMGreedyOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FMGreedy(cs, FMGreedyOptions{K: 5}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestFMGreedyQualityCloseToExactGreedy(t *testing.T) {
	// Table 8 of the paper: with enough sketches the relative utility loss
	// vs the exact greedy is a few percent. Use f=64 and allow 15% across
	// random instances (estimates are noisy at small set sizes).
	rng := rand.New(rand.NewSource(41))
	var totalRelLoss float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		cs := randomCoverSets(rng, 40, 300, 0.1, true)
		k := 5
		exact, err := IncGreedy(cs, GreedyOptions{K: k})
		if err != nil {
			t.Fatal(err)
		}
		fmres, err := FMGreedy(cs, FMGreedyOptions{K: k, F: 64, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if len(fmres.Selected) != k {
			t.Fatalf("trial %d: selected %d sites", trial, len(fmres.Selected))
		}
		if fmres.Utility > exact.Utility+1e-9 {
			// FM picks a different (possibly worse) set; it can never beat
			// greedy's utility on the same instance by definition of
			// greedy... actually it can: greedy is not optimal. Allow it.
			t.Logf("trial %d: FM beat exact greedy (%v > %v) — possible, greedy is heuristic", trial, fmres.Utility, exact.Utility)
		}
		rel := (exact.Utility - fmres.Utility) / math.Max(exact.Utility, 1e-9)
		if rel > 0 {
			totalRelLoss += rel
		}
	}
	if avg := totalRelLoss / trials; avg > 0.15 {
		t.Errorf("average FM relative loss %.3f > 0.15", avg)
	}
}

func TestFMGreedyErrorShrinksWithF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lossAt := func(f int) float64 {
		var total float64
		const trials = 12
		for trial := 0; trial < trials; trial++ {
			cs := randomCoverSets(rng, 40, 300, 0.08, true)
			exact, _ := IncGreedy(cs, GreedyOptions{K: 5})
			fmres, err := FMGreedy(cs, FMGreedyOptions{K: 5, F: f, Seed: uint64(trial * 100)})
			if err != nil {
				t.Fatal(err)
			}
			rel := (exact.Utility - fmres.Utility) / math.Max(exact.Utility, 1e-9)
			if rel > 0 {
				total += rel
			}
		}
		return total / trials
	}
	l1 := lossAt(1)
	l64 := lossAt(64)
	if l64 > l1+1e-9 {
		t.Errorf("loss did not shrink with f: f=1 %.3f, f=64 %.3f (Table 8 trend)", l1, l64)
	}
}

func TestFMGreedyUtilityIsExactMeasurement(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cs := randomCoverSets(rng, 30, 200, 0.1, true)
	res, err := FMGreedy(cs, FMGreedyOptions{K: 4, F: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	u, covered := EvaluateSelection(cs, res.Selected)
	if math.Abs(u-res.Utility) > 1e-12 || covered != res.Covered {
		t.Errorf("reported utility %v/%d, evaluated %v/%d", res.Utility, res.Covered, u, covered)
	}
	// Binary world: utility equals covered count.
	if math.Abs(res.Utility-float64(res.Covered)) > 1e-12 {
		t.Errorf("binary utility %v != covered %d", res.Utility, res.Covered)
	}
}

func TestFMGreedyDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	cs := randomCoverSets(rng, 25, 150, 0.12, true)
	a, err := FMGreedy(cs, FMGreedyOptions{K: 5, F: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FMGreedy(cs, FMGreedyOptions{K: 5, F: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != len(b.Selected) {
		t.Fatal("non-deterministic selection count")
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatal("non-deterministic selection")
		}
	}
}
