package tops

import (
	"math"
	"math/rand"
	"testing"
)

func TestCollapseToUsersBasic(t *testing.T) {
	// Two trajectories of the same user: site covering both counts once,
	// with the better score.
	cs := NewCoverSets(2, 3)
	cs.AddPair(0, 0, 0.4)
	cs.AddPair(0, 1, 0.9) // same user as traj 0
	cs.AddPair(1, 2, 0.5)
	users := []int32{0, 0, 1}
	ucs, err := CollapseToUsers(cs, users, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ucs.M != 2 {
		t.Fatalf("user universe = %d", ucs.M)
	}
	if trajs, scores := ucs.TC(0); len(trajs) != 1 || scores[0] != 0.9 {
		t.Fatalf("site 0 user cover = %v/%v, want single 0.9 entry", trajs, scores)
	}
	u, covered := EvaluateSelection(ucs, []SiteID{0})
	if math.Abs(u-0.9) > 1e-12 || covered != 1 {
		t.Errorf("selection eval: %v, %d", u, covered)
	}
}

func TestCollapseToUsersIdentityWhenAllDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cs := randomCoverSets(rng, 15, 40, 0.25, false)
	users := make([]int32, cs.M)
	for i := range users {
		users[i] = int32(i)
	}
	ucs, err := CollapseToUsers(cs, users, cs.M)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := IncGreedy(cs, GreedyOptions{K: 4})
	b, _ := IncGreedy(ucs, GreedyOptions{K: 4})
	if math.Abs(a.Utility-b.Utility) > 1e-9 {
		t.Errorf("identity collapse changed greedy utility: %v vs %v", a.Utility, b.Utility)
	}
}

func TestCollapseToUsersNeverIncreasesUtility(t *testing.T) {
	// Merging trajectories into users can only reduce total utility (max
	// replaces sum within a user).
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		cs := randomCoverSets(rng, 12, 30, 0.3, trial%2 == 0)
		numUsers := 5 + rng.Intn(5)
		users := make([]int32, cs.M)
		for i := range users {
			users[i] = int32(rng.Intn(numUsers))
		}
		ucs, err := CollapseToUsers(cs, users, numUsers)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := IncGreedy(cs, GreedyOptions{K: 3})
		b, _ := IncGreedy(ucs, GreedyOptions{K: 3})
		if b.Utility > a.Utility+1e-9 {
			t.Fatalf("trial %d: user-level utility %v exceeds trajectory-level %v", trial, b.Utility, a.Utility)
		}
	}
}

func TestCollapseToUsersValidation(t *testing.T) {
	cs := NewCoverSets(2, 3)
	if _, err := CollapseToUsers(cs, []int32{0, 0}, 1); err == nil {
		t.Error("short user vector accepted")
	}
	if _, err := CollapseToUsers(cs, []int32{0, 0, 5}, 2); err == nil {
		t.Error("out-of-range user accepted")
	}
	if _, err := CollapseToUsers(cs, []int32{0, 0, 0}, 0); err == nil {
		t.Error("zero users accepted")
	}
}
