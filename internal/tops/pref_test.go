package tops

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinaryPreference(t *testing.T) {
	p := Binary(0.8)
	if got := p.Score(0); got != 1 {
		t.Errorf("Score(0) = %v", got)
	}
	if got := p.Score(0.8); got != 1 {
		t.Errorf("Score(tau) = %v", got)
	}
	if got := p.Score(0.80001); got != 0 {
		t.Errorf("Score(>tau) = %v", got)
	}
	if got := p.Score(math.Inf(1)); got != 0 {
		t.Errorf("Score(inf) = %v", got)
	}
	if got := p.Score(math.NaN()); got != 0 {
		t.Errorf("Score(NaN) = %v", got)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLinearPreference(t *testing.T) {
	p := Linear(2)
	if got := p.Score(0); got != 1 {
		t.Errorf("Score(0) = %v", got)
	}
	if got := p.Score(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Score(1) = %v", got)
	}
	if got := p.Score(2); got != 0 {
		t.Errorf("Score(tau) = %v", got)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConvexQuadratic(t *testing.T) {
	p := ConvexQuadratic(2)
	if got := p.Score(1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Score(1) = %v", got)
	}
	// Convexity at sampled points: f(mid) <= (f(a)+f(b))/2.
	for _, ab := range [][2]float64{{0, 2}, {0.5, 1.5}, {1, 2}} {
		a, b := ab[0], ab[1]
		mid := p.Score((a + b) / 2)
		if mid > (p.Score(a)+p.Score(b))/2+1e-12 {
			t.Errorf("not convex on [%v,%v]", a, b)
		}
	}
}

func TestExpDecay(t *testing.T) {
	p := ExpDecay(5, 1)
	if got := p.Score(0); got != 1 {
		t.Errorf("Score(0) = %v", got)
	}
	if got := p.Score(1); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("Score(1) = %v", got)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNegativeDistance(t *testing.T) {
	p := NegativeDistance()
	if got := p.Score(3); got != -3 {
		t.Errorf("Score(3) = %v", got)
	}
	// Unbounded tau: everything scores.
	if got := p.Score(1e9); got != -1e9 {
		t.Errorf("Score(1e9) = %v", got)
	}
}

func TestValidateRejectsIncreasing(t *testing.T) {
	p := Preference{Tau: 1, F: func(d float64) float64 { return d }}
	if err := p.Validate(); err == nil {
		t.Error("increasing preference accepted")
	}
	p2 := Preference{Tau: -1}
	if err := p2.Validate(); err == nil {
		t.Error("negative tau accepted")
	}
	p3 := Preference{Tau: 1, F: func(d float64) float64 { return math.NaN() }}
	if err := p3.Validate(); err == nil {
		t.Error("NaN preference accepted")
	}
}

func TestAllPreferencesNonIncreasingProperty(t *testing.T) {
	prefs := []Preference{Binary(1.7), Linear(1.7), ConvexQuadratic(1.7), ExpDecay(1.7, 2)}
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1.7))
		b = math.Abs(math.Mod(b, 1.7))
		if a > b {
			a, b = b, a
		}
		for _, p := range prefs {
			if p.Score(a) < p.Score(b)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScoresNormalized(t *testing.T) {
	// All standard preferences (not TOPS3) stay within [0,1].
	for _, p := range []Preference{Binary(2), Linear(2), ConvexQuadratic(2), ExpDecay(2, 0.5)} {
		for d := 0.0; d <= 3; d += 0.1 {
			s := p.Score(d)
			if s < 0 || s > 1 {
				t.Errorf("%s: Score(%v) = %v outside [0,1]", p.Name, d, s)
			}
		}
	}
}
