package tops

import (
	"math"
	"math/rand"
	"testing"

	"netclus/internal/gen"
	"netclus/internal/geo"
	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// gridInstance builds a small deterministic instance over a grid city.
func gridInstance(t testing.TB, nodes, trajs, sites int, seed int64) (*Instance, *gen.City) {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: nodes, SpanKm: 10, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: trajs, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	siteIDs, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: sites, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(city.Graph, store, siteIDs)
	if err != nil {
		t.Fatal(err)
	}
	return inst, city
}

func TestNewInstanceValidation(t *testing.T) {
	inst, _ := gridInstance(t, 200, 10, 20, 1)
	if _, err := NewInstance(nil, inst.Trajs, inst.Sites); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewInstance(inst.G, trajectory.NewStore(0), inst.Sites); err == nil {
		t.Error("empty trajectories accepted")
	}
	if _, err := NewInstance(inst.G, inst.Trajs, nil); err == nil {
		t.Error("empty sites accepted")
	}
	if _, err := NewInstance(inst.G, inst.Trajs, []roadnet.NodeID{99999}); err == nil {
		t.Error("invalid site node accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	if err := (Query{K: 0, Pref: Binary(1)}).Validate(10); err == nil {
		t.Error("k=0 accepted")
	}
	if err := (Query{K: 11, Pref: Binary(1)}).Validate(10); err == nil {
		t.Error("k>n accepted")
	}
	if err := (Query{K: 5, Pref: Binary(1)}).Validate(10); err != nil {
		t.Error(err)
	}
}

func TestDetourLineGraph(t *testing.T) {
	// Line 0-1-2-3-4 with unit bidirectional edges; site at node 4 off a
	// trajectory 0..2 should cost a detour of 2*(distance from exit).
	g := roadnet.New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(geo.Point{X: float64(i)})
	}
	for i := 0; i+1 < 5; i++ {
		if err := g.AddBidirectional(roadnet.NodeID(i), roadnet.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	store := trajectory.NewStore(1)
	tr, err := trajectory.New(g, []roadnet.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	store.Add(tr)
	inst, err := NewInstance(g, store, []roadnet.NodeID{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildDistanceIndex(inst, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Site on the trajectory: zero detour.
	if d := idx.Detour(0, 0); d != 0 {
		t.Errorf("detour to on-path site 0 = %v", d)
	}
	if d := idx.Detour(0, 1); d != 0 {
		t.Errorf("detour to on-path site 2 = %v", d)
	}
	// Site at node 4: best deviation leaves at node 2 (end), walks 2 km
	// to 4 and 2 km back: detour = 4.
	if d := idx.Detour(0, 2); math.Abs(d-4) > 1e-12 {
		t.Errorf("detour to off-path site 4 = %v, want 4", d)
	}
}

func TestDetourUsesOrderedPairs(t *testing.T) {
	// Directed cycle 0->1->2->3->0 (unit weights). Trajectory 0,1,2.
	// A site at node 3: entering from node k and rejoining at node l >= k.
	g := roadnet.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(geo.Point{X: float64(i)})
	}
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(roadnet.NodeID(i), roadnet.NodeID((i+1)%4), 1); err != nil {
			t.Fatal(err)
		}
	}
	store := trajectory.NewStore(1)
	tr, err := trajectory.New(g, []roadnet.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	store.Add(tr)
	inst, err := NewInstance(g, store, []roadnet.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildDistanceIndex(inst, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Best: leave at node 2 (d(2,3)=1), return to node 2?? must rejoin at
	// l >= k on the trajectory: d(3, v_l) for v_l in {0,1,2} with l >= exit
	// index. Leaving at node 2 (index 2, cum 2): d(2,3)=1, then d(3,2)
	// = 3 (3->0->1->2), rejoining at index 2: detour = 1+3-0 = 4.
	// Leaving at node 0 (index 0): d(0,3)=3, rejoin node 1 (index 1):
	// 3 + d(3,1)=2, minus along 1 => 4. Or rejoin 0: 3+1-0=4. All 4.
	if d := idx.Detour(0, 0); math.Abs(d-4) > 1e-12 {
		t.Errorf("directed detour = %v, want 4", d)
	}
	// Oracle agreement.
	if d := ExactDetour(g, tr, 3); math.Abs(d-4) > 1e-12 {
		t.Errorf("ExactDetour = %v, want 4", d)
	}
}

func TestDistanceIndexMatchesExactOracle(t *testing.T) {
	inst, _ := gridInstance(t, 400, 40, 30, 3)
	const dmax = 1e9 // effectively unbounded: every pair must match oracle
	idx, err := BuildDistanceIndex(inst, dmax)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		tid := trajectory.ID(rng.Intn(inst.M()))
		sid := SiteID(rng.Intn(inst.N()))
		want := ExactDetour(inst.G, inst.Trajs.Get(tid), inst.SiteNode(sid))
		got := idx.Detour(tid, sid)
		if math.IsInf(want, 1) != math.IsInf(got, 1) || (!math.IsInf(want, 1) && math.Abs(got-want) > 1e-9) {
			t.Fatalf("detour(T%d, s%d) = %v, oracle %v", tid, sid, got, want)
		}
	}
}

func TestDistanceIndexBoundedIsSubsetOfExact(t *testing.T) {
	inst, _ := gridInstance(t, 400, 30, 25, 5)
	full, err := BuildDistanceIndex(inst, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := BuildDistanceIndex(inst, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Pairs() > full.Pairs() {
		t.Fatalf("bounded index has more pairs (%d) than full (%d)", bounded.Pairs(), full.Pairs())
	}
	// A bounded search truncates entry/exit legs at the horizon, so a
	// bounded detour is an upper bound of the exact one: every bounded
	// pair must appear in the full index with a detour no larger, and the
	// bounded value must respect the horizon.
	for s := 0; s < inst.N(); s++ {
		for _, p := range bounded.SitePairs(SiteID(s)) {
			if p.Dr > 2.0 {
				t.Fatalf("pair beyond horizon: %v", p.Dr)
			}
			if exact := full.Detour(p.Traj, SiteID(s)); exact > p.Dr+1e-9 {
				t.Fatalf("bounded detour %v below exact %v", p.Dr, exact)
			}
		}
	}
}

func TestDistanceIndexSorted(t *testing.T) {
	inst, _ := gridInstance(t, 300, 30, 20, 7)
	idx, err := BuildDistanceIndex(inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < inst.N(); s++ {
		pairs := idx.SitePairs(SiteID(s))
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Dr < pairs[i-1].Dr {
				t.Fatal("site pairs not sorted")
			}
		}
	}
	for tid := 0; tid < inst.M(); tid++ {
		pairs := idx.TrajPairs(trajectory.ID(tid))
		for i := 1; i < len(pairs); i++ {
			if pairs[i].Dr < pairs[i-1].Dr {
				t.Fatal("traj pairs not sorted")
			}
		}
	}
}

func TestDistanceIndexSymmetricPairCount(t *testing.T) {
	inst, _ := gridInstance(t, 300, 25, 20, 9)
	idx, err := BuildDistanceIndex(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	siteSide, trajSide := 0, 0
	for s := 0; s < inst.N(); s++ {
		siteSide += len(idx.SitePairs(SiteID(s)))
	}
	for tid := 0; tid < inst.M(); tid++ {
		trajSide += len(idx.TrajPairs(trajectory.ID(tid)))
	}
	if siteSide != trajSide || siteSide != idx.Pairs() {
		t.Fatalf("pair count mismatch: site-side %d traj-side %d counter %d", siteSide, trajSide, idx.Pairs())
	}
	if idx.MemoryBytes() <= 0 {
		t.Error("memory estimate not positive")
	}
}

func TestBuildDistanceIndexRejectsBadHorizon(t *testing.T) {
	inst, _ := gridInstance(t, 200, 10, 10, 11)
	if _, err := BuildDistanceIndex(inst, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := BuildDistanceIndex(inst, -1); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestDetourOnPathSiteIsZero(t *testing.T) {
	// Any site lying on a trajectory must have detour 0 for it.
	inst, _ := gridInstance(t, 300, 20, 0, 13) // all nodes are sites
	idx, err := BuildDistanceIndex(inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < inst.M(); tid++ {
		tr := inst.Trajs.Get(trajectory.ID(tid))
		for _, v := range tr.Nodes {
			// Site id == node id because all nodes are sites, sorted.
			if d := idx.Detour(trajectory.ID(tid), SiteID(v)); d != 0 {
				t.Fatalf("on-path site %d has detour %v for trajectory %d", v, d, tid)
			}
		}
	}
}
