package tops

import (
	"math/rand"
	"testing"
)

func microInstance(b *testing.B) *Instance {
	b.Helper()
	inst, _ := gridInstance(b, 1500, 300, 0, 99) // all nodes as sites
	return inst
}

func BenchmarkBuildDistanceIndex(b *testing.B) {
	inst := microInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDistanceIndex(inst, 2.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildCoverSets(b *testing.B) {
	inst := microInstance(b)
	idx, err := BuildDistanceIndex(inst, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCoverSets(idx, Binary(0.8)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCoverSets(b *testing.B) *CoverSets {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	return randomCoverSets(rng, 2000, 5000, 0.01, true)
}

func BenchmarkIncGreedyPlain(b *testing.B) {
	cs := benchCoverSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IncGreedy(cs, GreedyOptions{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncGreedyLazy(b *testing.B) {
	cs := benchCoverSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IncGreedy(cs, GreedyOptions{K: 10, Lazy: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFMGreedy(b *testing.B) {
	cs := benchCoverSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FMGreedy(cs, FMGreedyOptions{K: 10, F: 30, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostGreedy(b *testing.B) {
	cs := benchCoverSets(b)
	costs := make([]float64, cs.N())
	rng := rand.New(rand.NewSource(6))
	for i := range costs {
		costs[i] = 0.5 + rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CostGreedy(cs, CostOptions{Costs: costs, Budget: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactDetour(b *testing.B) {
	inst := microInstance(b)
	tr := inst.Trajs.Get(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactDetour(inst.G, tr, inst.SiteNode(SiteID(i%inst.N())))
	}
}
