package wal

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrFenced reports a record or request carrying a fencing token from a
// stale primary term: the epoch it claims is older than one this node has
// already observed.
var ErrFenced = errors.New("wal: fenced (stale epoch)")

// Sink is the engine-side committer both engine.Engine and shard.Sharded
// embed: it owns the attached log, the engine's LSN, and the broken latch,
// so the apply-then-log-then-ack discipline is written once. All methods
// except LSN must be called under the embedding engine's write lock.
type Sink struct {
	log    *Log
	broken bool
	lsn    atomic.Uint64
	// epoch is the fencing token of the primary term this engine last
	// observed — via BeginEpoch (local promotion/boot), ApplyEpoch (replayed
	// KindEpoch record), or RestoreEpoch (checkpoint load).
	epoch atomic.Uint64
}

// LSN reports the last committed (or replayed) sequence number; safe
// without the engine lock.
func (s *Sink) LSN() uint64 { return s.lsn.Load() }

// SetLSN stamps a replayed record's LSN (ApplyRecord path).
func (s *Sink) SetLSN(lsn uint64) { s.lsn.Store(lsn) }

// Attached reports whether a log is connected (replay must refuse then:
// records originate locally).
func (s *Sink) Attached() bool { return s.log != nil }

// Attach connects the log: it must sit exactly at the engine's LSN — an
// empty log is based there, covering fresh deployments and checkpoints
// restored into compacted-away (or new) log directories.
func (s *Sink) Attach(l *Log) error {
	if l == nil {
		return fmt.Errorf("wal: nil log")
	}
	if s.log != nil {
		return fmt.Errorf("wal: log already attached")
	}
	cur := s.lsn.Load()
	if l.IsEmpty() {
		if err := l.SetBase(cur); err != nil {
			return err
		}
	} else if head := l.HeadLSN(); head != cur {
		return fmt.Errorf("wal: log head LSN %d != engine LSN %d (replay the tail before attaching)", head, cur)
	}
	s.log = l
	return nil
}

// Guard rejects mutations after an append failure: the in-memory state is
// ahead of the log, so continuing would widen the divergence.
func (s *Sink) Guard() error {
	if s.broken {
		return fmt.Errorf("%w: log diverged from applied state; restart to recover", ErrLogFailed)
	}
	return nil
}

// Commit appends the record for a mutation that was just applied and
// advances the LSN. Without an attached log it is a no-op returning 0. On
// append failure it latches broken and wraps ErrLogFailed.
func (s *Sink) Commit(kind Kind, body []byte) (uint64, error) {
	if s.log == nil {
		return 0, nil
	}
	lsn, err := s.log.Append(kind, body)
	if err != nil {
		s.broken = true
		return 0, fmt.Errorf("%w: %v", ErrLogFailed, err)
	}
	s.lsn.Store(lsn)
	return lsn, nil
}

// Epoch reports the current fencing token; safe without the engine lock.
func (s *Sink) Epoch() uint64 { return s.epoch.Load() }

// RestoreEpoch stamps the epoch recovered from a checkpoint container
// (load path, before any replay).
func (s *Sink) RestoreEpoch(epoch uint64) { s.epoch.Store(epoch) }

// BeginEpoch opens a new primary term: it logs a KindEpoch record (when a
// log is attached) and advances the fencing token. The epoch must be
// strictly newer than the current one.
func (s *Sink) BeginEpoch(epoch uint64) (uint64, error) {
	if cur := s.epoch.Load(); epoch <= cur {
		return 0, fmt.Errorf("%w: epoch %d not newer than %d", ErrFenced, epoch, cur)
	}
	lsn, err := s.Commit(KindEpoch, EpochBody(epoch))
	if err != nil {
		return 0, err
	}
	s.epoch.Store(epoch)
	return lsn, nil
}

// ApplyEpoch applies a replayed KindEpoch record (the caller has already
// run CheckReplay): the token must not move backwards — a lower epoch
// means the stream comes from a deposed primary.
func (s *Sink) ApplyEpoch(rec Record) error {
	m, err := rec.Mutation()
	if err != nil {
		return err
	}
	if cur := s.epoch.Load(); m.Epoch < cur {
		return fmt.Errorf("%w: epoch record %d below current %d", ErrFenced, m.Epoch, cur)
	}
	s.epoch.Store(m.Epoch)
	s.lsn.Store(rec.LSN)
	return nil
}

// CheckReplay validates a record arriving on the replay surface: in-order
// LSN, and no locally attached log.
func (s *Sink) CheckReplay(rec Record) error {
	if s.log != nil {
		return fmt.Errorf("wal: replay into a log-attached engine (records must come from its own log)")
	}
	if want := s.lsn.Load() + 1; rec.LSN != want {
		return fmt.Errorf("wal: record LSN %d, expected %d", rec.LSN, want)
	}
	return nil
}
