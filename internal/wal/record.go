// Package wal is the durability layer of the serving stack: an append-only
// write-ahead log of the §6 dynamic mutations, plus the checkpoint container
// that pairs a live snapshot with the mutated dataset it re-attaches to.
//
// The log is a directory of segment files. Every record is CRC32-framed and
// carries a log sequence number (LSN); LSNs are dense (each record's LSN is
// its predecessor's plus one), so a snapshot stamped with LSN w recovers by
// replaying exactly the records with LSN > w. Segments rotate at a size
// threshold and compaction deletes whole segments at or below the snapshot
// watermark. The same frame format streams over HTTP (/v1/log) to follower
// read-replicas, which apply records through the identical replay path a
// crash recovery uses.
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// Kind types a log record: one value per §6 mutation, plus the batch
// frames the engine-level batch entry points emit.
type Kind uint8

const (
	// KindAddSite registers one candidate site.
	KindAddSite Kind = 1
	// KindDeleteSite removes one candidate site.
	KindDeleteSite Kind = 2
	// KindAddTrajectory ingests one trajectory (its node sequence).
	KindAddTrajectory Kind = 3
	// KindDeleteTrajectory removes one trajectory by id.
	KindDeleteTrajectory Kind = 4
	// KindAddSites is the batch frame of AddSites.
	KindAddSites Kind = 5
	// KindAddTrajectories is the batch frame of AddTrajectories.
	KindAddTrajectories Kind = 6
	// KindDeleteTrajectories is the batch frame of DeleteTrajectories.
	KindDeleteTrajectories Kind = 7
	// KindEpoch opens a primary term: the body is the u64 epoch (fencing
	// token). It flows through disk frames, the /v1/log stream, and replay
	// like any mutation, so every replica observes term changes in log
	// order and a checkpoint taken after it captures the epoch.
	KindEpoch Kind = 8
)

// String names the record kind for error messages and logs.
func (k Kind) String() string {
	switch k {
	case KindAddSite:
		return "add_site"
	case KindDeleteSite:
		return "delete_site"
	case KindAddTrajectory:
		return "add_trajectory"
	case KindDeleteTrajectory:
		return "delete_trajectory"
	case KindAddSites:
		return "add_sites"
	case KindAddTrajectories:
		return "add_trajectories"
	case KindDeleteTrajectories:
		return "delete_trajectories"
	case KindEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

func (k Kind) valid() bool { return k >= KindAddSite && k <= KindEpoch }

// Record is one logged mutation: its sequence number, kind, and the
// kind-specific body (see the Body constructors below).
type Record struct {
	LSN  uint64
	Kind Kind
	Body []byte
}

// Body constructors. Bodies are little-endian and fully self-delimiting so
// a record round-trips through disk and network identically.

// NodeBody encodes a single id (node or trajectory id).
func NodeBody(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// EpochBody encodes a KindEpoch record's fencing token.
func EpochBody(epoch uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], epoch)
	return b[:]
}

// IDListBody encodes a list of ids (trajectory node sequences, site
// batches, trajectory-id batches): u32 count, then count u64 values.
func IDListBody(vs []int64) []byte {
	b := make([]byte, 4+8*len(vs))
	binary.LittleEndian.PutUint32(b, uint32(len(vs)))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[4+8*i:], uint64(v))
	}
	return b
}

// TrajData is the logged form of one trajectory: node sequence plus the
// cumulative along-path distances. Logging CumDist (rather than
// re-deriving it at replay via trajectory.New) keeps recovery bit-exact
// even for trajectories a library caller assembled with distances
// trajectory.New would not produce.
type TrajData struct {
	Nodes []int64
	Cum   []float64
}

// FromTrajectory captures a trajectory for logging.
func FromTrajectory(tr *trajectory.Trajectory) TrajData {
	d := TrajData{Nodes: make([]int64, len(tr.Nodes)), Cum: append([]float64(nil), tr.CumDist...)}
	for i, v := range tr.Nodes {
		d.Nodes[i] = int64(v)
	}
	return d
}

// Trajectory reconstructs the exact logged trajectory over g, validating
// node ranges and structural invariants (never panicking on garbage).
func (d TrajData) Trajectory(g *roadnet.Graph) (*trajectory.Trajectory, error) {
	if len(d.Nodes) != len(d.Cum) {
		return nil, fmt.Errorf("wal: trajectory record has %d nodes, %d distances", len(d.Nodes), len(d.Cum))
	}
	tr := &trajectory.Trajectory{
		Nodes:   make([]roadnet.NodeID, len(d.Nodes)),
		CumDist: append([]float64(nil), d.Cum...),
	}
	for i, v := range d.Nodes {
		if v < 0 || int64(int32(v)) != v || int(v) >= g.NumNodes() {
			return nil, fmt.Errorf("wal: trajectory record node %d outside graph", v)
		}
		tr.Nodes[i] = roadnet.NodeID(v)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("wal: trajectory record invalid: %w", err)
	}
	return tr, nil
}

// TrajectoryBody encodes one trajectory: u32 len, len u64 nodes, len f64
// cumulative distances.
func TrajectoryBody(tr *trajectory.Trajectory) []byte {
	return appendTraj(nil, FromTrajectory(tr))
}

func appendTraj(b []byte, d TrajData) []byte {
	var u4 [4]byte
	var u8 [8]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(len(d.Nodes)))
	b = append(b, u4[:]...)
	for _, v := range d.Nodes {
		binary.LittleEndian.PutUint64(u8[:], uint64(v))
		b = append(b, u8[:]...)
	}
	for _, c := range d.Cum {
		binary.LittleEndian.PutUint64(u8[:], math.Float64bits(c))
		b = append(b, u8[:]...)
	}
	return b
}

// TrajectoriesBody encodes a batch: u32 count, then one TrajectoryBody
// block per trajectory.
func TrajectoriesBody(trs []*trajectory.Trajectory) []byte {
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(len(trs)))
	b := append([]byte(nil), u4[:]...)
	for _, tr := range trs {
		b = appendTraj(b, FromTrajectory(tr))
	}
	return b
}

// maxListLen bounds decoded list lengths: a record body is CRC-protected on
// disk, but followers decode frames straight off the network, so the
// decoder must stay allocation-safe on adversarial input.
const maxListLen = 1 << 24

// Mutation is the decoded, typed form of a record body — what the engine
// and sharded replay paths dispatch on.
type Mutation struct {
	Kind Kind
	// Node addresses add_site / delete_site; ID addresses delete_trajectory.
	Node, ID int64
	// Nodes carries add_sites' site nodes or delete_trajectories' ids.
	Nodes []int64
	// Traj carries add_trajectory's data; Trajs carries add_trajectories'.
	Traj  TrajData
	Trajs []TrajData
	// Epoch carries a KindEpoch record's fencing token.
	Epoch uint64
}

type bodyReader struct {
	b   []byte
	off int
}

func (r *bodyReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("wal: truncated body at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *bodyReader) i64() (int64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("wal: truncated body at offset %d", r.off)
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *bodyReader) i64List() ([]int64, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxListLen {
		return nil, fmt.Errorf("wal: implausible list length %d", n)
	}
	if r.off+8*int(n) > len(r.b) {
		return nil, fmt.Errorf("wal: list of %d overruns body", n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i], _ = r.i64()
	}
	return out, nil
}

func (r *bodyReader) traj() (TrajData, error) {
	n, err := r.u32()
	if err != nil {
		return TrajData{}, err
	}
	if n > maxListLen {
		return TrajData{}, fmt.Errorf("wal: implausible trajectory length %d", n)
	}
	if r.off+16*int(n) > len(r.b) {
		return TrajData{}, fmt.Errorf("wal: trajectory of %d overruns body", n)
	}
	d := TrajData{Nodes: make([]int64, n), Cum: make([]float64, n)}
	for i := range d.Nodes {
		d.Nodes[i], _ = r.i64()
	}
	for i := range d.Cum {
		v, _ := r.i64()
		d.Cum[i] = math.Float64frombits(uint64(v))
	}
	return d, nil
}

func (r *bodyReader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("wal: %d trailing body bytes", len(r.b)-r.off)
	}
	return nil
}

// Mutation decodes the record body into its typed form. It never panics:
// any structural problem — unknown kind, truncated list, trailing bytes —
// is an error, so a follower can decode frames from an untrusted stream.
func (r Record) Mutation() (Mutation, error) {
	m := Mutation{Kind: r.Kind}
	br := &bodyReader{b: r.Body}
	var err error
	switch r.Kind {
	case KindAddSite, KindDeleteSite:
		m.Node, err = br.i64()
	case KindDeleteTrajectory:
		m.ID, err = br.i64()
	case KindAddSites, KindDeleteTrajectories:
		m.Nodes, err = br.i64List()
	case KindAddTrajectory:
		m.Traj, err = br.traj()
	case KindEpoch:
		var v int64
		if v, err = br.i64(); err == nil {
			m.Epoch = uint64(v)
		}
	case KindAddTrajectories:
		var n uint32
		if n, err = br.u32(); err == nil {
			if n > maxListLen {
				return m, fmt.Errorf("wal: implausible trajectory count %d", n)
			}
			m.Trajs = make([]TrajData, 0, min(int(n), 1024))
			for i := uint32(0); i < n && err == nil; i++ {
				var tr TrajData
				tr, err = br.traj()
				m.Trajs = append(m.Trajs, tr)
			}
		}
	default:
		return m, fmt.Errorf("wal: unknown record kind %d", uint8(r.Kind))
	}
	if err != nil {
		return m, fmt.Errorf("wal: decoding %s record: %w", r.Kind, err)
	}
	if err := br.done(); err != nil {
		return m, fmt.Errorf("wal: decoding %s record: %w", r.Kind, err)
	}
	return m, nil
}
