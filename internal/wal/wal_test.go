package wal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// appendN appends n simple records and returns their LSNs.
func appendN(t *testing.T, l *Log, n int) []uint64 {
	t.Helper()
	var lsns []uint64
	for i := 0; i < n; i++ {
		lsn, err := l.Append(KindAddSite, NodeBody(int64(i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns = append(lsns, lsn)
	}
	return lsns
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsns := appendN(t, l, 10)
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("append %d assigned LSN %d", i, lsn)
		}
	}
	recs, head, err := l.ReadFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if head != 10 || len(recs) != 10 {
		t.Fatalf("read %d records to head %d, want 10/10", len(recs), head)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) || rec.Kind != KindAddSite {
			t.Fatalf("record %d = {%d %s}", i, rec.LSN, rec.Kind)
		}
		m, err := rec.Mutation()
		if err != nil {
			t.Fatal(err)
		}
		if m.Node != int64(i) {
			t.Fatalf("record %d node %d, want %d", i, m.Node, i)
		}
	}
	// Mid-log start and the empty head+1 probe.
	recs, _, err = l.ReadFrom(7, 0)
	if err != nil || len(recs) != 4 {
		t.Fatalf("ReadFrom(7) = %d records, %v", len(recs), err)
	}
	recs, _, err = l.ReadFrom(11, 0)
	if err != nil || len(recs) != 0 {
		t.Fatalf("ReadFrom(head+1) = %d records, %v", len(recs), err)
	}
	if _, _, err := l.ReadFrom(12, 0); err == nil {
		t.Fatal("ReadFrom beyond head+1 accepted")
	}
	if _, _, err := l.ReadFrom(0, 0); err == nil {
		t.Fatal("ReadFrom(0) accepted")
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.HeadLSN() != 5 {
		t.Fatalf("reopened head %d, want 5", l2.HeadLSN())
	}
	lsn, err := l2.Append(KindDeleteSite, NodeBody(99))
	if err != nil || lsn != 6 {
		t.Fatalf("append after reopen = %d, %v", lsn, err)
	}
	recs, _, err := l2.ReadFrom(1, 0)
	if err != nil || len(recs) != 6 {
		t.Fatalf("full read after reopen = %d records, %v", len(recs), err)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	l, err := Open(dir, Options{Policy: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 20)
	st := l.Stats()
	if st.Segments < 5 {
		t.Fatalf("expected many small segments, got %d", st.Segments)
	}
	recs, _, err := l.ReadFrom(1, 0)
	if err != nil || len(recs) != 20 {
		t.Fatalf("cross-segment read = %d records, %v", len(recs), err)
	}
	// Compact half; early reads must now fail with ErrCompacted.
	removed, err := l.Compact(10)
	if err != nil || removed == 0 {
		t.Fatalf("Compact: removed %d, %v", removed, err)
	}
	first := l.FirstLSN()
	if first <= 1 || first > 11 {
		t.Fatalf("first LSN after compaction = %d", first)
	}
	if _, _, err := l.ReadFrom(1, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("compacted read error = %v, want ErrCompacted", err)
	}
	recs, _, err = l.ReadFrom(first, 0)
	if err != nil || len(recs) != int(20-first+1) {
		t.Fatalf("post-compaction read from %d = %d records, %v", first, len(recs), err)
	}
	// The active segment survives any watermark.
	if _, err := l.Compact(1 << 30); err != nil {
		t.Fatal(err)
	}
	if l.HeadLSN() != 20 {
		t.Fatalf("head after over-compaction = %d", l.HeadLSN())
	}
	if _, err := l.Append(KindAddSite, NodeBody(1)); err != nil {
		t.Fatalf("append after compaction: %v", err)
	}
}

func TestTornTailRecoversPrefix(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 11} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 8)
		l.Close()
		names, err := segmentNames(dir)
		if err != nil || len(names) != 1 {
			t.Fatalf("segments: %v %v", names, err)
		}
		path := filepath.Join(dir, names[0])
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{Policy: SyncAlways})
		if err != nil {
			t.Fatalf("reopen after %d-byte cut: %v", cut, err)
		}
		if l2.HeadLSN() != 7 {
			t.Fatalf("cut %d: head %d, want 7 (last whole record)", cut, l2.HeadLSN())
		}
		// The log must accept appends again at the repaired position.
		if lsn, err := l2.Append(KindAddSite, NodeBody(1)); err != nil || lsn != 8 {
			t.Fatalf("cut %d: append after repair = %d, %v", cut, lsn, err)
		}
		l2.Close()
	}
}

func TestSetBaseAndAppendRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetBase(41); err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.Append(KindAddSite, NodeBody(1)); err != nil || lsn != 42 {
		t.Fatalf("append after SetBase = %d, %v", lsn, err)
	}
	if err := l.SetBase(7); err == nil {
		t.Fatal("SetBase on a non-empty log accepted")
	}
	// AppendRecord must extend by exactly one.
	if err := l.AppendRecord(Record{LSN: 44, Kind: KindAddSite, Body: NodeBody(2)}); err == nil {
		t.Fatal("gap record accepted")
	}
	if err := l.AppendRecord(Record{LSN: 43, Kind: KindAddSite, Body: NodeBody(2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// A fresh unbased log adopts the first record's LSN as its base — the
	// follower persisting a primary's stream after a checkpoint bootstrap.
	l2, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.AppendRecord(Record{LSN: 100, Kind: KindAddSite, Body: NodeBody(3)}); err != nil {
		t.Fatal(err)
	}
	if l2.HeadLSN() != 100 || l2.FirstLSN() != 100 {
		t.Fatalf("adopted base: head %d first %d", l2.HeadLSN(), l2.FirstLSN())
	}
}

func TestResetDiscardsAndRebases(t *testing.T) {
	// The follower flow: a local log based mid-stream no longer lines up
	// with a fresh primary checkpoint; Reset discards it and the next
	// AppendRecord establishes a new base.
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.SetBase(10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(KindAddSite, NodeBody(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if !l.IsEmpty() || l.HeadLSN() != 0 {
		t.Fatalf("after Reset: empty=%v head=%d", l.IsEmpty(), l.HeadLSN())
	}
	if names, _ := segmentNames(dir); len(names) != 0 {
		t.Fatalf("Reset left segments: %v", names)
	}
	if err := l.AppendRecord(Record{LSN: 50, Kind: KindAddSite, Body: NodeBody(9)}); err != nil {
		t.Fatal(err)
	}
	if l.HeadLSN() != 50 || l.FirstLSN() != 50 {
		t.Fatalf("rebased log: head %d first %d", l.HeadLSN(), l.FirstLSN())
	}
	// And the rebase survives a reopen.
	l.Close()
	l2, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.HeadLSN() != 50 {
		t.Fatalf("reopened rebased head %d", l2.HeadLSN())
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	cases := []struct {
		kind Kind
		body []byte
		want Mutation
	}{
		{KindAddSite, NodeBody(17), Mutation{Kind: KindAddSite, Node: 17}},
		{KindDeleteSite, NodeBody(3), Mutation{Kind: KindDeleteSite, Node: 3}},
		{KindAddTrajectory, TrajectoryBody(&trajectory.Trajectory{Nodes: []roadnet.NodeID{1, 2, 3}, CumDist: []float64{0, 1, 2.5}}),
			Mutation{Kind: KindAddTrajectory, Traj: TrajData{Nodes: []int64{1, 2, 3}, Cum: []float64{0, 1, 2.5}}}},
		{KindDeleteTrajectory, NodeBody(9), Mutation{Kind: KindDeleteTrajectory, ID: 9}},
		{KindAddSites, IDListBody([]int64{4, 5}), Mutation{Kind: KindAddSites, Nodes: []int64{4, 5}}},
		{KindAddTrajectories, TrajectoriesBody([]*trajectory.Trajectory{
			{Nodes: []roadnet.NodeID{1, 2}, CumDist: []float64{0, 2}},
			{Nodes: []roadnet.NodeID{3}, CumDist: []float64{0}},
		}), Mutation{Kind: KindAddTrajectories, Trajs: []TrajData{
			{Nodes: []int64{1, 2}, Cum: []float64{0, 2}},
			{Nodes: []int64{3}, Cum: []float64{0}},
		}}},
		{KindDeleteTrajectories, IDListBody([]int64{0, 2}), Mutation{Kind: KindDeleteTrajectories, Nodes: []int64{0, 2}}},
	}
	for _, tc := range cases {
		m, err := (Record{LSN: 1, Kind: tc.kind, Body: tc.body}).Mutation()
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if !reflect.DeepEqual(m, tc.want) {
			t.Errorf("%s decoded %+v, want %+v", tc.kind, m, tc.want)
		}
	}
	// Structural garbage must error, never panic.
	bad := []Record{
		{LSN: 1, Kind: KindAddSite, Body: []byte{1, 2}},
		{LSN: 1, Kind: KindAddTrajectory, Body: []byte{255, 255, 255, 255}},
		{LSN: 1, Kind: KindAddTrajectory, Body: IDListBody([]int64{1, 2})}, // nodes without distances
		{LSN: 1, Kind: Kind(99), Body: nil},
		{LSN: 1, Kind: KindAddSite, Body: append(NodeBody(1), 0xff)},
		{LSN: 1, Kind: KindAddTrajectories, Body: []byte{2, 0, 0, 0, 1, 0, 0, 0}},
	}
	for _, rec := range bad {
		if _, err := rec.Mutation(); err == nil {
			t.Errorf("kind %s body %v accepted", rec.Kind, rec.Body)
		}
	}
}

func TestStreamFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := []Record{
		{LSN: 1, Kind: KindAddSite, Body: NodeBody(4)},
		{LSN: 2, Kind: KindAddSites, Body: IDListBody([]int64{5, 6})},
	}
	for _, rec := range recs {
		if err := WriteFrame(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	for i := range recs {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if got.LSN != recs[i].LSN || got.Kind != recs[i].Kind || !bytes.Equal(got.Body, recs[i].Body) {
			t.Fatalf("frame %d round-trip mismatch", i)
		}
	}
	if _, err := ReadFrame(br); err == nil || err.Error() != "EOF" {
		t.Fatalf("clean end = %v, want io.EOF", err)
	}
	// A flipped byte must fail the CRC.
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff
	br = bufio.NewReader(bytes.NewReader(raw))
	if _, err := ReadFrame(br); err != nil {
		t.Fatal(err) // first frame untouched
	}
	if _, err := ReadFrame(br); err == nil {
		t.Fatal("corrupt frame accepted")
	}
}

func TestReadFromSeeksThroughSparseIndex(t *testing.T) {
	// Enough records that the sparse offset index has several entries, so
	// tail reads exercise floorOffset seeks instead of front-to-back scans
	// — both on the live log and after a reopen (scan-built index).
	const n = 3*indexStride + 37
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, n)
	check := func(log *Log, from uint64, want int) {
		t.Helper()
		recs, head, err := log.ReadFrom(from, 0)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", from, err)
		}
		if head != n || len(recs) != want {
			t.Fatalf("ReadFrom(%d) = %d records (head %d), want %d", from, len(recs), head, want)
		}
		for i, rec := range recs {
			if rec.LSN != from+uint64(i) {
				t.Fatalf("ReadFrom(%d)[%d] = LSN %d", from, i, rec.LSN)
			}
		}
	}
	probes := []uint64{1, indexStride, indexStride + 1, 2*indexStride - 1, 3*indexStride + 30, n, n + 1}
	for _, from := range probes {
		check(l, from, n-int(from)+1)
	}
	l.Close()
	l2, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, from := range probes {
		check(l2, from, n-int(from)+1)
	}
}

func TestKindNames(t *testing.T) {
	for k := KindAddSite; k <= KindDeleteTrajectories; k++ {
		if name := k.String(); name == "" || name[0] == 'k' {
			t.Errorf("kind %d has no name (%q)", k, name)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind name %q", Kind(99).String())
	}
}

func TestSyncAndAtomicWrite(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.bin")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != "payload" {
		t.Fatalf("atomic write round-trip: %q, %v", raw, err)
	}
	// A failing fill must leave nothing behind.
	failPath := filepath.Join(dir, "fail.bin")
	if err := AtomicWriteFile(failPath, func(w io.Writer) error {
		return errors.New("boom")
	}); err == nil {
		t.Fatal("failing fill succeeded")
	}
	if fileInfo, err := os.Stat(failPath); err == nil {
		t.Fatalf("failed atomic write left %v behind", fileInfo.Name())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() && e.Name() != "out.bin" {
			t.Fatalf("temp debris left behind: %s", e.Name())
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncEveryInterval, SyncNever} {
		l, err := Open(t.TempDir(), Options{Policy: pol, Interval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 5)
		if err := l.Close(); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy name accepted")
	}
}

func TestReplayDrivesApplier(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 12)
	ap := &countingApplier{}
	n, err := Replay(l, ap)
	if err != nil || n != 12 || ap.lsn != 12 {
		t.Fatalf("Replay = %d, %v (applier at %d)", n, err, ap.lsn)
	}
	// Partial replay: an applier already at LSN 5 gets only the tail.
	ap2 := &countingApplier{lsn: 5}
	if n, err := Replay(l, ap2); err != nil || n != 7 {
		t.Fatalf("tail replay = %d, %v", n, err)
	}
	// An applier ahead of the whole log is a mismatch the caller must see.
	ap3 := &countingApplier{lsn: 20}
	if _, err := Replay(l, ap3); err == nil {
		t.Fatal("applier beyond head accepted")
	}
}

func TestReplayEmptyLogAtAnyLSN(t *testing.T) {
	// A checkpoint restored into a fresh (or fully compacted-away) log
	// directory has nothing to replay, whatever LSN it carries; the
	// follower bootstrap-from-checkpoint flow and the operator
	// backup-restore flow both hit exactly this.
	l, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ap := &countingApplier{lsn: 41}
	if n, err := Replay(l, ap); err != nil || n != 0 {
		t.Fatalf("empty-log replay at LSN 41 = %d, %v", n, err)
	}
	// AttachWAL-equivalent: basing then appending continues from the
	// applier's LSN.
	if err := l.SetBase(41); err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.Append(KindAddSite, NodeBody(1)); err != nil || lsn != 42 {
		t.Fatalf("append after base = %d, %v", lsn, err)
	}
}

type countingApplier struct{ lsn uint64 }

func (a *countingApplier) ApplyRecord(rec Record) error {
	if rec.LSN != a.lsn+1 {
		return fmt.Errorf("out of order: %d after %d", rec.LSN, a.lsn)
	}
	a.lsn = rec.LSN
	return nil
}
func (a *countingApplier) LSN() uint64 { return a.lsn }
