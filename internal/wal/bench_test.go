package wal

import (
	"fmt"
	"testing"
	"time"
)

// Append throughput per fsync policy — the EXPERIMENTS.md table of what a
// durability guarantee costs per acknowledged update.
func BenchmarkWALAppend(b *testing.B) {
	body := IDListBody([]int64{1, 2, 3, 4, 5, 6, 7, 8})
	for _, pol := range []SyncPolicy{SyncAlways, SyncEveryInterval, SyncNever} {
		b.Run(string(pol), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Policy: pol, Interval: 10 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(frameHdr + 9 + len(body)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(KindAddSites, body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Replay (read + decode) throughput — the recovery-time side of the
// tradeoff: how fast a log tail streams back into an engine.
func BenchmarkWALReplay(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{Policy: SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			body := IDListBody([]int64{1, 2, 3, 4, 5, 6, 7, 8})
			for i := 0; i < n; i++ {
				if _, err := l.Append(KindAddSites, body); err != nil {
					b.Fatal(err)
				}
			}
			l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l2, err := Open(dir, Options{Policy: SyncNever})
				if err != nil {
					b.Fatal(err)
				}
				ap := &benchApplier{}
				if got, err := Replay(l2, ap); err != nil || got != n {
					b.Fatalf("replayed %d, %v", got, err)
				}
				l2.Close()
			}
		})
	}
}

type benchApplier struct{ lsn uint64 }

func (a *benchApplier) ApplyRecord(rec Record) error {
	if _, err := rec.Mutation(); err != nil {
		return err
	}
	a.lsn = rec.LSN
	return nil
}
func (a *benchApplier) LSN() uint64 { return a.lsn }
