package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Network framing: /v1/log streams records in exactly the on-disk frame
// format, so primary and follower share one codec and one validation path.

// WriteFrame writes one record frame to w.
func WriteFrame(w io.Writer, rec Record) error {
	_, err := w.Write(encodeFrame(rec))
	return err
}

// ReadFrame reads one record frame from r. A clean end of stream returns
// io.EOF; a frame that is truncated mid-way, oversized, or fails its CRC is
// an error — a follower must treat the stream as poisoned, not skip ahead.
func ReadFrame(r *bufio.Reader) (Record, error) {
	var hdr [frameHdr]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("wal: reading frame header: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Record{}, fmt.Errorf("wal: reading frame header: %w", err)
	}
	plen := binary.LittleEndian.Uint32(hdr[0:])
	if plen < 9 || plen > maxFrameBytes {
		return Record{}, fmt.Errorf("wal: implausible frame length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, fmt.Errorf("wal: reading frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return Record{}, fmt.Errorf("wal: frame checksum mismatch")
	}
	rec := Record{
		LSN:  binary.LittleEndian.Uint64(payload[0:]),
		Kind: Kind(payload[8]),
		Body: payload[9:],
	}
	if !rec.Kind.valid() {
		return Record{}, fmt.Errorf("wal: unknown record kind %d", payload[8])
	}
	return rec, nil
}
