package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay holds the log to its recovery contract: for a valid log
// whose (single) segment file is damaged at an arbitrary position — bit
// flips, truncation, garbage overwrites — Open must never panic, must
// recover a strict prefix of the original record sequence, and must leave
// the log appendable. Damage strictly behind a record can cost that record
// and later ones (the scan cannot trust anything past the first invalid
// frame) but never an earlier record, and damage past the end of record i
// never costs records 1..i.
func FuzzWALReplay(f *testing.F) {
	// Build one reference log and remember the byte offset where each
	// record's frame ends.
	refDir := f.TempDir()
	l, err := Open(refDir, Options{Policy: SyncAlways})
	if err != nil {
		f.Fatal(err)
	}
	var want []Record
	for i := 0; i < 6; i++ {
		body := NodeBody(int64(i * 3))
		kind := KindAddSite
		if i%2 == 1 {
			kind = KindAddSites
			body = IDListBody([]int64{int64(i), int64(i + 1)})
		}
		lsn, err := l.Append(kind, body)
		if err != nil {
			f.Fatal(err)
		}
		want = append(want, Record{LSN: lsn, Kind: kind, Body: body})
	}
	l.Close()
	names, err := segmentNames(refDir)
	if err != nil || len(names) != 1 {
		f.Fatalf("reference log segments: %v %v", names, err)
	}
	ref, err := os.ReadFile(filepath.Join(refDir, names[0]))
	if err != nil {
		f.Fatal(err)
	}
	// frameEnd[i] = offset just past record i's frame.
	frameEnd := make([]int, len(want))
	off := segHdrSize
	for i := range want {
		_, n := parseFrame(ref[off:])
		if n == 0 {
			f.Fatalf("reference frame %d unparseable", i)
		}
		off += n
		frameEnd[i] = off
	}

	f.Add(10, byte(0xff), 3)  // header damage
	f.Add(40, byte(0x01), -1) // mid-record bit flip
	f.Add(len(ref)-2, byte(0x80), -1)
	f.Add(0, byte(0), 20) // truncation only
	f.Add(len(ref)/2, byte(0x55), len(ref)/3)

	f.Fuzz(func(t *testing.T, pos int, flip byte, truncate int) {
		data := append([]byte(nil), ref...)
		if truncate >= 0 && truncate < len(data) {
			data = data[:len(data)-truncate%len(data)]
		}
		damaged := len(data) // first byte that may differ from ref
		if len(data) < len(ref) {
			damaged = len(data)
		}
		if flip != 0 && len(data) > 0 {
			p := ((pos % len(data)) + len(data)) % len(data)
			data[p] ^= flip
			if p < damaged {
				damaged = p
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, names[0]), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Policy: SyncNever})
		if err != nil {
			// Open may reject only by reporting, never by panicking; a
			// single-segment log is always repaired or dropped, so an
			// error here is a contract violation.
			t.Fatalf("Open on damaged log errored: %v", err)
		}
		defer l.Close()
		recs, head, err := l.ReadFrom(1, 0)
		if err != nil && !bytes.Contains([]byte(err.Error()), []byte("compacted")) {
			// An empty recovered log reports first==0 via ErrCompacted.
			if head != 0 {
				t.Fatalf("ReadFrom after recovery: %v (head %d)", err, head)
			}
			recs = nil
		}
		// Prefix property: recovered records equal the originals.
		if len(recs) > len(want) {
			t.Fatalf("recovered %d records from a %d-record log", len(recs), len(want))
		}
		for i, rec := range recs {
			if rec.LSN != want[i].LSN || rec.Kind != want[i].Kind || !bytes.Equal(rec.Body, want[i].Body) {
				t.Fatalf("recovered record %d differs from original", i)
			}
		}
		// Untouched-prefix property: records fully on disk before the
		// first damaged byte must survive.
		intact := 0
		for i := range want {
			if frameEnd[i] <= damaged {
				intact = i + 1
			}
		}
		if len(recs) < intact {
			t.Fatalf("damage at offset %d lost record %d (frame ends %v)", damaged, len(recs)+1, frameEnd)
		}
		// The repaired log must accept appends at head+1.
		if lsn, err := l.Append(KindDeleteSite, NodeBody(1)); err != nil || lsn != head+1 {
			t.Fatalf("append after recovery = %d, %v (head %d)", lsn, err, head)
		}
	})
}
