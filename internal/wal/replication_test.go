package wal

import (
	"errors"
	"testing"
	"time"
)

// TestCommitSignalWakesOnAppend: a waiter parked on CommitSignal wakes when
// a record commits — the long-poll tailing primitive.
func TestCommitSignalWakesOnAppend(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	sig := l.CommitSignal()
	select {
	case <-sig:
		t.Fatal("commit signal fired before any append")
	default:
	}

	done := make(chan uint64, 1)
	go func() {
		<-sig
		done <- l.HeadLSN()
	}()
	if _, err := l.Append(KindAddSite, NodeBody(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case head := <-done:
		if head != 1 {
			t.Fatalf("woke at head %d, want 1", head)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit signal did not fire on append")
	}

	// Each append broadcasts on a fresh channel: a waiter parked after the
	// first append wakes on the second.
	sig = l.CommitSignal()
	if _, err := l.Append(KindAddSite, NodeBody(2)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig:
	case <-time.After(5 * time.Second):
		t.Fatal("second append did not broadcast")
	}
}

// TestCommitSignalWakesOnClose: Close releases parked waiters so a draining
// server never strands a long-poll goroutine.
func TestCommitSignalWakesOnClose(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	sig := l.CommitSignal()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake commit-signal waiters")
	}
}

// TestEpochRecordRoundTrip: a KindEpoch record carries its fencing token
// through the disk format and the mutation decoder.
func TestEpochRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(KindEpoch, EpochBody(7))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1 {
		t.Fatalf("epoch record at LSN %d, want 1", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs, _, err := l.ReadFrom(1, 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadFrom = %d records, %v", len(recs), err)
	}
	rec := recs[0]
	if rec.Kind != KindEpoch || rec.Kind.String() != "epoch" {
		t.Fatalf("kind = %v (%s)", rec.Kind, rec.Kind)
	}
	m, err := rec.Mutation()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 7 {
		t.Fatalf("decoded epoch %d, want 7", m.Epoch)
	}
}

// TestSinkEpochFencing: BeginEpoch only moves forward, ApplyEpoch never
// moves backwards, and both report ErrFenced on a stale token.
func TestSinkEpochFencing(t *testing.T) {
	var s Sink
	if s.Epoch() != 0 {
		t.Fatalf("fresh sink epoch %d", s.Epoch())
	}
	// No log attached: BeginEpoch still advances the in-memory token.
	if _, err := s.BeginEpoch(2); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch %d after BeginEpoch(2)", s.Epoch())
	}
	if _, err := s.BeginEpoch(2); !errors.Is(err, ErrFenced) {
		t.Fatalf("BeginEpoch(2) again = %v, want ErrFenced", err)
	}
	if _, err := s.BeginEpoch(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("BeginEpoch(1) = %v, want ErrFenced", err)
	}

	// Replayed epoch records: same epoch is idempotent, lower is fenced,
	// higher advances.
	rec := Record{LSN: 5, Kind: KindEpoch, Body: EpochBody(2)}
	if err := s.ApplyEpoch(rec); err != nil {
		t.Fatalf("ApplyEpoch(same) = %v", err)
	}
	if s.LSN() != 5 {
		t.Fatalf("ApplyEpoch did not stamp LSN: %d", s.LSN())
	}
	rec = Record{LSN: 6, Kind: KindEpoch, Body: EpochBody(1)}
	if err := s.ApplyEpoch(rec); !errors.Is(err, ErrFenced) {
		t.Fatalf("ApplyEpoch(stale) = %v, want ErrFenced", err)
	}
	rec = Record{LSN: 6, Kind: KindEpoch, Body: EpochBody(9)}
	if err := s.ApplyEpoch(rec); err != nil || s.Epoch() != 9 {
		t.Fatalf("ApplyEpoch(newer) = %v, epoch %d", err, s.Epoch())
	}
}

// TestSinkBeginEpochLogsRecord: with a log attached, BeginEpoch writes the
// fencing token into the stream so followers and recovery observe it.
func TestSinkBeginEpochLogsRecord(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var s Sink
	if err := s.Attach(l); err != nil {
		t.Fatal(err)
	}
	lsn, err := s.BeginEpoch(3)
	if err != nil || lsn != 1 {
		t.Fatalf("BeginEpoch = LSN %d, %v", lsn, err)
	}
	recs, _, err := l.ReadFrom(1, 0)
	if err != nil || len(recs) != 1 || recs[0].Kind != KindEpoch {
		t.Fatalf("log after BeginEpoch: %d records, %v", len(recs), err)
	}
	m, err := recs[0].Mutation()
	if err != nil || m.Epoch != 3 {
		t.Fatalf("logged epoch %d, %v", m.Epoch, err)
	}
}
