package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// Checkpoints. A core snapshot re-attaches only to the exact dataset it was
// taken from — after §6 mutations that dataset is no longer the preset: the
// site list has been appended to and swap-removed from, and the trajectory
// store has grown. Recovering from a snapshot alone would therefore need
// the full mutation history, which is exactly what compaction deletes. The
// checkpoint container closes that gap: it bundles the mutated dataset
// state (site list in dense-id order, the full trajectory store) with the
// index snapshot taken under the same engine read lock, so recovery is
//
//	graph (immutable, from the preset) + checkpoint -> engine at LSN w
//	+ WAL records with LSN > w                      -> current state
//
// Layout, little-endian:
//
//	u32 magic "NCCK" | u32 version
//	u64 epoch (v2+; the replication fencing token at checkpoint time)
//	u32 nSites | nSites * u32 node
//	u64 storeLen | store (trajectory.Store.WriteTo)
//	u32 crc32 over everything above
//	inner snapshot (core "NCSS" stream or sharded "NCSM" container)
//
// The inner snapshot carries its own integrity and fingerprint checks; the
// CRC here covers the dataset section so checkpoint corruption reports as
// corruption, not as a confusing fingerprint mismatch.

const (
	ckptMagic   uint32 = 0x4b43434e // "NCCK" little-endian
	ckptVersion uint32 = 2          // v2 added the epoch field; v1 reads as epoch 0
	// maxCkptSites bounds the decoded site list.
	maxCkptSites = 1 << 28
)

// WriteCheckpoint writes the dataset section for (sites, store) and then
// streams the inner snapshot via writeInner. epoch is the replication
// fencing token at checkpoint time (0 when the engine never saw one). The
// caller holds whatever lock makes the views consistent
// (Engine.Checkpoint holds the engine read lock).
func WriteCheckpoint(w io.Writer, sites []roadnet.NodeID, store *trajectory.Store, epoch uint64, writeInner func(io.Writer) (int64, error)) (int64, error) {
	var store64 bytes.Buffer
	if _, err := store.WriteTo(&store64); err != nil {
		return 0, fmt.Errorf("wal: serializing trajectory store: %w", err)
	}
	head := make([]byte, 0, 20+4*len(sites)+8)
	var u4 [4]byte
	var u8 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u4[:], v)
		head = append(head, u4[:]...)
	}
	put32(ckptMagic)
	put32(ckptVersion)
	binary.LittleEndian.PutUint64(u8[:], epoch)
	head = append(head, u8[:]...)
	put32(uint32(len(sites)))
	for _, s := range sites {
		put32(uint32(s))
	}
	binary.LittleEndian.PutUint64(u8[:], uint64(store64.Len()))
	head = append(head, u8[:]...)

	sum := crc32.NewIEEE()
	sum.Write(head)
	sum.Write(store64.Bytes())
	var n int64
	for _, chunk := range [][]byte{head, store64.Bytes()} {
		wrote, err := w.Write(chunk)
		n += int64(wrote)
		if err != nil {
			return n, err
		}
	}
	binary.LittleEndian.PutUint32(u4[:], sum.Sum32())
	wrote, err := w.Write(u4[:])
	n += int64(wrote)
	if err != nil {
		return n, err
	}
	inner, err := writeInner(w)
	n += inner
	return n, err
}

// ReadCheckpoint decodes the dataset section and reconstructs the problem
// instance the inner snapshot re-attaches to, over the given (immutable)
// road network. It returns the instance, the checkpoint's replication
// epoch (0 for v1 containers, which predate epochs), and a buffered reader
// positioned at the inner snapshot — peek its magic to decide between
// core.ReadIndex and shard.LoadSharded.
func ReadCheckpoint(r io.Reader, g *roadnet.Graph) (*tops.Instance, uint64, *bufio.Reader, error) {
	if g == nil {
		return nil, 0, nil, fmt.Errorf("wal: checkpoint needs the road network")
	}
	sum := crc32.NewIEEE()
	var u4 [4]byte
	var u8 [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, u4[:]); err != nil {
			return 0, err
		}
		sum.Write(u4[:])
		return binary.LittleEndian.Uint32(u4[:]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, 0, nil, fmt.Errorf("wal: reading checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return nil, 0, nil, fmt.Errorf("wal: bad checkpoint magic %#x (want %#x)", magic, ckptMagic)
	}
	version, err := get32()
	if err != nil {
		return nil, 0, nil, fmt.Errorf("wal: reading checkpoint version: %w", err)
	}
	if version > ckptVersion {
		return nil, 0, nil, fmt.Errorf("wal: checkpoint format v%d, this reader supports <=v%d", version, ckptVersion)
	}
	if version < 1 {
		return nil, 0, nil, fmt.Errorf("wal: invalid checkpoint version %d", version)
	}
	var epoch uint64
	if version >= 2 {
		if _, err := io.ReadFull(r, u8[:]); err != nil {
			return nil, 0, nil, fmt.Errorf("wal: reading checkpoint epoch: %w", err)
		}
		sum.Write(u8[:])
		epoch = binary.LittleEndian.Uint64(u8[:])
	}
	nSites, err := get32()
	if err != nil {
		return nil, 0, nil, fmt.Errorf("wal: reading checkpoint site count: %w", err)
	}
	if nSites > maxCkptSites || int(nSites) > g.NumNodes() {
		return nil, 0, nil, fmt.Errorf("wal: checkpoint lists %d sites over a %d-node graph", nSites, g.NumNodes())
	}
	sites := make([]roadnet.NodeID, nSites)
	seen := make(map[roadnet.NodeID]bool, nSites)
	for i := range sites {
		v, err := get32()
		if err != nil {
			return nil, 0, nil, fmt.Errorf("wal: reading checkpoint site %d: %w", i, err)
		}
		nv := roadnet.NodeID(int32(v))
		if nv < 0 || int(nv) >= g.NumNodes() {
			return nil, 0, nil, fmt.Errorf("wal: checkpoint site %d outside graph", v)
		}
		if seen[nv] {
			return nil, 0, nil, fmt.Errorf("wal: checkpoint lists site %d twice", nv)
		}
		seen[nv] = true
		sites[i] = nv
	}
	if _, err := io.ReadFull(r, u8[:]); err != nil {
		return nil, 0, nil, fmt.Errorf("wal: reading checkpoint store length: %w", err)
	}
	sum.Write(u8[:])
	storeLen := binary.LittleEndian.Uint64(u8[:])
	const maxStore = 1 << 32
	if storeLen == 0 || storeLen > maxStore {
		return nil, 0, nil, fmt.Errorf("wal: implausible checkpoint store length %d", storeLen)
	}
	raw := make([]byte, storeLen)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, 0, nil, fmt.Errorf("wal: reading checkpoint store: %w", err)
	}
	sum.Write(raw)
	if _, err := io.ReadFull(r, u4[:]); err != nil {
		return nil, 0, nil, fmt.Errorf("wal: reading checkpoint checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(u4[:]); got != sum.Sum32() {
		return nil, 0, nil, fmt.Errorf("wal: checkpoint checksum mismatch (%#x on disk, %#x computed): file is corrupt", got, sum.Sum32())
	}
	store, err := trajectory.ReadStore(bytes.NewReader(raw))
	if err != nil {
		return nil, 0, nil, fmt.Errorf("wal: decoding checkpoint store: %w", err)
	}
	for i := 0; i < store.Len(); i++ {
		for _, v := range store.Get(trajectory.ID(i)).Nodes {
			if v < 0 || int(v) >= g.NumNodes() {
				return nil, 0, nil, fmt.Errorf("wal: checkpoint trajectory %d references node %d outside graph", i, v)
			}
		}
	}
	// Assemble the instance directly: tops.NewInstance insists on non-empty
	// site and trajectory sets, but a checkpoint legitimately captures a
	// dataset whose updates deleted every site.
	return &tops.Instance{G: g, Trajs: store, Sites: sites}, epoch, bufio.NewReader(r), nil
}

// AtomicWriteFile streams fill into a temp sibling of path, fsyncs, opens
// permissions, and renames into place — a crash mid-write never leaves a
// torn checkpoint at the published path.
func AtomicWriteFile(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	if err := fill(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Make the rename durable before the caller acts on it (compaction
	// deletes history the checkpoint covers; metadata ordering across the
	// two is otherwise unspecified). Best-effort: some filesystems reject
	// directory fsync.
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory's metadata, best-effort.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
