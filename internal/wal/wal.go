package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/obs"
)

// On-disk layout. A log directory holds segment files named
// <firstLSN:020d>.wal. Each segment starts with a fixed header
//
//	u32 magic "NCWL" | u32 version | u64 firstLSN
//
// followed by frames
//
//	u32 payloadLen | u32 crc32(payload) | payload = u64 lsn | u8 kind | body
//
// Frames are written with a single Write call, so a crash (or a concurrent
// reader) observes a prefix of whole frames plus at most one torn frame at
// the tail. Open repairs the active segment by truncating at the first
// invalid frame; torn, truncated, or bit-flipped tails therefore lose at
// most the records that were never fully on disk — never earlier ones, and
// never by panicking (FuzzWALReplay holds the log to that contract).

const (
	segMagic   uint32 = 0x4c57434e // "NCWL" little-endian
	segVersion uint32 = 1
	segHdrSize        = 16
	frameHdr          = 8
	// maxFrameBytes bounds one record frame; anything larger is corruption.
	maxFrameBytes = 1 << 26
	segSuffix     = ".wal"
)

// ErrCompacted reports a read below the log's first retained LSN: the
// requested records were deleted by compaction and the reader must restart
// from a checkpoint.
var ErrCompacted = errors.New("wal: requested LSN compacted away")

// ErrLogFailed wraps append failures surfaced through the engine: the
// in-memory state advanced but the log did not, so the engine refuses
// further mutations until restarted.
var ErrLogFailed = errors.New("wal: log append failed")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every record: an acknowledged update is
	// durable, at per-record fsync cost.
	SyncAlways SyncPolicy = "always"
	// SyncEveryInterval group-commits: a background flusher fsyncs every
	// Options.Interval, so a crash loses at most one interval of
	// acknowledged updates (the Redis appendfsync-everysec tradeoff).
	SyncEveryInterval SyncPolicy = "interval"
	// SyncNever leaves flushing to the OS page cache.
	SyncNever SyncPolicy = "none"
)

// ParsePolicy validates a CLI policy name.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncEveryInterval, SyncNever:
		return SyncPolicy(s), nil
	default:
		return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or none)", s)
	}
}

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Zero selects 64 MiB.
	SegmentBytes int64
	// Policy selects the fsync discipline; empty selects SyncEveryInterval.
	Policy SyncPolicy
	// Interval is the group-commit period under SyncEveryInterval. Zero
	// selects 100ms.
	Interval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Policy == "" {
		o.Policy = SyncEveryInterval
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// indexStride is how many records separate sparse offset-index entries: a
// ReadFrom seeks to the floor entry and parses at most indexStride-1
// frames before reaching its start LSN, instead of re-reading the segment
// from its beginning on every follower poll.
const indexStride = 512

// recOff is one sparse-index entry: the byte offset of a record's frame.
type recOff struct {
	lsn uint64
	off int64
}

// segment is the in-memory index of one segment file.
type segment struct {
	name  string
	first uint64   // LSN of the first record
	last  uint64   // LSN of the last record; first-1 when empty
	size  int64    // valid bytes (header + whole frames)
	index []recOff // sparse record offsets, every indexStride records
}

func (s segment) records() uint64 { return s.last - s.first + 1 }

// floorOffset returns the largest indexed offset at or below lsn (the
// segment header end when none).
func (s *segment) floorOffset(lsn uint64) int64 {
	off := int64(segHdrSize)
	for _, e := range s.index {
		if e.lsn > lsn {
			break
		}
		off = e.off
	}
	return off
}

// Log is an append-only segmented record log. Appends, compaction, and
// metadata reads are safe for concurrent use; ReadFrom runs lock-free over
// immutable segment prefixes.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	segs   []segment
	f      *os.File // active segment (last of segs); nil before first append
	head   uint64   // last assigned LSN; == base while the log is empty
	base   uint64   // head value of the empty log (SetBase)
	dirty  bool     // bytes written since the last fsync
	closed bool
	// syncErr latches a background fsync failure; every later Append
	// returns it, so group-commit cannot silently drop durability.
	syncErr error

	// commit is the commit-notification hook: closed and replaced whenever
	// head advances (and on Close), so long-poll log tails wake off the
	// append path instead of polling.
	commit chan struct{}

	appends       atomic.Uint64
	syncs         atomic.Uint64
	appendedBytes atomic.Int64

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (or creates) the log directory, scans every segment, repairs
// the active segment's torn tail, and positions the log for appends. A
// corrupt segment in the middle of the log is an error — that is real data
// loss, not a torn tail — while trailing damage in the final segment is
// truncated away.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: log dir: %w", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, commit: make(chan struct{})}
	prevLast := uint64(0)
	for i, name := range names {
		final := i == len(names)-1
		seg, err := scanSegment(filepath.Join(dir, name), prevLast, final)
		if err != nil {
			return nil, err
		}
		if seg == nil { // final segment with nothing recoverable
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: removing unrecoverable segment %s: %w", name, err)
			}
			continue
		}
		if prevLast > 0 && seg.records() > 0 && seg.first != prevLast+1 {
			return nil, fmt.Errorf("wal: segment %s starts at LSN %d, previous ends at %d", name, seg.first, prevLast)
		}
		l.segs = append(l.segs, *seg)
		if seg.records() > 0 {
			prevLast = seg.last
		}
	}
	l.head = prevLast
	if len(l.segs) > 0 {
		// Reopen the active segment for appends at its repaired length.
		last := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: reopening active segment: %w", err)
		}
		if err := f.Truncate(last.size); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: repairing active segment tail: %w", err)
		}
		if _, err := f.Seek(last.size, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seeking active segment: %w", err)
		}
		l.f = f
	}
	if opts.Policy == SyncEveryInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading log dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment reads one segment file and returns its validated index. For
// the final segment, scanning stops at the first invalid frame (the torn
// tail) and the segment is returned with the shortened size; a final
// segment with an unreadable header and zero valid frames returns (nil,
// nil) so Open can drop it. For non-final segments any damage is an error.
func scanSegment(path string, prevLast uint64, final bool) (*segment, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: reading segment: %w", err)
	}
	name := filepath.Base(path)
	hdrOK := len(raw) >= segHdrSize &&
		binary.LittleEndian.Uint32(raw[0:]) == segMagic &&
		binary.LittleEndian.Uint32(raw[4:]) == segVersion
	var expect uint64 // next expected LSN; 0 = adopt the first seen
	if hdrOK {
		expect = binary.LittleEndian.Uint64(raw[8:])
	} else if !final {
		return nil, fmt.Errorf("wal: segment %s has a corrupt header mid-log", name)
	} else if prevLast > 0 {
		expect = prevLast + 1
	}
	if len(raw) < segHdrSize {
		if !final {
			return nil, fmt.Errorf("wal: segment %s truncated mid-log", name)
		}
		return nil, nil
	}
	seg := &segment{name: name, size: segHdrSize}
	count := 0
	off := segHdrSize
	for {
		rec, n := parseFrame(raw[off:])
		if n == 0 {
			break // torn or corrupt tail
		}
		if expect != 0 && rec.LSN != expect {
			break // frame decodes but breaks the LSN chain: treat as tail damage
		}
		if count == 0 {
			seg.first = rec.LSN
		}
		if count%indexStride == 0 {
			seg.index = append(seg.index, recOff{lsn: rec.LSN, off: int64(off)})
		}
		seg.last = rec.LSN
		expect = rec.LSN + 1
		count++
		off += n
		seg.size = int64(off)
	}
	if off != len(raw) && !final {
		return nil, fmt.Errorf("wal: segment %s corrupt at offset %d mid-log", name, off)
	}
	if count == 0 {
		if !hdrOK {
			return nil, nil
		}
		// Valid header, no records: an empty segment created and never
		// appended to (or fully torn). first/last describe the empty range.
		first := binary.LittleEndian.Uint64(raw[8:])
		seg.first, seg.last = first, first-1
	}
	return seg, nil
}

// parseFrame decodes one frame from b, returning the record and the frame's
// byte length, or (Record{}, 0) when b does not start with a whole, valid
// frame. The record's Body aliases b — callers that outlive b (none today:
// the Open-time scan discards records, tests hold the backing buffer) must
// copy it.
func parseFrame(b []byte) (Record, int) {
	if len(b) < frameHdr {
		return Record{}, 0
	}
	plen := binary.LittleEndian.Uint32(b[0:])
	if plen < 9 || plen > maxFrameBytes {
		return Record{}, 0
	}
	end := frameHdr + int(plen)
	if len(b) < end {
		return Record{}, 0
	}
	payload := b[frameHdr:end]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0
	}
	rec := Record{
		LSN:  binary.LittleEndian.Uint64(payload[0:]),
		Kind: Kind(payload[8]),
	}
	if !rec.Kind.valid() {
		return Record{}, 0
	}
	rec.Body = payload[9:]
	return rec, end
}

// encodeFrame assembles the on-disk (and on-wire) form of rec.
func encodeFrame(rec Record) []byte {
	plen := 9 + len(rec.Body)
	b := make([]byte, frameHdr+plen)
	binary.LittleEndian.PutUint32(b[0:], uint32(plen))
	payload := b[frameHdr:]
	binary.LittleEndian.PutUint64(payload[0:], rec.LSN)
	payload[8] = byte(rec.Kind)
	copy(payload[9:], rec.Body)
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(payload))
	return b
}

// HeadLSN returns the last assigned LSN (0 before any record or base).
func (l *Log) HeadLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// FirstLSN returns the first retained LSN, or 0 when the log holds no
// records (fresh, fully compacted-and-empty, or just based).
func (l *Log) FirstLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLocked()
}

func (l *Log) firstLocked() uint64 {
	for _, s := range l.segs {
		if s.records() > 0 {
			return s.first
		}
	}
	return 0
}

// IsEmpty reports whether the log holds no records.
func (l *Log) IsEmpty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head == l.base && l.firstLocked() == 0
}

// SetBase positions an empty log so its first appended record gets LSN
// lsn+1 — the attach step after recovering an engine from a checkpoint
// into a fresh (or fully compacted) log directory.
func (l *Log) SetBase(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.firstLocked() != 0 || l.head != l.base {
		return fmt.Errorf("wal: SetBase(%d) on a non-empty log (head %d)", lsn, l.head)
	}
	l.base, l.head = lsn, lsn
	return nil
}

// Append assigns the next LSN to a new record and writes it. Durability at
// return time depends on the sync policy (see SyncPolicy).
func (l *Log) Append(kind Kind, body []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := Record{LSN: l.head + 1, Kind: kind, Body: body}
	if err := l.appendLocked(rec); err != nil {
		return 0, err
	}
	return rec.LSN, nil
}

// AppendRecord writes a record that already carries its LSN — the follower
// path, persisting the primary's stream locally. The LSN must extend the
// log by exactly one; on a log with no records and no base, the first
// record establishes the base.
func (l *Log) AppendRecord(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.head == 0 && l.base == 0 && l.firstLocked() == 0 && rec.LSN > 0 {
		l.base, l.head = rec.LSN-1, rec.LSN-1
	}
	if rec.LSN != l.head+1 {
		return fmt.Errorf("wal: record LSN %d does not extend head %d", rec.LSN, l.head)
	}
	return l.appendLocked(rec)
}

func (l *Log) appendLocked(rec Record) error {
	t0 := time.Now()
	defer obs.WALAppend.RecordSince(t0)
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.syncErr != nil {
		return fmt.Errorf("wal: previous fsync failed: %w", l.syncErr)
	}
	if !rec.Kind.valid() {
		return fmt.Errorf("wal: invalid record kind %d", uint8(rec.Kind))
	}
	if l.f == nil || l.segs[len(l.segs)-1].size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(rec.LSN); err != nil {
			return err
		}
	}
	frame := encodeFrame(rec)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: appending record %d: %w", rec.LSN, err)
	}
	seg := &l.segs[len(l.segs)-1]
	if seg.records() == 0 {
		seg.first = rec.LSN
		seg.last = rec.LSN - 1
	}
	if seg.records()%indexStride == 0 {
		seg.index = append(seg.index, recOff{lsn: rec.LSN, off: seg.size})
	}
	seg.last = rec.LSN
	seg.size += int64(len(frame))
	l.head = rec.LSN
	l.dirty = true
	l.notifyCommitLocked()
	l.appends.Add(1)
	l.appendedBytes.Add(int64(len(frame)))
	if l.opts.Policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// rotateLocked syncs and closes the active segment and starts a new one
// whose name and header record the first LSN it will hold.
func (l *Log) rotateLocked(first uint64) error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		l.f = nil
	}
	name := fmt.Sprintf("%020d%s", first, segSuffix)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [segHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	// Make the new dirent durable so a crash cannot resurrect a log whose
	// tail segment the filesystem forgot (best-effort: some filesystems
	// reject directory fsync).
	syncDir(l.dir)
	l.f = f
	l.segs = append(l.segs, segment{name: name, first: first, last: first - 1, size: segHdrSize})
	return nil
}

func (l *Log) syncLocked() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	t0 := time.Now()
	err := l.f.Sync()
	obs.WALFsync.RecordSince(t0)
	if err != nil {
		l.syncErr = err
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.syncs.Add(1)
	return nil
}

// notifyCommitLocked wakes every CommitSignal waiter by closing the
// current notification channel and installing a fresh one.
func (l *Log) notifyCommitLocked() {
	close(l.commit)
	l.commit = make(chan struct{})
}

// CommitSignal returns a channel closed on the next head advance (or on
// Close). It is a level-triggered wakeup, not a queue: grab the channel,
// re-check HeadLSN (an append may have landed in between), then park.
// After each wake, call CommitSignal again for a fresh channel.
func (l *Log) CommitSignal() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commit
}

// Sync forces the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			_ = l.syncLocked() // latched in syncErr; next Append surfaces it
			l.mu.Unlock()
		}
	}
}

// Close stops the group-commit flusher, syncs, and closes the active
// segment. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.notifyCommitLocked() // wake parked tailers so they observe the close
	l.mu.Unlock()
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// ReadFrom returns up to maxRecords records starting at LSN from, plus the
// head LSN at snapshot time. from == head+1 returns an empty batch; a from
// below the first retained LSN returns ErrCompacted (restart from a
// checkpoint); a from beyond head+1 is an error. Reading is safe while
// appends continue: a partially written tail frame simply ends the batch.
func (l *Log) ReadFrom(from uint64, maxRecords int) ([]Record, uint64, error) {
	if maxRecords <= 0 {
		maxRecords = 1 << 16
	}
	l.mu.Lock()
	head := l.head
	first := l.firstLocked()
	base := l.base
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()

	if from == 0 {
		return nil, head, fmt.Errorf("wal: LSNs start at 1")
	}
	if from > head+1 {
		return nil, head, fmt.Errorf("wal: LSN %d beyond head %d", from, head)
	}
	if from == head+1 {
		return nil, head, nil
	}
	if first == 0 || from < first || from <= base {
		return nil, head, fmt.Errorf("%w (first retained LSN %d, requested %d)", ErrCompacted, first, from)
	}
	var out []Record
	for i := range segs {
		seg := &segs[i]
		if seg.records() == 0 || seg.last < from {
			continue
		}
		recs, done, err := l.readSegment(seg, from, head, maxRecords-len(out))
		if err != nil {
			return nil, head, err
		}
		out = append(out, recs...)
		if done || len(out) >= maxRecords {
			return out, head, nil
		}
	}
	return out, head, nil
}

// readSegment streams records with from <= LSN <= head out of one segment,
// seeking to the sparse-index floor of from first, so tailing near the head
// reads O(returned records + indexStride), not O(segment size). done
// reports that the caller should stop (a record past the head snapshot was
// reached). Reading is safe against concurrent appends: a torn or
// partially visible tail frame just ends the batch.
func (l *Log) readSegment(seg *segment, from, head uint64, maxRecords int) (recs []Record, done bool, err error) {
	f, err := os.Open(filepath.Join(l.dir, seg.name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, fmt.Errorf("%w (segment %s removed mid-read)", ErrCompacted, seg.name)
		}
		return nil, false, fmt.Errorf("wal: opening segment %s: %w", seg.name, err)
	}
	defer f.Close()
	if _, err := f.Seek(seg.floorOffset(from), 0); err != nil {
		return nil, false, fmt.Errorf("wal: seeking segment %s: %w", seg.name, err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	for len(recs) < maxRecords {
		rec, ok := readFrameLenient(br)
		if !ok {
			return recs, false, nil // torn tail or end of segment
		}
		if rec.LSN < from {
			continue
		}
		if rec.LSN > head {
			return recs, true, nil // appended after the caller's snapshot
		}
		recs = append(recs, rec)
	}
	return recs, false, nil
}

// readFrameLenient reads one frame, treating any truncation or corruption
// as end-of-data (the disk-tail semantics; the strict network-side codec
// is ReadFrame).
func readFrameLenient(br *bufio.Reader) (Record, bool) {
	var hdr [frameHdr]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Record{}, false
	}
	plen := binary.LittleEndian.Uint32(hdr[0:])
	if plen < 9 || plen > maxFrameBytes {
		return Record{}, false
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Record{}, false
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return Record{}, false
	}
	rec := Record{
		LSN:  binary.LittleEndian.Uint64(payload[0:]),
		Kind: Kind(payload[8]),
		Body: payload[9:],
	}
	if !rec.Kind.valid() {
		return Record{}, false
	}
	return rec, true
}

// Reset discards every record and un-bases the log: all segment files are
// removed and the next append (or AppendRecord) starts fresh. A follower
// uses it when its local log no longer lines up with the primary's stream
// (e.g. bootstrapping from a primary checkpoint past the local head) —
// replica logs are caches of the primary's, so discarding one loses
// nothing the primary still has.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing active segment: %w", err)
		}
		l.f = nil
	}
	for _, seg := range l.segs {
		if err := os.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			return fmt.Errorf("wal: removing segment %s: %w", seg.name, err)
		}
	}
	l.segs = nil
	l.head, l.base = 0, 0
	l.dirty = false
	return nil
}

// Compact removes whole segments whose records all have LSN <= through,
// never touching the active segment. It returns how many segments were
// deleted. The caller passes the LSN stamped into a durable checkpoint, so
// everything the checkpoint already covers stops occupying disk.
func (l *Log) Compact(through uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segs) > 1 {
		seg := l.segs[0]
		if seg.records() > 0 && seg.last > through {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			return removed, fmt.Errorf("wal: removing segment %s: %w", seg.name, err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		// Persist the unlinks alongside the checkpoint rename that
		// justified them (see AtomicWriteFile's directory sync).
		syncDir(l.dir)
	}
	return removed, nil
}

// Stats is the log's monitoring block (the /statsz "wal" object).
type Stats struct {
	HeadLSN       uint64 `json:"head_lsn"`
	FirstLSN      uint64 `json:"first_lsn"`
	Segments      int    `json:"segments"`
	SizeBytes     int64  `json:"size_bytes"`
	Appends       uint64 `json:"appends"`
	Syncs         uint64 `json:"syncs"`
	AppendedBytes int64  `json:"appended_bytes"`
	Policy        string `json:"fsync_policy"`
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		HeadLSN:       l.head,
		FirstLSN:      l.firstLocked(),
		Segments:      len(l.segs),
		Appends:       l.appends.Load(),
		Syncs:         l.syncs.Load(),
		AppendedBytes: l.appendedBytes.Load(),
		Policy:        string(l.opts.Policy),
	}
	for _, s := range l.segs {
		st.SizeBytes += s.size
	}
	return st
}

// Applier is the replay target: both engine.Engine and shard.Sharded apply
// records through it during recovery and follower tailing.
type Applier interface {
	// ApplyRecord applies one logged mutation; the record's LSN must be the
	// applier's LSN plus one.
	ApplyRecord(rec Record) error
	// LSN reports the last applied LSN.
	LSN() uint64
}

// Replay drives every record after target.LSN() through the target — the
// recovery tail replay after a checkpoint load (or a from-scratch replay at
// LSN 0). It fails when the log cannot serve the tail: records between the
// target's LSN and the first retained LSN were compacted away. An empty
// un-based log has nothing to replay regardless of the target's LSN — the
// checkpoint-restored-into-a-fresh-directory case; AttachWAL will base it.
func Replay(l *Log, target Applier) (int, error) {
	if l.IsEmpty() {
		return 0, nil
	}
	n := 0
	for {
		from := target.LSN() + 1
		recs, head, err := l.ReadFrom(from, 4096)
		if err != nil {
			return n, err
		}
		for _, rec := range recs {
			if err := target.ApplyRecord(rec); err != nil {
				return n, fmt.Errorf("wal: replaying LSN %d: %w", rec.LSN, err)
			}
			n++
		}
		if target.LSN() >= head {
			return n, nil
		}
		if len(recs) == 0 {
			return n, fmt.Errorf("wal: replay stalled at LSN %d with head %d", target.LSN(), head)
		}
	}
}
