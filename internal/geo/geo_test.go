package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
		{Point{0, -1}, Point{0, 1}, 2},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.DistSq(c.q); !almostEqual(got, c.want*c.want, 1e-9) {
			t.Errorf("DistSq(%v,%v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e9)
		}
		p, q := Point{clamp(ax), clamp(ay)}, Point{clamp(bx), clamp(by)}
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Restrict magnitudes so floating error stays bounded.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %v", got)
	}
	if got := Lerp(a, b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp t=0.5 = %v", got)
	}
}

func TestRectContainsExtend(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 2})
	if !r.Contains(Point{1, 1}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{2, 2}) {
		t.Error("Contains boundary/inner failed")
	}
	if r.Contains(Point{3, 1}) || r.Contains(Point{1, -0.1}) {
		t.Error("Contains outside point")
	}
	r2 := r.Extend(Point{5, -1})
	if !r2.Contains(Point{5, -1}) || !r2.Contains(Point{0, 0}) {
		t.Error("Extend lost coverage")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if e.Contains(Point{0, 0}) {
		t.Error("empty rect should contain nothing")
	}
	if e.Area() != 0 {
		t.Errorf("empty rect area = %v", e.Area())
	}
	r := e.Extend(Point{1, 2})
	if !r.Contains(Point{1, 2}) {
		t.Error("extend of empty rect should contain the point")
	}
}

func TestRectGeometry(t *testing.T) {
	r := NewRect(Point{1, 2}, Point{4, 6})
	if r.Width() != 3 || r.Height() != 4 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("area = %v", r.Area())
	}
	if r.Center() != (Point{2.5, 4}) {
		t.Errorf("center = %v", r.Center())
	}
	b := r.Buffer(1)
	if b.Min != (Point{0, 1}) || b.Max != (Point{5, 7}) {
		t.Errorf("buffer = %v", b)
	}
}

func TestRectIntersectsUnion(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{1, 1}, Point{3, 3})
	c := NewRect(Point{5, 5}, Point{6, 6})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects should intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
	u := a.Union(c)
	if !u.Contains(Point{0, 0}) || !u.Contains(Point{6, 6}) {
		t.Error("union coverage failed")
	}
}

func TestRectUnionCommutativeProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := NewRect(Point{ax, ay}, Point{bx, by})
		s := NewRect(Point{cx, cy}, Point{dx, dy})
		u1, u2 := r.Union(s), s.Union(r)
		return u1 == u2
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHaversine(t *testing.T) {
	// Beijing Tiananmen to Beijing Capital Airport: roughly 25 km.
	d := Haversine(39.9042, 116.4074, 40.0799, 116.6031)
	if d < 20 || d < 0 || d > 35 {
		t.Errorf("Haversine Beijing = %v km, want ~25", d)
	}
	if got := Haversine(10, 20, 10, 20); got != 0 {
		t.Errorf("zero-distance haversine = %v", got)
	}
	// One degree of latitude is about 111 km.
	if d := Haversine(0, 0, 1, 0); !almostEqual(d, 111.195, 0.1) {
		t.Errorf("1 deg latitude = %v km", d)
	}
}

func TestProjectLatLonRoundTripScale(t *testing.T) {
	// Projection distance should agree with haversine at city scale.
	origLat, origLon := 39.9, 116.4
	p1 := ProjectLatLon(39.95, 116.45, origLat, origLon)
	p2 := ProjectLatLon(39.90, 116.40, origLat, origLon)
	planar := p1.Dist(p2)
	sphere := Haversine(39.95, 116.45, 39.90, 116.40)
	if math.Abs(planar-sphere) > 0.05 {
		t.Errorf("projection error too large: planar=%v sphere=%v", planar, sphere)
	}
}

func TestSegmentDist(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	d, tt := SegmentDist(Point{5, 3}, a, b)
	if !almostEqual(d, 3, 1e-12) || !almostEqual(tt, 0.5, 1e-12) {
		t.Errorf("mid: d=%v t=%v", d, tt)
	}
	d, tt = SegmentDist(Point{-4, 3}, a, b)
	if !almostEqual(d, 5, 1e-12) || tt != 0 {
		t.Errorf("before start: d=%v t=%v", d, tt)
	}
	d, tt = SegmentDist(Point{14, 3}, a, b)
	if !almostEqual(d, 5, 1e-12) || tt != 1 {
		t.Errorf("past end: d=%v t=%v", d, tt)
	}
	// Degenerate segment.
	d, tt = SegmentDist(Point{1, 1}, a, a)
	if !almostEqual(d, math.Sqrt2, 1e-12) || tt != 0 {
		t.Errorf("degenerate: d=%v t=%v", d, tt)
	}
}
