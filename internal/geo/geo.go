// Package geo provides the planar geometry primitives used throughout the
// NetClus reproduction: points, distances, bounding boxes and linear
// interpolation along segments.
//
// All synthetic networks live on a local planar projection where coordinates
// are expressed directly in kilometres. This keeps every distance in the
// system (edge weights, coverage thresholds τ, cluster radii R) in a single
// unit and avoids repeated spherical trigonometry in hot loops. A haversine
// helper is still provided for ingesting real latitude/longitude traces.
package geo

import (
	"fmt"
	"math"
)

// Point is a position on the local planar projection, in kilometres.
type Point struct {
	X float64 // east-west, km
	Y float64 // north-south, km
}

// Dist returns the Euclidean distance between p and q in kilometres.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. It is the
// preferred comparator in nearest-neighbour loops where the square root is
// not needed.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the vector sum p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y) }

// Rect is an axis-aligned bounding box. Min is the lower-left corner and Max
// the upper-right corner; a Rect with Min == Max contains exactly one point.
type Rect struct {
	Min, Max Point
}

// NewRect returns the smallest Rect containing both p and q.
func NewRect(p, q Point) Rect {
	return Rect{
		Min: Point{math.Min(p.X, q.X), math.Min(p.Y, q.Y)},
		Max: Point{math.Max(p.X, q.X), math.Max(p.Y, q.Y)},
	}
}

// EmptyRect returns a degenerate rectangle that contains nothing and expands
// correctly under Extend.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Extend grows r to include p and returns the result.
func (r Rect) Extend(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Union returns the smallest Rect containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return r.Extend(s.Min).Extend(s.Max)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Width returns the horizontal extent of r in kilometres.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r in kilometres.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r in square kilometres. Degenerate (empty)
// rectangles report zero.
func (r Rect) Area() float64 {
	w, h := r.Width(), r.Height()
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Center returns the geometric center of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Buffer returns r expanded by d kilometres on every side.
func (r Rect) Buffer(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

const earthRadiusKm = 6371.0088

// Haversine returns the great-circle distance in kilometres between two
// latitude/longitude pairs given in degrees. It is used only when ingesting
// real-world GPS traces; all internal computation is planar.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const deg = math.Pi / 180
	phi1, phi2 := lat1*deg, lat2*deg
	dPhi := (lat2 - lat1) * deg
	dLam := (lon2 - lon1) * deg
	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLam/2)*math.Sin(dLam/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// ProjectLatLon converts a latitude/longitude pair (degrees) to a local
// planar point in kilometres relative to the given origin using an
// equirectangular approximation, adequate at city scale (<100 km).
func ProjectLatLon(lat, lon, originLat, originLon float64) Point {
	const deg = math.Pi / 180
	x := (lon - originLon) * deg * earthRadiusKm * math.Cos(originLat*deg)
	y := (lat - originLat) * deg * earthRadiusKm
	return Point{X: x, Y: y}
}

// SegmentDist returns the shortest distance from point p to the segment ab,
// along with the parameter t in [0,1] of the closest point on the segment.
func SegmentDist(p, a, b Point) (dist float64, t float64) {
	ab := b.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a), 0
	}
	t = ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / den
	t = math.Max(0, math.Min(1, t))
	return p.Dist(Lerp(a, b, t)), t
}
