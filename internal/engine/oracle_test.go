package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"netclus/internal/core"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// This file is the differential test oracle for the serving stack: every
// answer the Engine produces is re-derived by an independent brute-force
// reference built only from internal/tops primitives, and the two must
// agree. Three oracles run against each random (k, ψ, τ) draw:
//
//  1. Cover oracle — the §5.1 covering structure the engine serves
//     (parallel epoch-stamped fill, memoized) is compared entry-by-entry
//     and bit-for-bit against a naive reconstruction through
//     Index.EstimatedDetour, which walks the TL/CL lists independently.
//  2. Greedy oracle — tops.IncGreedy over the naive cover must reproduce
//     the engine's estimated utility (tolerance covers summation order).
//  3. Exact bound oracle — because d̂r over-estimates dr (Eq. 9), the
//     engine's estimated utility can never exceed the exact utility of its
//     own answer under a full tops.DistanceIndex.
//
// The whole battery repeats after random §6 update sequences driven
// through the Engine, so cover invalidation, swap-remove site deletion and
// trajectory liveness all sit inside the differential loop.

// naiveCover rebuilds the covering structure of instance p from scratch:
// for every representative cluster (in ladder order) and every trajectory
// id, the estimated detour is fetched through EstimatedDetour — a code path
// that shares no scan machinery with the parallel fill. Scores use the same
// float association as the fill, so agreement is exact, not approximate.
func naiveCover(idx *core.Index, p int, pref tops.Preference) (*tops.CoverSets, []core.ClusterID) {
	ins := idx.Instances[p]
	var reps []core.ClusterID
	for ci := range ins.Clusters {
		if ins.Clusters[ci].Rep != roadnet.InvalidNode {
			reps = append(reps, core.ClusterID(ci))
		}
	}
	m := idx.TopsInstance().M()
	cs := tops.NewCoverSets(len(reps), m)
	for ri, ci := range reps {
		for tid := 0; tid < m; tid++ {
			d := idx.EstimatedDetour(p, trajectory.ID(tid), ci)
			if d > pref.Tau {
				continue
			}
			if score := pref.Score(d); score != 0 || pref.F == nil {
				cs.AddPair(int32(ri), int32(tid), score)
			}
		}
	}
	return cs, reps
}

// sameCover asserts entry-wise, bit-exact equality of two covering
// structures (order inside a TC list is not significant).
func sameCover(t *testing.T, label string, got, want *tops.CoverSets) {
	t.Helper()
	if got.N() != want.N() || got.M != want.M {
		t.Fatalf("%s: cover shape (%d sites, %d trajs) != (%d, %d)", label, got.N(), got.M, want.N(), want.M)
	}
	for s := 0; s < got.N(); s++ {
		gTrajs, gScores := got.TC(int32(s))
		gm := make(map[int32]float64, len(gTrajs))
		for i, tr := range gTrajs {
			gm[tr] = gScores[i]
		}
		wTrajs, wScores := want.TC(int32(s))
		if len(gm) != len(wTrajs) {
			t.Fatalf("%s: rep %d covers %d trajectories, oracle says %d", label, s, len(gm), len(wTrajs))
		}
		for i, tr := range wTrajs {
			g, ok := gm[tr]
			if !ok {
				t.Fatalf("%s: rep %d misses trajectory %d", label, s, tr)
			}
			if g != wScores[i] {
				t.Fatalf("%s: rep %d trajectory %d score %v != oracle %v", label, s, tr, g, wScores[i])
			}
		}
	}
}

// drawPref picks a random preference family and threshold.
func drawPref(rng *rand.Rand) tops.Preference {
	tau := 0.3 + rng.Float64()*6.0
	switch rng.Intn(4) {
	case 0:
		return tops.Binary(tau)
	case 1:
		return tops.Linear(tau)
	case 2:
		return tops.ConvexQuadratic(tau)
	default:
		return tops.ExpDecay(tau, 0.5+rng.Float64()*1.5)
	}
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// checkDraw runs the three oracles for one (k, ψ, τ) draw.
func checkDraw(t *testing.T, eng *Engine, idx *core.Index, distIdx *tops.DistanceIndex, k int, pref tops.Preference) {
	t.Helper()
	ctx := context.Background()
	res, err := eng.Query(ctx, core.QueryOptions{K: k, Pref: pref})
	if err != nil {
		t.Fatalf("engine query (k=%d, ψ=%s, τ=%.3f): %v", k, pref.Name, pref.Tau, err)
	}

	p := idx.InstanceFor(pref.Tau)
	if res.InstanceUsed != p {
		t.Fatalf("engine used instance %d, ladder says %d for τ=%.3f", res.InstanceUsed, p, pref.Tau)
	}

	// Oracle 1: the served (memoized) cover equals the naive rebuild.
	engCS, engReps, _ := idx.CoverFor(p, pref)
	refCS, refReps := naiveCover(idx, p, pref)
	if len(engReps) != len(refReps) {
		t.Fatalf("engine sees %d representatives, oracle %d", len(engReps), len(refReps))
	}
	for i := range refReps {
		if engReps[i] != refReps[i] {
			t.Fatalf("representative %d: engine cluster %d, oracle %d", i, engReps[i], refReps[i])
		}
	}
	if res.NumRepresentatives != len(refReps) {
		t.Fatalf("answer reports %d representatives, oracle %d", res.NumRepresentatives, len(refReps))
	}
	sameCover(t, pref.Name, engCS, refCS)

	// Oracle 2: reference greedy over the naive cover reproduces the
	// engine's estimated utility.
	kk := k
	if kk > len(refReps) {
		kk = len(refReps)
	}
	ref, err := tops.IncGreedy(refCS, tops.GreedyOptions{K: kk})
	if err != nil {
		t.Fatalf("reference greedy: %v", err)
	}
	if !almostEqual(res.EstimatedUtility, ref.Utility) {
		t.Fatalf("engine utility %v != oracle greedy %v (k=%d, ψ=%s, τ=%.3f)",
			res.EstimatedUtility, ref.Utility, k, pref.Name, pref.Tau)
	}
	if res.EstimatedCovered != ref.Covered {
		t.Fatalf("engine covered %d != oracle %d", res.EstimatedCovered, ref.Covered)
	}

	// Determinism across code paths: the core's uncached single-shot query
	// must agree with the engine's cached answer exactly.
	direct, err := idx.QueryCtx(ctx, core.QueryOptions{K: k, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	if direct.EstimatedUtility != res.EstimatedUtility || len(direct.Sites) != len(res.Sites) {
		t.Fatalf("cached engine path and uncached core path disagree: %v vs %v",
			res.EstimatedUtility, direct.EstimatedUtility)
	}
	for i := range res.Sites {
		if res.Sites[i] != direct.Sites[i] {
			t.Fatalf("site %d differs between engine and core path", i)
		}
	}

	// Oracle 3: Eq. 9 over-estimates, so the estimated utility lower-bounds
	// the exact utility of the selected sites.
	exactU, _ := idx.EvaluateExact(distIdx, pref, res.Sites)
	if res.EstimatedUtility > exactU+1e-6 {
		t.Fatalf("estimated utility %v exceeds exact utility %v of its own answer (ψ=%s, τ=%.3f)",
			res.EstimatedUtility, exactU, pref.Name, pref.Tau)
	}
}

// TestEngineDifferentialOracle is the main oracle loop: random draws over a
// fresh index, then over the same index after random §6 update sequences
// applied through the Engine.
func TestEngineDifferentialOracle(t *testing.T) {
	seeds := []int64{211, 223}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		idx, inst, city := buildFixture(t, seed)
		eng, err := New(idx, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 17))
		extras := extraTrajectories(t, city, 20, seed+901)

		rounds := 3
		draws := 5
		if testing.Short() {
			rounds, draws = 2, 3
		}
		for round := 0; round < rounds; round++ {
			// The exact reference is rebuilt per round because updates
			// change the site set and trajectory liveness. The horizon far
			// exceeds any draw's τ, so the sparse matrix is exact here.
			distIdx, err := tops.BuildDistanceIndex(idx.TopsInstance(), 40)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < draws; d++ {
				k := 1 + rng.Intn(12)
				checkDraw(t, eng, idx, distIdx, k, drawPref(rng))
			}
			if round == rounds-1 {
				break
			}
			applyRandomUpdates(t, eng, idx, inst, rng, extras)
		}
	}
}

// applyRandomUpdates drives a random §6 mutation sequence through the
// Engine: site add/delete (exercising swap-remove and representative
// takeover) and trajectory add/delete (exercising TL surgery and the alive
// mask), while keeping the instance large enough to stay queryable.
func applyRandomUpdates(t *testing.T, eng *Engine, idx *core.Index, inst *tops.Instance, rng *rand.Rand, extras []*trajectory.Trajectory) {
	t.Helper()
	g := inst.G
	for op := 0; op < 12; op++ {
		switch rng.Intn(4) {
		case 0: // add a random non-site node
			start := rng.Intn(g.NumNodes())
			for d := 0; d < g.NumNodes(); d++ {
				v := roadnet.NodeID((start + d) % g.NumNodes())
				if _, ok := inst.SiteIDOf(v); !ok {
					if err := eng.AddSite(v); err != nil {
						t.Fatalf("AddSite(%d): %v", v, err)
					}
					break
				}
			}
		case 1: // delete a random site, keeping a healthy pool
			if len(inst.Sites) > 60 {
				v := inst.Sites[rng.Intn(len(inst.Sites))]
				if err := eng.DeleteSite(v); err != nil {
					t.Fatalf("DeleteSite(%d): %v", v, err)
				}
			}
		case 2: // ingest a fresh trajectory
			if len(extras) > 0 {
				tr := extras[0]
				extras = extras[1:]
				if _, err := eng.AddTrajectory(tr); err != nil {
					t.Fatalf("AddTrajectory: %v", err)
				}
			}
		default: // delete a random live trajectory
			if idx.NumAlive() > 20 {
				tid := trajectory.ID(rng.Intn(inst.M()))
				// Drawing an already-dead id errors; such draws are no-ops.
				_ = eng.DeleteTrajectory(tid)
			}
		}
	}
	// The dense site table must remain the exact inverse of the site list
	// after any interleaving (regression guard for swap-remove deletion).
	for i, s := range inst.Sites {
		if sid, ok := inst.SiteIDOf(s); !ok || int(sid) != i {
			t.Fatalf("siteID table inconsistent at %d (node %d): got %v,%v", i, s, sid, ok)
		}
	}
}

// TestEngineQueryCancellation pins the engine-level contract of the
// context plumbing: a canceled request fails with the context error, is
// accounted in Stats, and never pollutes the cover cache for later
// requests.
func TestEngineQueryCancellation(t *testing.T) {
	idx, _, _ := buildFixture(t, 227)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := core.QueryOptions{K: 5, Pref: tops.Binary(0.8)}
	if _, err := eng.Query(ctx, q); err == nil {
		t.Fatal("canceled query succeeded")
	}
	st := eng.Stats()
	if st.Errors != 1 || st.Canceled != 1 {
		t.Fatalf("stats after canceled query: errors=%d canceled=%d, want 1/1", st.Errors, st.Canceled)
	}
	if st.CoverEntries != 0 {
		t.Fatalf("canceled query left %d cover entries", st.CoverEntries)
	}
	items := eng.QueryBatch(ctx, []core.QueryOptions{q, q})
	for i, it := range items {
		if it.Err == nil {
			t.Fatalf("batch item %d succeeded under canceled ctx", i)
		}
	}
	if _, err := eng.Query(context.Background(), q); err != nil {
		t.Fatalf("live query after cancellations: %v", err)
	}
	if st := eng.Stats(); st.Queries != 1 {
		t.Fatalf("live query not counted: %+v", st)
	}
}
