package engine

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
	"netclus/internal/wal"
)

// This file is the durability differential: a WAL-served engine is crashed
// (abandoned), recovered from its checkpoint plus log-tail replay, and the
// recovered engine must answer every query bit-identically to a twin that
// applied the same mutations live and was never interrupted. It extends
// the oracle_test style from "is the answer right" to "does the answer
// survive a crash".

// walMutator is the common mutation surface the lockstep driver feeds.
type walMutator interface {
	AddSite(v roadnet.NodeID) error
	DeleteSite(v roadnet.NodeID) error
	AddSites(nodes []roadnet.NodeID) error
	AddTrajectory(tr *trajectory.Trajectory) (trajectory.ID, error)
	DeleteTrajectory(tid trajectory.ID) error
	AddTrajectories(trs []*trajectory.Trajectory) ([]trajectory.ID, error)
	DeleteTrajectories(ids []trajectory.ID) error
}

// mutationScript precomputes a random but valid §6 mutation sequence over
// the fixture, including batch frames, so the same script can drive any
// number of engines into identical states. Validity is tracked against a
// simulated site set / liveness mask, not against any engine.
func mutationScript(t testing.TB, inst *tops.Instance, city *gen.City, rng *rand.Rand, n int) []func(m walMutator) error {
	t.Helper()
	extras := extraTrajectories(t, city, n, 7117)
	sites := make(map[roadnet.NodeID]bool, len(inst.Sites))
	for _, s := range inst.Sites {
		sites[s] = true
	}
	alive := make([]bool, inst.Trajs.Len())
	for i := range alive {
		alive[i] = true
	}
	nextTID := trajectory.ID(inst.Trajs.Len())
	liveCount := len(alive)

	freeNodes := func(k int) []roadnet.NodeID {
		var out []roadnet.NodeID
		start := rng.Intn(city.Graph.NumNodes())
		for d := 0; d < city.Graph.NumNodes() && len(out) < k; d++ {
			v := roadnet.NodeID((start + d) % city.Graph.NumNodes())
			if !sites[v] {
				out = append(out, v)
				sites[v] = true // reserve
			}
		}
		return out
	}
	randSite := func() (roadnet.NodeID, bool) {
		if len(sites) <= 60 {
			return 0, false
		}
		i := rng.Intn(len(sites))
		for v := range sites {
			if i == 0 {
				return v, true
			}
			i--
		}
		return 0, false
	}
	randLive := func(k int) []trajectory.ID {
		if liveCount <= 20+k {
			return nil
		}
		var out []trajectory.ID
		for len(out) < k {
			tid := trajectory.ID(rng.Intn(int(nextTID)))
			ok := alive[tid]
			for _, seen := range out {
				if seen == tid {
					ok = false
				}
			}
			if ok {
				out = append(out, tid)
			}
		}
		return out
	}

	var script []func(m walMutator) error
	for len(script) < n {
		switch rng.Intn(7) {
		case 0:
			vs := freeNodes(1)
			if len(vs) == 1 {
				v := vs[0]
				script = append(script, func(m walMutator) error { return m.AddSite(v) })
			}
		case 1:
			if v, ok := randSite(); ok {
				delete(sites, v)
				script = append(script, func(m walMutator) error { return m.DeleteSite(v) })
			}
		case 2:
			vs := freeNodes(2 + rng.Intn(3))
			if len(vs) > 0 {
				script = append(script, func(m walMutator) error { return m.AddSites(vs) })
			}
		case 3:
			if len(extras) > 0 {
				tr := extras[0]
				extras = extras[1:]
				alive = append(alive, true)
				nextTID++
				liveCount++
				script = append(script, func(m walMutator) error {
					_, err := m.AddTrajectory(tr)
					return err
				})
			}
		case 4:
			if ids := randLive(1); len(ids) == 1 {
				tid := ids[0]
				alive[tid] = false
				liveCount--
				script = append(script, func(m walMutator) error { return m.DeleteTrajectory(tid) })
			}
		case 5:
			if len(extras) >= 2 {
				trs := []*trajectory.Trajectory{extras[0], extras[1]}
				extras = extras[2:]
				alive = append(alive, true, true)
				nextTID += 2
				liveCount += 2
				script = append(script, func(m walMutator) error {
					_, err := m.AddTrajectories(trs)
					return err
				})
			}
		default:
			if ids := randLive(2); len(ids) == 2 {
				for _, tid := range ids {
					alive[tid] = false
					liveCount--
				}
				script = append(script, func(m walMutator) error { return m.DeleteTrajectories(ids) })
			}
		}
	}
	return script
}

// sameAnswers asserts bit-exact query equality across random draws.
func sameAnswers(t *testing.T, label string, got, want *Engine, rng *rand.Rand, draws int) {
	t.Helper()
	ctx := context.Background()
	for d := 0; d < draws; d++ {
		k := 1 + rng.Intn(10)
		pref := drawPref(rng)
		opts := core.QueryOptions{K: k, Pref: pref}
		rg, err := got.Query(ctx, opts)
		if err != nil {
			t.Fatalf("%s: recovered query: %v", label, err)
		}
		rw, err := want.Query(ctx, opts)
		if err != nil {
			t.Fatalf("%s: twin query: %v", label, err)
		}
		if rg.EstimatedUtility != rw.EstimatedUtility || rg.EstimatedCovered != rw.EstimatedCovered ||
			rg.NumRepresentatives != rw.NumRepresentatives || rg.InstanceUsed != rw.InstanceUsed {
			t.Fatalf("%s: draw %d (k=%d ψ=%s τ=%.3f): got {u=%v c=%d reps=%d} want {u=%v c=%d reps=%d}",
				label, d, k, pref.Name, pref.Tau,
				rg.EstimatedUtility, rg.EstimatedCovered, rg.NumRepresentatives,
				rw.EstimatedUtility, rw.EstimatedCovered, rw.NumRepresentatives)
		}
		if len(rg.Sites) != len(rw.Sites) {
			t.Fatalf("%s: draw %d selects %d sites, twin %d", label, d, len(rg.Sites), len(rw.Sites))
		}
		for i := range rg.Sites {
			if rg.Sites[i] != rw.Sites[i] || rg.SiteIDs[i] != rw.SiteIDs[i] {
				t.Fatalf("%s: draw %d site %d: (%d,%d) vs twin (%d,%d)",
					label, d, i, rg.Sites[i], rg.SiteIDs[i], rw.Sites[i], rw.SiteIDs[i])
			}
		}
	}
}

func TestWALRecoveryDifferential(t *testing.T) {
	const seed = 611
	idxA, instA, city := buildFixture(t, seed)
	engA, err := New(idxA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	log, err := wal.Open(walDir, wal.Options{Policy: wal.SyncAlways, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := engA.AttachWAL(log); err != nil {
		t.Fatal(err)
	}

	idxT, _, _ := buildFixture(t, seed)
	twin, err := New(idxT, Options{})
	if err != nil {
		t.Fatal(err)
	}

	script := mutationScript(t, instA, city, rand.New(rand.NewSource(41)), 40)
	ckptPath := filepath.Join(walDir, "checkpoint.ncck")
	var ckptLSN uint64
	for i, op := range script {
		if err := op(engA); err != nil {
			t.Fatalf("primary op %d: %v", i, err)
		}
		if err := op(twin); err != nil {
			t.Fatalf("twin op %d: %v", i, err)
		}
		if i == len(script)/3 {
			// Mid-stream checkpoint, exactly what -checkpoint-every does.
			if err := wal.AtomicWriteFile(ckptPath, func(w io.Writer) error {
				_, err := engA.Checkpoint(w)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			ckptLSN = engA.LSN()
		}
	}
	if engA.LSN() != uint64(len(script)) {
		t.Fatalf("primary LSN %d after %d mutations", engA.LSN(), len(script))
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// "Crash": engA is abandoned; everything below uses only disk state.

	recover := func(label string, compactFirst bool) *Engine {
		t.Helper()
		log2, err := wal.Open(walDir, wal.Options{Policy: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { log2.Close() })
		if compactFirst {
			if _, err := log2.Compact(ckptLSN); err != nil {
				t.Fatal(err)
			}
		}
		f, err := os.Open(ckptPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// The checkpoint reconstructs the mutated dataset over the preset's
		// immutable graph — no preset site/trajectory state is consulted.
		inst, _, br, err := wal.ReadCheckpoint(f, city.Graph)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		idx, err := core.ReadIndex(br, inst)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if idx.WalLSN() != ckptLSN {
			t.Fatalf("%s: checkpoint stamped LSN %d, want %d", label, idx.WalLSN(), ckptLSN)
		}
		eng, err := New(idx, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := wal.Replay(log2, eng)
		if err != nil {
			t.Fatalf("%s: replay: %v", label, err)
		}
		if want := len(script) - int(ckptLSN); n != want {
			t.Fatalf("%s: replayed %d records, want %d", label, n, want)
		}
		if eng.LSN() != uint64(len(script)) {
			t.Fatalf("%s: recovered LSN %d, want %d", label, eng.LSN(), len(script))
		}
		return eng
	}

	rng := rand.New(rand.NewSource(97))
	sameAnswers(t, "checkpoint+tail", recover("checkpoint+tail", false), twin, rng, 8)
	// Compaction up to the checkpoint watermark must not change recovery.
	sameAnswers(t, "compacted", recover("compacted", true), twin, rng, 8)

	// Full-log replay over a freshly built engine (no checkpoint at all)
	// reaches the same state — the follower's from-scratch bootstrap.
	log3, err := wal.Open(t.TempDir(), wal.Options{})
	_ = log3
	if err != nil {
		t.Fatal(err)
	}
	idxF, _, _ := buildFixture(t, seed)
	engF, err := New(idxF, Options{})
	if err != nil {
		t.Fatal(err)
	}
	logFull, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer logFull.Close()
	if n, err := wal.Replay(logFull, engF); err != nil || n != len(script) {
		t.Fatalf("full replay = %d, %v", n, err)
	}
	sameAnswers(t, "full-replay", engF, twin, rng, 8)
}

// TestCheckpointRejectsCorruption holds the checkpoint reader to the same
// reject-never-panic bar as the snapshot codec.
func TestCheckpointRejectsCorruption(t *testing.T) {
	idx, _, city := buildFixture(t, 613)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddSite(findNonSite(t, idx)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	load := func(data []byte) error {
		inst, _, br, err := wal.ReadCheckpoint(bytes.NewReader(data), city.Graph)
		if err != nil {
			return err
		}
		_, err = core.ReadIndex(br, inst)
		return err
	}
	if err := load(valid); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	for _, off := range []int{4, 10, 30, len(valid) / 2, len(valid) - 8} {
		data := append([]byte(nil), valid...)
		data[off] ^= 0x10
		if err := load(data); err == nil {
			t.Errorf("bit flip at %d accepted", off)
		}
	}
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 5} {
		if err := load(valid[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func findNonSite(t testing.TB, idx *core.Index) roadnet.NodeID {
	t.Helper()
	inst := idx.TopsInstance()
	for v := 0; v < inst.G.NumNodes(); v++ {
		if _, ok := inst.SiteIDOf(roadnet.NodeID(v)); !ok {
			return roadnet.NodeID(v)
		}
	}
	t.Fatal("every node is a site")
	return 0
}

// TestApplyRecordGuards pins the replay-surface contracts: LSN ordering,
// and the refusal to replay into a WAL-attached engine.
func TestApplyRecordGuards(t *testing.T) {
	idx, _, _ := buildFixture(t, 617)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := findNonSite(t, idx)
	rec := wal.Record{LSN: 2, Kind: wal.KindAddSite, Body: wal.NodeBody(int64(v))}
	if err := eng.ApplyRecord(rec); err == nil {
		t.Fatal("gap LSN accepted")
	}
	rec.LSN = 1
	if err := eng.ApplyRecord(rec); err != nil {
		t.Fatal(err)
	}
	if eng.LSN() != 1 {
		t.Fatalf("LSN %d after one replay", eng.LSN())
	}
	st := eng.Stats()
	if st.SiteAdds != 1 || st.Updates != 1 || st.LSN != 1 {
		t.Fatalf("stats after replay: %+v", st)
	}
	log, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	rec2 := wal.Record{LSN: 2, Kind: wal.KindDeleteSite, Body: wal.NodeBody(int64(v))}
	if err := eng.ApplyRecord(rec2); err == nil {
		t.Fatal("ApplyRecord accepted on a WAL-attached engine")
	}
}

// TestPerKindCounters pins the satellite contract: /statsz splits update
// counts by mutation kind, batch entries counting items.
func TestPerKindCounters(t *testing.T) {
	idx, inst, city := buildFixture(t, 619)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v1 := findNonSite(t, idx)
	if err := eng.AddSite(v1); err != nil {
		t.Fatal(err)
	}
	if err := eng.DeleteSite(inst.Sites[0]); err != nil {
		t.Fatal(err)
	}
	extras := extraTrajectories(t, city, 3, 5503)
	if _, err := eng.AddTrajectory(extras[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddTrajectories(extras[1:]); err != nil {
		t.Fatal(err)
	}
	if err := eng.DeleteTrajectory(0); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SiteAdds != 1 || st.SiteDeletes != 1 || st.TrajAdds != 3 || st.TrajDeletes != 1 {
		t.Fatalf("per-kind counters: %+v", st)
	}
	if st.Updates != 5 {
		t.Fatalf("updates %d, want 5 calls", st.Updates)
	}
}

// TestCheckpointCarriesEpoch: the fencing token survives the checkpoint
// container (v2) and the epoch record survives log replay, so a recovered
// node knows which primary term it last observed.
func TestCheckpointCarriesEpoch(t *testing.T) {
	idx, _, city := buildFixture(t, 811)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	log, err := wal.Open(walDir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	if err := eng.BeginEpoch(4); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddSite(findNonSite(t, idx)); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 4 {
		t.Fatalf("epoch %d after BeginEpoch(4)", eng.Epoch())
	}
	if eng.Stats().Epoch != 4 {
		t.Fatalf("stats epoch %d", eng.Stats().Epoch)
	}

	var buf bytes.Buffer
	if _, err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	inst, epoch, br, err := wal.ReadCheckpoint(bytes.NewReader(buf.Bytes()), city.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 {
		t.Fatalf("checkpoint epoch %d, want 4", epoch)
	}
	idx2, err := core.ReadIndex(br, inst)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := New(idx2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng2.RestoreEpoch(epoch)
	if eng2.Epoch() != 4 {
		t.Fatalf("restored epoch %d", eng2.Epoch())
	}

	// Replaying the full log into a fresh engine observes the epoch record.
	idx3, _, _ := buildFixture(t, 811)
	eng3, err := New(idx3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := wal.Replay(log, eng3); err != nil || n != 2 {
		t.Fatalf("replay = %d, %v", n, err)
	}
	if eng3.Epoch() != 4 {
		t.Fatalf("replayed epoch %d, want 4", eng3.Epoch())
	}
	if eng3.LSN() != eng.LSN() {
		t.Fatalf("replayed LSN %d, want %d", eng3.LSN(), eng.LSN())
	}
}
