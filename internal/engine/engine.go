// Package engine is the concurrent query layer above the NETCLUS index:
// it owns the reader/writer protocol that core.Index deliberately does not
// (queries take a read lock and share memoized covering structures; §6
// mutations take the write lock, which also fences cache invalidation), and
// it measures the traffic it serves.
//
// The split follows a classic instrumentation-systems layering: keep the
// measurement core pure and single-purpose, put lifecycle, concurrency, and
// accounting in a thin layer above it. core stays a synchronous library;
// engine turns it into something that can sustain query traffic.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/core"
	"netclus/internal/obs"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
	"netclus/internal/wal"
)

// Options configures an Engine.
type Options struct {
	// DisableCoverCache makes every query rebuild its covering structure
	// instead of hitting the core memoization — the paper's per-query
	// RepCover behaviour. Exists for memory-constrained deployments and as
	// the baseline arm of BenchmarkEngineQPS.
	DisableCoverCache bool
	// BatchWorkers bounds the number of concurrent greedy runs inside one
	// QueryBatch call. Zero means runtime.NumCPU().
	BatchWorkers int
	// DisablePooling makes every query allocate fresh result and greedy
	// buffers instead of drawing from the scratch pool, and makes Release
	// on its results a no-op. It is the reference arm: the pooling
	// differential tests (and the "before" benchmark arm) compare pooled
	// answers bit-for-bit against an engine running with this set.
	DisablePooling bool
}

// Engine wraps a *core.Index for concurrent serving. All exported methods
// are safe for concurrent use; an Index must be driven through at most one
// Engine (mutating the Index directly while an Engine serves it breaks the
// locking protocol).
type Engine struct {
	mu   sync.RWMutex
	idx  *core.Index
	opts Options

	// sink owns the attached log, the engine LSN, and the broken latch
	// (see wal.Sink); every successful mutation commits a typed record
	// through it before the caller is acknowledged. After an append
	// failure the sink refuses further mutations until the process
	// restarts and recovers (queries keep serving).
	sink wal.Sink

	queries      atomic.Uint64
	batchQueries atomic.Uint64
	batches      atomic.Uint64
	updates      atomic.Uint64
	siteAdds     atomic.Uint64
	siteDeletes  atomic.Uint64
	trajAdds     atomic.Uint64
	trajDeletes  atomic.Uint64
	errors       atomic.Uint64
	canceled     atomic.Uint64
	coverNanos   atomic.Int64
	greedyNanos  atomic.Int64
}

// New wraps idx. The Engine takes ownership of the index's mutation
// surface: all further updates must go through the Engine.
func New(idx *core.Index, opts Options) (*Engine, error) {
	if idx == nil {
		return nil, fmt.Errorf("engine: nil index")
	}
	if opts.BatchWorkers < 0 {
		return nil, fmt.Errorf("engine: negative BatchWorkers %d", opts.BatchWorkers)
	}
	e := &Engine{idx: idx, opts: opts}
	e.sink.SetLSN(idx.WalLSN())
	return e, nil
}

// Index exposes the wrapped index for read-only inspection (stats, exact
// evaluation against a distance index). Mutating it directly bypasses the
// Engine's locking — use the Engine's update methods instead.
func (e *Engine) Index() *core.Index { return e.idx }

// Snapshot serializes the wrapped index under the read lock, so a live
// service can checkpoint while serving queries: concurrent queries proceed,
// mutations wait, and the written snapshot is always a consistent state.
// (Calling core.Index.WriteTo directly on a served index races with
// updates; this is the supported path.)
func (e *Engine) Snapshot(w io.Writer) (int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.idx.WriteTo(w)
}

// Stats is a snapshot of the engine's traffic counters. The json tags are
// the /statsz wire contract of internal/server.
type Stats struct {
	// Queries counts single Query calls; BatchQueries counts queries served
	// through QueryBatch (Batches counts the batch calls themselves).
	Queries      uint64 `json:"queries"`
	BatchQueries uint64 `json:"batch_queries"`
	Batches      uint64 `json:"batches"`
	// Updates counts mutation calls (single or batch).
	Updates uint64 `json:"updates"`
	// Per-kind mutation counters: items, not calls — a 10-site AddSites
	// advances SiteAdds by 10 and Updates by 1.
	SiteAdds    uint64 `json:"site_add"`
	SiteDeletes uint64 `json:"site_delete"`
	TrajAdds    uint64 `json:"traj_add"`
	TrajDeletes uint64 `json:"traj_delete"`
	// LSN is the last write-ahead-log sequence number applied (logged on a
	// primary, replayed on a follower or during recovery); 0 when the
	// engine is not WAL-served.
	LSN uint64 `json:"lsn"`
	// Epoch is the replication fencing token of the primary term this
	// engine last observed; 0 when no term was ever opened.
	Epoch uint64 `json:"epoch"`
	// Errors counts failed queries (single or batch items), including the
	// Canceled subset below.
	Errors uint64 `json:"errors"`
	// Canceled counts queries aborted by context cancellation or a lapsed
	// per-request deadline.
	Canceled uint64 `json:"canceled"`
	// CoverHits / CoverMisses report the core cover-cache counters;
	// CoverEntries is the number of covers currently memoized.
	CoverHits    uint64 `json:"cover_hits"`
	CoverMisses  uint64 `json:"cover_misses"`
	CoverEntries int    `json:"cover_entries"`
	// CoverTime and GreedyTime accumulate the wall time of the two query
	// phases (cover fetch-or-build, greedy selection) across all queries,
	// in nanoseconds on the wire.
	CoverTime  time.Duration `json:"cover_time_ns"`
	GreedyTime time.Duration `json:"greedy_time_ns"`
}

// Stats returns a consistent-enough snapshot of the counters (individual
// fields are atomically read; the set is not fenced against in-flight
// queries, which is fine for monitoring).
func (e *Engine) Stats() Stats {
	cc := e.idx.CoverCacheStats()
	return Stats{
		Queries:      e.queries.Load(),
		BatchQueries: e.batchQueries.Load(),
		Batches:      e.batches.Load(),
		Updates:      e.updates.Load(),
		SiteAdds:     e.siteAdds.Load(),
		SiteDeletes:  e.siteDeletes.Load(),
		TrajAdds:     e.trajAdds.Load(),
		TrajDeletes:  e.trajDeletes.Load(),
		LSN:          e.sink.LSN(),
		Epoch:        e.sink.Epoch(),
		Errors:       e.errors.Load(),
		Canceled:     e.canceled.Load(),
		CoverHits:    cc.Hits,
		CoverMisses:  cc.Misses,
		CoverEntries: cc.Entries,
		CoverTime:    time.Duration(e.coverNanos.Load()),
		GreedyTime:   time.Duration(e.greedyNanos.Load()),
	}
}

// cover fetches (or builds) the covering structure for instance p under the
// engine's caching policy, accounting the time to the cover phase and
// reporting whether the memoized cache served it. The context cancels the
// sweep between representatives (see core.RepCoverCtx).
func (e *Engine) cover(ctx context.Context, p int, pref tops.Preference) (*tops.CoverSets, []core.ClusterID, bool, error) {
	t0 := time.Now()
	var cs *tops.CoverSets
	var reps []core.ClusterID
	var hit bool
	var err error
	if e.opts.DisableCoverCache {
		cs, reps, err = e.idx.RepCoverCtx(ctx, p, pref)
	} else {
		cs, reps, hit, err = e.idx.CoverForCtx(ctx, p, pref)
	}
	e.coverNanos.Add(time.Since(t0).Nanoseconds())
	return cs, reps, hit, err
}

// accountErr classifies a query failure into the Errors / Canceled
// counters and passes it through.
func (e *Engine) accountErr(err error) error {
	if err != nil {
		e.errors.Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.canceled.Add(1)
		}
	}
	return err
}

// Query answers one TOPS query under a read lock, so any number of Query
// and QueryBatch calls proceed concurrently with each other and the cover
// cache is shared between them. The context carries the per-request
// deadline: cancellation aborts the query at the next core checkpoint
// (before the cover sweep, between representatives inside it, before the
// greedy) with the context's error.
func (e *Engine) Query(ctx context.Context, opts core.QueryOptions) (*core.QueryResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	res, err := e.serve(ctx, opts)
	if err == nil {
		e.queries.Add(1)
	}
	return res, e.accountErr(err)
}

func (e *Engine) serve(ctx context.Context, opts core.QueryOptions) (*core.QueryResult, error) {
	tServe := time.Now()
	if err := opts.Pref.Validate(); err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("engine: k = %d must be positive", opts.K)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := e.idx.InstanceFor(opts.Pref.Tau)
	cs, reps, hit, err := e.cover(ctx, p, opts.Pref)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res, err := e.queryOnCover(ctx, p, cs, reps, opts)
	e.greedyNanos.Add(time.Since(t0).Nanoseconds())
	if err == nil {
		// The latency split keys on the cover source: a memoized cover is
		// the steady-state cached path, a fresh fill the cold one. Record
		// and the CoverHit stamp are allocation-free — the zero-alloc
		// cached-query gate runs with this instrumentation live.
		res.CoverHit = hit
		if hit {
			obs.QueryCached.RecordSince(tServe)
		} else {
			obs.QueryUncached.RecordSince(tServe)
		}
	}
	return res, err
}

// queryOnCover runs the greedy phase under the engine's pooling policy:
// pooled scratch by default (the caller may Release the result), fresh
// allocations under DisablePooling.
func (e *Engine) queryOnCover(ctx context.Context, p int, cs *tops.CoverSets, reps []core.ClusterID, opts core.QueryOptions) (*core.QueryResult, error) {
	if e.opts.DisablePooling {
		return e.idx.QueryOnCoverCtx(ctx, p, cs, reps, opts)
	}
	return e.idx.QueryOnCoverPooledCtx(ctx, p, cs, reps, opts)
}

// Sharding hooks. internal/shard runs one Engine per shard and drives the
// scatter phase through these read-locked accessors: ladder selection,
// per-cluster representative summaries (for the cross-shard winner
// reduction), and masked cover fills restricted to the clusters the shard
// currently owns. They are exported for the shard layer, not for general
// use — applications query through Query/QueryBatch.

// Graph returns the road network the served index is built over.
func (e *Engine) Graph() *roadnet.Graph { return e.idx.TopsInstance().G }

// InstanceFor returns the ladder position serving threshold τ, under the
// read lock so it cannot interleave with a mutation.
func (e *Engine) InstanceFor(tau float64) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.idx.InstanceFor(tau)
}

// RepInfos summarizes instance p's cluster representatives (cluster, node,
// dr) under the read lock.
func (e *Engine) RepInfos(p int) []core.RepInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.idx.RepInfos(p)
}

// ClusterOf returns node v's cluster at instance p (InvalidCluster when v
// is outside the graph), under the read lock.
func (e *Engine) ClusterOf(p int, v roadnet.NodeID) core.ClusterID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.idx.ClusterOf(p, v)
}

// RepOfCluster returns cluster ci's representative at instance p, under the
// read lock.
func (e *Engine) RepOfCluster(p int, ci core.ClusterID) (core.RepInfo, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.idx.RepOfCluster(p, ci)
}

// CoverMasked fetches (or fills) the covering structure of instance p under
// pref restricted to the clusters in keep (sorted ascending), memoized in
// the index's cover cache under the mask — or filled fresh per call when
// the engine's cover cache is disabled, mirroring the Query path's policy.
// Cover time is accounted like any other cover fetch.
func (e *Engine) CoverMasked(ctx context.Context, p int, pref tops.Preference, keep []core.ClusterID) (*tops.CoverSets, []core.ClusterID, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t0 := time.Now()
	var cs *tops.CoverSets
	var reps []core.ClusterID
	var err error
	if e.opts.DisableCoverCache {
		cs, reps, err = e.idx.RepCoverMaskedCtx(ctx, p, pref, keep)
	} else {
		cs, reps, _, err = e.idx.CoverForMaskedCtx(ctx, p, pref, keep)
	}
	e.coverNanos.Add(time.Since(t0).Nanoseconds())
	if err != nil {
		return nil, nil, e.accountErr(err)
	}
	return cs, reps, nil
}

// BatchItem is one QueryBatch outcome, index-aligned with the input.
type BatchItem struct {
	Result *core.QueryResult
	Err    error
}

// QueryBatch answers many queries under one read lock, grouping them by
// (ladder instance, preference fingerprint) so that each group's covering
// structure is fetched exactly once and then serves every (k, ψ-parameter)
// combination in the group; the greedy runs fan out across BatchWorkers.
// The interactive pattern the paper motivates — one analyst re-running a
// query while varying k and τ — maps to groups of size > 1 here, and
// internal/server's micro-batching admission layer coalesces concurrent
// network queries into exactly this call.
//
// The context applies to the batch as a whole: cancellation fails the
// not-yet-answered items with the context's error (already-computed items
// keep their results).
func (e *Engine) QueryBatch(ctx context.Context, qs []core.QueryOptions) []BatchItem {
	out := make([]BatchItem, len(qs))
	if len(qs) == 0 {
		return out
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.batches.Add(1)

	type groupKey struct {
		p  int
		fp uint64
	}
	groups := make(map[groupKey][]int)
	for i, q := range qs {
		if err := q.Pref.Validate(); err != nil {
			out[i].Err = e.accountErr(err)
			continue
		}
		if q.K <= 0 {
			out[i].Err = e.accountErr(fmt.Errorf("engine: k = %d must be positive", q.K))
			continue
		}
		p := e.idx.InstanceFor(q.Pref.Tau)
		key := groupKey{p: p, fp: core.PrefFingerprint(q.Pref)}
		groups[key] = append(groups[key], i)
	}

	workers := e.opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for key, members := range groups {
		cs, reps, hit, err := e.cover(ctx, key.p, qs[members[0]].Pref)
		if err != nil {
			for _, i := range members {
				out[i].Err = e.accountErr(err)
			}
			continue
		}
		for _, i := range members {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				t0 := time.Now()
				out[i].Result, out[i].Err = e.queryOnCover(ctx, key.p, cs, reps, qs[i])
				e.greedyNanos.Add(time.Since(t0).Nanoseconds())
				if out[i].Err == nil {
					out[i].Result.CoverHit = hit
					// Per-item latency: batch items ride a shared cover, so the
					// greedy phase is the whole per-query cost here.
					if hit {
						obs.QueryCached.RecordSince(t0)
					} else {
						obs.QueryUncached.RecordSince(t0)
					}
					e.batchQueries.Add(1)
				} else {
					e.accountErr(out[i].Err)
				}
			}(i)
		}
	}
	wg.Wait()
	return out
}

// Mutations: every §6 update takes the write lock, so in-flight queries
// drain first, and the core-side cache invalidation happens before any new
// reader can observe the changed index.
//
// With a WAL attached the discipline is apply-then-log under the exclusive
// lock: core validation has already accepted the mutation when the record
// is appended, so the log contains exactly the successful mutation sequence
// and replay can never fail on a record the live path accepted. The write
// lock makes apply+append atomic with respect to snapshots — a checkpoint
// can never observe state ahead of its stamped LSN. An update is
// acknowledged only after the append returns (durability at that point
// follows the log's fsync policy); if the append itself fails, the error
// carries wal.ErrLogFailed and the engine refuses further mutations, since
// its memory state is now ahead of the log.

// guardLog rejects mutations after a log append failure.
func (e *Engine) guardLog() error { return e.sink.Guard() }

// commit appends the record for a mutation that core just applied and
// stamps the engine (and the index, for snapshots) with the assigned LSN.
func (e *Engine) commit(kind wal.Kind, body []byte) error {
	lsn, err := e.sink.Commit(kind, body)
	if err != nil {
		return err
	}
	if lsn > 0 {
		e.idx.SetWalLSN(lsn)
	}
	return nil
}

// AddSite registers a new candidate site.
func (e *Engine) AddSite(v roadnet.NodeID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guardLog(); err != nil {
		return err
	}
	if err := e.idx.AddSite(v); err != nil {
		return err
	}
	e.updates.Add(1)
	e.siteAdds.Add(1)
	return e.commit(wal.KindAddSite, wal.NodeBody(int64(v)))
}

// DeleteSite removes a candidate site.
func (e *Engine) DeleteSite(v roadnet.NodeID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guardLog(); err != nil {
		return err
	}
	if err := e.idx.DeleteSite(v); err != nil {
		return err
	}
	e.updates.Add(1)
	e.siteDeletes.Add(1)
	return e.commit(wal.KindDeleteSite, wal.NodeBody(int64(v)))
}

// AddSites registers a batch of candidate sites atomically.
func (e *Engine) AddSites(nodes []roadnet.NodeID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guardLog(); err != nil {
		return err
	}
	if err := e.idx.AddSites(nodes); err != nil {
		return err
	}
	e.updates.Add(1)
	e.siteAdds.Add(uint64(len(nodes)))
	ids := make([]int64, len(nodes))
	for i, v := range nodes {
		ids[i] = int64(v)
	}
	return e.commit(wal.KindAddSites, wal.IDListBody(ids))
}

// AddTrajectory ingests one trajectory.
func (e *Engine) AddTrajectory(tr *trajectory.Trajectory) (trajectory.ID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guardLog(); err != nil {
		return 0, err
	}
	tid, err := e.idx.AddTrajectory(tr)
	if err != nil {
		return 0, err
	}
	e.updates.Add(1)
	e.trajAdds.Add(1)
	return tid, e.commit(wal.KindAddTrajectory, wal.TrajectoryBody(tr))
}

// DeleteTrajectory removes one trajectory.
func (e *Engine) DeleteTrajectory(tid trajectory.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guardLog(); err != nil {
		return err
	}
	if err := e.idx.DeleteTrajectory(tid); err != nil {
		return err
	}
	e.updates.Add(1)
	e.trajDeletes.Add(1)
	return e.commit(wal.KindDeleteTrajectory, wal.NodeBody(int64(tid)))
}

// AddTrajectories ingests a batch of trajectories atomically.
func (e *Engine) AddTrajectories(trs []*trajectory.Trajectory) ([]trajectory.ID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guardLog(); err != nil {
		return nil, err
	}
	ids, err := e.idx.AddTrajectories(trs)
	if err != nil {
		return nil, err
	}
	e.updates.Add(1)
	e.trajAdds.Add(uint64(len(trs)))
	return ids, e.commit(wal.KindAddTrajectories, wal.TrajectoriesBody(trs))
}

// DeleteTrajectories removes a batch of trajectories atomically.
func (e *Engine) DeleteTrajectories(ids []trajectory.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guardLog(); err != nil {
		return err
	}
	if err := e.idx.DeleteTrajectories(ids); err != nil {
		return err
	}
	e.updates.Add(1)
	e.trajDeletes.Add(uint64(len(ids)))
	raw := make([]int64, len(ids))
	for i, id := range ids {
		raw[i] = int64(id)
	}
	return e.commit(wal.KindDeleteTrajectories, wal.IDListBody(raw))
}

// Durability and replication surface. The engine exposes three things: the
// LSN it has reached, a replay entry point that applies logged records
// without re-logging them (crash recovery and follower tailing), and a
// checkpoint writer that bundles the mutated dataset with an LSN-stamped
// index snapshot (see wal.WriteCheckpoint).

// LSN reports the last applied write-ahead-log sequence number.
func (e *Engine) LSN() uint64 { return e.sink.LSN() }

// Epoch reports the replication fencing token this engine last observed
// (0 until a term is opened or replayed).
func (e *Engine) Epoch() uint64 { return e.sink.Epoch() }

// RestoreEpoch stamps the epoch recovered from a checkpoint container.
// Load-time only, before any mutations or replay.
func (e *Engine) RestoreEpoch(epoch uint64) { e.sink.RestoreEpoch(epoch) }

// BeginEpoch opens a new primary term: it logs a KindEpoch record (when a
// WAL is attached) and advances the fencing token, which must be strictly
// newer than the current one. Promotion calls this with Epoch()+1.
func (e *Engine) BeginEpoch(epoch uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.guardLog(); err != nil {
		return err
	}
	lsn, err := e.sink.BeginEpoch(epoch)
	if err != nil {
		return err
	}
	if lsn > 0 {
		e.idx.SetWalLSN(lsn)
	}
	return nil
}

// AttachWAL connects the engine to its log: every later mutation appends a
// record before it is acknowledged. The log must be positioned exactly at
// the engine's LSN — recover first (wal.Replay), then attach. An empty log
// is based at the engine's LSN, covering both a fresh deployment and a
// checkpoint restored into a compacted-away log directory.
func (e *Engine) AttachWAL(l *wal.Log) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sink.Attach(l)
}

// ApplyRecord applies one logged mutation through the same core paths the
// live mutation methods use, without re-logging it. It is the replay
// surface: crash recovery drives the checkpoint's tail through it, and a
// follower drives the primary's streamed records through it. Records must
// arrive in LSN order; a WAL-attached engine refuses (its records originate
// locally).
func (e *Engine) ApplyRecord(rec wal.Record) error {
	m, err := rec.Mutation()
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.sink.CheckReplay(rec); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if m.Kind == wal.KindEpoch {
		if err := e.sink.ApplyEpoch(rec); err != nil {
			return fmt.Errorf("engine: replaying LSN %d (%s): %w", rec.LSN, m.Kind, err)
		}
		e.idx.SetWalLSN(rec.LSN)
		return nil
	}
	if err := e.applyMutation(m); err != nil {
		return fmt.Errorf("engine: replaying LSN %d (%s): %w", rec.LSN, m.Kind, err)
	}
	e.sink.SetLSN(rec.LSN)
	e.idx.SetWalLSN(rec.LSN)
	return nil
}

// applyMutation dispatches a decoded record to the core mutation it logs.
// Caller holds the write lock.
func (e *Engine) applyMutation(m wal.Mutation) error {
	g := e.idx.TopsInstance().G
	switch m.Kind {
	case wal.KindAddSite:
		if err := e.idx.AddSite(roadnet.NodeID(m.Node)); err != nil {
			return err
		}
		e.siteAdds.Add(1)
	case wal.KindDeleteSite:
		if err := e.idx.DeleteSite(roadnet.NodeID(m.Node)); err != nil {
			return err
		}
		e.siteDeletes.Add(1)
	case wal.KindAddSites:
		nodes := make([]roadnet.NodeID, len(m.Nodes))
		for i, v := range m.Nodes {
			nodes[i] = roadnet.NodeID(v)
		}
		if err := e.idx.AddSites(nodes); err != nil {
			return err
		}
		e.siteAdds.Add(uint64(len(nodes)))
	case wal.KindAddTrajectory:
		tr, err := m.Traj.Trajectory(g)
		if err != nil {
			return err
		}
		if _, err := e.idx.AddTrajectory(tr); err != nil {
			return err
		}
		e.trajAdds.Add(1)
	case wal.KindDeleteTrajectory:
		if err := e.idx.DeleteTrajectory(trajectory.ID(m.ID)); err != nil {
			return err
		}
		e.trajDeletes.Add(1)
	case wal.KindAddTrajectories:
		trs := make([]*trajectory.Trajectory, len(m.Trajs))
		for i, td := range m.Trajs {
			tr, err := td.Trajectory(g)
			if err != nil {
				return err
			}
			trs[i] = tr
		}
		if _, err := e.idx.AddTrajectories(trs); err != nil {
			return err
		}
		e.trajAdds.Add(uint64(len(trs)))
	case wal.KindDeleteTrajectories:
		ids := make([]trajectory.ID, len(m.Nodes))
		for i, v := range m.Nodes {
			ids[i] = trajectory.ID(v)
		}
		if err := e.idx.DeleteTrajectories(ids); err != nil {
			return err
		}
		e.trajDeletes.Add(uint64(len(ids)))
	default:
		return fmt.Errorf("engine: unknown mutation kind %s", m.Kind)
	}
	e.updates.Add(1)
	return nil
}

// Checkpoint writes the recovery bundle for the served index under the read
// lock: the mutated dataset state (site order, trajectory store) plus the
// LSN-stamped index snapshot, all mutually consistent because mutations
// hold the write lock across apply+log+stamp. Reload with
// wal.ReadCheckpoint + core.ReadIndex (the netclus.LoadCheckpoint facade).
func (e *Engine) Checkpoint(w io.Writer) (int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	inst := e.idx.TopsInstance()
	return wal.WriteCheckpoint(w, inst.Sites, inst.Trajs, e.sink.Epoch(), e.idx.WriteTo)
}
