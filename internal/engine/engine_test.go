package engine

import (
	"context"
	"math"
	"sync"
	"testing"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// buildFixture generates a small deterministic dataset and one NETCLUS
// index over it. Generation is seeded, so two calls with the same seed
// yield independent but identical instances — which the invalidation tests
// rely on to compare a served index against a mirror.
func buildFixture(t testing.TB, seed int64) (*core.Index, *tops.Instance, *gen.City) {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 500, SpanKm: 10, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 60, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 120, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.Build(inst, core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	return idx, inst, city
}

// extraTrajectories generates trajectories over the same city that are not
// part of the fixture store, for insertion during update tests.
func extraTrajectories(t testing.TB, city *gen.City, n int, seed int64) []*trajectory.Trajectory {
	t.Helper()
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*trajectory.Trajectory, 0, n)
	store.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) {
		out = append(out, tr)
	})
	return out
}

func sameResult(t *testing.T, a, b *core.QueryResult, label string) {
	t.Helper()
	if math.Abs(a.EstimatedUtility-b.EstimatedUtility) > 1e-9 {
		t.Fatalf("%s: utility %v vs %v", label, a.EstimatedUtility, b.EstimatedUtility)
	}
	if a.EstimatedCovered != b.EstimatedCovered {
		t.Fatalf("%s: covered %d vs %d", label, a.EstimatedCovered, b.EstimatedCovered)
	}
	if len(a.Sites) != len(b.Sites) {
		t.Fatalf("%s: %d vs %d sites", label, len(a.Sites), len(b.Sites))
	}
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("%s: site %d differs: %d vs %d", label, i, a.Sites[i], b.Sites[i])
		}
	}
}

func TestQueryMatchesCoreAndHitsCache(t *testing.T) {
	idx, _, _ := buildFixture(t, 901)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	taus := []float64{0.4, 0.8, 1.6}
	for _, tau := range taus {
		want, err := idx.QueryCtx(context.Background(), core.QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := eng.Query(context.Background(), core.QueryOptions{K: 5, Pref: tops.Binary(tau)})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, got, want, "engine vs core")
		}
	}
	st := eng.Stats()
	if st.Queries != uint64(3*len(taus)) {
		t.Fatalf("query count %d", st.Queries)
	}
	// Distinct (instance, ψ) pairs miss once each; repeats must hit. Two τ
	// may share a ladder instance but not a fingerprint, so misses equal
	// the distinct τ count.
	if st.CoverMisses != uint64(len(taus)) {
		t.Fatalf("cover misses %d, want %d", st.CoverMisses, len(taus))
	}
	if st.CoverHits != uint64(2*len(taus)) {
		t.Fatalf("cover hits %d, want %d", st.CoverHits, 2*len(taus))
	}
	if st.CoverEntries != len(taus) {
		t.Fatalf("cover entries %d", st.CoverEntries)
	}
	if st.CoverTime <= 0 || st.GreedyTime <= 0 {
		t.Fatalf("phase timings not recorded: %+v", st)
	}
}

func TestQueryBatchMatchesSingles(t *testing.T) {
	idx, _, _ := buildFixture(t, 907)
	eng, err := New(idx, Options{BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var qs []core.QueryOptions
	for _, tau := range []float64{0.4, 0.8, 1.6} {
		for _, k := range []int{1, 3, 5} {
			qs = append(qs, core.QueryOptions{K: k, Pref: tops.Binary(tau)})
			qs = append(qs, core.QueryOptions{K: k, Pref: tops.Linear(tau)})
		}
	}
	qs = append(qs, core.QueryOptions{K: 0, Pref: tops.Binary(0.8)}) // invalid
	items := eng.QueryBatch(context.Background(), qs)
	if len(items) != len(qs) {
		t.Fatalf("item count %d != %d", len(items), len(qs))
	}
	for i, q := range qs {
		if q.K <= 0 {
			if items[i].Err == nil {
				t.Fatalf("invalid query %d accepted", i)
			}
			continue
		}
		if items[i].Err != nil {
			t.Fatalf("query %d: %v", i, items[i].Err)
		}
		want, err := idx.QueryCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, items[i].Result, want, "batch vs core")
	}
	st := eng.Stats()
	if st.Batches != 1 || st.BatchQueries != uint64(len(qs)-1) {
		t.Fatalf("batch counters: %+v", st)
	}
	// 6 distinct (τ, ψ) covers serve 18 valid queries: the grouping must
	// not rebuild per query.
	if st.CoverMisses != 6 {
		t.Fatalf("cover misses %d, want 6", st.CoverMisses)
	}
}

// applyMutations runs a fixed update sequence against an engine (locked) or
// a bare index, so a served index and a mirror can reach the same state.
type mutator interface {
	AddTrajectories(trs []*trajectory.Trajectory) ([]trajectory.ID, error)
	DeleteTrajectories(ids []trajectory.ID) error
	AddSite(v roadnet.NodeID) error
	DeleteSite(v roadnet.NodeID) error
}

func applyMutations(t testing.TB, m mutator, inst *tops.Instance, extra []*trajectory.Trajectory) {
	t.Helper()
	ids, err := m.AddTrajectories(extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteTrajectories([]trajectory.ID{0, 3, ids[0]}); err != nil {
		t.Fatal(err)
	}
	// Delete an existing site, then register a fresh one.
	if err := m.DeleteSite(inst.Sites[7]); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < inst.G.NumNodes(); v++ {
		node := roadnet.NodeID(v)
		isSite := false
		for _, s := range inst.Sites {
			if s == node {
				isSite = true
				break
			}
		}
		if !isSite {
			if err := m.AddSite(node); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
}

func TestInvalidationMatchesColdIndex(t *testing.T) {
	// Identical twin fixtures; one served (and cached) through an engine,
	// one mutated bare and always queried cold. After the same mutation
	// sequence the cached engine answers must equal the cold ones.
	idx, inst, city := buildFixture(t, 911)
	mirrorIdx, mirrorInst, _ := buildFixture(t, 911)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid := []core.QueryOptions{
		{K: 5, Pref: tops.Binary(0.4)},
		{K: 5, Pref: tops.Binary(0.8)},
		{K: 3, Pref: tops.Linear(1.6)},
	}
	// Warm the cache pre-mutation.
	for _, q := range grid {
		if _, err := eng.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	extra := extraTrajectories(t, city, 10, 99)
	applyMutations(t, eng, inst, extra)
	applyMutations(t, mirrorIdx, mirrorInst, extra)
	if eng.Stats().CoverEntries != 0 {
		t.Fatalf("mutations left %d cached covers", eng.Stats().CoverEntries)
	}
	for _, q := range grid {
		got, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mirrorIdx.QueryCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, got, want, "post-mutation grid entry")
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	// Race-detector stress: readers hammer Query/QueryBatch while one
	// writer applies a fixed mutation sequence. Afterwards the engine must
	// agree with a mirror index that saw the same sequence sequentially.
	idx, inst, city := buildFixture(t, 917)
	mirrorIdx, mirrorInst, _ := buildFixture(t, 917)
	eng, err := New(idx, Options{BatchWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	taus := []float64{0.4, 0.8, 1.2, 1.6}
	done := make(chan struct{})
	errCh := make(chan error, 64)
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				tau := taus[(r+i)%len(taus)]
				if i%3 == 0 {
					items := eng.QueryBatch(context.Background(), []core.QueryOptions{
						{K: 2, Pref: tops.Binary(tau)},
						{K: 4, Pref: tops.Binary(tau)},
					})
					for _, it := range items {
						if it.Err != nil {
							errCh <- it.Err
							return
						}
					}
				} else if _, err := eng.Query(context.Background(), core.QueryOptions{K: 3, Pref: tops.Binary(tau)}); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	extra := extraTrajectories(t, city, 10, 131)
	applyMutations(t, eng, inst, extra)
	close(done)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	applyMutations(t, mirrorIdx, mirrorInst, extra)
	for _, tau := range taus {
		got, err := eng.Query(context.Background(), core.QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := mirrorIdx.QueryCtx(context.Background(), core.QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, got, want, "post-churn")
	}
}

func TestDisableCoverCache(t *testing.T) {
	idx, _, _ := buildFixture(t, 919)
	eng, err := New(idx, Options{DisableCoverCache: true})
	if err != nil {
		t.Fatal(err)
	}
	q := core.QueryOptions{K: 5, Pref: tops.Binary(0.8)}
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.CoverHits != 0 || st.CoverMisses != 0 || st.CoverEntries != 0 {
		t.Fatalf("uncached engine touched the cover cache: %+v", st)
	}
}
