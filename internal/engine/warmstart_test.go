package engine

import (
	"bytes"
	"context"
	"testing"

	"netclus/internal/core"
	"netclus/internal/tops"
)

// TestEngineWarmStart exercises the full warm-start path: build → snapshot
// → load → serve through a fresh Engine. The loaded engine must answer
// exactly like the cold one, and a §6 mutation through it must re-arm the
// cover-cache invalidation (no stale cover can serve a post-update query).
func TestEngineWarmStart(t *testing.T) {
	idx, inst, city := buildFixture(t, 71)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadIndex(bytes.NewReader(buf.Bytes()), inst)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(loaded, Options{})
	if err != nil {
		t.Fatal(err)
	}

	q := core.QueryOptions{K: 5, Pref: tops.Binary(0.8)}
	a, err := cold.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if a.EstimatedUtility != b.EstimatedUtility || len(a.Sites) != len(b.Sites) {
		t.Fatalf("warm engine answers differently: %+v vs %+v", a, b)
	}
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("site %d differs between cold and warm engine", i)
		}
	}

	// The first query memoized a cover; a mutation must drop it and the
	// next query must rebuild (miss), reflecting the new trajectory.
	st := warm.Stats()
	if st.CoverEntries == 0 {
		t.Fatal("warm engine did not memoize a cover")
	}
	extra := extraTrajectories(t, city, 1, 991)
	if _, err := warm.AddTrajectory(extra[0]); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.CoverEntries != 0 {
		t.Fatalf("update through warm engine left %d stale covers", st.CoverEntries)
	}
	missesBefore := warm.Stats().CoverMisses
	if _, err := warm.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.CoverMisses != missesBefore+1 {
		t.Fatalf("post-update query did not rebuild the cover (misses %d -> %d)", missesBefore, st.CoverMisses)
	}
}

// TestEngineSnapshotDuringTraffic checkpoints a served index while queries
// and mutations are in flight: Snapshot takes the read lock, so under the
// race detector this pins the absence of data races between checkpointing
// and updates, and every written snapshot must load cleanly (a torn write
// would fail the codec's checksum or validation).
func TestEngineSnapshotDuringTraffic(t *testing.T) {
	idx, inst, city := buildFixture(t, 73)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	extra := extraTrajectories(t, city, 8, 997)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, tr := range extra {
			if _, err := eng.AddTrajectory(tr); err != nil {
				t.Error(err)
				return
			}
			if _, err := eng.Query(context.Background(), core.QueryOptions{K: 3, Pref: tops.Binary(0.8)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var lastGood []byte
	for i := 0; i < 6; i++ {
		var buf bytes.Buffer
		if _, err := eng.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		lastGood = buf.Bytes()
	}
	<-done
	// The final snapshot must re-attach to the (now mutated) instance.
	if _, err := core.ReadIndex(bytes.NewReader(lastGood), inst); err != nil {
		// Mid-traffic snapshots can predate the last mutations; only the
		// fingerprint of the final state is guaranteed to match. Take one
		// more quiescent snapshot and require it to load.
		var buf bytes.Buffer
		if _, err := eng.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := core.ReadIndex(bytes.NewReader(buf.Bytes()), inst); err != nil {
			t.Fatalf("quiescent snapshot does not load: %v", err)
		}
	}
}
