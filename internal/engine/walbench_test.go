package engine

import (
	"testing"
	"time"

	"netclus/internal/wal"
)

// End-to-end §6 update throughput through the engine, by durability
// policy: "off" is the PR-3 baseline (no log), the rest pay one record
// append per mutation under the engine write lock. Together with
// BenchmarkWALAppend this separates mutation cost from logging cost.
func BenchmarkEngineUpdateWAL(b *testing.B) {
	for _, pol := range []string{"off", string(wal.SyncNever), string(wal.SyncEveryInterval), string(wal.SyncAlways)} {
		b.Run(pol, func(b *testing.B) {
			idx, _, _ := buildFixture(b, 907)
			eng, err := New(idx, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if pol != "off" {
				log, err := wal.Open(b.TempDir(), wal.Options{Policy: wal.SyncPolicy(pol), Interval: 10 * time.Millisecond})
				if err != nil {
					b.Fatal(err)
				}
				defer log.Close()
				if err := eng.AttachWAL(log); err != nil {
					b.Fatal(err)
				}
			}
			v := findNonSite(b, idx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Toggle one site: every iteration is one logged mutation
				// with real cover invalidation and representative upkeep.
				if i%2 == 0 {
					if err := eng.AddSite(v); err != nil {
						b.Fatal(err)
					}
				} else if err := eng.DeleteSite(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
