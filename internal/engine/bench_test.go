package engine

import (
	"context"
	"sync/atomic"
	"testing"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/tops"
)

// benchIndex builds a mid-sized dataset once per benchmark binary: large
// enough that cover construction dominates an uncached query, as it does at
// city scale.
func benchIndex(b *testing.B) *core.Index {
	b.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 2500, SpanKm: 14, Jitter: 0.2, Seed: 941,
	})
	if err != nil {
		b.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 800, Seed: 942})
	if err != nil {
		b.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 600, Seed: 943})
	if err != nil {
		b.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := core.Build(inst, core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

// BenchmarkEngineQPS measures sustained concurrent mixed-τ query throughput
// through the engine, with the cover cache enabled (production path) and
// disabled (the paper's per-query RepCover). The cached arm is the
// zero-allocation hot path — memoized cover, pooled scratch — and
// cached_unpooled is its "before" reference (fresh buffers per query), so
// the pair measures what the data-layout rework and pooling buy.
// EXPERIMENTS.md records the measured numbers; .github CI gates ns/op
// regressions against BENCH_BASELINE.txt.
func BenchmarkEngineQPS(b *testing.B) {
	idx := benchIndex(b)
	taus := []float64{0.4, 0.8, 1.6, 2.4}
	run := func(b *testing.B, opts Options) {
		eng, err := New(idx, opts)
		if err != nil {
			b.Fatal(err)
		}
		var worker atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(worker.Add(1))
			for pb.Next() {
				q := core.QueryOptions{K: 5, Pref: tops.Binary(taus[i%len(taus)])}
				i++
				res, err := eng.Query(context.Background(), q)
				if err != nil {
					b.Error(err)
					return
				}
				res.Release()
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		st := eng.Stats()
		if !opts.DisableCoverCache && b.N > len(taus) && st.CoverHits == 0 {
			b.Fatalf("cached run recorded no cover hits: %+v", st)
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, Options{}) })
	b.Run("cached_unpooled", func(b *testing.B) { run(b, Options{DisablePooling: true}) })
	b.Run("uncached", func(b *testing.B) { run(b, Options{DisableCoverCache: true}) })
}
