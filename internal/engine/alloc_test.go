package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"netclus/internal/core"
	"netclus/internal/gen"
	"netclus/internal/tops"
)

// allocFixture is a small index for the allocation-regression tests: big
// enough to exercise a multi-round greedy, small enough to build in
// milliseconds.
func allocFixture(t *testing.T) *core.Index {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 400, SpanKm: 8, Jitter: 0.2, Seed: 611,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 150, Seed: 612})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 120, Seed: 613})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.Build(inst, core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestCachedQueryZeroAllocs is the hot-path allocation gate: once the cover
// is memoized and the scratch pools are warm, Engine.Query must allocate
// nothing — the whole greedy phase runs on pooled buffers. A regression
// here (a stray fmt.Sprintf in the cache key, a per-query slice) fails the
// test with the measured count.
func TestCachedQueryZeroAllocs(t *testing.T) {
	if raceEnabled {
		// The race detector's instrumentation allocates on its own (shadow
		// state for sync.Pool traffic), so an exact-zero gate can't hold
		// under -race. The non-race CI lanes enforce it.
		t.Skip("allocation counts are not exact under -race")
	}
	idx := allocFixture(t)
	eng, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := core.QueryOptions{K: 5, Pref: tops.Binary(0.8)}
	ctx := context.Background()
	// Warm the cover cache and the scratch pools, and verify the path works.
	for i := 0; i < 3; i++ {
		res, err := eng.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Sites) == 0 {
			t.Fatal("warm-up query returned no sites")
		}
		res.Release()
	}
	// Flush sync.Pool victim caches so the measurement loop starts from
	// steady state (a Get that repopulates from the victim cache is free,
	// but a Get after two GCs re-allocates once — that one-time cost must
	// land before the measured runs, not inside them).
	runtime.GC()
	runtime.GC()
	res, err := eng.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	avg := testing.AllocsPerRun(100, func() {
		r, err := eng.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	})
	if avg != 0 {
		t.Fatalf("cached Engine.Query allocates %.2f objects per call, want 0", avg)
	}
}

// TestPoolingDifferential is the pooling-abuse oracle: many goroutines
// hammer the pooled engine with a mixed workload — Releasing results while
// other queries are mid-flight, double-Releasing, or never Releasing — and
// every answer must be bit-identical to the unpooled reference engine
// (DisablePooling) serving the same index. Run with -race this also proves
// the pools are data-race-free under concurrent recycling.
func TestPoolingDifferential(t *testing.T) {
	idx := allocFixture(t)
	pooled, err := New(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := New(idx, Options{DisablePooling: true})
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		q       core.QueryOptions
		sites   []int64
		siteIDs []int32
		util    float64
		covered int
	}
	taus := []float64{0.4, 0.8, 1.6, 3.2}
	var wants []want
	ctx := context.Background()
	for _, tau := range taus {
		for _, k := range []int{1, 3, 7} {
			q := core.QueryOptions{K: k, Pref: tops.Binary(tau)}
			res, err := reference.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			w := want{q: q, util: res.EstimatedUtility, covered: res.EstimatedCovered}
			for _, v := range res.Sites {
				w.sites = append(w.sites, int64(v))
			}
			for _, v := range res.SiteIDs {
				w.siteIDs = append(w.siteIDs, int32(v))
			}
			// Release on an unpooled result must be a harmless no-op.
			res.Release()
			res.Release()
			wants = append(wants, w)
		}
	}

	const goroutines = 8
	const rounds = 50
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			var err error
			defer func() { errc <- err }()
			for r := 0; r < rounds; r++ {
				w := wants[(g*rounds+r)%len(wants)]
				res, qerr := pooled.Query(ctx, w.q)
				if qerr != nil {
					err = qerr
					return
				}
				if res.EstimatedUtility != w.util || res.EstimatedCovered != w.covered ||
					len(res.Sites) != len(w.sites) {
					err = errMismatch(w.q, res, w.util, w.covered)
					return
				}
				for i := range w.sites {
					if int64(res.Sites[i]) != w.sites[i] || int32(res.SiteIDs[i]) != w.siteIDs[i] {
						err = errMismatch(w.q, res, w.util, w.covered)
						return
					}
				}
				if r%3 != 2 {
					res.Release()
				}
				// Every third result is abandoned to the GC instead; the
				// pool must not care.
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func errMismatch(q core.QueryOptions, res *core.QueryResult, util float64, covered int) error {
	return fmt.Errorf("pooled answer diverged from unpooled reference for k=%d τ=%v: got util=%v covered=%d sites=%d, want util=%v covered=%d",
		q.K, q.Pref.Tau, res.EstimatedUtility, res.EstimatedCovered, len(res.Sites), util, covered)
}
