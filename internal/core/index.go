package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// ClusterID identifies a cluster within one index instance.
type ClusterID int32

// InvalidCluster marks nodes without a cluster (never the case after build).
const InvalidCluster ClusterID = -1

// TrajEntry is one element of a cluster's trajectory list T L(g): a
// trajectory passing through the cluster with its round-trip distance to
// the cluster center (§4.3, item 3).
type TrajEntry struct {
	Traj trajectory.ID
	Dr   float64
}

// NeighborEntry is one element of a cluster's neighbor list CL(g): a
// cluster whose center is within round-trip distance 4·R·(1+γ), with that
// distance (§4.3, item 4).
type NeighborEntry struct {
	Cluster ClusterID
	Dr      float64
}

// Cluster carries the per-cluster information of §4.3.
type Cluster struct {
	// Center is the cluster center c_i chosen by Greedy-GDSP.
	Center roadnet.NodeID
	// Rep is the cluster representative r_i: the candidate site closest to
	// the center (§4.2), or InvalidNode when the cluster hosts no site.
	Rep roadnet.NodeID
	// RepDr is dr(c_i, r_i); 0 when Rep is the center, +Inf when no rep.
	RepDr float64
	// Members lists the nodes of the cluster, ascending by node id.
	Members []roadnet.NodeID
	// MemberDr[i] is dr(Members[i], c_i) <= 2R.
	MemberDr []float64
	// TL is the trajectory list, ordered by trajectory id.
	TL []TrajEntry
	// CL is the neighbor list, ascending by distance.
	CL []NeighborEntry
}

// Instance is one resolution level I_p of the NETCLUS index.
type Instance struct {
	// Radius is the cluster radius R_p.
	Radius float64
	// Clusters holds every cluster of this instance.
	Clusters []Cluster
	// NodeCluster maps each node to its cluster.
	NodeCluster []ClusterID
	// nodeCenterDr[v] = dr(v, center of NodeCluster[v]).
	nodeCenterDr []float64
	// CC maps each trajectory to the (deduplicated) clusters it passes
	// through — the inverse of TL (§6 uses it for deletions).
	CC [][]ClusterID
	// BuildTime records how long this instance took to construct.
	BuildTime time.Duration
}

// Options configures index construction.
type Options struct {
	// Gamma is the resolution parameter γ ∈ (0,1]: radii grow by (1+γ)
	// between instances and a cluster's neighborhood reaches 4R(1+γ).
	// The paper fixes 0.75 after the Table 7 sweep.
	Gamma float64
	// TauMin / TauMax bound the query coverage thresholds the index must
	// serve. Zero values are derived from the data per §4.4: the minimum
	// and maximum round-trip distance between candidate sites (estimated
	// by sampling; exact pairwise computation is quadratic).
	TauMin, TauMax float64
	// Workers bounds build parallelism, both across ladder rungs and
	// inside each rung (the per-node clustering sweeps and the neighbor-
	// list searches). Zero means runtime.NumCPU(); 1 builds fully
	// sequentially. The built index is identical — and its snapshot
	// byte-identical — for every worker count.
	Workers int
	// GDSP configures the clustering; Radius is overwritten per instance.
	GDSP GDSPOptions
}

func (o Options) withDefaults() Options {
	if o.Gamma == 0 {
		o.Gamma = 0.75
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Index is the multi-resolution NETCLUS index (§4.4). It owns a mutable
// view of the site set and the trajectory store so that dynamic updates
// (§6) do not mutate the caller's instance.
type Index struct {
	inst      *tops.Instance
	opts      Options
	Instances []*Instance

	// isSite[v] marks candidate-site nodes; siteID[v] is the dense site id
	// of node v (or -1). Updates maintain both.
	isSite []bool
	siteID []int32
	// trajs aliases inst.Trajs extended by dynamic additions; alive masks
	// deletions.
	trajs *trajectory.Store
	alive []bool

	// walLSN is the last write-ahead-log sequence number applied to this
	// index (0 when it is not WAL-served). The serving layer stamps it
	// after every logged mutation; snapshots carry it so recovery knows
	// which log suffix to replay.
	walLSN uint64

	// Cover caching (cover.go): per-instance CoverPlans plus memoized
	// CoverSets keyed by (instance, preference fingerprint, cluster mask).
	// coverMasks tracks the one masked-fill fingerprint currently live per
	// instance (the sharded engine's ownership mask). coverMu guards the
	// maps; mutation-vs-query serialization is the caller's job
	// (internal/engine wraps the index in an RWMutex for that).
	coverMu     sync.Mutex
	coverPlans  []*CoverPlan
	coverCache  map[coverKey]*coverEntry
	coverMasks  map[int]uint64
	coverHits   atomic.Uint64
	coverMisses atomic.Uint64
}

// Build constructs the full NETCLUS index offline phase: the instance
// ladder I_0 … I_{t−1} with radii R_p = (1+γ)^p · τmin/4.
func Build(inst *tops.Instance, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if opts.Gamma <= 0 || opts.Gamma > 1 {
		return nil, fmt.Errorf("core: γ = %v outside (0,1]", opts.Gamma)
	}
	idx := &Index{
		inst:   inst,
		opts:   opts,
		isSite: make([]bool, inst.G.NumNodes()),
		siteID: make([]int32, inst.G.NumNodes()),
		trajs:  inst.Trajs,
		alive:  make([]bool, inst.M()),
	}
	for v := range idx.siteID {
		idx.siteID[v] = -1
	}
	for i, s := range inst.Sites {
		idx.isSite[s] = true
		idx.siteID[s] = int32(i)
	}
	for i := range idx.alive {
		idx.alive[i] = true
	}

	if opts.TauMin <= 0 || opts.TauMax <= 0 {
		tmin, tmax := estimateTauRange(inst)
		if opts.TauMin <= 0 {
			opts.TauMin = tmin
		}
		if opts.TauMax <= 0 {
			opts.TauMax = tmax
		}
	}
	if opts.TauMin >= opts.TauMax {
		return nil, fmt.Errorf("core: τmin %v >= τmax %v", opts.TauMin, opts.TauMax)
	}
	idx.opts = opts

	t := ladderRungs(opts.Gamma, opts.TauMin, opts.TauMax)
	// Shares the exact formula and ceiling with the snapshot decoder, so
	// save/load stay symmetric by construction — every index Build can
	// produce, ReadIndex will accept. A >maxLadderRungs ladder only arises
	// from a near-zero γ with a wide τ range: a misconfiguration, not a
	// workload.
	// t < 1 covers the float underflow at γ ≲ 1.1e-16, where 1+γ == 1
	// makes ladderRungs divide by log(1) and the int conversion of +Inf
	// go negative — without the guard, make() below would panic.
	if t < 1 || t > maxLadderRungs {
		return nil, fmt.Errorf("core: γ=%v over τ∈[%v,%v) yields a %d-rung ladder (max %d); increase γ or narrow the τ range", opts.Gamma, opts.TauMin, opts.TauMax, t, maxLadderRungs)
	}
	r0 := opts.TauMin / 4
	// Ladder rungs are independent (each reads the shared immutable inputs
	// and writes only its own Instance), so they build concurrently — and
	// the Workers budget is split globally, not granted per rung: at most
	// rungPar rungs run at once, each fanning its clustering sweeps over
	// ~Workers/rungPar inner workers, so peak goroutines and O(|V|)
	// Dijkstra scratches stay ~Workers rather than Workers². rungPar
	// scales with the budget (Workers/4, floored at 2) because each rung
	// also has sequential phases (greedy selection, trajectory
	// registration) that only rung-level overlap can hide — on a big
	// machine a whole ladder still runs at once, on 4 cores two rungs
	// pipeline. Rung p depends only on its radius, and the slice assembly
	// below is by position, so the merge order — and therefore the built
	// index — is deterministic for every worker count.
	rungPar := opts.Workers / 4
	if rungPar < 2 {
		rungPar = 2
	}
	if rungPar > t {
		rungPar = t
	}
	if rungPar > opts.Workers {
		rungPar = opts.Workers
	}
	innerWorkers := (opts.Workers + rungPar - 1) / rungPar
	idx.Instances = make([]*Instance, t)
	errs := make([]error, t)
	var wg sync.WaitGroup
	sem := make(chan struct{}, rungPar)
	for p := 0; p < t; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			radius := r0 * math.Pow(1+opts.Gamma, float64(p))
			ins, err := idx.buildInstance(radius, innerWorkers)
			if err != nil {
				errs[p] = fmt.Errorf("core: instance %d (R=%v): %w", p, radius, err)
				return
			}
			idx.Instances[p] = ins
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// maxLadderRungs caps the resolution ladder. Build rejects configurations
// beyond it and the snapshot decoder rejects counts beyond it, from the
// same formula, so no writable index is unloadable.
const maxLadderRungs = 4096

// ladderRungs is the §4.4 ladder length t = ⌊log_{1+γ}(τmax/τmin)⌋ + 1.
// Both Build and the snapshot decoder derive the expected instance count
// from it.
func ladderRungs(gamma, tauMin, tauMax float64) int {
	return int(math.Floor(math.Log(tauMax/tauMin)/math.Log(1+gamma))) + 1
}

// EstimateTauRange exposes the §4.4 τ-range derivation Build applies when
// Options leaves TauMin/TauMax zero. The sharded engine needs the estimate
// up front: every shard must be built over the SAME ladder, so the range is
// derived once from the full site set and passed to each shard explicitly —
// which also makes a sharded build ladder-identical to a single-shard build
// of the same dataset.
func EstimateTauRange(inst *tops.Instance) (float64, float64) {
	return estimateTauRange(inst)
}

// estimateTauRange derives [τmin, τmax) per §4.4 as the min and max
// round-trip distance between candidate sites, estimated from a sample of
// sites (the exact values need quadratic work; the sampled bounds only
// shift which ladder rung serves which τ, not correctness, because queries
// clamp to the ladder).
func estimateTauRange(inst *tops.Instance) (float64, float64) {
	g := inst.G
	scratch := roadnet.NewScratch(g)
	sampleEvery := len(inst.Sites)/64 + 1
	tmin := math.Inf(1)
	tmax := 0.0
	for i := 0; i < len(inst.Sites); i += sampleEvery {
		src := inst.Sites[i]
		// Nearest other site: grow the search until one is found.
		radius := 0.25
		found := false
		for !found && radius < 1e6 {
			res := roadnet.BoundedRoundTripsFrom(g, scratch, src, radius)
			for v, rt := range res {
				if v != src && instIsSite(inst, v) && rt < tmin {
					tmin = rt
					found = true
				}
			}
			radius *= 2
		}
		// Farthest site round trip (full searches, sampled sparsely).
		if i%(sampleEvery*4) == 0 {
			rts := roadnet.RoundTripsFrom(g, src)
			for _, s := range inst.Sites {
				if rt := rts[s]; !math.IsInf(rt, 1) && rt > tmax {
					tmax = rt
				}
			}
		}
	}
	if math.IsInf(tmin, 1) || tmin <= 0 {
		tmin = 0.1
	}
	if tmax <= tmin {
		tmax = tmin * 64
	}
	return tmin, tmax
}

func instIsSite(inst *tops.Instance, v roadnet.NodeID) bool {
	// Sites are sorted ascending (generator contract); binary search.
	lo, hi := 0, len(inst.Sites)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case inst.Sites[mid] == v:
			return true
		case inst.Sites[mid] < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// buildInstance clusters the network at the given radius and derives all
// §4.3 cluster information, fanning its parallel phases over the given
// share of the build's worker budget.
func (idx *Index) buildInstance(radius float64, workers int) (*Instance, error) {
	start := time.Now()
	g := idx.inst.G
	gopts := idx.opts.GDSP
	gopts.Radius = radius
	gopts.Workers = workers
	raw, err := greedyGDSP(g, gopts)
	if err != nil {
		return nil, err
	}
	ins := &Instance{
		Radius:       radius,
		Clusters:     make([]Cluster, len(raw)),
		NodeCluster:  make([]ClusterID, g.NumNodes()),
		nodeCenterDr: make([]float64, g.NumNodes()),
		CC:           make([][]ClusterID, idx.trajs.Len()),
	}
	for v := range ins.NodeCluster {
		ins.NodeCluster[v] = InvalidCluster
	}
	for ci, rc := range raw {
		cl := Cluster{Center: rc.center, Members: rc.members, MemberDr: rc.dist}
		for i, v := range rc.members {
			ins.NodeCluster[v] = ClusterID(ci)
			ins.nodeCenterDr[v] = rc.dist[i]
		}
		ins.Clusters[ci] = cl
	}
	// Representatives: candidate site closest to the center (§4.2).
	for ci := range ins.Clusters {
		idx.chooseRepresentative(ins, ClusterID(ci))
	}
	// Trajectory lists and cluster sequences.
	idx.trajs.ForEach(func(tid trajectory.ID, tr *trajectory.Trajectory) {
		if !idx.alive[tid] {
			return
		}
		registerTrajectory(ins, tid, tr)
	})
	// Neighbor lists: centers within round-trip 4R(1+γ).
	idx.buildNeighborLists(ins, workers)
	ins.BuildTime = time.Since(start)
	return ins, nil
}

// chooseRepresentative (re)selects the representative of cluster ci as the
// candidate site with minimal round-trip distance to the center.
func (idx *Index) chooseRepresentative(ins *Instance, ci ClusterID) {
	cl := &ins.Clusters[ci]
	cl.Rep = roadnet.InvalidNode
	cl.RepDr = math.Inf(1)
	for i, v := range cl.Members {
		if idx.isSite[v] && cl.MemberDr[i] < cl.RepDr {
			cl.Rep = v
			cl.RepDr = cl.MemberDr[i]
		}
	}
}

// registerTrajectory adds a trajectory to the TL lists of the clusters it
// passes through and records its cluster sequence CC. The trajectory's
// distance to a cluster center is the minimum round-trip distance over its
// nodes inside the cluster.
func registerTrajectory(ins *Instance, tid trajectory.ID, tr *trajectory.Trajectory) {
	// Min distance per cluster visited.
	best := make(map[ClusterID]float64, 8)
	var seq []ClusterID
	var last ClusterID = InvalidCluster
	for _, v := range tr.Nodes {
		c := ins.NodeCluster[v]
		if c != last {
			seq = append(seq, c)
			last = c
		}
		if d := ins.nodeCenterDr[v]; d < bestOr(best, c) {
			best[c] = d
		}
	}
	// Dedup seq for CC (a trajectory can re-enter a cluster).
	dedup := seq[:0]
	seen := make(map[ClusterID]bool, len(seq))
	for _, c := range seq {
		if !seen[c] {
			seen[c] = true
			dedup = append(dedup, c)
		}
	}
	for int(tid) >= len(ins.CC) {
		ins.CC = append(ins.CC, nil)
	}
	ins.CC[tid] = append([]ClusterID(nil), dedup...)
	for _, c := range dedup {
		ins.Clusters[c].TL = append(ins.Clusters[c].TL, TrajEntry{Traj: tid, Dr: best[c]})
	}
}

func bestOr(m map[ClusterID]float64, c ClusterID) float64 {
	if d, ok := m[c]; ok {
		return d
	}
	return math.Inf(1)
}

// buildNeighborLists computes CL(g) for every cluster: clusters whose
// centers are within round-trip distance 4·R·(1+γ) (§4.3; the bound is what
// makes T̂C computable from neighbors only, §5.1). Each cluster's bounded
// search is independent and writes only its own CL, so the clusters shard
// across the build workers; the (distance, id) sort keeps every list
// deterministic regardless of map iteration or worker interleaving.
func (idx *Index) buildNeighborLists(ins *Instance, workers int) {
	g := idx.inst.G
	reach := 4 * ins.Radius * (1 + idx.opts.Gamma)
	// center node -> cluster id for O(1) membership tests.
	centerOf := make(map[roadnet.NodeID]ClusterID, len(ins.Clusters))
	for ci := range ins.Clusters {
		centerOf[ins.Clusters[ci].Center] = ClusterID(ci)
	}
	parallelSweep(g, len(ins.Clusters), workers, func(scratch *roadnet.DijkstraScratch, lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			src := ins.Clusters[ci].Center
			rts := roadnet.BoundedRoundTripsFrom(g, scratch, src, reach)
			var nbrs []NeighborEntry
			for v, rt := range rts {
				if cj, ok := centerOf[v]; ok && cj != ClusterID(ci) {
					nbrs = append(nbrs, NeighborEntry{Cluster: cj, Dr: rt})
				}
			}
			sort.Slice(nbrs, func(a, b int) bool {
				if nbrs[a].Dr != nbrs[b].Dr {
					return nbrs[a].Dr < nbrs[b].Dr
				}
				return nbrs[a].Cluster < nbrs[b].Cluster
			})
			ins.Clusters[ci].CL = nbrs
		}
	})
}

// InstanceFor returns the ladder position p serving coverage threshold τ
// (§5: p = ⌊log_{1+γ}(τ/τmin)⌋, clamped to the ladder).
func (idx *Index) InstanceFor(tau float64) int {
	return InstanceForTau(idx.opts.TauMin, idx.opts.Gamma, len(idx.Instances), tau)
}

// InstanceForTau is the pure ladder-position rule behind InstanceFor,
// exported so a remote tier (the shard router) holding only the ladder
// parameters (τmin, γ, rung count) selects the same instance — the same
// float ops, so the choice is bit-identical to the index's own.
func InstanceForTau(tauMin, gamma float64, rungs int, tau float64) int {
	if tau <= tauMin {
		return 0
	}
	p := int(math.Floor(math.Log(tau/tauMin) / math.Log(1+gamma)))
	if p < 0 {
		p = 0
	}
	if p >= rungs {
		p = rungs - 1
	}
	return p
}

// TauRange returns the [τmin, τmax) range the ladder was built for.
func (idx *Index) TauRange() (float64, float64) { return idx.opts.TauMin, idx.opts.TauMax }

// Gamma returns the resolution parameter γ.
func (idx *Index) Gamma() float64 { return idx.opts.Gamma }

// TopsInstance returns the underlying problem instance.
func (idx *Index) TopsInstance() *tops.Instance { return idx.inst }

// WalLSN returns the last write-ahead-log sequence number applied to this
// index; 0 when the index is not WAL-served. Snapshots embed it, so a
// loaded index reports where log replay must resume.
func (idx *Index) WalLSN() uint64 { return idx.walLSN }

// SetWalLSN stamps the index with the LSN of the mutation just applied.
// The serving layer calls it under its write lock, right after the logged
// mutation; it is not safe to call concurrently with queries or WriteTo.
func (idx *Index) SetWalLSN(lsn uint64) { idx.walLSN = lsn }

// NumAlive returns the number of live (non-deleted) trajectories.
func (idx *Index) NumAlive() int {
	n := 0
	for _, a := range idx.alive {
		if a {
			n++
		}
	}
	return n
}

// MemoryBytes estimates the resident size of all index instances: cluster
// membership, trajectory lists, neighbor lists and the dense node arrays.
// This drives the Table 7 / Table 9 space comparisons.
func (idx *Index) MemoryBytes() int64 {
	var total int64
	for _, ins := range idx.Instances {
		total += int64(len(ins.NodeCluster)) * 4
		total += int64(len(ins.nodeCenterDr)) * 8
		for ci := range ins.Clusters {
			cl := &ins.Clusters[ci]
			total += int64(len(cl.Members))*12 + int64(len(cl.TL))*12 + int64(len(cl.CL))*12
		}
		for _, cc := range ins.CC {
			total += int64(len(cc)) * 4
		}
	}
	return total
}

// Stats summarizes one instance for Table 11-style reporting.
type InstanceStats struct {
	Radius       float64
	NumClusters  int
	AvgMembers   float64 // mean |Λ| (cluster size)
	AvgTL        float64 // mean trajectory-list length
	AvgCL        float64 // mean neighbor count
	BuildSeconds float64
}

// Stats computes summary statistics of instance p.
func (idx *Index) Stats(p int) InstanceStats {
	ins := idx.Instances[p]
	st := InstanceStats{
		Radius:       ins.Radius,
		NumClusters:  len(ins.Clusters),
		BuildSeconds: ins.BuildTime.Seconds(),
	}
	var members, tl, cl int
	for ci := range ins.Clusters {
		members += len(ins.Clusters[ci].Members)
		tl += len(ins.Clusters[ci].TL)
		cl += len(ins.Clusters[ci].CL)
	}
	if n := float64(len(ins.Clusters)); n > 0 {
		st.AvgMembers = float64(members) / n
		st.AvgTL = float64(tl) / n
		st.AvgCL = float64(cl) / n
	}
	return st
}
