package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// This file splits the §5.1 RepCover computation into two halves with very
// different lifetimes:
//
//   - CoverPlan: which clusters field a representative and, per
//     representative, the ordered scan list (own cluster first, then CL
//     neighbors with their center distances) plus dr(c_i, r_i). This depends
//     only on the clustering and the site set, so it is computed once per
//     instance and reused across every preference function until a site
//     mutation moves a representative.
//   - the fill: evaluating Eq. 9 over the scan lists for a concrete ψ. The
//     fill shards representatives across workers, each with a dense
//     epoch-stamped scratch array instead of the former per-representative
//     map, and the results are memoized per (instance, ψ fingerprint) in a
//     cache that every §6 mutation invalidates.
//
// The Index alone does not serialize queries against mutations; the
// concurrency protocol (readers query, writers mutate+invalidate) is owned
// by internal/engine.

// CoverPlan is the reusable positional half of the covering-structure
// computation for one instance. The per-representative scan order (own
// cluster first, then CL neighbors with their center distances) is read
// straight off the immutable CL lists at fill time — CL is built once per
// instance and no §6 mutation touches it, so the plan only needs the
// representative list and its dr snapshot.
type CoverPlan struct {
	// Reps maps dense representative index -> cluster id.
	Reps []ClusterID
	// repDr[ri] is dr(c_i, r_i) for Reps[ri], snapshotted at plan time.
	repDr []float64
}

// coverKey identifies one memoized cover: the ladder instance, a
// fingerprint of the preference function, and — for masked fills driven by
// the sharded engine — a fingerprint of the cluster mask. Full covers use
// mask 0; MaskFingerprint never returns 0.
type coverKey struct {
	p    int
	fp   uint64
	mask uint64
}

// coverEntry is a singleflight slot: the first goroutine to claim the key
// fills it, concurrent claimants block on the Once and share the result —
// including a fill error (a canceled context), in which case the entry is
// evicted so the next caller retries instead of inheriting the failure.
type coverEntry struct {
	once sync.Once
	cs   *tops.CoverSets
	reps []ClusterID
	err  error
}

// CoverCacheStats reports cover-cache effectiveness counters.
type CoverCacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// PrefFingerprint derives a cache key from a preference function (also used
// by internal/engine to group batch queries that can share one cover). Tau and
// Name are hashed directly; a non-nil F is additionally sampled at 64 points
// over its effective span so that functions sharing a name but differing in
// shape (e.g. different ExpDecay λ) do not collide.
//
// The sampling is only sound at the sample points: two custom functions that
// share Name and Tau and agree on every multiple of span/64 but differ in
// between would alias to one cache entry. Give custom preference functions
// distinct Names (as every constructor in tops does) to rule that out.
//
// The hash is FNV-1a computed inline (same byte stream, and therefore the
// same values, as the former hash/fnv implementation) so that the cached
// query path pays no hasher allocation per lookup.
func PrefFingerprint(pref tops.Preference) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(pref.Name); i++ {
		h = fnvByte(h, pref.Name[i])
	}
	h = fnvU64(h, math.Float64bits(pref.Tau))
	if pref.F != nil {
		span := pref.Tau
		if math.IsInf(span, 1) || span <= 0 {
			span = 1e4
		}
		const samples = 64
		for i := 0; i <= samples; i++ {
			h = fnvU64(h, math.Float64bits(pref.F(span*float64(i)/samples)))
		}
	}
	return h
}

// Inline FNV-1a: the cover-cache key computations sit on the cached query
// hot path, where a hash.Hash64 costs an allocation per call.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// fnvU64 absorbs v little-endian byte by byte, matching hash/fnv over the
// same 8-byte encoding.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = fnvByte(h, byte(v>>i))
	}
	return h
}

// coverPlan returns instance p's plan, building it on first use.
func (idx *Index) coverPlan(p int) *CoverPlan {
	idx.coverMu.Lock()
	if idx.coverPlans == nil {
		idx.coverPlans = make([]*CoverPlan, len(idx.Instances))
	}
	if pl := idx.coverPlans[p]; pl != nil {
		idx.coverMu.Unlock()
		return pl
	}
	idx.coverMu.Unlock()

	pl := idx.buildCoverPlan(p)

	idx.coverMu.Lock()
	idx.coverPlans[p] = pl
	idx.coverMu.Unlock()
	return pl
}

func (idx *Index) buildCoverPlan(p int) *CoverPlan {
	ins := idx.Instances[p]
	pl := &CoverPlan{}
	for ci := range ins.Clusters {
		appendPlanEntry(pl, ins, ClusterID(ci))
	}
	return pl
}

// appendPlanEntry adds cluster ci's representative (if any) to the plan.
// Shared by the full plan builder and the masked plans the sharding layer
// requests.
func appendPlanEntry(pl *CoverPlan, ins *Instance, ci ClusterID) {
	cl := &ins.Clusters[ci]
	if cl.Rep == roadnet.InvalidNode {
		return
	}
	pl.Reps = append(pl.Reps, ci)
	pl.repDr = append(pl.repDr, cl.RepDr)
}

// fillScratch is one worker's dense scratch state: dist[t] is valid iff
// gen[t] == cur, so advancing cur resets the whole array in O(1) per
// representative instead of clearing a map. It also carries the worker's
// result arena: the per-representative TC lists accumulate into two flat
// parallel slices (struct-of-arrays, matching CoverSets' final layout) with
// (start, end) segments recorded per representative, so a whole fill costs
// the worker zero allocations once the arena has grown to steady state.
//
// Scratches recycle through a package pool. The arena is borrowed by the
// CoverSets staging until Finalize copies it into the flat CSR arrays, so
// fillCover only returns scratches to the pool after finalizing.
type fillScratch struct {
	dist    []float64
	gen     []uint32
	cur     uint32
	touched []trajectory.ID

	tcTraj  []int32
	tcScore []float64
	segs    []fillSeg
}

// fillSeg records that representative ri's TC list is the arena slice
// [start, end).
type fillSeg struct {
	ri         int32
	start, end int32
}

var fillScratchPool = sync.Pool{New: func() any {
	return &fillScratch{touched: make([]trajectory.ID, 0, 256)}
}}

// prepare sizes the dense arrays for an m-trajectory universe and empties
// the arena. The generation counter survives reuse: a larger universe
// forces fresh (zeroed) arrays, a smaller one just narrows the index range.
func (s *fillScratch) prepare(m int) {
	if len(s.dist) < m {
		s.dist = make([]float64, m)
		s.gen = make([]uint32, m)
		s.cur = 0
	}
	s.touched = s.touched[:0]
	s.tcTraj = s.tcTraj[:0]
	s.tcScore = s.tcScore[:0]
	s.segs = s.segs[:0]
}

func (s *fillScratch) reset() {
	s.cur++
	if s.cur == 0 { // generation counter wrapped: hard-clear once per 2^32
		for i := range s.gen {
			s.gen[i] = 0
		}
		s.cur = 1
	}
	s.touched = s.touched[:0]
}

// fillCover evaluates Eq. 9 for every representative of the plan under the
// given preference, sharding representatives across NumCPU workers. Workers
// write disjoint TC slots (tops.CoverSets.SetTCArrays over arena segments);
// the trajectory-side SC lists are derived by the single Finalize pass
// afterwards.
//
// The per-representative sweep is the expensive part of a query, so it is
// also where request deadlines bite: every worker checks ctx between
// representatives and the whole fill aborts with the context error once any
// worker observes cancellation. A canceled fill is never returned (nor
// memoized), so partially filled covers cannot leak into answers.
func (idx *Index) fillCover(ctx context.Context, p int, pl *CoverPlan, pref tops.Preference) (*tops.CoverSets, error) {
	ins := idx.Instances[p]
	m := idx.trajs.Len()
	cs := tops.NewCoverSets(len(pl.Reps), m)
	nReps := len(pl.Reps)
	if nReps == 0 {
		return cs, nil
	}
	workers := runtime.NumCPU()
	if workers > nReps {
		workers = nReps
	}
	tau := pref.Tau
	var next atomic.Int64
	var canceled atomic.Bool
	var wg sync.WaitGroup
	scratches := make([]*fillScratch, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := fillScratchPool.Get().(*fillScratch)
			sc.prepare(m)
			scratches[w] = sc
			for {
				ri := int(next.Add(1)) - 1
				if ri >= nReps {
					break
				}
				if canceled.Load() {
					break
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					break
				}
				sc.reset()
				repDr := pl.repDr[ri]
				cl := &ins.Clusters[pl.Reps[ri]]
				// Scan order matches the former materialized scan lists —
				// own cluster (centerDr 0) first, then CL neighbors — with
				// the identical float association, so fills are bit-stable
				// across this representation change.
				sweep := func(tl []TrajEntry, base float64) {
					for _, te := range tl {
						if !idx.alive[te.Traj] {
							continue
						}
						dHat := te.Dr + base
						if dHat > tau {
							continue
						}
						if sc.gen[te.Traj] != sc.cur {
							sc.gen[te.Traj] = sc.cur
							sc.dist[te.Traj] = dHat
							sc.touched = append(sc.touched, te.Traj)
						} else if dHat < sc.dist[te.Traj] {
							sc.dist[te.Traj] = dHat
						}
					}
				}
				sweep(cl.TL, 0+repDr)
				for _, nb := range cl.CL {
					sweep(ins.Clusters[nb.Cluster].TL, nb.Dr+repDr)
				}
				start := int32(len(sc.tcTraj))
				for _, t := range sc.touched {
					if score := pref.Score(sc.dist[t]); score != 0 || pref.F == nil {
						sc.tcTraj = append(sc.tcTraj, int32(t))
						sc.tcScore = append(sc.tcScore, score)
					}
				}
				sc.segs = append(sc.segs, fillSeg{ri: int32(ri), start: start, end: int32(len(sc.tcTraj))})
			}
			// Install the arena segments. Segments index the arena instead
			// of aliasing it mid-build, because append may have moved it;
			// now that this worker is done the backing arrays are stable.
			// Representatives are claimed uniquely, so the installs of
			// different workers touch disjoint sites.
			for _, seg := range sc.segs {
				cs.SetTCArrays(seg.ri, sc.tcTraj[seg.start:seg.end], sc.tcScore[seg.start:seg.end])
			}
		}(w)
	}
	wg.Wait()
	if canceled.Load() {
		for _, sc := range scratches {
			if sc != nil {
				fillScratchPool.Put(sc)
			}
		}
		return nil, ctx.Err()
	}
	// Finalize copies the borrowed arena segments into the CSR arrays, so
	// the scratches only recycle afterwards.
	cs.Finalize()
	for _, sc := range scratches {
		if sc != nil {
			fillScratchPool.Put(sc)
		}
	}
	return cs, nil
}

// CoverFor returns the §5.1 covering structure of instance p under pref,
// memoized per (instance, preference fingerprint). The third return reports
// whether the call was served from cache. The returned CoverSets is shared
// between callers and must be treated as read-only (the greedy algorithms
// already are).
//
// Every §6 mutation invalidates the cache, so a cached cover is always
// consistent with the index state at call time — provided queries and
// mutations are serialized by the caller (see internal/engine).
func (idx *Index) CoverFor(p int, pref tops.Preference) (*tops.CoverSets, []ClusterID, bool) {
	cs, reps, hit, _ := idx.CoverForCtx(context.Background(), p, pref)
	return cs, reps, hit
}

// CoverForCtx is CoverFor under a request context. Concurrent callers of
// the same key singleflight onto one fill. A canceled fill is never
// memoized: the poisoned entry is dropped, the filler returns its own
// context error, and waiters whose contexts are still live retry — one
// aggressive-deadline client therefore cannot fail well-behaved concurrent
// requests for the same cover.
func (idx *Index) CoverForCtx(ctx context.Context, p int, pref tops.Preference) (*tops.CoverSets, []ClusterID, bool, error) {
	key := coverKey{p: p, fp: PrefFingerprint(pref)}
	for {
		idx.coverMu.Lock()
		if idx.coverCache == nil {
			idx.coverCache = make(map[coverKey]*coverEntry)
		}
		e, ok := idx.coverCache[key]
		if !ok {
			e = &coverEntry{}
			idx.coverCache[key] = e
		}
		idx.coverMu.Unlock()

		hit := true
		e.once.Do(func() {
			hit = false
			e.cs, e.reps, e.err = idx.RepCoverCtx(ctx, p, pref)
		})
		if e.err == nil {
			if hit {
				idx.coverHits.Add(1)
			} else {
				idx.coverMisses.Add(1)
			}
			return e.cs, e.reps, hit, nil
		}
		idx.coverMu.Lock()
		if idx.coverCache[key] == e {
			delete(idx.coverCache, key)
		}
		idx.coverMu.Unlock()
		// The fill aborted under the FILLER's context. Give up only if our
		// own context is also done; otherwise loop — the entry is evicted,
		// so the retry claims (or joins) a fresh fill. Each iteration
		// consumes one completed fill attempt, so this cannot spin.
		if err := ctx.Err(); err != nil {
			return nil, nil, false, err
		}
	}
}

// Masked covers: the sharding layer (internal/shard) partitions cluster
// ownership across per-shard indexes and asks each shard to fill covering
// structures only for the clusters it owns. The fill machinery is the full
// RepCover pipeline over a filtered plan; memoization reuses the cover
// cache under a (instance, ψ fingerprint, mask fingerprint) key.
//
// At any moment a shard serves exactly one mask per instance (its current
// ownership), so when a new mask shows up for an instance the entries under
// the instance's previous mask are purged — this is the cross-shard
// invalidation hook: a site mutation on one shard changes ownership masks
// elsewhere, and the stale masked covers on those shards evaporate on first
// contact instead of accumulating.

// RepInfo describes one cluster representative of an instance: the cluster,
// the representative's node, and dr(c_i, r_i). The sharding layer reduces
// RepInfos across shards to find each cluster's globally closest site.
type RepInfo struct {
	Cluster ClusterID
	Node    roadnet.NodeID
	Dr      float64
}

// RepInfos lists the representatives of instance p in ascending cluster
// order — the same order the cover plan (and therefore the dense
// representative index space of a query) uses.
func (idx *Index) RepInfos(p int) []RepInfo {
	ins := idx.Instances[p]
	out := make([]RepInfo, 0, len(ins.Clusters))
	for ci := range ins.Clusters {
		cl := &ins.Clusters[ci]
		if cl.Rep == roadnet.InvalidNode {
			continue
		}
		out = append(out, RepInfo{Cluster: ClusterID(ci), Node: cl.Rep, Dr: cl.RepDr})
	}
	return out
}

// ClusterOf returns the cluster of node v at instance p, or InvalidCluster
// when v is outside the graph. Site mutations change representatives only
// inside this cluster, which is what lets the sharding layer maintain its
// cluster-ownership tables incrementally instead of re-reducing every
// cluster after each update.
func (idx *Index) ClusterOf(p int, v roadnet.NodeID) ClusterID {
	ins := idx.Instances[p]
	if v < 0 || int(v) >= len(ins.NodeCluster) {
		return InvalidCluster
	}
	return ins.NodeCluster[v]
}

// RepOfCluster returns cluster ci's representative at instance p, reporting
// false when the cluster fields none (or ci is out of range).
func (idx *Index) RepOfCluster(p int, ci ClusterID) (RepInfo, bool) {
	ins := idx.Instances[p]
	if ci < 0 || int(ci) >= len(ins.Clusters) {
		return RepInfo{}, false
	}
	cl := &ins.Clusters[ci]
	if cl.Rep == roadnet.InvalidNode {
		return RepInfo{}, false
	}
	return RepInfo{Cluster: ci, Node: cl.Rep, Dr: cl.RepDr}, true
}

// MaskFingerprint hashes a sorted cluster-id mask into a cover-cache key
// component. It never returns 0 (0 is the full, unmasked cover). Like
// PrefFingerprint it is inline FNV-1a over the same byte stream the former
// hash/fnv version consumed: the sharded engine computes it per lookup.
func MaskFingerprint(keep []ClusterID) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range keep {
		h = fnvByte(h, byte(c))
		h = fnvByte(h, byte(c>>8))
		h = fnvByte(h, byte(c>>16))
		h = fnvByte(h, byte(c>>24))
	}
	return h | 1
}

// maskedPlan assembles a cover plan for exactly the clusters in keep
// (sorted ascending), straight from the instance — deliberately NOT via the
// cached full plan, whose post-mutation rebuild costs O(all
// representatives) when the mask needs only its own slice. Clusters in keep
// that currently field no representative are silently absent from the
// result, so a slightly stale mask degrades to a smaller cover instead of
// failing.
func (idx *Index) maskedPlan(p int, keep []ClusterID) *CoverPlan {
	ins := idx.Instances[p]
	sub := &CoverPlan{}
	for _, ci := range keep {
		if ci < 0 || int(ci) >= len(ins.Clusters) {
			continue
		}
		appendPlanEntry(sub, ins, ci)
	}
	return sub
}

// RepCoverMaskedCtx is RepCoverCtx restricted to the representatives of the
// clusters in keep (sorted ascending). The returned dense representative
// space is the filtered plan: index i maps to the i-th returned cluster.
func (idx *Index) RepCoverMaskedCtx(ctx context.Context, p int, pref tops.Preference, keep []ClusterID) (*tops.CoverSets, []ClusterID, error) {
	pl := idx.maskedPlan(p, keep)
	cs, err := idx.fillCover(ctx, p, pl, pref)
	if err != nil {
		return nil, nil, err
	}
	return cs, pl.Reps, nil
}

// CoverForMaskedCtx is the memoized form of RepCoverMaskedCtx. Presenting a
// new mask for an instance purges the instance's entries under its previous
// mask (see the package comment above on cross-shard invalidation).
func (idx *Index) CoverForMaskedCtx(ctx context.Context, p int, pref tops.Preference, keep []ClusterID) (*tops.CoverSets, []ClusterID, bool, error) {
	mask := MaskFingerprint(keep)
	key := coverKey{p: p, fp: PrefFingerprint(pref), mask: mask}
	for {
		idx.coverMu.Lock()
		if idx.coverCache == nil {
			idx.coverCache = make(map[coverKey]*coverEntry)
		}
		if idx.coverMasks == nil {
			idx.coverMasks = make(map[int]uint64)
		}
		if cur, ok := idx.coverMasks[p]; ok && cur != mask {
			for k := range idx.coverCache {
				if k.p == p && k.mask == cur {
					delete(idx.coverCache, k)
				}
			}
		}
		idx.coverMasks[p] = mask
		e, ok := idx.coverCache[key]
		if !ok {
			e = &coverEntry{}
			idx.coverCache[key] = e
		}
		idx.coverMu.Unlock()

		hit := true
		e.once.Do(func() {
			hit = false
			e.cs, e.reps, e.err = idx.RepCoverMaskedCtx(ctx, p, pref, keep)
		})
		if e.err == nil {
			if hit {
				idx.coverHits.Add(1)
			} else {
				idx.coverMisses.Add(1)
			}
			return e.cs, e.reps, hit, nil
		}
		idx.coverMu.Lock()
		if idx.coverCache[key] == e {
			delete(idx.coverCache, key)
		}
		idx.coverMu.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, nil, false, err
		}
	}
}

// invalidateCovers drops every memoized cover; sitesChanged additionally
// drops the per-instance plans (a site mutation can move or remove a
// representative). Trajectory mutations keep the plans: they only change TL
// contents, which live in the fill, not the plan.
//
// Invalidation is deliberately whole-index: a trajectory registers in every
// ladder instance and site renumbering is global, so there is no cheaper
// sound granularity.
func (idx *Index) invalidateCovers(sitesChanged bool) {
	idx.coverMu.Lock()
	defer idx.coverMu.Unlock()
	if len(idx.coverCache) > 0 {
		idx.coverCache = make(map[coverKey]*coverEntry, len(idx.coverCache))
	}
	if sitesChanged {
		for i := range idx.coverPlans {
			idx.coverPlans[i] = nil
		}
	}
}

// CoverCacheStats returns cumulative cover-cache counters.
func (idx *Index) CoverCacheStats() CoverCacheStats {
	idx.coverMu.Lock()
	entries := len(idx.coverCache)
	idx.coverMu.Unlock()
	return CoverCacheStats{
		Hits:    idx.coverHits.Load(),
		Misses:  idx.coverMisses.Load(),
		Entries: entries,
	}
}
