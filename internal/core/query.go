package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// QueryOptions carries the online TOPS query parameters.
type QueryOptions struct {
	// K is the number of sites to report.
	K int
	// Pref is the preference function ψ with its threshold τ.
	Pref tops.Preference
	// UseFM answers the query with FM-NETCLUS (binary ψ only).
	UseFM bool
	// F is the FM sketch count (default 30).
	F int
	// Seed derives FM hash families.
	Seed uint64
	// Greedy forwards extra options (existing services, lazy mode,
	// TOPS4 target coverage) to the underlying IncGreedy. K and
	// TargetCoverage inside are overridden by this struct's fields.
	Greedy tops.GreedyOptions
}

// QueryResult is the NETCLUS answer to a TOPS query.
type QueryResult struct {
	// Sites lists the selected sites as road-network nodes.
	Sites []roadnet.NodeID
	// SiteIDs lists the same sites as dense ids of the TOPS instance,
	// index-aligned with Sites: SiteIDs[i] identifies Sites[i], with
	// tops.InvalidSiteID marking a node whose site registration vanished
	// between cover construction and answer assembly (possible only when
	// the caller interleaves queries with site deletions).
	SiteIDs []tops.SiteID
	// EstimatedUtility is U(Q) under the clustered-space distance
	// estimates d̂r. Because d̂r >= dr (Eq. 9 over-estimates), this lower-
	// bounds the true utility for non-increasing ψ.
	EstimatedUtility float64
	// EstimatedCovered counts trajectories covered under d̂r.
	EstimatedCovered int
	// InstanceUsed is the ladder position p the query ran on.
	InstanceUsed int
	// NumRepresentatives is |Ŝ|, the candidate pool size (η_p bound).
	NumRepresentatives int
	// CoverHit reports whether the covering structure came from the
	// memoized cover cache (false on a fresh fill, on uncached engines,
	// and on paths that bypass the cache). Set by the engine layer; the
	// serving tier's slow-query log and latency histograms key on it.
	CoverHit bool

	// scratch, when non-nil, ties this result to the pooled QueryScratch
	// whose buffers back Sites/SiteIDs (the result struct itself lives
	// inside the scratch). Release returns it; a nil scratch makes Release
	// a no-op, so results from unpooled paths are always safe to Release.
	scratch *QueryScratch
}

// QueryScratch bundles every buffer the greedy phase of a query needs —
// the tops greedy scratch plus a reusable QueryResult with its Sites and
// SiteIDs slices — so that a cached query (memoized cover, pooled scratch)
// runs allocation-free. Scratches recycle through a package-level pool:
// QueryOnCoverPooledCtx draws one and attaches it to the result it returns;
// QueryResult.Release puts it back.
type QueryScratch struct {
	greedy tops.GreedyScratch
	res    QueryResult
}

var queryScratchPool = sync.Pool{New: func() any { return new(QueryScratch) }}

// Release recycles the result's backing scratch into the query-scratch
// pool. It is a no-op for results that did not come from the pooled path.
// After Release the result and its slices must not be touched — not even
// by a second Release: the result struct itself is pooled memory, so any
// later access races with the next query that draws the scratch. Results
// that are never released are simply collected by the GC — Release is an
// optimization handle, not an obligation.
func (r *QueryResult) Release() {
	if qs := r.scratch; qs != nil {
		r.scratch = nil
		queryScratchPool.Put(qs)
	}
}

// AcquireQueryResult returns an empty pooled QueryResult with its buffers
// reset, for layers that assemble answers themselves (internal/shard's
// gather). Pair with Release like any pooled result.
func AcquireQueryResult() *QueryResult {
	qs := queryScratchPool.Get().(*QueryScratch)
	out := &qs.res
	*out = QueryResult{Sites: out.Sites[:0], SiteIDs: out.SiteIDs[:0], scratch: qs}
	return out
}

// RepCover builds the TOPS-Cluster covering structure over the cluster
// representatives of instance p (§5.1): for every representative r_i the
// estimated covered trajectories T̂C(r_i) with scores ψ(d̂r), where
//
//	d̂r(T_j, r_i) = dr(T_j, c_j) + dr(c_j, c_i) + dr(c_i, r_i)   (Eq. 9)
//
// and only the cluster itself (c_j = c_i, middle term 0) and its CL
// neighbors need scanning. A trajectory reachable via several neighbor
// clusters keeps its smallest estimate.
//
// The returned slice maps dense representative index -> cluster id.
//
// The computation is split in two (cover.go): a CoverPlan holding the
// representative list and per-representative scan order, built once per
// instance and reused across preference functions, and a parallel fill that
// shards representatives across workers with dense epoch-stamped scratch
// arrays. RepCover always runs the fill; CoverFor memoizes the result.
func (idx *Index) RepCover(p int, pref tops.Preference) (*tops.CoverSets, []ClusterID) {
	cs, reps, _ := idx.RepCoverCtx(context.Background(), p, pref)
	return cs, reps
}

// RepCoverCtx is RepCover under a request context: the representative sweep
// checks ctx between representatives and aborts with its error on
// cancellation, which is how per-request deadlines reach the O(η_p · TL)
// part of a query.
func (idx *Index) RepCoverCtx(ctx context.Context, p int, pref tops.Preference) (*tops.CoverSets, []ClusterID, error) {
	pl := idx.coverPlan(p)
	cs, err := idx.fillCover(ctx, p, pl, pref)
	if err != nil {
		return nil, nil, err
	}
	return cs, pl.Reps, nil
}

// Query answers a TOPS query online (§5): select the ladder instance for τ,
// build the representative covering sets, and run INC-GREEDY (or the FM
// variant) over the representatives.
//
// Extreme thresholds follow §4.4: τ < τmin degrades gracefully to the
// finest instance (whose clusters approach single sites), and τ >= τmax
// means every site covers every trajectory, so any k representatives of the
// coarsest instance are returned.
func (idx *Index) Query(opts QueryOptions) (*QueryResult, error) {
	return idx.QueryCtx(context.Background(), opts)
}

// QueryCtx is Query under a request context: cancellation checkpoints sit
// before the cover sweep, inside it (every representative), and before the
// greedy phase, so a lapsed deadline aborts the query at the next
// checkpoint with the context's error.
func (idx *Index) QueryCtx(ctx context.Context, opts QueryOptions) (*QueryResult, error) {
	if err := opts.Pref.Validate(); err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: k = %d must be positive", opts.K)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := idx.InstanceFor(opts.Pref.Tau)
	cs, repClusters, err := idx.RepCoverCtx(ctx, p, opts.Pref)
	if err != nil {
		return nil, err
	}
	return idx.QueryOnCoverCtx(ctx, p, cs, repClusters, opts)
}

// QueryOnCover runs the greedy phase of a query over an already-built
// covering structure of instance p. It is the second half of Query, exposed
// so that callers managing cover reuse themselves (internal/engine's batch
// path, benchmarks) can time and share the two phases independently. cs is
// not mutated.
func (idx *Index) QueryOnCover(p int, cs *tops.CoverSets, repClusters []ClusterID, opts QueryOptions) (*QueryResult, error) {
	return idx.QueryOnCoverCtx(context.Background(), p, cs, repClusters, opts)
}

// QueryOnCoverCtx is QueryOnCover with a pre-greedy cancellation
// checkpoint. The greedy itself runs to completion once started — it is the
// cheap phase and produces no partial answers.
func (idx *Index) QueryOnCoverCtx(ctx context.Context, p int, cs *tops.CoverSets, repClusters []ClusterID, opts QueryOptions) (*QueryResult, error) {
	return idx.queryOnCover(ctx, p, cs, repClusters, opts, nil)
}

// QueryOnCoverPooledCtx is QueryOnCoverCtx served entirely from a pooled
// QueryScratch: with a memoized cover the whole greedy phase touches only
// preallocated memory, and the returned result must be Released when the
// caller is done with it (or abandoned to the GC). Answers are bit-identical
// to the unpooled path — the scratch changes where buffers live, not one
// float operation.
func (idx *Index) QueryOnCoverPooledCtx(ctx context.Context, p int, cs *tops.CoverSets, repClusters []ClusterID, opts QueryOptions) (*QueryResult, error) {
	qs := queryScratchPool.Get().(*QueryScratch)
	out, err := idx.queryOnCover(ctx, p, cs, repClusters, opts, qs)
	if err != nil {
		queryScratchPool.Put(qs)
		return nil, err
	}
	return out, nil
}

func (idx *Index) queryOnCover(ctx context.Context, p int, cs *tops.CoverSets, repClusters []ClusterID, opts QueryOptions, qs *QueryScratch) (*QueryResult, error) {
	if len(repClusters) == 0 {
		return nil, fmt.Errorf("core: instance %d has no cluster representatives (no candidate sites?)", p)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := opts.K
	if k > len(repClusters) {
		k = len(repClusters)
	}

	var res tops.Result
	var err error
	if opts.UseFM {
		res, err = tops.FMGreedy(cs, tops.FMGreedyOptions{K: k, F: opts.F, Seed: opts.Seed})
	} else {
		gopts := opts.Greedy
		gopts.K = k
		if gopts.TargetCoverage > 0 {
			gopts.K = len(repClusters)
		}
		var g *tops.GreedyScratch
		if qs != nil {
			g = &qs.greedy
		}
		res, err = tops.IncGreedyScratch(cs, gopts, g)
	}
	if err != nil {
		return nil, err
	}
	var out *QueryResult
	if qs != nil {
		out = &qs.res
		*out = QueryResult{Sites: out.Sites[:0], SiteIDs: out.SiteIDs[:0], scratch: qs}
	} else {
		out = &QueryResult{}
	}
	out.EstimatedUtility = res.Utility
	out.EstimatedCovered = res.Covered
	out.InstanceUsed = p
	out.NumRepresentatives = len(repClusters)
	ins := idx.Instances[p]
	for _, ri := range res.Selected {
		node := ins.Clusters[repClusters[ri]].Rep
		out.Sites = append(out.Sites, node)
		// Keep SiteIDs index-aligned with Sites: a representative whose
		// site registration disappeared maps to the sentinel instead of
		// being silently skipped.
		sid := tops.InvalidSiteID
		if id := idx.siteID[node]; id >= 0 {
			sid = tops.SiteID(id)
		}
		out.SiteIDs = append(out.SiteIDs, sid)
	}
	return out, nil
}

// EstimatedDetour exposes d̂r(T, r) for the representative of the cluster
// of node rep at instance p; used by tests and the quality analysis. It
// returns +Inf when the trajectory does not pass through the cluster or
// its neighborhood.
func (idx *Index) EstimatedDetour(p int, tid trajectory.ID, ci ClusterID) float64 {
	ins := idx.Instances[p]
	cl := &ins.Clusters[ci]
	if cl.Rep == roadnet.InvalidNode {
		return math.Inf(1)
	}
	best := math.Inf(1)
	check := func(tl []TrajEntry, centerDr float64) {
		// Association matches fillCover's `te.Dr + (centerDr + repDr)`
		// exactly, so the differential oracle can compare estimates
		// bit-for-bit instead of within a float tolerance.
		base := centerDr + cl.RepDr
		for _, te := range tl {
			if te.Traj == tid {
				if d := te.Dr + base; d < best {
					best = d
				}
			}
		}
	}
	check(cl.TL, 0)
	for _, nb := range cl.CL {
		check(ins.Clusters[nb.Cluster].TL, nb.Dr)
	}
	return best
}

// EvaluateExact measures the true utility of a NETCLUS answer against a
// full distance index — what the paper reports when comparing NETCLUS
// quality with INC-GREEDY. Deleted trajectories are excluded.
func (idx *Index) EvaluateExact(distIdx *tops.DistanceIndex, pref tops.Preference, sites []roadnet.NodeID) (float64, int) {
	var total float64
	covered := 0
	for tid := 0; tid < idx.inst.M() && tid < distIdx.NumTrajs(); tid++ {
		if tid < len(idx.alive) && !idx.alive[tid] {
			continue
		}
		best := 0.0
		for _, node := range sites {
			sid := idx.siteID[node]
			if sid < 0 {
				continue
			}
			if score := pref.Score(distIdx.Detour(trajectory.ID(tid), tops.SiteID(sid))); score > best {
				best = score
			}
		}
		total += best
		if best > 0 {
			covered++
		}
	}
	return total, covered
}
