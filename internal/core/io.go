package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// Index persistence. The offline phase (clustering every instance of the
// ladder) dominates total cost, so a deployment builds the index once and
// reloads it across process restarts. The serialized form contains the
// ladder and all cluster metadata but not the road network or trajectory
// store: those are serialized by their own packages, and ReadIndex
// re-attaches a loaded index to the instance it was built from, verifying
// shape compatibility.

const indexMagic uint32 = 0x4e434931 // "NCI1"

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the index.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	put := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }

	if err := put(indexMagic); err != nil {
		return cw.n, err
	}
	if err := put(idx.opts.Gamma); err != nil {
		return cw.n, err
	}
	if err := put(idx.opts.TauMin); err != nil {
		return cw.n, err
	}
	if err := put(idx.opts.TauMax); err != nil {
		return cw.n, err
	}
	if err := put(uint32(idx.inst.G.NumNodes())); err != nil {
		return cw.n, err
	}
	if err := put(uint32(idx.trajs.Len())); err != nil {
		return cw.n, err
	}
	// Site membership and liveness masks.
	for v := 0; v < idx.inst.G.NumNodes(); v++ {
		b := uint8(0)
		if idx.isSite[v] {
			b = 1
		}
		if err := put(b); err != nil {
			return cw.n, err
		}
	}
	for _, a := range idx.alive {
		b := uint8(0)
		if a {
			b = 1
		}
		if err := put(b); err != nil {
			return cw.n, err
		}
	}
	if err := put(uint32(len(idx.Instances))); err != nil {
		return cw.n, err
	}
	for _, ins := range idx.Instances {
		if err := put(ins.Radius); err != nil {
			return cw.n, err
		}
		if err := put(uint32(len(ins.Clusters))); err != nil {
			return cw.n, err
		}
		for ci := range ins.Clusters {
			cl := &ins.Clusters[ci]
			if err := put(int32(cl.Center)); err != nil {
				return cw.n, err
			}
			if err := put(int32(cl.Rep)); err != nil {
				return cw.n, err
			}
			repDr := cl.RepDr
			if math.IsInf(repDr, 1) {
				repDr = -1 // sentinel: +Inf is not round-trippable naively
			}
			if err := put(repDr); err != nil {
				return cw.n, err
			}
			if err := put(uint32(len(cl.Members))); err != nil {
				return cw.n, err
			}
			for i, v := range cl.Members {
				if err := put(int32(v)); err != nil {
					return cw.n, err
				}
				if err := put(cl.MemberDr[i]); err != nil {
					return cw.n, err
				}
			}
			if err := put(uint32(len(cl.TL))); err != nil {
				return cw.n, err
			}
			for _, te := range cl.TL {
				if err := put(int32(te.Traj)); err != nil {
					return cw.n, err
				}
				if err := put(te.Dr); err != nil {
					return cw.n, err
				}
			}
			if err := put(uint32(len(cl.CL))); err != nil {
				return cw.n, err
			}
			for _, nb := range cl.CL {
				if err := put(int32(nb.Cluster)); err != nil {
					return cw.n, err
				}
				if err := put(nb.Dr); err != nil {
					return cw.n, err
				}
			}
		}
		// CC lists.
		if err := put(uint32(len(ins.CC))); err != nil {
			return cw.n, err
		}
		for _, cc := range ins.CC {
			if err := put(uint32(len(cc))); err != nil {
				return cw.n, err
			}
			for _, c := range cc {
				if err := put(int32(c)); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadIndex deserializes an index and re-attaches it to the given problem
// instance, which must be the one (or an identically shaped one) it was
// built from. Node/trajectory counts are verified; deeper mismatches would
// surface as validation errors, which are checked per instance before
// returning.
func ReadIndex(r io.Reader, inst *tops.Instance) (*Index, error) {
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic uint32
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("core: bad index magic %#x", magic)
	}
	idx := &Index{inst: inst, trajs: inst.Trajs}
	if err := get(&idx.opts.Gamma); err != nil {
		return nil, err
	}
	if err := get(&idx.opts.TauMin); err != nil {
		return nil, err
	}
	if err := get(&idx.opts.TauMax); err != nil {
		return nil, err
	}
	var nNodes, nTrajs uint32
	if err := get(&nNodes); err != nil {
		return nil, err
	}
	if err := get(&nTrajs); err != nil {
		return nil, err
	}
	if int(nNodes) != inst.G.NumNodes() {
		return nil, fmt.Errorf("core: index built over %d nodes, instance has %d", nNodes, inst.G.NumNodes())
	}
	if int(nTrajs) != inst.Trajs.Len() {
		return nil, fmt.Errorf("core: index built over %d trajectories, instance has %d", nTrajs, inst.Trajs.Len())
	}
	idx.isSite = make([]bool, nNodes)
	idx.siteID = make([]int32, nNodes)
	for v := range idx.siteID {
		idx.siteID[v] = -1
	}
	for v := uint32(0); v < nNodes; v++ {
		var b uint8
		if err := get(&b); err != nil {
			return nil, err
		}
		idx.isSite[v] = b == 1
	}
	// Dense site ids follow the instance's site list order.
	for i, s := range inst.Sites {
		if !idx.isSite[s] {
			return nil, fmt.Errorf("core: instance site %d not marked in serialized index", s)
		}
		idx.siteID[s] = int32(i)
	}
	idx.alive = make([]bool, nTrajs)
	for t := uint32(0); t < nTrajs; t++ {
		var b uint8
		if err := get(&b); err != nil {
			return nil, err
		}
		idx.alive[t] = b == 1
	}
	var nInst uint32
	if err := get(&nInst); err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 24
	if nInst > 64 {
		return nil, fmt.Errorf("core: implausible instance count %d", nInst)
	}
	for p := uint32(0); p < nInst; p++ {
		ins := &Instance{
			NodeCluster:  make([]ClusterID, nNodes),
			nodeCenterDr: make([]float64, nNodes),
		}
		for v := range ins.NodeCluster {
			ins.NodeCluster[v] = InvalidCluster
		}
		if err := get(&ins.Radius); err != nil {
			return nil, err
		}
		var nClusters uint32
		if err := get(&nClusters); err != nil {
			return nil, err
		}
		if nClusters > maxReasonable {
			return nil, fmt.Errorf("core: implausible cluster count %d", nClusters)
		}
		for ci := uint32(0); ci < nClusters; ci++ {
			var cl Cluster
			var center, rep int32
			if err := get(&center); err != nil {
				return nil, err
			}
			if err := get(&rep); err != nil {
				return nil, err
			}
			cl.Center = roadnet.NodeID(center)
			cl.Rep = roadnet.NodeID(rep)
			if err := get(&cl.RepDr); err != nil {
				return nil, err
			}
			if cl.RepDr == -1 {
				cl.RepDr = math.Inf(1)
			}
			var nMembers uint32
			if err := get(&nMembers); err != nil {
				return nil, err
			}
			if nMembers > nNodes {
				return nil, fmt.Errorf("core: cluster %d has %d members over %d nodes", ci, nMembers, nNodes)
			}
			cl.Members = make([]roadnet.NodeID, nMembers)
			cl.MemberDr = make([]float64, nMembers)
			for i := uint32(0); i < nMembers; i++ {
				var v int32
				if err := get(&v); err != nil {
					return nil, err
				}
				if v < 0 || uint32(v) >= nNodes {
					return nil, fmt.Errorf("core: member node %d out of range", v)
				}
				cl.Members[i] = roadnet.NodeID(v)
				if err := get(&cl.MemberDr[i]); err != nil {
					return nil, err
				}
				ins.NodeCluster[v] = ClusterID(ci)
				ins.nodeCenterDr[v] = cl.MemberDr[i]
			}
			var nTL uint32
			if err := get(&nTL); err != nil {
				return nil, err
			}
			if nTL > nTrajs {
				return nil, fmt.Errorf("core: cluster %d TL size %d over %d trajectories", ci, nTL, nTrajs)
			}
			cl.TL = make([]TrajEntry, nTL)
			for i := uint32(0); i < nTL; i++ {
				var tid int32
				if err := get(&tid); err != nil {
					return nil, err
				}
				cl.TL[i].Traj = trajectory.ID(tid)
				if err := get(&cl.TL[i].Dr); err != nil {
					return nil, err
				}
			}
			var nCL uint32
			if err := get(&nCL); err != nil {
				return nil, err
			}
			if nCL > nClusters {
				return nil, fmt.Errorf("core: cluster %d CL size %d over %d clusters", ci, nCL, nClusters)
			}
			cl.CL = make([]NeighborEntry, nCL)
			for i := uint32(0); i < nCL; i++ {
				var cj int32
				if err := get(&cj); err != nil {
					return nil, err
				}
				cl.CL[i].Cluster = ClusterID(cj)
				if err := get(&cl.CL[i].Dr); err != nil {
					return nil, err
				}
			}
			ins.Clusters = append(ins.Clusters, cl)
		}
		var nCC uint32
		if err := get(&nCC); err != nil {
			return nil, err
		}
		if nCC > maxReasonable {
			return nil, fmt.Errorf("core: implausible CC count %d", nCC)
		}
		ins.CC = make([][]ClusterID, nCC)
		for t := uint32(0); t < nCC; t++ {
			var l uint32
			if err := get(&l); err != nil {
				return nil, err
			}
			if l > nClusters {
				return nil, fmt.Errorf("core: CC list %d longer than cluster count", t)
			}
			if l > 0 {
				ins.CC[t] = make([]ClusterID, l)
				for i := uint32(0); i < l; i++ {
					var c int32
					if err := get(&c); err != nil {
						return nil, err
					}
					ins.CC[t][i] = ClusterID(c)
				}
			}
		}
		idx.Instances = append(idx.Instances, ins)
	}
	for p := range idx.Instances {
		if err := idx.validateInstance(p); err != nil {
			return nil, fmt.Errorf("core: loaded instance %d invalid: %w", p, err)
		}
	}
	return idx, nil
}
