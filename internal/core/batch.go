package core

import (
	"fmt"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// Batch updates. §6: "While multiple updates can be applied one after
// another, batch processing is more efficient." The batch entry points
// validate the whole batch up front (all-or-nothing), then apply per
// index instance in one pass, amortizing bookkeeping that the single-item
// paths repeat per update.

// AddTrajectories ingests a batch of trajectories atomically: either every
// trajectory is valid and all are added (ids returned in order), or none
// is and an error identifies the first offender.
func (idx *Index) AddTrajectories(trs []*trajectory.Trajectory) ([]trajectory.ID, error) {
	for i, tr := range trs {
		if tr == nil {
			return nil, fmt.Errorf("core: AddTrajectories: nil trajectory at %d", i)
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("core: AddTrajectories: trajectory %d: %w", i, err)
		}
		for _, v := range tr.Nodes {
			if v < 0 || int(v) >= idx.inst.G.NumNodes() {
				return nil, fmt.Errorf("core: AddTrajectories: trajectory %d references node %d outside graph", i, v)
			}
		}
	}
	ids := make([]trajectory.ID, len(trs))
	for i, tr := range trs {
		ids[i] = idx.trajs.Add(tr)
		idx.alive = append(idx.alive, true)
	}
	for _, ins := range idx.Instances {
		for i, tr := range trs {
			registerTrajectory(ins, ids[i], tr)
		}
	}
	idx.invalidateCovers(false)
	return ids, nil
}

// DeleteTrajectories removes a batch, validating every id first.
func (idx *Index) DeleteTrajectories(ids []trajectory.ID) error {
	seen := make(map[trajectory.ID]bool, len(ids))
	for _, tid := range ids {
		if int(tid) < 0 || int(tid) >= len(idx.alive) {
			return fmt.Errorf("core: DeleteTrajectories: id %d out of range", tid)
		}
		if !idx.alive[tid] {
			return fmt.Errorf("core: DeleteTrajectories: id %d already deleted", tid)
		}
		if seen[tid] {
			return fmt.Errorf("core: DeleteTrajectories: id %d listed twice", tid)
		}
		seen[tid] = true
	}
	for _, tid := range ids {
		idx.alive[tid] = false
	}
	// One pass per instance: drop all dead entries of each touched cluster
	// at once instead of per-trajectory scans.
	for _, ins := range idx.Instances {
		touched := map[ClusterID]bool{}
		for _, tid := range ids {
			if int(tid) < len(ins.CC) {
				for _, ci := range ins.CC[tid] {
					touched[ci] = true
				}
				ins.CC[tid] = nil
			}
		}
		for ci := range touched {
			tl := ins.Clusters[ci].TL
			kept := tl[:0]
			for _, te := range tl {
				if !seen[te.Traj] {
					kept = append(kept, te)
				}
			}
			ins.Clusters[ci].TL = kept
		}
	}
	idx.invalidateCovers(false)
	return nil
}

// AddSites registers a batch of nodes as candidate sites atomically.
func (idx *Index) AddSites(nodes []roadnet.NodeID) error {
	dup := make(map[roadnet.NodeID]bool, len(nodes))
	for _, v := range nodes {
		if v < 0 || int(v) >= idx.inst.G.NumNodes() {
			return fmt.Errorf("core: AddSites: node %d outside graph", v)
		}
		if idx.isSite[v] {
			return fmt.Errorf("core: AddSites: node %d is already a site", v)
		}
		if dup[v] {
			return fmt.Errorf("core: AddSites: node %d listed twice", v)
		}
		dup[v] = true
	}
	for _, v := range nodes {
		idx.isSite[v] = true
		idx.siteID[v] = int32(len(idx.inst.Sites))
		idx.inst.Sites = append(idx.inst.Sites, v)
	}
	for _, ins := range idx.Instances {
		for _, v := range nodes {
			ci := ins.NodeCluster[v]
			if ci == InvalidCluster {
				continue
			}
			maybeTakeRep(&ins.Clusters[ci], v, ins.nodeCenterDr[v])
		}
	}
	idx.invalidateCovers(true)
	return nil
}
