package core

import (
	"testing"

	"netclus/internal/tops"
)

func jaccardCoverFixture() *tops.CoverSets {
	// Three near-identical sites and one disjoint site.
	cs := tops.NewCoverSets(4, 10)
	for tr := int32(0); tr < 6; tr++ {
		cs.AddPair(0, tr, 1)
		cs.AddPair(1, tr, 1)
	}
	for tr := int32(0); tr < 5; tr++ {
		cs.AddPair(2, tr, 1)
	}
	for tr := int32(6); tr < 10; tr++ {
		cs.AddPair(3, tr, 1)
	}
	return cs
}

func TestJaccardClusterGroupsSimilarSites(t *testing.T) {
	cs := jaccardCoverFixture()
	res, err := JaccardCluster(cs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Sites 0,1 identical (distance 0); site 2 at distance 1-5/6 = 1/6;
	// site 3 disjoint (distance 1). Expect {0,1,2} together, {3} apart.
	if res.Assign[0] != res.Assign[1] || res.Assign[0] != res.Assign[2] {
		t.Errorf("similar sites split: %v", res.Assign)
	}
	if res.Assign[3] == res.Assign[0] {
		t.Errorf("disjoint site merged: %v", res.Assign)
	}
	if res.NumClusters != 2 {
		t.Errorf("clusters = %d, want 2", res.NumClusters)
	}
}

func TestJaccardClusterAssignsEverySite(t *testing.T) {
	cs := jaccardCoverFixture()
	res, err := JaccardCluster(cs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for s, a := range res.Assign {
		if a < 0 || a >= res.NumClusters {
			t.Fatalf("site %d unassigned (%d)", s, a)
		}
	}
	// Tight threshold: at least as many clusters as the loose one.
	loose, _ := JaccardCluster(cs, 0.9)
	if res.NumClusters < loose.NumClusters {
		t.Errorf("tight threshold produced fewer clusters (%d < %d)", res.NumClusters, loose.NumClusters)
	}
}

func TestJaccardClusterValidation(t *testing.T) {
	cs := jaccardCoverFixture()
	if _, err := JaccardCluster(cs, -0.1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := JaccardCluster(cs, 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestJaccardDistanceOracle(t *testing.T) {
	cases := []struct {
		a, b []int32
		want float64
	}{
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 0},
		{[]int32{1, 2}, []int32{3, 4}, 1},
		{[]int32{1, 2, 3}, []int32{2, 3, 4}, 0.5},
		{nil, nil, 0},
		{[]int32{1}, nil, 1},
	}
	for _, c := range cases {
		if got := jaccardDistance(c.a, c.b); got != c.want {
			t.Errorf("jaccardDistance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardOnRealCoverSets(t *testing.T) {
	// Table 12 shape: clustering runs and groups the site space at least
	// somewhat (fewer clusters than sites).
	_, inst := buildTestIndex(t, 109, false)
	distIdx, err := tops.BuildDistanceIndex(inst, 6)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := tops.BuildCoverSets(distIdx, tops.Binary(1.6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := JaccardCluster(cs, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters <= 0 || res.NumClusters > cs.N() {
		t.Fatalf("clusters = %d of %d sites", res.NumClusters, cs.N())
	}
	if res.NumClusters == cs.N() {
		t.Log("no compression achieved — acceptable but worth noting")
	}
	if res.BuildTime <= 0 {
		t.Error("no build time recorded")
	}
}
