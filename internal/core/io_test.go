package core

import (
	"bytes"
	"math"
	"testing"

	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

func TestIndexSerializationRoundTrip(t *testing.T) {
	idx, inst := buildTestIndex(t, 301, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Instances) != len(idx.Instances) {
		t.Fatalf("instances: %d vs %d", len(loaded.Instances), len(idx.Instances))
	}
	if loaded.Gamma() != idx.Gamma() {
		t.Error("gamma mismatch")
	}
	lm, lM := loaded.TauRange()
	om, oM := idx.TauRange()
	if lm != om || lM != oM {
		t.Error("tau range mismatch")
	}
	// Queries must answer identically.
	for _, tau := range []float64{0.4, 0.8, 1.6} {
		pref := tops.Binary(tau)
		a, err := idx.Query(QueryOptions{K: 5, Pref: pref})
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Query(QueryOptions{K: 5, Pref: pref})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.EstimatedUtility-b.EstimatedUtility) > 1e-12 {
			t.Fatalf("τ=%v: utilities differ: %v vs %v", tau, a.EstimatedUtility, b.EstimatedUtility)
		}
		if a.InstanceUsed != b.InstanceUsed || a.NumRepresentatives != b.NumRepresentatives {
			t.Fatalf("τ=%v: structure differs", tau)
		}
		for i := range a.Sites {
			if a.Sites[i] != b.Sites[i] {
				t.Fatalf("τ=%v: site %d differs", tau, i)
			}
		}
	}
}

func TestIndexSerializationPreservesUpdates(t *testing.T) {
	idx, inst := buildTestIndex(t, 303, false)
	// Delete some trajectories and a site; the round trip must keep the
	// mutated state.
	if err := idx.DeleteTrajectory(0); err != nil {
		t.Fatal(err)
	}
	if err := idx.DeleteTrajectory(5); err != nil {
		t.Fatal(err)
	}
	if err := idx.DeleteSite(inst.Sites[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumAlive() != idx.NumAlive() {
		t.Fatalf("alive count: %d vs %d", loaded.NumAlive(), idx.NumAlive())
	}
	a, _ := idx.Query(QueryOptions{K: 5, Pref: tops.Binary(0.8)})
	b, _ := loaded.Query(QueryOptions{K: 5, Pref: tops.Binary(0.8)})
	if math.Abs(a.EstimatedUtility-b.EstimatedUtility) > 1e-12 {
		t.Fatalf("post-update utilities differ: %v vs %v", a.EstimatedUtility, b.EstimatedUtility)
	}
}

func TestReadIndexRejectsMismatchedInstance(t *testing.T) {
	idx, _ := buildTestIndex(t, 307, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Different-shaped instance (different seed -> different city size or
	// trajectory count).
	_, other := buildTestIndex(t, 311, false)
	if other.G.NumNodes() == idx.inst.G.NumNodes() && other.Trajs.Len() == idx.inst.Trajs.Len() {
		t.Skip("identically sized instance; mismatch undetectable by shape")
	}
	if _, err := ReadIndex(&buf, other); err == nil {
		t.Error("mismatched instance accepted")
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	_, inst := buildTestIndex(t, 313, false)
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4},
		"truncated": {0x31, 0x49, 0x43, 0x4e, 0, 0, 0, 0},
	} {
		if _, err := ReadIndex(bytes.NewReader(data), inst); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadedIndexSupportsUpdates(t *testing.T) {
	idx, inst := buildTestIndex(t, 317, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trajectory.New(inst.G, inst.Trajs.Get(1).Nodes)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := loaded.AddTrajectory(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.DeleteTrajectory(tid); err != nil {
		t.Fatal(err)
	}
	for p := range loaded.Instances {
		if err := loaded.validateInstance(p); err != nil {
			t.Fatalf("instance %d after updates on loaded index: %v", p, err)
		}
	}
}
