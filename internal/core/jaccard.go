package core

import (
	"fmt"
	"sort"
	"time"

	"netclus/internal/tops"
)

// Jaccard-similarity clustering (Appendix B.1) — the alternative NETCLUS
// rejects in §4 because it must run at query time (the covering sets TC
// depend on τ) and needs pairwise set similarities. It is implemented here
// as the baseline of Table 12.

// JaccardResult summarizes one Jaccard clustering run.
type JaccardResult struct {
	NumClusters int
	// Assign maps each site to its cluster (index into Centers).
	Assign []int
	// Centers lists the cluster-center sites in creation order.
	Centers []tops.SiteID
	// BuildTime is the wall-clock clustering cost (Table 12's metric).
	BuildTime time.Duration
	// PairBytes estimates the memory touched: total TC entries scanned.
	PairBytes int64
}

// JaccardCluster clusters candidate sites by trajectory-cover similarity:
// repeatedly take the unclustered site with the highest weight as a center
// and absorb every unclustered site within Jaccard distance alpha of its
// cover set. It requires cover sets for a concrete τ — exactly the
// dependence that makes the approach impractical (Table 12).
func JaccardCluster(cs *tops.CoverSets, alpha float64) (*JaccardResult, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: Jaccard distance threshold %v outside [0,1]", alpha)
	}
	start := time.Now()
	n := cs.N()
	res := &JaccardResult{Assign: make([]int, n)}
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	// Sites by weight descending (highest-weight center first, B.1).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if cs.Weights[order[a]] != cs.Weights[order[b]] {
			return cs.Weights[order[a]] > cs.Weights[order[b]]
		}
		return order[a] < order[b]
	})
	// Trajectory sets as sorted id slices for linear-merge intersection.
	sets := make([][]int32, n)
	for s := 0; s < n; s++ {
		trajs, _ := cs.TC(int32(s))
		ids := make([]int32, len(trajs))
		copy(ids, trajs)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		sets[s] = ids
		res.PairBytes += int64(len(ids)) * 4
	}
	for _, c := range order {
		if res.Assign[c] != -1 {
			continue
		}
		cid := len(res.Centers)
		res.Centers = append(res.Centers, tops.SiteID(c))
		res.Assign[c] = cid
		for s := 0; s < n; s++ {
			if res.Assign[s] != -1 {
				continue
			}
			if jaccardDistance(sets[c], sets[s]) <= alpha {
				res.Assign[s] = cid
			}
		}
	}
	res.NumClusters = len(res.Centers)
	res.BuildTime = time.Since(start)
	return res, nil
}

// jaccardDistance returns 1 − |A∩B| / |A∪B| over sorted id slices. Two
// empty sets are identical (distance 0).
func jaccardDistance(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}
