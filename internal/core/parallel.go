package core

import (
	"sync"
	"sync/atomic"

	"netclus/internal/roadnet"
)

// parallelBlock is the work-unit granularity of parallelFor: small enough
// to balance uneven bounded-search costs, large enough to amortize the
// shared-counter hit.
const parallelBlock = 16

// effectiveWorkers clamps a requested worker count to what n items at
// parallelBlock granularity can actually occupy (minimum 1).
func effectiveWorkers(n, workers int) int {
	if blocks := (n + parallelBlock - 1) / parallelBlock; workers > blocks {
		workers = blocks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelFor splits [0,n) into fixed-size blocks handed out from a shared
// counter and runs fn(worker, lo, hi) on at most `workers` goroutines.
// Block hand-out order is nondeterministic but every caller writes only
// per-index results, so outputs are identical for any worker count — the
// property the byte-identical-build guarantee rests on. workers <= 1 (or a
// trivial n) runs inline on worker 0.
func parallelFor(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = effectiveWorkers(n, workers)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				lo := b * parallelBlock
				if lo >= n {
					return
				}
				hi := lo + parallelBlock
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// parallelSweep is parallelFor for the build's bounded-search phases: it
// owns the one-Dijkstra-scratch-per-worker pool (each scratch is an O(|V|)
// allocation, so exactly as many are made as workers actually run) and
// hands fn its worker's scratch alongside the index range.
func parallelSweep(g *roadnet.Graph, n, workers int, fn func(sc *roadnet.DijkstraScratch, lo, hi int)) {
	if n <= 0 {
		return
	}
	scratches := make([]*roadnet.DijkstraScratch, effectiveWorkers(n, workers))
	for w := range scratches {
		scratches[w] = roadnet.NewScratch(g)
	}
	// Pass the clamped count so worker ids are in-range by construction,
	// not by parallelFor happening to apply the same clamp.
	parallelFor(n, len(scratches), func(w, lo, hi int) {
		fn(scratches[w], lo, hi)
	})
}
