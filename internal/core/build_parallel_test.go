package core

import (
	"runtime"
	"testing"
	"time"

	"netclus/internal/gen"
	"netclus/internal/tops"
)

// buildSpeedupInstance is larger than the usual test city so the build has
// enough work for a timing comparison to be meaningful.
func buildSpeedupInstance(t testing.TB) *tops.Instance {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 1400, SpanKm: 14, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: 97,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 150, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 300, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestParallelBuildSpeedup asserts the acceptance bar of the parallel build:
// on a machine with >= 4 usable cores, building with all workers is at least
// 2x faster than the sequential baseline. The per-node clustering sweeps,
// the neighbor-list searches, and the ladder rungs all parallelize, so real
// scaling is well above 2x; the margin absorbs scheduler noise.
func TestParallelBuildSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("needs >= 4 usable cores, have %d", procs)
	}
	inst := buildSpeedupInstance(t)
	opts := Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4}
	measure := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		// Best-of-3 absorbs noisy-neighbor interference on shared CI
		// runners; the assertion gates on the machine's capability, not
		// on one quiet scheduling window.
		for run := 0; run < 3; run++ {
			o := opts
			o.Workers = workers
			t0 := time.Now()
			if _, err := Build(inst, o); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	seq := measure(1)
	par := measure(procs)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel(%d) %v, speedup %.2fx", seq, procs, par, speedup)
	if speedup < 2 {
		t.Errorf("parallel build speedup %.2fx below 2x on %d cores", speedup, procs)
	}
}

// TestBuildWorkersEquivalent pins the determinism contract on every machine
// (the byte-level version lives in snapshot_test.go): worker count must not
// change any query answer.
func TestBuildWorkersEquivalent(t *testing.T) {
	_, inst := buildTestIndex(t, 353, false)
	seqIdx, err := Build(inst, Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parIdx, err := Build(inst, Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.4, 0.8, 1.6, 3.2} {
		a, err := seqIdx.Query(QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			t.Fatal(err)
		}
		b, err := parIdx.Query(QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			t.Fatal(err)
		}
		if a.EstimatedUtility != b.EstimatedUtility || len(a.Sites) != len(b.Sites) {
			t.Fatalf("τ=%v: sequential and parallel builds answer differently", tau)
		}
		for i := range a.Sites {
			if a.Sites[i] != b.Sites[i] {
				t.Fatalf("τ=%v: site %d differs between worker counts", tau, i)
			}
		}
	}
}
