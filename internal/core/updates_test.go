package core

import (
	"math"
	"testing"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

func TestAddSiteBecomesQueryable(t *testing.T) {
	idx, inst := buildTestIndex(t, 71, false)
	// Find a non-site node.
	var target roadnet.NodeID = roadnet.InvalidNode
	for v := 0; v < inst.G.NumNodes(); v++ {
		if !idx.isSite[roadnet.NodeID(v)] {
			target = roadnet.NodeID(v)
			break
		}
	}
	if target == roadnet.InvalidNode {
		t.Skip("all nodes are sites")
	}
	nBefore := len(inst.Sites)
	if err := idx.AddSite(target); err != nil {
		t.Fatal(err)
	}
	if len(inst.Sites) != nBefore+1 {
		t.Fatal("site list not extended")
	}
	if err := idx.AddSite(target); err == nil {
		t.Error("duplicate AddSite accepted")
	}
	for p := range idx.Instances {
		if err := idx.validateInstance(p); err != nil {
			t.Fatalf("instance %d after AddSite: %v", p, err)
		}
	}
}

func TestAddSiteImprovesRepresentative(t *testing.T) {
	idx, _ := buildTestIndex(t, 73, false)
	ins := idx.Instances[len(idx.Instances)-1] // coarsest: big clusters
	// Pick a cluster whose center is not a site: adding the center as a
	// site must make it the representative (distance 0).
	for ci := range ins.Clusters {
		cl := &ins.Clusters[ci]
		if !idx.isSite[cl.Center] {
			if err := idx.AddSite(cl.Center); err != nil {
				t.Fatal(err)
			}
			if cl.Rep != cl.Center || cl.RepDr != 0 {
				t.Fatalf("center-site not chosen as representative: rep=%d dr=%v", cl.Rep, cl.RepDr)
			}
			return
		}
	}
	t.Skip("all cluster centers are already sites")
}

func TestDeleteSiteReelectsRepresentative(t *testing.T) {
	idx, _ := buildTestIndex(t, 79, false)
	ins := idx.Instances[len(idx.Instances)-1]
	// Find a cluster with at least two sites.
	for ci := range ins.Clusters {
		cl := &ins.Clusters[ci]
		sitesIn := 0
		for _, v := range cl.Members {
			if idx.isSite[v] {
				sitesIn++
			}
		}
		if sitesIn >= 2 && cl.Rep != roadnet.InvalidNode {
			oldRep := cl.Rep
			if err := idx.DeleteSite(oldRep); err != nil {
				t.Fatal(err)
			}
			if cl.Rep == oldRep || cl.Rep == roadnet.InvalidNode {
				t.Fatalf("representative not re-elected: %d", cl.Rep)
			}
			if !idx.isSite[cl.Rep] {
				t.Fatal("new representative is not a site")
			}
			return
		}
	}
	t.Skip("no cluster with two sites")
}

func TestDeleteSiteErrors(t *testing.T) {
	idx, _ := buildTestIndex(t, 83, false)
	if err := idx.DeleteSite(roadnet.NodeID(-1)); err == nil {
		t.Error("invalid node accepted")
	}
	// Deleting a non-site node.
	for v := 0; v < idx.inst.G.NumNodes(); v++ {
		if !idx.isSite[roadnet.NodeID(v)] {
			if err := idx.DeleteSite(roadnet.NodeID(v)); err == nil {
				t.Error("non-site delete accepted")
			}
			break
		}
	}
}

func TestDeleteSiteSwapRemoveConsistency(t *testing.T) {
	// DeleteSite maintains the site list by swap-remove: the siteID table
	// must stay the exact inverse of inst.Sites through any deletion
	// pattern (first, middle, last), deleted representatives must hand
	// over to the next-closest site, and queries must keep working.
	idx, inst := buildTestIndex(t, 113, false)
	checkInverse := func(when string) {
		t.Helper()
		for i, s := range inst.Sites {
			if idx.siteID[s] != int32(i) {
				t.Fatalf("%s: siteID[%d] = %d, want %d", when, s, idx.siteID[s], i)
			}
			if !idx.isSite[s] {
				t.Fatalf("%s: listed site %d not marked", when, s)
			}
		}
	}
	checkInverse("before deletions")

	// Delete the current first, last and a middle site, plus one cluster
	// representative (takeover case), interleaved with inverse checks.
	targets := []roadnet.NodeID{inst.Sites[0], inst.Sites[len(inst.Sites)-1], inst.Sites[len(inst.Sites)/2]}
	ins := idx.Instances[len(idx.Instances)-1]
	for ci := range ins.Clusters {
		cl := &ins.Clusters[ci]
		sitesIn := 0
		for _, v := range cl.Members {
			if idx.isSite[v] {
				sitesIn++
			}
		}
		if sitesIn >= 2 && cl.Rep != roadnet.InvalidNode {
			already := false
			for _, d := range targets {
				if d == cl.Rep {
					already = true
				}
			}
			if !already {
				targets = append(targets, cl.Rep)
			}
			break
		}
	}
	nBefore := len(inst.Sites)
	deleted := make(map[roadnet.NodeID]bool)
	for _, v := range targets {
		if deleted[v] {
			continue
		}
		if err := idx.DeleteSite(v); err != nil {
			t.Fatal(err)
		}
		deleted[v] = true
		if idx.isSite[v] || idx.siteID[v] != -1 {
			t.Fatalf("deleted site %d still registered", v)
		}
		checkInverse("after delete")
		// Representative takeover: v must no longer represent any cluster,
		// and any successor must be a live site.
		for _, insp := range idx.Instances {
			if ci := insp.NodeCluster[v]; ci != InvalidCluster {
				if rep := insp.Clusters[ci].Rep; rep == v {
					t.Fatalf("deleted site %d still a representative", v)
				} else if rep != roadnet.InvalidNode && !idx.isSite[rep] {
					t.Fatalf("successor representative %d is not a site", rep)
				}
			}
		}
	}
	if got := len(inst.Sites); got != nBefore-len(deleted) {
		t.Fatalf("site count %d after %d deletions of %d", got, len(deleted), nBefore)
	}
	if _, err := idx.Query(QueryOptions{K: 3, Pref: tops.Binary(0.8)}); err != nil {
		t.Fatalf("query after swap-remove deletions: %v", err)
	}
	for p := range idx.Instances {
		if err := idx.validateInstance(p); err != nil {
			t.Fatalf("instance %d: %v", p, err)
		}
	}
}

func TestAddTrajectoryAffectsQueries(t *testing.T) {
	idx, inst := buildTestIndex(t, 89, false)
	pref := tops.Binary(0.8)
	before, err := idx.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	// Clone an existing trajectory 30 times: its corridor becomes heavy,
	// so total estimated utility must grow.
	src := inst.Trajs.Get(0)
	for i := 0; i < 30; i++ {
		tr, err := trajectory.New(inst.G, src.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := idx.AddTrajectory(tr); err != nil {
			t.Fatal(err)
		}
	}
	after, err := idx.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	if after.EstimatedUtility <= before.EstimatedUtility {
		t.Errorf("utility did not grow after adding trajectories: %v -> %v",
			before.EstimatedUtility, after.EstimatedUtility)
	}
	for p := range idx.Instances {
		if err := idx.validateInstance(p); err != nil {
			t.Fatalf("instance %d: %v", p, err)
		}
	}
}

func TestAddTrajectoryValidation(t *testing.T) {
	idx, _ := buildTestIndex(t, 97, false)
	if _, err := idx.AddTrajectory(nil); err == nil {
		t.Error("nil trajectory accepted")
	}
	bad := &trajectory.Trajectory{Nodes: []roadnet.NodeID{0}, CumDist: []float64{1}}
	if _, err := idx.AddTrajectory(bad); err == nil {
		t.Error("invalid trajectory accepted")
	}
	bad2 := &trajectory.Trajectory{Nodes: []roadnet.NodeID{999999}, CumDist: []float64{0}}
	if _, err := idx.AddTrajectory(bad2); err == nil {
		t.Error("out-of-graph trajectory accepted")
	}
}

func TestDeleteTrajectoryRemovesCoverage(t *testing.T) {
	idx, _ := buildTestIndex(t, 101, false)
	pref := tops.Binary(0.8)
	before, err := idx.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	// Delete half the trajectories.
	for tid := 0; tid < idx.trajs.Len(); tid += 2 {
		if err := idx.DeleteTrajectory(trajectory.ID(tid)); err != nil {
			t.Fatal(err)
		}
	}
	after, err := idx.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	if after.EstimatedUtility >= before.EstimatedUtility {
		t.Errorf("utility did not drop after deletions: %v -> %v",
			before.EstimatedUtility, after.EstimatedUtility)
	}
	// Double delete must fail.
	if err := idx.DeleteTrajectory(0); err == nil {
		t.Error("double delete accepted")
	}
	for p := range idx.Instances {
		if err := idx.validateInstance(p); err != nil {
			t.Fatalf("instance %d: %v", p, err)
		}
	}
}

func TestAddDeleteTrajectoryRoundTrip(t *testing.T) {
	// Adding then deleting a trajectory must restore query results.
	idx, inst := buildTestIndex(t, 103, false)
	pref := tops.Binary(0.8)
	before, err := idx.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trajectory.New(inst.G, inst.Trajs.Get(3).Nodes)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := idx.AddTrajectory(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.DeleteTrajectory(tid); err != nil {
		t.Fatal(err)
	}
	after, err := idx.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.EstimatedUtility-before.EstimatedUtility) > 1e-9 {
		t.Errorf("round trip changed utility: %v -> %v", before.EstimatedUtility, after.EstimatedUtility)
	}
	if before.NumRepresentatives != after.NumRepresentatives {
		t.Error("representative count changed")
	}
}

func TestUpdateEquivalentToRebuild(t *testing.T) {
	// An index updated with extra trajectories must answer like an index
	// built from scratch over the extended store.
	idxA, instA := buildTestIndex(t, 107, false)
	idxB, instB := buildTestIndex(t, 107, false)
	// Extend B's store via the update path with clones of A's data
	// (same node sequences are valid in both — identical cities).
	var added []*trajectory.Trajectory
	for i := 0; i < 10; i++ {
		tr, err := trajectory.New(instA.G, instA.Trajs.Get(trajectory.ID(i)).Nodes)
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, tr)
		if _, err := idxB.AddTrajectory(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild a fresh index over the extended store.
	extStore := trajectory.NewStore(instA.Trajs.Len() + len(added))
	instA.Trajs.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) { extStore.Add(tr) })
	for _, tr := range added {
		extStore.Add(tr)
	}
	instC, err := tops.NewInstance(instB.G, extStore, instB.Sites)
	if err != nil {
		t.Fatal(err)
	}
	idxC, err := Build(instC, Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	_ = idxA
	pref := tops.Binary(0.8)
	qB, err := idxB.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	qC, err := idxC.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qB.EstimatedUtility-qC.EstimatedUtility) > 1e-9 {
		t.Errorf("updated %v != rebuilt %v", qB.EstimatedUtility, qC.EstimatedUtility)
	}
}
