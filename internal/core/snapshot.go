package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// Index snapshots. The offline phase (clustering every instance of the
// ladder) dominates total cost, so a deployment builds the index once,
// snapshots it, and warm-starts every later process from the snapshot.
//
// The format is versioned and little-endian throughout, every list is
// length-prefixed, the stream ends in a CRC32 trailer over all preceding
// bytes, and the header carries a fingerprint of the dataset the index was
// built from (graph topology and weights, candidate sites, trajectories). ReadIndex recomputes the fingerprint over the instance it
// re-attaches to and rejects mismatches, so a snapshot can never silently
// serve queries against a different — or differently ordered — dataset.
// The snapshot contains the ladder and all cluster metadata but not the
// road network or trajectory store: those are serialized by their own
// packages (roadnet, trajectory) and are typically regenerated
// deterministically from a dataset preset.
//
// Because index construction is deterministic for any Options.Workers (see
// Build), two builds of the same dataset produce byte-identical snapshots;
// tests assert this, making the snapshot double as a build-reproducibility
// checksum.

const (
	// snapshotMagic is "NCSS" (NetClus SnapShot) read little-endian.
	snapshotMagic uint32 = 0x5353434e
	// snapshotVersion is the current format version. Version 1 was the
	// unversioned "NCI1" codec of PR 1, which carried no fingerprint; it is
	// no longer readable and loads fail with a bad-magic error. Version 3
	// added the WAL LSN to the header; version-2 snapshots still load (as
	// LSN 0, i.e. "replay the whole log").
	snapshotVersion uint32 = 3
	// snapshotMinVersion is the oldest version this reader accepts.
	snapshotMinVersion uint32 = 2
)

// DatasetFingerprint hashes the parts of a problem instance an index build
// depends on: node coordinates, the adjacency lists with weights (in
// insertion order), the candidate-site list (in order, because dense site
// ids follow it), and every trajectory's node sequence and length. Two
// instances with equal fingerprints answer snapshot-served queries
// identically; any structural difference — including a mere reordering of
// sites — changes the fingerprint.
func DatasetFingerprint(inst *tops.Instance) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putF64 := func(v float64) { putU64(math.Float64bits(v)) }

	g := inst.G
	putU64(uint64(g.NumNodes()))
	for v := 0; v < g.NumNodes(); v++ {
		p := g.Point(roadnet.NodeID(v))
		putF64(p.X)
		putF64(p.Y)
		g.Neighbors(roadnet.NodeID(v), func(to roadnet.NodeID, w float64) bool {
			putU64(uint64(uint32(to)))
			putF64(w)
			return true
		})
		putU64(^uint64(0)) // adjacency-list terminator
	}
	putU64(uint64(len(inst.Sites)))
	for _, s := range inst.Sites {
		putU64(uint64(uint32(s)))
	}
	putU64(uint64(inst.Trajs.Len()))
	inst.Trajs.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) {
		putU64(uint64(len(tr.Nodes)))
		for _, v := range tr.Nodes {
			putU64(uint64(uint32(v)))
		}
		putF64(tr.Length())
	})
	return h.Sum64()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the index as a versioned snapshot: header and payload,
// then a CRC32 (IEEE) trailer over every preceding byte, so in-range bit
// corruption — which the decoder's structural checks alone cannot see —
// fails the load instead of silently changing query answers.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	sum := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(cw, sum))
	put := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }

	header := []any{
		snapshotMagic,
		snapshotVersion,
		DatasetFingerprint(idx.inst),
		idx.walLSN,
		idx.opts.Gamma,
		idx.opts.TauMin,
		idx.opts.TauMax,
		uint32(idx.inst.G.NumNodes()),
		uint32(idx.trajs.Len()),
	}
	for _, v := range header {
		if err := put(v); err != nil {
			return cw.n, err
		}
	}
	// Site membership and liveness masks, written as whole byte slices
	// (one buffered write each instead of one encoder call per node).
	putMask := func(bits []bool) error {
		mask := make([]byte, len(bits))
		for i, b := range bits {
			if b {
				mask[i] = 1
			}
		}
		_, err := bw.Write(mask)
		return err
	}
	if err := putMask(idx.isSite); err != nil {
		return cw.n, err
	}
	if err := putMask(idx.alive); err != nil {
		return cw.n, err
	}
	if err := put(uint32(len(idx.Instances))); err != nil {
		return cw.n, err
	}
	for _, ins := range idx.Instances {
		if err := put(ins.Radius); err != nil {
			return cw.n, err
		}
		if err := put(uint32(len(ins.Clusters))); err != nil {
			return cw.n, err
		}
		for ci := range ins.Clusters {
			cl := &ins.Clusters[ci]
			if err := put(int32(cl.Center)); err != nil {
				return cw.n, err
			}
			if err := put(int32(cl.Rep)); err != nil {
				return cw.n, err
			}
			// +Inf (no representative) round-trips exactly: binary.Write
			// emits the IEEE bit pattern like every other Dr field here.
			if err := put(cl.RepDr); err != nil {
				return cw.n, err
			}
			if err := put(uint32(len(cl.Members))); err != nil {
				return cw.n, err
			}
			for i, v := range cl.Members {
				if err := put(int32(v)); err != nil {
					return cw.n, err
				}
				if err := put(cl.MemberDr[i]); err != nil {
					return cw.n, err
				}
			}
			if err := put(uint32(len(cl.TL))); err != nil {
				return cw.n, err
			}
			for _, te := range cl.TL {
				if err := put(int32(te.Traj)); err != nil {
					return cw.n, err
				}
				if err := put(te.Dr); err != nil {
					return cw.n, err
				}
			}
			if err := put(uint32(len(cl.CL))); err != nil {
				return cw.n, err
			}
			for _, nb := range cl.CL {
				if err := put(int32(nb.Cluster)); err != nil {
					return cw.n, err
				}
				if err := put(nb.Dr); err != nil {
					return cw.n, err
				}
			}
		}
		// CC lists.
		if err := put(uint32(len(ins.CC))); err != nil {
			return cw.n, err
		}
		for _, cc := range ins.CC {
			if err := put(uint32(len(cc))); err != nil {
				return cw.n, err
			}
			for _, c := range cc {
				if err := put(int32(c)); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// Trailer: written straight to the sink so it is not part of its own
	// checksum.
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum.Sum32())
	if _, err := cw.Write(trailer[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// hashingReader feeds every byte handed to the consumer through a CRC, so
// the checksum covers exactly the bytes the decoder consumed — buffering
// below it never hashes read-ahead the decoder hasn't seen.
type hashingReader struct {
	r   *bufio.Reader
	sum hash.Hash32
}

func (hr *hashingReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	if n > 0 {
		hr.sum.Write(p[:n])
	}
	return n, err
}

// ReadIndex deserializes a snapshot and re-attaches it to the given problem
// instance. The instance must be the dataset the index was built from: the
// header fingerprint is recomputed over inst and a mismatch — different
// graph, different sites, different trajectories, or merely a different
// ordering — is rejected before any structure is decoded. Every list length
// and id is range-checked, so corrupted or truncated input produces an
// error, never a panic or an index that fails later; each decoded instance
// is additionally validated structurally before the index is returned.
func ReadIndex(r io.Reader, inst *tops.Instance) (*Index, error) {
	hr := &hashingReader{r: bufio.NewReader(r), sum: crc32.NewIEEE()}
	get := func(v any) error { return binary.Read(hr, binary.LittleEndian, v) }

	var magic, version uint32
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %#x (want %#x)", magic, snapshotMagic)
	}
	if err := get(&version); err != nil {
		return nil, fmt.Errorf("core: reading snapshot version: %w", err)
	}
	// Version mismatches name both sides so an operator can tell a stale
	// binary from a stale snapshot at a glance.
	if version > snapshotVersion {
		return nil, fmt.Errorf("core: snapshot format v%d, this reader supports <=v%d (upgrade the binary)", version, snapshotVersion)
	}
	if version < snapshotMinVersion {
		return nil, fmt.Errorf("core: snapshot format v%d, this reader supports v%d..v%d (rebuild the snapshot)", version, snapshotMinVersion, snapshotVersion)
	}
	var fp uint64
	if err := get(&fp); err != nil {
		return nil, fmt.Errorf("core: reading dataset fingerprint: %w", err)
	}
	if want := DatasetFingerprint(inst); fp != want {
		return nil, fmt.Errorf("core: snapshot fingerprint %#x does not match dataset %#x: index was built from a different dataset", fp, want)
	}

	idx := &Index{inst: inst, trajs: inst.Trajs}
	if version >= 3 {
		if err := get(&idx.walLSN); err != nil {
			return nil, fmt.Errorf("core: reading snapshot WAL LSN: %w", err)
		}
	}
	if err := get(&idx.opts.Gamma); err != nil {
		return nil, err
	}
	if err := get(&idx.opts.TauMin); err != nil {
		return nil, err
	}
	if err := get(&idx.opts.TauMax); err != nil {
		return nil, err
	}
	if !(idx.opts.Gamma > 0 && idx.opts.Gamma <= 1) {
		return nil, fmt.Errorf("core: snapshot γ = %v outside (0,1]", idx.opts.Gamma)
	}
	if !(idx.opts.TauMin > 0 && idx.opts.TauMin < idx.opts.TauMax) {
		return nil, fmt.Errorf("core: snapshot τ range [%v, %v) invalid", idx.opts.TauMin, idx.opts.TauMax)
	}
	var nNodes, nTrajs uint32
	if err := get(&nNodes); err != nil {
		return nil, err
	}
	if err := get(&nTrajs); err != nil {
		return nil, err
	}
	if int(nNodes) != inst.G.NumNodes() {
		return nil, fmt.Errorf("core: index built over %d nodes, instance has %d", nNodes, inst.G.NumNodes())
	}
	if int(nTrajs) != inst.Trajs.Len() {
		return nil, fmt.Errorf("core: index built over %d trajectories, instance has %d", nTrajs, inst.Trajs.Len())
	}
	getMask := func(n uint32) ([]bool, error) {
		raw := make([]byte, n)
		if _, err := io.ReadFull(hr, raw); err != nil {
			return nil, err
		}
		bits := make([]bool, n)
		for i, b := range raw {
			bits[i] = b == 1
		}
		return bits, nil
	}
	var err error
	if idx.isSite, err = getMask(nNodes); err != nil {
		return nil, err
	}
	idx.siteID = make([]int32, nNodes)
	for v := range idx.siteID {
		idx.siteID[v] = -1
	}
	// Dense site ids follow the instance's site list order.
	for i, s := range inst.Sites {
		if !idx.isSite[s] {
			return nil, fmt.Errorf("core: instance site %d not marked in snapshot", s)
		}
		idx.siteID[s] = int32(i)
	}
	if idx.alive, err = getMask(nTrajs); err != nil {
		return nil, err
	}
	var nInst uint32
	if err := get(&nInst); err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 24
	// Build produces exactly ⌊log_{1+γ}(τmax/τmin)⌋+1 rungs, so the ladder
	// length is fully determined by the (already validated) header rather
	// than a fixed guess — a γ=0.05 ladder with 95 rungs must load, while a
	// corrupt count (in either direction: a shortened ladder would load
	// "cleanly" and then silently serve every high-τ query from the wrong
	// rung) fails fast. ladderRungs/maxLadderRungs are shared with Build,
	// which rejects ladders outside [1, maxLadderRungs] at build time — so
	// a header implying one cannot come from this library and is rejected
	// outright rather than given a fallback bound.
	expInst := int64(ladderRungs(idx.opts.Gamma, idx.opts.TauMin, idx.opts.TauMax))
	if expInst < 1 || expInst > maxLadderRungs {
		return nil, fmt.Errorf("core: header implies a %d-rung ladder (buildable range is 1..%d)", expInst, maxLadderRungs)
	}
	if int64(nInst) != expInst {
		return nil, fmt.Errorf("core: instance count %d does not match the %d-rung ladder the header implies", nInst, expInst)
	}
	for p := uint32(0); p < nInst; p++ {
		ins := &Instance{
			NodeCluster:  make([]ClusterID, nNodes),
			nodeCenterDr: make([]float64, nNodes),
		}
		for v := range ins.NodeCluster {
			ins.NodeCluster[v] = InvalidCluster
		}
		if err := get(&ins.Radius); err != nil {
			return nil, err
		}
		var nClusters uint32
		if err := get(&nClusters); err != nil {
			return nil, err
		}
		if nClusters > maxReasonable {
			return nil, fmt.Errorf("core: implausible cluster count %d", nClusters)
		}
		for ci := uint32(0); ci < nClusters; ci++ {
			var cl Cluster
			var center, rep int32
			if err := get(&center); err != nil {
				return nil, err
			}
			if err := get(&rep); err != nil {
				return nil, err
			}
			if center < 0 || uint32(center) >= nNodes {
				return nil, fmt.Errorf("core: cluster %d center %d out of range", ci, center)
			}
			if rep != int32(roadnet.InvalidNode) && (rep < 0 || uint32(rep) >= nNodes) {
				return nil, fmt.Errorf("core: cluster %d representative %d out of range", ci, rep)
			}
			cl.Center = roadnet.NodeID(center)
			cl.Rep = roadnet.NodeID(rep)
			if err := get(&cl.RepDr); err != nil {
				return nil, err
			}
			var nMembers uint32
			if err := get(&nMembers); err != nil {
				return nil, err
			}
			if nMembers > nNodes {
				return nil, fmt.Errorf("core: cluster %d has %d members over %d nodes", ci, nMembers, nNodes)
			}
			cl.Members = make([]roadnet.NodeID, nMembers)
			cl.MemberDr = make([]float64, nMembers)
			for i := uint32(0); i < nMembers; i++ {
				var v int32
				if err := get(&v); err != nil {
					return nil, err
				}
				if v < 0 || uint32(v) >= nNodes {
					return nil, fmt.Errorf("core: member node %d out of range", v)
				}
				cl.Members[i] = roadnet.NodeID(v)
				if err := get(&cl.MemberDr[i]); err != nil {
					return nil, err
				}
				ins.NodeCluster[v] = ClusterID(ci)
				ins.nodeCenterDr[v] = cl.MemberDr[i]
			}
			var nTL uint32
			if err := get(&nTL); err != nil {
				return nil, err
			}
			if nTL > nTrajs {
				return nil, fmt.Errorf("core: cluster %d TL size %d over %d trajectories", ci, nTL, nTrajs)
			}
			cl.TL = make([]TrajEntry, nTL)
			for i := uint32(0); i < nTL; i++ {
				var tid int32
				if err := get(&tid); err != nil {
					return nil, err
				}
				if tid < 0 || uint32(tid) >= nTrajs {
					return nil, fmt.Errorf("core: cluster %d TL trajectory %d out of range", ci, tid)
				}
				cl.TL[i].Traj = trajectory.ID(tid)
				if err := get(&cl.TL[i].Dr); err != nil {
					return nil, err
				}
			}
			var nCL uint32
			if err := get(&nCL); err != nil {
				return nil, err
			}
			if nCL > nClusters {
				return nil, fmt.Errorf("core: cluster %d CL size %d over %d clusters", ci, nCL, nClusters)
			}
			cl.CL = make([]NeighborEntry, nCL)
			for i := uint32(0); i < nCL; i++ {
				var cj int32
				if err := get(&cj); err != nil {
					return nil, err
				}
				if cj < 0 || uint32(cj) >= nClusters {
					return nil, fmt.Errorf("core: cluster %d CL neighbor %d out of range", ci, cj)
				}
				cl.CL[i].Cluster = ClusterID(cj)
				if err := get(&cl.CL[i].Dr); err != nil {
					return nil, err
				}
			}
			ins.Clusters = append(ins.Clusters, cl)
		}
		var nCC uint32
		if err := get(&nCC); err != nil {
			return nil, err
		}
		// Build sizes CC to the trajectory count and every update keeps it
		// there, so any other value is corruption — and requiring equality
		// also blocks the pre-CRC memory amplification a huge count would
		// otherwise cause (and the silently skipped TL removals in
		// DeleteTrajectory a short one would cause).
		if nCC != nTrajs {
			return nil, fmt.Errorf("core: CC count %d does not match %d trajectories", nCC, nTrajs)
		}
		ins.CC = make([][]ClusterID, nCC)
		for t := uint32(0); t < nCC; t++ {
			var l uint32
			if err := get(&l); err != nil {
				return nil, err
			}
			if l > nClusters {
				return nil, fmt.Errorf("core: CC list %d longer than cluster count", t)
			}
			if l > 0 {
				ins.CC[t] = make([]ClusterID, l)
				for i := uint32(0); i < l; i++ {
					var c int32
					if err := get(&c); err != nil {
						return nil, err
					}
					if c < 0 || uint32(c) >= nClusters {
						return nil, fmt.Errorf("core: CC list %d entry %d out of range", t, c)
					}
					ins.CC[t][i] = ClusterID(c)
				}
			}
		}
		idx.Instances = append(idx.Instances, ins)
	}
	// Trailer: the CRC of everything consumed so far, read from under the
	// hashing layer so it is compared against — not folded into — the sum.
	want := hr.sum.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(hr.r, trailer[:]); err != nil {
		return nil, fmt.Errorf("core: reading snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != want {
		return nil, fmt.Errorf("core: snapshot checksum mismatch (%#x on disk, %#x computed): file is corrupt", got, want)
	}
	// The stream must end exactly here: trailing bytes mean it is not the
	// snapshot it claims to be (concatenation, overwrite debris).
	if _, err := hr.r.ReadByte(); err == nil {
		return nil, fmt.Errorf("core: trailing data after snapshot payload")
	} else if err != io.EOF {
		return nil, err
	}
	for p := range idx.Instances {
		if err := idx.validateInstance(p); err != nil {
			return nil, fmt.Errorf("core: loaded instance %d invalid: %w", p, err)
		}
	}
	return idx, nil
}

// WriteSnapshotFile writes the snapshot to path atomically: the bytes land
// in a temporary sibling first and are renamed into place, so a concurrent
// reader (or a crash mid-write) never observes a torn snapshot.
func (idx *Index) WriteSnapshotFile(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: snapshot dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: snapshot temp file: %w", err)
	}
	if _, err := idx.WriteTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: writing snapshot: %w", err)
	}
	// Flush to stable storage before publishing, so a machine crash right
	// after the rename cannot leave an empty or partial file at the final
	// path (rename alone only orders metadata, not data, on ext4-style
	// filesystems).
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: closing snapshot: %w", err)
	}
	// CreateTemp's 0600 would make shared caches (CI writes, service
	// reads) silently miss for every other user; snapshots are not secret.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: snapshot permissions: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: publishing snapshot: %w", err)
	}
	return nil
}

// ReadIndexFile loads a snapshot from path and re-attaches it to inst.
func ReadIndexFile(path string, inst *tops.Instance) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening snapshot: %w", err)
	}
	defer f.Close()
	idx, err := ReadIndex(f, inst)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot %s: %w", path, err)
	}
	return idx, nil
}
