package core

import (
	"math"
	"testing"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

func TestAddTrajectoriesBatchMatchesSequential(t *testing.T) {
	idxA, instA := buildTestIndex(t, 401, false)
	idxB, _ := buildTestIndex(t, 401, false)
	var batch []*trajectory.Trajectory
	for i := 0; i < 8; i++ {
		tr, err := trajectory.New(instA.G, instA.Trajs.Get(trajectory.ID(i)).Nodes)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, tr)
	}
	// A: sequential, B: batch.
	for _, tr := range batch {
		if _, err := idxA.AddTrajectory(tr); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := idxB.AddTrajectories(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(batch) {
		t.Fatalf("batch returned %d ids", len(ids))
	}
	pref := tops.Binary(0.8)
	a, err := idxA.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	b, err := idxB.Query(QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.EstimatedUtility-b.EstimatedUtility) > 1e-12 {
		t.Fatalf("sequential %v != batch %v", a.EstimatedUtility, b.EstimatedUtility)
	}
	for p := range idxB.Instances {
		if err := idxB.validateInstance(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAddTrajectoriesAtomicOnError(t *testing.T) {
	idx, inst := buildTestIndex(t, 403, false)
	before := idx.trajs.Len()
	good, err := trajectory.New(inst.G, inst.Trajs.Get(0).Nodes)
	if err != nil {
		t.Fatal(err)
	}
	bad := &trajectory.Trajectory{Nodes: []roadnet.NodeID{999999}, CumDist: []float64{0}}
	if _, err := idx.AddTrajectories([]*trajectory.Trajectory{good, bad}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if idx.trajs.Len() != before {
		t.Error("partial batch was applied")
	}
}

func TestDeleteTrajectoriesBatch(t *testing.T) {
	idx, _ := buildTestIndex(t, 405, false)
	pref := tops.Binary(0.8)
	ids := []trajectory.ID{0, 2, 4, 6}
	if err := idx.DeleteTrajectories(ids); err != nil {
		t.Fatal(err)
	}
	if idx.NumAlive() != 60-len(ids) {
		t.Fatalf("alive = %d", idx.NumAlive())
	}
	// Double delete and duplicates rejected.
	if err := idx.DeleteTrajectories([]trajectory.ID{0}); err == nil {
		t.Error("double delete accepted")
	}
	if err := idx.DeleteTrajectories([]trajectory.ID{1, 1}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if err := idx.DeleteTrajectories([]trajectory.ID{9999}); err == nil {
		t.Error("out-of-range id accepted")
	}
	// Queries still work and instances stay valid.
	if _, err := idx.Query(QueryOptions{K: 5, Pref: pref}); err != nil {
		t.Fatal(err)
	}
	for p := range idx.Instances {
		if err := idx.validateInstance(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeleteTrajectoriesBatchMatchesSequential(t *testing.T) {
	idxA, _ := buildTestIndex(t, 407, false)
	idxB, _ := buildTestIndex(t, 407, false)
	ids := []trajectory.ID{1, 3, 5, 7, 9, 11}
	for _, id := range ids {
		if err := idxA.DeleteTrajectory(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := idxB.DeleteTrajectories(ids); err != nil {
		t.Fatal(err)
	}
	pref := tops.Binary(0.8)
	a, _ := idxA.Query(QueryOptions{K: 5, Pref: pref})
	b, _ := idxB.Query(QueryOptions{K: 5, Pref: pref})
	if math.Abs(a.EstimatedUtility-b.EstimatedUtility) > 1e-12 {
		t.Fatalf("sequential %v != batch %v", a.EstimatedUtility, b.EstimatedUtility)
	}
}

func TestAddSitesBatch(t *testing.T) {
	idx, inst := buildTestIndex(t, 409, false)
	var nodes []roadnet.NodeID
	for v := 0; v < inst.G.NumNodes() && len(nodes) < 5; v++ {
		if !idx.isSite[roadnet.NodeID(v)] {
			nodes = append(nodes, roadnet.NodeID(v))
		}
	}
	if len(nodes) < 5 {
		t.Skip("not enough non-site nodes")
	}
	before := len(inst.Sites)
	if err := idx.AddSites(nodes); err != nil {
		t.Fatal(err)
	}
	if len(inst.Sites) != before+5 {
		t.Fatalf("site count = %d", len(inst.Sites))
	}
	// Re-adding or duplicating fails atomically.
	if err := idx.AddSites(nodes[:1]); err == nil {
		t.Error("re-add accepted")
	}
	var more []roadnet.NodeID
	for v := 0; v < inst.G.NumNodes() && len(more) < 1; v++ {
		if !idx.isSite[roadnet.NodeID(v)] {
			more = append(more, roadnet.NodeID(v))
		}
	}
	if len(more) == 1 {
		if err := idx.AddSites([]roadnet.NodeID{more[0], more[0]}); err == nil {
			t.Error("duplicate in batch accepted")
		}
		if idx.isSite[more[0]] {
			t.Error("failed batch partially applied")
		}
	}
	for p := range idx.Instances {
		if err := idx.validateInstance(p); err != nil {
			t.Fatal(err)
		}
	}
}
