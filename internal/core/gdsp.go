// Package core implements NETCLUS, the multi-resolution clustering index of
// the paper (§4–§6): Greedy-GDSP distance-based clustering of the road
// network, the ladder of index instances with radii growing by (1+γ), the
// online TOPS-Cluster query over cluster representatives, and dynamic
// updates of sites and trajectories.
package core

import (
	"container/heap"
	"fmt"
	"sort"

	"netclus/internal/fm"
	"netclus/internal/roadnet"
)

// GDSPOptions configures the Greedy-GDSP clustering (§4.1).
type GDSPOptions struct {
	// Radius is the cluster radius R: every member has round-trip distance
	// at most 2R to its cluster center.
	Radius float64
	// UseFM selects the FM-sketch-accelerated center choice of §4.1.2.
	// The exact (lazy submodular) evaluation is used otherwise; both give
	// a greedy dominating set, differing only in center tie decisions.
	UseFM bool
	// F is the number of FM sketch copies when UseFM is set (default 30).
	F int
	// Seed derives the sketch hash family.
	Seed uint64
	// Workers bounds the parallelism of the initial per-node dominating-set
	// sweep (a build-time knob, not a clustering parameter: the clustering
	// is identical for every value). <= 1 runs sequentially.
	Workers int
}

// rawCluster is the output of clustering before metadata enrichment.
type rawCluster struct {
	center  roadnet.NodeID
	members []roadnet.NodeID // includes the center
	dist    []float64        // round-trip distance of each member to center
}

// greedyGDSP partitions all nodes of g into clusters of radius R using the
// greedy (largest incremental dominating set first) heuristic. Dominating
// sets are never materialized globally: the initial sweep stores only the
// count (exact mode) or an FM sketch (FM mode) per node, and membership is
// recovered with one extra bounded search per chosen center. This keeps
// memory at O(|V|) where the paper's description would need O(Σ|Λ(v)|),
// while producing the same greedy selection rule.
func greedyGDSP(g *roadnet.Graph, opts GDSPOptions) ([]rawCluster, error) {
	if opts.Radius <= 0 {
		return nil, fmt.Errorf("core: non-positive cluster radius %v", opts.Radius)
	}
	if opts.UseFM {
		return gdspFM(g, opts)
	}
	return gdspExact(g, opts)
}

// domHeapItem is a lazy-greedy heap entry: count is an upper bound of the
// node's incremental dominating-set size.
type domHeapItem struct {
	node  roadnet.NodeID
	count float64
	stamp int32
}

type domHeap []domHeapItem

func (h domHeap) Len() int { return len(h) }
func (h domHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count > h[j].count
	}
	return h[i].node > h[j].node
}
func (h domHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *domHeap) Push(x any)   { *h = append(*h, x.(domHeapItem)) }
func (h *domHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// gdspExact runs lazy greedy with exact incremental counts. Dominance only
// shrinks as nodes get covered, so stale heap counts are upper bounds and a
// freshly re-evaluated top is the true argmax (same CELF argument as
// IncGreedy's lazy mode).
func gdspExact(g *roadnet.Graph, opts GDSPOptions) ([]rawCluster, error) {
	n := g.NumNodes()
	scratch := roadnet.NewScratch(g)
	twoR := 2 * opts.Radius

	// Initial sweep: one bounded search per node, embarrassingly parallel
	// (each worker owns a scratch and writes disjoint counts[v] slots).
	counts := sweepDomCounts(g, twoR, opts.Workers)
	h := make(domHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, domHeapItem{node: roadnet.NodeID(v), count: counts[v], stamp: 0})
	}
	heap.Init(&h)

	covered := make([]bool, n)
	remaining := n
	var clusters []rawCluster
	var stamp int32 = 1
	for remaining > 0 && h.Len() > 0 {
		top := heap.Pop(&h).(domHeapItem)
		if covered[top.node] {
			continue
		}
		if top.stamp != stamp {
			dom := roadnet.BoundedRoundTripsFrom(g, scratch, top.node, twoR)
			cnt := 0
			for u := range dom {
				if !covered[u] {
					cnt++
				}
			}
			top.count = float64(cnt)
			top.stamp = stamp
			if h.Len() > 0 && top.count < h[0].count {
				heap.Push(&h, top)
				continue
			}
		}
		// Fresh top: select as a center.
		dom := roadnet.BoundedRoundTripsFrom(g, scratch, top.node, twoR)
		cl := rawCluster{center: top.node}
		for u, rt := range dom {
			if !covered[u] {
				covered[u] = true
				remaining--
				cl.members = append(cl.members, u)
				cl.dist = append(cl.dist, rt)
			}
		}
		if len(cl.members) == 0 {
			// Possible only if the node was covered concurrently; skip.
			continue
		}
		sortMembers(&cl)
		clusters = append(clusters, cl)
		stamp++
	}
	return clusters, nil
}

// gdspFM mirrors §4.1.2: dominating sets are summarized as FM sketches, the
// next center is the node with the largest estimated incremental dominating
// set, found with the sorted-scan + own-estimate-bound pruning of §3.5.
// Cluster membership remains exact via a bounded search per chosen center.
func gdspFM(g *roadnet.Graph, opts GDSPOptions) ([]rawCluster, error) {
	n := g.NumNodes()
	f := opts.F
	if f <= 0 {
		f = 30
	}
	scratch := roadnet.NewScratch(g)
	twoR := 2 * opts.Radius

	// Initial sweep: one bounded search + sketch per node, sharded across
	// the build workers (disjoint sketches[v] / own[v] slots per worker).
	sketches := make([]*fm.Sketch, n)
	own := make([]float64, n)
	parallelSweep(g, n, opts.Workers, func(sc *roadnet.DijkstraScratch, lo, hi int) {
		for v := lo; v < hi; v++ {
			sk := fm.NewSketchSeeded(f, opts.Seed+1)
			dom := roadnet.BoundedRoundTripsFrom(g, sc, roadnet.NodeID(v), twoR)
			for u := range dom {
				sk.Add(uint64(u))
			}
			sketches[v] = sk
			own[v] = sk.Estimate()
		}
	})
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if own[order[a]] != own[order[b]] {
			return own[order[a]] > own[order[b]]
		}
		return order[a] > order[b]
	})

	coveredSketch := fm.NewSketchSeeded(f, opts.Seed+1)
	coveredEst := 0.0
	covered := make([]bool, n)
	remaining := n
	var clusters []rawCluster
	for remaining > 0 {
		best := -1
		bestMarg := 0.0
		for _, v := range order {
			if covered[v] {
				continue
			}
			if own[v] <= bestMarg {
				break // sorted by own estimate: nothing better remains
			}
			if marg := fm.UnionEstimate(coveredSketch, sketches[v]) - coveredEst; marg > bestMarg {
				best, bestMarg = v, marg
			}
		}
		if best < 0 {
			// Estimates degenerate (all marginals zero) but nodes remain:
			// fall back to any uncovered node to guarantee termination.
			for _, v := range order {
				if !covered[v] {
					best = v
					break
				}
			}
		}
		dom := roadnet.BoundedRoundTripsFrom(g, scratch, roadnet.NodeID(best), twoR)
		cl := rawCluster{center: roadnet.NodeID(best)}
		for u, rt := range dom {
			if !covered[u] {
				covered[u] = true
				remaining--
				cl.members = append(cl.members, u)
				cl.dist = append(cl.dist, rt)
			}
		}
		if len(cl.members) > 0 {
			sortMembers(&cl)
			clusters = append(clusters, cl)
			coveredSketch.UnionWith(sketches[best])
			coveredEst = coveredSketch.Estimate()
		}
	}
	return clusters, nil
}

// sweepDomCounts computes |Λ(v)| (the size of each node's dominating set at
// round-trip bound twoR) for every node, sharding the bounded searches across
// workers. Each worker owns one scratch and writes disjoint slots, so the
// result is identical for any worker count.
func sweepDomCounts(g *roadnet.Graph, twoR float64, workers int) []float64 {
	n := g.NumNodes()
	counts := make([]float64, n)
	parallelSweep(g, n, workers, func(sc *roadnet.DijkstraScratch, lo, hi int) {
		for v := lo; v < hi; v++ {
			dom := roadnet.BoundedRoundTripsFrom(g, sc, roadnet.NodeID(v), twoR)
			counts[v] = float64(len(dom))
		}
	})
	return counts
}

// sortMembers orders cluster members by node id for determinism (map
// iteration order is random).
func sortMembers(cl *rawCluster) {
	idx := make([]int, len(cl.members))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cl.members[idx[a]] < cl.members[idx[b]] })
	members := make([]roadnet.NodeID, len(idx))
	dist := make([]float64, len(idx))
	for i, j := range idx {
		members[i] = cl.members[j]
		dist[i] = cl.dist[j]
	}
	cl.members = members
	cl.dist = dist
}
