package core

import (
	"context"
	"errors"
	"testing"

	"netclus/internal/tops"
)

// TestQueryCtxCancellation covers the request-deadline path: a canceled
// context must abort the query with the context's error, must never memoize
// a partial cover, and a later un-canceled query must succeed and fill the
// cache as if the canceled attempt never happened.
func TestQueryCtxCancellation(t *testing.T) {
	idx, _ := buildTestIndex(t, 131, false)
	pref := tops.Binary(0.8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.QueryCtx(ctx, QueryOptions{K: 5, Pref: pref}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query returned %v, want context.Canceled", err)
	}
	if st := idx.CoverCacheStats(); st.Entries != 0 {
		t.Fatalf("canceled query left %d cache entries", st.Entries)
	}
	if _, _, _, err := idx.CoverForCtx(ctx, idx.InstanceFor(pref.Tau), pref); !errors.Is(err, context.Canceled) {
		t.Fatalf("CoverForCtx under canceled ctx returned %v", err)
	}
	if st := idx.CoverCacheStats(); st.Entries != 0 {
		t.Fatalf("canceled cover fill left %d cache entries", st.Entries)
	}

	// The same query with a live context must now succeed and be cached.
	res, err := idx.QueryCtx(context.Background(), QueryOptions{K: 5, Pref: pref})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("live query returned no sites")
	}
	if _, _, hit, err := idx.CoverForCtx(context.Background(), idx.InstanceFor(pref.Tau), pref); err != nil {
		t.Fatal(err)
	} else if hit {
		// QueryCtx goes through RepCoverCtx (uncached); the first CoverForCtx
		// fill is this call, so a hit here would mean stale state survived.
		t.Log("cover already cached (unexpected but harmless)")
	}

	// Deadline that lapses mid-flight: run with an immediately-expiring
	// deadline; the checkpoints must surface DeadlineExceeded.
	dctx, dcancel := context.WithTimeout(context.Background(), 0)
	defer dcancel()
	if _, err := idx.QueryCtx(dctx, QueryOptions{K: 5, Pref: tops.Linear(1.2)}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want DeadlineExceeded", err)
	}
}

// TestCoverForCtxWaiterSurvivesCanceledFiller pins the singleflight
// contract: a waiter with a live context must not inherit the filling
// request's cancellation — it retries and gets a cover.
func TestCoverForCtxWaiterSurvivesCanceledFiller(t *testing.T) {
	idx, _ := buildTestIndex(t, 137, false)
	pref := tops.Binary(0.8)
	p := idx.InstanceFor(pref.Tau)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	// The doomed filler claims the entry first and fails...
	if _, _, _, err := idx.CoverForCtx(canceled, p, pref); !errors.Is(err, context.Canceled) {
		t.Fatalf("doomed filler returned %v", err)
	}
	// ...and a live caller right after must succeed, not see the stale
	// cancellation. (Sequential here; the concurrent interleaving where
	// the waiter blocks inside the filler's once.Do exercises the same
	// retry loop, and runs under -race via the engine's e2e tests.)
	cs, reps, _, err := idx.CoverForCtx(context.Background(), p, pref)
	if err != nil {
		t.Fatalf("live caller inherited filler failure: %v", err)
	}
	if cs == nil || len(reps) == 0 {
		t.Fatal("live caller got an empty cover")
	}
}
