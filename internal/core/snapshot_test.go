package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

func TestIndexSerializationRoundTrip(t *testing.T) {
	idx, inst := buildTestIndex(t, 301, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Instances) != len(idx.Instances) {
		t.Fatalf("instances: %d vs %d", len(loaded.Instances), len(idx.Instances))
	}
	if loaded.Gamma() != idx.Gamma() {
		t.Error("gamma mismatch")
	}
	lm, lM := loaded.TauRange()
	om, oM := idx.TauRange()
	if lm != om || lM != oM {
		t.Error("tau range mismatch")
	}
	// Queries must answer identically.
	for _, tau := range []float64{0.4, 0.8, 1.6} {
		pref := tops.Binary(tau)
		a, err := idx.Query(QueryOptions{K: 5, Pref: pref})
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Query(QueryOptions{K: 5, Pref: pref})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.EstimatedUtility-b.EstimatedUtility) > 1e-12 {
			t.Fatalf("τ=%v: utilities differ: %v vs %v", tau, a.EstimatedUtility, b.EstimatedUtility)
		}
		if a.InstanceUsed != b.InstanceUsed || a.NumRepresentatives != b.NumRepresentatives {
			t.Fatalf("τ=%v: structure differs", tau)
		}
		for i := range a.Sites {
			if a.Sites[i] != b.Sites[i] {
				t.Fatalf("τ=%v: site %d differs", tau, i)
			}
		}
	}
}

func TestIndexSerializationPreservesUpdates(t *testing.T) {
	idx, inst := buildTestIndex(t, 303, false)
	// Delete some trajectories and a site; the round trip must keep the
	// mutated state.
	if err := idx.DeleteTrajectory(0); err != nil {
		t.Fatal(err)
	}
	if err := idx.DeleteTrajectory(5); err != nil {
		t.Fatal(err)
	}
	if err := idx.DeleteSite(inst.Sites[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumAlive() != idx.NumAlive() {
		t.Fatalf("alive count: %d vs %d", loaded.NumAlive(), idx.NumAlive())
	}
	a, _ := idx.Query(QueryOptions{K: 5, Pref: tops.Binary(0.8)})
	b, _ := loaded.Query(QueryOptions{K: 5, Pref: tops.Binary(0.8)})
	if math.Abs(a.EstimatedUtility-b.EstimatedUtility) > 1e-12 {
		t.Fatalf("post-update utilities differ: %v vs %v", a.EstimatedUtility, b.EstimatedUtility)
	}
}

func TestReadIndexRejectsMismatchedDataset(t *testing.T) {
	idx, _ := buildTestIndex(t, 307, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// A different seed produces a different dataset; even when the shape
	// (node and trajectory counts) happens to coincide, the fingerprint
	// must reject it.
	_, other := buildTestIndex(t, 311, false)
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("mismatched dataset accepted")
	}
}

func TestReadIndexRejectsSiteReordering(t *testing.T) {
	// Dense site ids follow the instance's site order, so a snapshot
	// attached to the same dataset with reordered sites would silently
	// mislabel every answer. The fingerprint covers site order.
	idx, inst := buildTestIndex(t, 331, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sites := append([]roadnet.NodeID(nil), inst.Sites...)
	sites[0], sites[1] = sites[1], sites[0]
	other, err := tops.NewInstance(inst.G, inst.Trajs, sites)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("site-reordered dataset accepted")
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	_, inst := buildTestIndex(t, 313, false)
	for name, data := range map[string][]byte{
		"empty":        {},
		"bad magic":    {1, 2, 3, 4},
		"old v1 magic": {0x31, 0x49, 0x43, 0x4e, 0, 0, 0, 0},
		"truncated":    {0x4e, 0x43, 0x53, 0x53, 2, 0, 0, 0},
	} {
		if _, err := ReadIndex(bytes.NewReader(data), inst); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadIndexRejectsShortenedLadder(t *testing.T) {
	// A corrupt instance-count field that decodes fewer rungs than the
	// header's (γ, τmin, τmax) imply must not "load cleanly" and then
	// silently serve high-τ queries from the wrong rung.
	idx, inst := buildTestIndex(t, 351, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// nInst sits right after the fixed header (56 bytes since the v3 WAL
	// LSN field) and the two byte-per-entry masks.
	off := 56 + inst.G.NumNodes() + inst.Trajs.Len()
	nInst := binary.LittleEndian.Uint32(data[off:])
	if int(nInst) != len(idx.Instances) {
		t.Fatalf("instance count field not at expected offset: %d", nInst)
	}
	binary.LittleEndian.PutUint32(data[off:], nInst-1)
	if _, err := ReadIndex(bytes.NewReader(data), inst); err == nil {
		t.Error("shortened ladder accepted")
	}
}

func TestReadIndexRejectsUnbuildableHeader(t *testing.T) {
	// A header whose (γ, τ range) implies a ladder Build could never
	// produce must be rejected before any instance decodes — even when
	// the CRC is made consistent (crafted file, not random corruption).
	// Otherwise a 0-instance index could load and panic on first Query.
	idx, inst := buildTestIndex(t, 357, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// γ sits at bytes 24..32 (after magic, version, fingerprint, WAL LSN).
	binary.LittleEndian.PutUint64(data[24:], math.Float64bits(1e-9))
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	_, err := ReadIndex(bytes.NewReader(data), inst)
	if err == nil || !strings.Contains(err.Error(), "ladder") {
		t.Errorf("unbuildable header accepted or misreported: %v", err)
	}
}

func TestReadIndexRejectsBitFlips(t *testing.T) {
	// In-range payload corruption passes every structural check; the CRC32
	// trailer is what turns it into a load error instead of silently wrong
	// query answers.
	idx, inst := buildTestIndex(t, 353, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, off := range []int{60, len(valid) / 2, len(valid) - 10} {
		data := append([]byte(nil), valid...)
		data[off] ^= 0x01
		if _, err := ReadIndex(bytes.NewReader(data), inst); err == nil {
			t.Errorf("bit flip at offset %d accepted", off)
		}
	}
}

func TestReadIndexRejectsTrailingData(t *testing.T) {
	idx, inst := buildTestIndex(t, 359, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), 0xde, 0xad)
	_, err := ReadIndex(bytes.NewReader(data), inst)
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing data accepted or misreported: %v", err)
	}
}

func TestReadIndexRejectsFutureVersion(t *testing.T) {
	idx, inst := buildTestIndex(t, 329, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint32(data[4:8], snapshotVersion+1)
	_, err := ReadIndex(bytes.NewReader(data), inst)
	// The message must name both sides of the mismatch — the snapshot's
	// version and the newest one this reader supports — so an operator can
	// tell a stale binary from a stale snapshot.
	wantFrag := fmt.Sprintf("snapshot format v%d, this reader supports <=v%d", snapshotVersion+1, snapshotVersion)
	if err == nil || !strings.Contains(err.Error(), wantFrag) {
		t.Errorf("future version accepted or misreported: %v (want %q)", err, wantFrag)
	}
}

func TestSnapshotCarriesWalLSN(t *testing.T) {
	idx, inst := buildTestIndex(t, 331, false)
	idx.SetWalLSN(41)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(bytes.NewReader(buf.Bytes()), inst)
	if err != nil {
		t.Fatal(err)
	}
	if got.WalLSN() != 41 {
		t.Errorf("loaded WAL LSN %d, want 41", got.WalLSN())
	}
}

func TestSnapshotRoundTripsLongLadder(t *testing.T) {
	// A small γ legitimately produces a ladder far beyond the old fixed
	// 64-instance load cap; the cap is now derived from the header, so
	// every index Build can produce must also load.
	_, inst := buildTestIndex(t, 349, false)
	idx, err := Build(inst, Options{Gamma: 0.04, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Instances) <= 64 {
		t.Fatalf("ladder only %d rungs; test needs > 64 to be meaningful", len(idx.Instances))
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()), inst)
	if err != nil {
		t.Fatalf("long-ladder snapshot rejected: %v", err)
	}
	if len(loaded.Instances) != len(idx.Instances) {
		t.Fatalf("instances: %d vs %d", len(loaded.Instances), len(idx.Instances))
	}
}

func TestSnapshotByteIdenticalAcrossWorkers(t *testing.T) {
	// Two builds of the same dataset must produce byte-identical snapshots
	// regardless of build parallelism — the property that makes snapshots
	// shippable artifacts and doubles as a build-determinism checksum.
	for _, useFM := range []bool{false, true} {
		_, inst := buildTestIndex(t, 337, useFM)
		var bufs [3]bytes.Buffer
		for i, workers := range []int{1, 4, 4} {
			idx, err := Build(inst, Options{
				Gamma: 0.75, TauMin: 0.4, TauMax: 6.4, Workers: workers,
				GDSP: GDSPOptions{UseFM: useFM, F: 16, Seed: 7},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := idx.WriteTo(&bufs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
			t.Errorf("useFM=%v: workers=1 and workers=4 snapshots differ", useFM)
		}
		if !bytes.Equal(bufs[1].Bytes(), bufs[2].Bytes()) {
			t.Errorf("useFM=%v: two workers=4 snapshots differ", useFM)
		}
	}
}

func TestLoadedIndexInvalidatesCoverCacheOnUpdate(t *testing.T) {
	// A warm-started index must keep the §6 invalidation contract: a
	// mutation after load drops every memoized cover so no stale covering
	// structure can serve a post-update query.
	idx, inst := buildTestIndex(t, 341, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()), inst)
	if err != nil {
		t.Fatal(err)
	}
	pref := tops.Binary(0.8)
	p := loaded.InstanceFor(pref.Tau)
	if _, _, hit := loaded.CoverFor(p, pref); hit {
		t.Fatal("first cover on loaded index served from cache")
	}
	if _, _, hit := loaded.CoverFor(p, pref); !hit {
		t.Fatal("second cover not served from cache")
	}
	if st := loaded.CoverCacheStats(); st.Entries == 0 {
		t.Fatal("no cover memoized on loaded index")
	}
	tr, err := trajectory.New(inst.G, inst.Trajs.Get(0).Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.AddTrajectory(tr); err != nil {
		t.Fatal(err)
	}
	if st := loaded.CoverCacheStats(); st.Entries != 0 {
		t.Fatalf("update left %d stale cover entries", st.Entries)
	}
	if _, _, hit := loaded.CoverFor(p, pref); hit {
		t.Fatal("post-update cover served from stale cache")
	}
}

func FuzzLoadSnapshot(f *testing.F) {
	idx, inst := buildTestIndex(f, 347, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:16])
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 16, 40, len(valid) / 3, 2 * len(valid) / 3} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := ReadIndex(bytes.NewReader(data), inst); err != nil {
			return // rejected: the only acceptable failure mode
		}
		// Accepted input must yield a fully serviceable index: queries and
		// updates must not panic. Updates mutate the attached instance, so
		// re-attach to a private copy to keep the corpus instance pristine
		// for later iterations.
		priv := trajectory.NewStore(inst.Trajs.Len())
		inst.Trajs.ForEach(func(_ trajectory.ID, tr *trajectory.Trajectory) { priv.Add(tr) })
		privInst, err := tops.NewInstance(inst.G, priv, append([]roadnet.NodeID(nil), inst.Sites...))
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadIndex(bytes.NewReader(data), privInst)
		if err != nil {
			t.Fatalf("accepted input rejected on an identical instance: %v", err)
		}
		if _, err := loaded.Query(QueryOptions{K: 3, Pref: tops.Binary(0.8)}); err != nil {
			t.Fatalf("accepted snapshot cannot serve queries: %v", err)
		}
		tr, err := trajectory.New(inst.G, inst.Trajs.Get(0).Nodes)
		if err != nil {
			t.Fatal(err)
		}
		tid, err := loaded.AddTrajectory(tr)
		if err != nil {
			t.Fatalf("accepted snapshot cannot absorb updates: %v", err)
		}
		if err := loaded.DeleteTrajectory(tid); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLoadedIndexSupportsUpdates(t *testing.T) {
	idx, inst := buildTestIndex(t, 317, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trajectory.New(inst.G, inst.Trajs.Get(1).Nodes)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := loaded.AddTrajectory(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.DeleteTrajectory(tid); err != nil {
		t.Fatal(err)
	}
	for p := range loaded.Instances {
		if err := loaded.validateInstance(p); err != nil {
			t.Fatalf("instance %d after updates on loaded index: %v", p, err)
		}
	}
}
