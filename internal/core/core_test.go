package core

import (
	"math"
	"testing"

	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// buildTestIndex assembles a small deterministic city, trajectories, sites,
// and a NETCLUS index with a fixed τ ladder.
func buildTestIndex(t testing.TB, seed int64, useFM bool) (*Index, *tops.Instance) {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 500, SpanKm: 10, Jitter: 0.2,
		OneWayFrac: 0.1, RemoveFrac: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 60, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 120, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(inst, Options{
		Gamma: 0.75, TauMin: 0.4, TauMax: 6.4,
		GDSP: GDSPOptions{UseFM: useFM, F: 16, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return idx, inst
}

func TestGDSPInvariants(t *testing.T) {
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 300, SpanKm: 8, Jitter: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := city.Graph
	for _, useFM := range []bool{false, true} {
		for _, radius := range []float64{0.3, 0.8, 2.0} {
			clusters, err := greedyGDSP(g, GDSPOptions{Radius: radius, UseFM: useFM, F: 16, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]bool, g.NumNodes())
			for _, cl := range clusters {
				for i, v := range cl.members {
					if seen[v] {
						t.Fatalf("R=%v fm=%v: node %d in two clusters", radius, useFM, v)
					}
					seen[v] = true
					if cl.dist[i] > 2*radius+1e-9 {
						t.Fatalf("R=%v fm=%v: member at %v > 2R", radius, useFM, cl.dist[i])
					}
					// Oracle check on a sample: stored distance equals the
					// true round trip to the center.
					if i == 0 || i == len(cl.members)-1 {
						if rt := roadnet.RoundTrip(g, v, cl.center); math.Abs(rt-cl.dist[i]) > 1e-9 {
							t.Fatalf("stored dist %v != oracle %v", cl.dist[i], rt)
						}
					}
				}
			}
			for v, ok := range seen {
				if !ok {
					t.Fatalf("R=%v fm=%v: node %d unclustered", radius, useFM, v)
				}
			}
		}
	}
}

func TestGDSPClusterCountShrinksWithRadius(t *testing.T) {
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 400, SpanKm: 10, Jitter: 0.2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.MaxInt
	for _, radius := range []float64{0.2, 0.5, 1.2, 3.0} {
		clusters, err := greedyGDSP(city.Graph, GDSPOptions{Radius: radius})
		if err != nil {
			t.Fatal(err)
		}
		if len(clusters) > prev {
			t.Fatalf("cluster count grew with radius: %d after %d", len(clusters), prev)
		}
		prev = len(clusters)
	}
	if prev <= 0 {
		t.Fatal("no clusters at coarsest radius")
	}
}

func TestGDSPRejectsBadRadius(t *testing.T) {
	city, _ := gen.GenerateCity(gen.CityConfig{Topology: gen.GridMesh, Nodes: 100, SpanKm: 4, Seed: 1})
	if _, err := greedyGDSP(city.Graph, GDSPOptions{Radius: 0}); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := greedyGDSP(city.Graph, GDSPOptions{Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestBuildLadder(t *testing.T) {
	idx, _ := buildTestIndex(t, 11, false)
	// t = floor(log_1.75(16)) + 1 = 5 instances.
	if len(idx.Instances) != 5 {
		t.Fatalf("ladder has %d instances, want 5", len(idx.Instances))
	}
	for p, ins := range idx.Instances {
		wantR := 0.1 * math.Pow(1.75, float64(p))
		if math.Abs(ins.Radius-wantR) > 1e-9 {
			t.Errorf("instance %d radius %v, want %v", p, ins.Radius, wantR)
		}
		if err := idx.validateInstance(p); err != nil {
			t.Errorf("instance %d: %v", p, err)
		}
	}
	// Cluster counts decrease along the ladder.
	for p := 1; p < len(idx.Instances); p++ {
		if len(idx.Instances[p].Clusters) > len(idx.Instances[p-1].Clusters) {
			t.Errorf("cluster count grew from instance %d to %d", p-1, p)
		}
	}
}

func TestInstanceFor(t *testing.T) {
	idx, _ := buildTestIndex(t, 13, false)
	cases := []struct {
		tau  float64
		want int
	}{
		{0.1, 0},  // below τmin clamps to finest
		{0.4, 0},  // τmin
		{0.69, 0}, // just below 0.4*1.75
		{0.71, 1},
		{2.0, 2}, // 0.4*1.75^2 = 1.225; 0.4*1.75^3 = 2.14
		{6.0, 4}, // 6.0/0.4=15, log1.75(15)=4.84 -> 4
		{100, 4}, // clamps to coarsest
	}
	for _, c := range cases {
		if got := idx.InstanceFor(c.tau); got != c.want {
			t.Errorf("InstanceFor(%v) = %d, want %d", c.tau, got, c.want)
		}
	}
	// The chosen instance must satisfy 4R_p <= τ (when not clamped).
	for _, tau := range []float64{0.4, 0.8, 1.6, 3.2, 6.0} {
		p := idx.InstanceFor(tau)
		if r := idx.Instances[p].Radius; 4*r > tau+1e-9 {
			t.Errorf("τ=%v: instance radius %v violates 4R <= τ", tau, r)
		}
	}
}

func TestRepresentativesAreSites(t *testing.T) {
	idx, inst := buildTestIndex(t, 17, false)
	siteSet := map[roadnet.NodeID]bool{}
	for _, s := range inst.Sites {
		siteSet[s] = true
	}
	for p, ins := range idx.Instances {
		reps := 0
		for ci := range ins.Clusters {
			cl := &ins.Clusters[ci]
			if cl.Rep == roadnet.InvalidNode {
				continue
			}
			reps++
			if !siteSet[cl.Rep] {
				t.Fatalf("instance %d: representative %d is not a site", p, cl.Rep)
			}
			// Representative must be a member of its own cluster.
			found := false
			for i, v := range cl.Members {
				if v == cl.Rep {
					found = true
					if math.Abs(cl.MemberDr[i]-cl.RepDr) > 1e-9 {
						t.Fatalf("RepDr mismatch")
					}
					// No other site in the cluster is closer (§4.2).
					for j, u := range cl.Members {
						if siteSet[u] && cl.MemberDr[j] < cl.RepDr-1e-9 {
							t.Fatalf("closer site %d ignored as representative", u)
						}
					}
				}
			}
			if !found {
				t.Fatalf("representative not a member of its cluster")
			}
		}
		if reps == 0 {
			t.Fatalf("instance %d has no representatives", p)
		}
	}
}

func TestEstimatedDetourUpperBoundsExact(t *testing.T) {
	// d̂r >= dr (§5.1): the estimate never claims a site is closer than it
	// is, which is what makes T̂C ⊆ TC.
	idx, inst := buildTestIndex(t, 19, false)
	p := idx.InstanceFor(0.8)
	ins := idx.Instances[p]
	checked := 0
	for ci := range ins.Clusters {
		cl := &ins.Clusters[ci]
		if cl.Rep == roadnet.InvalidNode || len(cl.TL) == 0 {
			continue
		}
		for _, te := range cl.TL[:min(3, len(cl.TL))] {
			dHat := idx.EstimatedDetour(p, te.Traj, ClusterID(ci))
			if math.IsInf(dHat, 1) {
				continue
			}
			exact := tops.ExactDetour(inst.G, inst.Trajs.Get(te.Traj), cl.Rep)
			if dHat < exact-1e-9 {
				t.Fatalf("cluster %d traj %d: d̂r %v < dr %v", ci, te.Traj, dHat, exact)
			}
			checked++
		}
		if checked > 60 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no estimate checked")
	}
}

func TestTCHatSubsetOfTC(t *testing.T) {
	// Every trajectory NETCLUS counts as covered is truly covered
	// (T̂C(r) ⊆ TC(r), §5.1).
	idx, inst := buildTestIndex(t, 23, false)
	distIdx, err := tops.BuildDistanceIndex(inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	tau := 1.2
	pref := tops.Binary(tau)
	p := idx.InstanceFor(tau)
	cs, repClusters := idx.RepCover(p, pref)
	for ri, ci := range repClusters {
		rep := idx.Instances[p].Clusters[ci].Rep
		sid := idx.siteID[rep]
		trajs, _ := cs.TC(int32(ri))
		for _, tr := range trajs {
			exact := distIdx.Detour(trajectory.ID(tr), tops.SiteID(sid))
			if exact > tau+1e-9 {
				t.Fatalf("T̂C claims coverage at dr=%v > τ=%v", exact, tau)
			}
		}
	}
}

func TestQueryBasic(t *testing.T) {
	idx, inst := buildTestIndex(t, 29, false)
	res, err := idx.Query(QueryOptions{K: 5, Pref: tops.Binary(0.8)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 || len(res.Sites) > 5 {
		t.Fatalf("selected %d sites", len(res.Sites))
	}
	if res.EstimatedUtility <= 0 {
		t.Error("zero estimated utility on dense instance")
	}
	// Sites must be distinct candidate sites.
	seen := map[roadnet.NodeID]bool{}
	siteSet := map[roadnet.NodeID]bool{}
	for _, s := range inst.Sites {
		siteSet[s] = true
	}
	for _, s := range res.Sites {
		if seen[s] {
			t.Fatal("duplicate site in answer")
		}
		seen[s] = true
		if !siteSet[s] {
			t.Fatalf("answer node %d is not a candidate site", s)
		}
	}
}

func TestQueryQualityVsIncGreedy(t *testing.T) {
	// NETCLUS utility (measured exactly) should be within a reasonable
	// factor of INC-GREEDY's — the paper reports ~93% on average; allow a
	// generous 60% here because the test instance is tiny.
	idx, inst := buildTestIndex(t, 31, false)
	distIdx, err := tops.BuildDistanceIndex(inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0.8, 1.6} {
		pref := tops.Binary(tau)
		cs, err := tops.BuildCoverSets(distIdx, pref)
		if err != nil {
			t.Fatal(err)
		}
		incg, err := tops.IncGreedy(cs, tops.GreedyOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		nc, err := idx.Query(QueryOptions{K: 5, Pref: pref})
		if err != nil {
			t.Fatal(err)
		}
		exactU, _ := idx.EvaluateExact(distIdx, pref, nc.Sites)
		if exactU < 0.6*incg.Utility {
			t.Errorf("τ=%v: NETCLUS %v below 60%% of INCG %v", tau, exactU, incg.Utility)
		}
		if nc.EstimatedUtility > exactU+1e-9 {
			t.Errorf("τ=%v: estimated utility %v exceeds exact %v (d̂r should under-count)", tau, nc.EstimatedUtility, exactU)
		}
	}
}

func TestQueryFMNetClus(t *testing.T) {
	idx, _ := buildTestIndex(t, 37, false)
	res, err := idx.Query(QueryOptions{K: 5, Pref: tops.Binary(0.8), UseFM: true, F: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("FM query selected nothing")
	}
	// FM on non-binary preference must fail.
	if _, err := idx.Query(QueryOptions{K: 5, Pref: tops.Linear(0.8), UseFM: true}); err == nil {
		t.Error("FM query with non-binary preference accepted")
	}
}

func TestQueryExtremeTaus(t *testing.T) {
	idx, _ := buildTestIndex(t, 41, false)
	// τ below τmin: still answers (finest instance).
	if res, err := idx.Query(QueryOptions{K: 3, Pref: tops.Binary(0.05)}); err != nil {
		t.Fatalf("tiny τ: %v", err)
	} else if res.InstanceUsed != 0 {
		t.Errorf("tiny τ used instance %d", res.InstanceUsed)
	}
	// τ above τmax: coarsest instance, any k sites.
	if res, err := idx.Query(QueryOptions{K: 3, Pref: tops.Binary(1000)}); err != nil {
		t.Fatalf("huge τ: %v", err)
	} else if res.InstanceUsed != len(idx.Instances)-1 {
		t.Errorf("huge τ used instance %d", res.InstanceUsed)
	}
}

func TestQueryValidation(t *testing.T) {
	idx, _ := buildTestIndex(t, 43, false)
	if _, err := idx.Query(QueryOptions{K: 0, Pref: tops.Binary(0.8)}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := idx.Query(QueryOptions{K: 3, Pref: tops.Preference{Tau: -1}}); err == nil {
		t.Error("negative τ accepted")
	}
}

func TestQueryKLargerThanReps(t *testing.T) {
	idx, _ := buildTestIndex(t, 47, false)
	res, err := idx.Query(QueryOptions{K: 10_000, Pref: tops.Binary(3.0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) > res.NumRepresentatives {
		t.Fatalf("selected %d > %d representatives", len(res.Sites), res.NumRepresentatives)
	}
}

func TestBuildValidation(t *testing.T) {
	_, inst := buildTestIndex(t, 53, false)
	if _, err := Build(inst, Options{Gamma: 2}); err == nil {
		t.Error("γ>1 accepted")
	}
	if _, err := Build(inst, Options{Gamma: 0.75, TauMin: 5, TauMax: 1}); err == nil {
		t.Error("τmin>τmax accepted")
	}
	// Near-zero γ over a wide τ range implies a ladder beyond the 4096-rung
	// ceiling shared with the snapshot decoder; it must fail fast here, not
	// build an unloadable index.
	if _, err := Build(inst, Options{Gamma: 0.0005, TauMin: 0.4, TauMax: 6.4}); err == nil {
		t.Error("5000+-rung ladder accepted")
	}
	// γ small enough that 1+γ == 1 in float64: ladderRungs degenerates to
	// int(+Inf); must error, not panic in make().
	if _, err := Build(inst, Options{Gamma: 1e-300, TauMin: 0.4, TauMax: 6.4}); err == nil {
		t.Error("underflowing γ accepted")
	}
}

func TestGammaTradeoff(t *testing.T) {
	// Table 7's driver: smaller γ means more instances (more space).
	_, inst := buildTestIndex(t, 59, false)
	small, err := Build(inst, Options{Gamma: 0.25, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Build(inst, Options{Gamma: 1.0, TauMin: 0.4, TauMax: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Instances) <= len(large.Instances) {
		t.Errorf("γ=0.25 has %d instances, γ=1.0 has %d", len(small.Instances), len(large.Instances))
	}
	if small.MemoryBytes() <= large.MemoryBytes() {
		t.Errorf("γ=0.25 memory %d not above γ=1.0 memory %d", small.MemoryBytes(), large.MemoryBytes())
	}
}

func TestStats(t *testing.T) {
	idx, _ := buildTestIndex(t, 61, false)
	prevClusters := math.MaxInt
	for p := range idx.Instances {
		st := idx.Stats(p)
		if st.NumClusters <= 0 || st.NumClusters > prevClusters {
			t.Errorf("instance %d: clusters %d (prev %d)", p, st.NumClusters, prevClusters)
		}
		prevClusters = st.NumClusters
		if st.AvgMembers < 1 {
			t.Errorf("instance %d: avg members %v < 1", p, st.AvgMembers)
		}
	}
	// Mean cluster size grows with the radius (Table 11 trend).
	first, last := idx.Stats(0), idx.Stats(len(idx.Instances)-1)
	if last.AvgMembers <= first.AvgMembers {
		t.Errorf("avg members did not grow: %v -> %v", first.AvgMembers, last.AvgMembers)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
