package core

import (
	"fmt"
	"math"

	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// Dynamic updates (§6). The road network itself is immutable ("we assume
// that the underlying road network does not change"); sites and
// trajectories can be added and removed, and every index instance absorbs
// the change incrementally.

// AddSite registers node v as a new candidate site. Per §6 the node already
// belongs to a cluster in every instance (S ⊆ V); the update marks it and
// possibly improves the cluster representative. It returns an error when v
// is invalid or already a site.
func (idx *Index) AddSite(v roadnet.NodeID) error {
	if v < 0 || int(v) >= idx.inst.G.NumNodes() {
		return fmt.Errorf("core: AddSite: node %d outside graph", v)
	}
	if idx.isSite[v] {
		return fmt.Errorf("core: AddSite: node %d is already a site", v)
	}
	idx.isSite[v] = true
	idx.siteID[v] = int32(len(idx.inst.Sites))
	idx.inst.Sites = append(idx.inst.Sites, v)
	for _, ins := range idx.Instances {
		ci := ins.NodeCluster[v]
		if ci == InvalidCluster {
			continue
		}
		maybeTakeRep(&ins.Clusters[ci], v, ins.nodeCenterDr[v])
	}
	idx.invalidateCovers(true)
	return nil
}

// maybeTakeRep installs v as cluster representative when it beats the
// current one under the canonical (distance, node id) order — the same
// order chooseRepresentative selects by. Breaking exact-distance ties by
// node id (rather than keeping the incumbent) makes the representative a
// pure function of the current site set, independent of update history,
// which the sharded engine's cross-shard ownership reduction relies on:
// a stateless reduce over per-shard representatives can only reproduce the
// single-shard representative if both are the same canonical argmin.
func maybeTakeRep(cl *Cluster, v roadnet.NodeID, d float64) {
	if d < cl.RepDr || (d == cl.RepDr && v < cl.Rep) {
		cl.Rep = v
		cl.RepDr = d
	}
}

// DeleteSite untags node v as a candidate site. If v was a cluster
// representative, the next-closest site in the cluster takes over (§4.2);
// clusters left without sites simply stop fielding a representative.
//
// The site list is maintained by swap-remove: the last site moves into the
// deleted slot and only its dense id is patched, so the removal is O(1)
// in the site count instead of the former O(|S|) splice-plus-renumber.
// Site order therefore is not insertion order after a deletion; nothing
// outside build-time τ estimation ever relied on it, and the siteID table
// stays the single source of truth for the Sites index of every node.
func (idx *Index) DeleteSite(v roadnet.NodeID) error {
	if v < 0 || int(v) >= idx.inst.G.NumNodes() || !idx.isSite[v] {
		return fmt.Errorf("core: DeleteSite: node %d is not a site", v)
	}
	slot := idx.siteID[v]
	last := len(idx.inst.Sites) - 1
	if moved := idx.inst.Sites[last]; moved != v {
		idx.inst.Sites[slot] = moved
		idx.siteID[moved] = slot
	}
	idx.inst.Sites = idx.inst.Sites[:last]
	idx.isSite[v] = false
	idx.siteID[v] = -1
	for _, ins := range idx.Instances {
		ci := ins.NodeCluster[v]
		if ci == InvalidCluster {
			continue
		}
		if ins.Clusters[ci].Rep == v {
			idx.chooseRepresentative(ins, ci)
		}
	}
	idx.invalidateCovers(true)
	return nil
}

// AddTrajectory ingests a new trajectory: it joins the store and the TL /
// CC structures of every instance (§6). The returned id addresses the
// trajectory in later deletions.
func (idx *Index) AddTrajectory(tr *trajectory.Trajectory) (trajectory.ID, error) {
	if tr == nil {
		return 0, fmt.Errorf("core: AddTrajectory: nil trajectory")
	}
	if err := tr.Validate(); err != nil {
		return 0, fmt.Errorf("core: AddTrajectory: %w", err)
	}
	for _, v := range tr.Nodes {
		if v < 0 || int(v) >= idx.inst.G.NumNodes() {
			return 0, fmt.Errorf("core: AddTrajectory: node %d outside graph", v)
		}
	}
	tid := idx.trajs.Add(tr)
	idx.alive = append(idx.alive, true)
	for _, ins := range idx.Instances {
		registerTrajectory(ins, tid, tr)
	}
	idx.invalidateCovers(false)
	return tid, nil
}

// DeleteTrajectory removes trajectory tid from every instance using the
// inverse map CC (§6) and marks it dead for query-time filtering.
func (idx *Index) DeleteTrajectory(tid trajectory.ID) error {
	if int(tid) < 0 || int(tid) >= len(idx.alive) {
		return fmt.Errorf("core: DeleteTrajectory: id %d out of range", tid)
	}
	if !idx.alive[tid] {
		return fmt.Errorf("core: DeleteTrajectory: id %d already deleted", tid)
	}
	idx.alive[tid] = false
	for _, ins := range idx.Instances {
		if int(tid) >= len(ins.CC) {
			continue
		}
		for _, ci := range ins.CC[tid] {
			tl := ins.Clusters[ci].TL
			for i := range tl {
				if tl[i].Traj == tid {
					ins.Clusters[ci].TL = append(tl[:i], tl[i+1:]...)
					break
				}
			}
		}
		ins.CC[tid] = nil
	}
	idx.invalidateCovers(false)
	return nil
}

// validateInstance checks structural invariants of an instance; used by
// tests and available for debugging after batches of updates.
func (idx *Index) validateInstance(p int) error {
	ins := idx.Instances[p]
	// Every node clustered exactly once, within 2R of its center.
	seen := make([]bool, idx.inst.G.NumNodes())
	for ci := range ins.Clusters {
		cl := &ins.Clusters[ci]
		for i, v := range cl.Members {
			if seen[v] {
				return fmt.Errorf("node %d in two clusters", v)
			}
			seen[v] = true
			if ins.NodeCluster[v] != ClusterID(ci) {
				return fmt.Errorf("node %d cluster map mismatch", v)
			}
			if cl.MemberDr[i] > 2*ins.Radius+1e-9 {
				return fmt.Errorf("node %d at %v exceeds 2R=%v", v, cl.MemberDr[i], 2*ins.Radius)
			}
		}
		if cl.Rep != roadnet.InvalidNode {
			if !idx.isSite[cl.Rep] {
				return fmt.Errorf("representative %d is not a site", cl.Rep)
			}
			if math.IsInf(cl.RepDr, 1) {
				return fmt.Errorf("representative %d with infinite distance", cl.Rep)
			}
		}
		// The representative must be canonical: the (distance, node id)
		// argmin over the cluster's sites, never a history-dependent
		// leftover. The sharded ownership reduction depends on this.
		want := roadnet.InvalidNode
		wantDr := math.Inf(1)
		for i, v := range cl.Members {
			if idx.isSite[v] && (cl.MemberDr[i] < wantDr || (cl.MemberDr[i] == wantDr && v < want)) {
				want = v
				wantDr = cl.MemberDr[i]
			}
		}
		if cl.Rep != want {
			return fmt.Errorf("cluster %d representative %d is not the canonical argmin %d", ci, cl.Rep, want)
		}
		// TL sorted-unique per trajectory id is not required, but entries
		// must be alive-or-dead consistent and unique.
		tlSeen := make(map[trajectory.ID]bool, len(cl.TL))
		for _, te := range cl.TL {
			if tlSeen[te.Traj] {
				return fmt.Errorf("cluster %d lists trajectory %d twice", ci, te.Traj)
			}
			tlSeen[te.Traj] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("node %d unclustered", v)
		}
	}
	return nil
}
