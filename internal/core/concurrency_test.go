package core

import (
	"math"
	"sync"
	"testing"

	"netclus/internal/tops"
)

func TestParallelBuildDeterministic(t *testing.T) {
	// Two builds over identical inputs must produce identical ladders
	// regardless of goroutine scheduling.
	a, _ := buildTestIndex(t, 501, false)
	b, _ := buildTestIndex(t, 501, false)
	if len(a.Instances) != len(b.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(a.Instances), len(b.Instances))
	}
	for p := range a.Instances {
		ia, ib := a.Instances[p], b.Instances[p]
		if ia.Radius != ib.Radius || len(ia.Clusters) != len(ib.Clusters) {
			t.Fatalf("instance %d shape differs", p)
		}
		for ci := range ia.Clusters {
			ca, cb := &ia.Clusters[ci], &ib.Clusters[ci]
			if ca.Center != cb.Center || ca.Rep != cb.Rep || len(ca.Members) != len(cb.Members) {
				t.Fatalf("instance %d cluster %d differs", p, ci)
			}
		}
	}
	// Queries agree exactly.
	for _, tau := range []float64{0.4, 0.8, 1.6} {
		qa, err := a.Query(QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			t.Fatal(err)
		}
		qb, err := b.Query(QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(qa.EstimatedUtility-qb.EstimatedUtility) > 1e-12 {
			t.Fatalf("τ=%v: utilities differ", tau)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	// The index is immutable during queries; concurrent readers must not
	// race (run with -race) and must agree with a sequential baseline.
	idx, _ := buildTestIndex(t, 503, false)
	taus := []float64{0.4, 0.8, 1.2, 1.6, 2.4}
	want := make([]float64, len(taus))
	for i, tau := range taus {
		res, err := idx.Query(QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.EstimatedUtility
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for round := 0; round < 8; round++ {
		for i, tau := range taus {
			wg.Add(1)
			go func(i int, tau float64) {
				defer wg.Done()
				res, err := idx.Query(QueryOptions{K: 5, Pref: tops.Binary(tau)})
				if err != nil {
					errCh <- err
					return
				}
				if math.Abs(res.EstimatedUtility-want[i]) > 1e-12 {
					errCh <- errMismatch{}
				}
			}(i, tau)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "concurrent query result differs from sequential" }
