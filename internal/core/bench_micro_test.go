package core

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"netclus/internal/tops"
)

func BenchmarkGDSPExact(b *testing.B) {
	_, inst := buildTestIndex(b, 201, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := greedyGDSP(inst.G, GDSPOptions{Radius: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGDSPFM(b *testing.B) {
	_, inst := buildTestIndex(b, 202, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := greedyGDSP(inst.G, GDSPOptions{Radius: 0.5, UseFM: true, F: 30, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild compares the sequential baseline against the
// all-cores parallel build (the CI bench job records both; the acceptance
// assertion lives in TestParallelBuildSpeedup).
func BenchmarkIndexBuild(b *testing.B) {
	_, inst := buildTestIndex(b, 203, false)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.NumCPU()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(inst, Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4, Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotSave measures snapshot encoding throughput.
func BenchmarkSnapshotSave(b *testing.B) {
	idx, _ := buildTestIndex(b, 208, false)
	var probe bytes.Buffer
	if _, err := idx.WriteTo(&probe); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(probe.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures warm-start decoding (including structural
// validation and the dataset fingerprint check).
func BenchmarkSnapshotLoad(b *testing.B) {
	idx, inst := buildTestIndex(b, 209, false)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadIndex(bytes.NewReader(buf.Bytes()), inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	idx, _ := buildTestIndex(b, 204, false)
	pref := tops.Binary(0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Query(QueryOptions{K: 5, Pref: pref}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryFM(b *testing.B) {
	idx, _ := buildTestIndex(b, 205, false)
	pref := tops.Binary(0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Query(QueryOptions{K: 5, Pref: pref, UseFM: true, F: 30, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepCover(b *testing.B) {
	idx, _ := buildTestIndex(b, 206, false)
	pref := tops.Binary(0.8)
	p := idx.InstanceFor(pref.Tau)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.RepCover(p, pref)
	}
}

func BenchmarkAddDeleteTrajectory(b *testing.B) {
	idx, inst := buildTestIndex(b, 207, false)
	tr := inst.Trajs.Get(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid, err := idx.AddTrajectory(tr)
		if err != nil {
			b.Fatal(err)
		}
		if err := idx.DeleteTrajectory(tid); err != nil {
			b.Fatal(err)
		}
	}
}
