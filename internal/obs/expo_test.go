package obs

import (
	"strings"
	"testing"
	"time"
)

// TestExpoWriterGrammar renders a representative exposition — counters,
// gauges, labeled series, and a populated histogram — and runs it
// through the strict validator.
func TestExpoWriterGrammar(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * 17 * time.Microsecond)
	}
	h.Record(100 * time.Second) // overflow bucket

	var sb strings.Builder
	w := NewExpoWriter(&sb, `role="primary",shard="0"`)
	w.Family("netclus_requests_total", "Requests served.", "counter")
	w.Uint("netclus_requests_total", `route="/v1/query"`, 12345)
	w.Uint("netclus_requests_total", `route="/v1/update"`, 7)
	w.Family("netclus_uptime_seconds", "Process uptime.", "gauge")
	w.Sample("netclus_uptime_seconds", "", 12.5)
	w.Family("netclus_build_info", `Build identity ("value" is 1).`, "gauge")
	w.Sample("netclus_build_info", `go_version="go1.25",revision="abc\\def"`, 1)
	w.Family("netclus_query_seconds", "Query latency.", "histogram")
	w.Histogram("netclus_query_seconds", `cache="hit"`, h.Snapshot())
	w.Histogram("netclus_query_seconds", `cache="miss"`, Snapshot{})
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	out := sb.String()
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		`netclus_requests_total{role="primary",shard="0",route="/v1/query"} 12345`,
		`netclus_query_seconds_bucket{role="primary",shard="0",cache="hit",le="+Inf"} 1001`,
		`netclus_query_seconds_count{role="primary",shard="0",cache="hit"} 1001`,
		"# TYPE netclus_query_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestValidatorRejects feeds the validator known-bad expositions; a
// validator that passes garbage guards nothing.
func TestValidatorRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":     "netclus_x 1\n",
		"bad metric name":         "# TYPE 9bad counter\n9bad 1\n",
		"unknown type":            "# TYPE netclus_x metrics\nnetclus_x 1\n",
		"unquoted label":          "# TYPE netclus_x counter\nnetclus_x{a=b} 1\n",
		"bad value":               "# TYPE netclus_x counter\nnetclus_x one\n",
		"negative counter":        "# TYPE netclus_x counter\nnetclus_x -4\n",
		"unterminated labels":     "# TYPE netclus_x counter\nnetclus_x{a=\"b\" 1\n",
		"histogram without +Inf":  "# TYPE netclus_h histogram\nnetclus_h_bucket{le=\"1\"} 3\nnetclus_h_count 3\n",
		"non-cumulative buckets":  "# TYPE netclus_h histogram\nnetclus_h_bucket{le=\"1\"} 3\nnetclus_h_bucket{le=\"+Inf\"} 2\n",
		"count mismatch":          "# TYPE netclus_h histogram\nnetclus_h_bucket{le=\"+Inf\"} 2\nnetclus_h_count 3\n",
		"bare histogram sample":   "# TYPE netclus_h histogram\nnetclus_h 2\n",
		"bucket without le":       "# TYPE netclus_h histogram\nnetclus_h_bucket{a=\"b\"} 2\n",
		"duplicate TYPE":          "# TYPE netclus_x counter\n# TYPE netclus_x counter\nnetclus_x 1\n",
		"bad escape":              "# TYPE netclus_x counter\nnetclus_x{a=\"b\\q\"} 1\n",
		"decreasing bucket bound": "# TYPE netclus_h histogram\nnetclus_h_bucket{le=\"2\"} 1\nnetclus_h_bucket{le=\"1\"} 1\nnetclus_h_bucket{le=\"+Inf\"} 1\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("%s: validator accepted %q", name, text)
		}
	}
}

// TestValidatorAccepts checks grammar corners that are legal and must
// not be rejected: timestamps, escapes, +Inf/NaN values, comments.
func TestValidatorAccepts(t *testing.T) {
	good := "# arbitrary comment\n" +
		"# TYPE netclus_x counter\n" +
		"netclus_x{a=\"with \\\"quotes\\\" and \\\\slash\\\\ and \\n\"} 1 1700000000000\n" +
		"# TYPE netclus_g gauge\n" +
		"netclus_g -12.5e3\n" +
		"netclus_g{z=\"\"} NaN\n"
	if err := ValidateExposition(good); err != nil {
		t.Fatalf("validator rejected legal exposition: %v", err)
	}
}

func TestBuildInfoAndUptime(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" || bi.Module == "" {
		t.Fatalf("empty build info: %+v", bi)
	}
	if Uptime() <= 0 {
		t.Fatal("uptime not positive")
	}
}

func TestLoggerConstruction(t *testing.T) {
	if _, err := ParseLevel("debug"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseLevel("nope"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
	var sb strings.Builder
	lg, err := NewLogger(&sb, 0, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "component", "test")
	if !strings.Contains(sb.String(), `"component":"test"`) {
		t.Fatalf("json logger output %q", sb.String())
	}
	if _, err := NewLogger(&sb, 0, "yaml"); err == nil {
		t.Fatal("NewLogger accepted unknown format")
	}
	NopLogger().Error("dropped")
}
