package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpoWriter emits Prometheus text exposition format (version 0.0.4) —
// the hand-rolled writer behind GET /metrics, so the module stays
// dependency-free. Usage: one Family call per metric family, then one
// Sample (or Histogram) call per labeled series. Errors latch: the
// first write failure is kept and later calls are no-ops.
//
// Base labels (e.g. `role="primary",shard="0"`) are merged into every
// sample, giving all of a process's series the same identity labels
// without threading them through each call site.
type ExpoWriter struct {
	w    io.Writer
	base string
	err  error
}

// NewExpoWriter returns a writer emitting to w. base is a pre-formatted
// label list (`name="value",...`, no braces) added to every sample; it
// may be empty.
func NewExpoWriter(w io.Writer, base string) *ExpoWriter {
	return &ExpoWriter{w: w, base: base}
}

// Err returns the first write error, if any.
func (e *ExpoWriter) Err() error { return e.err }

func (e *ExpoWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// escapeHelp escapes a HELP string per the exposition grammar.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// EscapeLabel escapes a label value per the exposition grammar (callers
// quote it themselves).
func EscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// FormatValue renders a sample value: Prometheus accepts Go's shortest
// float form plus the spec's spellings of the non-finite values.
func FormatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Family begins a metric family: one HELP and one TYPE line. typ is
// "counter", "gauge", or "histogram".
func (e *ExpoWriter) Family(name, help, typ string) {
	e.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// joinLabels merges the base labels with extra (either may be empty).
func (e *ExpoWriter) joinLabels(extra string) string {
	switch {
	case e.base == "":
		return extra
	case extra == "":
		return e.base
	default:
		return e.base + "," + extra
	}
}

// Sample emits one series sample. extra is a pre-formatted label list
// (`name="value",...`) merged after the base labels; pass "" for none.
func (e *ExpoWriter) Sample(name, extra string, v float64) {
	if ls := e.joinLabels(extra); ls != "" {
		e.printf("%s{%s} %s\n", name, ls, FormatValue(v))
		return
	}
	e.printf("%s %s\n", name, FormatValue(v))
}

// Uint emits one series sample from an integer counter.
func (e *ExpoWriter) Uint(name, extra string, v uint64) {
	if ls := e.joinLabels(extra); ls != "" {
		e.printf("%s{%s} %d\n", name, ls, v)
		return
	}
	e.printf("%s %d\n", name, v)
}

// Histogram emits one histogram series: the cumulative `_bucket` ladder
// (including the mandatory le="+Inf"), `_sum`, and `_count`. The caller
// has already emitted the family header with type "histogram". extra is
// merged after the base labels on every line.
func (e *ExpoWriter) Histogram(name, extra string, s Snapshot) {
	ls := e.joinLabels(extra)
	sep := ""
	if ls != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		e.printf("%s_bucket{%s%sle=%q} %d\n", name, ls, sep, FormatValue(bucketUpperSeconds[i]), cum)
	}
	if ls != "" {
		e.printf("%s_sum{%s} %s\n", name, ls, FormatValue(s.Sum))
		e.printf("%s_count{%s} %d\n", name, ls, s.Count)
		return
	}
	e.printf("%s_sum %s\n", name, FormatValue(s.Sum))
	e.printf("%s_count %d\n", name, s.Count)
}
