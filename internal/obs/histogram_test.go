package obs

import (
	"context"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"
)

// sortQuantile is the reference: the q-quantile of a sorted sample by
// the nearest-rank method.
func sortQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TestBucketBoundaries pins the bucket map: exact edges land in the
// bucket whose lower edge they are, one-below lands one bucket down,
// and the under/overflow buckets catch the extremes.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{minNanos - 1, 0},                     // just under the ladder
		{minNanos, 1},                         // first ladder bucket's lower edge
		{minNanos + minNanos/subCount - 1, 1}, // still sub-bucket 0
		{minNanos + minNanos/subCount, 2},     // sub-bucket 1 lower edge
		{2 * minNanos, 1 + subCount},          // next octave
		{maxNanos - 1, NumBuckets - 2},        // top of the ladder
		{maxNanos, NumBuckets - 1},            // overflow
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}

	// Every bucket's recorded value must fall at or under its upper edge
	// and over the previous bucket's: record one value per bucket and
	// check the edges are consistent with the mapping.
	for b := 1; b < NumBuckets-1; b++ {
		oct := minShift + (b-1)/subCount
		sub := int64((b - 1) % subCount)
		lower := int64(1)<<uint(oct) + sub*(int64(1)<<uint(oct))/subCount
		if got := bucketOf(lower); got != b {
			t.Fatalf("lower edge %d maps to bucket %d, want %d", lower, got, b)
		}
		lowerSec := float64(lower) / 1e9
		if prev := bucketUpperSeconds[b-1]; lowerSec < prev-1e-15 {
			t.Fatalf("bucket %d lower edge %g below previous upper %g", b, lowerSec, prev)
		}
		if up := bucketUpperSeconds[b]; lowerSec >= up {
			t.Fatalf("bucket %d lower edge %g not under upper %g", b, lowerSec, up)
		}
	}
	if !math.IsInf(bucketUpperSeconds[NumBuckets-1], 1) {
		t.Fatal("last bucket upper edge must be +Inf")
	}
}

// TestQuantileVsSortedReference bounds the histogram quantile estimate
// against the exact sorted-sample quantile: the relative error must stay
// within one bucket's relative width (2^(1/subCount)-1, ~19%).
func TestQuantileVsSortedReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	var h Histogram
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~5µs .. ~500ms, the realistic latency range.
		ns := math.Exp(rng.Float64()*math.Log(1e8/5e3)) * 5e3
		h.Record(time.Duration(int64(ns)))
		samples = append(samples, ns/1e9)
	}
	sort.Float64s(samples)
	s := h.Snapshot()
	if s.Count != 20000 {
		t.Fatalf("snapshot count %d, want 20000", s.Count)
	}
	maxRel := math.Pow(2, 1.0/subCount) - 1 + 0.01
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		want := sortQuantile(samples, q)
		rel := math.Abs(got-want) / want
		if rel > maxRel {
			t.Errorf("q=%v: histogram %g vs reference %g (rel err %.3f > %.3f)", q, got, want, rel, maxRel)
		}
	}
	// Sum should match the sample sum closely (it is exact modulo float
	// accumulation order).
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if math.Abs(s.Sum-sum)/sum > 1e-6 {
		t.Errorf("sum %g vs %g", s.Sum, sum)
	}
}

// TestQuantileEdgeCases covers empty histograms, out-of-range q, and
// the overflow bucket's lower-edge report.
func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Record(time.Duration(maxNanos) * 4) // overflow
	s = h.Snapshot()
	wantLower := bucketUpperSeconds[NumBuckets-2]
	if got := s.Quantile(0.5); got != wantLower {
		t.Errorf("overflow-only quantile = %g, want lower edge %g", got, wantLower)
	}
	h.Record(-time.Second) // clamps to zero, lands in underflow
	s = h.Snapshot()
	if s.Counts[0] != 1 {
		t.Errorf("negative duration did not clamp into underflow bucket")
	}
}

// TestConcurrentRecord drives many goroutines through Record (run under
// -race in CI): the total count and sum must come out exact.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration((g+1)*(i+1)) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count %d, want %d", s.Count, goroutines*perG)
	}
	var wantSum float64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			wantSum += float64((g+1)*(i+1)) * 1e3 / 1e9
		}
	}
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum %g, want %g", s.Sum, wantSum)
	}
}

// TestRecordAllocs pins the hot-path contract: Record must not allocate.
func TestRecordAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Fatalf("Record allocates %v/op, want 0", n)
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("two fresh trace ids collided")
	}
	if !ValidTraceID(a) || len(a) != 32 {
		t.Fatalf("generated id %q invalid", a)
	}
	for _, bad := range []string{"", "has space", "semi;colon", string(make([]byte, 200))} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
	ctx := WithTrace(context.Background(), a)
	if got := TraceID(ctx); got != a {
		t.Fatalf("TraceID round-trip = %q, want %q", got, a)
	}
}
