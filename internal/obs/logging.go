package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the process root logger for the -log-format flag:
// "text" (human-readable logfmt-style) or "json" (one JSON object per
// record, for log shippers). Components derive their own loggers with
// .With("component", ...).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards everything — the default for
// library layers when the caller wires no logger in.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
