package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition is a strict line-shape validator for the
// Prometheus text exposition format, used by the /metrics golden tests
// and the CI metrics-smoke job. It checks, line by line:
//
//   - HELP/TYPE comment shape and that TYPE names a known metric type;
//   - metric and label name grammar ([a-zA-Z_:][a-zA-Z0-9_:]*,
//     labels without the colon);
//   - label value quoting and escaping;
//   - that sample values parse as Prometheus floats (+Inf/-Inf/NaN
//     included) and optional timestamps as integers;
//   - that samples appear under a preceding TYPE for their family
//     (histograms owning their _bucket/_sum/_count suffixes);
//   - histogram shape: every _bucket carries le, the ladder is
//     cumulative non-decreasing and ends with le="+Inf", and _count
//     equals the +Inf bucket.
//
// It returns the first violation found, nil for a valid exposition.
func ValidateExposition(text string) error {
	typeOf := map[string]string{} // family -> type
	// Per histogram series (family + non-le labels): the running ladder.
	type ladder struct {
		last    float64
		lastCum uint64
		sawInf  bool
		infCum  uint64
	}
	ladders := map[string]*ladder{}
	counts := map[string]uint64{} // histogram series -> _count value

	lines := strings.Split(text, "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			if !strings.HasPrefix(rest, " ") {
				return fmt.Errorf("line %d: comment must start with %q", lineNo, "# ")
			}
			fields := strings.SplitN(rest[1:], " ", 3)
			if len(fields) < 2 {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch fields[0] {
			case "HELP":
				if !validMetricName(fields[1]) {
					return fmt.Errorf("line %d: HELP for invalid metric name %q", lineNo, fields[1])
				}
			case "TYPE":
				if !validMetricName(fields[1]) {
					return fmt.Errorf("line %d: TYPE for invalid metric name %q", lineNo, fields[1])
				}
				if len(fields) != 3 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[2])
				}
				if _, dup := typeOf[fields[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[1])
				}
				typeOf[fields[1]] = fields[2]
			default:
				// Other comments are legal and ignored.
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		family := name
		var suffix string
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typeOf[base] == "histogram" {
				family, suffix = base, suf
				break
			}
		}
		typ, ok := typeOf[family]
		if !ok {
			return fmt.Errorf("line %d: sample %q without a preceding TYPE", lineNo, name)
		}
		if typ == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: bare sample %q for histogram family", lineNo, name)
		}
		if typ == "counter" && value < 0 {
			return fmt.Errorf("line %d: negative counter %q", lineNo, name)
		}

		if typ != "histogram" {
			continue
		}
		le, rest := splitLE(labels)
		seriesKey := family + "{" + rest + "}"
		switch suffix {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			bound, err := parseFloat(le)
			if err != nil {
				return fmt.Errorf("line %d: unparseable le %q", lineNo, le)
			}
			l := ladders[seriesKey]
			if l == nil {
				l = &ladder{last: minusInf()}
				ladders[seriesKey] = l
			}
			if bound <= l.last {
				return fmt.Errorf("line %d: bucket bounds not increasing (%v after %v)", lineNo, bound, l.last)
			}
			cum := uint64(value)
			if float64(cum) != value {
				return fmt.Errorf("line %d: non-integer bucket count %v", lineNo, value)
			}
			if cum < l.lastCum {
				return fmt.Errorf("line %d: bucket counts not cumulative (%d after %d)", lineNo, cum, l.lastCum)
			}
			l.last, l.lastCum = bound, cum
			if le == "+Inf" {
				l.sawInf, l.infCum = true, cum
			}
		case "_count":
			cum := uint64(value)
			if float64(cum) != value {
				return fmt.Errorf("line %d: non-integer histogram count %v", lineNo, value)
			}
			counts[seriesKey] = cum
		}
	}

	for series, l := range ladders {
		if !l.sawInf {
			return fmt.Errorf("histogram %s: no le=\"+Inf\" bucket", series)
		}
		if c, ok := counts[series]; ok && c != l.infCum {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", series, c, l.infCum)
		}
	}
	return nil
}

func minusInf() float64 { return math.Inf(-1) }

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// parseSample splits a sample line into metric name, raw label list
// (without braces, "" when absent), and value. A trailing integer
// timestamp is accepted per the grammar.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.IndexByte(rest[brace:], '}')
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label list in %q", line)
		}
		labels = rest[brace+1 : brace+end]
		rest = strings.TrimPrefix(rest[brace+end+1:], " ")
		if err := validateLabels(labels); err != nil {
			return "", "", 0, err
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample without value in %q", line)
		}
		name, rest = rest[:sp], rest[sp+1:]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("want value [timestamp] after name, got %q", rest)
	}
	value, err = parseFloat(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", "", 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// validateLabels checks a brace-less label list: name="value" pairs,
// comma-separated, values quoted with only \\, \" and \n escapes.
func validateLabels(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %q", labels)
		}
		lname := rest[:eq]
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", labels)
		}
		rest = rest[1:]
		for {
			i := strings.IndexAny(rest, `"\`)
			if i < 0 {
				return fmt.Errorf("unterminated label value in %q", labels)
			}
			if rest[i] == '"' {
				rest = rest[i+1:]
				break
			}
			// Escape: exactly \\, \" or \n.
			if i+1 >= len(rest) || (rest[i+1] != '\\' && rest[i+1] != '"' && rest[i+1] != 'n') {
				return fmt.Errorf("invalid escape in label value in %q", labels)
			}
			rest = rest[i+2:]
		}
		if rest == "" {
			return nil
		}
		if rest[0] != ',' {
			return fmt.Errorf("expected comma between labels in %q", labels)
		}
		rest = rest[1:]
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// splitLE extracts the le label from a raw label list, returning its
// value and the list with le removed (series identity for ladder
// checks). le values produced by this package never contain commas.
func splitLE(labels string) (le, rest string) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ",")
}
