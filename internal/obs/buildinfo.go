package obs

import (
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfo identifies the running binary: the /statsz build_info block
// and the netclus_build_info metric.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	// Version is the module version ("(devel)" for a source build).
	Version string `json:"version"`
	// Revision and Modified come from the VCS stamping of `go build`
	// (empty/false when the build had no VCS metadata).
	Revision string `json:"vcs_revision,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuildInfo returns the binary's build identity, derived once from
// debug.ReadBuildInfo.
func ReadBuildInfo() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: "unknown", Module: "netclus", Version: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		if bi.Main.Path != "" {
			buildInfo.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				buildInfo.Revision = kv.Value
			case "vcs.modified":
				buildInfo.Modified = kv.Value == "true"
			}
		}
	})
	return buildInfo
}

// processStart anchors the uptime_seconds gauge.
var processStart = time.Now()

// Uptime returns how long this process has been up.
func Uptime() time.Duration { return time.Since(processStart) }
