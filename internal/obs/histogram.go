// Package obs is the zero-dependency observability core: lock-free
// latency histograms, the Prometheus text-exposition writer behind
// GET /metrics, request trace ids, structured-logging helpers, and the
// process build/uptime block.
//
// The design constraint that shapes everything here is the serving tier's
// zero-allocation cached-query path: recording a latency must cost two
// atomic adds and an integer bucket computation — no maps, no fmt, no
// interface conversions, nothing that can allocate. Histograms are
// therefore fixed-size arrays of atomic counters, pre-registered as
// package-level variables so the hot paths record into them directly;
// all derivation (quantiles, exposition text) happens on the cold
// snapshot-on-read side.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: log-spaced with subCount sub-buckets per power-of-two
// octave, i.e. bucket edges grow by a factor of 2^(1/subCount) ≈ 1.19 —
// under 19% relative error on any derived quantile, which is plenty for
// latency monitoring. The covered range is [2^minShift, 2^maxShift)
// nanoseconds (≈1µs .. ≈69s); bucket 0 catches everything below, the
// last bucket everything at or above.
const (
	subBits  = 2
	subCount = 1 << subBits // sub-buckets per octave
	minShift = 10           // 2^10 ns ≈ 1.0µs lower edge
	maxShift = 36           // 2^36 ns ≈ 68.7s upper edge

	minNanos = int64(1) << minShift
	maxNanos = int64(1) << maxShift

	// NumBuckets is the fixed bucket count: underflow + the log-spaced
	// ladder + overflow.
	NumBuckets = (maxShift-minShift)*subCount + 2
)

// bucketUpperSeconds[i] is bucket i's inclusive upper edge in seconds;
// the last entry is +Inf. Shared by every histogram (one layout).
var bucketUpperSeconds = computeUpperEdges()

func computeUpperEdges() [NumBuckets]float64 {
	var edges [NumBuckets]float64
	edges[0] = float64(minNanos) / 1e9
	for b := 1; b < NumBuckets-1; b++ {
		oct := minShift + (b-1)/subCount
		sub := (b - 1) % subCount
		upperNanos := math.Ldexp(float64(subCount+sub+1)/subCount, oct)
		edges[b] = upperNanos / 1e9
	}
	edges[NumBuckets-1] = math.Inf(1)
	return edges
}

// BucketUpperSeconds returns bucket i's inclusive upper edge in seconds
// (+Inf for the overflow bucket).
func BucketUpperSeconds(i int) float64 { return bucketUpperSeconds[i] }

// bucketOf maps a duration in nanoseconds to its bucket index: the
// octave comes from the position of the most significant bit, the
// sub-bucket from the next subBits bits — branch-light integer math,
// no floating point, no allocation.
func bucketOf(ns int64) int {
	if ns < minNanos {
		return 0
	}
	if ns >= maxNanos {
		return NumBuckets - 1
	}
	oct := bits.Len64(uint64(ns)) - 1
	sub := int((ns >> (uint(oct) - subBits)) & (subCount - 1))
	return 1 + (oct-minShift)*subCount + sub
}

// Histogram is a lock-free fixed-bucket latency histogram. The zero
// value is ready to use. Record is safe for any number of concurrent
// callers and never allocates; Snapshot is the (cold) read side.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// RecordSince records the elapsed time since t0.
func (h *Histogram) RecordSince(t0 time.Time) { h.Record(time.Since(t0)) }

// Snapshot is a point-in-time copy of a histogram with derived
// aggregates. Build one with Histogram.Snapshot.
type Snapshot struct {
	// Counts holds the per-bucket observation counts (not cumulative).
	Counts [NumBuckets]uint64
	// Count is the total number of observations, Sum their total in
	// seconds.
	Count uint64
	Sum   float64
}

// Snapshot copies the counters. Concurrent records may straddle the
// copy (a count landing without its sum or vice versa); for monitoring
// reads that skew is harmless and bounded by in-flight requests.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = float64(h.sum.Load()) / 1e9
	return s
}

// Quantile derives the q-quantile (0 < q <= 1) in seconds by walking the
// cumulative distribution and interpolating linearly inside the landing
// bucket — the same estimate Prometheus's histogram_quantile computes
// from the exposed buckets. Returns 0 on an empty histogram. The
// overflow bucket reports its lower edge (the largest finite boundary).
func (s *Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = bucketUpperSeconds[i-1]
		}
		upper := bucketUpperSeconds[i]
		if math.IsInf(upper, 1) {
			return lower
		}
		return lower + (upper-lower)*((rank-prev)/float64(c))
	}
	return bucketUpperSeconds[NumBuckets-2]
}

// The pre-registered histograms every serving layer records into. They
// are process-wide (like runtime.MemStats): one topsserve or topsrouter
// process owns one set, and /metrics snapshots them.
var (
	// QueryCached / QueryUncached time Engine.Query end-to-end, split by
	// whether the covering structure came from the memoized cover cache.
	QueryCached   = &Histogram{}
	QueryUncached = &Histogram{}
	// BatchFlush times one micro-batch flush (the coalesced QueryBatch
	// call the admission layer makes).
	BatchFlush = &Histogram{}
	// UpdateApply times the engine mutation behind one /v1/update.
	UpdateApply = &Histogram{}
	// IngestDecode/Match/Apply time the three windows of the live-GPS
	// pipeline: NDJSON line decode, HMM map-matching per trace, and the
	// batched AddTrajectories apply.
	IngestDecode = &Histogram{}
	IngestMatch  = &Histogram{}
	IngestApply  = &Histogram{}
	// WALAppend times one record append (inclusive of fsync under
	// SyncAlways); WALFsync times the fsync syscalls themselves.
	WALAppend = &Histogram{}
	WALFsync  = &Histogram{}
	// FollowerTail times one follower tail round (fetch + apply),
	// long-poll park included.
	FollowerTail = &Histogram{}
	// RouterScatter times one router scatter round (start or step
	// fan-out across the shard members, slowest member gating).
	RouterScatter = &Histogram{}
)

// WriteLatencyHistograms emits every pre-registered histogram above as a
// Prometheus histogram family — the shared tail of the topsserve and
// topsrouter /metrics expositions (a tier that never exercises a path
// simply exposes that family empty).
func WriteLatencyHistograms(ew *ExpoWriter) {
	ew.Family("netclus_query_seconds", "End-to-end engine query latency by cover-cache outcome.", "histogram")
	ew.Histogram("netclus_query_seconds", `cache="hit"`, QueryCached.Snapshot())
	ew.Histogram("netclus_query_seconds", `cache="miss"`, QueryUncached.Snapshot())
	ew.Family("netclus_batch_flush_seconds", "Micro-batch flush (engine QueryBatch) latency.", "histogram")
	ew.Histogram("netclus_batch_flush_seconds", "", BatchFlush.Snapshot())
	ew.Family("netclus_update_apply_seconds", "/v1/update mutation apply latency.", "histogram")
	ew.Histogram("netclus_update_apply_seconds", "", UpdateApply.Snapshot())
	ew.Family("netclus_ingest_stage_seconds", "Ingest pipeline stage latency.", "histogram")
	ew.Histogram("netclus_ingest_stage_seconds", `stage="decode"`, IngestDecode.Snapshot())
	ew.Histogram("netclus_ingest_stage_seconds", `stage="match"`, IngestMatch.Snapshot())
	ew.Histogram("netclus_ingest_stage_seconds", `stage="apply"`, IngestApply.Snapshot())
	ew.Family("netclus_wal_append_seconds", "WAL record append latency (fsync included under the always policy).", "histogram")
	ew.Histogram("netclus_wal_append_seconds", "", WALAppend.Snapshot())
	ew.Family("netclus_wal_fsync_seconds", "WAL fsync latency.", "histogram")
	ew.Histogram("netclus_wal_fsync_seconds", "", WALFsync.Snapshot())
	ew.Family("netclus_follower_tail_seconds", "One follower tail round (fetch + apply), long-poll park included.", "histogram")
	ew.Histogram("netclus_follower_tail_seconds", "", FollowerTail.Snapshot())
	ew.Family("netclus_router_scatter_seconds", "One router scatter round across shard members.", "histogram")
	ew.Histogram("netclus_router_scatter_seconds", "", RouterScatter.Snapshot())
}
