package obs

import (
	"context"
	"math/rand/v2"
)

// TraceHeader is the end-to-end request correlation header. The edge
// process (router or server) generates an id when the client did not
// supply one, echoes it on the response, stamps it into error
// envelopes, and propagates it on every internal hop — scatter rounds
// to shard members, relayed updates, follower tail rounds — so one
// request's appearances across process logs correlate.
const TraceHeader = "X-Netclus-Trace-Id"

type traceKey struct{}

// WithTrace returns ctx carrying the trace id.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace id carried by ctx ("" when absent).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

const hexDigits = "0123456789abcdef"

// NewTraceID returns a fresh 32-hex-character trace id (128 random
// bits). The generator is the runtime-seeded math/rand/v2: trace ids
// need collision resistance across concurrent requests, not
// cryptographic unpredictability.
func NewTraceID() string {
	var b [32]byte
	hi, lo := rand.Uint64(), rand.Uint64()
	for i := 0; i < 16; i++ {
		b[i] = hexDigits[(hi>>(60-4*i))&0xf]
		b[16+i] = hexDigits[(lo>>(60-4*i))&0xf]
	}
	return string(b[:])
}

// ValidTraceID reports whether a client-supplied trace id is acceptable
// to propagate: 1..128 characters drawn from [A-Za-z0-9._-]. Anything
// else is replaced with a fresh id rather than echoed into logs and
// headers verbatim.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}
