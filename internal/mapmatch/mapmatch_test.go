package mapmatch

import (
	"math"
	"testing"

	"netclus/internal/gen"
	"netclus/internal/geo"
	"netclus/internal/trajectory"
)

func testCity(t *testing.T) *gen.City {
	t.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 600, SpanKm: 10, Jitter: 0.2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestMatchRecoversCleanTrace(t *testing.T) {
	city := testCity(t)
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(city.Graph, Config{})
	for i := 0; i < store.Len(); i++ {
		orig := store.Get(trajectory.ID(i))
		trace := gen.EmitGPS(city.Graph, orig, gen.GPSConfig{SampleEveryKm: 0.15, NoiseSigmaKm: -1, Seed: int64(i)})
		got, err := m.Match(trace)
		if err != nil {
			t.Fatalf("trajectory %d: %v", i, err)
		}
		// Endpoints must be near the originals.
		startD := city.Graph.Point(got.Nodes[0]).Dist(city.Graph.Point(orig.Nodes[0]))
		endD := city.Graph.Point(got.Nodes[got.Len()-1]).Dist(city.Graph.Point(orig.Nodes[orig.Len()-1]))
		if startD > 0.3 || endD > 0.3 {
			t.Errorf("trajectory %d: endpoint errors %v / %v km", i, startD, endD)
		}
		// Matched length must be comparable to the original.
		ratio := got.Length() / orig.Length()
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("trajectory %d: matched length %v vs original %v (ratio %.2f)",
				i, got.Length(), orig.Length(), ratio)
		}
	}
}

func TestMatchNoisyTrace(t *testing.T) {
	city := testCity(t)
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(city.Graph, Config{SigmaKm: 0.03, CandidateRadiusKm: 0.25})
	okCount := 0
	for i := 0; i < store.Len(); i++ {
		orig := store.Get(trajectory.ID(i))
		trace := gen.EmitGPS(city.Graph, orig, gen.GPSConfig{SampleEveryKm: 0.2, NoiseSigmaKm: 0.02, Seed: int64(i * 7)})
		got, err := m.Match(trace)
		if err != nil {
			continue
		}
		ratio := got.Length() / orig.Length()
		if ratio > 0.6 && ratio < 1.6 {
			okCount++
		}
	}
	if okCount < store.Len()*3/4 {
		t.Errorf("only %d/%d noisy traces matched acceptably", okCount, store.Len())
	}
}

func TestMatchEmptyTrace(t *testing.T) {
	city := testCity(t)
	m := NewMatcher(city.Graph, Config{})
	if _, err := m.Match(trajectory.GPSTrace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestMatchSinglePoint(t *testing.T) {
	// A static user: one GPS point matches to one node (§1: static users
	// are single-location trajectories).
	city := testCity(t)
	m := NewMatcher(city.Graph, Config{})
	p := city.Graph.Point(0)
	tr, err := m.Match(trajectory.GPSTrace{Points: []trajectory.GPSPoint{{Pos: p}}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("single point matched to %d nodes", tr.Len())
	}
	if tr.Nodes[0] != 0 {
		// The nearest node to node 0's own position must be node 0 unless
		// another node coincides.
		if city.Graph.Point(tr.Nodes[0]).Dist(p) > 1e-9 {
			t.Errorf("matched to distant node %d", tr.Nodes[0])
		}
	}
}

func TestThinning(t *testing.T) {
	city := testCity(t)
	m := NewMatcher(city.Graph, Config{MinPointSpacingKm: 0.5})
	pts := []trajectory.GPSPoint{
		{Pos: geo.Point{X: 0, Y: 0}},
		{Pos: geo.Point{X: 0.1, Y: 0}}, // dropped
		{Pos: geo.Point{X: 0.2, Y: 0}}, // dropped
		{Pos: geo.Point{X: 0.7, Y: 0}},
		{Pos: geo.Point{X: 0.75, Y: 0}}, // dropped
		{Pos: geo.Point{X: 1.4, Y: 0}},
	}
	out := m.thin(trajectory.GPSTrace{Points: pts})
	if len(out) != 3 {
		t.Errorf("thinned to %d points, want 3", len(out))
	}
}

func TestMatchLengthSanity(t *testing.T) {
	// Matched trajectory must never be wildly shorter than the straight-
	// line distance between its endpoints.
	city := testCity(t)
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(city.Graph, Config{})
	for i := 0; i < store.Len(); i++ {
		orig := store.Get(trajectory.ID(i))
		trace := gen.EmitGPS(city.Graph, orig, gen.GPSConfig{SampleEveryKm: 0.25, NoiseSigmaKm: 0.015, Seed: int64(i)})
		got, err := m.Match(trace)
		if err != nil {
			t.Fatalf("trajectory %d: %v", i, err)
		}
		straight := city.Graph.Point(got.Nodes[0]).Dist(city.Graph.Point(got.Nodes[got.Len()-1]))
		if got.Length() < straight-1e-9 {
			t.Errorf("trajectory %d: length %v below straight-line %v", i, got.Length(), straight)
		}
	}
}

func TestMatchPipelineEndToEnd(t *testing.T) {
	// Full offline pipeline of Fig. 2: generate -> emit GPS -> map-match ->
	// store. Verifies counts and validity, not exact node recovery.
	city := testCity(t)
	orig, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 20, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(city.Graph, Config{})
	matched := trajectory.NewStore(orig.Len())
	failures := 0
	for i := 0; i < orig.Len(); i++ {
		trace := gen.EmitGPS(city.Graph, orig.Get(trajectory.ID(i)), gen.GPSConfig{Seed: int64(i)})
		tr, err := m.Match(trace)
		if err != nil {
			failures++
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("matched trajectory %d invalid: %v", i, err)
		}
		matched.Add(tr)
	}
	if failures > orig.Len()/10 {
		t.Errorf("%d/%d matching failures", failures, orig.Len())
	}
	if matched.Len() == 0 {
		t.Fatal("no trajectories matched")
	}
	if math.IsNaN(matched.ComputeStats().MeanLength) {
		t.Error("stats NaN")
	}
}
