package mapmatch

import (
	"encoding/binary"
	"math"
	"testing"

	"netclus/internal/gen"
	"netclus/internal/geo"
	"netclus/internal/trajectory"
)

// TestMatchRoundTripProperty drives the full emit→match loop across a
// grid of sampling rates and noise levels: trajectories generated on the
// network, degraded to GPS traces by gen.EmitGPS, must map-match back to
// walks whose length stays within a detour bound of the source. The bound
// is the property — a matcher that shortcuts across the grid or detours
// wildly fails it even when no call errors.
func TestMatchRoundTripProperty(t *testing.T) {
	city := testCity(t)
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name          string
		sampleEveryKm float64
		noiseSigmaKm  float64
		minOK         int // of store.Len()
	}{
		{"dense-clean", 0.10, -1, 8},
		{"dense-light-noise", 0.15, 0.01, 7},
		{"paper-default", 0.25, 0.02, 6},
		{"sparse-noisy", 0.40, 0.03, 6},
	}
	m := NewMatcher(city.Graph, Config{})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ok := 0
			for i := 0; i < store.Len(); i++ {
				orig := store.Get(trajectory.ID(i))
				trace := gen.EmitGPS(city.Graph, orig, gen.GPSConfig{
					SampleEveryKm: c.sampleEveryKm,
					NoiseSigmaKm:  c.noiseSigmaKm,
					Seed:          int64(1000*i) + 17,
				})
				got, err := m.Match(trace)
				if err != nil {
					continue
				}
				// Detour bound: the matched walk may cut corners the
				// sampling missed (shorter) or wiggle through noise
				// (longer), but must stay commensurate with the source.
				ratio := got.Length() / orig.Length()
				if ratio >= 0.5 && ratio <= 1.6 {
					ok++
				}
			}
			if ok < c.minOK {
				t.Errorf("%s: only %d/%d traces matched within the detour bound (need %d)",
					c.name, ok, store.Len(), c.minOK)
			}
		})
	}
}

// FuzzMatch feeds adversarial traces to the matcher: arbitrary float
// coordinates (NaN, ±Inf, huge magnitudes), empty and single-point traces,
// points far off the network. The property is absence of panics — errors
// are fine, crashes are not.
func FuzzMatch(f *testing.F) {
	f.Add([]byte{})                            // empty trace
	f.Add(mkPoints(1.0, 1.0))                  // single on-network point
	f.Add(mkPoints(1, 1, 2, 1, 3, 1))          // clean short trace
	f.Add(mkPoints(math.NaN(), 2, 3, 4))       // NaN coordinate
	f.Add(mkPoints(math.Inf(1), math.Inf(-1))) // infinite coordinates
	f.Add(mkPoints(1e18, -1e18, 0, 0))         // absurd magnitudes
	f.Add(mkPoints(500, 500, 501, 500))        // far off-network

	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 100, SpanKm: 5, Jitter: 0.2, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	m := NewMatcher(city.Graph, Config{MinPointSpacingKm: 0.05})

	f.Fuzz(func(t *testing.T, data []byte) {
		trace := decodeFuzzTrace(data)
		tr, err := m.Match(trace)
		if err != nil {
			return
		}
		if tr == nil {
			t.Fatal("Match returned nil trajectory without error")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Match returned invalid trajectory: %v", err)
		}
	})
}

// decodeFuzzTrace interprets each 16-byte window as an (x, y) coordinate
// pair so the fuzzer controls raw float bit patterns.
func decodeFuzzTrace(data []byte) trajectory.GPSTrace {
	const maxPts = 64
	var pts []trajectory.GPSPoint
	for len(data) >= 16 && len(pts) < maxPts {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
		pts = append(pts, trajectory.GPSPoint{Pos: geo.Point{X: x, Y: y}, Time: float64(len(pts))})
		data = data[16:]
	}
	return trajectory.GPSTrace{Points: pts}
}

func mkPoints(coords ...float64) []byte {
	buf := make([]byte, 8*len(coords))
	for i, c := range coords {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(c))
	}
	return buf
}
