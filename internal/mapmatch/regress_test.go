package mapmatch

import (
	"context"
	"math"
	"testing"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// TestMatchDoesNotMutateInputTrace is the regression test for the thin
// aliasing bug: out := trace.Points[:1] shared the caller's backing array,
// so every append during thinning overwrote the raw trace in place. A
// caller that retained the trace (the ingest pipeline does, for error
// reporting and point accounting) saw it silently corrupted.
func TestMatchDoesNotMutateInputTrace(t *testing.T) {
	city := testCity(t)
	// Spacing chosen so thinning drops interior points: with a dropped
	// point, the aliasing bug shifts every later survivor one slot left
	// inside the caller's array.
	m := NewMatcher(city.Graph, Config{MinPointSpacingKm: 0.5})
	trace := trajectory.GPSTrace{Points: []trajectory.GPSPoint{
		{Pos: geo.Point{X: 1, Y: 1}, Time: 0},
		{Pos: geo.Point{X: 1.01, Y: 1}, Time: 1}, // dropped: 0.01 km from predecessor
		{Pos: geo.Point{X: 2, Y: 1}, Time: 2},
		{Pos: geo.Point{X: 3, Y: 1}, Time: 3},
		{Pos: geo.Point{X: 4, Y: 1}, Time: 4},
	}}
	orig := make([]trajectory.GPSPoint, len(trace.Points))
	copy(orig, trace.Points)

	if _, err := m.Match(trace); err != nil {
		t.Fatalf("Match: %v", err)
	}
	for i, p := range trace.Points {
		if p != orig[i] {
			t.Fatalf("Match mutated input trace at point %d: got %+v, want %+v", i, p, orig[i])
		}
	}
}

// twoComponentGraph builds a network with two disconnected components: a
// long west chain (6 nodes) and a short east chain (2 nodes), 10 km apart.
func twoComponentGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	g := roadnet.New(8)
	for i := 0; i < 6; i++ { // west chain: x = 0..5
		g.AddNode(geo.Point{X: float64(i), Y: 0})
	}
	for i := 0; i < 5; i++ {
		if err := g.AddBidirectional(roadnet.NodeID(i), roadnet.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	e0 := g.AddNode(geo.Point{X: 15, Y: 0}) // east chain: x = 15..16
	e1 := g.AddNode(geo.Point{X: 16, Y: 0})
	if err := g.AddBidirectional(e0, e1, 1); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMatchSplitsAtUnbridgeableGap is the regression test for the stitch
// contract bug: stitch documented "unbridgeable gaps are skipped" but
// jumped across the gap, handing trajectory.New a disconnected node pair —
// which errored and failed the whole trace. Match must instead split at
// the gap and return the longest connected segment.
func TestMatchSplitsAtUnbridgeableGap(t *testing.T) {
	g := twoComponentGraph(t)
	m := NewMatcher(g, Config{})
	trace := trajectory.GPSTrace{Points: []trajectory.GPSPoint{
		{Pos: geo.Point{X: 0.02, Y: 0.01}, Time: 0},
		{Pos: geo.Point{X: 1.01, Y: -0.02}, Time: 1},
		{Pos: geo.Point{X: 2.0, Y: 0.015}, Time: 2},
		{Pos: geo.Point{X: 3.01, Y: 0.0}, Time: 3},
		{Pos: geo.Point{X: 15.01, Y: 0.01}, Time: 4}, // jumps to the disconnected east chain
		{Pos: geo.Point{X: 16.0, Y: -0.01}, Time: 5},
	}}
	tr, err := m.Match(trace)
	if err != nil {
		t.Fatalf("Match must survive an unbridgeable gap by splitting, got error: %v", err)
	}
	// The west chain carries 4 matched points vs the east chain's 2, so
	// the returned walk must lie entirely on the west component.
	if tr.Len() < 2 {
		t.Fatalf("matched walk too short: %d nodes", tr.Len())
	}
	for _, v := range tr.Nodes {
		if v >= 6 {
			t.Fatalf("matched walk crosses into the disconnected component: node %d in %v", v, tr.Nodes)
		}
	}
}

// TestMatchCtxCancelled checks that a cancelled context aborts matching.
func TestMatchCtxCancelled(t *testing.T) {
	city := testCity(t)
	m := NewMatcher(city.Graph, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trace := trajectory.GPSTrace{Points: []trajectory.GPSPoint{
		{Pos: geo.Point{X: 1, Y: 1}},
		{Pos: geo.Point{X: 2, Y: 1}},
		{Pos: geo.Point{X: 3, Y: 1}},
	}}
	if _, err := m.MatchCtx(ctx, trace); err != context.Canceled {
		t.Fatalf("MatchCtx on cancelled context: got %v, want context.Canceled", err)
	}
}

// TestMatchRejectsNonFinite checks NaN/Inf coordinates error cleanly.
func TestMatchRejectsNonFinite(t *testing.T) {
	city := testCity(t)
	m := NewMatcher(city.Graph, Config{})
	bad := []geo.Point{
		{X: math.NaN(), Y: 1},
		{X: 1, Y: math.Inf(1)},
		{X: math.Inf(-1), Y: math.NaN()},
	}
	for _, p := range bad {
		trace := trajectory.GPSTrace{Points: []trajectory.GPSPoint{{Pos: geo.Point{X: 1, Y: 1}}, {Pos: p}}}
		if _, err := m.Match(trace); err == nil {
			t.Errorf("Match accepted non-finite point %+v", p)
		}
	}
}
