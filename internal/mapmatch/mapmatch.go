// Package mapmatch converts raw GPS traces into road-network node sequences.
//
// The paper's pipeline (Fig. 2) map-matches raw traces with the
// low-sampling-rate HMM matcher of Lou et al. [33] before any TOPS
// processing. This package implements the same idea, simplified to what the
// reproduction needs:
//
//   - candidate generation: the nodes within a radius of each GPS point,
//     found with the uniform grid index;
//   - emission score: Gaussian in the point-to-candidate distance;
//   - transition score: exponential in the difference between the network
//     distance of consecutive candidates and the great-circle (here planar)
//     distance of their GPS points — straight-moving vehicles prefer paths
//     that do not detour;
//   - Viterbi decoding over the candidate lattice, followed by gap
//     completion with shortest paths so the output is a connected node walk.
package mapmatch

import (
	"context"
	"fmt"
	"math"

	"netclus/internal/roadnet"
	"netclus/internal/spatial"
	"netclus/internal/trajectory"
)

// Config tunes the HMM matcher.
type Config struct {
	// CandidateRadiusKm bounds the emission search around each GPS point.
	CandidateRadiusKm float64
	// MaxCandidates caps candidates per point (closest kept).
	MaxCandidates int
	// SigmaKm is the GPS noise standard deviation for the emission model.
	SigmaKm float64
	// BetaKm is the transition tolerance: larger values forgive bigger
	// disagreement between network and straight-line displacement.
	BetaKm float64
	// MinPointSpacingKm drops consecutive GPS points closer than this,
	// which both speeds matching and avoids degenerate transitions.
	MinPointSpacingKm float64
}

func (c Config) withDefaults() Config {
	if c.CandidateRadiusKm <= 0 {
		c.CandidateRadiusKm = 0.3
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 6
	}
	if c.SigmaKm <= 0 {
		c.SigmaKm = 0.05
	}
	if c.BetaKm <= 0 {
		c.BetaKm = 0.3
	}
	if c.MinPointSpacingKm < 0 {
		c.MinPointSpacingKm = 0
	}
	return c
}

// Matcher matches GPS traces against a fixed road network.
type Matcher struct {
	g       *roadnet.Graph
	grid    *spatial.Grid
	cfg     Config
	scratch *roadnet.DijkstraScratch
}

// NewMatcher builds a matcher over g. The grid index is constructed once
// and reused across traces.
func NewMatcher(g *roadnet.Graph, cfg Config) *Matcher {
	return NewMatcherWithIndex(g, spatial.NewGrid(g, 0), cfg)
}

// NewMatcherWithIndex builds a matcher over g reusing a prebuilt grid
// index. The grid is read-only during matching, so a worker pool shares
// one index while each worker keeps its own matcher (the Dijkstra scratch
// is mutable — a Matcher must not be used concurrently).
func NewMatcherWithIndex(g *roadnet.Graph, grid *spatial.Grid, cfg Config) *Matcher {
	return &Matcher{
		g:       g,
		grid:    grid,
		cfg:     cfg.withDefaults(),
		scratch: roadnet.NewScratch(g),
	}
}

// candidate is one lattice entry of the Viterbi decoding.
type candidate struct {
	node    roadnet.NodeID
	emitLog float64
	// viterbi state
	score float64
	prev  int // index into previous layer, -1 at the first layer
}

// Match converts a GPS trace into a map-matched trajectory. It returns an
// error when the trace is empty, contains non-finite coordinates, or no
// candidate lattice path exists (e.g. the trace lies outside the network).
func (m *Matcher) Match(trace trajectory.GPSTrace) (*trajectory.Trajectory, error) {
	return m.MatchCtx(context.Background(), trace)
}

// MatchCtx is Match with cancellation: the decoding checks ctx between
// lattice layers and returns ctx.Err() once it is done. Matching is
// CPU-bound, so this is the knob streaming callers (the ingest pipeline)
// use to abandon work when the client hangs up.
func (m *Matcher) MatchCtx(ctx context.Context, trace trajectory.GPSTrace) (*trajectory.Trajectory, error) {
	for i, p := range trace.Points {
		if !finite(p.Pos.X) || !finite(p.Pos.Y) {
			return nil, fmt.Errorf("mapmatch: point %d has non-finite coordinates", i)
		}
	}
	pts := m.thin(trace)
	if len(pts) == 0 {
		return nil, fmt.Errorf("mapmatch: empty trace")
	}
	layers, err := m.buildLattice(pts)
	if err != nil {
		return nil, err
	}
	best, err := m.viterbi(ctx, pts, layers)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("mapmatch: no feasible path through candidate lattice")
	}
	nodes := longestSegment(m.stitch(best))
	if len(nodes) == 0 {
		return nil, fmt.Errorf("mapmatch: stitching produced empty walk")
	}
	return trajectory.New(m.g, nodes)
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// thin drops points closer than MinPointSpacingKm to their predecessor.
// The result never aliases trace.Points: callers retain the raw trace and
// must not see it mutated by later lattice work.
func (m *Matcher) thin(trace trajectory.GPSTrace) []trajectory.GPSPoint {
	if m.cfg.MinPointSpacingKm == 0 || len(trace.Points) == 0 {
		return trace.Points
	}
	out := make([]trajectory.GPSPoint, 1, len(trace.Points))
	out[0] = trace.Points[0]
	for _, p := range trace.Points[1:] {
		if p.Pos.Dist(out[len(out)-1].Pos) >= m.cfg.MinPointSpacingKm {
			out = append(out, p)
		}
	}
	return out
}

// buildLattice generates the candidate layers with emission scores.
func (m *Matcher) buildLattice(pts []trajectory.GPSPoint) ([][]candidate, error) {
	layers := make([][]candidate, len(pts))
	sigma2 := 2 * m.cfg.SigmaKm * m.cfg.SigmaKm
	for i, p := range pts {
		ids := m.grid.Within(p.Pos, m.cfg.CandidateRadiusKm, nil)
		if len(ids) == 0 {
			// Fall back to the single nearest node: traces may briefly
			// leave the candidate radius in sparse areas.
			v, d := m.grid.Nearest(p.Pos)
			if v == roadnet.InvalidNode {
				return nil, fmt.Errorf("mapmatch: point %d has no candidates (empty network?)", i)
			}
			layers[i] = []candidate{{node: v, emitLog: -d * d / sigma2}}
			continue
		}
		if len(ids) > m.cfg.MaxCandidates {
			ids = m.closestK(p, ids, m.cfg.MaxCandidates)
		}
		layer := make([]candidate, 0, len(ids))
		for _, v := range ids {
			d := m.g.Point(v).Dist(p.Pos)
			layer = append(layer, candidate{node: v, emitLog: -d * d / sigma2})
		}
		layers[i] = layer
	}
	return layers, nil
}

// closestK selects the k candidates nearest the point (partial selection).
func (m *Matcher) closestK(p trajectory.GPSPoint, ids []roadnet.NodeID, k int) []roadnet.NodeID {
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(ids); j++ {
			if m.g.Point(ids[j]).DistSq(p.Pos) < m.g.Point(ids[min]).DistSq(p.Pos) {
				min = j
			}
		}
		ids[i], ids[min] = ids[min], ids[i]
	}
	return ids[:k]
}

// viterbi decodes the maximum-score candidate path and returns the chosen
// node of each layer. It checks ctx once per layer — each layer runs one
// bounded Dijkstra per previous candidate, so that is the natural grain.
func (m *Matcher) viterbi(ctx context.Context, pts []trajectory.GPSPoint, layers [][]candidate) ([]roadnet.NodeID, error) {
	first := layers[0]
	for i := range first {
		first[i].score = first[i].emitLog
		first[i].prev = -1
	}
	const negInf = math.MaxFloat64 * -1
	for li := 1; li < len(layers); li++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prevLayer := layers[li-1]
		gpsDist := pts[li].Pos.Dist(pts[li-1].Pos)
		searchRadius := gpsDist*3 + m.cfg.CandidateRadiusKm*4
		// Network distances from every previous candidate, one bounded
		// search each.
		netDist := make([]map[roadnet.NodeID]float64, len(prevLayer))
		for pi, pc := range prevLayer {
			res := m.scratch.Bounded(m.g, pc.node, roadnet.Forward, searchRadius)
			netDist[pi] = res.Dist
		}
		for ci := range layers[li] {
			c := &layers[li][ci]
			c.score = negInf
			c.prev = -1
			for pi := range prevLayer {
				pScore := prevLayer[pi].score
				if pScore == negInf {
					continue
				}
				nd, ok := netDist[pi][c.node]
				if !ok {
					continue // unreachable within the corridor
				}
				transLog := -math.Abs(nd-gpsDist) / m.cfg.BetaKm
				if s := pScore + transLog + c.emitLog; s > c.score {
					c.score = s
					c.prev = pi
				}
			}
		}
		// Lattice break: no candidate reachable. Restart scoring at this
		// layer (standard practice for low-quality traces) rather than
		// failing the whole trace.
		broken := true
		for ci := range layers[li] {
			if layers[li][ci].prev != -1 {
				broken = false
				break
			}
		}
		if broken {
			for ci := range layers[li] {
				layers[li][ci].score = layers[li][ci].emitLog
				layers[li][ci].prev = -1
			}
		}
	}
	// Backtrack from the best final candidate.
	last := layers[len(layers)-1]
	bestIdx, bestScore := -1, negInf
	for i := range last {
		if last[i].score > bestScore {
			bestIdx, bestScore = i, last[i].score
		}
	}
	if bestIdx < 0 {
		return nil, nil
	}
	out := make([]roadnet.NodeID, len(layers))
	idx := bestIdx
	for li := len(layers) - 1; li >= 0; li-- {
		out[li] = layers[li][idx].node
		idx = layers[li][idx].prev
		if idx < 0 && li > 0 {
			// Restarted segment: greedily take the best-scored candidate
			// of the previous layer.
			prevBest, prevScore := 0, negInf
			for i := range layers[li-1] {
				if layers[li-1][i].score > prevScore {
					prevBest, prevScore = i, layers[li-1][i].score
				}
			}
			idx = prevBest
		}
	}
	return out, nil
}

// stitch expands the matched node-per-point sequence into connected node
// walks by inserting shortest paths between consecutive distinct nodes.
// Unbridgeable gaps split the walk — each returned segment is internally
// connected, mirroring how production matchers handle tunnels and data
// holes. Match keeps the longest segment.
func (m *Matcher) stitch(matched []roadnet.NodeID) [][]roadnet.NodeID {
	var segs [][]roadnet.NodeID
	var cur []roadnet.NodeID
	for _, v := range matched {
		if len(cur) == 0 {
			cur = append(cur, v)
			continue
		}
		prev := cur[len(cur)-1]
		if v == prev {
			continue
		}
		if m.g.HasEdge(prev, v) {
			cur = append(cur, v)
			continue
		}
		path, d := roadnet.AStar(m.g, prev, v)
		if math.IsInf(d, 1) {
			// Unbridgeable: close the walk here and continue from the far
			// side. trajectory.New would reject the disconnected pair.
			segs = append(segs, cur)
			cur = []roadnet.NodeID{v}
			continue
		}
		cur = append(cur, path[1:]...)
	}
	if len(cur) > 0 {
		segs = append(segs, cur)
	}
	return segs
}

// longestSegment picks the segment with the most nodes (earliest wins a
// tie) — the best-supported connected piece of the matched walk.
func longestSegment(segs [][]roadnet.NodeID) []roadnet.NodeID {
	var best []roadnet.NodeID
	for _, s := range segs {
		if len(s) > len(best) {
			best = s
		}
	}
	return best
}
