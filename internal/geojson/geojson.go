// Package geojson exports road networks, trajectories and TOPS answers as
// GeoJSON FeatureCollections, so placements can be inspected in any map
// viewer. Coordinates are the library's local planar kilometres written as
// (x, y) pairs; ingesting real lat/lon data and exporting back is the
// caller's concern (see geo.ProjectLatLon).
package geojson

import (
	"encoding/json"
	"fmt"
	"io"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

// Feature is a single GeoJSON feature.
type Feature struct {
	Type       string         `json:"type"`
	Geometry   Geometry       `json:"geometry"`
	Properties map[string]any `json:"properties,omitempty"`
}

// Geometry is a GeoJSON geometry (Point or LineString).
type Geometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

// FeatureCollection is the GeoJSON root object.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// NewCollection returns an empty feature collection.
func NewCollection() *FeatureCollection {
	return &FeatureCollection{Type: "FeatureCollection"}
}

func coord(p geo.Point) []float64 { return []float64{p.X, p.Y} }

// AddPoint appends a point feature.
func (fc *FeatureCollection) AddPoint(p geo.Point, props map[string]any) {
	fc.Features = append(fc.Features, Feature{
		Type:       "Feature",
		Geometry:   Geometry{Type: "Point", Coordinates: coord(p)},
		Properties: props,
	})
}

// AddLineString appends a line feature through the given points.
func (fc *FeatureCollection) AddLineString(pts []geo.Point, props map[string]any) {
	coords := make([][]float64, len(pts))
	for i, p := range pts {
		coords[i] = coord(p)
	}
	fc.Features = append(fc.Features, Feature{
		Type:       "Feature",
		Geometry:   Geometry{Type: "LineString", Coordinates: coords},
		Properties: props,
	})
}

// AddNetwork appends every directed edge of g as a LineString. For large
// networks pass sampleEvery > 1 to thin the output (every n-th edge).
func (fc *FeatureCollection) AddNetwork(g *roadnet.Graph, sampleEvery int) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	i := 0
	for v := 0; v < g.NumNodes(); v++ {
		g.Neighbors(roadnet.NodeID(v), func(to roadnet.NodeID, w float64) bool {
			if i%sampleEvery == 0 {
				fc.AddLineString(
					[]geo.Point{g.Point(roadnet.NodeID(v)), g.Point(to)},
					map[string]any{"kind": "edge", "weight_km": w},
				)
			}
			i++
			return true
		})
	}
}

// AddTrajectory appends a trajectory as a LineString with its id and
// length recorded as properties.
func (fc *FeatureCollection) AddTrajectory(g *roadnet.Graph, id trajectory.ID, tr *trajectory.Trajectory) {
	pts := make([]geo.Point, tr.Len())
	for i, v := range tr.Nodes {
		pts[i] = g.Point(v)
	}
	fc.AddLineString(pts, map[string]any{
		"kind":      "trajectory",
		"id":        int(id),
		"length_km": tr.Length(),
	})
}

// AddSites appends the selected service sites as ranked points.
func (fc *FeatureCollection) AddSites(g *roadnet.Graph, sites []roadnet.NodeID) {
	for rank, v := range sites {
		fc.AddPoint(g.Point(v), map[string]any{
			"kind": "selected-site",
			"rank": rank + 1,
			"node": int(v),
		})
	}
}

// WriteTo serializes the collection as JSON.
func (fc *FeatureCollection) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(fc, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("geojson: %w", err)
	}
	n, err := w.Write(data)
	return int64(n), err
}
