package geojson

import (
	"bytes"
	"encoding/json"
	"testing"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
	"netclus/internal/trajectory"
)

func testGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	g := roadnet.New(3)
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 1, Y: 0})
	g.AddNode(geo.Point{X: 1, Y: 1})
	if err := g.AddBidirectional(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddBidirectional(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCollectionRoundTripsAsValidJSON(t *testing.T) {
	g := testGraph(t)
	fc := NewCollection()
	fc.AddNetwork(g, 1)
	tr, err := trajectory.New(g, []roadnet.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	fc.AddTrajectory(g, 7, tr)
	fc.AddSites(g, []roadnet.NodeID{1})
	var buf bytes.Buffer
	if _, err := fc.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if parsed["type"] != "FeatureCollection" {
		t.Errorf("type = %v", parsed["type"])
	}
	features := parsed["features"].([]any)
	// 4 edges + 1 trajectory + 1 site.
	if len(features) != 6 {
		t.Errorf("features = %d, want 6", len(features))
	}
}

func TestNetworkSampling(t *testing.T) {
	g := testGraph(t)
	full := NewCollection()
	full.AddNetwork(g, 1)
	half := NewCollection()
	half.AddNetwork(g, 2)
	if len(half.Features) >= len(full.Features) {
		t.Errorf("sampling did not thin: %d vs %d", len(half.Features), len(full.Features))
	}
}

func TestSiteRanks(t *testing.T) {
	g := testGraph(t)
	fc := NewCollection()
	fc.AddSites(g, []roadnet.NodeID{2, 0})
	if fc.Features[0].Properties["rank"] != 1 || fc.Features[1].Properties["rank"] != 2 {
		t.Error("ranks not sequential")
	}
	if fc.Features[0].Properties["node"] != 2 {
		t.Error("node id wrong")
	}
}

func TestTrajectoryProperties(t *testing.T) {
	g := testGraph(t)
	tr, err := trajectory.New(g, []roadnet.NodeID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	fc := NewCollection()
	fc.AddTrajectory(g, 3, tr)
	f := fc.Features[0]
	if f.Geometry.Type != "LineString" {
		t.Errorf("geometry = %s", f.Geometry.Type)
	}
	if f.Properties["length_km"].(float64) != 1 {
		t.Errorf("length = %v", f.Properties["length_km"])
	}
}
