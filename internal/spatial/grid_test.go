package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
)

func randomNodes(rng *rand.Rand, n int, span float64) *roadnet.Graph {
	g := roadnet.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * span, Y: rng.Float64() * span})
	}
	return g
}

func TestNearestBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomNodes(rng, 300, 10)
	gr := NewGrid(g, 0)
	for trial := 0; trial < 200; trial++ {
		q := geo.Point{X: rng.Float64()*14 - 2, Y: rng.Float64()*14 - 2}
		got, gotD := gr.Nearest(q)
		// Brute force oracle.
		want := roadnet.InvalidNode
		wantD := math.Inf(1)
		for v := 0; v < g.NumNodes(); v++ {
			if d := g.Point(roadnet.NodeID(v)).Dist(q); d < wantD {
				want, wantD = roadnet.NodeID(v), d
			}
		}
		if math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("query %v: got node %d at %v, want node %d at %v", q, got, gotD, want, wantD)
		}
	}
}

func TestWithinBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomNodes(rng, 400, 8)
	gr := NewGrid(g, 0.5)
	for trial := 0; trial < 100; trial++ {
		q := geo.Point{X: rng.Float64() * 8, Y: rng.Float64() * 8}
		radius := rng.Float64() * 2
		got := gr.Within(q, radius, nil)
		var want []roadnet.NodeID
		for v := 0; v < g.NumNodes(); v++ {
			if g.Point(roadnet.NodeID(v)).Dist(q) <= radius {
				want = append(want, roadnet.NodeID(v))
			}
		}
		sortIDs(got)
		sortIDs(want)
		if len(got) != len(want) {
			t.Fatalf("radius %v: got %d nodes, want %d", radius, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("radius %v: member mismatch", radius)
			}
		}
	}
}

func sortIDs(ids []roadnet.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func TestKNearestOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomNodes(rng, 200, 5)
	gr := NewGrid(g, 0)
	q := geo.Point{X: 2.5, Y: 2.5}
	k := 10
	got := gr.KNearest(q, k)
	if len(got) != k {
		t.Fatalf("got %d results, want %d", len(got), k)
	}
	for i := 1; i < len(got); i++ {
		if g.Point(got[i]).Dist(q) < g.Point(got[i-1]).Dist(q)-1e-12 {
			t.Fatal("KNearest results out of order")
		}
	}
	// First result must agree with Nearest.
	n, _ := gr.Nearest(q)
	if got[0] != n {
		t.Errorf("KNearest[0] = %d, Nearest = %d", got[0], n)
	}
}

func TestEmptyGrid(t *testing.T) {
	g := roadnet.New(0)
	gr := NewGrid(g, 0)
	if v, d := gr.Nearest(geo.Point{}); v != roadnet.InvalidNode || !math.IsInf(d, 1) {
		t.Errorf("Nearest on empty grid = %d, %v", v, d)
	}
	if got := gr.Within(geo.Point{}, 5, nil); len(got) != 0 {
		t.Errorf("Within on empty grid = %v", got)
	}
	if got := gr.KNearest(geo.Point{}, 3); got != nil {
		t.Errorf("KNearest on empty grid = %v", got)
	}
}

func TestSingleNode(t *testing.T) {
	g := roadnet.New(1)
	g.AddNode(geo.Point{X: 1, Y: 1})
	gr := NewGrid(g, 0)
	v, d := gr.Nearest(geo.Point{X: 4, Y: 5})
	if v != 0 || math.Abs(d-5) > 1e-12 {
		t.Errorf("Nearest = %d, %v", v, d)
	}
	if got := gr.Within(geo.Point{X: 1, Y: 1}, 0, nil); len(got) != 1 {
		t.Errorf("Within radius 0 at node = %v", got)
	}
}

func TestNearestFarQuery(t *testing.T) {
	// Query far outside the bounding box must still find the right node.
	g := roadnet.New(2)
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 1, Y: 0})
	gr := NewGrid(g, 0.1)
	v, _ := gr.Nearest(geo.Point{X: 100, Y: 100})
	if v != 1 {
		t.Errorf("far query returned node %d, want 1", v)
	}
}

func TestWithinNegativeRadius(t *testing.T) {
	g := randomNodes(rand.New(rand.NewSource(4)), 10, 2)
	gr := NewGrid(g, 0)
	if got := gr.Within(geo.Point{}, -1, nil); len(got) != 0 {
		t.Errorf("negative radius returned %v", got)
	}
}
