// Package spatial provides a uniform grid index over road-network nodes.
//
// The index answers the two queries the reproduction needs in hot paths:
// nearest node to a point (map matching, site snapping) and all nodes within
// a radius (candidate generation for the HMM matcher). A uniform grid beats
// tree structures here because city road networks have near-uniform node
// density, queries are tiny-radius, and construction must be cheap enough to
// rebuild per synthetic dataset.
package spatial

import (
	"math"

	"netclus/internal/geo"
	"netclus/internal/roadnet"
)

// Grid is a uniform spatial hash of node positions. It is immutable after
// construction and safe for concurrent use.
type Grid struct {
	bounds   geo.Rect
	cell     float64 // cell side length, km
	nx, ny   int
	cells    [][]roadnet.NodeID
	points   []geo.Point
	numNodes int
}

// NewGrid indexes every node of g using cells of the given side length in
// kilometres. A non-positive cellSize picks a heuristic aiming at a handful
// of nodes per cell.
func NewGrid(g *roadnet.Graph, cellSize float64) *Grid {
	n := g.NumNodes()
	b := g.Bounds()
	if n == 0 {
		return &Grid{bounds: b, cell: 1, nx: 1, ny: 1, cells: make([][]roadnet.NodeID, 1)}
	}
	if cellSize <= 0 {
		// Aim for ~4 nodes per cell on average.
		area := math.Max(b.Area(), 1e-9)
		cellSize = math.Sqrt(area / float64(n) * 4)
		if cellSize <= 0 || math.IsNaN(cellSize) {
			cellSize = 1
		}
	}
	nx := int(math.Ceil(math.Max(b.Width(), 1e-9)/cellSize)) + 1
	ny := int(math.Ceil(math.Max(b.Height(), 1e-9)/cellSize)) + 1
	gr := &Grid{
		bounds:   b,
		cell:     cellSize,
		nx:       nx,
		ny:       ny,
		cells:    make([][]roadnet.NodeID, nx*ny),
		points:   make([]geo.Point, n),
		numNodes: n,
	}
	for v := 0; v < n; v++ {
		p := g.Point(roadnet.NodeID(v))
		gr.points[v] = p
		c := gr.cellIndex(p)
		gr.cells[c] = append(gr.cells[c], roadnet.NodeID(v))
	}
	return gr
}

// CellSize returns the side length of the grid cells in kilometres.
func (gr *Grid) CellSize() float64 { return gr.cell }

func (gr *Grid) cellCoords(p geo.Point) (int, int) {
	cx := int((p.X - gr.bounds.Min.X) / gr.cell)
	cy := int((p.Y - gr.bounds.Min.Y) / gr.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= gr.nx {
		cx = gr.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= gr.ny {
		cy = gr.ny - 1
	}
	return cx, cy
}

func (gr *Grid) cellIndex(p geo.Point) int {
	cx, cy := gr.cellCoords(p)
	return cy*gr.nx + cx
}

// Nearest returns the node closest to p in Euclidean distance and that
// distance. It returns (InvalidNode, +Inf) on an empty index. The search
// expands rings of cells outward until the closest found node provably
// dominates all unexplored cells.
func (gr *Grid) Nearest(p geo.Point) (roadnet.NodeID, float64) {
	if gr.numNodes == 0 {
		return roadnet.InvalidNode, math.Inf(1)
	}
	cx, cy := gr.cellCoords(p)
	best := roadnet.InvalidNode
	bestD := math.Inf(1)
	maxRing := gr.nx
	if gr.ny > maxRing {
		maxRing = gr.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once we have a candidate, stop when the nearest possible point in
		// the next unexplored ring is farther than it.
		if best != roadnet.InvalidNode && float64(ring-1)*gr.cell > bestD {
			break
		}
		gr.forEachCellInRing(cx, cy, ring, func(cell []roadnet.NodeID) {
			for _, v := range cell {
				if d := gr.points[v].Dist(p); d < bestD {
					best, bestD = v, d
				}
			}
		})
	}
	return best, bestD
}

// Within appends to dst every node within radius of p and returns the
// result. Distances are Euclidean.
func (gr *Grid) Within(p geo.Point, radius float64, dst []roadnet.NodeID) []roadnet.NodeID {
	if gr.numNodes == 0 || radius < 0 {
		return dst
	}
	r2 := radius * radius
	minX, minY := gr.cellCoords(geo.Point{X: p.X - radius, Y: p.Y - radius})
	maxX, maxY := gr.cellCoords(geo.Point{X: p.X + radius, Y: p.Y + radius})
	for cy := minY; cy <= maxY; cy++ {
		for cx := minX; cx <= maxX; cx++ {
			for _, v := range gr.cells[cy*gr.nx+cx] {
				if gr.points[v].DistSq(p) <= r2 {
					dst = append(dst, v)
				}
			}
		}
	}
	return dst
}

// KNearest returns up to k nodes closest to p ordered by distance. It is a
// convenience for candidate generation; k is expected to be small.
func (gr *Grid) KNearest(p geo.Point, k int) []roadnet.NodeID {
	if k <= 0 || gr.numNodes == 0 {
		return nil
	}
	// Expand the radius geometrically until enough candidates are found,
	// then sort by distance via selection (k is small).
	radius := gr.cell
	var found []roadnet.NodeID
	for len(found) < k && radius < gr.cell*float64(gr.nx+gr.ny+2)*2 {
		found = gr.Within(p, radius, found[:0])
		radius *= 2
	}
	if len(found) == 0 {
		v, _ := gr.Nearest(p)
		if v == roadnet.InvalidNode {
			return nil
		}
		return []roadnet.NodeID{v}
	}
	// Partial selection sort of the k best.
	if k > len(found) {
		k = len(found)
	}
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(found); j++ {
			if gr.points[found[j]].DistSq(p) < gr.points[found[min]].DistSq(p) {
				min = j
			}
		}
		found[i], found[min] = found[min], found[i]
	}
	return append([]roadnet.NodeID(nil), found[:k]...)
}

// forEachCellInRing visits every cell at Chebyshev distance ring from
// (cx,cy), clipped to the grid.
func (gr *Grid) forEachCellInRing(cx, cy, ring int, fn func([]roadnet.NodeID)) {
	if ring == 0 {
		if cx >= 0 && cx < gr.nx && cy >= 0 && cy < gr.ny {
			fn(gr.cells[cy*gr.nx+cx])
		}
		return
	}
	visit := func(x, y int) {
		if x >= 0 && x < gr.nx && y >= 0 && y < gr.ny {
			fn(gr.cells[y*gr.nx+x])
		}
	}
	for x := cx - ring; x <= cx+ring; x++ {
		visit(x, cy-ring)
		visit(x, cy+ring)
	}
	for y := cy - ring + 1; y <= cy+ring-1; y++ {
		visit(cx-ring, y)
		visit(cx+ring, y)
	}
}
