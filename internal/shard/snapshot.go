package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"netclus/internal/core"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/wal"
)

// Sharded snapshots: one manifest describing the partition plus one
// core-format snapshot per shard. Two carriers share the format:
//
//   - SaveDir/LoadDir — a directory with manifest.json and shard-NNN.ncss
//     files, the operational layout (topsserve's sharded cache);
//   - Snapshot/LoadSharded — the same content as a single stream (magic
//     "NCSM", manifest length + JSON, then length-prefixed shard
//     snapshots), which is what keeps the engine-compatible Snapshot
//     surface — and /v1/snapshot — working on a sharded server.
//
// A manifest pins the shard count, the partitioner name, and every shard's
// site list in its exact (history-dependent) order; the full dataset
// fingerprint in the manifest plus the per-shard fingerprints inside each
// core snapshot reject any mismatched or reordered input.

// manifestVersion is the sharded-snapshot format version. Version 2 added
// the WAL LSN; version-1 manifests still load (as LSN 0).
const manifestVersion = 2

// manifestMinVersion is the oldest manifest version this reader accepts.
const manifestMinVersion = 1

// containerMagic is "NCSM" (NetClus Sharded Manifest) read little-endian.
const containerMagic uint32 = 0x4d53434e

// ManifestName is the manifest file name inside a SaveDir directory.
const ManifestName = "manifest.json"

// Manifest describes a sharded snapshot.
type Manifest struct {
	Version            int    `json:"version"`
	Shards             int    `json:"shards"`
	Partitioner        string `json:"partitioner"`
	DatasetFingerprint uint64 `json:"dataset_fingerprint"`
	// LSN is the write-ahead-log watermark of the snapshot: every logged
	// mutation up to and including it is reflected, so recovery replays
	// records after it. 0 for engines that are not WAL-served (and for
	// version-1 manifests).
	LSN uint64 `json:"lsn,omitempty"`
	// Sites lists every shard's site nodes in the shard's OWN list order.
	// Re-partitioning the presented dataset cannot reconstruct these: each
	// shard's core index swap-removes within its local list on DeleteSite,
	// independently of the global mirror's swap-removes, so after deletions
	// the per-shard orders are history the manifest must carry — the
	// per-shard dataset fingerprints (inside each core snapshot) are
	// computed over exactly these orders.
	Sites      [][]int64 `json:"sites"`
	SiteCounts []int     `json:"site_counts"`
	Files      []string  `json:"files,omitempty"`
}

// manifest assembles the current manifest. Callers hold at least the read
// lock.
func (s *Sharded) manifest(withFiles bool) Manifest {
	m := Manifest{
		Version:            manifestVersion,
		Shards:             len(s.shards),
		Partitioner:        s.part.Name(),
		DatasetFingerprint: s.fingerprint(),
		LSN:                s.sink.LSN(),
		Sites:              make([][]int64, len(s.shards)),
		SiteCounts:         make([]int, len(s.shards)),
	}
	for j, sh := range s.shards {
		m.SiteCounts[j] = sh.inst.N()
		m.Sites[j] = make([]int64, 0, sh.inst.N())
		for _, v := range sh.inst.Sites {
			m.Sites[j] = append(m.Sites[j], int64(v))
		}
		if withFiles {
			m.Files = append(m.Files, fmt.Sprintf("shard-%03d.ncss", j))
		}
	}
	return m
}

// fingerprint hashes the current logical full dataset: the shared graph,
// the (update-extended) trajectory store, and the global site list in
// mirror order — the same quantity core.DatasetFingerprint computes over
// the instance a load will present.
func (s *Sharded) fingerprint() uint64 {
	return core.DatasetFingerprint(&tops.Instance{G: s.g, Trajs: s.shards[0].inst.Trajs, Sites: s.sites})
}

// Snapshot writes the whole sharded engine as one stream under the read
// lock, so a live service can checkpoint while serving queries (the
// engine-surface contract /v1/snapshot relies on).
func (s *Sharded) Snapshot(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshotLocked(w)
}

// Checkpoint writes the recovery bundle: the mutated dataset state (global
// site order, trajectory store) plus the LSN-stamped sharded container,
// under one read lock so the three views are mutually consistent. Reload
// with wal.ReadCheckpoint + LoadSharded (the netclus.LoadCheckpoint
// facade).
func (s *Sharded) Checkpoint(w io.Writer) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return wal.WriteCheckpoint(w, s.sites, s.shards[0].inst.Trajs, s.sink.Epoch(), s.snapshotLocked)
}

// snapshotLocked streams the container format; the caller holds at least
// the read lock.
func (s *Sharded) snapshotLocked(w io.Writer) (int64, error) {
	var n int64
	man, err := json.Marshal(s.manifest(false))
	if err != nil {
		return 0, fmt.Errorf("shard: encoding manifest: %w", err)
	}
	var head [12]byte
	binary.LittleEndian.PutUint32(head[0:], containerMagic)
	binary.LittleEndian.PutUint32(head[4:], manifestVersion)
	binary.LittleEndian.PutUint32(head[8:], uint32(len(man)))
	wrote, err := w.Write(head[:])
	n += int64(wrote)
	if err != nil {
		return n, err
	}
	wrote, err = w.Write(man)
	n += int64(wrote)
	if err != nil {
		return n, err
	}
	// Buffer one shard at a time: the stream needs a length prefix per
	// shard, and the core codec writes forward-only.
	var buf bytes.Buffer
	for j, sh := range s.shards {
		buf.Reset()
		if _, err := sh.eng.Snapshot(&buf); err != nil {
			return n, fmt.Errorf("shard: snapshotting shard %d: %w", j, err)
		}
		var l [8]byte
		binary.LittleEndian.PutUint64(l[:], uint64(buf.Len()))
		wrote, err = w.Write(l[:])
		n += int64(wrote)
		if err != nil {
			return n, err
		}
		wrote64, err := io.Copy(w, &buf)
		n += wrote64
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// LoadSharded reads a Snapshot stream and re-attaches it to inst, which
// must be the full dataset the sharded engine was built from. opts supplies
// the serving configuration (engine options); shard count and partitioner
// come from the manifest.
func LoadSharded(r io.Reader, inst *tops.Instance, opts Options) (*Sharded, error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("shard: reading container header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(head[0:]); magic != containerMagic {
		return nil, fmt.Errorf("shard: bad container magic %#x (want %#x)", magic, containerMagic)
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v > manifestVersion {
		return nil, fmt.Errorf("shard: container format v%d, this reader supports <=v%d (upgrade the binary)", v, manifestVersion)
	} else if v < manifestMinVersion {
		return nil, fmt.Errorf("shard: container format v%d, this reader supports v%d..v%d", v, manifestMinVersion, manifestVersion)
	}
	manLen := binary.LittleEndian.Uint32(head[8:])
	const maxManifest = 1 << 20
	if manLen == 0 || manLen > maxManifest {
		return nil, fmt.Errorf("shard: implausible manifest length %d", manLen)
	}
	raw := make([]byte, manLen)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	part, insts, err := validateManifest(&man, inst)
	if err != nil {
		return nil, err
	}
	idxs := make([]*core.Index, man.Shards)
	for j := 0; j < man.Shards; j++ {
		var l [8]byte
		if _, err := io.ReadFull(r, l[:]); err != nil {
			return nil, fmt.Errorf("shard: reading shard %d length: %w", j, err)
		}
		idxs[j], err = core.ReadIndex(io.LimitReader(r, int64(binary.LittleEndian.Uint64(l[:]))), insts[j])
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", j, err)
		}
	}
	opts.Shards = man.Shards
	opts.Partitioner = man.Partitioner
	s, err := assemble(inst, part, insts, idxs, opts)
	if err != nil {
		return nil, err
	}
	s.sink.SetLSN(man.LSN)
	return s, nil
}

// validateManifest checks a manifest against the presented dataset and
// materializes the per-shard instances it describes: the shared graph, a
// trajectory-store clone per shard, and the manifest's per-shard site
// lists (in their recorded, history-dependent order — see Manifest.Sites).
// Every site must route to its recorded shard under the manifest's
// partitioner and the total count must match the presented dataset; the
// per-shard dataset fingerprints inside the core snapshots then verify the
// lists in depth.
func validateManifest(man *Manifest, inst *tops.Instance) (Partitioner, []*tops.Instance, error) {
	if man.Version > manifestVersion {
		return nil, nil, fmt.Errorf("shard: manifest format v%d, this reader supports <=v%d (upgrade the binary)", man.Version, manifestVersion)
	}
	if man.Version < manifestMinVersion {
		return nil, nil, fmt.Errorf("shard: manifest format v%d, this reader supports v%d..v%d", man.Version, manifestMinVersion, manifestVersion)
	}
	if man.Shards < 1 {
		return nil, nil, fmt.Errorf("shard: manifest shard count %d must be >= 1", man.Shards)
	}
	if want := core.DatasetFingerprint(inst); man.DatasetFingerprint != want {
		return nil, nil, fmt.Errorf("shard: manifest fingerprint %#x does not match dataset %#x: snapshot was taken from a different dataset", man.DatasetFingerprint, want)
	}
	part, err := NewPartitioner(man.Partitioner, man.Shards, inst.G)
	if err != nil {
		return nil, nil, err
	}
	if len(man.Sites) != man.Shards || len(man.SiteCounts) != man.Shards {
		return nil, nil, fmt.Errorf("shard: manifest lists %d site lists / %d site counts for %d shards", len(man.Sites), len(man.SiteCounts), man.Shards)
	}
	insts := make([]*tops.Instance, man.Shards)
	total := 0
	for j := range insts {
		if len(man.Sites[j]) != man.SiteCounts[j] {
			return nil, nil, fmt.Errorf("shard: manifest shard %d lists %d sites but counts %d", j, len(man.Sites[j]), man.SiteCounts[j])
		}
		sites := make([]roadnet.NodeID, 0, len(man.Sites[j]))
		for _, raw := range man.Sites[j] {
			v := roadnet.NodeID(raw)
			if int64(v) != raw || v < 0 || int(v) >= inst.G.NumNodes() {
				return nil, nil, fmt.Errorf("shard: manifest shard %d site %d outside graph", j, raw)
			}
			if got := part.Shard(v); got != j {
				return nil, nil, fmt.Errorf("shard: manifest places site %d on shard %d but the %s partitioner routes it to %d", v, j, part.Name(), got)
			}
			sites = append(sites, v)
		}
		insts[j] = &tops.Instance{G: inst.G, Trajs: inst.Trajs.Clone(), Sites: sites}
		total += len(sites)
	}
	if total != len(inst.Sites) {
		return nil, nil, fmt.Errorf("shard: manifest lists %d sites in total, dataset has %d", total, len(inst.Sites))
	}
	return part, insts, nil
}

// SaveDir writes the sharded engine as a manifest plus one snapshot file
// per shard under dir (created if missing). Each file lands atomically
// (temp + fsync + rename), and the manifest is written last, so a reader
// that finds a manifest finds complete shard files.
func (s *Sharded) SaveDir(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: snapshot dir: %w", err)
	}
	man := s.manifest(true)
	for j, sh := range s.shards {
		if err := wal.AtomicWriteFile(filepath.Join(dir, man.Files[j]), func(w io.Writer) error {
			_, err := sh.eng.Snapshot(w)
			return err
		}); err != nil {
			return fmt.Errorf("shard: writing shard %d snapshot: %w", j, err)
		}
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	if err := wal.AtomicWriteFile(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		_, err := w.Write(append(raw, '\n'))
		return err
	}); err != nil {
		return fmt.Errorf("shard: writing manifest: %w", err)
	}
	return nil
}

// LoadDir reads a SaveDir layout from dir and re-attaches it to inst (the
// full dataset). opts supplies engine options; shard count and partitioner
// come from the manifest.
func LoadDir(dir string, inst *tops.Instance, opts Options) (*Sharded, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	if len(man.Files) != man.Shards {
		return nil, fmt.Errorf("shard: manifest lists %d files for %d shards", len(man.Files), man.Shards)
	}
	part, insts, err := validateManifest(&man, inst)
	if err != nil {
		return nil, err
	}
	idxs := make([]*core.Index, man.Shards)
	for j := 0; j < man.Shards; j++ {
		name := filepath.Base(man.Files[j]) // refuse path traversal out of dir
		idxs[j], err = core.ReadIndexFile(filepath.Join(dir, name), insts[j])
		if err != nil {
			return nil, fmt.Errorf("shard: loading shard %d: %w", j, err)
		}
	}
	opts.Shards = man.Shards
	opts.Partitioner = man.Partitioner
	s, err := assemble(inst, part, insts, idxs, opts)
	if err != nil {
		return nil, err
	}
	s.sink.SetLSN(man.LSN)
	return s, nil
}
