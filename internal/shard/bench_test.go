package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/gen"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
)

// benchInstance synthesizes the mid-sized city the engine benchmarks use,
// fresh per call (engines mutate their instance's site list in place).
func benchInstance(b testing.TB) *tops.Instance {
	b.Helper()
	city, err := gen.GenerateCity(gen.CityConfig{
		Topology: gen.GridMesh, Nodes: 2500, SpanKm: 14, Jitter: 0.2, Seed: 941,
	})
	if err != nil {
		b.Fatal(err)
	}
	store, err := gen.GenerateTrajectories(city, gen.TrajConfig{Count: 800, Seed: 942})
	if err != nil {
		b.Fatal(err)
	}
	sites, err := gen.SampleSites(city.Graph, gen.SiteConfig{Count: 600, Seed: 943})
	if err != nil {
		b.Fatal(err)
	}
	inst, err := tops.NewInstance(city.Graph, store, sites)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

var benchBuild = core.Options{Gamma: 0.75, TauMin: 0.4, TauMax: 6.4}

// querier abstracts the two engines under benchmark.
type querier interface {
	Query(ctx context.Context, opts core.QueryOptions) (*core.QueryResult, error)
	DeleteSite(v roadnet.NodeID) error
	AddSite(v roadnet.NodeID) error
}

// queryMix is the benchmark's per-iteration query battery: one query per
// ladder-distinct τ, k=5, binary ψ.
var benchTaus = []float64{0.4, 0.8, 1.6, 2.4}

func runQueryMix(b testing.TB, q querier) {
	for _, tau := range benchTaus {
		res, err := q.Query(context.Background(), core.QueryOptions{K: 5, Pref: tops.Binary(tau)})
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
}

// BenchmarkShardedHotQPS measures single-client query throughput with
// every cover cached (the all-reads steady state) for the single-shard
// engine and 1/2/4 shards. This regime is where sharding has nothing to
// amortize: at one core the scatter/round machinery is pure overhead, and
// only multi-core hosts recover it through the per-query fan-out. The
// headline sharded benchmark is BenchmarkShardedQPS below, which measures
// the update-mixed regime sharding exists for.
func BenchmarkShardedHotQPS(b *testing.B) {
	runArm := func(b *testing.B, q querier) {
		runQueryMix(b, q) // warm covers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tau := benchTaus[i%len(benchTaus)]
			res, err := q.Query(context.Background(), core.QueryOptions{K: 5, Pref: tops.Binary(tau)})
			if err != nil {
				b.Fatal(err)
			}
			res.Release()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
	}
	b.Run("engine", func(b *testing.B) {
		idx, err := core.Build(benchInstance(b), benchBuild)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.New(idx, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		runArm(b, eng)
	})
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			s, err := Build(benchInstance(b), Options{Shards: n, Build: benchBuild})
			if err != nil {
				b.Fatal(err)
			}
			runArm(b, s)
		})
	}
}

// runUpdateMix is one update-heavy iteration: a site flip (delete + re-add,
// which keeps the dataset stable across iterations) followed by the query
// battery. Every flip invalidates covers — ALL of them on the single-shard
// engine, only the owning shard's on the sharded one — so this benchmark
// isolates the partial-invalidation win, which holds at any core count.
func runUpdateMix(b testing.TB, q querier, site roadnet.NodeID) {
	if err := q.DeleteSite(site); err != nil {
		b.Fatal(err)
	}
	if err := q.AddSite(site); err != nil {
		b.Fatal(err)
	}
	runQueryMix(b, q)
}

// BenchmarkShardedQPS is the headline sharded-serving benchmark: sustained
// throughput under the update-mixed workload (runUpdateMix) that models
// production traffic with continuous §6 churn. This is the workload the
// ≥2×-at-4-shards acceptance bar refers to and TestShardedSpeedup gates.
func BenchmarkShardedQPS(b *testing.B) {
	runArm := func(b *testing.B, q querier, site roadnet.NodeID) {
		runQueryMix(b, q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runUpdateMix(b, q, site)
		}
		b.StopTimer()
		// One flip plus len(benchTaus) queries per iteration.
		b.ReportMetric(float64(b.N*len(benchTaus))/b.Elapsed().Seconds(), "qps")
	}
	b.Run("engine", func(b *testing.B) {
		inst := benchInstance(b)
		site := inst.Sites[11]
		idx, err := core.Build(inst, benchBuild)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.New(idx, engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		runArm(b, eng, site)
	})
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			inst := benchInstance(b)
			site := inst.Sites[11]
			s, err := Build(inst, Options{Shards: n, Build: benchBuild})
			if err != nil {
				b.Fatal(err)
			}
			runArm(b, s, site)
		})
	}
}

// BenchmarkShardedBuild records the offline cost of the shard-replicated
// build (every shard clusters the full network) for the scaling table.
func BenchmarkShardedBuild(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			inst := benchInstance(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(inst, Options{Shards: n, Build: benchBuild}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestShardedSpeedup is the ≥2× acceptance gate over the
// BenchmarkShardedQPS workload: at 4 shards the update-mixed mix must run
// at least twice the single-shard engine's throughput on a ≥4-core machine
// (the acceptance bar; CI runs it in the bench job on its multi-core
// runners, like the parallel-build speedup gate). The win is mostly algorithmic — a site update invalidates one
// shard's covers instead of all of them, so each post-update query refills
// ~1/N of the covering pairs — with the parallel scatter and distributed
// gather adding on multi-core machines. On smaller boxes only the
// algorithmic share is observable, so the gate relaxes to a ≥1.3×
// regression floor there. Skipped in -short.
func TestShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short")
	}
	bar := 2.0
	if runtime.NumCPU() < 4 {
		bar = 1.3
		t.Logf("only %d CPUs: relaxing the 4-shard bar from 2x to %.1fx (the parallel scatter/gather share needs >=4 cores)", runtime.NumCPU(), bar)
	}
	// Throughput is the best of several short blocks: the minimum is robust
	// against background load and GC pauses, which on shared CI runners
	// otherwise dominate a single long measurement.
	measure := func(q querier, site roadnet.NodeID) float64 {
		runQueryMix(t, q) // warm
		const blocks, iters = 6, 4
		best := time.Duration(1 << 62)
		for b := 0; b < blocks; b++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				runUpdateMix(t, q, site)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return float64(iters*len(benchTaus)) / best.Seconds()
	}

	inst := benchInstance(t)
	site := inst.Sites[11]
	idx, err := core.Build(inst, benchBuild)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(idx, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := measure(eng, site)

	shInst := benchInstance(t)
	s, err := Build(shInst, Options{Shards: 4, Build: benchBuild})
	if err != nil {
		t.Fatal(err)
	}
	sharded := measure(s, shInst.Sites[11])

	ratio := sharded / single
	t.Logf("update-mixed throughput: single %.0f qps, 4-shard %.0f qps (%.2fx)", single, sharded, ratio)
	if ratio < bar {
		t.Fatalf("4-shard update-mixed throughput %.0f qps is only %.2fx the single-shard %.0f qps (want >= %.1fx)", sharded, ratio, single, bar)
	}
}

// TestShardedConcurrentQPSSmoke exercises the scatter under concurrent
// clients briefly (sanity, not a gate): results must stay error-free with
// the cover caches shared.
func TestShardedConcurrentQPSSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke skipped in -short")
	}
	inst, _ := buildFixture(t, 733)
	s := shardedEngine(t, inst, 4, HashPartitioner)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tau := benchTaus[(c+i)%len(benchTaus)]
				if _, err := s.Query(context.Background(), core.QueryOptions{K: 3, Pref: tops.Binary(tau)}); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
