package shard

import (
	"sync"

	"netclus/internal/tops"
)

// The distributed gather greedy: the paper's Algorithm 1 (tops.plainGreedy)
// restructured as synchronized rounds over the per-shard covers, without
// ever materializing the merged covering structure.
//
// State split:
//
//   - the gather owns the per-trajectory utility vector U and the covered
//     count (it holds the winning representative's TC list each round);
//   - each shard owns the marginals of its own representatives and the
//     local SC lists needed to maintain them.
//
// One round = each shard applies the previous winner's utility deltas to
// its marginals and reports its local argmax (under the GLOBAL dense index
// tie-break); the gather reduces the candidates with the same comparator
// and broadcasts the new winner's deltas. Every float64 operation — the
// initial marginal sums in TC order, the `marg -= oldGain - newGain`
// updates in the winner's TC order, the utility accumulation — replays
// tops.plainGreedy's op for op, so Selected/Utility/Covered carry identical
// bits. The oracle test battery (oracle_test.go) holds this equality
// against the single-shard engine across random workloads.
//
// Per-query state (utility vector, per-shard marginals and selection masks,
// delta buffers, result slices) lives in a greedyScratch recycled through a
// pool, so the sharded hot path — memoized per-shard covers, pooled gather
// state — runs its rounds without allocating.

// shardGreedy is one shard's per-query greedy state.
type shardGreedy struct {
	sc       *shardCover
	marg     []float64
	selected []bool
	cand     gatherCand
}

// gatherCand is a shard's per-round argmax candidate.
type gatherCand struct {
	ok     bool
	li     int     // local dense index in the shard's cover
	gi     int32   // global dense index (single-shard representative space)
	marg   float64 // marginal gain at this round
	weight float64 // site weight, for the tie-break
}

// greedyScratch pools the gather greedy's buffers across queries. States
// are held by value so the per-shard slice is one allocation for its
// lifetime; the marg/selected sub-buffers grow to the largest shard seen.
type greedyScratch struct {
	util    []float64
	states  []shardGreedy
	deltas  []UtilDelta
	sel     []tops.SiteID
	perIter []float64
}

var greedyScratchPool = sync.Pool{New: func() any { return new(greedyScratch) }}

// prepare sizes the scratch for the gather set: the utility vector over m
// trajectories (cleared), one state per shard cover with marg/selected at
// the local cover size (selected cleared; marg is overwritten by seeding).
func (g *greedyScratch) prepare(gs *gatherSet) {
	if cap(g.util) < gs.m {
		g.util = make([]float64, gs.m)
	} else {
		g.util = g.util[:gs.m]
		clear(g.util)
	}
	if cap(g.states) < len(gs.loc) {
		g.states = make([]shardGreedy, len(gs.loc))
	} else {
		g.states = g.states[:len(gs.loc)]
	}
	for si := range g.states {
		st := &g.states[si]
		n := len(gs.loc[si].g2l)
		st.sc = gs.loc[si]
		if cap(st.marg) < n {
			st.marg = make([]float64, n)
		} else {
			st.marg = st.marg[:n]
		}
		if cap(st.selected) < n {
			st.selected = make([]bool, n)
		} else {
			st.selected = st.selected[:n]
			clear(st.selected)
		}
		st.cand = gatherCand{}
	}
	g.deltas = g.deltas[:0]
}

// release detaches the scratch from the covers it referenced and returns it
// to the pool. The caller must be done with any Result slices the run
// produced (they alias g.sel / g.perIter).
func (g *greedyScratch) release() {
	for si := range g.states {
		g.states[si].sc = nil
	}
	greedyScratchPool.Put(g)
}

// greedy runs the distributed plain greedy for k selections. When parallel
// is set, the per-shard round work fans out across goroutines (one per
// shard); the reduce is order-invariant either way because the comparator
// is a strict total order over distinct global indices. The returned
// Result's Selected and UtilityPerIter alias the scratch.
func (gs *gatherSet) greedy(k int, parallel bool, g *greedyScratch) tops.Result {
	g.prepare(gs)
	util := g.util
	forEach(parallel, len(g.states), func(si int) {
		st := &g.states[si]
		seedLocalMarginals(st.sc.cs, st.sc.g2l, st.marg, st.selected)
	})

	res := tops.Result{Selected: g.sel[:0], UtilityPerIter: g.perIter[:0]}
	covered := 0
	deltas := g.deltas[:0]
	for len(res.Selected) < k {
		forEach(parallel, len(g.states), func(si int) {
			st := &g.states[si]
			// Absorb the previous round's winner, then re-take the local
			// argmax — the shared per-round shard arithmetic (protocol.go),
			// the same loops a cross-process shard member runs.
			applyWinnerDeltas(st.sc.cs, st.marg, deltas)
			best := argmaxLocal(st.sc.cs, st.sc.g2l, st.marg, st.selected)
			if best < 0 {
				st.cand = gatherCand{}
				return
			}
			st.cand = gatherCand{ok: true, li: best, gi: st.sc.g2l[best], marg: st.marg[best], weight: st.sc.cs.Weights[best]}
		})
		// Reduce the candidates under the greedy's total order.
		win := -1
		for si := range g.states {
			st := &g.states[si]
			if !st.cand.ok {
				continue
			}
			if win < 0 || tops.GreaterSite(st.cand.marg, st.cand.weight, int(st.cand.gi),
				g.states[win].cand.marg, g.states[win].cand.weight, int(g.states[win].cand.gi)) {
				win = si
			}
		}
		if win < 0 {
			break // every representative selected
		}
		st := &g.states[win]
		c := st.cand
		st.selected[c.li] = true
		res.Selected = append(res.Selected, tops.SiteID(c.gi))
		res.Utility += c.marg
		trajs, scores := st.sc.cs.TC(int32(c.li))
		var nc int
		deltas, nc = ApplyWinner(util, trajs, scores, deltas[:0])
		covered += nc
		res.UtilityPerIter = append(res.UtilityPerIter, res.Utility)
	}
	res.Covered = covered
	// Keep any growth for the scratch's next run.
	g.sel, g.perIter, g.deltas = res.Selected, res.UtilityPerIter, deltas
	return res
}

// forEach runs fn(0..n-1), across goroutines when parallel (the shard-fan
// of one greedy round), inline otherwise (batch members already fan out).
func forEach(parallel bool, n int, fn func(i int)) {
	if !parallel || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
