package shard

import (
	"sync"

	"netclus/internal/tops"
)

// The distributed gather greedy: the paper's Algorithm 1 (tops.plainGreedy)
// restructured as synchronized rounds over the per-shard covers, without
// ever materializing the merged covering structure.
//
// State split:
//
//   - the gather owns the per-trajectory utility vector U and the covered
//     count (it holds the winning representative's TC list each round);
//   - each shard owns the marginals of its own representatives and the
//     local SC lists needed to maintain them.
//
// One round = each shard applies the previous winner's utility deltas to
// its marginals and reports its local argmax (under the GLOBAL dense index
// tie-break); the gather reduces the candidates with the same comparator
// and broadcasts the new winner's deltas. Every float64 operation — the
// initial marginal sums in TC order, the `marg -= oldGain - newGain`
// updates in the winner's TC order, the utility accumulation — replays
// tops.plainGreedy's op for op, so Selected/Utility/Covered carry identical
// bits. The oracle test battery (oracle_test.go) holds this equality
// against the single-shard engine across random workloads.

// utilDelta is one trajectory's utility improvement from a selection round,
// broadcast from the gather to the shards.
type utilDelta struct {
	traj       int32
	oldU, newU float64
}

// shardGreedy is one shard's per-query greedy state.
type shardGreedy struct {
	sc       *shardCover
	marg     []float64
	selected []bool
	cand     gatherCand
}

// gatherCand is a shard's per-round argmax candidate.
type gatherCand struct {
	ok     bool
	li     int     // local dense index in the shard's cover
	gi     int32   // global dense index (single-shard representative space)
	marg   float64 // marginal gain at this round
	weight float64 // site weight, for the tie-break
}

// greedy runs the distributed plain greedy for k selections. When parallel
// is set, the per-shard round work fans out across goroutines (one per
// shard); the reduce is order-invariant either way because the comparator
// is a strict total order over distinct global indices.
func (gs *gatherSet) greedy(k int, parallel bool) tops.Result {
	util := make([]float64, gs.m)
	states := make([]*shardGreedy, len(gs.loc))
	forEach(parallel, len(gs.loc), func(si int) {
		sc := gs.loc[si]
		st := &shardGreedy{
			sc:       sc,
			marg:     make([]float64, len(sc.g2l)),
			selected: make([]bool, len(sc.g2l)),
		}
		for li := range sc.g2l {
			if sc.g2l[li] < 0 {
				// Not a current winner (possible only under concurrent
				// mutation): never a candidate.
				st.selected[li] = true
				continue
			}
			var m float64
			for _, st1 := range sc.cs.TC[li] {
				if g := st1.Score - util[st1.Traj]; g > 0 { // util is all zeros here
					m += g
				}
			}
			st.marg[li] = m
		}
		states[si] = st
	})

	var res tops.Result
	covered := 0
	var deltas []utilDelta
	for len(res.Selected) < k {
		forEach(parallel, len(states), func(si int) {
			st := states[si]
			// Absorb the previous round's winner into this shard's
			// marginals — the exact update loop of Algorithm 1 lines 11–17,
			// restricted to the sites this shard owns.
			for _, d := range deltas {
				if int(d.traj) >= len(st.sc.cs.SC) {
					continue
				}
				for _, ss := range st.sc.cs.SC[d.traj] {
					li := ss.Site
					if st.selected[li] {
						continue
					}
					oldGain := ss.Score - d.oldU
					if oldGain <= 0 {
						continue
					}
					newGain := ss.Score - d.newU
					if newGain < 0 {
						newGain = 0
					}
					st.marg[li] -= oldGain - newGain
				}
			}
			best := -1
			for li := range st.marg {
				if st.selected[li] {
					continue
				}
				if best < 0 || tops.GreaterSite(st.marg[li], st.sc.cs.Weights[li], int(st.sc.g2l[li]),
					st.marg[best], st.sc.cs.Weights[best], int(st.sc.g2l[best])) {
					best = li
				}
			}
			if best < 0 {
				st.cand = gatherCand{}
				return
			}
			st.cand = gatherCand{
				ok:     true,
				li:     best,
				gi:     st.sc.g2l[best],
				marg:   st.marg[best],
				weight: st.sc.cs.Weights[best],
			}
		})
		// Reduce the candidates under the greedy's total order.
		win := -1
		for si, st := range states {
			if !st.cand.ok {
				continue
			}
			if win < 0 || tops.GreaterSite(st.cand.marg, st.cand.weight, int(st.cand.gi),
				states[win].cand.marg, states[win].cand.weight, int(states[win].cand.gi)) {
				win = si
			}
		}
		if win < 0 {
			break // every representative selected
		}
		st := states[win]
		c := st.cand
		st.selected[c.li] = true
		res.Selected = append(res.Selected, tops.SiteID(c.gi))
		res.Utility += c.marg
		deltas = deltas[:0]
		for _, st1 := range st.sc.cs.TC[c.li] {
			oldU := util[st1.Traj]
			if st1.Score <= oldU {
				continue
			}
			util[st1.Traj] = st1.Score
			if oldU == 0 {
				covered++
			}
			deltas = append(deltas, utilDelta{traj: st1.Traj, oldU: oldU, newU: st1.Score})
		}
		res.UtilityPerIter = append(res.UtilityPerIter, res.Utility)
	}
	res.Covered = covered
	return res
}

// forEach runs fn(0..n-1), across goroutines when parallel (the shard-fan
// of one greedy round), inline otherwise (batch members already fan out).
func forEach(parallel bool, n int, fn func(i int)) {
	if !parallel || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
