package shard

import (
	"context"
	"math/rand"
	"testing"

	"netclus/internal/core"
	"netclus/internal/engine"
	"netclus/internal/roadnet"
	"netclus/internal/tops"
	"netclus/internal/trajectory"
)

// The shard-differential oracle: for random (k, ψ, τ) draws and random §6
// update sequences, the sharded engine's selected sites, dense site ids,
// and estimated utilities must EXACTLY (bit-for-bit) match a single-shard
// engine that absorbed the same workload — across shard counts,
// partitioners, the distributed-greedy path, the merged-cover fallback
// path, and the batch path. This extends the engine-level differential
// oracle (internal/engine/oracle_test.go) one layer up: the engine oracle
// proves the single-shard answer against brute force; this suite proves the
// scatter-gather answer against the single-shard engine.

// checkDraw compares one draw across every query path.
func checkDraw(t *testing.T, ref *engine.Engine, s *Sharded, k int, pref tops.Preference) {
	t.Helper()
	ctx := context.Background()
	q := core.QueryOptions{K: k, Pref: pref}
	want, err := ref.Query(ctx, q)
	if err != nil {
		t.Fatalf("reference query (k=%d, ψ=%s, τ=%.3f): %v", k, pref.Name, pref.Tau, err)
	}
	got, err := s.Query(ctx, q)
	if err != nil {
		t.Fatalf("sharded query (k=%d, ψ=%s, τ=%.3f): %v", k, pref.Name, pref.Tau, err)
	}
	sameAnswer(t, "distributed greedy", got, want)

	// The merged-cover fallback path must agree as well; lazy greedy
	// (CELF) is a different traversal of the same submodular maximization,
	// so it exercises the merged CoverSets' SC lists and weights too.
	lazyQ := q
	lazyQ.Greedy.Lazy = true
	wantLazy, err := ref.Query(ctx, lazyQ)
	if err != nil {
		t.Fatal(err)
	}
	gotLazy, err := s.Query(ctx, lazyQ)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "merged-cover lazy", gotLazy, wantLazy)
}

func TestShardedDifferentialOracle(t *testing.T) {
	seeds := []int64{311, 331}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, cfg := range []struct {
			shards      int
			partitioner string
		}{
			{2, HashPartitioner},
			{4, HashPartitioner},
			{3, GridPartitioner},
		} {
			if testing.Short() && cfg.shards == 3 {
				continue
			}
			refInst, city := buildFixture(t, seed)
			shInst, _ := buildFixture(t, seed)
			ref := singleEngine(t, refInst)
			s := shardedEngine(t, shInst, cfg.shards, cfg.partitioner)

			rng := rand.New(rand.NewSource(seed*29 + int64(cfg.shards)))
			extras := extraTrajectories(t, city, 24, seed+901)

			rounds, draws := 3, 5
			if testing.Short() {
				rounds, draws = 2, 3
			}
			for round := 0; round < rounds; round++ {
				for d := 0; d < draws; d++ {
					k := 1 + rng.Intn(12)
					checkDraw(t, ref, s, k, drawPref(rng))
				}
				if round == rounds-1 {
					break
				}
				extras = applyRandomUpdates(t, ref, s, refInst, rng, extras)
			}
		}
	}
}

// applyRandomUpdates drives one random §6 mutation sequence through BOTH
// engines: site add/delete (exercising swap-remove mirroring, ownership
// invalidation, and representative takeover inside the owning shard) and
// trajectory add/delete (exercising the broadcast path and per-shard TL
// surgery). refInst tracks the reference engine's live site set (core
// mutates it in place).
func applyRandomUpdates(t *testing.T, ref *engine.Engine, s *Sharded, refInst *tops.Instance, rng *rand.Rand, extras []*trajectory.Trajectory) []*trajectory.Trajectory {
	t.Helper()
	g := refInst.G
	for op := 0; op < 12; op++ {
		switch rng.Intn(5) {
		case 0: // add one site
			if v, ok := nonSiteNode(g, refInst, rng); ok {
				if err := ref.AddSite(v); err != nil {
					t.Fatalf("ref AddSite(%d): %v", v, err)
				}
				if err := s.AddSite(v); err != nil {
					t.Fatalf("sharded AddSite(%d): %v", v, err)
				}
			}
		case 1: // delete a random site, keeping a healthy pool
			if len(refInst.Sites) > 60 {
				v := refInst.Sites[rng.Intn(len(refInst.Sites))]
				if err := ref.DeleteSite(v); err != nil {
					t.Fatalf("ref DeleteSite(%d): %v", v, err)
				}
				if err := s.DeleteSite(v); err != nil {
					t.Fatalf("sharded DeleteSite(%d): %v", v, err)
				}
			}
		case 2: // batch-add two sites (routes to distinct shards sometimes)
			var nodes []roadnet.NodeID
			for len(nodes) < 2 {
				v, ok := nonSiteNode(g, refInst, rng)
				if !ok {
					break
				}
				dup := false
				for _, u := range nodes {
					if u == v {
						dup = true
					}
				}
				if !dup {
					nodes = append(nodes, v)
				}
			}
			if len(nodes) == 2 {
				if err := ref.AddSites(nodes); err != nil {
					t.Fatalf("ref AddSites: %v", err)
				}
				if err := s.AddSites(nodes); err != nil {
					t.Fatalf("sharded AddSites: %v", err)
				}
			}
		case 3: // ingest a fresh trajectory
			if len(extras) > 0 {
				tr := extras[0]
				extras = extras[1:]
				rid, err := ref.AddTrajectory(tr)
				if err != nil {
					t.Fatalf("ref AddTrajectory: %v", err)
				}
				sid, err := s.AddTrajectory(tr)
				if err != nil {
					t.Fatalf("sharded AddTrajectory: %v", err)
				}
				if rid != sid {
					t.Fatalf("trajectory id diverged: ref %d, sharded %d", rid, sid)
				}
			}
		default: // delete a random live trajectory (dead draws are no-ops)
			tid := trajectory.ID(rng.Intn(refInst.M()))
			errRef := ref.DeleteTrajectory(tid)
			errSh := s.DeleteTrajectory(tid)
			if (errRef == nil) != (errSh == nil) {
				t.Fatalf("DeleteTrajectory(%d) diverged: ref %v, sharded %v", tid, errRef, errSh)
			}
		}
	}
	return extras
}

// TestShardedBatchMatchesReference runs a mixed batch through both engines'
// QueryBatch and compares item by item.
func TestShardedBatchMatchesReference(t *testing.T) {
	refInst, _ := buildFixture(t, 347)
	shInst, _ := buildFixture(t, 347)
	ref := singleEngine(t, refInst)
	s := shardedEngine(t, shInst, 4, HashPartitioner)

	var qs []core.QueryOptions
	for _, tau := range []float64{0.4, 0.8, 1.6} {
		for _, k := range []int{1, 3, 7} {
			qs = append(qs, core.QueryOptions{K: k, Pref: tops.Binary(tau)})
			qs = append(qs, core.QueryOptions{K: k, Pref: tops.Linear(tau)})
		}
	}
	qs = append(qs, core.QueryOptions{K: 0, Pref: tops.Binary(0.8)}) // invalid

	ctx := context.Background()
	wantItems := ref.QueryBatch(ctx, qs)
	gotItems := s.QueryBatch(ctx, qs)
	if len(gotItems) != len(qs) || len(wantItems) != len(qs) {
		t.Fatalf("item counts: got %d want %d over %d queries", len(gotItems), len(wantItems), len(qs))
	}
	for i := range qs {
		if (gotItems[i].Err == nil) != (wantItems[i].Err == nil) {
			t.Fatalf("item %d error divergence: sharded %v, reference %v", i, gotItems[i].Err, wantItems[i].Err)
		}
		if gotItems[i].Err == nil {
			sameAnswer(t, "batch item", gotItems[i].Result, wantItems[i].Result)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.BatchQueries != uint64(len(qs)-1) {
		t.Fatalf("batch counters: %+v", st)
	}
}

// TestShardedExoticModes pins the merged-cover fallback against the
// reference engine for the query modes that carry extra greedy state.
func TestShardedExoticModes(t *testing.T) {
	refInst, _ := buildFixture(t, 353)
	shInst, _ := buildFixture(t, 353)
	ref := singleEngine(t, refInst)
	s := shardedEngine(t, shInst, 3, HashPartitioner)
	ctx := context.Background()

	for _, q := range []core.QueryOptions{
		{K: 5, Pref: tops.Binary(0.8), UseFM: true, F: 12, Seed: 99},
		{K: 4, Pref: tops.Linear(1.6), Greedy: tops.GreedyOptions{Lazy: true}},
		{K: 3, Pref: tops.Binary(1.2), Greedy: tops.GreedyOptions{InitialSites: []tops.SiteID{0, 2}}},
		{K: 1, Pref: tops.Binary(2.4), Greedy: tops.GreedyOptions{TargetCoverage: 0.5}},
	} {
		want, errRef := ref.Query(ctx, q)
		got, errSh := s.Query(ctx, q)
		if (errRef == nil) != (errSh == nil) {
			t.Fatalf("mode %+v error divergence: ref %v, sharded %v", q, errRef, errSh)
		}
		if errRef == nil {
			sameAnswer(t, "exotic mode", got, want)
		}
	}
}
